package reduction

import (
	"math/rand"
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/graphalg"
	"wdsparql/internal/hom"
)

func randomHost(rng *rand.Rand, n int, p float64) *graphalg.UGraph {
	g := graphalg.NewUGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Lemma 2, item 3: H has a k-clique ⟺ (S, X) → (B, X), checked on
// randomized hosts for k = 2, 3.
func TestLemma2Item3Random(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{2, 3} {
		for trial := 0; trial < 12; trial++ {
			n := 4 + rng.Intn(3)
			h := randomHost(rng, n, 0.35+0.3*rng.Float64())
			in, err := New(k, h)
			if err != nil {
				t.Fatal(err)
			}
			homHolds, clique := in.HomAgreesWithClique()
			if homHolds != clique {
				t.Fatalf("k=%d trial=%d n=%d: hom=%v clique=%v\nH edges: %v",
					k, trial, n, homHolds, clique, h.Edges())
			}
		}
	}
}

// Deterministic corner cases of Lemma 2.
func TestLemma2Corners(t *testing.T) {
	cases := []struct {
		name  string
		k     int
		build func() *graphalg.UGraph
		want  bool
	}{
		{"k2-no-edges", 2, func() *graphalg.UGraph { return graphalg.NewUGraph(4) }, false},
		{"k2-one-edge", 2, func() *graphalg.UGraph {
			g := graphalg.NewUGraph(3)
			g.AddEdge(0, 1)
			return g
		}, true},
		{"k3-triangle-free", 3, func() *graphalg.UGraph { return graphalg.Grid(3, 3) }, false},
		{"k3-triangle", 3, func() *graphalg.UGraph {
			g := graphalg.Grid(2, 2)
			g.AddEdge(0, 3)
			return g
		}, true},
		{"k4-k4", 4, func() *graphalg.UGraph { return graphalg.Clique(4) }, true},
		{"k4-turan", 4, func() *graphalg.UGraph {
			// Complete 3-partite graph on 6 vertices: no K4.
			g := graphalg.NewUGraph(6)
			for i := 0; i < 6; i++ {
				for j := i + 1; j < 6; j++ {
					if i%3 != j%3 {
						g.AddEdge(i, j)
					}
				}
			}
			return g
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.k >= 4 && testing.Short() {
				// The k=4 refutation is the genuinely W[1]-hard case
				// (tens of seconds); exercised in full runs only.
				t.Skip("skipping k=4 reduction in -short mode")
			}
			h := tc.build()
			if got := graphalg.HasClique(h, tc.k); got != tc.want {
				t.Fatalf("HasClique oracle: got %v, want %v", got, tc.want)
			}
			in, err := New(tc.k, h)
			if err != nil {
				t.Fatal(err)
			}
			homHolds, _ := in.HomAgreesWithClique()
			if homHolds != tc.want {
				t.Fatalf("hom test: got %v, want %v", homHolds, tc.want)
			}
		})
	}
}

// The clique-host variant (non-singleton γ parts) must agree with the
// clique oracle as well; k = 2 keeps B small (m = 3 clique child).
func TestCliqueHostVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(3)
		h := randomHost(rng, n, 0.3+0.4*rng.Float64())
		in, err := NewCliqueHost(2, h)
		if err != nil {
			t.Fatal(err)
		}
		homHolds, clique := in.HomAgreesWithClique()
		if homHolds != clique {
			t.Fatalf("trial %d: hom=%v clique=%v edges=%v", trial, homHolds, clique, h.Edges())
		}
		if got := in.SolveCliqueViaEval(); got != clique {
			t.Fatalf("trial %d: eval=%v clique=%v", trial, got, clique)
		}
	}
}

// The k=3 clique-host instance is large (K_10 child); run one positive
// and one negative case.
func TestCliqueHostVariantK3(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	tri := graphalg.NewUGraph(4)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	in, err := NewCliqueHost(3, tri)
	if err != nil {
		t.Fatal(err)
	}
	if homHolds, _ := in.HomAgreesWithClique(); !homHolds {
		t.Fatal("triangle should embed")
	}
	pathH := graphalg.Path(4)
	in2, err := NewCliqueHost(3, pathH)
	if err != nil {
		t.Fatal(err)
	}
	if homHolds, _ := in2.HomAgreesWithClique(); homHolds {
		t.Fatal("path has no triangle")
	}
}

// Item 2 of Lemma 2: (B, X) → (S, X) always holds (via Π).
func TestLemma2Item2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		h := randomHost(rng, 5, 0.5)
		if h.EdgeCount() == 0 {
			continue
		}
		in, err := New(2, h)
		if err != nil {
			t.Fatal(err)
		}
		if !hom.Hom(in.B, in.S) {
			t.Fatalf("trial %d: (B,X) must map into (S,X)", trial)
		}
	}
}

// Item 1 of Lemma 2: triples of S over distinguished variables only
// appear in B.
func TestLemma2Item1(t *testing.T) {
	h := graphalg.Clique(4)
	in, err := New(2, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, tri := range in.S.S {
		allX := true
		for _, v := range tri.Vars() {
			if !in.S.IsDistinguished(v) {
				allX = false
			}
		}
		if allX && !in.B.S.Contains(tri) {
			t.Fatalf("triple %s over X missing from B", tri)
		}
	}
}

// The S of the reduction must be a core (the construction relies on
// C = S for the grid family).
func TestReductionSIsCore(t *testing.T) {
	for _, k := range []int{2, 3} {
		in, err := New(k, graphalg.Clique(k+1))
		if err != nil {
			t.Fatal(err)
		}
		if !hom.IsCore(in.S) {
			t.Fatalf("k=%d: grid query t-graph should be a core", k)
		}
	}
}

// End-to-end Theorem 2 reduction: clique solving through co-wdEVAL
// matches the direct clique oracle; also cross-check the evaluator
// against Lemma-1 enumeration on one small instance.
func TestSolveCliqueViaEval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range []int{2, 3} {
		for trial := 0; trial < 8; trial++ {
			h := randomHost(rng, 4+rng.Intn(2), 0.5)
			got, err := SolveClique(k, h)
			if err != nil {
				t.Fatal(err)
			}
			if want := graphalg.HasClique(h, k); got != want {
				t.Fatalf("k=%d trial=%d: co-wdEVAL says %v, oracle %v", k, trial, got, want)
			}
		}
	}
}

// µ ∈ ⟦P⟧G decided by EvalNaive agrees with Lemma-1 enumeration on a
// small reduction instance (the enumeration is exponential in |B|, so
// keep H tiny).
func TestReductionEvalAgainstEnumeration(t *testing.T) {
	h := graphalg.NewUGraph(3)
	h.AddEdge(0, 1)
	in, err := New(2, h)
	if err != nil {
		t.Fatal(err)
	}
	want := core.EnumerateForest(in.Forest, in.G).Contains(in.Mu)
	if got := core.EvalNaive(in.Forest, in.G, in.Mu); got != want {
		t.Fatalf("EvalNaive=%v, enumeration=%v", got, want)
	}
}
