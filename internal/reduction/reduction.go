// Package reduction implements the paper's Section 4 hardness
// machinery: the Lemma 2 construction of a generalised t-graph (B, X)
// from a host graph H and a wide generalised t-graph (S, X), and the
// end-to-end fpt-reduction from p-CLIQUE to p-co-wdEVAL that underlies
// Theorem 2 (W[1]-hardness for classes of unbounded domination width).
//
// Where the paper invokes the Excluded Grid Theorem to obtain a
// (k × C(k,2))-grid minor inside any graph of huge treewidth, this
// implementation uses query families whose Gaifman graphs are grids,
// so the minor map γ is available exactly (see DESIGN.md §3,
// "Substitutions"); everything downstream of γ — the variable set 𝒱,
// the projections Π, the consistency conditions (†), the sets Tr, Tr′
// and Tr0, the freezing Ψ and the mapping µ — follows the paper's
// Appendix 7.1 construction literally.
package reduction

import (
	"fmt"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/graphalg"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
)

// Instance is one compiled p-CLIQUE → p-co-wdEVAL reduction instance.
type Instance struct {
	// K is the clique size sought in H.
	K int
	// H is the host graph.
	H *graphalg.UGraph
	// Forest is the well-designed pattern forest (the query P), a
	// member of the unbounded-domination-width family gen.GridChild.
	Forest ptree.Forest
	// S is the wide generalised t-graph (S_∆, vars(T)) drawn from
	// GtG(T) of the root subtree T — here pat(root) ∪ pat(child).
	S hom.GTGraph
	// B is the Lemma 2 construction.
	B hom.GTGraph
	// G is B with its variables frozen into IRIs (the paper's Ψ(B)).
	G *rdf.Graph
	// Mu is the mapping {?u ↦ Ψ(?u)} over vars(T).
	Mu rdf.Mapping
}

// edges of H as vertex pairs (a < b).
type edge struct{ a, b int }

func (e edge) contains(v int) bool { return e.a == v || e.b == v }

// gridPos is a (row i, column p) coordinate of the (k × K)-grid,
// 1-based as in the paper.
type gridPos struct{ i, p int }

// New builds the reduction instance for clique size k ≥ 2 over host
// graph H. The query is gen.GridChild(k, C(k,2)), whose child Gaifman
// graph is exactly the (k × C(k,2))-grid, so γ is the identity minor
// map (each part is a single grid variable).
func New(k int, h *graphalg.UGraph) (*Instance, error) {
	if k < 2 {
		return nil, fmt.Errorf("reduction: clique size must be ≥ 2, got %d", k)
	}
	rho := graphalg.NewPairBijection(k)
	bigK := rho.K()

	tree := gen.GridChild(k, bigK)
	forest := ptree.Forest{tree}

	// T is the root subtree; S_∆ = pat(T) ∪ pat(child), X = vars(T).
	root := tree.Root
	child := root.Children[0]
	x := []rdf.Term{rdf.Var("u")}
	s := hom.NewGTGraph(root.Pattern.Union(child.Pattern), x)

	// Identity minor map: variable ?g_i_p sits alone at (i, p).
	position := map[rdf.Term]gridPos{}
	for i := 1; i <= k; i++ {
		for p := 1; p <= bigK; p++ {
			position[gen.GridVar(i, p)] = gridPos{i: i, p: p}
		}
	}

	b, err := buildB(rho, h, s, x, position)
	if err != nil {
		return nil, err
	}

	g, mu := freezeInstance(b, x)
	return &Instance{K: k, H: h, Forest: forest, S: s, B: b, G: g, Mu: mu}, nil
}

// NewCliqueHost builds the reduction instance from the CliqueChild
// query family instead: the child's Gaifman graph is the clique
// K_{k·C(k,2)}, and γ is a block partition of its vertices
// (graphalg.GridMinorOntoClique) — parts of size > 1 exercise the
// consistency conditions (†) across variables of a shared part, the
// general case of the paper's Appendix construction.
func NewCliqueHost(k int, h *graphalg.UGraph) (*Instance, error) {
	if k < 2 {
		return nil, fmt.Errorf("reduction: clique size must be ≥ 2, got %d", k)
	}
	rho := graphalg.NewPairBijection(k)
	bigK := rho.K()
	// Clique child over m = k·K + 1 variables so at least one part has
	// two variables.
	m := k*bigK + 1
	tree := gen.CliqueChild(m)
	forest := ptree.Forest{tree}
	root := tree.Root
	child := root.Children[0]
	x := []rdf.Term{rdf.Var("u")}
	s := hom.NewGTGraph(root.Pattern.Union(child.Pattern), x)

	mm, err := graphalg.GridMinorOntoClique(m, k, bigK)
	if err != nil {
		return nil, err
	}
	// The Gaifman vertices of the clique child are ?x1..?xm; vertex j
	// of K_m corresponds to ?x_{j+1}.
	position := map[rdf.Term]gridPos{}
	for i := 1; i <= k; i++ {
		for p := 1; p <= bigK; p++ {
			for _, v := range mm.Part(i, p) {
				position[rdf.Var(fmt.Sprintf("x%d", v+1))] = gridPos{i: i, p: p}
			}
		}
	}

	b, err := buildB(rho, h, s, x, position)
	if err != nil {
		return nil, err
	}
	g, mu := freezeInstance(b, x)
	return &Instance{K: k, H: h, Forest: forest, S: s, B: b, G: g, Mu: mu}, nil
}

// buildB is the Lemma 2 construction for a generalised t-graph whose
// free variables carry grid positions via a minor map γ (position).
// The variable set is
//
//	𝒱 = {?(v, e, i, p, ?a) | v ∈ V(H), e ∈ E(H), ?a ∈ γ(i, p),
//	                          v ∈ e ⟺ i ∈ ρ(p)},
//
// and B contains, for every triple c of C = core(S), every triple t
// with Π(t) = c whose variables satisfy the consistency conditions
// (†): two variables sharing i share v, two sharing p share e.
func buildB(rho *graphalg.PairBijection, h *graphalg.UGraph, s hom.GTGraph, x []rdf.Term, position map[rdf.Term]gridPos) (hom.GTGraph, error) {
	var hEdges []edge
	for _, e := range h.Edges() {
		hEdges = append(hEdges, edge{a: e[0], b: e[1]})
	}
	type pos = gridPos

	// The paper works with the core (C, X); for the generated families
	// the t-graph is its own core (asserted by the test suite), but we
	// compute it anyway for faithfulness.
	c := hom.Core(s)

	// choicesFor lists the (v, e) pairs admissible at grid position
	// (i, p): v ∈ e ⟺ i ∈ ρ(p).
	choicesFor := func(pt pos) [][2]int {
		var out [][2]int
		in := func(v int, e edge) bool { return e.contains(v) }
		want := rho.Contains(pt.p, pt.i)
		for ei, e := range hEdges {
			for v := 0; v < h.N(); v++ {
				if in(v, e) == want {
					out = append(out, [2]int{v, ei})
				}
			}
		}
		return out
	}

	bVar := func(v, ei int, pt pos, orig rdf.Term) rdf.Term {
		return rdf.Var(fmt.Sprintf("W_v%d_e%d_%d_%d_%s", v, ei, pt.i, pt.p, orig.Value))
	}

	var out []rdf.Triple
	for _, tri := range c.S {
		// Free variables of the triple with their positions.
		type slot struct {
			term rdf.Term
			pt   pos
		}
		var slots []slot
		ground := true
		for _, term := range tri.Vars() {
			if pt, ok := position[term]; ok {
				slots = append(slots, slot{term: term, pt: pt})
				ground = false
			}
		}
		if ground {
			// vars(t) ⊆ X: t goes into B unchanged (item 1 of Lemma 2).
			out = append(out, tri)
			continue
		}
		if len(slots) > 2 {
			return hom.GTGraph{}, fmt.Errorf("reduction: triple %s has %d free variables; the generated query families have ≤ 2 per triple", tri, len(slots))
		}
		substitute := func(assign map[rdf.Term]rdf.Term) rdf.Triple {
			conv := func(t rdf.Term) rdf.Term {
				if r, ok := assign[t]; ok {
					return r
				}
				return t
			}
			return rdf.T(conv(tri.S), conv(tri.P), conv(tri.O))
		}
		switch len(slots) {
		case 1:
			sl := slots[0]
			for _, ve := range choicesFor(sl.pt) {
				out = append(out, substitute(map[rdf.Term]rdf.Term{
					sl.term: bVar(ve[0], ve[1], sl.pt, sl.term),
				}))
			}
		case 2:
			s1, s2 := slots[0], slots[1]
			for _, ve1 := range choicesFor(s1.pt) {
				for _, ve2 := range choicesFor(s2.pt) {
					// Consistency conditions (†).
					if s1.pt.i == s2.pt.i && ve1[0] != ve2[0] {
						continue
					}
					if s1.pt.p == s2.pt.p && ve1[1] != ve2[1] {
						continue
					}
					out = append(out, substitute(map[rdf.Term]rdf.Term{
						s1.term: bVar(ve1[0], ve1[1], s1.pt, s1.term),
						s2.term: bVar(ve2[0], ve2[1], s2.pt, s2.term),
					}))
				}
			}
		}
	}
	return hom.NewGTGraph(hom.NewTGraph(out...), x), nil
}

// frozenPrefix is the paper's a_?x naming for frozen variables.
const frozenPrefix = "frozen:"

// freezeInstance applies the paper's Ψ: every variable of B becomes
// the IRI frozen:<name>; IRIs are unchanged. µ maps each distinguished
// variable to its frozen image.
func freezeInstance(b hom.GTGraph, x []rdf.Term) (*rdf.Graph, rdf.Mapping) {
	conv := func(t rdf.Term) rdf.Term {
		if t.IsVar() {
			return rdf.IRI(frozenPrefix + t.Value)
		}
		return t
	}
	g := rdf.NewGraph()
	for _, tri := range b.S {
		g.Add(rdf.T(conv(tri.S), conv(tri.P), conv(tri.O)))
	}
	mu := rdf.NewMapping()
	for _, v := range x {
		mu[v.Value] = frozenPrefix + v.Value
	}
	return g, mu
}

// HomAgreesWithClique reports the two sides of Lemma 2, item 3:
// whether (S, X) → (B, X) and whether H has a k-clique. The test suite
// asserts they coincide.
func (in *Instance) HomAgreesWithClique() (homHolds, cliqueExists bool) {
	return hom.Hom(in.S, in.B), graphalg.HasClique(in.H, in.K)
}

// SolveCliqueViaEval decides whether H contains a k-clique by running
// co-wdEVAL on the reduced instance with the natural algorithm:
// H has a k-clique ⟺ µ ∉ ⟦P⟧G (Section 4.2, correctness of the
// reduction).
func (in *Instance) SolveCliqueViaEval() bool {
	return !core.EvalNaive(in.Forest, in.G, in.Mu)
}

// SolveClique is the convenience wrapper: build the instance for
// (H, k) and decide the clique question through co-wdEVAL.
func SolveClique(k int, h *graphalg.UGraph) (bool, error) {
	in, err := New(k, h)
	if err != nil {
		return false, err
	}
	return in.SolveCliqueViaEval(), nil
}
