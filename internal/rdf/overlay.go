package rdf

// Mutable delta overlay: a small map-backed write layer stacked on a
// sealed (frozen or sharded) base graph, so a serving engine can
// accept live writes without thawing the CSR arenas underneath its
// readers.
//
// The design exploits the engine-wide ordering invariant directly.
// Every read path returns triples in global insertion (sequence)
// order, and every overlay triple is inserted after every base triple,
// so overlay sequence numbers form a strict suffix of the global
// sequence: for any posting list, concatenating the base list (already
// seq-ordered, whether it comes from a map index, a frozen arena range
// or a cross-shard mergeBySeq) with the overlay's insertion-ordered
// list IS the k-way merge by sequence number. No merge machinery runs
// on reads — the overlay is one more mergeSrc whose sequence range
// happens to start after all others end, collapsing the merge to an
// append.
//
// Derived state follows the same base-plus-delta shape: the base
// occurrence table (g.occ) is never touched — overlay occurrence
// counts live in occDelta and dom(G) growth in domDelta — so a base
// shared between forked generations (see Graph.Fork) stays immutable
// while each generation's overlay grows independently.
//
// Structural invariant: g.ovl != nil implies the graph is sealed
// (g.frz != nil or g.shd != nil). The overlay lives and dies with the
// sealed view: thaw folds it into the map backend, Freeze / Shard /
// Compact fold it into a new sealed base.

// overlay is the write layer. Posting lists mirror the map backend's
// six positional indexes and are insertion-ordered, which is all the
// concat-as-merge argument above needs.
type overlay struct {
	set map[IDTriple]struct{}
	ts  []IDTriple // overlay insertion order (global seq = len(base.all) + index)

	byS  map[TermID][]IDTriple
	byP  map[TermID][]IDTriple
	byO  map[TermID][]IDTriple
	bySP map[[2]TermID][]IDTriple
	byPO map[[2]TermID][]IDTriple
	bySO map[[2]TermID][]IDTriple

	occDelta map[TermID]int32 // occurrence counts on top of base occ
	domDelta int              // IRIs in dom(G) that the base does not have
}

func newOverlay() *overlay {
	return &overlay{
		set:      map[IDTriple]struct{}{},
		byS:      map[TermID][]IDTriple{},
		byP:      map[TermID][]IDTriple{},
		byO:      map[TermID][]IDTriple{},
		bySP:     map[[2]TermID][]IDTriple{},
		byPO:     map[[2]TermID][]IDTriple{},
		bySO:     map[[2]TermID][]IDTriple{},
		occDelta: map[TermID]int32{},
	}
}

func (o *overlay) index(t IDTriple) {
	o.byS[t[0]] = append(o.byS[t[0]], t)
	o.byP[t[1]] = append(o.byP[t[1]], t)
	o.byO[t[2]] = append(o.byO[t[2]], t)
	o.bySP[[2]TermID{t[0], t[1]}] = append(o.bySP[[2]TermID{t[0], t[1]}], t)
	o.byPO[[2]TermID{t[1], t[2]}] = append(o.byPO[[2]TermID{t[1], t[2]}], t)
	o.bySO[[2]TermID{t[0], t[2]}] = append(o.bySO[[2]TermID{t[0], t[2]}], t)
}

// candidates returns the overlay's posting list for the pattern, in
// overlay insertion order. The caller (Graph.CandidatesID) resolves
// fully-bound patterns through the membership sets instead.
func (o *overlay) candidates(p IDTriple) []IDTriple {
	sB, pB, oB := !p[0].IsVar(), !p[1].IsVar(), !p[2].IsVar()
	switch {
	case sB && pB && oB:
		if _, ok := o.set[p]; ok {
			return []IDTriple{p}
		}
		return nil
	case sB && pB:
		return o.bySP[[2]TermID{p[0], p[1]}]
	case pB && oB:
		return o.byPO[[2]TermID{p[1], p[2]}]
	case sB && oB:
		return o.bySO[[2]TermID{p[0], p[2]}]
	case sB:
		return o.byS[p[0]]
	case pB:
		return o.byP[p[1]]
	case oB:
		return o.byO[p[2]]
	default:
		return o.ts
	}
}

// count returns the number of overlay triples matching a pattern with
// no repeated variables: a posting-list length, never a merge or scan.
func (o *overlay) count(p IDTriple) int {
	if !p[0].IsVar() && !p[1].IsVar() && !p[2].IsVar() {
		if _, ok := o.set[p]; ok {
			return 1
		}
		return 0
	}
	return len(o.candidates(p))
}

// AddDelta inserts a ground triple without disturbing a sealed base:
// on a frozen or sharded graph the triple goes into the overlay write
// layer and the CSR views stay untouched (in-flight readers of the
// base are never invalidated); on an unsealed graph it is a plain Add.
// Adding a triple that contains a variable panics, like Add.
func (g *Graph) AddDelta(t Triple) {
	if !t.Ground() {
		panic("rdf: cannot add non-ground triple " + t.String() + " to a graph")
	}
	g.addDeltaID(IDTriple{
		g.dict.InternIRI(t.S.Value),
		g.dict.InternIRI(t.P.Value),
		g.dict.InternIRI(t.O.Value),
	})
}

// AddDeltaTriple is a convenience for AddDelta(T(IRI(s), IRI(p), IRI(o))).
func (g *Graph) AddDeltaTriple(s, p, o string) {
	g.addDeltaID(IDTriple{g.dict.InternIRI(s), g.dict.InternIRI(p), g.dict.InternIRI(o)})
}

// AddDeltaID is AddDelta for an encoded triple whose IDs were interned
// in g.Dict(). It panics on variable IDs or IDs unknown to the
// dictionary, like AddID.
func (g *Graph) AddDeltaID(t IDTriple) {
	for _, id := range t {
		if id.IsVar() || int(id) >= g.dict.NumIRIs() {
			panic("rdf: AddDeltaID: ID not interned as an IRI in this graph's dictionary")
		}
	}
	g.addDeltaID(t)
}

func (g *Graph) addDeltaID(t IDTriple) {
	if g.frz == nil && g.shd == nil {
		g.addID(t)
		return
	}
	if g.baseContains(t) {
		return
	}
	o := g.ovl
	if o == nil {
		o = newOverlay()
		g.ovl = o
	}
	if _, dup := o.set[t]; dup {
		return
	}
	o.set[t] = struct{}{}
	o.ts = append(o.ts, t)
	o.index(t)
	for _, id := range t {
		if g.baseOcc(id)+o.occDelta[id] == 0 {
			o.domDelta++
		}
		o.occDelta[id]++
	}
}

// baseContains is membership against the sealed base only, ignoring
// the overlay; the write path uses it to dedup against the base.
func (g *Graph) baseContains(t IDTriple) bool {
	if sg := g.shd; sg != nil {
		return sg.contains(t)
	}
	_, ok := g.frz.contains(t)
	return ok
}

// baseOcc is the base occurrence count for an IRI ID; IDs interned
// after the base was sealed (they live past the end of g.occ) have
// base count zero by construction.
func (g *Graph) baseOcc(id TermID) int32 {
	if int(id) < len(g.occ) {
		return g.occ[id]
	}
	return 0
}

// HasOverlay reports whether the graph carries a non-empty overlay.
func (g *Graph) HasOverlay() bool { return g.ovl != nil && len(g.ovl.ts) > 0 }

// OverlayLen returns the number of triples in the overlay write layer.
func (g *Graph) OverlayLen() int {
	if g.ovl == nil {
		return 0
	}
	return len(g.ovl.ts)
}

// Fork returns a new generation of a sealed graph: it shares the
// receiver's immutable base storage (CSR views, insertion-order slice,
// occurrence table) and dictionary contents, deep-copies the overlay,
// and is independently mutable through AddDelta / Compact. The cost is
// O(overlay + dictionary extension), not O(graph) — this is what makes
// swap-a-whole-generation the cheap path for live ingest.
//
// From the fork on, the receiver must be treated as read-only (its
// dictionary is forked-from; see Dict.Fork): serve existing readers
// from it, route all writes to the fork. Fork panics on an unsealed
// graph — the map backend is already mutable in place.
func (g *Graph) Fork() *Graph {
	if g.frz == nil && g.shd == nil {
		panic("rdf: Fork: graph must be sealed (frozen or sharded)")
	}
	out := &Graph{
		dict:    g.dict.Fork(),
		all:     g.all,
		occ:     g.occ,
		domSize: g.domSize,
		frz:     g.frz,
		shd:     g.shd,
	}
	if o := g.ovl; o != nil {
		for _, t := range o.ts {
			out.addDeltaID(t)
		}
	}
	return out
}

// foldOverlay folds the overlay into the insertion-order slice and the
// occurrence table and clears it. Both are written as fresh slices —
// never in place — because the base versions may be shared with forked
// sibling generations. The sealed views are stale afterwards; callers
// re-seal (Compact, Freeze, Shard) or rebuild the map backend (thaw).
func (g *Graph) foldOverlay() {
	o := g.ovl
	all := make([]IDTriple, 0, len(g.all)+len(o.ts))
	all = append(all, g.all...)
	all = append(all, o.ts...)
	occ := make([]int32, g.dict.NumIRIs())
	copy(occ, g.occ)
	for id, d := range o.occDelta {
		occ[id] += d
	}
	g.all, g.occ = all, occ
	g.domSize += o.domDelta
	g.ovl = nil
}

// Compact folds the overlay into a new sealed base in the graph's
// current backend shape: a sharded base re-shards with the same shard
// count, a frozen base re-freezes. The re-freeze path of the ingest
// pipeline is exactly Fork + Compact: the old generation keeps serving
// its readers untouched while the fork compacts, then the generation
// pointer swaps. Compact on a graph without an overlay is a no-op.
func (g *Graph) Compact() *Graph {
	if g.ovl == nil {
		return g
	}
	if g.shd != nil {
		n := g.shd.n
		g.foldOverlay()
		g.shd = shardGraph(g, n)
	} else {
		g.foldOverlay()
		g.frz = freezeGraph(g)
	}
	return g
}
