package rdf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property-based tests on the mapping algebra of Section 2: the
// compatibility relation and union operation obey the laws the
// evaluation semantics silently relies on.

// genMapping produces small random mappings over a fixed vocabulary so
// that collisions (shared variables) are common.
func genMapping(rng *rand.Rand) Mapping {
	vars := []string{"x", "y", "z", "w"}
	vals := []string{"a", "b", "c"}
	m := NewMapping()
	for _, v := range vars {
		switch rng.Intn(3) {
		case 0:
			m[v] = vals[rng.Intn(len(vals))]
		}
	}
	return m
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 400,
		Values: func(args []reflect.Value, rng *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(genMapping(rng))
			}
		},
	}
}

func TestQuickCompatibilitySymmetric(t *testing.T) {
	prop := func(m1, m2 Mapping) bool {
		return m1.Compatible(m2) == m2.Compatible(m1)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionCommutative(t *testing.T) {
	prop := func(m1, m2 Mapping) bool {
		u1, ok1 := m1.Union(m2)
		u2, ok2 := m2.Union(m1)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || u1.Equal(u2)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionAssociative(t *testing.T) {
	prop := func(m1, m2, m3 Mapping) bool {
		// ((m1 ∪ m2) ∪ m3) and (m1 ∪ (m2 ∪ m3)) agree whenever both
		// are defined; definedness can differ only in failure order,
		// not in outcome, for mappings (they are functions).
		u12, ok12 := m1.Union(m2)
		u23, ok23 := m2.Union(m3)
		if ok12 && ok23 {
			l, okL := u12.Union(m3)
			r, okR := m1.Union(u23)
			if okL != okR {
				return false
			}
			if okL && !l.Equal(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionExtendsBoth(t *testing.T) {
	prop := func(m1, m2 Mapping) bool {
		u, ok := m1.Union(m2)
		if !ok {
			return true
		}
		for k, v := range m1 {
			if u[k] != v {
				return false
			}
		}
		for k, v := range m2 {
			if u[k] != v {
				return false
			}
		}
		return len(u) <= len(m1)+len(m2)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyInjective(t *testing.T) {
	prop := func(m1, m2 Mapping) bool {
		return (m1.Key() == m2.Key()) == m1.Equal(m2)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRestrictSubset(t *testing.T) {
	prop := func(m Mapping) bool {
		r := m.Restrict([]Term{Var("x"), Var("y")})
		if len(r) > len(m) {
			return false
		}
		for k, v := range r {
			if m[k] != v {
				return false
			}
		}
		if !m.Compatible(r) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Graph.Match agrees with a naive full scan for every pattern shape.
func TestQuickMatchAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nodes := []string{"a", "b", "c"}
	preds := []string{"p", "q"}
	pickTerm := func(pool []string) Term {
		switch rng.Intn(3) {
		case 0:
			return Var([]string{"x", "y"}[rng.Intn(2)])
		default:
			return IRI(pool[rng.Intn(len(pool))])
		}
	}
	for trial := 0; trial < 300; trial++ {
		g := NewGraph()
		for i := 0; i < 6; i++ {
			g.AddTriple(nodes[rng.Intn(3)], preds[rng.Intn(2)], nodes[rng.Intn(3)])
		}
		pat := T(pickTerm(nodes), pickTerm(preds), pickTerm(nodes))
		got := map[Triple]bool{}
		for _, m := range g.Match(pat) {
			got[m] = true
		}
		want := map[Triple]bool{}
		for _, tr := range g.Triples() {
			if naiveMatch(pat, tr) {
				want[tr] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: pattern %s: indexed %d vs scan %d", trial, pat, len(got), len(want))
		}
		for tr := range want {
			if !got[tr] {
				t.Fatalf("trial %d: missing %s", trial, tr)
			}
		}
	}
}

func naiveMatch(p, t Triple) bool {
	bind := map[string]string{}
	pa, ta := p.Terms(), t.Terms()
	for i := 0; i < 3; i++ {
		if pa[i].IsIRI() {
			if pa[i] != ta[i] {
				return false
			}
			continue
		}
		if prev, ok := bind[pa[i].Value]; ok && prev != ta[i].Value {
			return false
		}
		bind[pa[i].Value] = ta[i].Value
	}
	return true
}
