package rdf

// This file implements the frozen (sealed) storage backend of Graph:
// the standard dictionary-encoded + CSR design of production RDF
// stores. Freeze compacts the six hash-map positional indexes of the
// construction-time graph into flat triple arenas with offset arrays
// indexed by dense TermID, so every read probe is an array access (one
// key bound), a galloping/binary range search (two keys bound) or an
// open-addressing probe (ground triple), with no map hashing and no
// per-key slice headers. A frozen graph is immutable — exactly the
// concurrent-reader contract the evaluation stack relies on — and
// mutation through Add/AddID transparently thaws it back into the
// map-backed representation.
//
// Two kinds of view coexist:
//
//   - The primary, order-bearing arenas (arenaS/arenaP/arenaO) keep
//     each posting list in insertion order, byte-identical to the map
//     backend's lists, so the enumeration pipeline's determinism
//     invariants (ROADMAP "Enumeration pipeline") hold unchanged on a
//     frozen graph.
//   - The secondarily-sorted arenas (arenaSP/arenaPO/arenaSO) reuse
//     the same grouping but stably order each group by a second
//     position, so two-key posting lists are contiguous ranges found
//     by galloping search rather than separate maps. Stability makes
//     even these ranges insertion-ordered, so no consumer can observe
//     a difference from the map backend.
//
// A future sharded backend should shard the primary views (and the
// membership table); the sorted views are derived per shard.

// frozenView is the compact immutable index structure of a frozen
// graph. All slices are built once by freezeGraph and never mutated.
type frozenView struct {
	nIRIs int // offsets cover TermIDs [0, nIRIs)

	// CSR offsets, length nIRIs+1. offX[id]..offX[id+1] delimits the
	// group of triples holding id at position X, in both the primary
	// and the secondarily-sorted arena of that grouping.
	offS, offP, offO []uint32

	// Primary order-bearing arenas: grouped by one position, insertion
	// order within each group (exactly the map backend's posting
	// lists).
	arenaS, arenaP, arenaO []IDTriple

	// Secondarily-sorted arenas: same grouping and offsets as the
	// primary arena of the first key, each group stably ordered by the
	// second key, so (k1,k2) posting lists are contiguous ranges — in
	// insertion order, by stability. Both groupings exist for every
	// key pair (hexastore-style), and the probe searches whichever
	// group is smaller: a two-key range inside a huge low-cardinality
	// group (say P with a handful of predicates) is found through the
	// other, far smaller group instead. Stability makes the two
	// realisations of the same range identical, content and order.
	arenaSP []IDTriple // grouped by S (offS), ordered by P within group
	arenaPS []IDTriple // grouped by P (offP), ordered by S within group
	arenaPO []IDTriple // grouped by P (offP), ordered by O within group
	arenaOP []IDTriple // grouped by O (offO), ordered by P within group
	arenaSO []IDTriple // grouped by S (offS), ordered by O within group
	arenaOS []IDTriple // grouped by O (offO), ordered by S within group

	// Key columns: the secondary key of each arena slot, extracted
	// into a dense []TermID so the galloping search touches 4-byte
	// keys instead of 12-byte triples — three times fewer cache lines
	// on large groups (the classic column-store trick).
	keySP, keyPS, keyPO, keyOP, keySO, keyOS []TermID

	// Membership: open-addressing (linear probing) table of indices
	// into all, power-of-two sized, load factor ≤ 1/2. Replaces the
	// map[IDTriple]struct{} of the mutable backend at a fraction of
	// its footprint.
	memb []uint32
	all  []IDTriple // the graph's insertion-order slice (shared)

	// Lazily-computed distinct-key counts backing the planner's
	// selectivity catalog; see cardstats.go.
	stats cardStats
}

// frozenAbsent marks an empty membership slot. Triple indexes are
// bounded by len(all) < 2³², so the all-ones pattern is free.
const frozenAbsent = ^uint32(0)

// freezeGraph builds the frozen view of the graph's current triple
// set; see freezeTriples.
func freezeGraph(g *Graph) *frozenView {
	return freezeTriples(g.all, g.dict.NumIRIs())
}

// freezeTriples builds a frozen view over an insertion-ordered triple
// slice in O(|all| + ni): three counting passes for the offsets, six
// stable scatter passes for the arenas, one insertion pass for the
// membership table. No comparison sort is involved — the secondary
// arenas come out of a two-pass LSD bucket sort whose stability is
// what preserves insertion order inside every (k1,k2) range. The
// sharded backend calls this once per shard with the shard's subset of
// the graph's triples (still in insertion order).
func freezeTriples(all []IDTriple, ni int) *frozenView {
	f := &frozenView{nIRIs: ni, all: all}
	f.offS = bucketOffsets(all, 0, ni)
	f.offP = bucketOffsets(all, 1, ni)
	f.offO = bucketOffsets(all, 2, ni)
	cur := make([]uint32, ni+1) // scatter cursor, reused across passes
	f.arenaS = bucketScatter(all, 0, f.offS, cur)
	f.arenaP = bucketScatter(all, 1, f.offP, cur)
	f.arenaO = bucketScatter(all, 2, f.offO, cur)
	// Secondary views: the inner pass has already ordered the triples
	// by the secondary key (insertion order within equal keys); the
	// outer stable pass groups by the primary key without disturbing
	// that order.
	f.arenaSP = bucketScatter(f.arenaP, 0, f.offS, cur)
	f.arenaPS = bucketScatter(f.arenaS, 1, f.offP, cur)
	f.arenaPO = bucketScatter(f.arenaO, 1, f.offP, cur)
	f.arenaOP = bucketScatter(f.arenaP, 2, f.offO, cur)
	f.arenaSO = bucketScatter(f.arenaO, 0, f.offS, cur)
	f.arenaOS = bucketScatter(f.arenaS, 2, f.offO, cur)
	f.keySP = keyColumn(f.arenaSP, 1)
	f.keyPS = keyColumn(f.arenaPS, 0)
	f.keyPO = keyColumn(f.arenaPO, 2)
	f.keyOP = keyColumn(f.arenaOP, 1)
	f.keySO = keyColumn(f.arenaSO, 2)
	f.keyOS = keyColumn(f.arenaOS, 0)
	f.memb = buildMembership(all)
	return f
}

// keyColumn extracts one position of the arena into a dense key
// slice.
func keyColumn(arena []IDTriple, pos int) []TermID {
	out := make([]TermID, len(arena))
	for i, t := range arena {
		out[i] = t[pos]
	}
	return out
}

// bucketOffsets counts the triples per TermID at the position and
// prefix-sums the counts into CSR offsets.
func bucketOffsets(ts []IDTriple, pos, ni int) []uint32 {
	off := make([]uint32, ni+1)
	for _, t := range ts {
		off[t[pos]+1]++
	}
	for i := 1; i <= ni; i++ {
		off[i] += off[i-1]
	}
	return off
}

// bucketScatter stably distributes src into groups delimited by off
// (the offsets of the given position), preserving src's relative
// order within each group.
func bucketScatter(src []IDTriple, pos int, off, cur []uint32) []IDTriple {
	copy(cur, off)
	out := make([]IDTriple, len(src))
	for _, t := range src {
		out[cur[t[pos]]] = t
		cur[t[pos]]++
	}
	return out
}

// buildMembership builds the linear-probing membership table over
// indices into all.
func buildMembership(all []IDTriple) []uint32 {
	size := 2
	for size < 2*len(all) {
		size <<= 1
	}
	memb := make([]uint32, size)
	for i := range memb {
		memb[i] = frozenAbsent
	}
	mask := uint32(size - 1)
	for i, t := range all {
		h := hashIDTriple(t) & mask
		for memb[h] != frozenAbsent {
			h = (h + 1) & mask
		}
		memb[h] = uint32(i)
	}
	return memb
}

// hashIDTriple mixes the three term IDs through a splitmix64-style
// finalizer; the table is power-of-two sized, so all output bits must
// carry entropy.
func hashIDTriple(t IDTriple) uint32 {
	h := uint64(t[0])*0x9E3779B185EBCA87 + uint64(t[1])
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h += uint64(t[2])
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return uint32(h ^ (h >> 31))
}

// contains probes the membership table; on a hit it returns the
// one-element slice of the graph's insertion-order storage holding the
// triple (full-capacity-clamped, so callers cannot append into the
// neighbouring triples).
func (f *frozenView) contains(t IDTriple) ([]IDTriple, bool) {
	if len(f.all) == 0 {
		return nil, false
	}
	mask := uint32(len(f.memb) - 1)
	h := hashIDTriple(t) & mask
	for {
		idx := f.memb[h]
		if idx == frozenAbsent {
			return nil, false
		}
		if f.all[idx] == t {
			return f.all[idx : idx+1 : idx+1], true
		}
		h = (h + 1) & mask
	}
}

// groupLen returns the size of the key's group in O(1); IDs past the
// frozen dictionary bound have empty groups.
func (f *frozenView) groupLen(off []uint32, key TermID) uint32 {
	k := int(key)
	if k >= f.nIRIs {
		return 0
	}
	return off[k+1] - off[k]
}

// range1 returns the single-key posting list: one O(1) offset probe.
// IDs past the frozen dictionary bound (interned after the freeze)
// occur in no triple.
func (f *frozenView) range1(off []uint32, arena []IDTriple, key TermID) []IDTriple {
	k := int(key)
	if k >= f.nIRIs {
		return nil
	}
	return arena[off[k]:off[k+1]]
}

// range2 returns the (k1,k2) posting list: the contiguous run with
// the secondary key equal to k2 inside the k1 group of the
// secondarily-sorted arena, located by galloping search over the
// dense key column.
func (f *frozenView) range2(off []uint32, arena []IDTriple, keys []TermID, k1, k2 TermID) []IDTriple {
	b, e := f.range2Bounds(off, keys, k1, k2)
	return arena[b:e]
}

// range2Bounds locates the (k1,k2) run and returns its absolute
// [begin, end) index range into the arena (empty range on a miss). The
// sharded backend uses the indexes to slice the arena and its aligned
// sequence-number column in lockstep.
func (f *frozenView) range2Bounds(off []uint32, keys []TermID, k1, k2 TermID) (uint32, uint32) {
	k := int(k1)
	if k >= f.nIRIs {
		return 0, 0
	}
	b, e := off[k], off[k+1]
	grp := keys[b:e]
	var lo, hi int
	if len(grp) <= smallGroup {
		// Short groups: a sequential scan over the dense key column
		// stays in one or two cache lines and out-predicts the
		// galloping branches.
		for lo < len(grp) && grp[lo] < k2 {
			lo++
		}
		hi = lo
		for hi < len(grp) && grp[hi] == k2 {
			hi++
		}
	} else {
		lo = gallopFloor(grp, k2)
		if lo == len(grp) || grp[lo] != k2 {
			return b, b
		}
		hi = lo + gallopFloor(grp[lo:], k2+1)
	}
	return b + uint32(lo), b + uint32(hi)
}

// smallGroup is the group size below which range2 scans linearly
// instead of galloping.
const smallGroup = 32

// gallopFloor returns the smallest index i with grp[i] ≥ key:
// exponential (galloping) probing brackets the answer in O(log r)
// steps for an answer at distance r, then binary search narrows the
// bracket — the classic sorted-list intersection primitive, cheaper
// than a full binary search when ranges sit near the group start.
func gallopFloor(grp []TermID, key TermID) int {
	n := len(grp)
	if n == 0 || grp[0] >= key {
		return 0
	}
	// Invariant: grp[lo] < key; answer in (lo, hi].
	lo, hi := 0, 1
	for hi < n && grp[hi] < key {
		lo, hi = hi, hi<<1
	}
	if hi > n {
		hi = n
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if grp[mid] < key {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// candidates mirrors Graph.CandidatesID on the frozen indexes. Every
// returned slice is (a range of) immutable frozen storage in exactly
// the order the map backend would produce.
func (f *frozenView) candidates(p IDTriple) []IDTriple {
	sB, pB, oB := !p[0].IsVar(), !p[1].IsVar(), !p[2].IsVar()
	switch {
	case sB && pB && oB:
		hit, _ := f.contains(p)
		return hit
	case sB && pB:
		if f.groupLen(f.offS, p[0]) <= f.groupLen(f.offP, p[1]) {
			return f.range2(f.offS, f.arenaSP, f.keySP, p[0], p[1])
		}
		return f.range2(f.offP, f.arenaPS, f.keyPS, p[1], p[0])
	case pB && oB:
		if f.groupLen(f.offP, p[1]) <= f.groupLen(f.offO, p[2]) {
			return f.range2(f.offP, f.arenaPO, f.keyPO, p[1], p[2])
		}
		return f.range2(f.offO, f.arenaOP, f.keyOP, p[2], p[1])
	case sB && oB:
		if f.groupLen(f.offS, p[0]) <= f.groupLen(f.offO, p[2]) {
			return f.range2(f.offS, f.arenaSO, f.keySO, p[0], p[2])
		}
		return f.range2(f.offO, f.arenaOS, f.keyOS, p[2], p[0])
	case sB:
		return f.range1(f.offS, f.arenaS, p[0])
	case pB:
		return f.range1(f.offP, f.arenaP, p[1])
	case oB:
		return f.range1(f.offO, f.arenaO, p[2])
	default:
		return f.all
	}
}

// Freeze seals the graph into the compact CSR backend and releases the
// map indexes (roughly halving the resident footprint). Freeze is
// idempotent; the frozen view is immutable, so a frozen graph is safe
// for any number of concurrent readers. Freeze itself is a write
// operation: it must not run concurrently with reads or other writes.
//
// Mutating a frozen graph (Add, AddID, Merge) transparently thaws it
// back to the map-backed representation; call Freeze again after the
// mutation burst to re-seal. Freeze returns its receiver so bulk
// construction can chain: NewGraph → Add… → Freeze.
func (g *Graph) Freeze() *Graph {
	if g.ovl != nil {
		// A sealed graph with an overlay: fold the write layer into a
		// fresh base (never in place — the old base may be shared with
		// forked generations) and re-seal single-arena.
		g.foldOverlay()
		g.frz = freezeGraph(g)
		g.shd = nil
		return g
	}
	if g.frz == nil {
		g.frz = freezeGraph(g)
		g.shd = nil // freezing a sharded graph re-seals single-arena
		g.set = nil
		g.byS, g.byP, g.byO = nil, nil, nil
		g.bySP, g.byPO, g.bySO = nil, nil, nil
	}
	return g
}

// Frozen reports whether the graph currently uses the frozen backend.
func (g *Graph) Frozen() bool { return g.frz != nil }

// thaw rebuilds the map indexes from the insertion-order slice and
// discards the frozen (or sharded) view; called by the mutation path
// when a sealed graph is modified. An overlay is folded in at its
// sequence position (a strict suffix of the base), and the
// insertion-order slice and occurrence table come out fresh — the
// originals may be shared with forked sibling generations, and the
// mutable backend is about to append and increment in place. Posting
// lists are rebuilt in insertion order, so a thawed graph is
// indistinguishable from one that was never sealed.
func (g *Graph) thaw() {
	if g.ovl != nil {
		g.foldOverlay() // already allocates fresh all and occ
	} else {
		g.all = g.all[:len(g.all):len(g.all)] // clip: appends must reallocate, not write a shared array
		occ := make([]int32, g.dict.NumIRIs())
		copy(occ, g.occ)
		g.occ = occ
	}
	g.frz = nil
	g.shd = nil
	g.set = make(map[IDTriple]struct{}, len(g.all))
	g.byS = map[TermID][]IDTriple{}
	g.byP = map[TermID][]IDTriple{}
	g.byO = map[TermID][]IDTriple{}
	g.bySP = map[[2]TermID][]IDTriple{}
	g.byPO = map[[2]TermID][]IDTriple{}
	g.bySO = map[[2]TermID][]IDTriple{}
	for _, t := range g.all {
		g.set[t] = struct{}{}
		g.indexID(t)
	}
}
