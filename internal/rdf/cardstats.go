package rdf

// Selectivity catalog: distinct-key statistics the compile-time query
// planner (internal/plan) reads alongside MatchCountID. The CSR offset
// arrays of the sealed backends already answer "how many triples carry
// key k at position X" in O(1); this file adds the complementary
// domain-size questions — how many distinct subjects/predicates/objects
// exist, globally and under a fixed predicate — that turn posting
// lengths into per-bound-variable selectivity estimates.
//
// Cost discipline mirrors the backends' own contracts:
//
//   - Map backend: global counts are the index map sizes (O(1));
//     per-predicate counts scan one posting list. The map backend is
//     mutable, so nothing is cached.
//   - Frozen / sharded: global counts are computed once, lazily, by a
//     single pass over the offset (or global count) arrays, guarded by
//     sync.Once so the first plan compilation is safe under concurrent
//     readers and mmap-loaded snapshots stay O(1) until a plan asks.
//     Per-predicate counts walk one key column group, whose secondary
//     sort makes distinct values = key transitions.
//   - Sharded: subjects partition across shards (shardOfID hashes the
//     subject), so per-shard distinct-subject sums are exact. Distinct
//     objects under a predicate are per-shard sums and therefore an
//     upper bound — acceptable for an estimator, documented here so
//     nobody mistakes it for an invariant.
//   - Overlay: the delta adds only keys absent from the sealed base
//     (checked by O(1)/O(log) base probes per overlay key), keeping the
//     counts exact on frozen bases. Overlays are small by construction.

import "sync"

// cardStats is the lazily-filled global distinct-count cache embedded
// in the immutable sealed views.
type cardStats struct {
	once                sync.Once
	distS, distP, distO int
}

// DistinctCount reports the number of distinct IRIs occurring at
// position pos (0 = subject, 1 = predicate, 2 = object) across the
// graph, overlay included.
func (g *Graph) DistinctCount(pos int) int {
	var base int
	switch {
	case g.shd != nil:
		base = g.shd.distinct(pos)
	case g.frz != nil:
		base = g.frz.distinct(pos)
	default:
		switch pos {
		case 0:
			return len(g.byS)
		case 1:
			return len(g.byP)
		default:
			return len(g.byO)
		}
	}
	if g.ovl != nil {
		base += g.overlayNewKeys(pos)
	}
	return base
}

// DistinctUnderPredicate reports the number of distinct terms at
// position pos (0 = subject, 2 = object) among the triples whose
// predicate is p. Exact on map, frozen and overlay backends; on a
// sharded base the object count is a per-shard sum and may double
// count objects recurring across shards (subject counts stay exact —
// subjects partition by shard). Callers treat it as an estimate.
func (g *Graph) DistinctUnderPredicate(p TermID, pos int) int {
	var base int
	switch {
	case g.shd != nil:
		for i := range g.shd.shards {
			base += g.shd.shards[i].view.distinctUnder(p, pos)
		}
	case g.frz != nil:
		base = g.frz.distinctUnder(p, pos)
	default:
		seen := make(map[TermID]struct{})
		for _, t := range g.byP[p] {
			seen[t[pos]] = struct{}{}
		}
		return len(seen)
	}
	if g.ovl != nil {
		base += g.overlayNewUnder(p, pos)
	}
	return base
}

// distinct returns the global distinct-key count of one position,
// computing all three on first use.
func (f *frozenView) distinct(pos int) int {
	f.stats.once.Do(func() {
		f.stats.distS = nonzeroGroups(f.offS)
		f.stats.distP = nonzeroGroups(f.offP)
		f.stats.distO = nonzeroGroups(f.offO)
	})
	switch pos {
	case 0:
		return f.stats.distS
	case 1:
		return f.stats.distP
	default:
		return f.stats.distO
	}
}

// distinctUnder counts key transitions in the secondarily-sorted key
// column of predicate p's group: keyPS (subjects) or keyPO (objects)
// order the group by exactly the key being counted.
func (f *frozenView) distinctUnder(p TermID, pos int) int {
	k := int(p)
	if p.IsVar() || k >= f.nIRIs {
		return 0
	}
	keys := f.keyPS
	if pos == 2 {
		keys = f.keyPO
	}
	grp := keys[f.offP[k]:f.offP[k+1]]
	n := 0
	for i, v := range grp {
		if i == 0 || grp[i-1] != v {
			n++
		}
	}
	return n
}

func (sg *ShardedGraph) distinct(pos int) int {
	sg.stats.once.Do(func() {
		for i := range sg.shards {
			// Subjects partition across shards, so the sum is exact.
			sg.stats.distS += sg.shards[i].view.distinct(0)
		}
		sg.stats.distP = nonzeroGroups(sg.cntP)
		sg.stats.distO = nonzeroGroups(sg.cntO)
	})
	switch pos {
	case 0:
		return sg.stats.distS
	case 1:
		return sg.stats.distP
	default:
		return sg.stats.distO
	}
}

// groupLen is the sealed-base posting-list length of one key, the
// O(1) probe the overlay delta counts lean on.
func (sg *ShardedGraph) groupLen(pos int, k TermID) int {
	if k.IsVar() || int(k) >= sg.nIRIs {
		return 0
	}
	switch pos {
	case 0:
		v := sg.shards[shardOfID(k, sg.n)].view
		return int(v.groupLen(v.offS, k))
	case 1:
		return int(sg.cntP[k+1] - sg.cntP[k])
	default:
		return int(sg.cntO[k+1] - sg.cntO[k])
	}
}

// nonzeroGroups counts keys with a non-empty posting list in a CSR
// offset (or global count-offset) array.
func nonzeroGroups(off []uint32) int {
	n := 0
	for i := 1; i < len(off); i++ {
		if off[i] > off[i-1] {
			n++
		}
	}
	return n
}

// overlayNewKeys counts overlay posting-list keys at position pos that
// the sealed base has never seen, i.e. the overlay's contribution to
// the global distinct count. Map iteration order is irrelevant — only
// the count is returned.
func (g *Graph) overlayNewKeys(pos int) int {
	var m map[TermID][]IDTriple
	switch pos {
	case 0:
		m = g.ovl.byS
	case 1:
		m = g.ovl.byP
	default:
		m = g.ovl.byO
	}
	n := 0
	for k := range m {
		if g.baseGroupLen(pos, k) == 0 {
			n++
		}
	}
	return n
}

func (g *Graph) baseGroupLen(pos int, k TermID) int {
	if g.shd != nil {
		return g.shd.groupLen(pos, k)
	}
	switch pos {
	case 0:
		return int(g.frz.groupLen(g.frz.offS, k))
	case 1:
		return int(g.frz.groupLen(g.frz.offP, k))
	default:
		return int(g.frz.groupLen(g.frz.offO, k))
	}
}

// overlayNewUnder counts distinct values at position pos among overlay
// triples under predicate p that do not co-occur with p in the base.
func (g *Graph) overlayNewUnder(p TermID, pos int) int {
	seen := make(map[TermID]struct{})
	n := 0
	for _, t := range g.ovl.byP[p] {
		v := t[pos]
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		if !g.basePairHas(p, v, pos) {
			n++
		}
	}
	return n
}

// basePairHas reports whether the sealed base holds any triple with
// predicate p and value v at position pos (0 or 2).
func (g *Graph) basePairHas(p, v TermID, pos int) bool {
	if g.shd != nil {
		if pos == 0 {
			sh := g.shd.shards[shardOfID(v, g.shd.n)].view
			lo, hi := sh.range2Bounds(sh.offS, sh.keySP, v, p)
			return hi > lo
		}
		for i := range g.shd.shards {
			sh := g.shd.shards[i].view
			if lo, hi := sh.range2Bounds(sh.offP, sh.keyPO, p, v); hi > lo {
				return true
			}
		}
		return false
	}
	f := g.frz
	if pos == 0 {
		lo, hi := f.range2Bounds(f.offS, f.keySP, v, p)
		return hi > lo
	}
	lo, hi := f.range2Bounds(f.offP, f.keyPO, p, v)
	return hi > lo
}
