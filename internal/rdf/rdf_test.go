package rdf

import (
	"strings"
	"testing"
)

func TestTermBasics(t *testing.T) {
	v := Var("?x")
	if v.Value != "x" || !v.IsVar() || v.String() != "?x" {
		t.Fatalf("Var: %+v", v)
	}
	i := IRI("p")
	if !i.IsIRI() || i.String() != "p" {
		t.Fatalf("IRI: %+v", i)
	}
	if !i.Less(v) {
		t.Fatal("IRIs order before variables")
	}
}

func TestTripleVars(t *testing.T) {
	tr := T(Var("x"), IRI("p"), Var("x"))
	vs := tr.Vars()
	if len(vs) != 1 || vs[0] != Var("x") {
		t.Fatalf("repeated variable deduplicated: %v", vs)
	}
	if tr.Ground() {
		t.Fatal("has variables")
	}
	g := T(IRI("a"), IRI("p"), IRI("b"))
	if !g.Ground() {
		t.Fatal("ground triple")
	}
}

func TestVarsOfSorted(t *testing.T) {
	vs := VarsOf([]Triple{
		T(Var("z"), IRI("p"), Var("a")),
		T(Var("m"), IRI("p"), Var("z")),
	})
	if len(vs) != 3 {
		t.Fatalf("want 3 vars, got %v", vs)
	}
	for i := 1; i < len(vs); i++ {
		if !vs[i-1].Less(vs[i]) {
			t.Fatalf("not sorted: %v", vs)
		}
	}
}

func TestMappingCompatibility(t *testing.T) {
	m1 := Mapping{"x": "a", "y": "b"}
	m2 := Mapping{"y": "b", "z": "c"}
	m3 := Mapping{"y": "WRONG"}
	if !m1.Compatible(m2) {
		t.Fatal("m1 ~ m2")
	}
	if m1.Compatible(m3) {
		t.Fatal("m1 !~ m3")
	}
	u, ok := m1.Union(m2)
	if !ok || len(u) != 3 || u["z"] != "c" {
		t.Fatalf("union: %v %v", u, ok)
	}
	if _, ok := m1.Union(m3); ok {
		t.Fatal("incompatible union must fail")
	}
}

func TestMappingApplyRestrict(t *testing.T) {
	m := Mapping{"x": "a"}
	tr := m.Apply(T(Var("x"), IRI("p"), Var("y")))
	if tr.S != IRI("a") || tr.O != Var("y") {
		t.Fatalf("apply: %v", tr)
	}
	r := m.Restrict([]Term{Var("y")})
	if len(r) != 0 {
		t.Fatalf("restrict: %v", r)
	}
	if !m.Equal(Mapping{"x": "a"}) || m.Equal(Mapping{"x": "b"}) {
		t.Fatal("Equal broken")
	}
}

func TestMappingSet(t *testing.T) {
	s := NewMappingSet()
	if !s.Add(Mapping{"x": "a"}) || s.Add(Mapping{"x": "a"}) {
		t.Fatal("dedup broken")
	}
	s.Add(Mapping{"x": "b"})
	if s.Len() != 2 {
		t.Fatalf("len: %d", s.Len())
	}
	if !s.Contains(Mapping{"x": "a"}) || s.Contains(Mapping{"x": "c"}) {
		t.Fatal("contains broken")
	}
	sl := s.Slice()
	if len(sl) != 2 {
		t.Fatal("slice")
	}
}

func TestGraphIndexesAndMatch(t *testing.T) {
	g := GraphOf(
		T(IRI("a"), IRI("p"), IRI("b")),
		T(IRI("a"), IRI("p"), IRI("c")),
		T(IRI("b"), IRI("q"), IRI("c")),
	)
	if g.Len() != 3 {
		t.Fatalf("len %d", g.Len())
	}
	if n := len(g.Match(T(IRI("a"), IRI("p"), Var("o")))); n != 2 {
		t.Fatalf("SP match: %d", n)
	}
	if n := len(g.Match(T(Var("s"), IRI("q"), Var("o")))); n != 1 {
		t.Fatalf("P match: %d", n)
	}
	if n := len(g.Match(T(Var("s"), Var("p"), Var("o")))); n != 3 {
		t.Fatalf("full scan: %d", n)
	}
	if n := len(g.Match(T(Var("s"), Var("p"), Var("s")))); n != 0 {
		t.Fatalf("loop pattern: %d", n)
	}
	g.AddTriple("d", "r", "d")
	if n := len(g.Match(T(Var("s"), Var("p"), Var("s")))); n != 1 {
		t.Fatalf("loop pattern after adding loop: %d", n)
	}
	if g.MatchCount(T(IRI("a"), IRI("p"), Var("o"))) != 2 {
		t.Fatal("MatchCount")
	}
}

func TestGraphMatchMappings(t *testing.T) {
	g := GraphOf(T(IRI("a"), IRI("p"), IRI("b")))
	ms := g.MatchMappings(T(Var("x"), IRI("p"), Var("y")))
	if len(ms) != 1 || ms[0]["x"] != "a" || ms[0]["y"] != "b" {
		t.Fatalf("mappings: %v", ms)
	}
	// Ground pattern: one empty mapping if present.
	ms = g.MatchMappings(T(IRI("a"), IRI("p"), IRI("b")))
	if len(ms) != 1 || len(ms[0]) != 0 {
		t.Fatalf("ground match: %v", ms)
	}
	ms = g.MatchMappings(T(IRI("a"), IRI("p"), IRI("zzz")))
	if len(ms) != 0 {
		t.Fatalf("absent ground match: %v", ms)
	}
}

func TestGraphAddPanicsOnVariable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph().Add(T(Var("x"), IRI("p"), IRI("b")))
}

func TestGraphDomAndClone(t *testing.T) {
	g := GraphOf(T(IRI("a"), IRI("p"), IRI("b")))
	dom := g.Dom()
	if len(dom) != 3 || !g.HasIRI("p") || g.HasIRI("zzz") {
		t.Fatalf("dom: %v", dom)
	}
	c := g.Clone()
	c.AddTriple("x", "y", "z")
	if g.Len() != 1 || c.Len() != 2 || !g.Equal(g) || g.Equal(c) {
		t.Fatal("clone independence / Equal")
	}
	h := NewGraph()
	h.Merge(c)
	if !h.Equal(c) {
		t.Fatal("merge")
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	src := `
# a comment
a p b .
<http://x> <http://p> <http://y>
b q c .
`
	g, err := ParseGraph(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("len %d", g.Len())
	}
	out := FormatGraph(g)
	g2, err := ParseGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(g2) {
		t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", out, FormatGraph(g2))
	}
}

func TestNTriplesErrors(t *testing.T) {
	for _, bad := range []string{"a p", "a p b c", "?x p b", "<unterminated p b"} {
		if _, err := ParseGraph(bad); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestMappingString(t *testing.T) {
	m := Mapping{"y": "b", "x": "a"}
	s := m.String()
	if !strings.Contains(s, "?x->a") || strings.Index(s, "?x") > strings.Index(s, "?y") {
		t.Fatalf("deterministic rendering: %s", s)
	}
}
