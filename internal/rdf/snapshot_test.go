package rdf_test

// Snapshot round-trip and fault-injection tests. The round-trip half
// instantiates the full differential backend suite over write→load
// cycles (both kinds × both loaders), pinning a loaded snapshot to
// byte-identical streams with the map-backed reference. The fault-
// injection half takes a valid image and breaks it every way the
// format documents — truncation at every boundary, a bit flip in
// every header/table byte and every section payload, version skew,
// endianness skew, lying offsets — and asserts each load fails with
// a descriptive error rather than a panic (the suite runs under
// -race in CI, so torn loads would also surface here).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"wdsparql/internal/rdf"
	"wdsparql/internal/rdf/backendtest"
)

// roundTrip writes g as a snapshot in dir and loads it back in the
// given mode. The returned Snapshot is registered for cleanup.
func roundTrip(t *testing.T, dir string, seq *int, g *rdf.Graph, mode rdf.SnapshotMode) *rdf.Snapshot {
	t.Helper()
	*seq++
	path := filepath.Join(dir, fmt.Sprintf("g%d.wdsnap", *seq))
	if err := g.WriteSnapshot(path); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snap, err := rdf.LoadSnapshot(path, mode)
	if err != nil {
		t.Fatalf("LoadSnapshot(%v): %v", mode, err)
	}
	t.Cleanup(func() { snap.Close() })
	return snap
}

// TestSnapshotBackendSuite runs the differential backend suite over
// snapshot round-trips: every read of a loaded graph must be
// byte-identical (content and order) to the map-backed reference,
// for both graph kinds and both loaders.
func TestSnapshotBackendSuite(t *testing.T) {
	for _, cfg := range []struct {
		name   string
		shards int
		mode   rdf.SnapshotMode
	}{
		{"frozen/heap", 0, rdf.SnapshotHeap},
		{"frozen/mmap", 0, rdf.SnapshotMmap},
		{"sharded3/heap", 3, rdf.SnapshotHeap},
		{"sharded3/mmap", 3, rdf.SnapshotMmap},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			dir := t.TempDir()
			seq := 0
			backendtest.RunBackendSuite(t, func(ts []rdf.Triple) *rdf.Graph {
				var g *rdf.Graph
				if cfg.shards > 0 {
					g = rdf.GraphFromTriplesSharded(ts, cfg.shards)
				} else {
					g = rdf.GraphFromTriples(ts)
				}
				return roundTrip(t, dir, &seq, g, cfg.mode).Graph()
			})
		})
	}
}

// testGraph builds a deterministic graph with every structural feature
// the format serialises: multi-triple groups, shared predicates and
// objects, self-loops, and enough IRIs for non-trivial shard routing.
func testGraph(t *testing.T) []rdf.Triple {
	t.Helper()
	var ts []rdf.Triple
	for i := 0; i < 60; i++ {
		s := fmt.Sprintf("n%d", i)
		o := fmt.Sprintf("n%d", (i*7+3)%60)
		p := fmt.Sprintf("p%d", i%5)
		ts = append(ts, rdf.T(rdf.IRI(s), rdf.IRI(p), rdf.IRI(o)))
		if i%9 == 0 {
			ts = append(ts, rdf.T(rdf.IRI(s), rdf.IRI("loop"), rdf.IRI(s)))
		}
	}
	return ts
}

// writeTestSnapshot writes a snapshot of the deterministic test graph
// (sharded when shards ≥ 2) and returns its path and raw bytes.
func writeTestSnapshot(t *testing.T, dir string, shards int) (string, []byte) {
	t.Helper()
	ts := testGraph(t)
	var g *rdf.Graph
	if shards >= 2 {
		g = rdf.GraphFromTriplesSharded(ts, shards)
	} else {
		g = rdf.GraphFromTriples(ts)
	}
	path := filepath.Join(dir, fmt.Sprintf("test-%d.wdsnap", shards))
	if err := g.WriteSnapshot(path); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestSnapshotInfoAndInspect(t *testing.T) {
	dir := t.TempDir()
	path, data := writeTestSnapshot(t, dir, 3)
	snap, err := rdf.LoadSnapshot(path, rdf.SnapshotHeap)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	info := snap.Info()
	g := snap.Graph()
	if info.Kind != "sharded" || info.Shards != 3 {
		t.Errorf("Info kind/shards = %s/%d, want sharded/3", info.Kind, info.Shards)
	}
	if info.Triples != g.Len() || info.IRIs != g.Dict().NumIRIs() {
		t.Errorf("Info counts %d/%d disagree with graph %d/%d", info.Triples, info.IRIs, g.Len(), g.Dict().NumIRIs())
	}
	if info.FileSize != int64(len(data)) {
		t.Errorf("Info.FileSize = %d, want %d", info.FileSize, len(data))
	}
	if info.Mode != rdf.SnapshotHeap || info.Version != 1 {
		t.Errorf("Info mode/version = %v/%d", info.Mode, info.Version)
	}

	m, err := rdf.InspectSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Info.Checksum != info.Checksum || m.Info.Kind != "sharded" || m.Info.Triples != info.Triples {
		t.Errorf("Inspect disagrees with Load: %+v vs %+v", m.Info, info)
	}
	if len(m.Sections) == 0 {
		t.Fatal("Inspect returned no sections")
	}
	var payload uint64
	for _, s := range m.Sections {
		payload += s.Length
	}
	if payload > uint64(len(data)) {
		t.Errorf("section lengths sum to %d, beyond the %d-byte file", payload, len(data))
	}
}

func TestSnapshotVerifyDeep(t *testing.T) {
	dir := t.TempDir()
	for _, shards := range []int{0, 3} {
		path, _ := writeTestSnapshot(t, dir, shards)
		for _, mode := range []rdf.SnapshotMode{rdf.SnapshotHeap, rdf.SnapshotMmap} {
			snap, err := rdf.LoadSnapshot(path, mode)
			if err != nil {
				t.Fatalf("shards=%d mode=%v: %v", shards, mode, err)
			}
			if err := snap.VerifyDeep(); err != nil {
				t.Errorf("shards=%d mode=%v: VerifyDeep: %v", shards, mode, err)
			}
			snap.Close()
		}
	}
}

// TestSnapshotBuilderWrite covers the GraphBuilder path and the
// write-unsealed path (WriteSnapshot freezes on demand).
func TestSnapshotBuilderWrite(t *testing.T) {
	dir := t.TempDir()
	b := rdf.NewGraphBuilder(8)
	b.AddTriple("a", "p", "b")
	b.AddTriple("b", "p", "c")
	path := filepath.Join(dir, "built.wdsnap")
	g, err := b.WriteSnapshot(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Sharded() || g.Len() != 2 {
		t.Fatalf("builder returned graph sharded=%v len=%d", g.Sharded(), g.Len())
	}
	snap, err := rdf.LoadSnapshot(path, rdf.SnapshotHeap)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if snap.Info().Kind != "sharded" || snap.Info().Shards != 2 {
		t.Errorf("loaded kind/shards = %s/%d", snap.Info().Kind, snap.Info().Shards)
	}

	unsealed := rdf.GraphOf(rdf.T(rdf.IRI("x"), rdf.IRI("p"), rdf.IRI("y")))
	path2 := filepath.Join(dir, "unsealed.wdsnap")
	if err := unsealed.WriteSnapshot(path2); err != nil {
		t.Fatalf("WriteSnapshot of unsealed graph: %v", err)
	}
	if !unsealed.Frozen() {
		t.Error("WriteSnapshot must seal an unsealed graph")
	}

	if err := rdf.GraphOf().WriteSnapshot(filepath.Join(dir, "no/such/dir/x.wdsnap")); err == nil {
		t.Error("WriteSnapshot into a missing directory must fail")
	}
}

// TestSnapshotConcurrentReaders hammers one loaded graph from many
// goroutines; under -race this pins the loaded graph's concurrent-
// reader contract.
func TestSnapshotConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeTestSnapshot(t, dir, 3)
	snap, err := rdf.LoadSnapshot(path, rdf.SnapshotMmap)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	g := snap.Graph()
	ids := g.TriplesID()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ids); i += 2 {
				tr := ids[i]
				if !g.ContainsID(tr) {
					t.Errorf("lost triple %v", tr)
					return
				}
				g.MatchCountID(rdf.IDTriple{tr[0], rdf.VarID(0), rdf.VarID(1)})
				g.CandidatesID(rdf.IDTriple{rdf.VarID(0), tr[1], tr[2]})
			}
		}(w)
	}
	wg.Wait()
}

// --- fault injection ---------------------------------------------------

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// fixHeaderCRC recomputes the header checksum after a deliberate
// header edit, so the test reaches the validation the edit targets
// instead of tripping the CRC first. The offsets pin DESIGN.md §6.
func fixHeaderCRC(b []byte) {
	binary.LittleEndian.PutUint32(b[60:64], crc32.Checksum(b[0:60], castagnoli))
}

// fixTableCRC recomputes the section-table checksum (and then the
// header's) after a deliberate table edit.
func fixTableCRC(b []byte) {
	n := int(binary.LittleEndian.Uint32(b[32:36]))
	binary.LittleEndian.PutUint32(b[36:40], crc32.Checksum(b[64:64+24*n], castagnoli))
	fixHeaderCRC(b)
}

// mustFailLoad writes img to a file and asserts that loading it fails
// with a descriptive error — and does not panic — in both modes.
func mustFailLoad(t *testing.T, dir, desc string, img []byte) {
	t.Helper()
	path := filepath.Join(dir, "corrupt.wdsnap")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []rdf.SnapshotMode{rdf.SnapshotHeap, rdf.SnapshotMmap} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s (%v): load panicked: %v", desc, mode, r)
				}
			}()
			snap, err := rdf.LoadSnapshot(path, mode)
			if err == nil {
				snap.Close()
				t.Errorf("%s (%v): load succeeded, want an error", desc, mode)
				return
			}
			if strings.TrimSpace(err.Error()) == "" {
				t.Errorf("%s (%v): empty error message", desc, mode)
			}
		}()
	}
}

// mutated returns a copy of data with f applied.
func mutated(data []byte, f func(b []byte)) []byte {
	b := make([]byte, len(data))
	copy(b, data)
	f(b)
	return b
}

func TestSnapshotCorruption(t *testing.T) {
	for _, shards := range []int{0, 3} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			path, data := writeTestSnapshot(t, dir, shards)

			t.Run("truncation", func(t *testing.T) {
				cuts := []int{0, 1, 7, 8, 63, 64, 65, len(data) / 2, len(data) - 1}
				for _, n := range cuts {
					mustFailLoad(t, dir, fmt.Sprintf("truncated to %d bytes", n), data[:n])
				}
			})

			t.Run("trailing-garbage", func(t *testing.T) {
				mustFailLoad(t, dir, "appended bytes", append(append([]byte{}, data...), 0xAA, 0xBB))
			})

			t.Run("not-a-snapshot", func(t *testing.T) {
				mustFailLoad(t, dir, "text file", []byte("a p b .\na p c .\nthis is not a snapshot\n"))
				junk := make([]byte, 4096)
				for i := range junk {
					junk[i] = byte(i*131 + 17)
				}
				mustFailLoad(t, dir, "random bytes", junk)
			})

			// Flip every byte of the CRC-covered header+table prefix:
			// each single flip must be caught.
			t.Run("prefix-bit-flips", func(t *testing.T) {
				nSec := int(binary.LittleEndian.Uint32(data[32:36]))
				prefix := 64 + 24*nSec
				if shards > 0 && testing.Short() {
					prefix = 64 + 24*8 // sharded tables are long; sample in -short
				}
				for off := 0; off < prefix; off++ {
					img := mutated(data, func(b []byte) { b[off] ^= 0x40 })
					mustFailLoad(t, dir, fmt.Sprintf("bit flip at byte %d", off), img)
				}
			})

			// Flip a byte in the middle of every non-empty section
			// payload: the per-section CRC must catch it.
			t.Run("payload-bit-flips", func(t *testing.T) {
				m, err := rdf.InspectSnapshot(path)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range m.Sections {
					if s.Length == 0 {
						continue
					}
					off := s.Offset + s.Length/2
					img := mutated(data, func(b []byte) { b[off] ^= 0x01 })
					mustFailLoad(t, dir, fmt.Sprintf("bit flip in section %s/shard%d", s.Name, s.Shard), img)
				}
			})

			t.Run("version-skew", func(t *testing.T) {
				img := mutated(data, func(b []byte) {
					binary.LittleEndian.PutUint16(b[8:10], 2)
					fixHeaderCRC(b)
				})
				mustFailLoad(t, dir, "future version", img)
				assertLoadErrContains(t, dir, img, "version")
			})

			t.Run("endian-skew", func(t *testing.T) {
				img := mutated(data, func(b []byte) {
					b[10] ^= 3 // 1 <-> 2
					fixHeaderCRC(b)
				})
				mustFailLoad(t, dir, "foreign endianness", img)
				assertLoadErrContains(t, dir, img, "endian")
			})

			t.Run("unknown-kind", func(t *testing.T) {
				img := mutated(data, func(b []byte) {
					b[11] = 9
					fixHeaderCRC(b)
				})
				mustFailLoad(t, dir, "unknown kind", img)
			})

			t.Run("lying-counts", func(t *testing.T) {
				img := mutated(data, func(b []byte) {
					binary.LittleEndian.PutUint64(b[16:24], 1<<40) // nTriples
					fixHeaderCRC(b)
				})
				mustFailLoad(t, dir, "inflated triple count", img)
				img = mutated(data, func(b []byte) {
					binary.LittleEndian.PutUint64(b[24:32], 1<<62) // nIRIs
					fixHeaderCRC(b)
				})
				mustFailLoad(t, dir, "inflated IRI count", img)
			})

			// Lying offsets, CRCs patched so only the bounds check can
			// catch them: the classic would-index-out-of-bounds attack.
			t.Run("lying-offsets", func(t *testing.T) {
				for entry := 0; entry < 3; entry++ {
					base := 64 + 24*entry
					img := mutated(data, func(b []byte) {
						binary.LittleEndian.PutUint64(b[base+8:base+16], uint64(len(b))+4096)
						fixTableCRC(b)
					})
					mustFailLoad(t, dir, fmt.Sprintf("entry %d offset past EOF", entry), img)
					img = mutated(data, func(b []byte) {
						binary.LittleEndian.PutUint64(b[base+16:base+24], uint64(len(b))*2)
						fixTableCRC(b)
					})
					mustFailLoad(t, dir, fmt.Sprintf("entry %d length past EOF", entry), img)
					img = mutated(data, func(b []byte) {
						off := binary.LittleEndian.Uint64(b[base+8 : base+16])
						binary.LittleEndian.PutUint64(b[base+8:base+16], off+1) // misaligned
						fixTableCRC(b)
					})
					mustFailLoad(t, dir, fmt.Sprintf("entry %d misaligned offset", entry), img)
				}
			})

			t.Run("duplicate-section", func(t *testing.T) {
				img := mutated(data, func(b []byte) {
					copy(b[64+24:64+48], b[64:64+24]) // entry 1 := entry 0
					fixTableCRC(b)
				})
				mustFailLoad(t, dir, "duplicated table entry", img)
			})
		})
	}
}

// assertLoadErrContains loads img (heap mode) and asserts the error
// mentions want — corruption must be descriptive, not just non-nil.
func assertLoadErrContains(t *testing.T, dir string, img []byte, want string) {
	t.Helper()
	path := filepath.Join(dir, "described.wdsnap")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := rdf.LoadSnapshot(path, rdf.SnapshotHeap)
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("error %v does not mention %q", err, want)
	}
}

func TestSnapshotLoadMissingFile(t *testing.T) {
	for _, mode := range []rdf.SnapshotMode{rdf.SnapshotHeap, rdf.SnapshotMmap} {
		if _, err := rdf.LoadSnapshot(filepath.Join(t.TempDir(), "nope.wdsnap"), mode); err == nil {
			t.Errorf("mode %v: loading a missing file succeeded", mode)
		}
	}
}
