package rdf

import (
	"sort"
	"strings"
)

// Mapping is a partial function µ from variables to IRIs (Section 2 of
// the paper). Keys are variable names (without the "?" sigil); values
// are IRI identifiers.
//
// The nil map is a valid empty mapping for read operations; use
// NewMapping or Bind to construct mappings that will be extended.
type Mapping map[string]string

// NewMapping returns an empty mapping.
func NewMapping() Mapping { return Mapping{} }

// Bind returns a copy of µ extended with x ↦ iri. The receiver is not
// modified.
func (m Mapping) Bind(x Term, iri Term) Mapping {
	out := m.Clone()
	out[x.Value] = iri.Value
	return out
}

// Clone returns a copy of the mapping.
func (m Mapping) Clone() Mapping {
	out := make(Mapping, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Lookup returns the image of the variable x under µ, if defined.
func (m Mapping) Lookup(x Term) (Term, bool) {
	v, ok := m[x.Value]
	if !ok {
		return Term{}, false
	}
	return IRI(v), true
}

// Defined reports whether x ∈ dom(µ).
func (m Mapping) Defined(x Term) bool {
	_, ok := m[x.Value]
	return ok
}

// Dom returns dom(µ) as a sorted slice of variable terms.
func (m Mapping) Dom() []Term {
	out := make([]Term, 0, len(m))
	for k := range m {
		out = append(out, Var(k))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Compatible reports whether µ1 and µ2 agree on dom(µ1) ∩ dom(µ2)
// (the paper's compatibility relation µ1 ~ µ2).
func (m Mapping) Compatible(n Mapping) bool {
	// Iterate over the smaller mapping.
	a, b := m, n
	if len(b) < len(a) {
		a, b = b, a
	}
	for k, v := range a {
		if w, ok := b[k]; ok && w != v {
			return false
		}
	}
	return true
}

// Union returns µ1 ∪ µ2 for compatible mappings. The second return
// value is false when the mappings are incompatible.
func (m Mapping) Union(n Mapping) (Mapping, bool) {
	if !m.Compatible(n) {
		return nil, false
	}
	out := make(Mapping, len(m)+len(n))
	for k, v := range m {
		out[k] = v
	}
	for k, v := range n {
		out[k] = v
	}
	return out, true
}

// Restrict returns the restriction of µ to the given set of variables.
func (m Mapping) Restrict(vars []Term) Mapping {
	out := NewMapping()
	for _, x := range vars {
		if v, ok := m[x.Value]; ok {
			out[x.Value] = v
		}
	}
	return out
}

// Equal reports whether two mappings have the same domain and agree on it.
func (m Mapping) Equal(n Mapping) bool {
	if len(m) != len(n) {
		return false
	}
	for k, v := range m {
		if w, ok := n[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// CoversVars reports whether vars(ts) ⊆ dom(µ) for the given triples.
func (m Mapping) CoversVars(ts []Triple) bool {
	for _, t := range ts {
		for _, v := range t.Vars() {
			if !m.Defined(v) {
				return false
			}
		}
	}
	return true
}

// ApplyTerm replaces a variable term by its image under µ when defined;
// other terms are returned unchanged.
func (m Mapping) ApplyTerm(t Term) Term {
	if t.IsVar() {
		if v, ok := m[t.Value]; ok {
			return IRI(v)
		}
	}
	return t
}

// Apply returns µ(t): the triple with every variable in dom(µ) replaced
// by its image. Variables outside dom(µ) are left in place.
func (m Mapping) Apply(t Triple) Triple {
	return Triple{S: m.ApplyTerm(t.S), P: m.ApplyTerm(t.P), O: m.ApplyTerm(t.O)}
}

// ApplyAll maps Apply over a slice of triples.
func (m Mapping) ApplyAll(ts []Triple) []Triple {
	out := make([]Triple, len(ts))
	for i, t := range ts {
		out[i] = m.Apply(t)
	}
	return out
}

// Key returns a canonical string key for the mapping, usable as a map
// key for solution deduplication.
func (m Mapping) Key() string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
		b.WriteByte(';')
	}
	return b.String()
}

// String renders the mapping as {?x↦a, ?y↦b} with sorted keys.
func (m Mapping) String() string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('?')
		b.WriteString(k)
		b.WriteString("->")
		b.WriteString(m[k])
	}
	b.WriteByte('}')
	return b.String()
}

// MappingSet is a deduplicated collection of mappings, used to
// represent evaluation results ⟦P⟧G. Deduplication keys are built from
// dictionary-encoded (variable, value) ID pairs — sorting and packing
// integers instead of concatenating sorted strings — with a private
// Dict shared by all mappings in the set.
type MappingSet struct {
	dict  *Dict
	byKey map[string]Mapping
	pairs []uint64 // write-path scratch, reused across Add calls
}

// NewMappingSet returns an empty set.
func NewMappingSet() *MappingSet {
	return NewMappingSetCap(0)
}

// NewMappingSetCap returns an empty set pre-sized for n mappings.
// Callers that know the result cardinality (decode shims, AddAll)
// avoid incremental map growth.
func NewMappingSetCap(n int) *MappingSet {
	return &MappingSet{dict: NewDict(), byKey: make(map[string]Mapping, n)}
}

// key packs the mapping into a canonical byte string of sorted
// (varID, valueID) pairs under the set's dictionary, interning any
// new strings. Use only on the write path (Add). The pair buffer is
// reused across calls; only the returned key string is allocated.
func (s *MappingSet) key(m Mapping) string {
	pairs := s.pairs[:0]
	for k, v := range m {
		vid := uint64(s.dict.InternVar(k) - VarIDBase)
		pairs = append(pairs, vid<<32|uint64(s.dict.InternIRI(v)))
	}
	s.pairs = pairs
	return packPairs(pairs)
}

// lookupKey is key without interning: ok is false when some variable
// or value is unknown to the set's dictionary, in which case the
// mapping cannot be in the set. Safe for concurrent readers.
func (s *MappingSet) lookupKey(m Mapping) (string, bool) {
	pairs := make([]uint64, 0, 8)
	for k, v := range m {
		varID, ok := s.dict.LookupVar(k)
		if !ok {
			return "", false
		}
		valID, ok := s.dict.LookupIRI(v)
		if !ok {
			return "", false
		}
		pairs = append(pairs, uint64(varID-VarIDBase)<<32|uint64(valID))
	}
	return packPairs(pairs), true
}

func packPairs(pairs []uint64) string {
	// Insertion sort: domains are small and this avoids the sort.Slice
	// closure allocation.
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j] < pairs[j-1]; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	b := make([]byte, 0, len(pairs)*8)
	for _, p := range pairs {
		b = append(b,
			byte(p), byte(p>>8), byte(p>>16), byte(p>>24),
			byte(p>>32), byte(p>>40), byte(p>>48), byte(p>>56))
	}
	return string(b)
}

// Add inserts µ into the set; duplicates are ignored. It reports
// whether the mapping was newly added.
func (s *MappingSet) Add(m Mapping) bool {
	k := s.key(m)
	if _, ok := s.byKey[k]; ok {
		return false
	}
	s.byKey[k] = m
	return true
}

// Contains reports whether µ ∈ s. It never interns, so misses do not
// grow the set's dictionary.
func (s *MappingSet) Contains(m Mapping) bool {
	k, ok := s.lookupKey(m)
	if !ok {
		return false
	}
	_, in := s.byKey[k]
	return in
}

// Len returns the number of distinct mappings in the set.
func (s *MappingSet) Len() int { return len(s.byKey) }

// Slice returns the mappings in a deterministic order (sorted by the
// canonical string key of each mapping; keys are computed once per
// mapping, not per comparison).
func (s *MappingSet) Slice() []Mapping {
	type keyed struct {
		key string
		m   Mapping
	}
	ks := make([]keyed, 0, len(s.byKey))
	for _, m := range s.byKey {
		ks = append(ks, keyed{key: m.Key(), m: m})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	out := make([]Mapping, len(ks))
	for i, k := range ks {
		out[i] = k.m
	}
	return out
}

// AddAll inserts every mapping of t into s. An empty destination is
// pre-sized for |t| up front (the common union-of-results case);
// a non-empty one grows incrementally rather than paying a rehash of
// the existing entries on every call.
func (s *MappingSet) AddAll(t *MappingSet) {
	if len(s.byKey) == 0 && len(t.byKey) > 0 {
		s.byKey = make(map[string]Mapping, len(t.byKey))
	}
	for _, m := range t.byKey {
		s.Add(m)
	}
}
