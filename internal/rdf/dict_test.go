package rdf

import (
	"fmt"
	"math/rand"
	"testing"
)

// Dict round-trip: intern → lookup → string is the identity, IDs are
// dense, stable, and the IRI/variable ranges are disjoint.
func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	rng := rand.New(rand.NewSource(7))
	var iris, vars []string
	for i := 0; i < 500; i++ {
		iris = append(iris, fmt.Sprintf("iri%d", rng.Intn(200)))
		vars = append(vars, fmt.Sprintf("v%d", rng.Intn(200)))
	}
	for _, v := range iris {
		id := d.InternIRI(v)
		if id.IsVar() {
			t.Fatalf("IRI %q got variable-range ID %d", v, id)
		}
		if got := d.StringOf(id); got != v {
			t.Fatalf("StringOf(InternIRI(%q)) = %q", v, got)
		}
		if d.TermOf(id) != IRI(v) {
			t.Fatalf("TermOf(InternIRI(%q)) = %v", v, d.TermOf(id))
		}
		if again := d.InternIRI(v); again != id {
			t.Fatalf("re-interning %q changed ID %d → %d", v, id, again)
		}
		look, ok := d.LookupIRI(v)
		if !ok || look != id {
			t.Fatalf("LookupIRI(%q) = %d, %v", v, look, ok)
		}
	}
	for _, v := range vars {
		id := d.InternVar(v)
		if !id.IsVar() {
			t.Fatalf("variable %q got IRI-range ID %d", v, id)
		}
		if got := d.StringOf(id); got != v {
			t.Fatalf("StringOf(InternVar(%q)) = %q", v, got)
		}
		if d.TermOf(id) != Var(v) {
			t.Fatalf("TermOf(InternVar(%q)) = %v", v, d.TermOf(id))
		}
		// Var("?x") and Var("x") are the same variable.
		if d.InternVar("?"+v) != id {
			t.Fatalf("sigil-stripped interning of %q disagrees", v)
		}
	}
	if d.NumIRIs() > 200 || d.NumVars() > 200 {
		t.Fatalf("duplicate interning: %d IRIs, %d vars", d.NumIRIs(), d.NumVars())
	}
	// Dense and stable: ID i decodes to the i-th distinct string.
	for i := 0; i < d.NumIRIs(); i++ {
		if id, ok := d.LookupIRI(d.StringOf(TermID(i))); !ok || id != TermID(i) {
			t.Fatalf("IRI table not dense at %d", i)
		}
	}
}

// EncodeTriple/DecodeTriple round-trip on random triples and patterns.
func TestDictTripleRoundTrip(t *testing.T) {
	d := NewDict()
	rng := rand.New(rand.NewSource(8))
	randTerm := func() Term {
		if rng.Intn(2) == 0 {
			return IRI(fmt.Sprintf("c%d", rng.Intn(20)))
		}
		return Var(fmt.Sprintf("x%d", rng.Intn(20)))
	}
	for i := 0; i < 300; i++ {
		tr := T(randTerm(), randTerm(), randTerm())
		enc := d.EncodeTriple(tr)
		if got := d.DecodeTriple(enc); got != tr {
			t.Fatalf("round trip: %v → %v → %v", tr, enc, got)
		}
		for j, term := range tr.Terms() {
			if term.IsVar() != enc[j].IsVar() {
				t.Fatalf("kind not preserved at position %d of %v", j, tr)
			}
		}
	}
}

// Dict.Clone preserves IDs in both directions.
func TestDictClone(t *testing.T) {
	d := NewDict()
	a, x := d.InternIRI("a"), d.InternVar("x")
	c := d.Clone()
	if id, ok := c.LookupIRI("a"); !ok || id != a {
		t.Fatal("clone lost IRI")
	}
	if id, ok := c.LookupVar("x"); !ok || id != x {
		t.Fatal("clone lost variable")
	}
	// Divergence after cloning must not leak either way.
	c.InternIRI("only-in-clone")
	if _, ok := d.LookupIRI("only-in-clone"); ok {
		t.Fatal("clone shares state with original")
	}
}

func TestMatchesPatternID(t *testing.T) {
	d := NewDict()
	a, b, r := d.InternIRI("a"), d.InternIRI("b"), d.InternIRI("r")
	x, y := VarID(0), VarID(1)
	cases := []struct {
		p, t IDTriple
		want bool
	}{
		{IDTriple{x, r, y}, IDTriple{a, r, b}, true},
		{IDTriple{x, r, x}, IDTriple{a, r, b}, false},
		{IDTriple{x, r, x}, IDTriple{a, r, a}, true},
		{IDTriple{a, r, y}, IDTriple{a, r, b}, true},
		{IDTriple{b, r, y}, IDTriple{a, r, b}, false},
		{IDTriple{x, x, y}, IDTriple{r, r, b}, true},
		{IDTriple{x, x, y}, IDTriple{a, r, b}, false},
		{IDTriple{x, y, x}, IDTriple{a, r, a}, true},
	}
	for _, c := range cases {
		if got := MatchesPatternID(c.p, c.t); got != c.want {
			t.Fatalf("MatchesPatternID(%v, %v) = %v, want %v", c.p, c.t, got, c.want)
		}
	}
}
