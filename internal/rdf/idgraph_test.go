// Agreement tests for the dictionary-encoded storage layer: the
// ID-native Graph operations must coincide with the seed's string
// semantics on randomized graphs. The package is rdf_test so that the
// generators of internal/gen can be used without an import cycle.
package rdf_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"wdsparql/internal/gen"
	"wdsparql/internal/rdf"
)

// refMatch is the seed string semantics of pattern matching: position
// equality for IRIs, repeated-variable consistency for variables.
func refMatch(p, t rdf.Triple) bool {
	bind := map[string]string{}
	pa, ta := p.Terms(), t.Terms()
	for i := 0; i < 3; i++ {
		if pa[i].IsIRI() {
			if pa[i] != ta[i] {
				return false
			}
			continue
		}
		if prev, ok := bind[pa[i].Value]; ok {
			if prev != ta[i].Value {
				return false
			}
		} else {
			bind[pa[i].Value] = ta[i].Value
		}
	}
	return true
}

func tripleKey(t rdf.Triple) string {
	return t.S.Value + "\x00" + t.P.Value + "\x00" + t.O.Value
}

// randPattern draws a pattern whose constants mostly occur in g (and
// sometimes do not, exercising the dictionary-miss path), with
// repeated variables at random.
func randPattern(rng *rand.Rand, dom []string) rdf.Triple {
	names := []string{"x", "y", "x", "z"} // "x" twice: repeats are common
	term := func() rdf.Term {
		switch rng.Intn(4) {
		case 0:
			return rdf.Var(names[rng.Intn(len(names))])
		case 1:
			return rdf.IRI("not-in-graph")
		default:
			return rdf.IRI(dom[rng.Intn(len(dom))])
		}
	}
	return rdf.T(term(), term(), term())
}

func randGraph(rng *rand.Rand) *rdf.Graph {
	switch rng.Intn(3) {
	case 0:
		return gen.Random(12, 40, 3, rng.Int63())
	case 1:
		return gen.Turan(8, 3, "r")
	default:
		return gen.SocialNetwork(10, rng.Int63())
	}
}

// Match and MatchCount agree with a full scan under string semantics.
func TestIDMatchAgreesWithStringSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		g := randGraph(rng)
		dom := g.Dom()
		pat := randPattern(rng, dom)

		want := map[string]bool{}
		for _, tr := range g.Triples() {
			if refMatch(pat, tr) {
				want[tripleKey(tr)] = true
			}
		}
		got := map[string]bool{}
		for _, tr := range g.Match(pat) {
			if !g.Contains(tr) {
				t.Fatalf("trial %d: Match returned %v ∉ G", trial, tr)
			}
			got[tripleKey(tr)] = true
		}
		if len(got) != len(want) || len(got) != len(g.Match(pat)) {
			t.Fatalf("trial %d: pattern %v: got %d matches, want %d", trial, pat, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: pattern %v: missing match %q", trial, pat, k)
			}
		}
		if c := g.MatchCount(pat); c != len(want) {
			t.Fatalf("trial %d: MatchCount = %d, want %d", trial, c, len(want))
		}
	}
}

// MatchMappings agrees with the reference definition
// ⟦t⟧G = {µ | dom(µ) = vars(t), µ(t) ∈ G}.
func TestIDMatchMappingsAgreesWithStringSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		g := randGraph(rng)
		dom := g.Dom()
		pat := randPattern(rng, dom)

		want := map[string]bool{}
		for _, tr := range g.Triples() {
			if !refMatch(pat, tr) {
				continue
			}
			m := rdf.NewMapping()
			pa, ta := pat.Terms(), tr.Terms()
			for i := 0; i < 3; i++ {
				if pa[i].IsVar() {
					m[pa[i].Value] = ta[i].Value
				}
			}
			want[m.Key()] = true
		}
		got := g.MatchMappings(pat)
		seen := map[string]bool{}
		for _, m := range got {
			if seen[m.Key()] {
				t.Fatalf("trial %d: duplicate mapping %v", trial, m)
			}
			seen[m.Key()] = true
			if !want[m.Key()] {
				t.Fatalf("trial %d: unexpected mapping %v for %v", trial, m, pat)
			}
			// dom(µ) = vars(t).
			if len(m) != len(pat.Vars()) {
				t.Fatalf("trial %d: mapping domain %v ≠ vars(%v)", trial, m, pat)
			}
			if img := m.Apply(pat); !img.Ground() || !g.Contains(img) {
				t.Fatalf("trial %d: µ(t) = %v ∉ G", trial, img)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: pattern %v: %d mappings, want %d", trial, pat, len(got), len(want))
		}
	}
}

// The ID-level API agrees with the string API: encodings round-trip
// through the graph dictionary and the ID indexes see every triple.
func TestIDAPIConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 50; trial++ {
		g := randGraph(rng)
		dict := g.Dict()
		ids := g.TriplesID()
		if len(ids) != g.Len() {
			t.Fatalf("trial %d: TriplesID has %d entries, Len=%d", trial, len(ids), g.Len())
		}
		for _, id := range ids {
			tr := dict.DecodeTriple(id)
			if !g.Contains(tr) || !g.ContainsID(id) {
				t.Fatalf("trial %d: %v in TriplesID but not in graph", trial, tr)
			}
			enc, ok := g.EncodePattern(tr)
			if !ok || enc != id {
				t.Fatalf("trial %d: EncodePattern(%v) = %v, want %v", trial, tr, enc, id)
			}
		}
		// Dom and DomIDs name the same set.
		domIDs := g.DomIDs()
		asStrings := make([]string, len(domIDs))
		for i, id := range domIDs {
			asStrings[i] = dict.StringOf(id)
		}
		sort.Strings(asStrings)
		dom := g.Dom()
		if len(dom) != len(asStrings) {
			t.Fatalf("trial %d: |Dom| = %d, |DomIDs| = %d", trial, len(dom), len(asStrings))
		}
		for i := range dom {
			if dom[i] != asStrings[i] {
				t.Fatalf("trial %d: Dom[%d] = %q, DomIDs decodes to %q", trial, i, dom[i], asStrings[i])
			}
		}
	}
}

// Clone preserves triples, dictionary IDs, and independence.
func TestIDGraphClone(t *testing.T) {
	g := gen.Random(10, 30, 2, 5)
	c := g.Clone()
	if !g.Equal(c) || !c.Equal(g) {
		t.Fatal("clone not equal")
	}
	for i, id := range g.TriplesID() {
		if c.TriplesID()[i] != id {
			t.Fatal("clone changed triple IDs")
		}
	}
	c.AddTriple("fresh", "fresh", "fresh")
	if g.Equal(c) || g.HasIRI("fresh") {
		t.Fatal("clone shares state with original")
	}
}

// AddID round-trips through the dictionary and joins dom(G).
func TestAddID(t *testing.T) {
	g := rdf.NewGraph()
	d := g.Dict()
	a, r, b := d.InternIRI("a"), d.InternIRI("r"), d.InternIRI("b")
	if g.HasIRI("a") {
		t.Fatal("interning alone must not extend dom(G)")
	}
	g.AddID(rdf.IDTriple{a, r, b})
	if !g.Contains(rdf.T(rdf.IRI("a"), rdf.IRI("r"), rdf.IRI("b"))) {
		t.Fatal("AddID triple not visible through the string API")
	}
	if !g.HasIRI("a") || !g.HasIRI("r") || !g.HasIRI("b") || g.DomSize() != 3 {
		t.Fatal("AddID must extend dom(G)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddID with a variable ID must panic")
		}
	}()
	g.AddID(rdf.IDTriple{rdf.VarID(0), r, b})
}

// Posting lists returned by CandidatesID are complete (no matching
// triple of G is missed) and duplicate-free.
func TestCandidatesComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		g := randGraph(rng)
		dom := g.Dom()
		pat := randPattern(rng, dom)
		ip, ok := g.EncodePattern(pat)
		if !ok {
			continue
		}
		cands := g.CandidatesID(ip)
		inCands := map[rdf.IDTriple]bool{}
		for _, c := range cands {
			if inCands[c] {
				t.Fatalf("trial %d: duplicate candidate %v", trial, c)
			}
			inCands[c] = true
		}
		for _, id := range g.TriplesID() {
			if rdf.MatchesPatternID(ip, id) && !inCands[id] {
				t.Fatalf("trial %d: candidate list missed %v", trial, id)
			}
		}
	}
}

func BenchmarkIDMatchCount(b *testing.B) {
	g := gen.Random(64, 1024, 4, 9)
	pat, ok := g.EncodePattern(rdf.T(rdf.Var("s"), rdf.IRI("p0"), rdf.Var("o")))
	if !ok {
		b.Fatal("pattern constant missing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.MatchCountID(pat) == 0 {
			b.Fatal("expected matches")
		}
	}
}

func ExampleGraph_MatchMappings() {
	g := rdf.GraphOf(
		rdf.T(rdf.IRI("a"), rdf.IRI("knows"), rdf.IRI("b")),
		rdf.T(rdf.IRI("b"), rdf.IRI("knows"), rdf.IRI("c")),
	)
	for _, m := range g.MatchMappings(rdf.T(rdf.Var("x"), rdf.IRI("knows"), rdf.Var("y"))) {
		fmt.Println(m)
	}
	// Unordered output:
	// {?x->a, ?y->b}
	// {?x->b, ?y->c}
}
