package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Dataset statistics, used by the CLI for data inspection and by the
// benchmark harness to describe generated workloads.

// GraphStats summarises an RDF graph.
type GraphStats struct {
	Triples    int
	IRIs       int
	Predicates int
	Subjects   int
	Objects    int
	MaxOutDeg  int // max triples sharing a subject
	MaxInDeg   int // max triples sharing an object
	PredCounts map[string]int
	SelfLoops  int // triples with S == O
}

// Stats computes summary statistics of the graph in one pass over the
// triples.
func Stats(g *Graph) GraphStats {
	st := GraphStats{PredCounts: map[string]int{}}
	subjects := map[string]int{}
	objects := map[string]int{}
	for _, t := range g.Triples() {
		st.Triples++
		st.PredCounts[t.P.Value]++
		subjects[t.S.Value]++
		objects[t.O.Value]++
		if t.S == t.O {
			st.SelfLoops++
		}
	}
	st.IRIs = g.DomSize()
	st.Predicates = len(st.PredCounts)
	st.Subjects = len(subjects)
	st.Objects = len(objects)
	for _, c := range subjects {
		if c > st.MaxOutDeg {
			st.MaxOutDeg = c
		}
	}
	for _, c := range objects {
		if c > st.MaxInDeg {
			st.MaxInDeg = c
		}
	}
	return st
}

// String renders the statistics as a short report.
func (st GraphStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "triples=%d iris=%d predicates=%d subjects=%d objects=%d maxOut=%d maxIn=%d loops=%d",
		st.Triples, st.IRIs, st.Predicates, st.Subjects, st.Objects,
		st.MaxOutDeg, st.MaxInDeg, st.SelfLoops)
	preds := make([]string, 0, len(st.PredCounts))
	for p := range st.PredCounts {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	for _, p := range preds {
		fmt.Fprintf(&b, "\n  %s: %d", p, st.PredCounts[p])
	}
	return b.String()
}
