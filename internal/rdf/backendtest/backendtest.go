// Package backendtest is the differential test suite that pins every
// storage backend of rdf.Graph to the map-backed reference. The
// paper's correctness guarantees (Romero, PODS 2018) are proved for
// one abstract graph; the implementation has three physical
// representations (map, frozen CSR, sharded CSR) behind one read API,
// so the guarantees survive only if the backends are observationally
// equivalent — same triples, same insertion order, byte for byte, on
// every read operation. RunBackendSuite is that equivalence check,
// written once and instantiated per backend, replacing the per-backend
// copy-paste cross-validation tests that preceded it.
package backendtest

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"wdsparql/internal/gen"
	"wdsparql/internal/rdf"
)

// Trials is the number of random twin graphs the suite draws. Each
// trial also probes ~30 random patterns, so a run covers thousands of
// read operations per backend.
const Trials = 200

// MakeGraph builds the backend under test from an insertion-ordered
// ground triple list. Loading the same list must assign the same
// dictionary IDs in the same order as rdf.GraphOf — every seal path in
// the package (Freeze, Shard, GraphBuilder) preserves that.
type MakeGraph func(ts []rdf.Triple) *rdf.Graph

// RunBackendSuite runs the differential suite: Trials random graphs,
// each loaded both as the map-backed reference (rdf.GraphOf) and
// through make, then compared — content AND order — on every read
// operation of the Graph API, including repeated-variable patterns,
// constants absent from the graph, constants interned only after the
// seal, and the thaw-on-mutation / re-seal lifecycle.
func RunBackendSuite(t *testing.T, mk MakeGraph) {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < Trials; trial++ {
		ts := randTriples(rng)
		ref := rdf.GraphOf(ts...)
		got := mk(ts)
		checkTwins(t, trial, ref, got, rng)
		if t.Failed() {
			return
		}
	}
	t.Run("lifecycle", func(t *testing.T) { checkLifecycle(t, mk) })
	t.Run("unseen-constant", func(t *testing.T) { checkUnseenConstant(t, mk) })
	t.Run("empty", func(t *testing.T) { checkEmpty(t, mk) })
}

// randTriples draws a random graph shape (Erdős–Rényi, Turán, social
// network) and returns its triples in insertion order.
func randTriples(rng *rand.Rand) []rdf.Triple {
	var g *rdf.Graph
	switch rng.Intn(3) {
	case 0:
		g = gen.Random(12, 40, 3, rng.Int63())
	case 1:
		g = gen.Turan(8, 3, "r")
	default:
		g = gen.SocialNetwork(10, rng.Int63())
	}
	ts := make([]rdf.Triple, 0, g.Len())
	for _, id := range g.TriplesID() {
		ts = append(ts, g.Dict().DecodeTriple(id))
	}
	return ts
}

// randPattern draws a triple pattern whose constants mostly occur in
// the domain (sometimes not, exercising the dictionary-miss path),
// with repeated variables common ("x" appears twice in the name pool).
func randPattern(rng *rand.Rand, dom []string) rdf.Triple {
	names := []string{"x", "y", "x", "z"}
	term := func() rdf.Term {
		switch rng.Intn(4) {
		case 0:
			return rdf.Var(names[rng.Intn(len(names))])
		case 1:
			return rdf.IRI("not-in-graph")
		default:
			return rdf.IRI(dom[rng.Intn(len(dom))])
		}
	}
	return rdf.T(term(), term(), term())
}

// checkTwins compares every read operation of the two graphs.
func checkTwins(t *testing.T, trial int, ref, got *rdf.Graph, rng *rand.Rand) {
	t.Helper()
	if ref.Len() != got.Len() || ref.DomSize() != got.DomSize() {
		t.Fatalf("trial %d: Len/DomSize: %d/%d reference vs %d/%d backend",
			trial, ref.Len(), ref.DomSize(), got.Len(), got.DomSize())
	}
	// Insertion order and membership, including perturbed absent
	// triples (a rotation of a present triple is almost never present).
	gotIDs := got.TriplesID()
	for i, id := range ref.TriplesID() {
		if gotIDs[i] != id {
			t.Fatalf("trial %d: TriplesID[%d] = %v backend, want %v", trial, i, gotIDs[i], id)
		}
		if !got.ContainsID(id) {
			t.Fatalf("trial %d: backend lost triple %v", trial, id)
		}
		absent := rdf.IDTriple{id[2], id[0], id[1]}
		if ref.ContainsID(absent) != got.ContainsID(absent) {
			t.Fatalf("trial %d: ContainsID(%v) disagrees", trial, absent)
		}
	}
	if !slices.Equal(ref.Dom(), got.Dom()) {
		t.Fatalf("trial %d: Dom disagrees", trial)
	}
	for _, id := range ref.DomIDs() {
		if ref.OccurrencesID(id) != got.OccurrencesID(id) {
			t.Fatalf("trial %d: OccurrencesID(%v): %d vs %d",
				trial, id, ref.OccurrencesID(id), got.OccurrencesID(id))
		}
		if !got.HasIRI(ref.Dict().StringOf(id)) {
			t.Fatalf("trial %d: HasIRI lost %v", trial, id)
		}
	}
	// Pattern probes: every index shape, repeated variables, misses.
	dom := ref.Dom()
	for probe := 0; probe < 30; probe++ {
		pat := randPattern(rng, dom)
		ipr, okr := ref.EncodePattern(pat)
		ipg, okg := got.EncodePattern(pat)
		if okr != okg || ipr != ipg {
			t.Fatalf("trial %d: EncodePattern disagrees on %v", trial, pat)
		}
		if !okr {
			continue
		}
		if cr, cg := ref.MatchCountID(ipr), got.MatchCountID(ipg); cr != cg {
			t.Fatalf("trial %d: MatchCountID(%v) = %d reference vs %d backend", trial, ipr, cr, cg)
		}
		if mr, mg := ref.MatchID(ipr), got.MatchID(ipg); !slices.Equal(mr, mg) {
			t.Fatalf("trial %d: MatchID(%v) differs (content or order):\nreference: %v\nbackend:   %v",
				trial, ipr, mr, mg)
		}
		if cr, cg := ref.CandidatesID(ipr), got.CandidatesID(ipg); !slices.Equal(cr, cg) {
			t.Fatalf("trial %d: CandidatesID(%v) differs (content or order):\nreference: %v\nbackend:   %v",
				trial, ipr, cr, cg)
		}
		rr, er := ref.LookupRangeID(ipr)
		rg, eg := got.LookupRangeID(ipg)
		if er != eg || !slices.Equal(rr, rg) {
			t.Fatalf("trial %d: LookupRangeID(%v) differs", trial, ipr)
		}
	}
	// Selectivity catalog (cardstats.go): global distinct counts are
	// exact on every backend; per-predicate counts are exact except for
	// objects on a sharded base, where the per-shard sum may double
	// count objects recurring across shards — there the reference count
	// is the lower bound and the predicate's posting length the upper.
	for pos := 0; pos < 3; pos++ {
		if dr, dg := ref.DistinctCount(pos), got.DistinctCount(pos); dr != dg {
			t.Fatalf("trial %d: DistinctCount(%d) = %d backend, want %d", trial, pos, dg, dr)
		}
	}
	for _, p := range ref.DomIDs() {
		plen := ref.MatchCountID(rdf.IDTriple{rdf.VarID(0), p, rdf.VarID(1)})
		for _, pos := range []int{0, 2} {
			dr, dg := ref.DistinctUnderPredicate(p, pos), got.DistinctUnderPredicate(p, pos)
			if pos == 2 && got.Sharded() {
				if dg < dr || dg > plen {
					t.Fatalf("trial %d: DistinctUnderPredicate(%v, O) = %d outside [%d, %d] on sharded backend",
						trial, p, dg, dr, plen)
				}
				continue
			}
			if dr != dg {
				t.Fatalf("trial %d: DistinctUnderPredicate(%v, pos %d) = %d backend, want %d",
					trial, p, pos, dg, dr)
			}
		}
	}
}

// checkLifecycle verifies that mutation thaws the backend to the map
// representation transparently (no triple lost, no duplicate admitted)
// and that the thawed graph can be re-sealed either way.
func checkLifecycle(t *testing.T, mk MakeGraph) {
	t.Helper()
	ts := randTriples(rand.New(rand.NewSource(7)))
	g := mk(ts)
	n := g.Len()
	g.AddTriple("thaw-s", "thaw-p", "thaw-o")
	if g.Frozen() || g.Sharded() {
		t.Fatal("mutation must thaw to the map backend")
	}
	if g.Len() != n+1 || !g.Contains(rdf.T(rdf.IRI("thaw-s"), rdf.IRI("thaw-p"), rdf.IRI("thaw-o"))) {
		t.Fatal("triple lost across thaw")
	}
	g.AddTriple("thaw-s", "thaw-p", "thaw-o") // duplicate must be dropped
	if g.Len() != n+1 {
		t.Fatal("duplicate insert after thaw")
	}
	// Re-seal both ways; the twin is the thawed graph itself.
	for _, seal := range []struct {
		name string
		do   func(*rdf.Graph) *rdf.Graph
	}{
		{"freeze", func(g *rdf.Graph) *rdf.Graph { return g.Freeze() }},
		{"shard", func(g *rdf.Graph) *rdf.Graph { return g.Shard(3) }},
	} {
		c := seal.do(g.Clone())
		checkTwins(t, -1, g, c, rand.New(rand.NewSource(11)))
		if t.Failed() {
			t.Fatalf("re-seal through %s broke agreement", seal.name)
		}
	}
}

// checkUnseenConstant verifies that pattern constants interned only
// after the seal (the dictionary grows, the sealed offsets do not)
// match nothing rather than read out of bounds.
func checkUnseenConstant(t *testing.T, mk MakeGraph) {
	t.Helper()
	g := mk([]rdf.Triple{rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b"))})
	late := g.Dict().InternIRI("late")
	for _, p := range []rdf.IDTriple{
		{late, rdf.VarID(0), rdf.VarID(1)},
		{rdf.VarID(0), late, rdf.VarID(1)},
		{rdf.VarID(0), rdf.VarID(1), late},
		{late, late, late},
	} {
		if g.MatchCountID(p) != 0 || len(g.CandidatesID(p)) != 0 || g.ContainsID(rdf.IDTriple{late, late, late}) {
			t.Fatalf("pattern %v with post-seal constant matched", p)
		}
	}
}

// checkEmpty verifies the degenerate graph.
func checkEmpty(t *testing.T, mk MakeGraph) {
	t.Helper()
	g := mk(nil)
	if g.Len() != 0 || g.DomSize() != 0 {
		t.Fatal("empty graph misbehaves")
	}
	if got := g.MatchCountID(rdf.IDTriple{rdf.VarID(0), rdf.VarID(1), rdf.VarID(2)}); got != 0 {
		t.Fatalf("empty MatchCountID = %d", got)
	}
}

// EqualStreams reports whether two graphs agree on the full
// enumeration stream — content AND order, compared through each
// graph's own dictionary, so it also catches dictionary divergence.
// It is the any-two-graphs agreement check used outside the suite
// (overlay compaction, snapshot round-trips, fuzz drivers).
func EqualStreams(a, b *rdf.Graph) bool {
	ta, tb := a.TriplesID(), b.TriplesID()
	if len(ta) != len(tb) || a.DomSize() != b.DomSize() {
		return false
	}
	for i := range ta {
		if a.Dict().DecodeTriple(ta[i]) != b.Dict().DecodeTriple(tb[i]) {
			return false
		}
	}
	return true
}

// SuiteName returns a conventional subtest name for a backend at a
// shard count, so the per-backend instantiations read uniformly in
// test output.
func SuiteName(backend string, shards int) string {
	if shards > 0 {
		return fmt.Sprintf("%s/shards=%d", backend, shards)
	}
	return backend
}
