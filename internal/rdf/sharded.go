package rdf

// This file implements the sharded storage backend of Graph: the
// horizontal-partitioning step between the single-arena frozen CSR
// backend (frozen.go) and a future multi-node deployment. Triples are
// partitioned across N shards by a hash of their subject TermID; each
// shard is a complete frozen CSR view (primary order-bearing arenas,
// secondarily-sorted arenas, membership table) over its own subset of
// the triples, sharing the parent graph's Dict — exactly the ROADMAP's
// "shard the primary views + membership and derive the sorted views
// per shard".
//
// The freeze-lifecycle invariant — every read returns the same triples
// in the same (insertion) order on every backend — survives sharding
// through per-triple global sequence numbers: a triple's sequence
// number is its index in the graph's insertion-order slice, the
// partition is stable (each shard's subset keeps global order), and
// every cross-shard read is a k-way merge of per-shard streams ordered
// by sequence number. Probe shapes dispatch as follows:
//
//   - Subject bound (S, SP, SO, ground): the subject hash names the one
//     shard that can hold matches; the answer is that shard's frozen
//     probe, zero-copy and already in global order (a subsequence of
//     the insertion order is still in insertion order).
//   - Nothing bound: the parent's shared insertion-order slice.
//   - Predicate and/or object bound (P, O, PO): every shard may hold
//     matches. Counts are sums of per-shard range lengths (no merge,
//     no allocation); candidate lists are materialised by the k-way
//     sequence-number merge below. When only one shard's range is
//     non-empty the merge degenerates to the zero-copy single-shard
//     answer.
//
// A sharded graph is immutable — the same concurrent-reader contract
// as the frozen backend — and mutation through Add/AddID transparently
// thaws it back to the map representation.

// ShardedGraph is the compact immutable sharded index structure of a
// graph sealed by Graph.Shard. All slices are built once by shardGraph
// and never mutated. It is exposed (Graph.Shards) so the enumeration
// layer and the benchmarks can observe the partition; all ordinary
// reads go through the Graph methods, which dispatch here.
type ShardedGraph struct {
	n     int // shard count, ≥ 1
	nIRIs int // dictionary bound at seal time

	all    []IDTriple // the graph's insertion-order slice (shared)
	shards []graphShard

	// Global single-key count offsets for the cross-shard positions:
	// cntP[k+1]-cntP[k] is the graph-wide posting-list length of
	// predicate k (likewise cntO for objects), so single-key
	// MatchCountID stays O(1) instead of summing over shards. These are
	// aggregate counts, not order-bearing views — the per-shard arenas
	// remain the only source of triples.
	cntP, cntO []uint32

	// Lazily-computed distinct-key counts backing the planner's
	// selectivity catalog; see cardstats.go.
	stats cardStats
}

// graphShard is one shard: a frozen CSR view over the shard's triples
// plus the global sequence-number columns the cross-shard merges order
// by. Only the arenas a cross-shard probe can reach need sequence
// columns: the primary P and O groupings and the two sorted arenas
// that answer (P,O) range probes. Subject-grouped arenas are reached
// through a single shard only, where local order is already global
// order.
type graphShard struct {
	view *frozenView

	seqAll []uint32 // aligned with view.all (the shard's triples)
	seqP   []uint32 // aligned with view.arenaP
	seqO   []uint32 // aligned with view.arenaO
	seqPO  []uint32 // aligned with view.arenaPO
	seqOP  []uint32 // aligned with view.arenaOP
}

// shardOfID maps a subject TermID to its shard through a
// splitmix64-style finalizer. TermIDs are dense small integers, so a
// plain modulus would stripe adjacent subjects across shards in lock
// step with interning order; the mixer decorrelates the partition from
// the dictionary layout, which is what keeps shard sizes balanced on
// adversarial ID ranges (and is the function a multi-node deployment
// would have to agree on — see DESIGN.md §4).
func shardOfID(s TermID, n int) int {
	h := uint64(s) + 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return int((h ^ (h >> 31)) % uint64(n))
}

// shardGraph partitions the graph's insertion-order slice across n
// shards (a stable partition: each shard's subset preserves global
// order) and builds one frozen CSR view per shard plus the
// sequence-number columns. Cost is O(|G| + n·|dict|): the counting and
// scatter passes of the freeze run once per shard over that shard's
// triples, and the per-shard offset arrays are indexed by the full
// dense TermID space (a multi-node deployment would give each shard
// its own dictionary; within one process the dense offsets buy O(1)
// probes at a well-understood memory cost).
func shardGraph(g *Graph, n int) *ShardedGraph {
	ni := g.dict.NumIRIs()
	sg := &ShardedGraph{n: n, nIRIs: ni, all: g.all, shards: make([]graphShard, n)}
	sg.cntP = bucketOffsets(g.all, 1, ni)
	sg.cntO = bucketOffsets(g.all, 2, ni)
	counts := make([]int, n)
	for _, t := range g.all {
		counts[shardOfID(t[0], n)]++
	}
	parts := make([][]IDTriple, n)
	seqs := make([][]uint32, n)
	for s := 0; s < n; s++ {
		parts[s] = make([]IDTriple, 0, counts[s])
		seqs[s] = make([]uint32, 0, counts[s])
	}
	for i, t := range g.all {
		s := shardOfID(t[0], n)
		parts[s] = append(parts[s], t)
		seqs[s] = append(seqs[s], uint32(i))
	}
	cur := make([]uint32, ni+1) // scatter cursor, reused across shards
	for s := range sg.shards {
		v := freezeTriples(parts[s], ni)
		sh := &sg.shards[s]
		sh.view = v
		sh.seqAll = seqs[s]
		// The sequence columns repeat the freeze's stable scatter
		// passes on the sequence numbers, so seqX[i] is the global
		// sequence of the triple at arenaX[i].
		sh.seqP = seqScatter(parts[s], seqs[s], 1, v.offP, cur)
		sh.seqO = seqScatter(parts[s], seqs[s], 2, v.offO, cur)
		sh.seqPO = seqScatter(v.arenaO, sh.seqO, 1, v.offP, cur)
		sh.seqOP = seqScatter(v.arenaP, sh.seqP, 2, v.offO, cur)
	}
	return sg
}

// seqScatter mirrors bucketScatter on a sequence column: it distributes
// srcSeq into the groups that bucketScatter(src, pos, off, cur) sends
// the corresponding triples to, preserving relative order, so the
// output stays aligned with the scattered arena.
func seqScatter(src []IDTriple, srcSeq []uint32, pos int, off, cur []uint32) []uint32 {
	copy(cur, off)
	out := make([]uint32, len(src))
	for i, t := range src {
		out[cur[t[pos]]] = srcSeq[i]
		cur[t[pos]]++
	}
	return out
}

// NumShards returns the shard count.
func (sg *ShardedGraph) NumShards() int { return sg.n }

// ShardLen returns the number of triples in shard s.
func (sg *ShardedGraph) ShardLen(s int) int { return len(sg.shards[s].view.all) }

// ShardOf returns the shard holding (all triples with) the subject id.
func (sg *ShardedGraph) ShardOf(s TermID) int { return shardOfID(s, sg.n) }

// AllID materialises the k-way sequence-number merge of every shard's
// primary insertion-order stream. The result must equal the parent
// graph's TriplesID slice element for element — the differential tests
// pin exactly that — making AllID the direct witness that the merge
// reconstructs global insertion order from the per-shard streams.
func (sg *ShardedGraph) AllID() []IDTriple {
	var buf [mergeFanIn]mergeSrc
	srcs := buf[:0]
	if sg.n > mergeFanIn {
		srcs = make([]mergeSrc, 0, sg.n)
	}
	for s := range sg.shards {
		sh := &sg.shards[s]
		if len(sh.view.all) > 0 {
			srcs = append(srcs, mergeSrc{ts: sh.view.all, seq: sh.seqAll})
		}
	}
	return mergeBySeq(srcs, len(sg.all))
}

// mergeSrc is one input stream of a sequence-number merge: triples and
// their aligned global sequence numbers, both ordered by sequence.
type mergeSrc struct {
	ts  []IDTriple
	seq []uint32
}

// mergeFanIn is the shard count up to which the per-probe merge-source
// list fits a caller-stack buffer (mergeBySeq never retains its input,
// so the buffer does not escape): probes allocate only for the merged
// output itself, and not even that when a single shard is populated.
const mergeFanIn = 16

// mergeBySeq k-way merges the sources into one slice ordered by global
// sequence number — i.e. global insertion order. Sequence numbers are
// unique across sources (they index one shared insertion-order slice),
// so the merge is unambiguous. Shard counts are small, so the head
// selection is a linear scan over the sources rather than a heap, and
// each selection copies the whole run of the winning source that
// precedes every other head (runs are located by a linear scan: with
// hash partitioning they are short, and the scan stays in the sequence
// column's cache lines).
func mergeBySeq(srcs []mergeSrc, total int) []IDTriple {
	switch len(srcs) {
	case 0:
		return nil
	case 1:
		// Single populated source: its stream IS the global stream.
		return srcs[0].ts
	}
	out := make([]IDTriple, 0, total)
	for {
		best := -1
		lim := ^uint32(0) // smallest head among the other sources
		for i := range srcs {
			if len(srcs[i].seq) == 0 {
				continue
			}
			h := srcs[i].seq[0]
			switch {
			case best < 0:
				best = i
			case h < srcs[best].seq[0]:
				lim = srcs[best].seq[0]
				best = i
			case h < lim:
				lim = h
			}
		}
		if best < 0 {
			return out
		}
		run := 1
		bs := srcs[best].seq
		for run < len(bs) && bs[run] < lim {
			run++
		}
		out = append(out, srcs[best].ts[:run]...)
		srcs[best].ts = srcs[best].ts[run:]
		srcs[best].seq = srcs[best].seq[run:]
	}
}

// contains probes the membership table of the subject's shard.
func (sg *ShardedGraph) contains(t IDTriple) bool {
	_, ok := sg.shards[shardOfID(t[0], sg.n)].view.contains(t)
	return ok
}

// candidates mirrors Graph.CandidatesID on the sharded indexes: every
// returned list holds the same triples in the same global insertion
// order as the map and frozen backends. Subject-bound shapes answer
// from one shard zero-copy; cross-shard shapes (P, O, PO) materialise
// the sequence-number merge — the returned slice is then freshly
// allocated and never aliases shard storage.
func (sg *ShardedGraph) candidates(p IDTriple) []IDTriple {
	if sg.n == 1 {
		// Degenerate partition: the one shard IS the frozen view.
		return sg.shards[0].view.candidates(p)
	}
	sB, pB, oB := !p[0].IsVar(), !p[1].IsVar(), !p[2].IsVar()
	if sB {
		// Any subject-bound shape lives entirely in one shard, whose
		// frozen view answers it in global order.
		return sg.shards[shardOfID(p[0], sg.n)].view.candidates(p)
	}
	switch {
	case pB && oB:
		return sg.mergeRange2(p[1], p[2])
	case pB:
		return sg.mergeRange1(p[1], false)
	case oB:
		return sg.mergeRange1(p[2], true)
	default:
		return sg.all
	}
}

// mergeRange1 merges the per-shard single-key posting lists for a
// bound predicate (byObject=false) or bound object (byObject=true).
func (sg *ShardedGraph) mergeRange1(key TermID, byObject bool) []IDTriple {
	var buf [mergeFanIn]mergeSrc
	srcs := buf[:0]
	if sg.n > mergeFanIn {
		srcs = make([]mergeSrc, 0, sg.n)
	}
	total := 0
	for s := range sg.shards {
		sh := &sg.shards[s]
		v := sh.view
		var off []uint32
		var arena []IDTriple
		var seq []uint32
		if byObject {
			off, arena, seq = v.offO, v.arenaO, sh.seqO
		} else {
			off, arena, seq = v.offP, v.arenaP, sh.seqP
		}
		k := int(key)
		if k >= v.nIRIs {
			return nil // post-seal constant: in no shard
		}
		b, e := off[k], off[k+1]
		if b == e {
			continue
		}
		srcs = append(srcs, mergeSrc{ts: arena[b:e], seq: seq[b:e]})
		total += int(e - b)
	}
	return mergeBySeq(srcs, total)
}

// mergeRange2 merges the per-shard (P,O) range probes. Each shard
// independently picks the smaller of its P and O groups to search —
// the same cost rule as the frozen backend — and contributes the
// located range together with its aligned sequence column.
func (sg *ShardedGraph) mergeRange2(p, o TermID) []IDTriple {
	var buf [mergeFanIn]mergeSrc
	srcs := buf[:0]
	if sg.n > mergeFanIn {
		srcs = make([]mergeSrc, 0, sg.n)
	}
	total := 0
	for s := range sg.shards {
		sh := &sg.shards[s]
		v := sh.view
		var b, e uint32
		var arena []IDTriple
		var seq []uint32
		if v.groupLen(v.offP, p) <= v.groupLen(v.offO, o) {
			b, e = v.range2Bounds(v.offP, v.keyPO, p, o)
			arena, seq = v.arenaPO, sh.seqPO
		} else {
			b, e = v.range2Bounds(v.offO, v.keyOP, o, p)
			arena, seq = v.arenaOP, sh.seqOP
		}
		if b == e {
			continue
		}
		srcs = append(srcs, mergeSrc{ts: arena[b:e], seq: seq[b:e]})
		total += int(e - b)
	}
	return mergeBySeq(srcs, total)
}

// count returns the number of triples matching the encoded pattern
// without materialising any merge: subject-bound shapes probe one
// shard, cross-shard shapes sum per-shard range lengths. The pattern
// must not have repeated variables (the caller filters those through
// the candidate path).
func (sg *ShardedGraph) count(p IDTriple) int {
	if sg.n == 1 {
		return len(sg.shards[0].view.candidates(p))
	}
	sB, pB, oB := !p[0].IsVar(), !p[1].IsVar(), !p[2].IsVar()
	if sB {
		if pB && oB {
			if sg.contains(p) {
				return 1
			}
			return 0
		}
		return len(sg.shards[shardOfID(p[0], sg.n)].view.candidates(p))
	}
	switch {
	case pB && oB:
		n := 0
		for s := range sg.shards {
			v := sg.shards[s].view
			var b, e uint32
			if v.groupLen(v.offP, p[1]) <= v.groupLen(v.offO, p[2]) {
				b, e = v.range2Bounds(v.offP, v.keyPO, p[1], p[2])
			} else {
				b, e = v.range2Bounds(v.offO, v.keyOP, p[2], p[1])
			}
			n += int(e - b)
		}
		return n
	case pB:
		if k := int(p[1]); k < sg.nIRIs {
			return int(sg.cntP[k+1] - sg.cntP[k])
		}
		return 0
	case oB:
		if k := int(p[2]); k < sg.nIRIs {
			return int(sg.cntO[k+1] - sg.cntO[k])
		}
		return 0
	default:
		return len(sg.all)
	}
}

// Shard seals the graph into the sharded backend with n shards (n ≥ 1;
// Shard panics otherwise — the shard count is a programming decision,
// not data). Like Freeze it releases the map indexes, returns its
// receiver, and is idempotent for the same n; calling it with a
// different n re-partitions from the insertion-order slice, and
// calling it on a frozen graph replaces the frozen view (both without
// rebuilding any map). Mutation thaws a sharded graph back to the map
// backend exactly as it thaws a frozen one. Shard is a write
// operation: it must not run concurrently with reads or other writes;
// afterwards the graph is safe for any number of concurrent readers.
//
// Every read operation returns the same triples in the same insertion
// order as the map and frozen backends — the backends are mutually
// unobservable (pinned by internal/rdf/backendtest).
func (g *Graph) Shard(n int) *Graph {
	if n < 1 {
		panic("rdf: Shard: shard count must be ≥ 1")
	}
	if g.ovl != nil {
		// Fold the overlay into a fresh base before partitioning; the
		// same-shard-count early return must not fire on a stale view.
		g.foldOverlay()
	} else if g.shd != nil && g.shd.n == n {
		return g
	}
	g.shd = shardGraph(g, n)
	g.frz = nil
	g.set = nil
	g.byS, g.byP, g.byO = nil, nil, nil
	g.bySP, g.byPO, g.bySO = nil, nil, nil
	return g
}

// Sharded reports whether the graph currently uses the sharded backend.
func (g *Graph) Sharded() bool { return g.shd != nil }

// Shards returns the graph's sharded view, or nil when the graph is
// not sharded.
func (g *Graph) Shards() *ShardedGraph { return g.shd }

// ShardCount returns the number of shards (1 when the graph is not
// sharded — the whole graph is one partition).
func (g *Graph) ShardCount() int {
	if g.shd != nil {
		return g.shd.n
	}
	return 1
}

// ShardOf returns the shard holding the encoded triple (0 when the
// graph is not sharded). The shard of a triple is a pure function of
// its subject, so the parallel enumeration layer can group work by
// shard without touching the indexes.
func (g *Graph) ShardOf(t IDTriple) int {
	if g.shd != nil {
		return shardOfID(t[0], g.shd.n)
	}
	return 0
}
