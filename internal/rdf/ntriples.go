package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file implements a small line-oriented serialisation for ground
// RDF graphs, a pragmatic subset of N-Triples: one triple per line,
// three whitespace-separated terms, an optional trailing ".", "#"
// comments, and optional angle brackets around IRIs. Variables are not
// permitted in data files (graphs are ground).

// ReadGraph parses a graph from r. It returns the first syntax error
// encountered, annotated with a line number. The graph is bulk-loaded
// through a GraphBuilder and returned frozen (see Graph.Freeze): cold
// load is one interning pass plus one compaction, and the result is
// immediately ready for concurrent readers. Mutating it thaws it.
func ReadGraph(r io.Reader) (*Graph, error) {
	b := NewGraphBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		line = strings.TrimSuffix(line, ".")
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("rdf: line %d: expected 3 terms, got %d", lineNo, len(fields))
		}
		var terms [3]Term
		for i, f := range fields {
			t, err := parseDataTerm(f)
			if err != nil {
				return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
			}
			terms[i] = t
		}
		b.AddTriple(terms[0].Value, terms[1].Value, terms[2].Value)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: read: %w", err)
	}
	return b.Graph(), nil
}

// ParseGraph parses a graph from a string.
func ParseGraph(s string) (*Graph, error) {
	return ReadGraph(strings.NewReader(s))
}

// MustParseGraph is ParseGraph that panics on error; for tests and
// examples with literal data.
func MustParseGraph(s string) *Graph {
	g, err := ParseGraph(s)
	if err != nil {
		panic(err)
	}
	return g
}

func parseDataTerm(f string) (Term, error) {
	if strings.HasPrefix(f, "?") {
		return Term{}, fmt.Errorf("variable %q not allowed in data", f)
	}
	if strings.HasPrefix(f, "<") {
		if !strings.HasSuffix(f, ">") {
			return Term{}, fmt.Errorf("unterminated IRI %q", f)
		}
		f = strings.TrimSuffix(strings.TrimPrefix(f, "<"), ">")
	}
	if f == "" {
		return Term{}, fmt.Errorf("empty term")
	}
	return IRI(f), nil
}

// WriteGraph writes g to w, one triple per line with a trailing ".",
// in deterministic order.
func WriteGraph(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := fmt.Fprintf(bw, "%s %s %s .\n", t.S.Value, t.P.Value, t.O.Value); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FormatGraph renders g as a string in the WriteGraph format.
func FormatGraph(g *Graph) string {
	var b strings.Builder
	_ = WriteGraph(&b, g)
	return b.String()
}
