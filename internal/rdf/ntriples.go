package rdf

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"strings"
)

// This file implements a small line-oriented serialisation for ground
// RDF graphs, a pragmatic subset of N-Triples: one triple per line,
// three whitespace-separated terms, an optional trailing ".", "#"
// comments, and optional angle brackets around IRIs. Variables are not
// permitted in data files (graphs are ground).

// MaxLineLen is the default bound on a single input line of ReadGraph.
// It exists so a malformed (or hostile) input cannot make the reader
// buffer an unbounded line; lines beyond the bound fail with an error
// naming the offending line. ReadGraphMaxLine configures it per call.
const MaxLineLen = 16 << 20 // 16 MiB

// ReadGraph parses a graph from r. Gzipped input is detected by its
// magic bytes and decompressed transparently, so `wdserve -data g.nt.gz`
// and a plain file behave identically. It returns the first syntax
// error encountered, annotated with a line number — including lines
// longer than MaxLineLen. Line numbers always count decompressed
// lines, so an error in a gzipped dump points at the same line as in
// the plain dump. The graph is bulk-loaded through a GraphBuilder and
// returned frozen (see Graph.Freeze): cold load is one interning pass
// plus one compaction, and the result is immediately ready for
// concurrent readers. Mutating it thaws it.
func ReadGraph(r io.Reader) (*Graph, error) {
	return readGraph(r, MaxLineLen, nil)
}

// ReadGraphMaxLine is ReadGraph with an explicit bound on the length
// of a single input line (maxLine ≤ 0 means MaxLineLen). The bound is
// a robustness guard, not a format limit: any line up to the bound is
// parsed whole, however large.
func ReadGraphMaxLine(r io.Reader, maxLine int) (*Graph, error) {
	return readGraph(r, maxLine, nil)
}

// ProgressFunc receives load progress: bytes is the cumulative count
// of raw input bytes consumed from the underlying reader (compressed
// bytes for gzipped input, and slightly ahead of parsing due to
// buffering), triples the cumulative count of data lines parsed.
// Callbacks arrive every progressStride triples and once at the end of
// input; wdserve's ingest endpoint and the cmd tools use them to
// report long loads without instrumenting the parse loop themselves.
type ProgressFunc func(bytes int64, triples int)

// progressStride is how many parsed triples pass between two progress
// callbacks: frequent enough for responsive reporting, rare enough
// that the callback never shows up in a load profile.
const progressStride = 1 << 14

// ReadGraphWithProgress is ReadGraph with a progress callback
// (progress may be nil).
func ReadGraphWithProgress(r io.Reader, progress ProgressFunc) (*Graph, error) {
	return readGraph(r, MaxLineLen, progress)
}

// countingReader counts raw bytes consumed from the wrapped reader; it
// sits below the gzip layer so progress reflects input consumed, which
// is what an operator watching a bounded upload wants to see.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func readGraph(r io.Reader, maxLine int, progress ProgressFunc) (*Graph, error) {
	b := NewGraphBuilder(0)
	cr := &countingReader{r: r}
	triples := 0
	err := DecodeTriples(cr, maxLine, func(s, p, o string) error {
		b.AddTriple(s, p, o)
		triples++
		if progress != nil && triples%progressStride == 0 {
			progress(cr.n, triples)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if progress != nil {
		progress(cr.n, triples)
	}
	return b.Graph(), nil
}

// DecodeTriples streams the ReadGraph format: it parses r (gzip
// auto-detected) line by line and calls fn once per data triple, in
// input order, with the bare IRI values of the three positions. A
// non-nil error from fn aborts the decode and is returned unwrapped.
// maxLine ≤ 0 means MaxLineLen. This is the single decode loop behind
// ReadGraph and the parallel ingest pipeline's equivalence tests.
func DecodeTriples(r io.Reader, maxLine int, fn func(s, p, o string) error) error {
	if maxLine <= 0 {
		maxLine = MaxLineLen
	}
	br := bufio.NewReaderSize(r, 64*1024)
	// Gzip auto-detection: sniff the two magic bytes without consuming
	// them (a short Peek just means the input is shorter than a gzip
	// header, so it cannot be gzip). Corrupt gzip streams surface as
	// read errors below, never as silent truncation — the gzip reader
	// checks the trailing CRC before reporting EOF. Line numbers are
	// counted on the decompressed stream, below this branch, so they
	// are identical for a dump and its gzipped form.
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return fmt.Errorf("rdf: gzip input: %w", err)
		}
		defer zr.Close()
		br = bufio.NewReaderSize(zr, 64*1024)
	}
	lineNo := 0
	for {
		line, err := readLine(br, maxLine)
		if err == errLineTooLong {
			return fmt.Errorf("rdf: line %d: line exceeds %d bytes", lineNo+1, maxLine)
		}
		if err != nil && err != io.EOF {
			return fmt.Errorf("rdf: read: %w", err)
		}
		if len(line) == 0 && err == io.EOF {
			break
		}
		lineNo++
		s, p, o, ok, perr := ParseDataLine(line)
		if perr != nil {
			return fmt.Errorf("rdf: line %d: %w", lineNo, perr)
		}
		if ok {
			if ferr := fn(s, p, o); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			break
		}
	}
	return nil
}

// ParseDataLine parses one line of the ReadGraph format into the bare
// IRI values of a triple. ok is false for blank lines and comments.
// The ingest pipeline's chunk workers call this directly on the lines
// of their chunk, so the parallel path parses byte-identically to the
// sequential one.
func ParseDataLine(line string) (s, p, o string, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", "", "", false, nil
	}
	line = strings.TrimSuffix(line, ".")
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return "", "", "", false, fmt.Errorf("expected 3 terms, got %d", len(fields))
	}
	var terms [3]Term
	for i, f := range fields {
		t, err := parseDataTerm(f)
		if err != nil {
			return "", "", "", false, err
		}
		terms[i] = t
	}
	return terms[0].Value, terms[1].Value, terms[2].Value, true, nil
}

// errLineTooLong is readLine's sentinel for a line beyond the bound;
// ReadGraphMaxLine converts it into an error carrying the line number.
var errLineTooLong = fmt.Errorf("line too long")

// readLine reads one \n-terminated line (the terminator is stripped)
// of at most maxLine bytes. It returns io.EOF together with the final
// unterminated line, if any, and errLineTooLong as soon as the line is
// known to exceed the bound — without buffering the rest of it.
func readLine(br *bufio.Reader, maxLine int) (string, error) {
	var buf []byte
	for {
		frag, err := br.ReadSlice('\n')
		if len(buf)+len(frag) > maxLine+1 { // +1: the \n itself is not counted
			return "", errLineTooLong
		}
		if err == nil || err == io.EOF {
			if buf == nil {
				return strings.TrimSuffix(string(frag), "\n"), err
			}
			buf = append(buf, frag...)
			return strings.TrimSuffix(string(buf), "\n"), err
		}
		if err != bufio.ErrBufferFull {
			return "", err
		}
		buf = append(buf, frag...)
	}
}

// ParseGraph parses a graph from a string.
func ParseGraph(s string) (*Graph, error) {
	return ReadGraph(strings.NewReader(s))
}

// MustParseGraph is ParseGraph that panics on error; for tests and
// examples with literal data.
func MustParseGraph(s string) *Graph {
	g, err := ParseGraph(s)
	if err != nil {
		panic(err)
	}
	return g
}

func parseDataTerm(f string) (Term, error) {
	if strings.HasPrefix(f, "?") {
		return Term{}, fmt.Errorf("variable %q not allowed in data", f)
	}
	if strings.HasPrefix(f, "<") {
		if !strings.HasSuffix(f, ">") {
			return Term{}, fmt.Errorf("unterminated IRI %q", f)
		}
		f = strings.TrimSuffix(strings.TrimPrefix(f, "<"), ">")
	}
	if f == "" {
		return Term{}, fmt.Errorf("empty term")
	}
	return IRI(f), nil
}

// WriteGraph writes g to w, one triple per line with a trailing ".",
// in deterministic order.
func WriteGraph(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := fmt.Fprintf(bw, "%s %s %s .\n", t.S.Value, t.P.Value, t.O.Value); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FormatGraph renders g as a string in the WriteGraph format.
func FormatGraph(g *Graph) string {
	var b strings.Builder
	_ = WriteGraph(&b, g)
	return b.String()
}
