package rdf

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"strings"
)

// This file implements a small line-oriented serialisation for ground
// RDF graphs, a pragmatic subset of N-Triples: one triple per line,
// three whitespace-separated terms, an optional trailing ".", "#"
// comments, and optional angle brackets around IRIs. Variables are not
// permitted in data files (graphs are ground).

// MaxLineLen is the default bound on a single input line of ReadGraph.
// It exists so a malformed (or hostile) input cannot make the reader
// buffer an unbounded line; lines beyond the bound fail with an error
// naming the offending line. ReadGraphMaxLine configures it per call.
const MaxLineLen = 16 << 20 // 16 MiB

// ReadGraph parses a graph from r. Gzipped input is detected by its
// magic bytes and decompressed transparently, so `wdserve -data g.nt.gz`
// and a plain file behave identically. It returns the first syntax
// error encountered, annotated with a line number — including lines
// longer than MaxLineLen. The graph is bulk-loaded through a
// GraphBuilder and returned frozen (see Graph.Freeze): cold load is one
// interning pass plus one compaction, and the result is immediately
// ready for concurrent readers. Mutating it thaws it.
func ReadGraph(r io.Reader) (*Graph, error) {
	return ReadGraphMaxLine(r, MaxLineLen)
}

// ReadGraphMaxLine is ReadGraph with an explicit bound on the length
// of a single input line (maxLine ≤ 0 means MaxLineLen). The bound is
// a robustness guard, not a format limit: any line up to the bound is
// parsed whole, however large.
func ReadGraphMaxLine(r io.Reader, maxLine int) (*Graph, error) {
	if maxLine <= 0 {
		maxLine = MaxLineLen
	}
	b := NewGraphBuilder(0)
	br := bufio.NewReaderSize(r, 64*1024)
	// Gzip auto-detection: sniff the two magic bytes without consuming
	// them (a short Peek just means the input is shorter than a gzip
	// header, so it cannot be gzip). Corrupt gzip streams surface as
	// read errors below, never as silent truncation — the gzip reader
	// checks the trailing CRC before reporting EOF.
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("rdf: gzip input: %w", err)
		}
		defer zr.Close()
		br = bufio.NewReaderSize(zr, 64*1024)
	}
	lineNo := 0
	for {
		line, err := readLine(br, maxLine)
		if err == errLineTooLong {
			return nil, fmt.Errorf("rdf: line %d: line exceeds %d bytes", lineNo+1, maxLine)
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("rdf: read: %w", err)
		}
		if len(line) == 0 && err == io.EOF {
			break
		}
		lineNo++
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			line = strings.TrimSuffix(line, ".")
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return nil, fmt.Errorf("rdf: line %d: expected 3 terms, got %d", lineNo, len(fields))
			}
			var terms [3]Term
			for i, f := range fields {
				t, err := parseDataTerm(f)
				if err != nil {
					return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
				}
				terms[i] = t
			}
			b.AddTriple(terms[0].Value, terms[1].Value, terms[2].Value)
		}
		if err == io.EOF {
			break
		}
	}
	return b.Graph(), nil
}

// errLineTooLong is readLine's sentinel for a line beyond the bound;
// ReadGraphMaxLine converts it into an error carrying the line number.
var errLineTooLong = fmt.Errorf("line too long")

// readLine reads one \n-terminated line (the terminator is stripped)
// of at most maxLine bytes. It returns io.EOF together with the final
// unterminated line, if any, and errLineTooLong as soon as the line is
// known to exceed the bound — without buffering the rest of it.
func readLine(br *bufio.Reader, maxLine int) (string, error) {
	var buf []byte
	for {
		frag, err := br.ReadSlice('\n')
		if len(buf)+len(frag) > maxLine+1 { // +1: the \n itself is not counted
			return "", errLineTooLong
		}
		if err == nil || err == io.EOF {
			if buf == nil {
				return strings.TrimSuffix(string(frag), "\n"), err
			}
			buf = append(buf, frag...)
			return strings.TrimSuffix(string(buf), "\n"), err
		}
		if err != bufio.ErrBufferFull {
			return "", err
		}
		buf = append(buf, frag...)
	}
}

// ParseGraph parses a graph from a string.
func ParseGraph(s string) (*Graph, error) {
	return ReadGraph(strings.NewReader(s))
}

// MustParseGraph is ParseGraph that panics on error; for tests and
// examples with literal data.
func MustParseGraph(s string) *Graph {
	g, err := ParseGraph(s)
	if err != nil {
		panic(err)
	}
	return g
}

func parseDataTerm(f string) (Term, error) {
	if strings.HasPrefix(f, "?") {
		return Term{}, fmt.Errorf("variable %q not allowed in data", f)
	}
	if strings.HasPrefix(f, "<") {
		if !strings.HasSuffix(f, ">") {
			return Term{}, fmt.Errorf("unterminated IRI %q", f)
		}
		f = strings.TrimSuffix(strings.TrimPrefix(f, "<"), ">")
	}
	if f == "" {
		return Term{}, fmt.Errorf("empty term")
	}
	return IRI(f), nil
}

// WriteGraph writes g to w, one triple per line with a trailing ".",
// in deterministic order.
func WriteGraph(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := fmt.Fprintf(bw, "%s %s %s .\n", t.S.Value, t.P.Value, t.O.Value); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FormatGraph renders g as a string in the WriteGraph format.
func FormatGraph(g *Graph) string {
	var b strings.Builder
	_ = WriteGraph(&b, g)
	return b.String()
}
