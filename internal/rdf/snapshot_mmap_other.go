//go:build !unix

package rdf

import "errors"

// mmapFile is unavailable on non-unix platforms; callers fall back to
// SnapshotHeap, which shares the whole load path minus the mapping.
func mmapFile(path string) ([]byte, error) {
	return nil, errors.New("mmap snapshots are not supported on this platform; load with SnapshotHeap")
}

func munmapFile(b []byte) error { return nil }
