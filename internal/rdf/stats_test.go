package rdf

import (
	"strings"
	"testing"
)

func TestStats(t *testing.T) {
	g := MustParseGraph(`
a p b .
a p c .
b q a .
c r c .
`)
	st := Stats(g)
	if st.Triples != 4 {
		t.Fatalf("triples %d", st.Triples)
	}
	if st.Predicates != 3 {
		t.Fatalf("predicates %d", st.Predicates)
	}
	if st.PredCounts["p"] != 2 || st.PredCounts["q"] != 1 {
		t.Fatalf("pred counts %v", st.PredCounts)
	}
	if st.MaxOutDeg != 2 {
		t.Fatalf("max out %d", st.MaxOutDeg)
	}
	if st.SelfLoops != 1 {
		t.Fatalf("loops %d", st.SelfLoops)
	}
	if st.Subjects != 3 || st.Objects != 3 {
		t.Fatalf("subjects %d objects %d", st.Subjects, st.Objects)
	}
	out := st.String()
	if !strings.Contains(out, "triples=4") || !strings.Contains(out, "p: 2") {
		t.Fatalf("render: %s", out)
	}
}

func TestStatsEmpty(t *testing.T) {
	st := Stats(NewGraph())
	if st.Triples != 0 || st.IRIs != 0 || st.MaxOutDeg != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
}
