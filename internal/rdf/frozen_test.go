// Cross-validation of the frozen CSR backend against the map backend:
// the two storage representations must agree — content AND order — on
// every read operation, on randomized graphs and patterns (including
// repeated-variable patterns), and the freeze lifecycle (idempotence,
// thaw on mutation, bulk load) must be invisible to consumers.
package rdf_test

import (
	"math/rand"
	"slices"
	"testing"

	"wdsparql/internal/gen"
	"wdsparql/internal/rdf"
)

// frozenTwin returns a map-backed and a frozen graph with identical
// triples, identical dictionary IDs and identical insertion order:
// for even trials the frozen twin is a bulk load (GraphFromTriples),
// for odd trials a Clone().Freeze() — covering both construction
// paths.
func frozenTwin(rng *rand.Rand, trial int) (*rdf.Graph, *rdf.Graph) {
	gm := randGraph(rng)
	if trial%2 == 0 {
		ts := make([]rdf.Triple, 0, gm.Len())
		for _, id := range gm.TriplesID() {
			ts = append(ts, gm.Dict().DecodeTriple(id))
		}
		// Rebuild the map twin from the same list so both twins intern
		// in the same order (randGraph's own insertion order already
		// matches, but this keeps the test self-contained).
		return rdf.GraphOf(ts...), rdf.GraphFromTriples(ts)
	}
	return gm, gm.Clone().Freeze()
}

func sameTriples(a, b []rdf.IDTriple) bool { return slices.Equal(a, b) }

func TestFrozenAgreesWithMapBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		gm, gf := frozenTwin(rng, trial)
		if !gf.Frozen() || gm.Frozen() {
			t.Fatalf("trial %d: backend mix-up (map frozen=%v, frozen frozen=%v)", trial, gm.Frozen(), gf.Frozen())
		}
		if gm.Len() != gf.Len() || gm.DomSize() != gf.DomSize() {
			t.Fatalf("trial %d: Len/DomSize disagree: %d/%d vs %d/%d",
				trial, gm.Len(), gm.DomSize(), gf.Len(), gf.DomSize())
		}
		dom := gm.Dom()
		for probe := 0; probe < 30; probe++ {
			pat := randPattern(rng, dom)
			ipm, okm := gm.EncodePattern(pat)
			ipf, okf := gf.EncodePattern(pat)
			if okm != okf || ipm != ipf {
				t.Fatalf("trial %d: EncodePattern disagrees on %v", trial, pat)
			}
			if !okm {
				continue
			}
			if cm, cf := gm.MatchCountID(ipm), gf.MatchCountID(ipf); cm != cf {
				t.Fatalf("trial %d: MatchCountID(%v) = %d map vs %d frozen", trial, ipm, cm, cf)
			}
			if mm, mf := gm.MatchID(ipm), gf.MatchID(ipf); !sameTriples(mm, mf) {
				t.Fatalf("trial %d: MatchID(%v) differs (content or order):\nmap:    %v\nfrozen: %v",
					trial, ipm, mm, mf)
			}
			if cm, cf := gm.CandidatesID(ipm), gf.CandidatesID(ipf); !sameTriples(cm, cf) {
				t.Fatalf("trial %d: CandidatesID(%v) differs (content or order):\nmap:    %v\nfrozen: %v",
					trial, ipm, cm, cf)
			}
			rm, em := gm.LookupRangeID(ipm)
			rf, ef := gf.LookupRangeID(ipf)
			if em != ef || !sameTriples(rm, rf) {
				t.Fatalf("trial %d: LookupRangeID(%v) differs", trial, ipm)
			}
		}
		// Membership: every triple of G, plus perturbed absent triples.
		for i, id := range gm.TriplesID() {
			if !gf.ContainsID(id) {
				t.Fatalf("trial %d: frozen lost triple %v", trial, id)
			}
			if gf.TriplesID()[i] != id {
				t.Fatalf("trial %d: insertion order changed at %d", trial, i)
			}
			absent := rdf.IDTriple{id[2], id[0], id[1]}
			if gm.ContainsID(absent) != gf.ContainsID(absent) {
				t.Fatalf("trial %d: ContainsID(%v) disagrees", trial, absent)
			}
		}
		// Occurrence counts and dom agree.
		for _, id := range gm.DomIDs() {
			if gm.OccurrencesID(id) != gf.OccurrencesID(id) {
				t.Fatalf("trial %d: OccurrencesID(%v) disagrees", trial, id)
			}
			if !gf.HasIRI(gm.Dict().StringOf(id)) {
				t.Fatalf("trial %d: HasIRI lost %v", trial, id)
			}
		}
	}
}

// Freeze is idempotent, and mutation thaws transparently: a frozen
// graph that is mutated behaves exactly like a never-frozen graph
// with the same history, and can be re-frozen.
func TestFreezeThawLifecycle(t *testing.T) {
	g := gen.Random(12, 40, 3, 99)
	if g.Frozen() {
		t.Fatal("incremental graph must start map-backed")
	}
	g.Freeze()
	if !g.Frozen() {
		t.Fatal("Freeze must seal")
	}
	g.Freeze() // idempotent
	n := g.Len()
	g.AddTriple("thaw-s", "thaw-p", "thaw-o")
	if g.Frozen() {
		t.Fatal("mutation must thaw")
	}
	if g.Len() != n+1 || !g.Contains(rdf.T(rdf.IRI("thaw-s"), rdf.IRI("thaw-p"), rdf.IRI("thaw-o"))) {
		t.Fatal("triple lost across thaw")
	}
	g.Freeze()
	if !g.Frozen() || !g.ContainsID(g.TriplesID()[n]) {
		t.Fatal("re-freeze lost the new triple")
	}
	// Re-adding an existing triple on a frozen graph thaws but must
	// not duplicate.
	g.AddTriple("thaw-s", "thaw-p", "thaw-o")
	if g.Len() != n+1 {
		t.Fatal("duplicate insert after thaw")
	}
	// Cloning a frozen graph takes the compact path (no map rebuild):
	// the clone is frozen and state-identical, including occurrence
	// counts, and stays independently mutable.
	g.Freeze()
	c := g.Clone()
	if !c.Frozen() || !slices.Equal(c.TriplesID(), g.TriplesID()) || c.DomSize() != g.DomSize() {
		t.Fatal("frozen clone lost state")
	}
	for _, id := range g.DomIDs() {
		if c.OccurrencesID(id) != g.OccurrencesID(id) {
			t.Fatalf("frozen clone occurrence count differs for %v", id)
		}
	}
	c.AddTriple("clone-s", "clone-p", "clone-o")
	if c.Len() != g.Len()+1 || !g.Frozen() {
		t.Fatal("frozen clone is not independent of its source")
	}
}

// Bulk load is equivalent to incremental construction + Freeze: same
// triples, same dictionary IDs, same insertion order — and ReadGraph
// returns a frozen, bulk-loaded graph.
func TestBulkLoadEquivalence(t *testing.T) {
	ts := []rdf.Triple{
		rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")),
		rdf.T(rdf.IRI("b"), rdf.IRI("p"), rdf.IRI("c")),
		rdf.T(rdf.IRI("a"), rdf.IRI("q"), rdf.IRI("c")),
		rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")), // duplicate
		rdf.T(rdf.IRI("c"), rdf.IRI("q"), rdf.IRI("a")),
	}
	inc := rdf.GraphOf(ts...)
	bulk := rdf.GraphFromTriples(ts)
	if !bulk.Frozen() {
		t.Fatal("GraphFromTriples must return a frozen graph")
	}
	if !inc.Equal(bulk) || !bulk.Equal(inc) {
		t.Fatal("bulk and incremental graphs differ")
	}
	if !sameTriples(inc.TriplesID(), bulk.TriplesID()) {
		t.Fatalf("IDs or insertion order differ: %v vs %v", inc.TriplesID(), bulk.TriplesID())
	}
	parsed, err := rdf.ParseGraph("a p b .\nb p c .\na q c .\na p b .\nc q a .")
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Frozen() {
		t.Fatal("ReadGraph must return a frozen graph")
	}
	if !sameTriples(parsed.TriplesID(), inc.TriplesID()) {
		t.Fatal("ReadGraph bulk load changed IDs or order")
	}
}

// The empty graph freezes and answers correctly.
func TestFreezeEmptyGraph(t *testing.T) {
	g := rdf.NewGraph().Freeze()
	if g.Len() != 0 || g.ContainsID(rdf.IDTriple{0, 0, 0}) {
		t.Fatal("empty frozen graph misbehaves")
	}
	if got := g.MatchCountID(rdf.IDTriple{rdf.VarID(0), rdf.VarID(1), rdf.VarID(2)}); got != 0 {
		t.Fatalf("empty frozen MatchCountID = %d", got)
	}
	if b := rdf.NewGraphBuilder(0); b.Graph().Len() != 0 {
		t.Fatal("empty builder misbehaves")
	}
}

// Pattern constants interned after the freeze (dictionary grows, the
// frozen offsets do not) must match nothing rather than read out of
// bounds.
func TestFrozenUnseenConstant(t *testing.T) {
	g := rdf.GraphOf(rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b"))).Freeze()
	late := g.Dict().InternIRI("late")
	for _, p := range []rdf.IDTriple{
		{late, rdf.VarID(0), rdf.VarID(1)},
		{rdf.VarID(0), late, rdf.VarID(1)},
		{rdf.VarID(0), rdf.VarID(1), late},
		{late, late, late},
	} {
		if g.MatchCountID(p) != 0 || len(g.CandidatesID(p)) != 0 {
			t.Fatalf("pattern %v with post-freeze constant matched", p)
		}
	}
}
