// Lifecycle and bulk-load tests specific to the frozen CSR backend.
// The read-API cross-validation against the map backend that used to
// live here is now the reusable differential suite of
// internal/rdf/backendtest, instantiated for every backend in
// sharded_test.go.
package rdf_test

import (
	"slices"
	"testing"

	"wdsparql/internal/gen"
	"wdsparql/internal/rdf"
)

func sameTriples(a, b []rdf.IDTriple) bool { return slices.Equal(a, b) }

// Freeze is idempotent, and mutation thaws transparently: a frozen
// graph that is mutated behaves exactly like a never-frozen graph
// with the same history, and can be re-frozen.
func TestFreezeThawLifecycle(t *testing.T) {
	g := gen.Random(12, 40, 3, 99)
	if g.Frozen() {
		t.Fatal("incremental graph must start map-backed")
	}
	g.Freeze()
	if !g.Frozen() {
		t.Fatal("Freeze must seal")
	}
	g.Freeze() // idempotent
	n := g.Len()
	g.AddTriple("thaw-s", "thaw-p", "thaw-o")
	if g.Frozen() {
		t.Fatal("mutation must thaw")
	}
	if g.Len() != n+1 || !g.Contains(rdf.T(rdf.IRI("thaw-s"), rdf.IRI("thaw-p"), rdf.IRI("thaw-o"))) {
		t.Fatal("triple lost across thaw")
	}
	g.Freeze()
	if !g.Frozen() || !g.ContainsID(g.TriplesID()[n]) {
		t.Fatal("re-freeze lost the new triple")
	}
	// Re-adding an existing triple on a frozen graph thaws but must
	// not duplicate.
	g.AddTriple("thaw-s", "thaw-p", "thaw-o")
	if g.Len() != n+1 {
		t.Fatal("duplicate insert after thaw")
	}
	// Cloning a frozen graph takes the compact path (no map rebuild):
	// the clone is frozen and state-identical, including occurrence
	// counts, and stays independently mutable.
	g.Freeze()
	c := g.Clone()
	if !c.Frozen() || !slices.Equal(c.TriplesID(), g.TriplesID()) || c.DomSize() != g.DomSize() {
		t.Fatal("frozen clone lost state")
	}
	for _, id := range g.DomIDs() {
		if c.OccurrencesID(id) != g.OccurrencesID(id) {
			t.Fatalf("frozen clone occurrence count differs for %v", id)
		}
	}
	c.AddTriple("clone-s", "clone-p", "clone-o")
	if c.Len() != g.Len()+1 || !g.Frozen() {
		t.Fatal("frozen clone is not independent of its source")
	}
}

// Bulk load is equivalent to incremental construction + Freeze: same
// triples, same dictionary IDs, same insertion order — and ReadGraph
// returns a frozen, bulk-loaded graph.
func TestBulkLoadEquivalence(t *testing.T) {
	ts := []rdf.Triple{
		rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")),
		rdf.T(rdf.IRI("b"), rdf.IRI("p"), rdf.IRI("c")),
		rdf.T(rdf.IRI("a"), rdf.IRI("q"), rdf.IRI("c")),
		rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")), // duplicate
		rdf.T(rdf.IRI("c"), rdf.IRI("q"), rdf.IRI("a")),
	}
	inc := rdf.GraphOf(ts...)
	bulk := rdf.GraphFromTriples(ts)
	if !bulk.Frozen() {
		t.Fatal("GraphFromTriples must return a frozen graph")
	}
	if !inc.Equal(bulk) || !bulk.Equal(inc) {
		t.Fatal("bulk and incremental graphs differ")
	}
	if !sameTriples(inc.TriplesID(), bulk.TriplesID()) {
		t.Fatalf("IDs or insertion order differ: %v vs %v", inc.TriplesID(), bulk.TriplesID())
	}
	// The sharded bulk load is equivalent to sealing the same list
	// through Shard — including the dropped duplicate.
	shardedBulk := rdf.GraphFromTriplesSharded(ts, 2)
	if !shardedBulk.Sharded() || shardedBulk.ShardCount() != 2 {
		t.Fatal("GraphFromTriplesSharded must return a sharded graph")
	}
	if !sameTriples(shardedBulk.TriplesID(), inc.TriplesID()) {
		t.Fatal("sharded bulk load changed IDs or order")
	}
	parsed, err := rdf.ParseGraph("a p b .\nb p c .\na q c .\na p b .\nc q a .")
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Frozen() {
		t.Fatal("ReadGraph must return a frozen graph")
	}
	if !sameTriples(parsed.TriplesID(), inc.TriplesID()) {
		t.Fatal("ReadGraph bulk load changed IDs or order")
	}
}
