package rdf

import (
	"math/bits"
	"sort"
	"strings"
)

// This file implements the flat-row representation of solution
// mappings used by the ID-native enumeration pipeline. A query (wdPT,
// wdPF or SPARQL pattern) is compiled against a SlotLayout that
// assigns every variable a dense slot; a solution is then a Row — a
// flat []TermID indexed by slot, with Unbound marking variables
// outside dom(µ) — instead of a map[string]string. Rows make the
// enumeration hot paths (extension, compatibility, deduplication,
// cross products) straight array code: no hashing of variable names,
// no per-mapping map allocation, no sorted string keys.
//
// IDMappingSet is the row-level counterpart of MappingSet: solution
// sets ⟦T⟧G / ⟦F⟧G / ⟦P⟧G deduplicated on packed row bytes, with a
// single-uint64 fast path mirroring the pebble closure's assignment
// keys. Strings are only touched when a set is decoded back into a
// MappingSet at the API boundary.

// Unbound marks an unbound slot in a Row. Bound slot values are always
// IRI IDs (< VarIDBase), so any variable-range ID is safe as the
// sentinel; this one is shared with the hom solver.
const Unbound = ^TermID(0)

// AppendIDLE appends the ID as 4 little-endian bytes — the one
// encoding shared by every packed dedup/cache key built from TermIDs
// (IDMappingSet keys, join keys, plan-cache keys).
func AppendIDLE(b []byte, id TermID) []byte {
	return append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
}

// Row is a solution mapping in flat form: Row[s] is the image of the
// variable with slot s under the row's SlotLayout, or Unbound.
type Row []TermID

// Clone returns a copy of the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// SlotLayout assigns the variables of one compiled query dense slots.
// Interning new variables is not safe for concurrent use; a fully
// compiled layout is read-only and safe for concurrent readers.
type SlotLayout struct {
	names []string // slot → variable name (no sigil)
	index map[string]int
}

// NewSlotLayout returns an empty layout.
func NewSlotLayout() *SlotLayout {
	return &SlotLayout{index: map[string]int{}}
}

// Intern returns the slot of the variable with the given name,
// assigning the next dense slot if new. A leading "?" is stripped,
// mirroring Dict.InternVar.
func (l *SlotLayout) Intern(name string) int {
	name = strings.TrimPrefix(name, "?")
	if s, ok := l.index[name]; ok {
		return s
	}
	s := len(l.names)
	l.index[name] = s
	l.names = append(l.names, name)
	return s
}

// Slot returns the slot of a variable name without interning.
func (l *SlotLayout) Slot(name string) (int, bool) {
	s, ok := l.index[strings.TrimPrefix(name, "?")]
	return s, ok
}

// Width returns the number of slots (the row length).
func (l *SlotLayout) Width() int { return len(l.names) }

// Name returns the variable name of a slot.
func (l *SlotLayout) Name(slot int) string { return l.names[slot] }

// NewRow returns a fresh row of the layout's width with every slot
// Unbound.
func (l *SlotLayout) NewRow() Row {
	r := make(Row, len(l.names))
	for i := range r {
		r[i] = Unbound
	}
	return r
}

// Reset marks every slot of the row Unbound.
func (l *SlotLayout) Reset(r Row) {
	for i := range r {
		r[i] = Unbound
	}
}

// DecodeRow decodes a row into a Mapping under the given dictionary
// (the boundary shim from the ID pipeline back to the string API).
func (l *SlotLayout) DecodeRow(d *Dict, r Row) Mapping {
	m := make(Mapping, len(r))
	for s, v := range r {
		if v != Unbound {
			m[l.names[s]] = d.StringOf(v)
		}
	}
	return m
}

// EncodeMapping encodes a mapping as a row. ok is false when some
// variable of the mapping has no slot or some value is unknown to the
// dictionary — in which case the mapping cannot be a solution of any
// query compiled against this layout over the dictionary's graph.
func (l *SlotLayout) EncodeMapping(d *Dict, m Mapping) (Row, bool) {
	r := l.NewRow()
	for name, val := range m {
		s, ok := l.index[strings.TrimPrefix(name, "?")]
		if !ok {
			return nil, false
		}
		id, ok := d.LookupIRI(val)
		if !ok {
			return nil, false
		}
		r[s] = id
	}
	return r, true
}

// IDMappingSet is a deduplicated set of rows sharing one SlotLayout —
// the row-level representation of an evaluation result. Dedup keys are
// the packed row values: a single uint64 when every value of the row
// fits the per-slot bit budget (the common case, mirroring the pebble
// closure's packed assignment keys), and the raw row bytes otherwise.
// Rows are stored in one flat arena in insertion order.
type IDMappingSet struct {
	layout *SlotLayout
	width  int
	bits   uint // per-slot bits for the uint64 fast path; 0 disables it

	small map[uint64]struct{}
	big   map[string]struct{}

	arena  []TermID // n rows of length width, insertion order
	n      int
	keyBuf []byte // scratch for big keys (alloc only on insert)
}

// NewIDMappingSet returns an empty set for rows of the given layout.
// maxID is the exclusive upper bound of the IRI IDs that can occur in
// rows (typically g.Dict().NumIRIs()); it sizes the uint64 fast path.
// Rows with values at or above maxID are still handled correctly —
// they fall back to byte-string keys.
func NewIDMappingSet(layout *SlotLayout, maxID int) *IDMappingSet {
	s := &IDMappingSet{layout: layout, width: layout.Width()}
	// A slot packs value+1 (0 is reserved for Unbound), so the budget
	// must cover maxID values: 1..maxID.
	b := uint(bits.Len64(uint64(maxID)))
	if s.width == 0 || b*uint(s.width) <= 64 {
		s.bits = b
		s.small = map[uint64]struct{}{}
	}
	s.big = map[string]struct{}{}
	return s
}

// Layout returns the slot layout shared by all rows of the set.
func (s *IDMappingSet) Layout() *SlotLayout { return s.layout }

// Len returns the number of distinct rows.
func (s *IDMappingSet) Len() int { return s.n }

// smallKey packs the row into a uint64; ok is false when some value
// exceeds the per-slot bit budget.
func (s *IDMappingSet) smallKey(r Row) (uint64, bool) {
	if s.small == nil {
		return 0, false
	}
	var key uint64
	for _, v := range r {
		packed := uint64(0)
		if v != Unbound {
			packed = uint64(v) + 1
			if s.bits >= 64 || packed >= 1<<s.bits {
				return 0, false
			}
		}
		key = key<<s.bits | packed
	}
	return key, true
}

// bigKey renders the row into the scratch buffer as 4 little-endian
// bytes per slot.
func (s *IDMappingSet) bigKey(r Row) []byte {
	b := s.keyBuf[:0]
	for _, v := range r {
		b = AppendIDLE(b, v)
	}
	s.keyBuf = b
	return b
}

// Add inserts a copy of the row, reporting whether it was new. The
// caller keeps ownership of r; its length must equal the layout width.
func (s *IDMappingSet) Add(r Row) bool {
	if len(r) != s.width {
		panic("rdf: IDMappingSet.Add: row width mismatch")
	}
	if key, ok := s.smallKey(r); ok {
		if _, dup := s.small[key]; dup {
			return false
		}
		s.small[key] = struct{}{}
	} else {
		kb := s.bigKey(r)
		if _, dup := s.big[string(kb)]; dup {
			return false
		}
		s.big[string(kb)] = struct{}{}
	}
	s.arena = append(s.arena, r...)
	s.n++
	return true
}

// ContainsRow reports whether the row is in the set.
func (s *IDMappingSet) ContainsRow(r Row) bool {
	if len(r) != s.width {
		return false
	}
	if key, ok := s.smallKey(r); ok {
		_, in := s.small[key]
		return in
	}
	_, in := s.big[string(s.bigKey(r))]
	return in
}

// Row returns the i-th distinct row in insertion order. The returned
// slice aliases the set's storage: callers must not modify it.
func (s *IDMappingSet) Row(i int) Row {
	return Row(s.arena[i*s.width : (i+1)*s.width])
}

// Each calls yield for every row in insertion order until yield
// returns false. The row passed to yield aliases the set's storage.
func (s *IDMappingSet) Each(yield func(Row) bool) {
	for i := 0; i < s.n; i++ {
		if !yield(s.Row(i)) {
			return
		}
	}
}

// AddAll inserts every row of t into s. The two sets must share the
// same layout (enforced by width). The destination maps are pre-sized.
func (s *IDMappingSet) AddAll(t *IDMappingSet) {
	if t.width != s.width {
		panic("rdf: IDMappingSet.AddAll: layout width mismatch")
	}
	t.Each(func(r Row) bool {
		s.Add(r)
		return true
	})
}

// Decode converts the set into a string-API MappingSet under the given
// dictionary — the decode-at-the-boundary shim that lets ID-native
// evaluation serve the existing Enumerate/Count/Eval signatures.
func (s *IDMappingSet) Decode(d *Dict) *MappingSet {
	out := NewMappingSetCap(s.n)
	s.Each(func(r Row) bool {
		out.Add(s.layout.DecodeRow(d, r))
		return true
	})
	return out
}

// SortedRows returns the rows sorted slot-lexicographically (Unbound
// sorts last within a slot). Used where deterministic output order is
// required; Each/Row preserve the cheaper insertion order.
func (s *IDMappingSet) SortedRows() []Row {
	rows := make([]Row, 0, s.n)
	s.Each(func(r Row) bool {
		rows = append(rows, r)
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return rows
}
