package rdf

// Persistent snapshots: a versioned, checksummed binary image of a
// sealed graph — Dict plus the frozen (or sharded) CSR arenas — that
// loads back with zero parse cost. The format is deliberately dumb:
// a fixed little-endian header, a table of sections, and the arenas
// themselves written verbatim in native byte order, 8-aligned, each
// guarded by a CRC-32C. Loading (snapshot_load.go) is therefore a
// handful of bounds-checked unsafe slice casts over one contiguous
// buffer, which may be read into the heap or mmapped — the mmap path
// is what turns a multi-gigabyte graph restart into a page-cache
// warm-up instead of a parse.
//
// Wire layout (see DESIGN.md §6 for the normative description):
//
//	header   64 bytes, little-endian, CRC-guarded
//	table    nSections × 24-byte entries, little-endian,
//	         guarded as a whole by the header's imageCRC
//	payload  one 8-aligned byte range per section, native-endian,
//	         each guarded by its table entry's CRC
//
// Writes are crash-atomic: the image is written to a temp file in the
// destination directory, fsynced, closed, and renamed over the target;
// a crash at any point leaves either the old file or no file, never a
// torn one. All checksums are computed from the in-memory arenas
// before any byte hits the disk, so a snapshot that writes successfully
// verifies successfully.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"unsafe"
)

// Header geometry. The header is exactly snapHeaderLen bytes and the
// section table starts immediately after it; 64 + 24·n keeps every
// multiple-of-8 alignment decision trivial.
const (
	snapMagic     = "WDSNAP01"
	snapVersion   = 1
	snapHeaderLen = 64
	snapEntryLen  = 24
)

// Graph kinds stored in the header.
const (
	snapKindFrozen  = 1
	snapKindSharded = 2
)

// Endianness marker stored in the header: payload sections are written
// in native byte order, and a loader on the other endianness must
// refuse the file rather than silently transpose every integer.
const (
	snapLittleEndian = 1
	snapBigEndian    = 2
)

// Section kinds. Global sections appear once (shard field 0); per-view
// sections appear once per shard (shard field = shard index; a frozen
// snapshot is the one-shard case of the same layout).
const (
	secDictOffs uint16 = 1 // []uint64, nIRIs+1 cumulative string offsets
	secDictBlob uint16 = 2 // concatenated IRI bytes
	secTriples  uint16 = 3 // []IDTriple, global insertion order
	secOcc      uint16 = 4 // []int32, per-IRI occurrence counts
	secCntP     uint16 = 5 // []uint32, sharded only: global P count offsets
	secCntO     uint16 = 6 // []uint32, sharded only: global O count offsets

	secOffS     uint16 = 16 // []uint32, nIRIs+1
	secOffP     uint16 = 17
	secOffO     uint16 = 18
	secArenaS   uint16 = 19 // []IDTriple, shard length each
	secArenaP   uint16 = 20
	secArenaO   uint16 = 21
	secArenaSP  uint16 = 22
	secArenaPS  uint16 = 23
	secArenaPO  uint16 = 24
	secArenaOP  uint16 = 25
	secArenaSO  uint16 = 26
	secArenaOS  uint16 = 27
	secKeySP    uint16 = 28 // []TermID, shard length each
	secKeyPS    uint16 = 29
	secKeyPO    uint16 = 30
	secKeyOP    uint16 = 31
	secKeySO    uint16 = 32
	secKeyOS    uint16 = 33
	secMemb     uint16 = 34 // []uint32, the open-addressing table
	secShardAll uint16 = 35 // []IDTriple, sharded only: the shard's subset
	secSeqAll   uint16 = 36 // []uint32, sharded only: global sequence columns
	secSeqP     uint16 = 37
	secSeqO     uint16 = 38
	secSeqPO    uint16 = 39
	secSeqOP    uint16 = 40
)

// secName names a section kind for error messages and wdsnap inspect.
func secName(kind uint16) string {
	names := map[uint16]string{
		secDictOffs: "dict-offsets", secDictBlob: "dict-blob",
		secTriples: "triples", secOcc: "occurrences",
		secCntP: "count-p", secCntO: "count-o",
		secOffS: "off-s", secOffP: "off-p", secOffO: "off-o",
		secArenaS: "arena-s", secArenaP: "arena-p", secArenaO: "arena-o",
		secArenaSP: "arena-sp", secArenaPS: "arena-ps", secArenaPO: "arena-po",
		secArenaOP: "arena-op", secArenaSO: "arena-so", secArenaOS: "arena-os",
		secKeySP: "key-sp", secKeyPS: "key-ps", secKeyPO: "key-po",
		secKeyOP: "key-op", secKeySO: "key-so", secKeyOS: "key-os",
		secMemb: "membership", secShardAll: "shard-triples",
		secSeqAll: "seq-all", secSeqP: "seq-p", secSeqO: "seq-o",
		secSeqPO: "seq-po", secSeqOP: "seq-op",
	}
	if n, ok := names[kind]; ok {
		return n
	}
	return fmt.Sprintf("kind-%d", kind)
}

// snapCRC is the CRC-32C (Castagnoli) table; hardware-accelerated on
// amd64/arm64, which is what makes checksumming every section at load
// time affordable.
var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// nativeLittle reports the byte order of this process, detected once.
var nativeLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func nativeEndianMark() uint8 {
	if nativeLittle {
		return snapLittleEndian
	}
	return snapBigEndian
}

// snapWord constrains the element types that cross the byte boundary:
// fixed-size integer records with no pointers. IDTriple is [3]TermID,
// 12 bytes, align 4 — every payload offset is 8-aligned, which is
// stricter than any of these require.
type snapWord interface {
	uint32 | uint64 | int32 | TermID | IDTriple
}

// rawBytes returns the raw native-endian bytes of s without copying.
func rawBytes[T snapWord](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// castSlice reinterprets b as a []T without copying. The caller must
// have verified alignment and that len(b) is a multiple of the element
// size (parseImage does, for every section, before any cast).
func castSlice[T snapWord](b []byte) []T {
	if len(b) == 0 {
		return nil
	}
	var z T
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/int(unsafe.Sizeof(z)))
}

// snapSection is one section during writing: its identity and its raw
// payload bytes.
type snapSection struct {
	kind  uint16
	shard uint16
	data  []byte
}

// snapHeader is the decoded fixed header.
type snapHeader struct {
	version   uint16
	endian    uint8
	kind      uint8
	shards    uint32
	nTriples  uint64
	nIRIs     uint64
	nSections uint32
	imageCRC  uint32 // CRC-32C of the section table bytes
	fileSize  uint64
}

// encodeHeader lays the header out into its 64 little-endian bytes.
// Offsets: magic[0:8], version[8:10], endian[10], kind[11],
// shards[12:16], nTriples[16:24], nIRIs[24:32], nSections[32:36],
// imageCRC[36:40], fileSize[40:48], reserved[48:60] (zero),
// headerCRC[60:64] over bytes [0:60].
func encodeHeader(h snapHeader) [snapHeaderLen]byte {
	var b [snapHeaderLen]byte
	copy(b[0:8], snapMagic)
	binary.LittleEndian.PutUint16(b[8:10], h.version)
	b[10] = h.endian
	b[11] = h.kind
	binary.LittleEndian.PutUint32(b[12:16], h.shards)
	binary.LittleEndian.PutUint64(b[16:24], h.nTriples)
	binary.LittleEndian.PutUint64(b[24:32], h.nIRIs)
	binary.LittleEndian.PutUint32(b[32:36], h.nSections)
	binary.LittleEndian.PutUint32(b[36:40], h.imageCRC)
	binary.LittleEndian.PutUint64(b[40:48], h.fileSize)
	binary.LittleEndian.PutUint32(b[60:64], crc32.Checksum(b[0:60], snapCRC))
	return b
}

// dictSections serialises the IRI table as cumulative offsets plus a
// concatenated blob. Variables are never serialised: variable IDs are
// per-process scratch minted by the solvers, not graph state.
func dictSections(d *Dict) []snapSection {
	iris := d.irisAll() // chain-aware: a forked dict serialises parent prefix + extension
	offs := make([]uint64, len(iris)+1)
	total := 0
	for i, s := range iris {
		total += len(s)
		offs[i+1] = uint64(total)
	}
	blob := make([]byte, 0, total)
	for _, s := range iris {
		blob = append(blob, s...)
	}
	return []snapSection{
		{kind: secDictOffs, data: rawBytes(offs)},
		{kind: secDictBlob, data: blob},
	}
}

// viewSections serialises one frozen CSR view. withAll additionally
// emits the view's own triple slice (sharded snapshots need it: each
// shard's view covers a subset of the global slice); the frozen kind
// omits it because view.all is exactly the global triples section.
func viewSections(v *frozenView, shard uint16, withAll bool) []snapSection {
	secs := []snapSection{
		{kind: secOffS, data: rawBytes(v.offS)},
		{kind: secOffP, data: rawBytes(v.offP)},
		{kind: secOffO, data: rawBytes(v.offO)},
		{kind: secArenaS, data: rawBytes(v.arenaS)},
		{kind: secArenaP, data: rawBytes(v.arenaP)},
		{kind: secArenaO, data: rawBytes(v.arenaO)},
		{kind: secArenaSP, data: rawBytes(v.arenaSP)},
		{kind: secArenaPS, data: rawBytes(v.arenaPS)},
		{kind: secArenaPO, data: rawBytes(v.arenaPO)},
		{kind: secArenaOP, data: rawBytes(v.arenaOP)},
		{kind: secArenaSO, data: rawBytes(v.arenaSO)},
		{kind: secArenaOS, data: rawBytes(v.arenaOS)},
		{kind: secKeySP, data: rawBytes(v.keySP)},
		{kind: secKeyPS, data: rawBytes(v.keyPS)},
		{kind: secKeyPO, data: rawBytes(v.keyPO)},
		{kind: secKeyOP, data: rawBytes(v.keyOP)},
		{kind: secKeySO, data: rawBytes(v.keySO)},
		{kind: secKeyOS, data: rawBytes(v.keyOS)},
		{kind: secMemb, data: rawBytes(v.memb)},
	}
	if withAll {
		secs = append(secs, snapSection{kind: secShardAll, data: rawBytes(v.all)})
	}
	for i := range secs {
		secs[i].shard = shard
	}
	return secs
}

// snapshotSections flattens a sealed graph into its section list plus
// the header identity fields.
func snapshotSections(g *Graph) (kind uint8, shards uint32, secs []snapSection, err error) {
	secs = append(dictSections(g.dict),
		snapSection{kind: secTriples, data: rawBytes(g.all)},
		snapSection{kind: secOcc, data: rawBytes(g.occ)},
	)
	switch {
	case g.shd != nil:
		sg := g.shd
		kind, shards = snapKindSharded, uint32(sg.n)
		secs = append(secs,
			snapSection{kind: secCntP, data: rawBytes(sg.cntP)},
			snapSection{kind: secCntO, data: rawBytes(sg.cntO)},
		)
		for s := range sg.shards {
			sh := &sg.shards[s]
			secs = append(secs, viewSections(sh.view, uint16(s), true)...)
			secs = append(secs,
				snapSection{kind: secSeqAll, shard: uint16(s), data: rawBytes(sh.seqAll)},
				snapSection{kind: secSeqP, shard: uint16(s), data: rawBytes(sh.seqP)},
				snapSection{kind: secSeqO, shard: uint16(s), data: rawBytes(sh.seqO)},
				snapSection{kind: secSeqPO, shard: uint16(s), data: rawBytes(sh.seqPO)},
				snapSection{kind: secSeqOP, shard: uint16(s), data: rawBytes(sh.seqOP)},
			)
		}
	case g.frz != nil:
		kind, shards = snapKindFrozen, 1
		secs = append(secs, viewSections(g.frz, 0, false)...)
	default:
		return 0, 0, nil, fmt.Errorf("rdf: snapshot: graph is not sealed (call Freeze or Shard first)")
	}
	if int(shards) > int(^uint16(0))+1 {
		return 0, 0, nil, fmt.Errorf("rdf: snapshot: %d shards exceed the format's shard limit", shards)
	}
	return kind, shards, secs, nil
}

// WriteSnapshot writes the graph as a snapshot image at path,
// crash-atomically: the bytes go to a temp file in path's directory,
// are fsynced, and the temp file is renamed over path. The graph must
// be sealed (frozen or sharded); WriteSnapshot freezes an unsealed
// graph first, since only sealed arenas have a flat representation.
func (g *Graph) WriteSnapshot(path string) error {
	if g.ovl != nil {
		g.Compact() // only a sealed base has a flat representation; fold the write layer first
	}
	if g.frz == nil && g.shd == nil {
		g.Freeze()
	}
	kind, shards, secs, err := snapshotSections(g)
	if err != nil {
		return err
	}

	// Lay out the payload: sections follow the table in order, each
	// padded to 8-byte alignment. 64 + 24·n is already a multiple of 8,
	// so the first section needs no padding.
	tableLen := len(secs) * snapEntryLen
	cur := uint64(snapHeaderLen + tableLen)
	table := make([]byte, tableLen)
	offs := make([]uint64, len(secs))
	for i, s := range secs {
		cur = (cur + 7) &^ 7
		offs[i] = cur
		e := table[i*snapEntryLen:]
		binary.LittleEndian.PutUint16(e[0:2], s.kind)
		binary.LittleEndian.PutUint16(e[2:4], s.shard)
		binary.LittleEndian.PutUint32(e[4:8], crc32.Checksum(s.data, snapCRC))
		binary.LittleEndian.PutUint64(e[8:16], cur)
		binary.LittleEndian.PutUint64(e[16:24], uint64(len(s.data)))
		cur += uint64(len(s.data))
	}
	hdr := encodeHeader(snapHeader{
		version:   snapVersion,
		endian:    nativeEndianMark(),
		kind:      kind,
		shards:    shards,
		nTriples:  uint64(len(g.all)),
		nIRIs:     uint64(g.dict.NumIRIs()),
		nSections: uint32(len(secs)),
		imageCRC:  crc32.Checksum(table, snapCRC),
		fileSize:  cur,
	})

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("rdf: snapshot %s: %w", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	w := bufio.NewWriterSize(tmp, 1<<20)
	written := uint64(0)
	emit := func(b []byte) error {
		n, err := w.Write(b)
		written += uint64(n)
		return err
	}
	if err := emit(hdr[:]); err != nil {
		return fmt.Errorf("rdf: snapshot %s: %w", path, err)
	}
	if err := emit(table); err != nil {
		return fmt.Errorf("rdf: snapshot %s: %w", path, err)
	}
	var pad [8]byte
	for i, s := range secs {
		if written < offs[i] {
			if err := emit(pad[:offs[i]-written]); err != nil {
				return fmt.Errorf("rdf: snapshot %s: %w", path, err)
			}
		}
		if err := emit(s.data); err != nil {
			return fmt.Errorf("rdf: snapshot %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("rdf: snapshot %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("rdf: snapshot %s: %w", path, err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return fmt.Errorf("rdf: snapshot %s: %w", path, err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("rdf: snapshot %s: %w", path, err)
	}
	// Persist the rename itself; best-effort — some filesystems refuse
	// directory fsync, and the rename is already atomic without it.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// WriteSnapshot seals the builder's accumulated triples — sharded into
// n shards when shards ≥ 2, frozen single-arena otherwise — writes the
// snapshot image at path, and returns the sealed graph (which remains
// fully usable). The builder must not be used afterwards, as with
// Graph/Sharded.
func (b *GraphBuilder) WriteSnapshot(path string, shards int) (*Graph, error) {
	var g *Graph
	if shards >= 2 {
		g = b.Sharded(shards)
	} else {
		g = b.Graph()
	}
	if err := g.WriteSnapshot(path); err != nil {
		return nil, err
	}
	return g, nil
}
