package rdf

import "strings"

// This file implements dictionary encoding for terms: every IRI and
// every variable is interned to a dense integer TermID, and triples
// become IDTriple values of three machine words. Real SPARQL engines
// dictionary-encode terms because the workloads are join- and
// closure-heavy; interning turns hashing, equality and set membership
// on the hot paths (Graph.Match, the homomorphism solver, the pebble
// closure) into integer operations.
//
// IRIs and variables live in disjoint ID ranges so that the kind of a
// term is a single range check: IRI IDs are dense from 0, variable IDs
// are dense from VarIDBase = 1<<31. A Graph owns a private Dict that is
// populated only by Add/AddID, so the dictionary's IRI table tracks
// exactly the IRIs that were ever inserted; read operations (Match,
// Contains, ...) never intern and are therefore safe for concurrent
// use.

// TermID is a dictionary-encoded term: either an interned IRI
// (id < VarIDBase) or an interned variable (id ≥ VarIDBase).
type TermID uint32

// VarIDBase is the first variable ID. IRIs occupy [0, VarIDBase) and
// variables [VarIDBase, 1<<32), so IsVar is a range check.
const VarIDBase TermID = 1 << 31

// IsVar reports whether the ID denotes a variable.
func (id TermID) IsVar() bool { return id >= VarIDBase }

// VarID returns the variable ID with the given dense index. Solvers
// use it to mint positional variable IDs (slots) without touching any
// dictionary: two pattern positions carry the same variable iff they
// carry the same TermID.
func VarID(slot int) TermID { return VarIDBase + TermID(slot) }

// VarSlot inverts VarID.
func (id TermID) VarSlot() int { return int(id - VarIDBase) }

// IDTriple is a dictionary-encoded triple or triple pattern: three
// TermIDs in (S, P, O) order. Encoded ground triples contain only IRI
// IDs; encoded patterns may contain variable IDs.
type IDTriple [3]TermID

// Less imposes the lexicographic total order on encoded triples, used
// to keep posting lists ID-sorted.
func (t IDTriple) Less(u IDTriple) bool {
	if t[0] != u[0] {
		return t[0] < u[0]
	}
	if t[1] != u[1] {
		return t[1] < u[1]
	}
	return t[2] < u[2]
}

// Dict interns strings to dense TermIDs, IRIs and variables
// separately. The zero value is not usable; call NewDict.
type Dict struct {
	iriID map[string]TermID
	iris  []string
	varID map[string]TermID
	vars  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{iriID: map[string]TermID{}, varID: map[string]TermID{}}
}

// InternIRI returns the ID of the IRI value, interning it if new.
func (d *Dict) InternIRI(v string) TermID {
	if id, ok := d.iriID[v]; ok {
		return id
	}
	if len(d.iris) >= int(VarIDBase) {
		panic("rdf: dictionary overflow: 2^31 IRIs")
	}
	id := TermID(len(d.iris))
	d.iriID[v] = id
	d.iris = append(d.iris, v)
	return id
}

// InternVar returns the ID of the variable with the given name,
// interning it if new. A leading "?" is stripped, mirroring Var.
func (d *Dict) InternVar(v string) TermID {
	v = strings.TrimPrefix(v, "?")
	if id, ok := d.varID[v]; ok {
		return id
	}
	if len(d.vars) >= int(VarIDBase) {
		panic("rdf: dictionary overflow: 2^31 variables")
	}
	id := VarIDBase + TermID(len(d.vars))
	d.varID[v] = id
	d.vars = append(d.vars, v)
	return id
}

// Intern returns the ID of the term, interning it if new.
func (d *Dict) Intern(t Term) TermID {
	if t.IsVar() {
		return d.InternVar(t.Value)
	}
	return d.InternIRI(t.Value)
}

// LookupIRI returns the ID of an IRI value without interning.
func (d *Dict) LookupIRI(v string) (TermID, bool) {
	id, ok := d.iriID[v]
	return id, ok
}

// LookupVar returns the ID of a variable name without interning.
func (d *Dict) LookupVar(v string) (TermID, bool) {
	id, ok := d.varID[strings.TrimPrefix(v, "?")]
	return id, ok
}

// Lookup returns the ID of a term without interning.
func (d *Dict) Lookup(t Term) (TermID, bool) {
	if t.IsVar() {
		return d.LookupVar(t.Value)
	}
	return d.LookupIRI(t.Value)
}

// StringOf returns the string interned under the ID (the IRI value or
// the variable name, without sigil). It panics on an unknown ID.
func (d *Dict) StringOf(id TermID) string {
	if id.IsVar() {
		return d.vars[id-VarIDBase]
	}
	return d.iris[id]
}

// TermOf decodes an ID back into a Term.
func (d *Dict) TermOf(id TermID) Term {
	if id.IsVar() {
		return Term{Kind: KindVar, Value: d.vars[id-VarIDBase]}
	}
	return Term{Kind: KindIRI, Value: d.iris[id]}
}

// NumIRIs returns the number of interned IRIs.
func (d *Dict) NumIRIs() int { return len(d.iris) }

// NumVars returns the number of interned variables.
func (d *Dict) NumVars() int { return len(d.vars) }

// EncodeTriple interns all three positions of a triple or pattern.
func (d *Dict) EncodeTriple(t Triple) IDTriple {
	return IDTriple{d.Intern(t.S), d.Intern(t.P), d.Intern(t.O)}
}

// DecodeTriple inverts EncodeTriple.
func (d *Dict) DecodeTriple(t IDTriple) Triple {
	return Triple{S: d.TermOf(t[0]), P: d.TermOf(t[1]), O: d.TermOf(t[2])}
}

// Clone returns a deep copy of the dictionary; the copy assigns the
// same IDs to the same strings.
func (d *Dict) Clone() *Dict {
	out := &Dict{
		iriID: make(map[string]TermID, len(d.iriID)),
		iris:  append([]string(nil), d.iris...),
		varID: make(map[string]TermID, len(d.varID)),
		vars:  append([]string(nil), d.vars...),
	}
	for k, v := range d.iriID {
		out.iriID[k] = v
	}
	for k, v := range d.varID {
		out.varID[k] = v
	}
	return out
}

// MatchesPatternID reports whether the ground encoded triple t matches
// the encoded pattern p: IRI positions must be equal, variable
// positions match anything, and repeated variables must bind the same
// value (e.g. (?x, r, ?x) only matches loops). With at most three
// positions the repeated-variable check runs on fixed-size scratch
// arrays, with no allocation.
func MatchesPatternID(p, t IDTriple) bool {
	var pv, bv [3]TermID // pattern var IDs seen, and their bound values
	nb := 0
	for i := 0; i < 3; i++ {
		pi := p[i]
		if !pi.IsVar() {
			if pi != t[i] {
				return false
			}
			continue
		}
		seen := false
		for j := 0; j < nb; j++ {
			if pv[j] == pi {
				if bv[j] != t[i] {
					return false
				}
				seen = true
				break
			}
		}
		if !seen {
			pv[nb], bv[nb] = pi, t[i]
			nb++
		}
	}
	return true
}
