package rdf

import "strings"

// This file implements dictionary encoding for terms: every IRI and
// every variable is interned to a dense integer TermID, and triples
// become IDTriple values of three machine words. Real SPARQL engines
// dictionary-encode terms because the workloads are join- and
// closure-heavy; interning turns hashing, equality and set membership
// on the hot paths (Graph.Match, the homomorphism solver, the pebble
// closure) into integer operations.
//
// IRIs and variables live in disjoint ID ranges so that the kind of a
// term is a single range check: IRI IDs are dense from 0, variable IDs
// are dense from VarIDBase = 1<<31. A Graph owns a private Dict that is
// populated only by Add/AddID, so the dictionary's IRI table tracks
// exactly the IRIs that were ever inserted; read operations (Match,
// Contains, ...) never intern and are therefore safe for concurrent
// use.

// TermID is a dictionary-encoded term: either an interned IRI
// (id < VarIDBase) or an interned variable (id ≥ VarIDBase).
type TermID uint32

// VarIDBase is the first variable ID. IRIs occupy [0, VarIDBase) and
// variables [VarIDBase, 1<<32), so IsVar is a range check.
const VarIDBase TermID = 1 << 31

// IsVar reports whether the ID denotes a variable.
func (id TermID) IsVar() bool { return id >= VarIDBase }

// VarID returns the variable ID with the given dense index. Solvers
// use it to mint positional variable IDs (slots) without touching any
// dictionary: two pattern positions carry the same variable iff they
// carry the same TermID.
func VarID(slot int) TermID { return VarIDBase + TermID(slot) }

// VarSlot inverts VarID.
func (id TermID) VarSlot() int { return int(id - VarIDBase) }

// IDTriple is a dictionary-encoded triple or triple pattern: three
// TermIDs in (S, P, O) order. Encoded ground triples contain only IRI
// IDs; encoded patterns may contain variable IDs.
type IDTriple [3]TermID

// Less imposes the lexicographic total order on encoded triples, used
// to keep posting lists ID-sorted.
func (t IDTriple) Less(u IDTriple) bool {
	if t[0] != u[0] {
		return t[0] < u[0]
	}
	if t[1] != u[1] {
		return t[1] < u[1]
	}
	return t[2] < u[2]
}

// Dict interns strings to dense TermIDs, IRIs and variables
// separately. The zero value is not usable; call NewDict.
//
// A dictionary is either a root (parent == nil, the common case) or a
// copy-on-write extension of an immutable parent (built by Fork): the
// extension assigns IDs densely continuing the parent's ranges and
// keeps only its own terms in local tables, so forking is O(extension),
// not O(dictionary). Lookups check the parent first — parents are
// read-only from the moment of the fork, so any number of forks (and
// the readers of the generations holding them) can share one parent
// concurrently. The mutable-overlay write path (see overlay.go) relies
// on exactly that: every ingest generation forks the dictionary instead
// of copying it.
type Dict struct {
	parent       *Dict // immutable shared base; nil for a root dict
	pIRIs, pVars int   // parent table sizes at fork time

	iriID map[string]TermID // local terms only (IDs ≥ pIRIs)
	iris  []string
	varID map[string]TermID
	vars  []string
}

// NewDict returns an empty root dictionary.
func NewDict() *Dict {
	return &Dict{iriID: map[string]TermID{}, varID: map[string]TermID{}}
}

// Fork returns a copy-on-write extension of d: a dictionary with the
// same contents and IDs whose future interns stay local to the fork.
// From the fork on, d must be treated as immutable — interning into a
// forked-from dictionary would assign IDs the fork has already claimed
// for its own terms. Forking an extension re-parents onto the same
// root (the chain never deepens), copying only the extension tables.
func (d *Dict) Fork() *Dict {
	if d.parent == nil {
		return &Dict{
			parent: d, pIRIs: len(d.iris), pVars: len(d.vars),
			iriID: map[string]TermID{}, varID: map[string]TermID{},
		}
	}
	out := &Dict{
		parent: d.parent, pIRIs: d.pIRIs, pVars: d.pVars,
		iriID: make(map[string]TermID, len(d.iriID)),
		iris:  append([]string(nil), d.iris...),
		varID: make(map[string]TermID, len(d.varID)),
		vars:  append([]string(nil), d.vars...),
	}
	for k, v := range d.iriID {
		out.iriID[k] = v
	}
	for k, v := range d.varID {
		out.varID[k] = v
	}
	return out
}

// InternIRI returns the ID of the IRI value, interning it if new.
func (d *Dict) InternIRI(v string) TermID {
	if p := d.parent; p != nil {
		if id, ok := p.iriID[v]; ok {
			return id
		}
	}
	if id, ok := d.iriID[v]; ok {
		return id
	}
	if d.pIRIs+len(d.iris) >= int(VarIDBase) {
		panic("rdf: dictionary overflow: 2^31 IRIs")
	}
	id := TermID(d.pIRIs + len(d.iris))
	d.iriID[v] = id
	d.iris = append(d.iris, v)
	return id
}

// InternVar returns the ID of the variable with the given name,
// interning it if new. A leading "?" is stripped, mirroring Var.
func (d *Dict) InternVar(v string) TermID {
	v = strings.TrimPrefix(v, "?")
	if p := d.parent; p != nil {
		if id, ok := p.varID[v]; ok {
			return id
		}
	}
	if id, ok := d.varID[v]; ok {
		return id
	}
	if d.pVars+len(d.vars) >= int(VarIDBase) {
		panic("rdf: dictionary overflow: 2^31 variables")
	}
	id := VarIDBase + TermID(d.pVars+len(d.vars))
	d.varID[v] = id
	d.vars = append(d.vars, v)
	return id
}

// Intern returns the ID of the term, interning it if new.
func (d *Dict) Intern(t Term) TermID {
	if t.IsVar() {
		return d.InternVar(t.Value)
	}
	return d.InternIRI(t.Value)
}

// LookupIRI returns the ID of an IRI value without interning.
func (d *Dict) LookupIRI(v string) (TermID, bool) {
	if p := d.parent; p != nil {
		if id, ok := p.iriID[v]; ok {
			return id, true
		}
	}
	id, ok := d.iriID[v]
	return id, ok
}

// LookupVar returns the ID of a variable name without interning.
func (d *Dict) LookupVar(v string) (TermID, bool) {
	v = strings.TrimPrefix(v, "?")
	if p := d.parent; p != nil {
		if id, ok := p.varID[v]; ok {
			return id, true
		}
	}
	id, ok := d.varID[v]
	return id, ok
}

// Lookup returns the ID of a term without interning.
func (d *Dict) Lookup(t Term) (TermID, bool) {
	if t.IsVar() {
		return d.LookupVar(t.Value)
	}
	return d.LookupIRI(t.Value)
}

// StringOf returns the string interned under the ID (the IRI value or
// the variable name, without sigil). It panics on an unknown ID.
func (d *Dict) StringOf(id TermID) string {
	if id.IsVar() {
		slot := int(id - VarIDBase)
		if slot < d.pVars {
			return d.parent.vars[slot]
		}
		return d.vars[slot-d.pVars]
	}
	if int(id) < d.pIRIs {
		return d.parent.iris[id]
	}
	return d.iris[int(id)-d.pIRIs]
}

// TermOf decodes an ID back into a Term.
func (d *Dict) TermOf(id TermID) Term {
	if id.IsVar() {
		return Term{Kind: KindVar, Value: d.StringOf(id)}
	}
	return Term{Kind: KindIRI, Value: d.StringOf(id)}
}

// NumIRIs returns the number of interned IRIs.
func (d *Dict) NumIRIs() int { return d.pIRIs + len(d.iris) }

// NumVars returns the number of interned variables.
func (d *Dict) NumVars() int { return d.pVars + len(d.vars) }

// EncodeTriple interns all three positions of a triple or pattern.
func (d *Dict) EncodeTriple(t Triple) IDTriple {
	return IDTriple{d.Intern(t.S), d.Intern(t.P), d.Intern(t.O)}
}

// DecodeTriple inverts EncodeTriple.
func (d *Dict) DecodeTriple(t IDTriple) Triple {
	return Triple{S: d.TermOf(t[0]), P: d.TermOf(t[1]), O: d.TermOf(t[2])}
}

// Clone returns a deep copy of the dictionary; the copy assigns the
// same IDs to the same strings. Cloning a forked dictionary flattens
// it: the copy is a self-contained root with no parent pointer, so a
// clone never ties the lifetime of its source's parent.
func (d *Dict) Clone() *Dict {
	ni, nv := d.NumIRIs(), d.NumVars()
	out := &Dict{
		iriID: make(map[string]TermID, ni),
		iris:  make([]string, 0, ni),
		varID: make(map[string]TermID, nv),
		vars:  make([]string, 0, nv),
	}
	if p := d.parent; p != nil {
		out.iris = append(out.iris, p.iris[:d.pIRIs]...)
		out.vars = append(out.vars, p.vars[:d.pVars]...)
	}
	out.iris = append(out.iris, d.iris...)
	out.vars = append(out.vars, d.vars...)
	for i, s := range out.iris {
		out.iriID[s] = TermID(i)
	}
	for i, s := range out.vars {
		out.varID[s] = VarIDBase + TermID(i)
	}
	return out
}

// irisAll returns the dictionary's IRI table in ID order. For a root
// dictionary this is the internal slice (callers must not modify it);
// for a forked dictionary it stitches the parent prefix and the local
// extension into a fresh slice.
func (d *Dict) irisAll() []string {
	if d.parent == nil {
		return d.iris
	}
	out := make([]string, 0, d.NumIRIs())
	out = append(out, d.parent.iris[:d.pIRIs]...)
	return append(out, d.iris...)
}

// MatchesPatternID reports whether the ground encoded triple t matches
// the encoded pattern p: IRI positions must be equal, variable
// positions match anything, and repeated variables must bind the same
// value (e.g. (?x, r, ?x) only matches loops). With at most three
// positions the repeated-variable check runs on fixed-size scratch
// arrays, with no allocation.
func MatchesPatternID(p, t IDTriple) bool {
	var pv, bv [3]TermID // pattern var IDs seen, and their bound values
	nb := 0
	for i := 0; i < 3; i++ {
		pi := p[i]
		if !pi.IsVar() {
			if pi != t[i] {
				return false
			}
			continue
		}
		seen := false
		for j := 0; j < nb; j++ {
			if pv[j] == pi {
				if bv[j] != t[i] {
					return false
				}
				seen = true
				break
			}
		}
		if !seen {
			pv[nb], bv[nb] = pi, t[i]
			nb++
		}
	}
	return true
}
