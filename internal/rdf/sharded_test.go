// Differential-suite instantiations for all three storage backends,
// plus unit tests for the sharded backend's own machinery: the
// partition, the order-preserving sequence-number merge, and the
// shard lifecycle.
package rdf_test

import (
	"math/rand"
	"slices"
	"testing"

	"wdsparql/internal/gen"
	"wdsparql/internal/rdf"
	"wdsparql/internal/rdf/backendtest"
)

// The map backend against itself: a sanity check that the suite's
// reference construction is self-consistent.
func TestBackendSuiteMap(t *testing.T) {
	backendtest.RunBackendSuite(t, func(ts []rdf.Triple) *rdf.Graph {
		return rdf.GraphOf(ts...)
	})
}

// The frozen CSR backend, through both construction paths: bulk load
// and incremental construction + Freeze.
func TestBackendSuiteFrozenBulk(t *testing.T) {
	backendtest.RunBackendSuite(t, rdf.GraphFromTriples)
}

func TestBackendSuiteFrozenIncremental(t *testing.T) {
	backendtest.RunBackendSuite(t, func(ts []rdf.Triple) *rdf.Graph {
		return rdf.GraphOf(ts...).Freeze()
	})
}

// The sharded backend at the canonical shard counts (1: the degenerate
// single-shard partition, 2: the smallest real merge, 7: more shards
// than distinct predicates in every generated workload, so many shards
// hold sparse or empty ranges), through both construction paths.
func TestBackendSuiteSharded(t *testing.T) {
	for _, n := range []int{1, 2, 7} {
		n := n
		t.Run(backendtest.SuiteName("bulk", n), func(t *testing.T) {
			backendtest.RunBackendSuite(t, func(ts []rdf.Triple) *rdf.Graph {
				return rdf.GraphFromTriplesSharded(ts, n)
			})
		})
		t.Run(backendtest.SuiteName("reseal", n), func(t *testing.T) {
			backendtest.RunBackendSuite(t, func(ts []rdf.Triple) *rdf.Graph {
				// The frozen → sharded re-seal path (no map rebuild).
				return rdf.GraphFromTriples(ts).Shard(n)
			})
		})
	}
}

// AllID is the direct witness of the k-way merge: it must reconstruct
// the exact global insertion order from the per-shard streams.
func TestShardedAllIDReconstructsInsertionOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		g := gen.Random(16, 60, 3, rng.Int63())
		for _, n := range []int{1, 2, 3, 5, 8} {
			s := g.Clone().Shard(n)
			sg := s.Shards()
			if sg == nil || sg.NumShards() != n {
				t.Fatalf("trial %d: Shards()=%v after Shard(%d)", trial, sg, n)
			}
			if !slices.Equal(sg.AllID(), g.TriplesID()) {
				t.Fatalf("trial %d: AllID with %d shards does not reconstruct insertion order", trial, n)
			}
			total := 0
			for i := 0; i < n; i++ {
				total += sg.ShardLen(i)
			}
			if total != g.Len() {
				t.Fatalf("trial %d: shard lengths sum to %d, want %d", trial, total, g.Len())
			}
		}
	}
}

// The partition is by subject: every triple lands in the shard its
// subject hashes to, and ShardOf agrees between Graph and ShardedGraph.
func TestShardedPartitionBySubject(t *testing.T) {
	g := gen.Random(16, 60, 3, 77).Shard(4)
	sg := g.Shards()
	for _, id := range g.TriplesID() {
		if g.ShardOf(id) != sg.ShardOf(id[0]) {
			t.Fatalf("ShardOf disagrees for %v", id)
		}
	}
	// Subject-bound candidate lists alias shard storage; a triple and
	// its subject must be found in the named shard.
	for _, id := range g.TriplesID() {
		pat := rdf.IDTriple{id[0], rdf.VarID(0), rdf.VarID(1)}
		found := false
		for _, c := range g.CandidatesID(pat) {
			if c == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("subject-bound candidates of %v missing the triple", id)
		}
	}
}

// Shard lifecycle: idempotence at the same count, re-partition at a
// different count, interplay with Freeze, thaw on mutation, and the
// unusable shard counts panic.
func TestShardLifecycle(t *testing.T) {
	g := gen.Random(12, 40, 3, 5)
	g.Shard(3)
	if !g.Sharded() || g.Frozen() || g.ShardCount() != 3 {
		t.Fatalf("Shard(3): sharded=%v frozen=%v count=%d", g.Sharded(), g.Frozen(), g.ShardCount())
	}
	sg := g.Shards()
	if g.Shard(3).Shards() != sg {
		t.Fatal("Shard with the same count must be a no-op")
	}
	if g.Shard(5).ShardCount() != 5 {
		t.Fatal("Shard with a different count must re-partition")
	}
	g.Freeze()
	if g.Sharded() || !g.Frozen() {
		t.Fatal("Freeze on a sharded graph must re-seal single-arena")
	}
	g.Shard(2)
	if g.Sharded() != true || g.Frozen() {
		t.Fatal("Shard on a frozen graph must replace the frozen view")
	}
	n := g.Len()
	g.AddTriple("thaw-s", "thaw-p", "thaw-o")
	if g.Sharded() || g.ShardCount() != 1 || g.Len() != n+1 {
		t.Fatal("mutation must thaw a sharded graph")
	}
	c := g.Shard(2).Clone()
	if !c.Sharded() || c.ShardCount() != 2 || !slices.Equal(c.TriplesID(), g.TriplesID()) {
		t.Fatal("clone of a sharded graph must be sharded and state-identical")
	}
	c.AddTriple("clone-s", "clone-p", "clone-o")
	if c.Len() != g.Len()+1 || !g.Sharded() {
		t.Fatal("sharded clone is not independent of its source")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Shard(0) must panic")
		}
	}()
	g.Shard(0)
}

// A sharded empty graph and a shard count far above the subject count
// (all-empty shards except a few) answer correctly.
func TestShardDegenerateShapes(t *testing.T) {
	if g := rdf.NewGraph().Shard(4); g.Len() != 0 || g.ContainsID(rdf.IDTriple{0, 0, 0}) {
		t.Fatal("empty sharded graph misbehaves")
	}
	g := rdf.GraphOf(
		rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")),
		rdf.T(rdf.IRI("b"), rdf.IRI("p"), rdf.IRI("c")),
	).Shard(64)
	pat, ok := g.EncodePattern(rdf.T(rdf.Var("x"), rdf.IRI("p"), rdf.Var("y")))
	if !ok || g.MatchCountID(pat) != 2 || len(g.MatchID(pat)) != 2 {
		t.Fatal("64-shard two-triple graph misbehaves")
	}
}
