package rdf

import (
	"testing"
)

func TestSlotLayoutInternAndDecode(t *testing.T) {
	l := NewSlotLayout()
	if got := l.Intern("x"); got != 0 {
		t.Fatalf("first slot = %d", got)
	}
	if got := l.Intern("?x"); got != 0 {
		t.Fatalf("sigil-stripped intern: %d", got)
	}
	if got := l.Intern("y"); got != 1 {
		t.Fatalf("second slot = %d", got)
	}
	if s, ok := l.Slot("?y"); !ok || s != 1 {
		t.Fatalf("Slot(?y) = %d, %v", s, ok)
	}
	if _, ok := l.Slot("z"); ok {
		t.Fatal("Slot must not intern")
	}
	if l.Width() != 2 || l.Name(0) != "x" || l.Name(1) != "y" {
		t.Fatalf("layout: width=%d names=%q,%q", l.Width(), l.Name(0), l.Name(1))
	}
}

func TestRowEncodeDecodeRoundTrip(t *testing.T) {
	g := NewGraph()
	g.AddTriple("a", "p", "b")
	g.AddTriple("b", "p", "c")
	l := NewSlotLayout()
	l.Intern("x")
	l.Intern("y")
	l.Intern("z")

	m := Mapping{"x": "a", "z": "c"} // y deliberately unbound
	row, ok := l.EncodeMapping(g.Dict(), m)
	if !ok {
		t.Fatal("encode failed")
	}
	if row[1] != Unbound {
		t.Fatal("unbound variable must encode to Unbound")
	}
	back := l.DecodeRow(g.Dict(), row)
	if !back.Equal(m) {
		t.Fatalf("round trip: %v != %v", back, m)
	}

	if _, ok := l.EncodeMapping(g.Dict(), Mapping{"x": "nonexistent"}); ok {
		t.Fatal("unknown value must fail encoding")
	}
	if _, ok := l.EncodeMapping(g.Dict(), Mapping{"other": "a"}); ok {
		t.Fatal("unknown variable must fail encoding")
	}
}

// addRows exercises Add/ContainsRow/Len/Each on a set; the same rows
// must behave identically on the uint64 fast path and the byte-string
// fallback.
func addRows(t *testing.T, s *IDMappingSet, l *SlotLayout) {
	t.Helper()
	r1 := Row{0, Unbound, 2}
	r2 := Row{0, 1, 2}
	r3 := Row{Unbound, Unbound, Unbound}
	for _, r := range []Row{r1, r2, r3} {
		if !s.Add(r) {
			t.Fatalf("fresh row %v reported duplicate", r)
		}
	}
	for _, r := range []Row{r1, r2, r3} {
		if s.Add(r.Clone()) {
			t.Fatalf("duplicate row %v reported fresh", r)
		}
		if !s.ContainsRow(r) {
			t.Fatalf("ContainsRow(%v) = false", r)
		}
	}
	if s.ContainsRow(Row{0, Unbound, 1}) {
		t.Fatal("absent row reported present")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Insertion order and aliasing-free iteration.
	var got []Row
	s.Each(func(r Row) bool {
		got = append(got, r.Clone())
		return true
	})
	want := []Row{r1, r2, r3}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d: %v != %v", i, got[i], want[i])
			}
		}
	}
}

func TestIDMappingSetSmallKeys(t *testing.T) {
	l := NewSlotLayout()
	l.Intern("x")
	l.Intern("y")
	l.Intern("z")
	addRows(t, NewIDMappingSet(l, 1000), l) // 10 bits × 3 slots ≤ 64
}

func TestIDMappingSetBigKeys(t *testing.T) {
	l := NewSlotLayout()
	l.Intern("x")
	l.Intern("y")
	l.Intern("z")
	// maxID 0 disables every bound value on the fast path; all rows
	// with bound slots take byte-string keys.
	addRows(t, NewIDMappingSet(l, 0), l)
}

func TestIDMappingSetDecode(t *testing.T) {
	g := NewGraph()
	g.AddTriple("a", "p", "b")
	l := NewSlotLayout()
	l.Intern("x")
	l.Intern("y")
	s := NewIDMappingSet(l, g.Dict().NumIRIs())
	row, _ := l.EncodeMapping(g.Dict(), Mapping{"x": "a", "y": "b"})
	s.Add(row)
	row2, _ := l.EncodeMapping(g.Dict(), Mapping{"x": "b"})
	s.Add(row2)
	dec := s.Decode(g.Dict())
	if dec.Len() != 2 {
		t.Fatalf("decoded %d mappings", dec.Len())
	}
	if !dec.Contains(Mapping{"x": "a", "y": "b"}) || !dec.Contains(Mapping{"x": "b"}) {
		t.Fatalf("decode lost mappings: %v", dec.Slice())
	}
}

func TestIDMappingSetSortedRows(t *testing.T) {
	l := NewSlotLayout()
	l.Intern("x")
	s := NewIDMappingSet(l, 100)
	s.Add(Row{7})
	s.Add(Row{Unbound})
	s.Add(Row{3})
	rows := s.SortedRows()
	if rows[0][0] != 3 || rows[1][0] != 7 || rows[2][0] != Unbound {
		t.Fatalf("sorted order: %v", rows)
	}
}
