// Package rdf implements the data model of the paper's Section 2:
// IRIs, SPARQL variables, RDF triples and triple patterns, ground RDF
// graphs with positional indexes, and partial mappings from variables
// to IRIs together with the compatibility relation.
//
// The package is deliberately self-contained: every other package in
// this module is built on top of these types.
package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind discriminates the two kinds of terms that may occur in a
// SPARQL triple pattern: IRIs (constants) and variables.
type TermKind uint8

const (
	// KindIRI marks a constant term drawn from the countable set I of IRIs.
	KindIRI TermKind = iota
	// KindVar marks a variable term drawn from the countable set V,
	// disjoint from I.
	KindVar
)

// Term is either an IRI or a variable. The zero value is the empty IRI.
//
// Terms are small comparable values; they are used directly as map keys
// throughout the module.
type Term struct {
	Kind  TermKind
	Value string
}

// IRI returns a constant term with the given identifier.
func IRI(v string) Term { return Term{Kind: KindIRI, Value: v} }

// Var returns a variable term. The canonical representation does not
// include the leading "?" of the paper's concrete syntax; V("x") is the
// variable the paper writes as ?x. A leading "?" is stripped if present
// so that Var("?x") and Var("x") denote the same variable.
func Var(v string) Term {
	v = strings.TrimPrefix(v, "?")
	return Term{Kind: KindVar, Value: v}
}

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Kind == KindVar }

// IsIRI reports whether t is an IRI constant.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// String renders the term in the paper's concrete syntax: variables are
// prefixed with "?", IRIs are printed bare.
func (t Term) String() string {
	if t.Kind == KindVar {
		return "?" + t.Value
	}
	return t.Value
}

// Less imposes a total order on terms (IRIs before variables, then by
// name). It is used to produce deterministic output.
func (t Term) Less(u Term) bool {
	if t.Kind != u.Kind {
		return t.Kind < u.Kind
	}
	return t.Value < u.Value
}

// Triple is an RDF triple or a SPARQL triple pattern, depending on
// whether any position holds a variable. The paper's tuple
// (s, p, o) ∈ (I ∪ V)³.
type Triple struct {
	S, P, O Term
}

// T is a convenience constructor for a triple pattern.
func T(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// Ground reports whether the triple contains no variables, i.e. whether
// it is an RDF triple in the paper's sense.
func (t Triple) Ground() bool {
	return !t.S.IsVar() && !t.P.IsVar() && !t.O.IsVar()
}

// Vars returns the set of variables occurring in the triple, in
// positional order without duplicates (the paper's vars(t)).
func (t Triple) Vars() []Term {
	out := make([]Term, 0, 3)
	seen := map[Term]bool{}
	for _, x := range [3]Term{t.S, t.P, t.O} {
		if x.IsVar() && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Terms returns the three positions of the triple as a fixed-size array.
func (t Triple) Terms() [3]Term { return [3]Term{t.S, t.P, t.O} }

// WithTerms builds a triple from a positional array.
func WithTerms(a [3]Term) Triple { return Triple{S: a[0], P: a[1], O: a[2]} }

// String renders the triple in the paper's notation "(s, p, o)".
func (t Triple) String() string {
	return fmt.Sprintf("(%s, %s, %s)", t.S, t.P, t.O)
}

// Less imposes a deterministic total order on triples.
func (t Triple) Less(u Triple) bool {
	if t.S != u.S {
		return t.S.Less(u.S)
	}
	if t.P != u.P {
		return t.P.Less(u.P)
	}
	return t.O.Less(u.O)
}

// SortTriples sorts a slice of triples in place under Triple.Less.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
}

// VarsOf returns the sorted set of variables occurring in a set of
// triples (the paper's vars(S) for a t-graph S).
func VarsOf(ts []Triple) []Term {
	seen := map[Term]bool{}
	var out []Term
	for _, t := range ts {
		for _, v := range t.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
