package rdf

// Snapshot loading: the adversarial half of the snapshot subsystem.
// parseImage reconstructs a sealed *Graph over one contiguous byte
// buffer — read into the heap or mmapped, the same code path — and is
// written on the assumption that the buffer is hostile: every field is
// bounds-checked, every section checksummed, and every structural
// invariant the query engine relies on for memory safety is verified
// before any unsafe slice cast reaches the engine. Corruption of any
// kind (truncation, bit flips, version skew, lying offsets) must
// surface as a descriptive error, never a panic, an out-of-bounds
// access, or an infinite probe loop.
//
// What is verified at load time, and why:
//
//   - header magic, version, endianness, header CRC, declared file
//     size — rejects foreign files, version skew, and truncation;
//   - section-table CRC, then per-section payload CRC — rejects any
//     random corruption of the image (this is the workhorse check);
//   - section offsets: in-bounds, 8-aligned, lengths exact for their
//     declared element counts — rejects lying offsets before any cast;
//   - CSR offset arrays: monotone, starting at 0, ending at the arena
//     length — every range1/range2 probe stays in bounds;
//   - every triple in every arena: all three TermIDs < nIRIs — decode
//     and occurrence lookups stay in bounds;
//   - arena grouping and key-column consistency (including within-
//     group sortedness of the secondary keys) — galloping search
//     operates on what it assumes;
//   - membership table: exact expected size, entries in-range or
//     absent, populated count equal to the triple count — the linear
//     probe terminates and indexes in bounds;
//   - sharded only: sequence columns aligned with their arenas
//     (all[seq[i]] == arena[i]), per-shard subsets stably partitioned
//     and routed to the right shard, shard sizes summing to the total
//     — the k-way merge reconstructs exactly the global order;
//   - dictionary: monotone string offsets, no duplicate IRIs.
//
// Deliberately left to VerifyDeep (wdsnap verify -deep): multiset
// equality of every arena against the triple slice and byte-exact
// equality against a from-scratch rebuild. Those are parse-priced
// checks; the load-time set above is what memory safety needs.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"slices"
	"sync"
	"time"
	"unsafe"
)

// SnapshotMode selects how LoadSnapshot brings the image into memory.
type SnapshotMode int

const (
	// SnapshotHeap reads the whole file into the heap. Private, no
	// file dependency after load, works everywhere.
	SnapshotHeap SnapshotMode = iota + 1
	// SnapshotMmap maps the file read-only. Load cost is independent
	// of graph size (pages fault in on demand, shared across
	// processes); the file must outlive the Snapshot, and Close
	// unmaps it.
	SnapshotMmap
)

func (m SnapshotMode) String() string {
	switch m {
	case SnapshotHeap:
		return "heap"
	case SnapshotMmap:
		return "mmap"
	}
	return fmt.Sprintf("SnapshotMode(%d)", int(m))
}

// ParseSnapshotMode parses the CLI spelling of a mode.
func ParseSnapshotMode(s string) (SnapshotMode, error) {
	switch s {
	case "heap":
		return SnapshotHeap, nil
	case "mmap":
		return SnapshotMmap, nil
	}
	return 0, fmt.Errorf("rdf: unknown snapshot mode %q (want heap or mmap)", s)
}

// SnapshotInfo describes a loaded (or inspected) snapshot.
type SnapshotInfo struct {
	Path     string
	Version  int
	Kind     string // "frozen" or "sharded"
	Shards   int
	Triples  int
	IRIs     int
	Checksum uint32 // the header's image CRC: the snapshot's identity
	FileSize int64
	Mode     SnapshotMode  // zero when inspected rather than loaded
	LoadTime time.Duration // wall time of LoadSnapshot
}

// Snapshot is a loaded snapshot: a sealed read-only graph plus the
// resources backing it. The graph's arenas (and, zero-copy, its
// dictionary strings) alias the snapshot's buffer, so the Snapshot
// must stay open as long as the graph is in use; Close unmaps an
// mmapped buffer and is idempotent.
type Snapshot struct {
	g    *Graph
	info SnapshotInfo

	mapping   []byte // non-nil iff mmapped
	closeOnce sync.Once
	closeErr  error
}

// Graph returns the loaded graph. It is sealed (frozen or sharded)
// and safe for concurrent readers; callers must treat it as read-only
// and must not use it after Close.
func (s *Snapshot) Graph() *Graph { return s.g }

// Info returns the snapshot's metadata.
func (s *Snapshot) Info() SnapshotInfo { return s.info }

// Close releases the snapshot's backing resources (the mapping, when
// mmapped; a no-op for heap snapshots). The graph must not be used
// afterwards. Close is idempotent and safe for concurrent use.
func (s *Snapshot) Close() error {
	s.closeOnce.Do(func() {
		if s.mapping != nil {
			s.closeErr = munmapFile(s.mapping)
			s.mapping = nil
		}
	})
	return s.closeErr
}

// LoadSnapshot loads the snapshot at path into a sealed graph,
// validating the full checksum and structural battery of parseImage
// before returning. Every failure mode is a descriptive error.
func LoadSnapshot(path string, mode SnapshotMode) (*Snapshot, error) {
	start := time.Now()
	var data, mapping []byte
	switch mode {
	case SnapshotHeap:
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("rdf: snapshot %s: %w", path, err)
		}
		data = b
	case SnapshotMmap:
		b, err := mmapFile(path)
		if err != nil {
			return nil, fmt.Errorf("rdf: snapshot %s: %w", path, err)
		}
		data, mapping = b, b
	default:
		return nil, fmt.Errorf("rdf: snapshot %s: invalid mode %v", path, mode)
	}
	g, h, err := parseImage(data)
	if err != nil {
		if mapping != nil {
			_ = munmapFile(mapping)
		}
		return nil, fmt.Errorf("rdf: snapshot %s: %w", path, err)
	}
	if mapping != nil {
		// The occurrence table is the one slice the mutation path
		// (countID, via thaw-on-Add) updates in place rather than
		// reallocating; on a read-only mapping that write would fault.
		// Clone it to the heap — 4 bytes per IRI — so a loaded graph
		// honours the same thaw-on-mutation contract as any other.
		g.occ = slices.Clone(g.occ)
	}
	return &Snapshot{
		g: g,
		info: SnapshotInfo{
			Path:     path,
			Version:  int(h.version),
			Kind:     kindName(h.kind),
			Shards:   int(h.shards),
			Triples:  int(h.nTriples),
			IRIs:     int(h.nIRIs),
			Checksum: h.imageCRC,
			FileSize: int64(h.fileSize),
			Mode:     mode,
			LoadTime: time.Since(start),
		},
		mapping: mapping,
	}, nil
}

func kindName(k uint8) string {
	switch k {
	case snapKindFrozen:
		return "frozen"
	case snapKindSharded:
		return "sharded"
	}
	return fmt.Sprintf("kind-%d", k)
}

const maxInt = int(^uint(0) >> 1)

// decodeHeader validates and decodes the fixed header. Check order is
// a compatibility rule (DESIGN.md §6): magic first, then version —
// so a future version is reported as skew, not as a checksum failure
// of a layout it does not have — then the v1 header CRC, then the
// remaining v1 fields.
func decodeHeader(data []byte) (snapHeader, error) {
	var h snapHeader
	if len(data) < snapHeaderLen {
		return h, fmt.Errorf("file too small (%d bytes) to hold a snapshot header", len(data))
	}
	if string(data[0:8]) != snapMagic {
		return h, fmt.Errorf("bad magic %q: not a snapshot file", data[0:8])
	}
	h.version = binary.LittleEndian.Uint16(data[8:10])
	if h.version != snapVersion {
		return h, fmt.Errorf("unsupported snapshot version %d (this build reads version %d)", h.version, snapVersion)
	}
	wantCRC := binary.LittleEndian.Uint32(data[60:64])
	if got := crc32.Checksum(data[0:60], snapCRC); got != wantCRC {
		return h, fmt.Errorf("header checksum mismatch (got %08x, header says %08x): corrupt header", got, wantCRC)
	}
	h.endian = data[10]
	if h.endian != nativeEndianMark() {
		return h, fmt.Errorf("snapshot written on a %s host cannot be loaded on this %s host",
			endianName(h.endian), endianName(nativeEndianMark()))
	}
	h.kind = data[11]
	h.shards = binary.LittleEndian.Uint32(data[12:16])
	switch h.kind {
	case snapKindFrozen:
		if h.shards != 1 {
			return h, fmt.Errorf("frozen snapshot declares %d shards (want 1)", h.shards)
		}
	case snapKindSharded:
		if h.shards < 1 || h.shards > uint32(^uint16(0))+1 {
			return h, fmt.Errorf("sharded snapshot declares %d shards (want 1..65536)", h.shards)
		}
	default:
		return h, fmt.Errorf("unknown graph kind %d (want %d=frozen or %d=sharded)", h.kind, snapKindFrozen, snapKindSharded)
	}
	h.nTriples = binary.LittleEndian.Uint64(data[16:24])
	h.nIRIs = binary.LittleEndian.Uint64(data[24:32])
	h.nSections = binary.LittleEndian.Uint32(data[32:36])
	h.imageCRC = binary.LittleEndian.Uint32(data[36:40])
	h.fileSize = binary.LittleEndian.Uint64(data[40:48])
	if h.nIRIs > uint64(VarIDBase) || h.nIRIs > uint64(maxInt) {
		return h, fmt.Errorf("implausible IRI count %d (dictionary bound is %d)", h.nIRIs, VarIDBase)
	}
	if h.nTriples >= uint64(frozenAbsent) || h.nTriples > uint64(maxInt) {
		return h, fmt.Errorf("implausible triple count %d (format bound is %d)", h.nTriples, frozenAbsent)
	}
	return h, nil
}

func endianName(e uint8) string {
	switch e {
	case snapLittleEndian:
		return "little-endian"
	case snapBigEndian:
		return "big-endian"
	}
	return fmt.Sprintf("unknown-endianness(%d)", e)
}

// secKey identifies a section: kind plus shard index (0 for globals).
type secKey struct{ kind, shard uint16 }

func (k secKey) String() string {
	return fmt.Sprintf("%s/shard%d", secName(k.kind), k.shard)
}

// expectedKeys returns the exact section set a well-formed snapshot of
// this kind and shard count contains. The table must match it as a
// set: no duplicates, no unknowns, nothing missing — a snapshot is a
// closed-world artifact, not an extensible container.
func expectedKeys(kind uint8, shards uint32) []secKey {
	keys := []secKey{
		{secDictOffs, 0}, {secDictBlob, 0}, {secTriples, 0}, {secOcc, 0},
	}
	viewKinds := []uint16{
		secOffS, secOffP, secOffO,
		secArenaS, secArenaP, secArenaO,
		secArenaSP, secArenaPS, secArenaPO, secArenaOP, secArenaSO, secArenaOS,
		secKeySP, secKeyPS, secKeyPO, secKeyOP, secKeySO, secKeyOS,
		secMemb,
	}
	if kind == snapKindFrozen {
		for _, k := range viewKinds {
			keys = append(keys, secKey{k, 0})
		}
		return keys
	}
	keys = append(keys, secKey{secCntP, 0}, secKey{secCntO, 0})
	perShard := append(slices.Clone(viewKinds),
		secShardAll, secSeqAll, secSeqP, secSeqO, secSeqPO, secSeqOP)
	for s := uint32(0); s < shards; s++ {
		for _, k := range perShard {
			keys = append(keys, secKey{k, uint16(s)})
		}
	}
	return keys
}

// parseTable validates the section table against the expected set and
// the file bounds and returns the per-section payload slices, each
// already CRC-verified.
func parseTable(data []byte, h snapHeader) (map[secKey][]byte, error) {
	expected := expectedKeys(h.kind, h.shards)
	if h.nSections != uint32(len(expected)) {
		return nil, fmt.Errorf("section count %d does not match the %d sections of a %s snapshot with %d shards",
			h.nSections, len(expected), kindName(h.kind), h.shards)
	}
	tableEnd := int64(snapHeaderLen) + int64(h.nSections)*snapEntryLen
	if tableEnd > int64(len(data)) {
		return nil, fmt.Errorf("section table (%d entries) extends past end of file", h.nSections)
	}
	table := data[snapHeaderLen:tableEnd]
	if got := crc32.Checksum(table, snapCRC); got != h.imageCRC {
		return nil, fmt.Errorf("section table checksum mismatch (got %08x, header says %08x): corrupt table", got, h.imageCRC)
	}
	want := make(map[secKey]bool, len(expected))
	for _, k := range expected {
		want[k] = true
	}
	secs := make(map[secKey][]byte, len(expected))
	for i := 0; i < int(h.nSections); i++ {
		e := table[i*snapEntryLen:]
		k := secKey{binary.LittleEndian.Uint16(e[0:2]), binary.LittleEndian.Uint16(e[2:4])}
		crc := binary.LittleEndian.Uint32(e[4:8])
		off := binary.LittleEndian.Uint64(e[8:16])
		length := binary.LittleEndian.Uint64(e[16:24])
		if !want[k] {
			return nil, fmt.Errorf("unexpected section %v in the table", k)
		}
		if _, dup := secs[k]; dup {
			return nil, fmt.Errorf("duplicate section %v in the table", k)
		}
		if off%8 != 0 {
			return nil, fmt.Errorf("section %v: offset %d is not 8-aligned", k, off)
		}
		if off < uint64(tableEnd) || off > h.fileSize || length > h.fileSize-off {
			return nil, fmt.Errorf("section %v: byte range [%d, %d+%d) lies outside the file (%d bytes)",
				k, off, off, length, h.fileSize)
		}
		b := data[off : off+length]
		if got := crc32.Checksum(b, snapCRC); got != crc {
			return nil, fmt.Errorf("section %v: payload checksum mismatch (got %08x, table says %08x): corrupt section", k, got, crc)
		}
		secs[k] = b
	}
	return secs, nil
}

// secAs extracts section k as a []T, requiring exactly wantLen
// elements (wantLen < 0 accepts any whole number of elements). The
// byte offset is 8-aligned and the buffer base is 8-aligned, so the
// cast itself is safe once the length divides.
func secAs[T snapWord](secs map[secKey][]byte, k secKey, wantLen int) ([]T, error) {
	b := secs[k]
	var z T
	sz := int(unsafe.Sizeof(z))
	if len(b)%sz != 0 {
		return nil, fmt.Errorf("section %v: %d bytes is not a whole number of %d-byte elements", k, len(b), sz)
	}
	n := len(b) / sz
	if wantLen >= 0 && n != wantLen {
		return nil, fmt.Errorf("section %v: %d elements, want %d", k, n, wantLen)
	}
	return castSlice[T](b), nil
}

// checkOffsets verifies a CSR offset array: starts at 0, monotone
// nondecreasing, ends at total. Every range probe in frozen.go indexes
// arenas through these; this check is what keeps those probes in
// bounds on hostile input.
func checkOffsets(k secKey, off []uint32, total uint32) error {
	if off[0] != 0 {
		return fmt.Errorf("section %v: offsets start at %d, want 0", k, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("section %v: offsets decrease at index %d (%d < %d)", k, i, off[i], off[i-1])
		}
	}
	if last := off[len(off)-1]; last != total {
		return fmt.Errorf("section %v: offsets end at %d, want the arena length %d", k, last, total)
	}
	return nil
}

// checkTriples verifies every TermID of every triple is an in-range
// IRI ID — the bound that keeps dictionary decode, occurrence lookup
// and offset indexing in bounds.
func checkTriples(k secKey, ts []IDTriple, nIRIs int) error {
	bound := TermID(nIRIs)
	for i, t := range ts {
		if t[0] >= bound || t[1] >= bound || t[2] >= bound {
			return fmt.Errorf("section %v: triple %d holds term ID outside the dictionary (IDs %d/%d/%d, bound %d)",
				k, i, t[0], t[1], t[2], nIRIs)
		}
	}
	return nil
}

// checkGrouped verifies the CSR grouping invariant: within the group
// that off assigns to key id, every triple holds id at position pos.
func checkGrouped(k secKey, arena []IDTriple, off []uint32, pos int) error {
	for id := 0; id < len(off)-1; id++ {
		for i := off[id]; i < off[id+1]; i++ {
			if arena[i][pos] != TermID(id) {
				return fmt.Errorf("section %v: triple at arena index %d is in the group of ID %d but holds ID %d at position %d",
					k, i, id, arena[i][pos], pos)
			}
		}
	}
	return nil
}

// checkKeys verifies a secondary key column: each entry mirrors the
// arena's secondary position, and keys are sorted within each group —
// the precondition of the galloping range search.
func checkKeys(k secKey, keys []TermID, arena []IDTriple, off []uint32, pos int) error {
	for i := range keys {
		if keys[i] != arena[i][pos] {
			return fmt.Errorf("section %v: key column diverges from its arena at index %d", k, i)
		}
	}
	for id := 0; id < len(off)-1; id++ {
		for i := off[id] + 1; i < off[id+1]; i++ {
			if keys[i] < keys[i-1] {
				return fmt.Errorf("section %v: keys are unsorted inside the group of ID %d (index %d)", k, id, i)
			}
		}
	}
	return nil
}

// membSize is the deterministic membership-table size buildMembership
// chooses for n triples. The loader insists on exactly this size: a
// table of any other size is structurally foreign, and an over-full
// table would turn the linear probe into an infinite loop.
func membSize(n int) int {
	size := 2
	for size < 2*n {
		size <<= 1
	}
	return size
}

// checkMembership verifies the open-addressing table: exact expected
// size, every slot absent or a valid triple index, and exactly n
// populated slots — with size ≥ 2n that guarantees absent slots
// exist, so every probe terminates.
func checkMembership(k secKey, memb []uint32, n int) error {
	populated := 0
	for i, idx := range memb {
		if idx == frozenAbsent {
			continue
		}
		if int(idx) >= n {
			return fmt.Errorf("section %v: slot %d holds triple index %d, beyond the %d shard triples", k, i, idx, n)
		}
		populated++
	}
	if populated != n {
		return fmt.Errorf("section %v: %d populated slots, want %d: table does not cover the shard", k, populated, n)
	}
	return nil
}

// loadView reconstructs and validates one frozen CSR view whose
// triples are shardAll (the global slice for a frozen snapshot, the
// shard's subset for a sharded one).
func loadView(secs map[secKey][]byte, shard uint16, nIRIs int, shardAll []IDTriple) (*frozenView, error) {
	n := len(shardAll)
	v := &frozenView{nIRIs: nIRIs, all: shardAll}

	offSpecs := []struct {
		kind uint16
		dst  *[]uint32
	}{{secOffS, &v.offS}, {secOffP, &v.offP}, {secOffO, &v.offO}}
	for _, sp := range offSpecs {
		k := secKey{sp.kind, shard}
		off, err := secAs[uint32](secs, k, nIRIs+1)
		if err != nil {
			return nil, err
		}
		if err := checkOffsets(k, off, uint32(n)); err != nil {
			return nil, err
		}
		*sp.dst = off
	}

	arenaSpecs := []struct {
		kind uint16
		dst  *[]IDTriple
		off  []uint32
		pos  int
	}{
		{secArenaS, &v.arenaS, v.offS, 0}, {secArenaP, &v.arenaP, v.offP, 1}, {secArenaO, &v.arenaO, v.offO, 2},
		{secArenaSP, &v.arenaSP, v.offS, 0}, {secArenaPS, &v.arenaPS, v.offP, 1},
		{secArenaPO, &v.arenaPO, v.offP, 1}, {secArenaOP, &v.arenaOP, v.offO, 2},
		{secArenaSO, &v.arenaSO, v.offS, 0}, {secArenaOS, &v.arenaOS, v.offO, 2},
	}
	for _, sp := range arenaSpecs {
		k := secKey{sp.kind, shard}
		arena, err := secAs[IDTriple](secs, k, n)
		if err != nil {
			return nil, err
		}
		if err := checkTriples(k, arena, nIRIs); err != nil {
			return nil, err
		}
		if err := checkGrouped(k, arena, sp.off, sp.pos); err != nil {
			return nil, err
		}
		*sp.dst = arena
	}

	keySpecs := []struct {
		kind  uint16
		dst   *[]TermID
		arena []IDTriple
		off   []uint32
		pos   int
	}{
		{secKeySP, &v.keySP, v.arenaSP, v.offS, 1}, {secKeyPS, &v.keyPS, v.arenaPS, v.offP, 0},
		{secKeyPO, &v.keyPO, v.arenaPO, v.offP, 2}, {secKeyOP, &v.keyOP, v.arenaOP, v.offO, 1},
		{secKeySO, &v.keySO, v.arenaSO, v.offS, 2}, {secKeyOS, &v.keyOS, v.arenaOS, v.offO, 0},
	}
	for _, sp := range keySpecs {
		k := secKey{sp.kind, shard}
		keys, err := secAs[TermID](secs, k, n)
		if err != nil {
			return nil, err
		}
		if err := checkKeys(k, keys, sp.arena, sp.off, sp.pos); err != nil {
			return nil, err
		}
		*sp.dst = keys
	}

	k := secKey{secMemb, shard}
	memb, err := secAs[uint32](secs, k, membSize(n))
	if err != nil {
		return nil, err
	}
	if err := checkMembership(k, memb, n); err != nil {
		return nil, err
	}
	v.memb = memb
	return v, nil
}

// loadDict reconstructs the dictionary over the blob zero-copy: each
// IRI string aliases its bytes in the buffer, and only the lookup map
// is heap-built (it has no flat representation).
func loadDict(secs map[secKey][]byte, nIRIs int) (*Dict, error) {
	ko, kb := secKey{secDictOffs, 0}, secKey{secDictBlob, 0}
	offs, err := secAs[uint64](secs, ko, nIRIs+1)
	if err != nil {
		return nil, err
	}
	blob := secs[kb]
	if offs[0] != 0 {
		return nil, fmt.Errorf("section %v: offsets start at %d, want 0", ko, offs[0])
	}
	for i := 1; i <= nIRIs; i++ {
		if offs[i] < offs[i-1] {
			return nil, fmt.Errorf("section %v: offsets decrease at index %d", ko, i)
		}
	}
	if offs[nIRIs] != uint64(len(blob)) {
		return nil, fmt.Errorf("section %v: offsets end at %d, want the blob length %d", ko, offs[nIRIs], len(blob))
	}
	d := &Dict{
		iriID: make(map[string]TermID, nIRIs),
		iris:  make([]string, nIRIs),
		varID: map[string]TermID{},
	}
	for i := 0; i < nIRIs; i++ {
		var s string
		if l := int(offs[i+1] - offs[i]); l > 0 {
			s = unsafe.String(&blob[offs[i]], l)
		}
		if prev, dup := d.iriID[s]; dup {
			return nil, fmt.Errorf("section %v: duplicate IRI %q (IDs %d and %d)", kb, s, prev, i)
		}
		d.iriID[s] = TermID(i)
		d.iris[i] = s
	}
	return d, nil
}

// parseImage validates and reconstructs a sealed graph from one
// contiguous snapshot image. See the file comment for the validation
// battery; data is assumed hostile throughout.
func parseImage(data []byte) (*Graph, snapHeader, error) {
	h, err := decodeHeader(data)
	if err != nil {
		return nil, h, err
	}
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		// Page mappings and Go heap buffers are both ≥ 8-aligned;
		// refusing here keeps the unsafe casts honest if a caller ever
		// hands in a sliced sub-buffer.
		return nil, h, fmt.Errorf("image buffer is not 8-byte aligned")
	}
	if h.fileSize != uint64(len(data)) {
		return nil, h, fmt.Errorf("file is %d bytes but the header declares %d: truncated or padded image", len(data), h.fileSize)
	}
	secs, err := parseTable(data, h)
	if err != nil {
		return nil, h, err
	}
	nIRIs, nTriples := int(h.nIRIs), int(h.nTriples)

	dict, err := loadDict(secs, nIRIs)
	if err != nil {
		return nil, h, err
	}
	kAll := secKey{secTriples, 0}
	all, err := secAs[IDTriple](secs, kAll, nTriples)
	if err != nil {
		return nil, h, err
	}
	if err := checkTriples(kAll, all, nIRIs); err != nil {
		return nil, h, err
	}
	kOcc := secKey{secOcc, 0}
	occ, err := secAs[int32](secs, kOcc, nIRIs)
	if err != nil {
		return nil, h, err
	}
	domSize := 0
	for _, c := range occ {
		if c > 0 {
			domSize++
		}
	}
	g := &Graph{dict: dict, all: all, occ: occ, domSize: domSize}

	if h.kind == snapKindFrozen {
		v, err := loadView(secs, 0, nIRIs, all)
		if err != nil {
			return nil, h, err
		}
		g.frz = v
		return g, h, nil
	}

	shards := int(h.shards)
	sg := &ShardedGraph{n: shards, nIRIs: nIRIs, all: all, shards: make([]graphShard, shards)}
	for _, sp := range []struct {
		kind uint16
		dst  *[]uint32
	}{{secCntP, &sg.cntP}, {secCntO, &sg.cntO}} {
		k := secKey{sp.kind, 0}
		cnt, err := secAs[uint32](secs, k, nIRIs+1)
		if err != nil {
			return nil, h, err
		}
		if err := checkOffsets(k, cnt, uint32(nTriples)); err != nil {
			return nil, h, err
		}
		*sp.dst = cnt
	}
	covered := 0
	for s := 0; s < shards; s++ {
		kSub := secKey{secShardAll, uint16(s)}
		shardAll, err := secAs[IDTriple](secs, kSub, -1)
		if err != nil {
			return nil, h, err
		}
		kSeq := secKey{secSeqAll, uint16(s)}
		seqAll, err := secAs[uint32](secs, kSeq, len(shardAll))
		if err != nil {
			return nil, h, err
		}
		for i, q := range seqAll {
			if int(q) >= nTriples {
				return nil, h, fmt.Errorf("section %v: sequence %d at index %d beyond the %d triples", kSeq, q, i, nTriples)
			}
			if i > 0 && q <= seqAll[i-1] {
				return nil, h, fmt.Errorf("section %v: sequence numbers not strictly increasing at index %d", kSeq, i)
			}
			if all[q] != shardAll[i] {
				return nil, h, fmt.Errorf("section %v: triple %d does not match global triple %d: unstable partition", kSub, i, q)
			}
			if shardOfID(shardAll[i][0], shards) != s {
				return nil, h, fmt.Errorf("section %v: triple %d routed to shard %d by its subject, found in shard %d",
					kSub, i, shardOfID(shardAll[i][0], shards), s)
			}
		}
		covered += len(shardAll)
		v, err := loadView(secs, uint16(s), nIRIs, shardAll)
		if err != nil {
			return nil, h, err
		}
		sh := &sg.shards[s]
		sh.view = v
		sh.seqAll = seqAll
		for _, sp := range []struct {
			kind  uint16
			dst   *[]uint32
			arena []IDTriple
		}{
			{secSeqP, &sh.seqP, v.arenaP}, {secSeqO, &sh.seqO, v.arenaO},
			{secSeqPO, &sh.seqPO, v.arenaPO}, {secSeqOP, &sh.seqOP, v.arenaOP},
		} {
			k := secKey{sp.kind, uint16(s)}
			seq, err := secAs[uint32](secs, k, len(shardAll))
			if err != nil {
				return nil, h, err
			}
			for i, q := range seq {
				if int(q) >= nTriples || all[q] != sp.arena[i] {
					return nil, h, fmt.Errorf("section %v: sequence column diverges from its arena at index %d", k, i)
				}
			}
			*sp.dst = seq
		}
	}
	if covered != nTriples {
		return nil, h, fmt.Errorf("shards cover %d triples, the graph has %d: lost or duplicated triples", covered, nTriples)
	}
	g.shd = sg
	return g, h, nil
}

// SnapshotSectionInfo is one row of a snapshot's section table, as
// reported by InspectSnapshot.
type SnapshotSectionInfo struct {
	Name   string
	Shard  int
	Offset uint64
	Length uint64
	CRC    uint32
}

// SnapshotManifest is the metadata of a snapshot file: the decoded
// header plus the section table.
type SnapshotManifest struct {
	Info     SnapshotInfo
	Sections []SnapshotSectionInfo
}

// InspectSnapshot reads and validates only the header and section
// table of the snapshot at path (magic, version, header CRC, table
// CRC, section bounds) without touching the payload — cheap even for
// a multi-gigabyte image. Use LoadSnapshot (or wdsnap verify) for
// full payload verification.
func InspectSnapshot(path string) (*SnapshotManifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rdf: snapshot %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("rdf: snapshot %s: %w", path, err)
	}
	var hb [snapHeaderLen]byte
	if n, err := f.ReadAt(hb[:], 0); n < snapHeaderLen {
		return nil, fmt.Errorf("rdf: snapshot %s: file too small (%d bytes) to hold a snapshot header: %v", path, n, err)
	}
	h, err := decodeHeader(hb[:])
	if err != nil {
		return nil, fmt.Errorf("rdf: snapshot %s: %w", path, err)
	}
	if h.fileSize != uint64(st.Size()) {
		return nil, fmt.Errorf("rdf: snapshot %s: file is %d bytes but the header declares %d: truncated or padded image", path, st.Size(), h.fileSize)
	}
	tableLen := int64(h.nSections) * snapEntryLen
	if int64(snapHeaderLen)+tableLen > st.Size() {
		return nil, fmt.Errorf("rdf: snapshot %s: section table (%d entries) extends past end of file", path, h.nSections)
	}
	table := make([]byte, tableLen)
	if _, err := f.ReadAt(table, snapHeaderLen); err != nil {
		return nil, fmt.Errorf("rdf: snapshot %s: %w", path, err)
	}
	if got := crc32.Checksum(table, snapCRC); got != h.imageCRC {
		return nil, fmt.Errorf("rdf: snapshot %s: section table checksum mismatch (got %08x, header says %08x)", path, got, h.imageCRC)
	}
	m := &SnapshotManifest{Info: SnapshotInfo{
		Path:     path,
		Version:  int(h.version),
		Kind:     kindName(h.kind),
		Shards:   int(h.shards),
		Triples:  int(h.nTriples),
		IRIs:     int(h.nIRIs),
		Checksum: h.imageCRC,
		FileSize: st.Size(),
	}}
	for i := int64(0); i < int64(h.nSections); i++ {
		e := table[i*snapEntryLen:]
		si := SnapshotSectionInfo{
			Name:   secName(binary.LittleEndian.Uint16(e[0:2])),
			Shard:  int(binary.LittleEndian.Uint16(e[2:4])),
			CRC:    binary.LittleEndian.Uint32(e[4:8]),
			Offset: binary.LittleEndian.Uint64(e[8:16]),
			Length: binary.LittleEndian.Uint64(e[16:24]),
		}
		if si.Offset > h.fileSize || si.Length > h.fileSize-si.Offset {
			return nil, fmt.Errorf("rdf: snapshot %s: section %s/shard%d: byte range [%d, %d+%d) lies outside the file",
				path, si.Name, si.Shard, si.Offset, si.Offset, si.Length)
		}
		m.Sections = append(m.Sections, si)
	}
	return m, nil
}

// VerifyDeep rebuilds every derived structure of the loaded graph from
// its triple slice — the frozen CSR views, sequence columns, count
// offsets, occurrence table — and compares byte for byte. This is the
// parse-priced semantic check the loader deliberately skips: it proves
// the snapshot's derived sections are exactly what freezing the triples
// would produce, so no probe can return a wrong answer.
func (s *Snapshot) VerifyDeep() error {
	g := s.g
	ni := g.dict.NumIRIs()
	occ := make([]int32, ni)
	for _, t := range g.all {
		for _, id := range t {
			occ[id]++
		}
	}
	if !slices.Equal(occ, g.occ) {
		return fmt.Errorf("rdf: snapshot %s: occurrence table diverges from the triple set", s.info.Path)
	}
	if g.shd != nil {
		want := shardGraph(&Graph{dict: g.dict, all: g.all}, g.shd.n)
		if !slices.Equal(want.cntP, g.shd.cntP) || !slices.Equal(want.cntO, g.shd.cntO) {
			return fmt.Errorf("rdf: snapshot %s: global count offsets diverge from the triple set", s.info.Path)
		}
		for i := range want.shards {
			w, l := &want.shards[i], &g.shd.shards[i]
			if err := compareViews(s.info.Path, fmt.Sprintf("shard %d", i), l.view, w.view); err != nil {
				return err
			}
			if !slices.Equal(w.seqAll, l.seqAll) || !slices.Equal(w.seqP, l.seqP) ||
				!slices.Equal(w.seqO, l.seqO) || !slices.Equal(w.seqPO, l.seqPO) ||
				!slices.Equal(w.seqOP, l.seqOP) {
				return fmt.Errorf("rdf: snapshot %s: shard %d: sequence columns diverge from a rebuild", s.info.Path, i)
			}
		}
		return nil
	}
	return compareViews(s.info.Path, "frozen view", g.frz, freezeTriples(g.all, ni))
}

// compareViews compares every derived slice of two frozen views.
func compareViews(path, what string, got, want *frozenView) error {
	fail := func(which string) error {
		return fmt.Errorf("rdf: snapshot %s: %s: %s diverges from a rebuild", path, what, which)
	}
	switch {
	case !slices.Equal(got.offS, want.offS) || !slices.Equal(got.offP, want.offP) || !slices.Equal(got.offO, want.offO):
		return fail("offset arrays")
	case !slices.Equal(got.arenaS, want.arenaS) || !slices.Equal(got.arenaP, want.arenaP) || !slices.Equal(got.arenaO, want.arenaO):
		return fail("primary arenas")
	case !slices.Equal(got.arenaSP, want.arenaSP) || !slices.Equal(got.arenaPS, want.arenaPS) ||
		!slices.Equal(got.arenaPO, want.arenaPO) || !slices.Equal(got.arenaOP, want.arenaOP) ||
		!slices.Equal(got.arenaSO, want.arenaSO) || !slices.Equal(got.arenaOS, want.arenaOS):
		return fail("sorted arenas")
	case !slices.Equal(got.keySP, want.keySP) || !slices.Equal(got.keyPS, want.keyPS) ||
		!slices.Equal(got.keyPO, want.keyPO) || !slices.Equal(got.keyOP, want.keyOP) ||
		!slices.Equal(got.keySO, want.keySO) || !slices.Equal(got.keyOS, want.keyOS):
		return fail("key columns")
	case !slices.Equal(got.memb, want.memb):
		return fail("membership table")
	}
	return nil
}
