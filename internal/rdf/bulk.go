package rdf

// Bulk loading: cold-start construction of a frozen graph in one
// interning pass plus one compaction. The incremental path (NewGraph +
// Add) pays for six map indexes that grow insert by insert and are
// thrown away by the first Freeze; a GraphBuilder never builds them —
// it interns, deduplicates and accumulates the insertion-order slice,
// then a single counting pass sizes the occurrence table and one
// freezeGraph call lays out the CSR arenas at their exact final size.

// GraphBuilder accumulates ground triples for a bulk load. Add order
// is the insertion order of the resulting graph, exactly as if the
// triples had been Added to a fresh Graph. The zero value is not
// usable; call NewGraphBuilder.
type GraphBuilder struct {
	g *Graph
}

// NewGraphBuilder returns a builder pre-sized for about sizeHint
// triples (a hint, not a cap; zero is fine).
func NewGraphBuilder(sizeHint int) *GraphBuilder {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &GraphBuilder{g: &Graph{
		dict: NewDict(),
		set:  make(map[IDTriple]struct{}, sizeHint),
		all:  make([]IDTriple, 0, sizeHint),
	}}
}

// Add inserts a ground triple; it panics on variables, like Graph.Add.
func (b *GraphBuilder) Add(t Triple) {
	if !t.Ground() {
		panic("rdf: cannot add non-ground triple " + t.String() + " to a graph")
	}
	b.AddTriple(t.S.Value, t.P.Value, t.O.Value)
}

// AddTriple inserts the ground triple (s, p, o).
func (b *GraphBuilder) AddTriple(s, p, o string) {
	g := b.g
	t := IDTriple{g.dict.InternIRI(s), g.dict.InternIRI(p), g.dict.InternIRI(o)}
	if _, ok := g.set[t]; ok {
		return
	}
	g.set[t] = struct{}{}
	g.all = append(g.all, t)
}

// Len returns the number of (distinct) triples added so far.
func (b *GraphBuilder) Len() int { return len(b.g.all) }

// Graph compacts the accumulated triples into a frozen graph: one
// counting pass for the occurrence table and dom(G), then the CSR
// freeze. The builder must not be used afterwards. Mutating the
// returned graph thaws it like any frozen graph.
func (b *GraphBuilder) Graph() *Graph {
	g := b.seal()
	g.frz = freezeGraph(g)
	g.set = nil
	return g
}

// Sharded compacts the accumulated triples directly into a sharded
// graph with n shards (n ≥ 1, like Graph.Shard): the same counting
// pass as Graph, then one partition pass and a per-shard CSR freeze —
// neither the map indexes nor an intermediate single-arena frozen view
// is ever built. The builder must not be used afterwards. The result
// is identical to Graph() followed by Shard(n): same triples, same
// dictionary IDs, same insertion order.
func (b *GraphBuilder) Sharded(n int) *Graph {
	if n < 1 {
		panic("rdf: GraphBuilder.Sharded: shard count must be ≥ 1")
	}
	g := b.seal()
	g.shd = shardGraph(g, n)
	g.set = nil
	return g
}

// seal detaches the accumulated graph from the builder and runs the
// counting pass that sizes the occurrence table and dom(G).
func (b *GraphBuilder) seal() *Graph {
	g := b.g
	b.g = nil
	g.occ = make([]int32, g.dict.NumIRIs())
	for _, t := range g.all {
		for _, id := range t {
			if g.occ[id] == 0 {
				g.domSize++
			}
			g.occ[id]++
		}
	}
	return g
}

// GraphFromEncoded seals a graph directly from pre-encoded triples:
// d is the dictionary that interned them and all is the
// insertion-order triple slice, already deduplicated, every position
// an interned IRI ID. Ownership of both passes to the graph. shards
// selects the backend: n ≤ 1 compacts into the single-arena frozen
// view, n > 1 into a sharded CSR with n shards. This is the seam the
// parallel ingest pipeline (internal/ingest) lands on after its
// remap/dedup pass — the result is indistinguishable from feeding the
// same triples through a GraphBuilder.
func GraphFromEncoded(d *Dict, all []IDTriple, shards int) *Graph {
	g := &Graph{dict: d, all: all}
	g.occ = make([]int32, d.NumIRIs())
	for _, t := range all {
		for _, id := range t {
			if g.occ[id] == 0 {
				g.domSize++
			}
			g.occ[id]++
		}
	}
	if shards > 1 {
		g.shd = shardGraph(g, shards)
	} else {
		g.frz = freezeGraph(g)
	}
	return g
}

// GraphFromTriples bulk-loads ground triples into a frozen graph. It
// is equivalent to GraphOf(ts...).Freeze() — same triples, same
// dictionary IDs, same insertion order — but never builds the map
// indexes, so cold load is one pass plus one compaction.
func GraphFromTriples(ts []Triple) *Graph {
	b := NewGraphBuilder(len(ts))
	for _, t := range ts {
		b.Add(t)
	}
	return b.Graph()
}

// GraphFromTriplesSharded bulk-loads ground triples into a sharded
// graph with n shards. It is equivalent to GraphOf(ts...).Shard(n) —
// same triples, same dictionary IDs, same insertion order — but
// compacts straight into the per-shard CSR views without ever building
// the map indexes.
func GraphFromTriplesSharded(ts []Triple, n int) *Graph {
	b := NewGraphBuilder(len(ts))
	for _, t := range ts {
		b.Add(t)
	}
	return b.Sharded(n)
}
