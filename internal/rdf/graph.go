package rdf

import (
	"sort"
)

// Graph is a ground RDF graph: a finite set of RDF triples over IRIs
// (the paper assumes no blank nodes). The graph maintains positional
// indexes so that triple patterns with any subset of positions bound
// can be matched without scanning the whole graph.
//
// The zero value is not usable; call NewGraph.
type Graph struct {
	set map[Triple]struct{}

	// Positional indexes. Keys are IRI values.
	byS  map[string][]Triple
	byP  map[string][]Triple
	byO  map[string][]Triple
	bySP map[[2]string][]Triple
	byPO map[[2]string][]Triple
	bySO map[[2]string][]Triple

	dom map[string]struct{} // set of IRIs appearing anywhere in G
}

// NewGraph returns an empty RDF graph.
func NewGraph() *Graph {
	return &Graph{
		set:  map[Triple]struct{}{},
		byS:  map[string][]Triple{},
		byP:  map[string][]Triple{},
		byO:  map[string][]Triple{},
		bySP: map[[2]string][]Triple{},
		byPO: map[[2]string][]Triple{},
		bySO: map[[2]string][]Triple{},
		dom:  map[string]struct{}{},
	}
}

// GraphOf builds a graph from a list of ground triples. It panics if
// any triple contains a variable; data construction errors are
// programming errors in this module.
func GraphOf(ts ...Triple) *Graph {
	g := NewGraph()
	for _, t := range ts {
		g.Add(t)
	}
	return g
}

// Add inserts a ground triple into the graph. Adding a triple that
// contains a variable panics: RDF graphs are ground by definition
// (Section 2 of the paper).
func (g *Graph) Add(t Triple) {
	if !t.Ground() {
		panic("rdf: cannot add non-ground triple " + t.String() + " to a graph")
	}
	if _, ok := g.set[t]; ok {
		return
	}
	g.set[t] = struct{}{}
	s, p, o := t.S.Value, t.P.Value, t.O.Value
	g.byS[s] = append(g.byS[s], t)
	g.byP[p] = append(g.byP[p], t)
	g.byO[o] = append(g.byO[o], t)
	g.bySP[[2]string{s, p}] = append(g.bySP[[2]string{s, p}], t)
	g.byPO[[2]string{p, o}] = append(g.byPO[[2]string{p, o}], t)
	g.bySO[[2]string{s, o}] = append(g.bySO[[2]string{s, o}], t)
	g.dom[s] = struct{}{}
	g.dom[p] = struct{}{}
	g.dom[o] = struct{}{}
}

// AddTriple is a convenience for Add(T(IRI(s), IRI(p), IRI(o))).
func (g *Graph) AddTriple(s, p, o string) {
	g.Add(T(IRI(s), IRI(p), IRI(o)))
}

// Contains reports whether the ground triple t is in G.
func (g *Graph) Contains(t Triple) bool {
	_, ok := g.set[t]
	return ok
}

// Len returns |G|, the number of triples.
func (g *Graph) Len() int { return len(g.set) }

// Dom returns dom(G), the sorted set of IRIs appearing in G.
func (g *Graph) Dom() []string {
	out := make([]string, 0, len(g.dom))
	for v := range g.dom {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// DomSize returns |dom(G)| without materialising the sorted slice.
func (g *Graph) DomSize() int { return len(g.dom) }

// HasIRI reports whether the IRI value occurs anywhere in G.
func (g *Graph) HasIRI(v string) bool {
	_, ok := g.dom[v]
	return ok
}

// Triples returns all triples in a deterministic order.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, len(g.set))
	for t := range g.set {
		out = append(out, t)
	}
	SortTriples(out)
	return out
}

// Match returns all triples of G matching the pattern p under the
// partial assignment already fixed inside p itself: a position holding
// an IRI must match exactly, a position holding a variable matches
// anything (repeated variables are checked for equality). The result
// order is unspecified.
func (g *Graph) Match(p Triple) []Triple {
	cands := g.candidates(p)
	out := make([]Triple, 0, len(cands))
	for _, t := range cands {
		if matchesPattern(p, t) {
			out = append(out, t)
		}
	}
	return out
}

// MatchCount returns the number of triples matching the pattern.
func (g *Graph) MatchCount(p Triple) int {
	n := 0
	for _, t := range g.candidates(p) {
		if matchesPattern(p, t) {
			n++
		}
	}
	return n
}

// candidates selects the most selective index for the pattern.
func (g *Graph) candidates(p Triple) []Triple {
	sB, pB, oB := p.S.IsIRI(), p.P.IsIRI(), p.O.IsIRI()
	switch {
	case sB && pB && oB:
		if g.Contains(p) {
			return []Triple{p}
		}
		return nil
	case sB && pB:
		return g.bySP[[2]string{p.S.Value, p.P.Value}]
	case pB && oB:
		return g.byPO[[2]string{p.P.Value, p.O.Value}]
	case sB && oB:
		return g.bySO[[2]string{p.S.Value, p.O.Value}]
	case sB:
		return g.byS[p.S.Value]
	case pB:
		return g.byP[p.P.Value]
	case oB:
		return g.byO[p.O.Value]
	default:
		return g.Triples()
	}
}

// matchesPattern reports whether ground triple t matches pattern p,
// honouring repeated variables (e.g. (?x, r, ?x) only matches loops).
func matchesPattern(p, t Triple) bool {
	bind := map[string]string{}
	pa, ta := p.Terms(), t.Terms()
	for i := 0; i < 3; i++ {
		switch {
		case pa[i].IsIRI():
			if pa[i] != ta[i] {
				return false
			}
		default:
			if prev, ok := bind[pa[i].Value]; ok {
				if prev != ta[i].Value {
					return false
				}
			} else {
				bind[pa[i].Value] = ta[i].Value
			}
		}
	}
	return true
}

// MatchMappings returns, for a triple pattern t, the paper's base-case
// evaluation ⟦t⟧G = {µ | dom(µ) = vars(t), µ(t) ∈ G}.
func (g *Graph) MatchMappings(p Triple) []Mapping {
	var out []Mapping
	seen := map[string]bool{}
	for _, t := range g.Match(p) {
		m := NewMapping()
		pa, ta := p.Terms(), t.Terms()
		for i := 0; i < 3; i++ {
			if pa[i].IsVar() {
				m[pa[i].Value] = ta[i].Value
			}
		}
		k := m.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, m)
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	for t := range g.set {
		out.Add(t)
	}
	return out
}

// Merge adds all triples of h into g.
func (g *Graph) Merge(h *Graph) {
	for t := range h.set {
		g.Add(t)
	}
}

// Equal reports whether two graphs contain exactly the same triples.
func (g *Graph) Equal(h *Graph) bool {
	if g.Len() != h.Len() {
		return false
	}
	for t := range g.set {
		if !h.Contains(t) {
			return false
		}
	}
	return true
}
