package rdf

import (
	"sort"
)

// Graph is a ground RDF graph: a finite set of RDF triples over IRIs
// (the paper assumes no blank nodes). Internally the graph is
// dictionary-encoded: every IRI is interned to a dense TermID in a
// private Dict and triples are stored as IDTriples. Two storage
// backends share the read API behind Graph's *ID methods:
//
//   - The construction-time map backend: positional hash indexes with
//     insertion-ordered, append-only posting lists (O(1) insert, so
//     incremental construction is linear).
//   - The frozen CSR backend (see frozen.go): after Freeze, the map
//     indexes are compacted into flat triple arenas with offset
//     arrays indexed by dense TermID, posting-list probes become
//     array accesses or galloping range searches, and membership runs
//     on an open-addressing table. Mutation thaws back to the map
//     backend transparently.
//
// Both backends produce byte-identical results — content and order —
// for every read operation. The string-based API (Add, Match,
// Contains, MatchMappings, ...) is a thin shim over the ID-native
// core; hot callers (the homomorphism solver, the pebble closure) use
// the *ID methods directly.
//
// All read operations are free of interning and internal caching, so a
// Graph is safe for concurrent readers once construction (including
// any Freeze call) is done.
//
// The zero value is not usable; call NewGraph.
type Graph struct {
	dict *Dict
	set  map[IDTriple]struct{} // nil while frozen
	all  []IDTriple            // insertion order; returned directly by TriplesID

	// Positional map indexes with insertion-ordered posting lists;
	// all nil while frozen.
	byS  map[TermID][]IDTriple
	byP  map[TermID][]IDTriple
	byO  map[TermID][]IDTriple
	bySP map[[2]TermID][]IDTriple
	byPO map[[2]TermID][]IDTriple
	bySO map[[2]TermID][]IDTriple

	occ     []int32 // occurrence count per IRI ID across all positions
	domSize int     // |dom(G)| = number of IRI IDs with occ > 0
	frz     *frozenView
	shd     *ShardedGraph
	ovl     *overlay // delta write layer on a sealed base; nil unless sealed
}

// NewGraph returns an empty RDF graph.
func NewGraph() *Graph {
	return &Graph{
		dict: NewDict(),
		set:  map[IDTriple]struct{}{},
		byS:  map[TermID][]IDTriple{},
		byP:  map[TermID][]IDTriple{},
		byO:  map[TermID][]IDTriple{},
		bySP: map[[2]TermID][]IDTriple{},
		byPO: map[[2]TermID][]IDTriple{},
		bySO: map[[2]TermID][]IDTriple{},
	}
}

// GraphOf builds a graph from a list of ground triples. It panics if
// any triple contains a variable; data construction errors are
// programming errors in this module.
func GraphOf(ts ...Triple) *Graph {
	g := NewGraph()
	for _, t := range ts {
		g.Add(t)
	}
	return g
}

// Dict returns the graph's term dictionary. Its IRI table covers
// exactly dom(G) plus any IRIs the caller interns explicitly; interned
// IRIs only join dom(G) when a triple containing them is added.
func (g *Graph) Dict() *Dict { return g.dict }

// Add inserts a ground triple into the graph. Adding a triple that
// contains a variable panics: RDF graphs are ground by definition
// (Section 2 of the paper).
func (g *Graph) Add(t Triple) {
	if !t.Ground() {
		panic("rdf: cannot add non-ground triple " + t.String() + " to a graph")
	}
	g.addID(IDTriple{
		g.dict.InternIRI(t.S.Value),
		g.dict.InternIRI(t.P.Value),
		g.dict.InternIRI(t.O.Value),
	})
}

// AddTriple is a convenience for Add(T(IRI(s), IRI(p), IRI(o))).
func (g *Graph) AddTriple(s, p, o string) {
	g.addID(IDTriple{g.dict.InternIRI(s), g.dict.InternIRI(p), g.dict.InternIRI(o)})
}

// AddID inserts an encoded ground triple whose IDs were interned in
// g.Dict(). It panics on variable IDs or IDs unknown to the
// dictionary.
func (g *Graph) AddID(t IDTriple) {
	for _, id := range t {
		if id.IsVar() || int(id) >= g.dict.NumIRIs() {
			panic("rdf: AddID: ID not interned as an IRI in this graph's dictionary")
		}
	}
	g.addID(t)
}

func (g *Graph) addID(t IDTriple) {
	if g.frz != nil || g.shd != nil {
		g.thaw()
	}
	if _, ok := g.set[t]; ok {
		return
	}
	g.set[t] = struct{}{}
	g.all = append(g.all, t)
	g.indexID(t)
	g.countID(t)
}

// indexID appends the triple to the six positional map indexes; also
// used by thaw to rebuild them in insertion order.
func (g *Graph) indexID(t IDTriple) {
	g.byS[t[0]] = append(g.byS[t[0]], t)
	g.byP[t[1]] = append(g.byP[t[1]], t)
	g.byO[t[2]] = append(g.byO[t[2]], t)
	g.bySP[[2]TermID{t[0], t[1]}] = append(g.bySP[[2]TermID{t[0], t[1]}], t)
	g.byPO[[2]TermID{t[1], t[2]}] = append(g.byPO[[2]TermID{t[1], t[2]}], t)
	g.bySO[[2]TermID{t[0], t[2]}] = append(g.bySO[[2]TermID{t[0], t[2]}], t)
}

// countID maintains the occurrence counts (which double as the dom(G)
// indicator: occ[id] > 0 ⟺ id ∈ dom(G)). The counts slice grows to
// the dictionary size in a single append, not one element at a time.
func (g *Graph) countID(t IDTriple) {
	if n := g.dict.NumIRIs(); n > len(g.occ) {
		g.occ = append(g.occ, make([]int32, n-len(g.occ))...)
	}
	for _, id := range t {
		if g.occ[id] == 0 {
			g.domSize++
		}
		g.occ[id]++
	}
}

// OccurrencesID returns how many triple positions of G hold the IRI
// with the given ID (an IRI in i triples at j positions each counts
// i·j). Solvers use it as a cheap connectivity score for value
// ordering.
func (g *Graph) OccurrencesID(id TermID) int32 {
	if id.IsVar() {
		return 0
	}
	n := g.baseOcc(id)
	if o := g.ovl; o != nil {
		n += o.occDelta[id]
	}
	return n
}

// encodeGround encodes a ground triple without interning; ok is false
// when some IRI does not occur in the dictionary (and hence the triple
// cannot be in G).
func (g *Graph) encodeGround(t Triple) (IDTriple, bool) {
	s, ok := g.dict.LookupIRI(t.S.Value)
	if !ok {
		return IDTriple{}, false
	}
	p, ok := g.dict.LookupIRI(t.P.Value)
	if !ok {
		return IDTriple{}, false
	}
	o, ok := g.dict.LookupIRI(t.O.Value)
	if !ok {
		return IDTriple{}, false
	}
	return IDTriple{s, p, o}, true
}

// EncodePattern encodes a triple pattern without interning: IRI
// positions are resolved through the dictionary and variable positions
// receive positional variable IDs (VarID(0), VarID(1), ... by first
// occurrence; repeated variables share an ID). ok is false when some
// IRI constant does not occur in G's dictionary, in which case the
// pattern matches nothing.
func (g *Graph) EncodePattern(t Triple) (IDTriple, bool) {
	var out IDTriple
	var names [3]string
	n := 0
	for i, term := range t.Terms() {
		if term.IsVar() {
			slot := -1
			for j := 0; j < n; j++ {
				if names[j] == term.Value {
					slot = j
					break
				}
			}
			if slot < 0 {
				names[n] = term.Value
				slot = n
				n++
			}
			out[i] = VarID(slot)
			continue
		}
		id, ok := g.dict.LookupIRI(term.Value)
		if !ok {
			return IDTriple{}, false
		}
		out[i] = id
	}
	return out, true
}

// Contains reports whether the ground triple t is in G.
func (g *Graph) Contains(t Triple) bool {
	if !t.Ground() {
		return false
	}
	id, ok := g.encodeGround(t)
	if !ok {
		return false
	}
	return g.ContainsID(id)
}

// ContainsID reports whether the encoded ground triple is in G.
func (g *Graph) ContainsID(t IDTriple) bool {
	if o := g.ovl; o != nil {
		if _, ok := o.set[t]; ok {
			return true
		}
	}
	if sg := g.shd; sg != nil {
		return sg.contains(t)
	}
	if f := g.frz; f != nil {
		_, ok := f.contains(t)
		return ok
	}
	_, ok := g.set[t]
	return ok
}

// Len returns |G|, the number of triples.
func (g *Graph) Len() int { return len(g.all) + g.OverlayLen() }

// Dom returns dom(G), the sorted set of IRIs appearing in G.
func (g *Graph) Dom() []string {
	out := make([]string, 0, g.DomSize())
	for id, c := range g.occ {
		if c > 0 {
			out = append(out, g.dict.StringOf(TermID(id)))
		}
	}
	if o := g.ovl; o != nil {
		for id := range o.occDelta {
			if g.baseOcc(id) == 0 {
				out = append(out, g.dict.StringOf(id))
			}
		}
	}
	sort.Strings(out)
	return out
}

// DomIDs returns the IDs of dom(G), sorted ascending.
func (g *Graph) DomIDs() []TermID {
	out := make([]TermID, 0, g.DomSize())
	for id, c := range g.occ {
		if c > 0 {
			out = append(out, TermID(id))
		}
	}
	if o := g.ovl; o != nil {
		n := len(out)
		for id := range o.occDelta {
			if g.baseOcc(id) == 0 {
				out = append(out, id)
			}
		}
		if len(out) > n {
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		}
	}
	return out
}

// DomSize returns |dom(G)| without materialising the sorted slice.
func (g *Graph) DomSize() int {
	if o := g.ovl; o != nil {
		return g.domSize + o.domDelta
	}
	return g.domSize
}

// HasIRI reports whether the IRI value occurs anywhere in G.
func (g *Graph) HasIRI(v string) bool {
	id, ok := g.dict.LookupIRI(v)
	if !ok {
		return false
	}
	if int(id) < len(g.occ) && g.occ[id] > 0 {
		return true
	}
	if o := g.ovl; o != nil {
		return o.occDelta[id] > 0
	}
	return false
}

// Triples returns all triples in a deterministic order.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.Len())
	for _, t := range g.all {
		out = append(out, g.dict.DecodeTriple(t))
	}
	if o := g.ovl; o != nil {
		for _, t := range o.ts {
			out = append(out, g.dict.DecodeTriple(t))
		}
	}
	SortTriples(out)
	return out
}

// TriplesID returns all encoded triples in insertion order. Without an
// overlay the slice is the graph's internal storage and callers must
// not modify it; with an overlay it is freshly materialised (base
// followed by overlay — that suffix concatenation is insertion order,
// see overlay.go).
func (g *Graph) TriplesID() []IDTriple {
	if o := g.ovl; o != nil {
		out := make([]IDTriple, 0, len(g.all)+len(o.ts))
		out = append(out, g.all...)
		return append(out, o.ts...)
	}
	return g.all
}

// Match returns all triples of G matching the pattern p under the
// partial assignment already fixed inside p itself: a position holding
// an IRI must match exactly, a position holding a variable matches
// anything (repeated variables are checked for equality). The result
// order is unspecified.
func (g *Graph) Match(p Triple) []Triple {
	ip, ok := g.EncodePattern(p)
	if !ok {
		return nil
	}
	cands, exact := g.LookupRangeID(ip)
	out := make([]Triple, 0, len(cands))
	for _, t := range cands {
		if exact || MatchesPatternID(ip, t) {
			out = append(out, g.dict.DecodeTriple(t))
		}
	}
	return out
}

// MatchID is Match over encoded patterns (see EncodePattern for the
// pattern convention). On a frozen graph the result of a pattern
// without repeated variables aliases immutable internal storage:
// callers must not modify it.
func (g *Graph) MatchID(p IDTriple) []IDTriple {
	cands, exact := g.LookupRangeID(p)
	if exact {
		if g.frz != nil || g.shd != nil {
			// Immutable arena range or freshly merged slice: no copy.
			return cands
		}
		out := make([]IDTriple, len(cands))
		copy(out, cands)
		return out
	}
	out := make([]IDTriple, 0, len(cands))
	for _, t := range cands {
		if MatchesPatternID(p, t) {
			out = append(out, t)
		}
	}
	return out
}

// MatchCount returns the number of triples matching the pattern.
func (g *Graph) MatchCount(p Triple) int {
	ip, ok := g.EncodePattern(p)
	if !ok {
		return 0
	}
	return g.MatchCountID(ip)
}

// MatchCountID returns the number of triples matching the encoded
// pattern. When the pattern has no repeated variables the count is the
// posting-list (or frozen range) length, with no scan: O(1) for at
// most one bound position, O(log) for two on the frozen backend. On
// the sharded backend cross-shard counts are sums of per-shard range
// lengths — no merge is materialised.
func (g *Graph) MatchCountID(p IDTriple) int {
	if sg := g.shd; sg != nil && !hasRepeatedVar(p) {
		n := sg.count(p)
		if o := g.ovl; o != nil {
			n += o.count(p)
		}
		return n
	}
	cands, exact := g.LookupRangeID(p)
	if exact {
		return len(cands)
	}
	n := 0
	for _, t := range cands {
		if MatchesPatternID(p, t) {
			n++
		}
	}
	return n
}

// hasRepeatedVar reports whether the same variable ID occurs in more
// than one position of the encoded pattern.
func hasRepeatedVar(p IDTriple) bool {
	return (p[0].IsVar() && (p[0] == p[1] || p[0] == p[2])) ||
		(p[1].IsVar() && p[1] == p[2])
}

// LookupRangeID is the storage-backend seam used by the solvers: it
// returns the candidate posting list for the encoded pattern together
// with exact, which reports that every triple of the list matches the
// pattern (true exactly when the pattern has no repeated variable, on
// either backend), so callers can skip the per-triple
// MatchesPatternID filter. The slice is internal storage: callers
// must not modify it, and on the map backend it is only valid until
// the next mutation.
func (g *Graph) LookupRangeID(p IDTriple) ([]IDTriple, bool) {
	return g.CandidatesID(p), !hasRepeatedVar(p)
}

// CandidatesID selects the most selective index for the encoded
// pattern and returns its posting list. Every triple matching the
// pattern is in the list; the list may contain non-matches when the
// pattern has repeated variables. All backends return the same
// triples in the same (insertion) order — on the sharded backend a
// cross-shard list is a freshly merged slice (see ShardedGraph),
// everywhere else the slice is internal storage; either way callers
// must not modify it.
func (g *Graph) CandidatesID(p IDTriple) []IDTriple {
	if o := g.ovl; o != nil && len(o.ts) > 0 {
		if !p[0].IsVar() && !p[1].IsVar() && !p[2].IsVar() {
			if g.ContainsID(p) {
				return []IDTriple{p}
			}
			return nil
		}
		base := g.baseCandidates(p)
		ov := o.candidates(p)
		switch {
		case len(ov) == 0:
			return base
		case len(base) == 0:
			return ov
		}
		// Fresh slice, never append onto base: the base list may alias
		// a frozen arena whose spare capacity belongs to the next range.
		// Base-then-overlay is the seq merge — see overlay.go.
		out := make([]IDTriple, 0, len(base)+len(ov))
		out = append(out, base...)
		return append(out, ov...)
	}
	return g.baseCandidates(p)
}

// baseCandidates is CandidatesID against the base storage only.
func (g *Graph) baseCandidates(p IDTriple) []IDTriple {
	if sg := g.shd; sg != nil {
		return sg.candidates(p)
	}
	if f := g.frz; f != nil {
		return f.candidates(p)
	}
	sB, pB, oB := !p[0].IsVar(), !p[1].IsVar(), !p[2].IsVar()
	switch {
	case sB && pB && oB:
		if g.ContainsID(p) {
			return []IDTriple{p}
		}
		return nil
	case sB && pB:
		return g.bySP[[2]TermID{p[0], p[1]}]
	case pB && oB:
		return g.byPO[[2]TermID{p[1], p[2]}]
	case sB && oB:
		return g.bySO[[2]TermID{p[0], p[2]}]
	case sB:
		return g.byS[p[0]]
	case pB:
		return g.byP[p[1]]
	case oB:
		return g.byO[p[2]]
	default:
		return g.all
	}
}

// MatchMappings returns, for a triple pattern t, the paper's base-case
// evaluation ⟦t⟧G = {µ | dom(µ) = vars(t), µ(t) ∈ G}. Deduplication
// runs on encoded value vectors, not string keys.
func (g *Graph) MatchMappings(p Triple) []Mapping {
	var names [3]string // variable name per slot
	var slot [3]int     // position → slot, or -1 for constants
	n := 0
	var ip IDTriple
	for i, term := range p.Terms() {
		if !term.IsVar() {
			slot[i] = -1
			id, ok := g.dict.LookupIRI(term.Value)
			if !ok {
				return nil
			}
			ip[i] = id
			continue
		}
		s := -1
		for j := 0; j < n; j++ {
			if names[j] == term.Value {
				s = j
				break
			}
		}
		if s < 0 {
			names[n] = term.Value
			s = n
			n++
		}
		slot[i] = s
		ip[i] = VarID(s)
	}
	var out []Mapping
	seen := map[[3]TermID]struct{}{}
	cands, exact := g.LookupRangeID(ip)
	for _, t := range cands {
		if !exact && !MatchesPatternID(ip, t) {
			continue
		}
		var key [3]TermID
		for i := 0; i < 3; i++ {
			if slot[i] >= 0 {
				key[slot[i]] = t[i]
			}
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		m := make(Mapping, n)
		for j := 0; j < n; j++ {
			m[names[j]] = g.dict.StringOf(key[j])
		}
		out = append(out, m)
	}
	return out
}

// String renders the graph in the WriteGraph line format, in
// deterministic order.
func (g *Graph) String() string { return FormatGraph(g) }

// Clone returns a deep copy of the graph. IDs are preserved: the
// clone's dictionary assigns the same IDs to the same IRIs, and a
// frozen graph clones to a frozen graph. An overlay is deep-copied
// onto the clone's sealed base — posting lists are rebuilt, never
// shared — so writes to either graph's overlay stay invisible to the
// other.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	out.dict = g.dict.Clone()
	if g.frz != nil || g.shd != nil {
		// The map indexes of a sealed graph are gone; copy the
		// insertion-order state and compact directly instead of
		// rebuilding maps that the re-seal would immediately discard.
		// A frozen graph clones to a frozen graph, a sharded graph to
		// a sharded graph with the same shard count.
		out.all = append(out.all, g.all...)
		out.occ = append(out.occ, g.occ...)
		out.domSize = g.domSize
		if g.shd != nil {
			out.Shard(g.shd.n)
		} else {
			out.Freeze()
		}
		if o := g.ovl; o != nil {
			for _, t := range o.ts {
				out.addDeltaID(t)
			}
		}
		return out
	}
	for _, t := range g.all {
		out.addID(t)
	}
	return out
}

// Merge adds all triples of h into g.
func (g *Graph) Merge(h *Graph) {
	for _, t := range h.TriplesID() {
		g.Add(h.dict.DecodeTriple(t))
	}
}

// Equal reports whether two graphs contain exactly the same triples.
func (g *Graph) Equal(h *Graph) bool {
	if g.Len() != h.Len() {
		return false
	}
	for _, t := range g.TriplesID() {
		if !h.Contains(g.dict.DecodeTriple(t)) {
			return false
		}
	}
	return true
}
