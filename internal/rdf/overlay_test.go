package rdf_test

import (
	"math/rand"
	"testing"

	"wdsparql/internal/gen"
	"wdsparql/internal/rdf"
	"wdsparql/internal/rdf/backendtest"
)

// splitDelta loads the first half of ts through the sealed bulk path
// and the rest through AddDelta, producing a sealed base plus a live
// overlay. Interning order is unchanged (base triples first, overlay
// triples after), so the dictionary IDs match rdf.GraphOf exactly, as
// the backendtest contract requires.
func splitDelta(ts []rdf.Triple, seal func([]rdf.Triple) *rdf.Graph) *rdf.Graph {
	half := len(ts) / 2
	g := seal(ts[:half])
	for _, t := range ts[half:] {
		g.AddDelta(t)
	}
	return g
}

// The overlay on a frozen base: the full differential suite, so every
// read operation merges base and overlay stream-identically to a graph
// built from scratch.
func TestBackendSuiteOverlayFrozen(t *testing.T) {
	backendtest.RunBackendSuite(t, func(ts []rdf.Triple) *rdf.Graph {
		return splitDelta(ts, rdf.GraphFromTriples)
	})
}

// The overlay on a sharded base, across the canonical shard counts:
// cross-shard mergeBySeq followed by the overlay suffix must still
// reconstruct global insertion order.
func TestBackendSuiteOverlaySharded(t *testing.T) {
	for _, n := range []int{1, 2, 7} {
		n := n
		t.Run(backendtest.SuiteName("overlay", n), func(t *testing.T) {
			backendtest.RunBackendSuite(t, func(ts []rdf.Triple) *rdf.Graph {
				return splitDelta(ts, func(base []rdf.Triple) *rdf.Graph {
					return rdf.GraphFromTriplesSharded(base, n)
				})
			})
		})
	}
}

// The generation path end to end: base → Fork → AddDelta into the fork
// (forked dictionary, shared base storage) → the fork must pass the
// full suite while the abandoned receiver is left untouched.
func TestBackendSuiteOverlayFork(t *testing.T) {
	backendtest.RunBackendSuite(t, func(ts []rdf.Triple) *rdf.Graph {
		half := len(ts) / 2
		base := rdf.GraphFromTriples(ts[:half])
		g := base.Fork()
		for _, t := range ts[half:] {
			g.AddDelta(t)
		}
		return g
	})
}

// Fork + Compact is the re-freeze: the compacted generation must be
// sealed (no overlay left), keep the base's backend shape, and be
// stream-identical to a graph rebuilt from scratch — while the
// original generation still serves the pre-delta state.
func TestOverlayForkCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		full := gen.Random(14, 70, 3, rng.Int63())
		ts := full.Triples()
		half := len(ts) / 2
		for _, shards := range []int{0, 1, 3} {
			var base *rdf.Graph
			if shards > 0 {
				base = rdf.GraphFromTriplesSharded(ts[:half], shards)
			} else {
				base = rdf.GraphFromTriples(ts[:half])
			}
			baseLen := base.Len()
			g := base.Fork()
			for _, tr := range ts[half:] {
				g.AddDelta(tr)
			}
			g.Compact()
			if g.HasOverlay() || g.OverlayLen() != 0 {
				t.Fatalf("trial %d shards %d: overlay survived Compact", trial, shards)
			}
			if shards > 0 {
				if !g.Sharded() || g.ShardCount() != shards {
					t.Fatalf("trial %d: Compact changed backend shape (want %d shards)", trial, shards)
				}
			} else if !g.Frozen() {
				t.Fatalf("trial %d: Compact of a frozen base did not re-freeze", trial)
			}
			ref := rdf.GraphOf(ts...)
			if !backendtest.EqualStreams(ref, g) {
				t.Fatalf("trial %d shards %d: compacted generation diverges from rebuilt graph", trial, shards)
			}
			if base.Len() != baseLen || base.HasOverlay() {
				t.Fatalf("trial %d: Compact of a fork mutated the receiver generation", trial)
			}
			refBase := rdf.GraphOf(ts[:half]...)
			if !backendtest.EqualStreams(refBase, base) {
				t.Fatalf("trial %d shards %d: old generation no longer serves the pre-delta state", trial, shards)
			}
		}
	}
}

// Cloning a graph with a non-empty overlay must deep-copy the overlay:
// posting lists rebuilt, never shared. This is the regression pinned
// by the ingest PR — a shallow copy lets a write to one graph's
// overlay leak into the other's candidate streams.
func TestOverlayCloneDeepCopies(t *testing.T) {
	g := rdf.GraphFromTriples([]rdf.Triple{
		rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")),
		rdf.T(rdf.IRI("b"), rdf.IRI("p"), rdf.IRI("c")),
	})
	g.AddDeltaTriple("c", "p", "d")
	cl := g.Clone()
	if cl.OverlayLen() != 1 || !cl.Contains(rdf.T(rdf.IRI("c"), rdf.IRI("p"), rdf.IRI("d"))) {
		t.Fatalf("clone lost the overlay: len=%d", cl.OverlayLen())
	}

	// Writes on either side must stay invisible to the other.
	g.AddDeltaTriple("d", "p", "e")
	if cl.Contains(rdf.T(rdf.IRI("d"), rdf.IRI("p"), rdf.IRI("e"))) {
		t.Fatal("overlay write to the original leaked into the clone")
	}
	cl.AddDeltaTriple("x", "p", "y")
	if g.Contains(rdf.T(rdf.IRI("x"), rdf.IRI("p"), rdf.IRI("y"))) {
		t.Fatal("overlay write to the clone leaked into the original")
	}
	if g.Len() != 4 || cl.Len() != 4 {
		t.Fatalf("Len diverged: original %d, clone %d (want 4 and 4)", g.Len(), cl.Len())
	}

	// The clone's merged stream stays insertion-ordered and complete.
	ref := rdf.GraphOf(
		rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")),
		rdf.T(rdf.IRI("b"), rdf.IRI("p"), rdf.IRI("c")),
		rdf.T(rdf.IRI("c"), rdf.IRI("p"), rdf.IRI("d")),
		rdf.T(rdf.IRI("x"), rdf.IRI("p"), rdf.IRI("y")),
	)
	if !backendtest.EqualStreams(ref, cl) {
		t.Fatal("cloned overlay graph diverges from rebuilt reference")
	}
}

// The overlay write path must dedup against both the base and itself,
// and a mutation through the plain Add path must thaw the graph and
// fold the overlay at its sequence position.
func TestOverlayDedupAndThawFold(t *testing.T) {
	g := rdf.GraphFromTriples([]rdf.Triple{
		rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")),
	})
	g.AddDeltaTriple("a", "p", "b") // already in base
	g.AddDeltaTriple("b", "p", "c")
	g.AddDeltaTriple("b", "p", "c") // already in overlay
	if g.OverlayLen() != 1 || g.Len() != 2 {
		t.Fatalf("dedup failed: overlay=%d len=%d", g.OverlayLen(), g.Len())
	}

	g.AddTriple("c", "p", "d") // thaws; overlay folds in before the new triple
	if g.Frozen() || g.Sharded() || g.HasOverlay() {
		t.Fatal("thaw left the graph sealed or kept the overlay")
	}
	ref := rdf.GraphOf(
		rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")),
		rdf.T(rdf.IRI("b"), rdf.IRI("p"), rdf.IRI("c")),
		rdf.T(rdf.IRI("c"), rdf.IRI("p"), rdf.IRI("d")),
	)
	if !backendtest.EqualStreams(ref, g) {
		t.Fatal("thawed graph diverges from rebuilt reference")
	}
}

// AddDelta on an unsealed graph is a plain Add: no overlay appears.
func TestOverlayUnsealedFallsBackToAdd(t *testing.T) {
	g := rdf.NewGraph()
	g.AddDelta(rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")))
	if g.HasOverlay() || g.Len() != 1 {
		t.Fatalf("AddDelta on unsealed graph: overlay=%v len=%d", g.HasOverlay(), g.Len())
	}
}

// A snapshot of an overlay graph must include the overlay: write
// compacts first, and the loaded image equals the rebuilt graph.
func TestOverlaySnapshotCompactsFirst(t *testing.T) {
	ts := []rdf.Triple{
		rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")),
		rdf.T(rdf.IRI("b"), rdf.IRI("q"), rdf.IRI("c")),
		rdf.T(rdf.IRI("c"), rdf.IRI("p"), rdf.IRI("a")),
	}
	base := rdf.GraphFromTriples(ts[:2])
	g := base.Fork()
	g.AddDelta(ts[2])
	path := t.TempDir() + "/ovl.wdsnap"
	if err := g.WriteSnapshot(path); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snap, err := rdf.LoadSnapshot(path, rdf.SnapshotHeap)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	defer snap.Close()
	if !backendtest.EqualStreams(rdf.GraphOf(ts...), snap.Graph()) {
		t.Fatal("snapshot of an overlay graph diverges from rebuilt reference")
	}
}
