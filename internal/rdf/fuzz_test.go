package rdf

import (
	"strings"
	"testing"
)

// FuzzReadGraph pins the hardening contract of the N-Triples reader:
// arbitrary input yields a graph or an error, never a panic — and an
// accepted graph is internally consistent (every triple it reports
// holding is found by Contains).
func FuzzReadGraph(f *testing.F) {
	f.Add("a p b .\n")
	f.Add("a p b .\nb p c .")
	f.Add("# comment\n\na p b .\r\n")
	f.Add("bad triple\n")
	f.Add("a p .\n")
	f.Add("a p b c .\n")
	f.Add(strings.Repeat("x", 4097) + " p b .\n")
	f.Add("\x00\xff\xfe p b .\n")
	f.Add("a p \"literal with spaces\" .\n")
	f.Fuzz(func(t *testing.T, src string) {
		// A small cap exercises the long-line path; the default cap is
		// the same code with a bigger bound.
		g, err := ReadGraphMaxLine(strings.NewReader(src), 4096)
		if err != nil {
			if g != nil {
				t.Fatal("ReadGraphMaxLine returned both a graph and an error")
			}
			return
		}
		n := 0
		for _, tr := range g.Triples() {
			if !g.Contains(tr) {
				t.Fatalf("graph does not contain its own triple %v", tr)
			}
			n++
		}
		if n != g.Len() {
			t.Fatalf("Triples() yielded %d, Len() = %d", n, g.Len())
		}
	})
}
