package rdf

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzReadGraph pins the hardening contract of the N-Triples reader:
// arbitrary input yields a graph or an error, never a panic — and an
// accepted graph is internally consistent (every triple it reports
// holding is found by Contains).
func FuzzReadGraph(f *testing.F) {
	f.Add("a p b .\n")
	f.Add("a p b .\nb p c .")
	f.Add("# comment\n\na p b .\r\n")
	f.Add("bad triple\n")
	f.Add("a p .\n")
	f.Add("a p b c .\n")
	f.Add(strings.Repeat("x", 4097) + " p b .\n")
	f.Add("\x00\xff\xfe p b .\n")
	f.Add("a p \"literal with spaces\" .\n")
	f.Fuzz(func(t *testing.T, src string) {
		// A small cap exercises the long-line path; the default cap is
		// the same code with a bigger bound.
		g, err := ReadGraphMaxLine(strings.NewReader(src), 4096)
		if err != nil {
			if g != nil {
				t.Fatal("ReadGraphMaxLine returned both a graph and an error")
			}
			return
		}
		n := 0
		for _, tr := range g.Triples() {
			if !g.Contains(tr) {
				t.Fatalf("graph does not contain its own triple %v", tr)
			}
			n++
		}
		if n != g.Len() {
			t.Fatalf("Triples() yielded %d, Len() = %d", n, g.Len())
		}
	})
}

// FuzzLoadSnapshot pins the hardening contract of the snapshot
// loader: arbitrary bytes yield a graph or a descriptive error, never
// a panic — and an accepted image decodes to an internally consistent
// graph. It fuzzes parseImage directly (the shared core of both the
// heap and mmap loaders), seeded with valid frozen and sharded images
// plus targeted corruptions of each.
func FuzzLoadSnapshot(f *testing.F) {
	dir := f.TempDir()
	for _, shards := range []int{1, 3} {
		g := NewGraph()
		for i := 0; i < 24; i++ {
			g.AddTriple(fmt.Sprintf("s%d", i%7), fmt.Sprintf("p%d", i%3), fmt.Sprintf("o%d", i))
		}
		if shards > 1 {
			g.Shard(shards)
		}
		path := filepath.Join(dir, fmt.Sprintf("seed%d.wdsnap", shards))
		if err := g.WriteSnapshot(path); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(data[:snapHeaderLen])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/2] ^= 0x10
		f.Add(flipped)
	}
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Copy into a fresh allocation: parseImage requires an
		// 8-aligned base (file reads and mappings always are; fuzz
		// slices may be tiny-allocator sub-buffers).
		buf := make([]byte, len(data)+8)[:len(data)]
		copy(buf, data)
		g, h, err := parseImage(buf)
		if err != nil {
			if g != nil {
				t.Fatal("parseImage returned both a graph and an error")
			}
			return
		}
		if uint64(g.Len()) != h.nTriples || uint64(g.dict.NumIRIs()) != h.nIRIs {
			t.Fatalf("accepted image decodes to %d/%d triples/IRIs, header says %d/%d",
				g.Len(), g.dict.NumIRIs(), h.nTriples, h.nIRIs)
		}
		for _, id := range g.TriplesID() {
			if !g.ContainsID(id) {
				t.Fatalf("graph does not contain its own triple %v", id)
			}
			g.dict.DecodeTriple(id) // must not panic: IDs validated
		}
		g.Dom()
	})
}
