//go:build unix

package rdf

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps the file at path read-only. The mapping is shared
// (PROT_READ, MAP_SHARED): every process serving the same snapshot
// shares one copy of the page cache, which is the replica-fan-out
// story of the snapshot design. The caller owns the mapping and must
// release it with munmapFile.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("file is empty: not a snapshot")
	}
	if size > int64(maxInt) {
		return nil, fmt.Errorf("file is %d bytes, beyond this platform's address space", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: %w", err)
	}
	return b, nil
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
