package rdf

import (
	"fmt"
	"strings"
	"testing"
)

// Regression tests for the ReadGraph line handling: the reader used to
// cap lines at a fixed 1 MiB scanner buffer and surface an overlong
// line as a bare "rdf: read: token too long" with no line number.

// TestReadGraphLongLine pins that a line far beyond the old 1 MiB
// scanner cap parses fine under the default bound.
func TestReadGraphLongLine(t *testing.T) {
	long := strings.Repeat("x", 2<<20) // 2 MiB IRI, over the old cap
	src := fmt.Sprintf("a p b .\n%s p c .\nd p e .", long)
	g, err := ReadGraph(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	if !g.Contains(T(IRI(long), IRI("p"), IRI("c"))) {
		t.Fatal("long-IRI triple missing")
	}
}

// TestReadGraphMaxLineExceeded pins the error shape for a line beyond
// the configured bound: it must name the offending line and the bound,
// and must not depend on how much of the line was buffered.
func TestReadGraphMaxLineExceeded(t *testing.T) {
	long := strings.Repeat("y", 4096)
	src := fmt.Sprintf("a p b .\nc p d .\n%s p e .\nf p g .", long)
	_, err := ReadGraphMaxLine(strings.NewReader(src), 1024)
	if err == nil {
		t.Fatal("ReadGraphMaxLine accepted an overlong line")
	}
	for _, want := range []string{"line 3", "1024"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestReadGraphMaxLineBoundary pins that the bound counts the line
// content without its terminator: a line of exactly maxLine bytes
// parses, one byte more fails.
func TestReadGraphMaxLineBoundary(t *testing.T) {
	line := "aaaa p b ." // 10 bytes
	g, err := ReadGraphMaxLine(strings.NewReader(line+"\n"), len(line))
	if err != nil || g.Len() != 1 {
		t.Fatalf("exact-bound line rejected: %v", err)
	}
	if _, err := ReadGraphMaxLine(strings.NewReader(line+"\n"), len(line)-1); err == nil {
		t.Fatal("over-bound line accepted")
	}
}

// TestReadGraphNoTrailingNewline pins that the final unterminated line
// is still parsed.
func TestReadGraphNoTrailingNewline(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("a p b .\nc p d ."))
	if err != nil || g.Len() != 2 {
		t.Fatalf("got %v, err %v; want 2 triples", g, err)
	}
}

// TestReadGraphLineNumbersAfterLongLines pins that syntax errors after
// a multi-fragment line still carry the right line number.
func TestReadGraphLineNumbersAfterLongLines(t *testing.T) {
	long := strings.Repeat("z", 256<<10)
	src := fmt.Sprintf("%s p c .\n\n# comment\nbad triple", long)
	_, err := ReadGraph(strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %v does not name line 4", err)
	}
}
