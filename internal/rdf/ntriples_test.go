package rdf

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"strings"
	"testing"
)

// Regression tests for the ReadGraph line handling: the reader used to
// cap lines at a fixed 1 MiB scanner buffer and surface an overlong
// line as a bare "rdf: read: token too long" with no line number.

// TestReadGraphLongLine pins that a line far beyond the old 1 MiB
// scanner cap parses fine under the default bound.
func TestReadGraphLongLine(t *testing.T) {
	long := strings.Repeat("x", 2<<20) // 2 MiB IRI, over the old cap
	src := fmt.Sprintf("a p b .\n%s p c .\nd p e .", long)
	g, err := ReadGraph(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	if !g.Contains(T(IRI(long), IRI("p"), IRI("c"))) {
		t.Fatal("long-IRI triple missing")
	}
}

// TestReadGraphMaxLineExceeded pins the error shape for a line beyond
// the configured bound: it must name the offending line and the bound,
// and must not depend on how much of the line was buffered.
func TestReadGraphMaxLineExceeded(t *testing.T) {
	long := strings.Repeat("y", 4096)
	src := fmt.Sprintf("a p b .\nc p d .\n%s p e .\nf p g .", long)
	_, err := ReadGraphMaxLine(strings.NewReader(src), 1024)
	if err == nil {
		t.Fatal("ReadGraphMaxLine accepted an overlong line")
	}
	for _, want := range []string{"line 3", "1024"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestReadGraphMaxLineBoundary pins that the bound counts the line
// content without its terminator: a line of exactly maxLine bytes
// parses, one byte more fails.
func TestReadGraphMaxLineBoundary(t *testing.T) {
	line := "aaaa p b ." // 10 bytes
	g, err := ReadGraphMaxLine(strings.NewReader(line+"\n"), len(line))
	if err != nil || g.Len() != 1 {
		t.Fatalf("exact-bound line rejected: %v", err)
	}
	if _, err := ReadGraphMaxLine(strings.NewReader(line+"\n"), len(line)-1); err == nil {
		t.Fatal("over-bound line accepted")
	}
}

// TestReadGraphNoTrailingNewline pins that the final unterminated line
// is still parsed.
func TestReadGraphNoTrailingNewline(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("a p b .\nc p d ."))
	if err != nil || g.Len() != 2 {
		t.Fatalf("got %v, err %v; want 2 triples", g, err)
	}
}

// TestReadGraphLineNumbersAfterLongLines pins that syntax errors after
// a multi-fragment line still carry the right line number.
func TestReadGraphLineNumbersAfterLongLines(t *testing.T) {
	long := strings.Repeat("z", 256<<10)
	src := fmt.Sprintf("%s p c .\n\n# comment\nbad triple", long)
	_, err := ReadGraph(strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %v does not name line 4", err)
	}
}

// gzipped compresses src with gzip at the default level.
func gzipped(t *testing.T, src string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(src)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadGraphGzip pins the transparent gzip path: the same source
// parses to the same graph whether plain or gzipped, and the detection
// is by magic bytes, not file names.
func TestReadGraphGzip(t *testing.T) {
	src := "a p b .\nb p c .\nc q a .\n"
	want, err := ReadGraph(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	g, err := ReadGraph(bytes.NewReader(gzipped(t, src)))
	if err != nil {
		t.Fatalf("gzipped ReadGraph: %v", err)
	}
	if g.Len() != want.Len() {
		t.Fatalf("gzipped Len = %d, plain Len = %d", g.Len(), want.Len())
	}
	for _, tr := range want.Triples() {
		if !g.Contains(tr) {
			t.Fatalf("gzipped graph lacks %v", tr)
		}
	}
}

// TestReadGraphGzipTruncated pins that a truncated gzip stream is an
// error, never a silently shorter graph: the gzip trailer CRC must be
// seen before EOF is believed.
func TestReadGraphGzipTruncated(t *testing.T) {
	full := gzipped(t, "a p b .\nb p c .\nc q a .\n")
	for _, cut := range []int{len(full) - 1, len(full) - 8, len(full) / 2, 3} {
		if _, err := ReadGraph(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes parsed without error", cut, len(full))
		}
	}
}

// TestReadGraphGzipCorrupt pins that flipping payload bits surfaces as
// an error (inflate failure or trailer CRC mismatch).
func TestReadGraphGzipCorrupt(t *testing.T) {
	full := gzipped(t, strings.Repeat("a p b .\n", 64))
	bad := append([]byte(nil), full...)
	bad[len(bad)/2] ^= 0x40
	if _, err := ReadGraph(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt gzip stream parsed without error")
	}
}

// TestReadGraphNotGzip pins that a graph whose first line merely
// resembles binary is still treated as text: only the exact two-byte
// gzip magic triggers decompression.
func TestReadGraphNotGzip(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("\x1fx p b .\n"))
	if err != nil || g.Len() != 1 {
		t.Fatalf("near-magic text input: %v, %v", g, err)
	}
}

// TestReadGraphGzipLineNumbers pins that syntax errors in gzipped
// input carry decompressed line numbers: the same broken dump must
// name the same line whether it arrives plain or gzipped. Line
// accounting must never derive from the raw (compressed) byte stream.
func TestReadGraphGzipLineNumbers(t *testing.T) {
	src := "a p b .\nb p c .\n# comment\n\nbad triple here extra\n"
	_, plainErr := ReadGraph(strings.NewReader(src))
	if plainErr == nil || !strings.Contains(plainErr.Error(), "line 5") {
		t.Fatalf("plain error %v does not name line 5", plainErr)
	}
	_, gzErr := ReadGraph(bytes.NewReader(gzipped(t, src)))
	if gzErr == nil || !strings.Contains(gzErr.Error(), "line 5") {
		t.Fatalf("gzipped error %v does not name line 5", gzErr)
	}
	if plainErr.Error() != gzErr.Error() {
		t.Fatalf("plain and gzipped errors diverge: %q vs %q", plainErr, gzErr)
	}
}

// TestReadGraphWithProgress pins the progress contract: bytes are
// monotone raw input bytes, the final callback reports the full input
// size and the exact triple count, for plain and gzipped input alike.
func TestReadGraphWithProgress(t *testing.T) {
	var src strings.Builder
	for i := 0; i < 40000; i++ {
		fmt.Fprintf(&src, "s%d p o%d .\n", i, i%97)
	}
	for _, mode := range []string{"plain", "gzip"} {
		data := []byte(src.String())
		if mode == "gzip" {
			data = gzipped(t, src.String())
		}
		var calls int
		var lastBytes int64
		var lastTriples int
		g, err := ReadGraphWithProgress(bytes.NewReader(data), func(b int64, n int) {
			calls++
			if b < lastBytes || n < lastTriples {
				t.Fatalf("%s: progress went backwards: (%d,%d) after (%d,%d)", mode, b, n, lastBytes, lastTriples)
			}
			lastBytes, lastTriples = b, n
		})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if calls < 2 {
			t.Fatalf("%s: only %d progress callbacks for 40000 triples", mode, calls)
		}
		if lastTriples != g.Len() || g.Len() != 40000 {
			t.Fatalf("%s: final triples %d, graph %d, want 40000", mode, lastTriples, g.Len())
		}
		if lastBytes != int64(len(data)) {
			t.Fatalf("%s: final bytes %d, input is %d", mode, lastBytes, len(data))
		}
	}
}

// TestDecodeTriplesCallbackError pins that an error returned by the
// callback aborts the decode and is returned unwrapped.
func TestDecodeTriplesCallbackError(t *testing.T) {
	sentinel := fmt.Errorf("stop here")
	seen := 0
	err := DecodeTriples(strings.NewReader("a p b .\nc p d .\ne p f .\n"), 0, func(s, p, o string) error {
		seen++
		if seen == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || seen != 2 {
		t.Fatalf("err=%v seen=%d; want the sentinel after 2 triples", err, seen)
	}
}

// TestParseDataLine pins the shared line parser the ingest workers use:
// blank/comment lines are skipped without error, angle brackets are
// stripped, malformed lines error.
func TestParseDataLine(t *testing.T) {
	for _, tc := range []struct {
		line    string
		s, p, o string
		ok      bool
		wantErr bool
	}{
		{"a p b .", "a", "p", "b", true, false},
		{"<http://x/a> <http://x/p> <http://x/b> .", "http://x/a", "http://x/p", "http://x/b", true, false},
		{"  a p b  ", "a", "p", "b", true, false},
		{"", "", "", "", false, false},
		{"   ", "", "", "", false, false},
		{"# comment", "", "", "", false, false},
		{"a p", "", "", "", false, true},
		{"a p b c .", "", "", "", false, true},
		{"?v p b .", "", "", "", false, true},
		{"<unterminated p b .", "", "", "", false, true},
	} {
		s, p, o, ok, err := ParseDataLine(tc.line)
		if (err != nil) != tc.wantErr || ok != tc.ok || s != tc.s || p != tc.p || o != tc.o {
			t.Fatalf("ParseDataLine(%q) = (%q,%q,%q,%v,%v), want (%q,%q,%q,%v,err=%v)",
				tc.line, s, p, o, ok, err, tc.s, tc.p, tc.o, tc.ok, tc.wantErr)
		}
	}
}
