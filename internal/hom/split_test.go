package hom

import (
	"math/rand"
	"slices"
	"testing"

	"wdsparql/internal/rdf"
)

// SplitTop/RunOn is the top-level partitioning seam of the compiled
// search: running RunOn over SplitTop's candidates in order must
// reproduce Run's stream exactly — same rows, same order — for random
// programs over random graphs, with and without pre-bound rows, on
// both the map and the sharded backend. This is what lets the
// parallel enumeration split root work per candidate (and per shard)
// without observable effect.

func collectRun(prog *RowProgram, base rdf.Row) []rdf.Row {
	var out []rdf.Row
	row := base.Clone()
	prog.NewSearcher().Run(row, func() bool {
		out = append(out, row.Clone())
		return true
	})
	return out
}

func collectSplit(t *testing.T, prog *RowProgram, base rdf.Row) ([]rdf.Row, bool) {
	t.Helper()
	s := prog.NewSearcher()
	row := base.Clone()
	cands, ok := s.SplitTop(row)
	if !ok {
		return nil, false
	}
	var out []rdf.Row
	for _, c := range cands {
		s.RunOn(row, c, func() bool {
			out = append(out, row.Clone())
			return true
		})
		if !slices.Equal(row, base) {
			t.Fatalf("RunOn(%v) did not restore the row: %v vs %v", c, row, base)
		}
	}
	return out, true
}

func TestSplitTopPartitionsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	split, fellBack := 0, 0
	for c := 0; c < 300; c++ {
		g := randRowGraph(rng)
		if c%2 == 1 {
			g.Shard(1 + rng.Intn(4))
		}
		pats := randRowPats(rng)
		layout := rdf.NewSlotLayout()
		prog := CompileRowProgram(pats, g, layout)
		base := layout.NewRow()
		if rng.Intn(2) == 0 {
			// Pre-bind one slot from some solution, exercising the
			// "extends µ" side condition through the split.
			if full := collectRows(prog, layout.NewRow(), 1); len(full) == 1 {
				for s, v := range full[0] {
					if v != rdf.Unbound {
						base[s] = v
						break
					}
				}
			}
		}
		want := collectRun(prog, base)
		got, ok := collectSplit(t, prog, base)
		if !ok {
			fellBack++
			continue
		}
		split++
		if len(got) != len(want) {
			t.Fatalf("case %d (%v): split stream %d rows, Run %d", c, pats, len(got), len(want))
		}
		for i := range want {
			if !slices.Equal(got[i], want[i]) {
				t.Fatalf("case %d: row %d differs: %v split vs %v Run", c, i, got[i], want[i])
			}
		}
	}
	if split == 0 {
		t.Fatal("no case exercised the split path")
	}
}

// An empty program has no top-level branch point: SplitTop must demand
// the Run fallback (which yields exactly the empty extension), and a
// program with an absent constant must split into zero work items.
func TestSplitTopDegenerate(t *testing.T) {
	g := rdf.GraphOf(rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")))
	layout := rdf.NewSlotLayout()
	empty := CompileRowProgram(nil, g, layout)
	if _, ok := empty.NewSearcher().SplitTop(layout.NewRow()); ok {
		t.Fatal("empty program must not split")
	}
	absent := CompileRowProgram([]rdf.Triple{rdf.T(rdf.Var("x"), rdf.IRI("nope"), rdf.Var("y"))}, g, layout)
	cands, ok := absent.NewSearcher().SplitTop(layout.NewRow())
	if !ok || len(cands) != 0 {
		t.Fatalf("absent-constant program must split into zero items, got %v ok=%v", cands, ok)
	}
}
