package hom

import (
	"wdsparql/internal/plan"
	"wdsparql/internal/rdf"
)

// This file is the row-native face of the homomorphism solver: the
// same compiled backtracking search as solver.go, but with variables
// carrying caller-assigned global slots (an rdf.SlotLayout shared by a
// whole pattern tree) and matches emitted directly as bindings into a
// caller-provided flat row — no rdf.Mapping is built and no string is
// decoded. This is what the top-down enumeration of ⟦T⟧G streams
// solutions out of: the partial solution accumulated down a wdPT
// branch *is* the row, bound slots act as constants of the search
// (the paper's "extends µ" side condition), and newly matched slots
// are written in place and undone on backtrack.

// RowProgram is a set of triple patterns compiled once against a graph
// and a slot layout: variables become layout slots, IRI constants
// become TermIDs. The program is immutable after compilation and safe
// for concurrent use through per-goroutine RowSearchers.
type RowProgram struct {
	g      *rdf.Graph
	pats   []cpat
	width  int  // minimum row length: 1 + highest slot referenced
	absent bool // some constant is not in g: no matches

	// Compile-time join order; nil unless built by
	// CompileRowProgramPlanned or BuildPlan (see planner.go).
	plan *plan.Plan

	// Pushed filter conjuncts; see filter.go. Immutable once the first
	// searcher is created.
	filters []progFilter
}

// CompileRowProgram compiles the patterns, interning their variables
// into the layout. Patterns whose constants are unknown to the graph's
// dictionary yield a program with no matches.
func CompileRowProgram(pats []rdf.Triple, g *rdf.Graph, layout *rdf.SlotLayout) *RowProgram {
	p := &RowProgram{g: g, pats: make([]cpat, len(pats))}
	dict := g.Dict()
	for pi, pat := range pats {
		for i, term := range pat.Terms() {
			if term.IsVar() {
				slot := layout.Intern(term.Value)
				if slot+1 > p.width {
					p.width = slot + 1
				}
				p.pats[pi].code[i] = int32(slot)
				continue
			}
			id, ok := dict.LookupIRI(term.Value)
			if !ok {
				p.absent = true
			}
			p.pats[pi].code[i] = ^int32(id)
		}
	}
	return p
}

// Width returns the minimum row length the program's Run accepts.
func (p *RowProgram) Width() int { return p.width }

// RowSearcher carries the mutable scratch of one search over a
// RowProgram (pattern done-flags, per-depth candidate buffers, and
// the dense stack of currently-bound values). A searcher is not safe
// for concurrent use, but is reusable across any number of sequential
// Run calls; parallel enumeration gives each worker its own searcher
// over the shared program.
type RowSearcher struct {
	prog   *RowProgram
	done   []bool
	bufs   [][]scoredCand
	assign rdf.Row      // the caller's row, during Run
	bound  []rdf.TermID // values bound in assign, maintained across bind/unbind

	// Pattern-selection policy and its scratch; see planner.go.
	mode   SearchMode
	slack  float64 // strict-mode divergence factor
	stats  *SearchStats
	memo   []countMemo // per-pattern selection-count memo
	noMemo bool        // benchmark knob: disable the memo

	// Filter-pushdown scratch; nil when the program has no filters
	// (the search then pays nothing). See filter.go.
	fRemaining []int32   // per filter: slots still unbound
	fWatch     [][]int32 // per slot: indices of filters reading it
}

// NewSearcher returns a fresh searcher for the program.
func (p *RowProgram) NewSearcher() *RowSearcher {
	s := &RowSearcher{
		prog:  p,
		done:  make([]bool, len(p.pats)),
		bufs:  make([][]scoredCand, len(p.pats)),
		memo:  make([]countMemo, len(p.pats)),
		slack: float64(DefaultSlack),
	}
	s.initFilterScratch()
	return s
}

// Run enumerates all homomorphisms from the program's patterns into
// its graph that extend the partial row assign: slots already bound in
// assign are constants of the search, and every complete match is
// written into assign before yield is called (and undone afterwards,
// so assign is exactly restored when Run returns). yield must copy the
// row if it needs it beyond the call. Run reports whether the search
// ran to exhaustion; false means yield stopped it early.
//
// An empty pattern set admits exactly the empty extension (one yield).
func (s *RowSearcher) Run(assign rdf.Row, yield func() bool) bool {
	p := s.prog
	if len(assign) < p.width {
		panic("hom: RowSearcher.Run: row narrower than the compiled program")
	}
	if p.absent && len(p.pats) > 0 {
		return true
	}
	if !s.seedFilters(assign) {
		return true // an entry-bound filter fails: empty stream
	}
	s.assign = assign
	s.seedBound(assign)
	ok := s.rec(len(p.pats), yield)
	s.assign = nil
	return ok
}

// seedBound seeds the bound-value stack from the pre-bound slots of
// the row (the paper's µ); rec pushes and pops the values it binds, so
// the stack always mirrors the bound portion of assign without the
// O(width) rescan rowInImage used to pay per candidate position.
func (s *RowSearcher) seedBound(assign rdf.Row) {
	s.bound = s.bound[:0]
	for _, v := range assign {
		if v != rdf.Unbound {
			s.bound = append(s.bound, v)
		}
	}
}

// substituteRow renders pattern i under the current row: bound slots
// and constants become IRI IDs, unbound slots become their per-slot
// variable IDs (repeated variables stay linked through the shared
// slot).
func (s *RowSearcher) substituteRow(i int) rdf.IDTriple {
	var out rdf.IDTriple
	cp := &s.prog.pats[i]
	for pos := 0; pos < 3; pos++ {
		c := cp.code[pos]
		if c < 0 {
			out[pos] = rdf.TermID(^c)
			continue
		}
		if v := s.assign[c]; v != rdf.Unbound {
			out[pos] = v
		} else {
			out[pos] = rdf.VarID(int(c))
		}
	}
	return out
}

// rec mirrors search.rec in solver.go: expand the remaining pattern
// with the fewest matches (fail-first), order its candidates
// succeed-first, bind the newly determined slots in place.
func (s *RowSearcher) rec(remaining int, yield func() bool) bool {
	if remaining == 0 {
		return yield()
	}
	if s.stats != nil {
		s.stats.Nodes++
	}
	best, bestPat, dead := s.pickPattern()
	if dead {
		return true // dead branch
	}
	s.done[best] = true
	depth := len(s.prog.pats) - remaining
	for _, sc := range s.scoredCandidates(best, bestPat, depth) {
		if !s.bindAndRec(best, sc.t, remaining, yield) {
			s.done[best] = false
			return false
		}
	}
	s.done[best] = false
	return true
}

// pickPattern chooses the remaining pattern to expand under the
// searcher's mode (see planner.go for the mode contract). The default
// is fail-first: fewest matches under the current row, first such
// pattern on ties — the deterministic branch decision every split of
// the same search state reproduces (SplitTop and RunOn rely on
// exactly that). dead reports that a probed pattern has no matches at
// all, pruning the whole branch. The early break on a count-1 pattern
// is sound for the choice (1 is the global minimum on a live branch)
// but blind to later zero-count patterns; ModePlanned trades the
// break for complete dead detection.
func (s *RowSearcher) pickPattern() (best int, bestPat rdf.IDTriple, dead bool) {
	switch s.mode {
	case ModePlanned:
		return s.pickScored()
	case ModeStrict:
		return s.pickStrict()
	}
	best, bestCount := -1, -1
	for i := range s.prog.pats {
		if s.done[i] {
			continue
		}
		c, p := s.countOf(i)
		if c == 0 {
			return -1, rdf.IDTriple{}, true
		}
		if best == -1 || c < bestCount {
			best, bestCount, bestPat = i, c, p
			if c == 1 {
				break
			}
		}
	}
	return best, bestPat, false
}

// scoredCandidates materialises the candidate triples of pattern best
// (rendered as bestPat under the current row) into the per-depth
// buffer, scored and ordered succeed-first.
func (s *RowSearcher) scoredCandidates(best int, bestPat rdf.IDTriple, depth int) []scoredCand {
	g := s.prog.g
	cp := &s.prog.pats[best]
	cands := s.bufs[depth][:0]
	raw, exact := g.LookupRangeID(bestPat)
	for _, t := range raw {
		if !exact && !rdf.MatchesPatternID(bestPat, t) {
			continue
		}
		var score int64
		for pos := 0; pos < 3; pos++ {
			if c := cp.code[pos]; c >= 0 && s.assign[c] == rdf.Unbound {
				if s.rowInImage(t[pos], bestPat) {
					score += reuseBonus
				}
				score += int64(g.OccurrencesID(t[pos]))
			}
		}
		cands = append(cands, scoredCand{t: t, score: score})
	}
	s.bufs[depth] = cands
	if len(cands) > 1 {
		sortCands(cands)
	}
	return cands
}

// bindAndRec binds the fresh slots of pattern best to the candidate
// triple t, recurses into the remaining patterns, and restores the row
// and the bound stack on the way out. A pushed filter whose last slot
// binds here is evaluated immediately; anything but true prunes the
// subtree below this candidate (the recursion is skipped, the binding
// undone, and the sibling candidates continue — a pure subsequence of
// the unfiltered exploration).
func (s *RowSearcher) bindAndRec(best int, t rdf.IDTriple, remaining int, yield func() bool) bool {
	cp := &s.prog.pats[best]
	var newSlots [3]int32
	n := 0
	pruned := false
	for pos := 0; pos < 3; pos++ {
		c := cp.code[pos]
		if c >= 0 && s.assign[c] == rdf.Unbound {
			s.assign[c] = t[pos]
			s.bound = append(s.bound, t[pos])
			newSlots[n] = c
			n++
			if s.fWatch != nil {
				for _, fi := range s.fWatch[c] {
					s.fRemaining[fi]--
					if !pruned && s.fRemaining[fi] == 0 && s.prog.filters[fi].expr.Eval(s.assign) != TriTrue {
						pruned = true
					}
				}
			}
		}
	}
	more := true
	if !pruned {
		more = s.rec(remaining-1, yield)
	} else if s.stats != nil {
		s.stats.FilterPruned++
	}
	for j := 0; j < n; j++ {
		c := newSlots[j]
		s.assign[c] = rdf.Unbound
		if s.fWatch != nil {
			for _, fi := range s.fWatch[c] {
				s.fRemaining[fi]++
			}
		}
	}
	s.bound = s.bound[:len(s.bound)-n]
	return more
}

// SplitTop computes the top-level branch point of the search over the
// partial row assign: the candidate triples of the fail-first-chosen
// first pattern, in exactly the order Run would explore them. When ok,
// Run(assign)'s stream is precisely the concatenation of
// RunOn(assign, c) over the returned candidates in order — the seam
// the parallel enumeration uses to partition root work by data (and,
// on a sharded graph, by shard: each candidate's shard is a pure
// function of its subject). Zero candidates with ok=true means the
// stream is empty. ok=false means the search has no top-level branch
// point — the program has no patterns, so Run yields exactly the empty
// extension — and the caller must fall back to Run. The returned slice
// is freshly allocated and caller-owned; assign is read, not written.
func (s *RowSearcher) SplitTop(assign rdf.Row) ([]rdf.IDTriple, bool) {
	p := s.prog
	if len(assign) < p.width {
		panic("hom: RowSearcher.SplitTop: row narrower than the compiled program")
	}
	if len(p.pats) == 0 {
		return nil, false
	}
	if p.absent {
		return nil, true // no matches: an empty stream, zero work items
	}
	if !s.seedFilters(assign) {
		return nil, true // an entry-bound filter fails: empty stream
	}
	s.assign = assign
	s.seedBound(assign)
	best, bestPat, dead := s.pickPattern()
	var out []rdf.IDTriple
	if !dead {
		cands := s.scoredCandidates(best, bestPat, 0)
		out = make([]rdf.IDTriple, len(cands))
		for i, sc := range cands {
			out[i] = sc.t
		}
	}
	s.assign = nil
	return out, true
}

// RunOn is Run with the top-level choice pinned to the candidate t,
// which must come from SplitTop(assign): it re-derives the same
// fail-first pattern choice (deterministic over the immutable graph),
// binds t's fresh slots, and enumerates the remaining patterns'
// extensions. The contract matches Run: every complete match is
// written into assign before yield and undone afterwards, and the
// return value reports exhaustion.
func (s *RowSearcher) RunOn(assign rdf.Row, t rdf.IDTriple, yield func() bool) bool {
	p := s.prog
	if len(assign) < p.width {
		panic("hom: RowSearcher.RunOn: row narrower than the compiled program")
	}
	if len(p.pats) == 0 || p.absent {
		return true
	}
	if !s.seedFilters(assign) {
		return true // an entry-bound filter fails: empty stream
	}
	s.assign = assign
	s.seedBound(assign)
	best, _, dead := s.pickPattern()
	ok := true
	if !dead {
		s.done[best] = true
		ok = s.bindAndRec(best, t, len(p.pats), yield)
		s.done[best] = false
	}
	s.assign = nil
	return ok
}

// rowInImage reports whether the value is already in the image of the
// partial solution row (any bound slot) or a constant of the pattern
// being expanded; see search.inImage for the value-ordering rationale.
// The scan runs over the dense bound-value stack — whose length is
// the number of bound slots — not over the full (mostly unbound)
// forest-wide row. Measured on the E9 enumeration workload this is
// the profitable point on the satellite's "set vs scan" trade-off: a
// hash multiset costs more to maintain across bind/unbind than these
// short scans cost to run at typical pattern widths.
func (s *RowSearcher) rowInImage(v rdf.TermID, pat rdf.IDTriple) bool {
	for _, a := range s.bound {
		if a == v {
			return true
		}
	}
	for _, p := range pat {
		if p == v {
			return true
		}
	}
	return false
}

// FindAllID returns all homomorphisms from pats to g as rows under the
// layout (interning any new pattern variables), up to limit (≤ 0 means
// no limit). Slots of the layout outside vars(pats) are Unbound.
func FindAllID(pats []rdf.Triple, g *rdf.Graph, layout *rdf.SlotLayout, limit int) []rdf.Row {
	prog := CompileRowProgram(pats, g, layout)
	return collectRows(prog, layout.NewRow(), limit)
}

// FindAllExtendingID returns all homomorphism rows extending the
// partial row base — the row-native (S, dom(µ)) →µ G of the paper —
// including base's bindings in every result. base must have been built
// against the same layout; it is not modified.
func FindAllExtendingID(pats []rdf.Triple, g *rdf.Graph, layout *rdf.SlotLayout, base rdf.Row, limit int) []rdf.Row {
	prog := CompileRowProgram(pats, g, layout)
	// Compiling may have interned fresh variables past base's width;
	// search on a widened copy so base stays untouched.
	row := layout.NewRow()
	copy(row, base)
	return collectRows(prog, row, limit)
}

func collectRows(prog *RowProgram, row rdf.Row, limit int) []rdf.Row {
	var out []rdf.Row
	prog.NewSearcher().Run(row, func() bool {
		out = append(out, row.Clone())
		return limit <= 0 || len(out) < limit
	})
	return out
}
