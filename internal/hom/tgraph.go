// Package hom implements triple-pattern graphs (t-graphs), generalised
// t-graphs (S, X), homomorphisms between them and into RDF graphs, and
// core computation — the machinery of Sections 2.1 and 3 of the paper.
//
// Homomorphism search is solved as a constraint-satisfaction problem
// with backtracking, forward checking and a most-constrained-variable
// heuristic. Homomorphisms between t-graphs are reduced to
// homomorphisms into an encoded RDF graph in which the target's
// variables are frozen into fresh IRIs, mirroring the paper's remark
// that generalised t-graphs correspond to conjunctive queries with
// constants.
package hom

import (
	"fmt"
	"sort"
	"strings"

	"wdsparql/internal/rdf"
)

// TGraph is a t-graph: a finite set of triple patterns (Section 2.1).
// The representation is a sorted, deduplicated slice.
type TGraph []rdf.Triple

// NewTGraph builds a t-graph from the given triples, deduplicating and
// sorting them.
func NewTGraph(ts ...rdf.Triple) TGraph {
	seen := make(map[rdf.Triple]bool, len(ts))
	out := make(TGraph, 0, len(ts))
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	rdf.SortTriples(out)
	return out
}

// Union returns the t-graph S ∪ T.
func (s TGraph) Union(t TGraph) TGraph {
	return NewTGraph(append(append([]rdf.Triple{}, s...), t...)...)
}

// Vars returns vars(S), sorted.
func (s TGraph) Vars() []rdf.Term { return rdf.VarsOf(s) }

// Contains reports whether the triple pattern t ∈ S.
func (s TGraph) Contains(t rdf.Triple) bool {
	i := sort.Search(len(s), func(i int) bool { return !s[i].Less(t) })
	return i < len(s) && s[i] == t
}

// SubsetOf reports S ⊆ T.
func (s TGraph) SubsetOf(t TGraph) bool {
	for _, tr := range s {
		if !t.Contains(tr) {
			return false
		}
	}
	return true
}

// Equal reports whether two t-graphs contain the same triples.
func (s TGraph) Equal(t TGraph) bool {
	return len(s) == len(t) && s.SubsetOf(t)
}

// Ground reports whether the t-graph has no variables, i.e. is an RDF
// graph.
func (s TGraph) Ground() bool {
	for _, t := range s {
		if !t.Ground() {
			return false
		}
	}
	return true
}

// String renders the t-graph as a set of triples.
func (s TGraph) String() string {
	parts := make([]string, len(s))
	for i, t := range s {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// GTGraph is a generalised t-graph (S, X): a t-graph together with a
// set of distinguished variables X ⊆ vars(S) that homomorphisms must
// fix pointwise (Section 3 of the paper).
type GTGraph struct {
	S TGraph
	X []rdf.Term // sorted distinguished variables
}

// NewGTGraph builds a generalised t-graph. Distinguished variables not
// occurring in S are dropped, matching the requirement X ⊆ vars(S).
func NewGTGraph(s TGraph, x []rdf.Term) GTGraph {
	inS := map[rdf.Term]bool{}
	for _, v := range s.Vars() {
		inS[v] = true
	}
	seen := map[rdf.Term]bool{}
	kept := make([]rdf.Term, 0, len(x))
	for _, v := range x {
		if v.IsVar() && inS[v] && !seen[v] {
			seen[v] = true
			kept = append(kept, v)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Less(kept[j]) })
	return GTGraph{S: s, X: kept}
}

// FreeVars returns vars(S) \ X, the variables a homomorphism may move.
func (g GTGraph) FreeVars() []rdf.Term {
	inX := map[rdf.Term]bool{}
	for _, v := range g.X {
		inX[v] = true
	}
	var out []rdf.Term
	for _, v := range g.S.Vars() {
		if !inX[v] {
			out = append(out, v)
		}
	}
	return out
}

// IsDistinguished reports whether v ∈ X.
func (g GTGraph) IsDistinguished(v rdf.Term) bool {
	for _, x := range g.X {
		if x == v {
			return true
		}
	}
	return false
}

// String renders the generalised t-graph as (S, {X}).
func (g GTGraph) String() string {
	xs := make([]string, len(g.X))
	for i, v := range g.X {
		xs[i] = v.String()
	}
	return fmt.Sprintf("(%s, {%s})", g.S, strings.Join(xs, ", "))
}

// Encoding prefixes used when freezing t-graphs into RDF graphs for
// t-graph-to-t-graph homomorphism tests. The prefixes keep frozen
// variables disjoint from genuine IRIs.
const (
	frozenIRIPrefix = "\x01i:"
	frozenVarPrefix = "\x01v:"
)

// FreezeTerm encodes a term of a target t-graph as an IRI: IRIs and
// variables are mapped into disjoint namespaces.
func FreezeTerm(t rdf.Term) rdf.Term {
	if t.IsVar() {
		return rdf.IRI(frozenVarPrefix + t.Value)
	}
	return rdf.IRI(frozenIRIPrefix + t.Value)
}

// ThawTerm inverts FreezeTerm.
func ThawTerm(t rdf.Term) rdf.Term {
	if strings.HasPrefix(t.Value, frozenVarPrefix) {
		return rdf.Var(strings.TrimPrefix(t.Value, frozenVarPrefix))
	}
	if strings.HasPrefix(t.Value, frozenIRIPrefix) {
		return rdf.IRI(strings.TrimPrefix(t.Value, frozenIRIPrefix))
	}
	return t
}

// Freeze encodes a t-graph as a ground RDF graph: every variable
// becomes a frozen-variable IRI and every IRI a frozen-IRI IRI. This
// is the canonical reduction of t-graph homomorphism to RDF-graph
// homomorphism, and also the paper's Section 4.2 trick of "freezing
// the variables of B, which now become IRIs".
func Freeze(s TGraph) *rdf.Graph {
	g := rdf.NewGraph()
	for _, t := range s {
		g.Add(rdf.T(FreezeTerm(t.S), FreezeTerm(t.P), FreezeTerm(t.O)))
	}
	return g
}

// freezeSource prepares the triples of a source generalised t-graph
// for matching against a frozen target: IRIs and distinguished
// variables become frozen constants (they must map to themselves);
// free variables remain variables.
func freezeSource(g GTGraph) []rdf.Triple {
	isX := map[rdf.Term]bool{}
	for _, v := range g.X {
		isX[v] = true
	}
	conv := func(t rdf.Term) rdf.Term {
		if t.IsIRI() || isX[t] {
			return FreezeTerm(t)
		}
		return t
	}
	out := make([]rdf.Triple, len(g.S))
	for i, t := range g.S {
		out[i] = rdf.T(conv(t.S), conv(t.P), conv(t.O))
	}
	return out
}
