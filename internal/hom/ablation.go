package hom

import (
	"wdsparql/internal/rdf"
)

// This file contains ablation variants of the homomorphism solver,
// kept separate from the production path. They quantify the value of
// the fail-first pattern-selection heuristic in the benchmark suite
// (DESIGN.md, ablation benches); production code should use Exists and
// friends.

// ExistsStaticOrder is Exists with the fail-first heuristic disabled:
// patterns are expanded in their given (sorted) order regardless of
// how many matches they admit. Worst-case behaviour is identical; on
// structured instances the ordering heuristic typically wins by large
// factors.
func ExistsStaticOrder(pats []rdf.Triple, g *rdf.Graph) bool {
	assign := rdf.NewMapping()
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(pats) {
			return true
		}
		p := assign.Apply(pats[i])
		for _, t := range g.Match(p) {
			newVars := bindMatch(p, t, assign)
			if rec(i + 1) {
				return true
			}
			for _, v := range newVars {
				delete(assign, v)
			}
		}
		return false
	}
	return rec(0)
}

// CountSearchNodes runs the production solver and returns the number
// of search-tree nodes expanded before the first solution (or
// exhaustion); used by the ablation benchmarks to report work rather
// than only wall time.
func CountSearchNodes(pats []rdf.Triple, g *rdf.Graph) (found bool, nodes int) {
	st := newSearch(pats, g, 1)
	nodes = countingRun(st)
	return len(st.found) > 0, nodes
}

func countingRun(s *search) int {
	nodes := 0
	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		nodes++
		if remaining == 0 {
			s.found = append(s.found, s.assign.Clone())
			return s.limit <= 0 || len(s.found) < s.limit
		}
		best, bestCount := -1, -1
		for i, p := range s.pats {
			if s.done[i] {
				continue
			}
			c := s.g.MatchCount(s.assign.Apply(p))
			if c == 0 {
				return true
			}
			if best == -1 || c < bestCount {
				best, bestCount = i, c
				if c == 1 {
					break
				}
			}
		}
		p := s.assign.Apply(s.pats[best])
		s.done[best] = true
		defer func() { s.done[best] = false }()
		for _, t := range s.g.Match(p) {
			newVars := bindMatch(p, t, s.assign)
			if !rec(remaining - 1) {
				return false
			}
			for _, v := range newVars {
				delete(s.assign, v)
			}
		}
		return true
	}
	rec(len(s.pats))
	return nodes
}
