package hom

import (
	"wdsparql/internal/rdf"
)

// This file contains ablation variants of the homomorphism solver,
// kept separate from the production path. They quantify the value of
// the fail-first pattern-selection heuristic in the benchmark suite
// (DESIGN.md, ablation benches); production code should use Exists and
// friends.

// ExistsStaticOrder is Exists with the fail-first heuristic disabled:
// patterns are expanded in their given (sorted) order regardless of
// how many matches they admit. Worst-case behaviour is identical; on
// structured instances the ordering heuristic typically wins by large
// factors.
func ExistsStaticOrder(pats []rdf.Triple, g *rdf.Graph) bool {
	assign := rdf.NewMapping()
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(pats) {
			return true
		}
		p := assign.Apply(pats[i])
		for _, t := range g.Match(p) {
			newVars := bindMatch(p, t, assign)
			if rec(i + 1) {
				return true
			}
			for _, v := range newVars {
				delete(assign, v)
			}
		}
		return false
	}
	return rec(0)
}

// bindMatch extends assign with the bindings induced by matching
// pattern p (already µ-substituted) against ground triple t, returning
// the names of newly bound variables for backtracking.
func bindMatch(p, t rdf.Triple, assign rdf.Mapping) []string {
	var newVars []string
	pa, ta := p.Terms(), t.Terms()
	for i := 0; i < 3; i++ {
		if pa[i].IsVar() {
			if _, ok := assign[pa[i].Value]; !ok {
				assign[pa[i].Value] = ta[i].Value
				newVars = append(newVars, pa[i].Value)
			}
		}
	}
	return newVars
}

// CountSearchNodes runs the production solver and returns the number
// of search-tree nodes expanded before the first solution (or
// exhaustion); used by the ablation benchmarks to report work rather
// than only wall time.
func CountSearchNodes(pats []rdf.Triple, g *rdf.Graph) (found bool, nodes int) {
	st := newSearch(pats, g, 1)
	st.counting = true
	st.run()
	return len(st.found) > 0, st.nodes
}
