package hom

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"wdsparql/internal/rdf"
)

// collectMode compiles-and-runs nothing itself: it drives an existing
// planned program through one search mode and returns the emitted rows.
func collectMode(p *RowProgram, layout *rdf.SlotLayout, mode SearchMode, stats *SearchStats) []rdf.Row {
	s := p.NewSearcher()
	s.Tune(mode, 0, stats)
	row := layout.NewRow()
	var out []rdf.Row
	s.Run(row, func() bool {
		out = append(out, row.Clone())
		return true
	})
	return out
}

func sortedRows(rows []rdf.Row) []rdf.Row {
	out := slices.Clone(rows)
	slices.SortFunc(out, func(a, b rdf.Row) int {
		return slices.Compare(a, b)
	})
	return out
}

// The mode contract on random instances: ModePlanned reproduces the
// heuristic stream byte for byte with nodes visited ≤, and ModeStrict
// — free to reorder — emits the same row multiset.
func TestSearchModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for c := 0; c < 300; c++ {
		g := randRowGraph(rng)
		pats := randRowPats(rng)
		layout := rdf.NewSlotLayout()
		prog := CompileRowProgramPlanned(pats, g, layout, nil)

		var stH, stP SearchStats
		heur := collectMode(prog, layout, ModeHeuristic, &stH)
		planned := collectMode(prog, layout, ModePlanned, &stP)
		if len(heur) != len(planned) {
			t.Fatalf("case %d: %v: heuristic %d rows, planned %d", c, pats, len(heur), len(planned))
		}
		for i := range heur {
			if !slices.Equal(heur[i], planned[i]) {
				t.Fatalf("case %d: %v: streams diverge at row %d: %v vs %v",
					c, pats, i, heur[i], planned[i])
			}
		}
		if stP.Nodes > stH.Nodes {
			t.Fatalf("case %d: %v: planned visited %d nodes, heuristic %d — complete dead detection cannot expand more",
				c, pats, stP.Nodes, stH.Nodes)
		}

		strict := sortedRows(collectMode(prog, layout, ModeStrict, nil))
		want := sortedRows(heur)
		if len(strict) != len(want) {
			t.Fatalf("case %d: %v: strict %d rows, want %d", c, pats, len(strict), len(want))
		}
		for i := range want {
			if !slices.Equal(strict[i], want[i]) {
				t.Fatalf("case %d: %v: strict multiset differs at %d", c, pats, i)
			}
		}
	}
}

// The memo must be invisible: disabling it changes probe counts, never
// the stream.
func TestCountMemoInvisible(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for c := 0; c < 100; c++ {
		g := randRowGraph(rng)
		pats := randRowPats(rng)
		layout := rdf.NewSlotLayout()
		prog := CompileRowProgramPlanned(pats, g, layout, nil)
		for _, mode := range []SearchMode{ModeHeuristic, ModePlanned, ModeStrict} {
			var stMemo, stRaw SearchStats
			withMemo := collectMode(prog, layout, mode, &stMemo)

			s := prog.NewSearcher()
			s.Tune(mode, 0, &stRaw)
			s.noMemo = true
			row := layout.NewRow()
			var raw []rdf.Row
			s.Run(row, func() bool {
				raw = append(raw, row.Clone())
				return true
			})

			if len(withMemo) != len(raw) {
				t.Fatalf("case %d mode %d: memo %d rows, raw %d", c, mode, len(withMemo), len(raw))
			}
			for i := range raw {
				if !slices.Equal(withMemo[i], raw[i]) {
					t.Fatalf("case %d mode %d: memo changed the stream at row %d", c, mode, i)
				}
			}
			if stMemo.CountProbes > stRaw.CountProbes {
				t.Fatalf("case %d mode %d: memo issued more probes (%d) than no-memo (%d)",
					c, mode, stMemo.CountProbes, stRaw.CountProbes)
			}
		}
	}
}

// Strict mode's adaptive escape hatch: a skewed posting list (one
// subject carrying most of predicate q) breaks the uniform-independence
// estimate, and the node whose actual count exceeds slack × estimate
// must fall back to the full re-score.
func TestStrictEscapeHatch(t *testing.T) {
	g := rdf.NewGraph()
	g.AddTriple("x", "r", "s0")
	// 51 triples under q from s0 plus 50 spread singletons: distinct
	// subjects 51, so the subject-bound estimate is 101/51 ≈ 2 while
	// the actual count at s0 is 51 > DefaultSlack × 2.
	for i := 0; i < 51; i++ {
		g.AddTriple("s0", "q", fmt.Sprintf("o%d", i))
	}
	for i := 1; i <= 50; i++ {
		g.AddTriple(fmt.Sprintf("s%d", i), "q", "o0")
	}
	pats := []rdf.Triple{
		rdf.T(rdf.Var("a"), rdf.IRI("r"), rdf.Var("b")),
		rdf.T(rdf.Var("b"), rdf.IRI("q"), rdf.Var("c")),
	}
	layout := rdf.NewSlotLayout()
	prog := CompileRowProgramPlanned(pats, g, layout, nil)
	if prog.Plan() == nil || prog.Plan().Volatile() {
		t.Fatal("chain program must carry a non-volatile plan")
	}
	var st SearchStats
	rows := collectMode(prog, layout, ModeStrict, &st)
	if len(rows) != 51 {
		t.Fatalf("got %d rows, want 51", len(rows))
	}
	if st.Rescored == 0 {
		t.Fatal("skewed count never triggered the strict-mode re-score")
	}
}

// Volatile (cyclic) plans keep the full re-score in strict mode, which
// makes the strict stream byte-identical to the heuristic one — the
// argmin choice is the same on every live node.
func TestStrictVolatileFallsBackToScored(t *testing.T) {
	g := rdf.NewGraph()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		g.AddTriple(fmt.Sprintf("v%d", rng.Intn(20)), "p", fmt.Sprintf("v%d", rng.Intn(20)))
	}
	pats := []rdf.Triple{
		rdf.T(rdf.Var("a"), rdf.IRI("p"), rdf.Var("b")),
		rdf.T(rdf.Var("b"), rdf.IRI("p"), rdf.Var("c")),
		rdf.T(rdf.Var("c"), rdf.IRI("p"), rdf.Var("a")),
	}
	layout := rdf.NewSlotLayout()
	prog := CompileRowProgramPlanned(pats, g, layout, nil)
	if prog.Plan() == nil || !prog.Plan().Volatile() {
		t.Fatal("triangle program must carry a volatile plan")
	}
	heur := collectMode(prog, layout, ModeHeuristic, nil)
	strict := collectMode(prog, layout, ModeStrict, nil)
	if len(heur) != len(strict) {
		t.Fatalf("strict %d rows, heuristic %d", len(strict), len(heur))
	}
	for i := range heur {
		if !slices.Equal(heur[i], strict[i]) {
			t.Fatalf("volatile strict stream diverges at row %d", i)
		}
	}
}

// BenchmarkPickPattern isolates the selection loop's per-pattern count
// memo on the shape that exposes the original hot-loop waste: a star
// query, where the last star arm's substitution is fixed the moment
// the shared subject binds, yet the pre-memo scan re-probed its count
// at every node of the sibling arm's enumeration. Runs on the map
// backend (hash-lookup counts) and the frozen backend (binary-search
// counts, where each skipped re-probe pays more).
func BenchmarkPickPattern(b *testing.B) {
	mg := rdf.NewGraph()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2048; i++ {
		for _, p := range []string{"p0", "p1", "p2"} {
			mg.AddTriple(fmt.Sprintf("v%d", rng.Intn(256)), p, fmt.Sprintf("w%d", rng.Intn(256)))
		}
	}
	pats := []rdf.Triple{
		rdf.T(rdf.Var("a"), rdf.IRI("p0"), rdf.Var("b")),
		rdf.T(rdf.Var("a"), rdf.IRI("p1"), rdf.Var("c")),
		rdf.T(rdf.Var("a"), rdf.IRI("p2"), rdf.Var("d")),
	}
	for _, backend := range []struct {
		name string
		g    *rdf.Graph
	}{{"map", mg}, {"frozen", mg.Clone().Freeze()}} {
		layout := rdf.NewSlotLayout()
		prog := CompileRowProgramPlanned(pats, backend.g, layout, nil)
		for _, cfg := range []struct {
			name   string
			mode   SearchMode
			noMemo bool
		}{
			{"heuristic/memo", ModeHeuristic, false},
			{"heuristic/nomemo", ModeHeuristic, true},
			{"strict/memo", ModeStrict, false},
			{"strict/nomemo", ModeStrict, true},
		} {
			b.Run(backend.name+"/"+cfg.name, func(b *testing.B) {
				row := layout.NewRow()
				for i := 0; i < b.N; i++ {
					s := prog.NewSearcher()
					s.Tune(cfg.mode, 0, nil)
					s.noMemo = cfg.noMemo
					n := 0
					s.Run(row, func() bool { n++; return true })
				}
			})
		}
	}
}
