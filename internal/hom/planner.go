package hom

// Planner integration: the compile-time join order (internal/plan)
// threaded into the row-native searcher, plus the runtime policies
// that consume it.
//
// The determinism contract is the heart of this file. The engine-wide
// invariant — every backend, every execution strategy yields the same
// row stream, content AND order — extends to the planner: turning it
// on or off must be unobservable in any ordered stream. Literally
// following a precomputed pattern order cannot satisfy that (swapping
// the nesting order of two patterns with disjoint variables permutes
// the emitted rows), so the searcher offers three modes:
//
//   - ModeHeuristic: the original per-node fail-first scan, byte
//     identical to the pre-planner engine. The memo below makes it
//     cheaper without changing a single choice.
//   - ModePlanned: same fail-first argmin, but the scan always covers
//     every remaining pattern instead of stopping at the first
//     count-1 pattern. On live branches every count is ≥ 1, and 1 is
//     the global minimum, so the first count-1 pattern in index order
//     IS the argmin under the lowest-index tie-break — the chosen
//     pattern is identical to ModeHeuristic at every live node, and
//     the yielded stream is byte-identical by construction. What the
//     full scan adds is complete dead detection: the heuristic's
//     early break can miss a remaining pattern whose count is already
//     zero and descend into a doomed (row-less) subtree; ModePlanned
//     prunes it at the parent. Nodes visited: planned ≤ heuristic,
//     streams equal. This is the mode ordered executions run with
//     when the planner is on.
//   - ModeStrict: follow the compiled plan order literally — one
//     memoized count probe per node (the chosen pattern's, which
//     doubles as the dead check) instead of a scan over all remaining
//     patterns, with an adaptive escape hatch: when the actual count
//     exceeds the plan's estimate by more than the slack factor, the
//     node falls back to the full fail-first re-score, so
//     pathological estimates keep today's behaviour. Strict mode may
//     reorder the emitted rows, so the engine uses it only for
//     order-free executions (Count), where the result — a cardinality
//     over a content-keyed solution set — is invariant under
//     enumeration order, including Limit/Offset windowing
//     (min(limit, max(0, total-offset)) does not depend on which rows
//     fill the window).
//
// All three modes pick deterministically (index order scans, plan
// order, no map iteration), so SplitTop/RunOn re-derive the same
// choice on every split — provided one execution uses one mode for
// all its searchers, which the core enumeration guarantees.

import (
	"fmt"
	"strings"

	"wdsparql/internal/plan"
	"wdsparql/internal/rdf"
)

// SearchMode selects the pattern-selection policy of a RowSearcher.
// The zero value is the pre-planner heuristic.
type SearchMode uint8

const (
	// ModeHeuristic is the per-node fail-first scan with the early
	// break on count-1 patterns — the engine's original policy.
	ModeHeuristic SearchMode = iota
	// ModePlanned is fail-first with complete dead detection; stream
	// byte-identical to ModeHeuristic, nodes visited ≤.
	ModePlanned
	// ModeStrict follows the compiled plan order with one count probe
	// per node and the adaptive escape hatch; volatile (cyclic) plans
	// keep the full re-score (see plan.Plan.Volatile). Order-free
	// executions only.
	ModeStrict
)

// DefaultSlack is the strict-mode divergence factor: a node re-scores
// when the actual candidate count exceeds slack × max(1, estimate).
const DefaultSlack = 16

// SearchStats aggregates search-effort counters across the Run calls
// of the searchers it is attached to (see RowSearcher.Tune). Counters
// are plain ints: attach stats to sequential executions only.
type SearchStats struct {
	Nodes        int64 // search nodes expanded (rec calls below the root)
	CountProbes  int64 // MatchCountID probes issued by pattern selection
	MemoHits     int64 // selection counts served from the memo
	Rescored     int64 // strict-mode nodes that fell back to a full re-score
	FilterPruned int64 // candidate bindings cut by a pushed filter before recursion
}

// countMemo caches the last selection count of one pattern, keyed on
// the substituted pattern itself (bound-slot mask plus values — two
// nodes that substitute the pattern identically share the count). The
// graph is immutable for the searcher's lifetime, so entries never
// expire.
type countMemo struct {
	pat   rdf.IDTriple
	count int
	ok    bool
}

// Tune sets the searcher's pattern-selection mode, strict-mode slack
// factor (≤ 0 selects DefaultSlack) and optional effort counters.
// Must be called before Run/SplitTop/RunOn; a zero-value searcher runs
// ModeHeuristic with no stats.
func (s *RowSearcher) Tune(mode SearchMode, slack int, stats *SearchStats) {
	s.mode = mode
	if slack <= 0 {
		slack = DefaultSlack
	}
	s.slack = float64(slack)
	s.stats = stats
}

// countOf renders pattern i under the current row and returns its
// match count, memoized on the substituted pattern.
func (s *RowSearcher) countOf(i int) (int, rdf.IDTriple) {
	p := s.substituteRow(i)
	if !s.noMemo {
		if m := &s.memo[i]; m.ok && m.pat == p {
			if s.stats != nil {
				s.stats.MemoHits++
			}
			return m.count, p
		}
	}
	c := s.prog.g.MatchCountID(p)
	if !s.noMemo {
		s.memo[i] = countMemo{pat: p, count: c, ok: true}
	}
	if s.stats != nil {
		s.stats.CountProbes++
	}
	return c, p
}

// pickScored is the fail-first argmin over every remaining pattern
// (lowest index wins ties) with complete dead detection — ModePlanned,
// and the strict mode's escape hatch.
func (s *RowSearcher) pickScored() (best int, bestPat rdf.IDTriple, dead bool) {
	best, bestCount := -1, -1
	for i := range s.prog.pats {
		if s.done[i] {
			continue
		}
		c, p := s.countOf(i)
		if c == 0 {
			return -1, rdf.IDTriple{}, true
		}
		if best == -1 || c < bestCount {
			best, bestCount, bestPat = i, c, p
		}
	}
	return best, bestPat, false
}

// pickStrict follows the plan order: the first remaining pattern in
// the compiled order is the choice, its (memoized) count the dead
// check, and the plan's estimate the divergence baseline. Programs
// compiled without a plan fall back to the full re-score, and so do
// volatile (cyclic) plans: there a branch can die on a pattern the
// static order reaches late, so the single-probe dead check would
// expand doomed subtrees the scan prunes at the parent — the planner
// decides at compile time that full re-scoring is the cheaper policy.
func (s *RowSearcher) pickStrict() (int, rdf.IDTriple, bool) {
	pl := s.prog.plan
	if pl == nil || pl.Volatile() {
		return s.pickScored()
	}
	for _, i := range pl.Order() {
		if s.done[i] {
			continue
		}
		c, p := s.countOf(i)
		if c == 0 {
			return -1, rdf.IDTriple{}, true
		}
		if float64(c) > s.slack*max(1, pl.Est(i)) {
			if s.stats != nil {
				s.stats.Rescored++
			}
			return s.pickScored()
		}
		return i, p, false
	}
	return -1, rdf.IDTriple{}, true // rec stops at remaining==0 first
}

// CompileRowProgramPlanned compiles the patterns like CompileRowProgram
// and additionally builds the compile-time join order off the graph's
// selectivity catalog. entry lists the layout slots that are bound
// before any search of this program starts (the ancestor variables of
// a wdPT node); the planner costs patterns touching them as
// pre-bound. Programs with an absent constant skip planning — they
// have no matches to order.
func CompileRowProgramPlanned(pats []rdf.Triple, g *rdf.Graph, layout *rdf.SlotLayout, entry []int32) *RowProgram {
	p := CompileRowProgram(pats, g, layout)
	p.BuildPlan(entry)
	return p
}

// Plan returns the compiled join order, nil when the program was
// compiled without planning (or has nothing to plan).
func (p *RowProgram) Plan() *plan.Plan { return p.plan }

// NumPatterns returns the number of compiled patterns.
func (p *RowProgram) NumPatterns() int { return len(p.pats) }

// RenderPattern renders compiled pattern i back to SPARQL-ish text
// ("?x <knows> ?y") for explain output.
func (p *RowProgram) RenderPattern(i int, layout *rdf.SlotLayout) string {
	dict := p.g.Dict()
	var b strings.Builder
	for pos, c := range p.pats[i].code {
		if pos > 0 {
			b.WriteByte(' ')
		}
		if c >= 0 {
			fmt.Fprintf(&b, "?%s", layout.Name(int(c)))
		} else {
			b.WriteString(dict.StringOf(rdf.TermID(^c)))
		}
	}
	return b.String()
}
