package hom

import (
	"math/rand"
	"testing"

	"wdsparql/internal/rdf"
)

// The row-native solver must agree exactly with the string solver: for
// random patterns over random graphs, FindAllID decoded equals
// FindAll, and FindAllExtendingID respects base-row bindings the way
// FindExtending respects µ.

func randRowGraph(rng *rand.Rand) *rdf.Graph {
	g := rdf.NewGraph()
	nodes := []string{"a", "b", "c", "d", "e"}
	preds := []string{"p", "q"}
	n := 5 + rng.Intn(10)
	for i := 0; i < n; i++ {
		g.AddTriple(nodes[rng.Intn(len(nodes))], preds[rng.Intn(len(preds))], nodes[rng.Intn(len(nodes))])
	}
	return g
}

func randRowPats(rng *rand.Rand) []rdf.Triple {
	vars := []rdf.Term{rdf.Var("x"), rdf.Var("y"), rdf.Var("z")}
	iris := []rdf.Term{rdf.IRI("a"), rdf.IRI("b")}
	preds := []rdf.Term{rdf.IRI("p"), rdf.IRI("q")}
	so := func() rdf.Term {
		if rng.Intn(4) == 0 {
			return iris[rng.Intn(len(iris))]
		}
		return vars[rng.Intn(len(vars))]
	}
	n := 1 + rng.Intn(3)
	out := make([]rdf.Triple, n)
	for i := range out {
		out[i] = rdf.T(so(), preds[rng.Intn(len(preds))], so())
	}
	return out
}

func TestFindAllIDAgreesWithFindAll(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for c := 0; c < 200; c++ {
		g := randRowGraph(rng)
		pats := randRowPats(rng)
		want := FindAll(pats, g, 0)
		layout := rdf.NewSlotLayout()
		rows := FindAllID(pats, g, layout, 0)
		if len(rows) != len(want) {
			t.Fatalf("case %d: %v: %d rows, %d mappings", c, pats, len(rows), len(want))
		}
		seen := rdf.NewMappingSet()
		for _, m := range want {
			seen.Add(m)
		}
		for _, r := range rows {
			m := layout.DecodeRow(g.Dict(), r)
			if !seen.Contains(m) {
				t.Fatalf("case %d: row decodes to non-solution %s", c, m)
			}
		}
	}
}

func TestFindAllIDLimit(t *testing.T) {
	g := rdf.NewGraph()
	for _, s := range []string{"a", "b", "c", "d"} {
		g.AddTriple(s, "p", s)
	}
	pats := []rdf.Triple{rdf.T(rdf.Var("x"), rdf.IRI("p"), rdf.Var("x"))}
	layout := rdf.NewSlotLayout()
	rows := FindAllID(pats, g, layout, 2)
	if len(rows) != 2 {
		t.Fatalf("limit 2 returned %d rows", len(rows))
	}
}

func TestFindAllExtendingID(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for c := 0; c < 200; c++ {
		g := randRowGraph(rng)
		pats := randRowPats(rng)
		layout := rdf.NewSlotLayout()
		full := FindAllID(pats, g, layout, 0)
		if len(full) == 0 {
			continue
		}
		// Use the first solution's binding of its first bound slot as µ.
		base := layout.NewRow()
		pin := -1
		for s, v := range full[0] {
			if v != rdf.Unbound {
				base[s] = v
				pin = s
				break
			}
		}
		if pin < 0 {
			continue
		}
		got := FindAllExtendingID(pats, g, layout, base, 0)
		// Reference: every full solution whose pin slot matches.
		wantN := 0
		for _, r := range full {
			if r[pin] == base[pin] {
				wantN++
			}
		}
		if len(got) != wantN {
			t.Fatalf("case %d: extending rows %d, want %d", c, len(got), wantN)
		}
		for _, r := range got {
			if r[pin] != base[pin] {
				t.Fatalf("case %d: extension dropped base binding", c)
			}
		}
	}
}

// The base row must be restored exactly after Run, including on early
// termination.
func TestRowSearcherRestoresRow(t *testing.T) {
	g := rdf.NewGraph()
	for _, s := range []string{"a", "b", "c"} {
		g.AddTriple(s, "p", "b")
	}
	layout := rdf.NewSlotLayout()
	prog := CompileRowProgram([]rdf.Triple{rdf.T(rdf.Var("x"), rdf.IRI("p"), rdf.Var("y"))}, g, layout)
	row := layout.NewRow()
	id, _ := g.Dict().LookupIRI("b")
	ySlot, _ := layout.Slot("y")
	row[ySlot] = id
	s := prog.NewSearcher()
	n := 0
	s.Run(row, func() bool { n++; return n < 2 }) // stop early
	if n != 2 {
		t.Fatalf("yields: %d", n)
	}
	xSlot, _ := layout.Slot("x")
	if row[xSlot] != rdf.Unbound || row[ySlot] != id {
		t.Fatalf("row not restored: %v", row)
	}
}
