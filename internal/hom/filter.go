package hom

import (
	"sort"

	"wdsparql/internal/plan"
	"wdsparql/internal/rdf"
)

// Filter pushdown: compiled FILTER conjuncts evaluated inside the
// row-native search at the earliest moment every slot they mention is
// bound, pruning the subtree below a failing binding before it is
// explored. The stream contract is preserved exactly: a pushed filter
// only *skips* candidate bindings Run would otherwise descend into —
// pattern selection (which counts graph matches, not filtered
// matches) and candidate order are untouched — so Run with pushed
// filters emits precisely the subsequence of the unfiltered stream
// whose rows satisfy the filters, in the same order. SplitTop/RunOn
// inherit the property: the same filters are seeded at every entry
// point, so parallel streams stay byte-identical to sequential ones.
//
// The caller (internal/core) is responsible for attaching only *local*
// conjuncts: every slot of an attached filter must be an entry slot
// (bound before Run starts) or a variable of some compiled pattern.
// Under that contract every attached filter is fully bound by the time
// a complete match is yielded, so no yielded row escapes its filters.

// FilterOp identifies a compiled filter node.
type FilterOp uint8

const (
	// FOpEq compares its two operands for equality.
	FOpEq FilterOp = iota
	// FOpNe compares its two operands for inequality.
	FOpNe
	// FOpBound tests whether slot A is bound. It never errors.
	FOpBound
	// FOpAnd is three-valued conjunction of X and Y.
	FOpAnd
	// FOpOr is three-valued disjunction of X and Y.
	FOpOr
	// FOpNot is three-valued negation of X.
	FOpNot
	// FOpTrue is the constant true (compile-time folded comparisons).
	FOpTrue
	// FOpFalse is the constant false.
	FOpFalse
)

// Tri is a three-valued truth value mirroring SPARQL's true / false /
// error, kept separate from internal/sparql so this package stays a
// pure slot-level backend.
type Tri int8

const (
	// TriFalse is boolean false.
	TriFalse Tri = iota
	// TriTrue is boolean true; the only value that keeps a row.
	TriTrue
	// TriErr is the error produced by comparing an unbound slot.
	TriErr
)

// FilterExpr is a compiled filter over layout slots. Comparison
// operands are either a slot (ASlot/BSlot ≥ 0) or a constant TermID
// (slot = -1); a constant of rdf.Unbound encodes an IRI outside the
// graph's dictionary, which compares unequal to every bound value.
// Constant-vs-constant comparisons must be folded to FOpTrue/FOpFalse
// by the compiler (two distinct out-of-dictionary IRIs would otherwise
// compare equal). Immutable after construction and safe for concurrent
// Eval.
type FilterExpr struct {
	Op           FilterOp
	ASlot, BSlot int32
	AConst       rdf.TermID
	BConst       rdf.TermID
	X, Y         *FilterExpr // operands of And/Or (Y nil for Not)
}

// Eval evaluates the filter against a row under the three-valued
// semantics: a comparison on an unbound slot errors, BOUND never
// errors, AND(false, err) = false, OR(true, err) = true, NOT err =
// err.
func (f *FilterExpr) Eval(row rdf.Row) Tri {
	switch f.Op {
	case FOpEq, FOpNe:
		a := f.AConst
		if f.ASlot >= 0 {
			if a = row[f.ASlot]; a == rdf.Unbound {
				return TriErr
			}
		}
		b := f.BConst
		if f.BSlot >= 0 {
			if b = row[f.BSlot]; b == rdf.Unbound {
				return TriErr
			}
		}
		if (a == b) != (f.Op == FOpNe) {
			return TriTrue
		}
		return TriFalse
	case FOpBound:
		if row[f.ASlot] != rdf.Unbound {
			return TriTrue
		}
		return TriFalse
	case FOpAnd:
		l, r := f.X.Eval(row), f.Y.Eval(row)
		if l == TriFalse || r == TriFalse {
			return TriFalse
		}
		if l == TriErr || r == TriErr {
			return TriErr
		}
		return TriTrue
	case FOpOr:
		l, r := f.X.Eval(row), f.Y.Eval(row)
		if l == TriTrue || r == TriTrue {
			return TriTrue
		}
		if l == TriErr || r == TriErr {
			return TriErr
		}
		return TriFalse
	case FOpNot:
		switch f.X.Eval(row) {
		case TriTrue:
			return TriFalse
		case TriFalse:
			return TriTrue
		}
		return TriErr
	case FOpTrue:
		return TriTrue
	}
	return TriFalse // FOpFalse
}

// Slots returns the sorted set of slots the filter reads.
func (f *FilterExpr) Slots() []int32 {
	seen := map[int32]bool{}
	var out []int32
	var walk func(e *FilterExpr)
	walk = func(e *FilterExpr) {
		switch e.Op {
		case FOpEq, FOpNe:
			for _, s := range [2]int32{e.ASlot, e.BSlot} {
				if s >= 0 && !seen[s] {
					seen[s] = true
					out = append(out, s)
				}
			}
		case FOpBound:
			if !seen[e.ASlot] {
				seen[e.ASlot] = true
				out = append(out, e.ASlot)
			}
		case FOpAnd, FOpOr:
			walk(e.X)
			walk(e.Y)
		case FOpNot:
			walk(e.X)
		}
	}
	walk(f)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// progFilter is one attached filter plus its precomputed slot set.
type progFilter struct {
	expr  *FilterExpr
	slots []int32
}

// AttachFilter attaches a compiled filter conjunct to the program, to
// be evaluated by every searcher at the earliest point all its slots
// are bound. Must be called before NewSearcher and before BuildPlan
// (attached equality-with-constant filters sharpen the plan's
// selectivity estimates). The locality contract is the caller's: every
// slot must be an entry slot or a pattern variable of this program.
func (p *RowProgram) AttachFilter(f *FilterExpr) {
	slots := f.Slots()
	for _, s := range slots {
		if int(s)+1 > p.width {
			p.width = int(s) + 1
		}
	}
	p.filters = append(p.filters, progFilter{expr: f, slots: slots})
}

// NumFilters returns the number of attached filter conjuncts.
func (p *RowProgram) NumFilters() int { return len(p.filters) }

// restrictedSlots returns the slots pinned to a single value by an
// attached top-level equality against a constant — the planner treats
// them as pre-bound when costing join orders, because the pushdown
// prunes every other value the moment the slot binds.
func (p *RowProgram) restrictedSlots() []int32 {
	var out []int32
	for _, f := range p.filters {
		e := f.expr
		if e.Op != FOpEq {
			continue
		}
		if e.ASlot >= 0 && e.BSlot < 0 {
			out = append(out, e.ASlot)
		} else if e.BSlot >= 0 && e.ASlot < 0 {
			out = append(out, e.BSlot)
		}
	}
	return out
}

// BuildPlan builds the compile-time join order off the graph's
// selectivity catalog, like CompileRowProgramPlanned, but after any
// AttachFilter calls — so equality-restricted slots feed the
// estimates. entry lists the slots bound before any search starts.
func (p *RowProgram) BuildPlan(entry []int32) {
	if p.absent || len(p.pats) == 0 {
		return
	}
	pp := make([]plan.Pattern, len(p.pats))
	for i, cp := range p.pats {
		pp[i] = plan.Pattern{Code: cp.code}
	}
	p.plan = plan.CompileWithRestrictions(pp, p.g, entry, p.restrictedSlots())
}

// initFilterScratch sizes the searcher's filter scratch: the per-filter
// count of still-unbound slots and, per slot, the filters watching it.
func (s *RowSearcher) initFilterScratch() {
	p := s.prog
	if len(p.filters) == 0 {
		return
	}
	s.fRemaining = make([]int32, len(p.filters))
	s.fWatch = make([][]int32, p.width)
	for fi, f := range p.filters {
		for _, slot := range f.slots {
			s.fWatch[slot] = append(s.fWatch[slot], int32(fi))
		}
	}
}

// seedFilters counts each filter's unbound slots under the entry row
// and evaluates the already-complete ones. It reports false when a
// complete filter fails — the whole search is then an empty stream.
func (s *RowSearcher) seedFilters(assign rdf.Row) bool {
	if s.fRemaining == nil {
		return true
	}
	for fi := range s.prog.filters {
		f := &s.prog.filters[fi]
		var rem int32
		for _, slot := range f.slots {
			if assign[slot] == rdf.Unbound {
				rem++
			}
		}
		s.fRemaining[fi] = rem
		if rem == 0 && f.expr.Eval(assign) != TriTrue {
			return false
		}
	}
	return true
}
