package hom

import (
	"math/rand"
	"testing"

	"wdsparql/internal/rdf"
)

// ExistsAC must agree with Exists everywhere; ComputeDomains must
// never prune a value that participates in a solution.

func TestQuickExistsACAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 400; trial++ {
		pats, g := randTinyInstance(rng)
		want := Exists(pats, g)
		if got := ExistsAC(pats, g); got != want {
			t.Fatalf("trial %d: AC=%v plain=%v\npats=%v\nG=%s",
				trial, got, want, pats, rdf.FormatGraph(g))
		}
	}
}

func TestQuickDomainsPreserveSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	for trial := 0; trial < 250; trial++ {
		pats, g := randTinyInstance(rng)
		dom, ok := ComputeDomains(pats, g)
		sols := FindAll(pats, g, 0)
		if len(sols) > 0 && !ok {
			t.Fatalf("trial %d: AC refuted a satisfiable instance", trial)
		}
		for _, mu := range sols {
			for v, val := range mu {
				if d, has := dom[v]; has && !d[val] {
					t.Fatalf("trial %d: AC pruned solution value %s=%s\npats=%v\nG=%s",
						trial, v, val, pats, rdf.FormatGraph(g))
				}
			}
		}
	}
}

func TestComputeDomainsGroundFailure(t *testing.T) {
	g := rdf.GraphOf(rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")))
	// Pattern containing a false ground triple plus a variable one.
	pats := []rdf.Triple{
		rdf.T(rdf.IRI("x"), rdf.IRI("p"), rdf.IRI("y")),
		rdf.T(rdf.Var("v"), rdf.IRI("p"), rdf.Var("w")),
	}
	if _, ok := ComputeDomains(pats, g); ok {
		t.Fatal("false ground triple must refute")
	}
	if ExistsAC(pats, g) {
		t.Fatal("ExistsAC must refute")
	}
}

func TestComputeDomainsPrunesChain(t *testing.T) {
	// Chain ?a -p-> ?b -p-> ?c over a path a->b->c: AC should pin the
	// middle variable to b.
	g := rdf.GraphOf(
		rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")),
		rdf.T(rdf.IRI("b"), rdf.IRI("p"), rdf.IRI("c")),
	)
	pats := []rdf.Triple{
		rdf.T(rdf.Var("a"), rdf.IRI("p"), rdf.Var("b")),
		rdf.T(rdf.Var("b"), rdf.IRI("p"), rdf.Var("c")),
	}
	dom, ok := ComputeDomains(pats, g)
	if !ok {
		t.Fatal("satisfiable")
	}
	if len(dom["b"]) != 1 || !dom["b"]["b"] {
		t.Fatalf("middle variable domain: %v", dom["b"])
	}
	if len(dom["a"]) != 1 || !dom["a"]["a"] {
		t.Fatalf("first variable domain: %v", dom["a"])
	}
}
