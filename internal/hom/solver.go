package hom

import (
	"wdsparql/internal/rdf"
)

// This file implements homomorphism search from a set of triple
// patterns into an RDF graph as a backtracking join: at every step the
// remaining pattern with the fewest matches under the current partial
// assignment is expanded (a fail-first / most-constrained-first
// heuristic), and its matches drive the branching.
//
// Deciding the existence of a homomorphism is NP-complete in general
// (Chandra–Merlin); this solver is the exact (exponential worst-case)
// procedure that the paper's "natural algorithm" for wdPF evaluation
// relies on, and the baseline that the existential-pebble-game
// relaxation of internal/pebble is compared against.

// Exists reports whether there is a homomorphism h with
// dom(h) = vars(pats) such that h(t) ∈ g for every t ∈ pats.
// IRIs map to themselves; an empty pattern set admits the empty
// homomorphism.
func Exists(pats []rdf.Triple, g *rdf.Graph) bool {
	_, ok := Find(pats, g)
	return ok
}

// ExistsExtending reports whether there is a homomorphism from pats to
// g that extends µ, i.e. the paper's (S, dom(µ)) →µ G. It first
// applies µ to the patterns and then searches for the remaining
// variables.
func ExistsExtending(pats []rdf.Triple, mu rdf.Mapping, g *rdf.Graph) bool {
	return Exists(mu.ApplyAll(pats), g)
}

// Find returns a homomorphism from pats to g if one exists. The
// returned mapping binds exactly vars(pats).
func Find(pats []rdf.Triple, g *rdf.Graph) (rdf.Mapping, bool) {
	st := newSearch(pats, g, 1)
	st.run()
	if len(st.found) == 0 {
		return nil, false
	}
	return st.found[0], true
}

// FindAll returns all homomorphisms from pats to g, up to limit
// (limit ≤ 0 means no limit). The result contains no duplicates.
func FindAll(pats []rdf.Triple, g *rdf.Graph, limit int) []rdf.Mapping {
	st := newSearch(pats, g, limit)
	st.run()
	return st.found
}

// FindExtending returns a homomorphism from pats to g extending µ, if
// any; the returned mapping includes µ's bindings for variables of
// pats that µ binds.
func FindExtending(pats []rdf.Triple, mu rdf.Mapping, g *rdf.Graph) (rdf.Mapping, bool) {
	sub := mu.ApplyAll(pats)
	h, ok := Find(sub, g)
	if !ok {
		return nil, false
	}
	// Re-attach the bindings of µ that concern pats.
	for _, v := range rdf.VarsOf(pats) {
		if img, bound := mu.Lookup(v); bound {
			h[v.Value] = img.Value
		}
	}
	return h, true
}

type search struct {
	g      *rdf.Graph
	limit  int
	pats   []rdf.Triple
	done   []bool
	assign rdf.Mapping
	found  []rdf.Mapping
}

func newSearch(pats []rdf.Triple, g *rdf.Graph, limit int) *search {
	return &search{
		g:      g,
		limit:  limit,
		pats:   append([]rdf.Triple{}, pats...),
		done:   make([]bool, len(pats)),
		assign: rdf.NewMapping(),
	}
}

func (s *search) run() {
	s.rec(len(s.pats))
}

// rec expands one remaining pattern; remaining counts patterns not yet
// matched. It returns false when the search should stop (limit hit).
func (s *search) rec(remaining int) bool {
	if remaining == 0 {
		s.found = append(s.found, s.assign.Clone())
		return s.limit <= 0 || len(s.found) < s.limit
	}
	// Pick the remaining pattern with the fewest matches under the
	// current assignment (fail-first).
	best, bestCount := -1, -1
	for i, p := range s.pats {
		if s.done[i] {
			continue
		}
		c := s.g.MatchCount(s.assign.Apply(p))
		if c == 0 {
			return true // dead branch; keep searching elsewhere
		}
		if best == -1 || c < bestCount {
			best, bestCount = i, c
			if c == 1 {
				break
			}
		}
	}
	p := s.assign.Apply(s.pats[best])
	s.done[best] = true
	defer func() { s.done[best] = false }()
	for _, t := range s.g.Match(p) {
		newVars := bindMatch(p, t, s.assign)
		if !s.rec(remaining - 1) {
			return false
		}
		for _, v := range newVars {
			delete(s.assign, v)
		}
	}
	return true
}

// bindMatch extends assign with the bindings induced by matching
// pattern p (already µ-substituted) against ground triple t, returning
// the names of newly bound variables for backtracking.
func bindMatch(p, t rdf.Triple, assign rdf.Mapping) []string {
	var newVars []string
	pa, ta := p.Terms(), t.Terms()
	for i := 0; i < 3; i++ {
		if pa[i].IsVar() {
			if _, ok := assign[pa[i].Value]; !ok {
				assign[pa[i].Value] = ta[i].Value
				newVars = append(newVars, pa[i].Value)
			}
		}
	}
	return newVars
}

// Hom reports whether (from) → (to) holds for generalised t-graphs
// sharing the distinguished set X: a homomorphism from from.S to to.S
// that fixes every variable of from.X (Section 3 of the paper).
func Hom(from, to GTGraph) bool {
	return Exists(freezeSource(from), Freeze(to.S))
}

// FindHom returns a witnessing homomorphism for (from) → (to) as a
// partial function from the variables of from.S to terms of to.S.
// Distinguished variables are included, mapped to themselves.
func FindHom(from, to GTGraph) (map[rdf.Term]rdf.Term, bool) {
	h, ok := Find(freezeSource(from), Freeze(to.S))
	if !ok {
		return nil, false
	}
	out := map[rdf.Term]rdf.Term{}
	for _, v := range from.S.Vars() {
		if from.IsDistinguished(v) {
			out[v] = v
			continue
		}
		img, bound := h.Lookup(v)
		if !bound {
			// Variable absent from the frozen search (cannot happen
			// for vars(S), every variable occurs in a triple).
			out[v] = v
			continue
		}
		out[v] = ThawTerm(img)
	}
	return out, true
}

// HomTo reports (from) →µ G: a homomorphism from from.S to the RDF
// graph g mapping each x ∈ from.X to µ(x). µ must bind exactly the
// distinguished variables (extra bindings are ignored, missing ones
// make the test fail unless the variable does not occur).
func HomTo(from GTGraph, mu rdf.Mapping, g *rdf.Graph) bool {
	for _, x := range from.X {
		if !mu.Defined(x) {
			return false
		}
	}
	return ExistsExtending(from.S, mu, g)
}

// Equivalent reports homomorphic equivalence (from) ⇆ (to).
func Equivalent(a, b GTGraph) bool {
	return Hom(a, b) && Hom(b, a)
}
