package hom

import (
	"sort"

	"wdsparql/internal/rdf"
)

// This file implements homomorphism search from a set of triple
// patterns into an RDF graph as a backtracking join: at every step the
// remaining pattern with the fewest matches under the current partial
// assignment is expanded (a fail-first / most-constrained-first
// heuristic), and its matches drive the branching.
//
// The search is integer-native: patterns are compiled once against the
// graph's term dictionary (variables become dense slots, IRIs become
// TermIDs), the partial assignment is a flat []TermID indexed by slot,
// and candidate selection runs on the graph's ID posting lists
// through the LookupRangeID backend seam: on a frozen graph the
// selectivity counts of the fail-first heuristic are O(1) offset
// probes (O(log) for two bound positions) and exact candidate ranges
// skip the per-triple pattern filter entirely. Strings are only
// touched when a found assignment is decoded into an rdf.Mapping.
//
// Deciding the existence of a homomorphism is NP-complete in general
// (Chandra–Merlin); this solver is the exact (exponential worst-case)
// procedure that the paper's "natural algorithm" for wdPF evaluation
// relies on, and the baseline that the existential-pebble-game
// relaxation of internal/pebble is compared against.

// Exists reports whether there is a homomorphism h with
// dom(h) = vars(pats) such that h(t) ∈ g for every t ∈ pats.
// IRIs map to themselves; an empty pattern set admits the empty
// homomorphism.
func Exists(pats []rdf.Triple, g *rdf.Graph) bool {
	_, ok := Find(pats, g)
	return ok
}

// ExistsExtending reports whether there is a homomorphism from pats to
// g that extends µ, i.e. the paper's (S, dom(µ)) →µ G. It first
// applies µ to the patterns and then searches for the remaining
// variables.
func ExistsExtending(pats []rdf.Triple, mu rdf.Mapping, g *rdf.Graph) bool {
	return Exists(mu.ApplyAll(pats), g)
}

// Find returns a homomorphism from pats to g if one exists. The
// returned mapping binds exactly vars(pats).
func Find(pats []rdf.Triple, g *rdf.Graph) (rdf.Mapping, bool) {
	st := newSearch(pats, g, 1)
	st.run()
	if len(st.found) == 0 {
		return nil, false
	}
	return st.found[0], true
}

// FindAll returns all homomorphisms from pats to g, up to limit
// (limit ≤ 0 means no limit). The result contains no duplicates.
func FindAll(pats []rdf.Triple, g *rdf.Graph, limit int) []rdf.Mapping {
	st := newSearch(pats, g, limit)
	st.run()
	return st.found
}

// FindExtending returns a homomorphism from pats to g extending µ, if
// any; the returned mapping includes µ's bindings for variables of
// pats that µ binds.
func FindExtending(pats []rdf.Triple, mu rdf.Mapping, g *rdf.Graph) (rdf.Mapping, bool) {
	sub := mu.ApplyAll(pats)
	h, ok := Find(sub, g)
	if !ok {
		return nil, false
	}
	// Re-attach the bindings of µ that concern pats.
	for _, v := range rdf.VarsOf(pats) {
		if img, bound := mu.Lookup(v); bound {
			h[v.Value] = img.Value
		}
	}
	return h, true
}

// unbound marks an unassigned slot. Slot values are always IRI IDs
// (< rdf.VarIDBase), so any variable-range ID works as the sentinel.
const unbound = ^rdf.TermID(0)

// cpat is a compiled triple pattern: code[i] ≥ 0 is a variable slot,
// code[i] < 0 encodes the IRI TermID ^code[i] (IRI IDs are dense below
// 2³¹ and fit an int32 after complement).
type cpat struct {
	code [3]int32
}

type search struct {
	g        *rdf.Graph
	limit    int
	pats     []cpat
	done     []bool
	varNames []string       // slot → variable name
	assign   []rdf.TermID   // slot → bound IRI ID, or unbound
	bound    []rdf.TermID   // dense stack of currently-bound values
	bufs     [][]scoredCand // per-depth candidate buffers, reused across nodes
	found    []rdf.Mapping
	absent   bool // some pattern constant is not in g: no matches
	counting bool
	nodes    int
}

// scoredCand is a matching candidate triple together with its
// value-ordering score.
type scoredCand struct {
	t     rdf.IDTriple
	score int64
}

// reuseBonus dominates any realistic occurrence count, so candidates
// that reuse values already in the homomorphism image always sort
// before candidates that merely bind well-connected fresh values.
const reuseBonus = int64(1) << 32

func newSearch(pats []rdf.Triple, g *rdf.Graph, limit int) *search {
	s := &search{
		g:     g,
		limit: limit,
		pats:  make([]cpat, len(pats)),
		done:  make([]bool, len(pats)),
	}
	slots := map[string]int32{}
	dict := g.Dict()
	for pi, p := range pats {
		for i, term := range p.Terms() {
			if term.IsVar() {
				slot, ok := slots[term.Value]
				if !ok {
					slot = int32(len(s.varNames))
					slots[term.Value] = slot
					s.varNames = append(s.varNames, term.Value)
				}
				s.pats[pi].code[i] = slot
				continue
			}
			id, ok := dict.LookupIRI(term.Value)
			if !ok {
				s.absent = true
			}
			s.pats[pi].code[i] = ^int32(id)
		}
	}
	s.assign = make([]rdf.TermID, len(s.varNames))
	for i := range s.assign {
		s.assign[i] = unbound
	}
	s.bufs = make([][]scoredCand, len(pats))
	return s
}

// substitute renders pattern i under the current assignment as an
// encoded pattern: bound slots and constants become IRI IDs, unbound
// slots become per-slot variable IDs (so repeated variables stay
// linked).
func (s *search) substitute(i int) rdf.IDTriple {
	var out rdf.IDTriple
	cp := &s.pats[i]
	for pos := 0; pos < 3; pos++ {
		c := cp.code[pos]
		if c < 0 {
			out[pos] = rdf.TermID(^c)
			continue
		}
		if v := s.assign[c]; v != unbound {
			out[pos] = v
		} else {
			out[pos] = rdf.VarID(int(c))
		}
	}
	return out
}

func (s *search) run() {
	if s.absent && len(s.pats) > 0 {
		// A constant of some pattern does not occur in g at all: there
		// are no matches. Count the root node the search would have
		// expanded before failing.
		if s.counting {
			s.nodes++
		}
		return
	}
	s.rec(len(s.pats))
}

// mapping decodes the complete assignment into an rdf.Mapping.
func (s *search) mapping() rdf.Mapping {
	m := make(rdf.Mapping, len(s.varNames))
	dict := s.g.Dict()
	for slot, name := range s.varNames {
		m[name] = dict.StringOf(s.assign[slot])
	}
	return m
}

// rec expands one remaining pattern; remaining counts patterns not yet
// matched. It returns false when the search should stop (limit hit).
func (s *search) rec(remaining int) bool {
	if s.counting {
		s.nodes++
	}
	if remaining == 0 {
		s.found = append(s.found, s.mapping())
		return s.limit <= 0 || len(s.found) < s.limit
	}
	// Pick the remaining pattern with the fewest matches under the
	// current assignment (fail-first). Counts are posting-list lengths
	// for patterns without repeated variables.
	best, bestCount := -1, -1
	var bestPat rdf.IDTriple
	for i := range s.pats {
		if s.done[i] {
			continue
		}
		p := s.substitute(i)
		c := s.g.MatchCountID(p)
		if c == 0 {
			return true // dead branch; keep searching elsewhere
		}
		if best == -1 || c < bestCount {
			best, bestCount, bestPat = i, c, p
			if c == 1 {
				break
			}
		}
	}
	s.done[best] = true
	cp := &s.pats[best]
	// Collect the matching candidates into this depth's reusable
	// buffer, scored for succeed-first value ordering: a large bonus
	// for every newly bound value that is already in the image of the
	// partial homomorphism (or a constant of the pattern) — reusing a
	// value adds no constraints beyond those already checked and steers
	// towards small-image, folding-style homomorphisms — plus the
	// occurrence count of each fresh value (well-connected values are
	// the likeliest to extend; cf. degree ordering in subgraph
	// isomorphism). On refutations the order is irrelevant since the
	// search exhausts the subtree anyway.
	depth := len(s.pats) - remaining
	cands := s.bufs[depth][:0]
	raw, exact := s.g.LookupRangeID(bestPat)
	for _, t := range raw {
		if !exact && !rdf.MatchesPatternID(bestPat, t) {
			continue
		}
		var score int64
		for pos := 0; pos < 3; pos++ {
			if c := cp.code[pos]; c >= 0 && s.assign[c] == unbound {
				if s.inImage(t[pos], bestPat) {
					score += reuseBonus
				}
				score += int64(s.g.OccurrencesID(t[pos]))
			}
		}
		cands = append(cands, scoredCand{t: t, score: score})
	}
	s.bufs[depth] = cands
	if len(cands) > 1 {
		sortCands(cands)
	}
	for _, sc := range cands {
		t := sc.t
		// Bind the slots this match newly determines.
		var newSlots [3]int32
		n := 0
		for pos := 0; pos < 3; pos++ {
			c := cp.code[pos]
			if c >= 0 && s.assign[c] == unbound {
				s.assign[c] = t[pos]
				s.bound = append(s.bound, t[pos])
				newSlots[n] = c
				n++
			}
		}
		more := s.rec(remaining - 1)
		for j := 0; j < n; j++ {
			s.assign[newSlots[j]] = unbound
		}
		s.bound = s.bound[:len(s.bound)-n]
		if !more {
			s.done[best] = false
			return false
		}
	}
	s.done[best] = false
	return true
}

// inImage reports whether the value is already used by the partial
// homomorphism: bound to some slot, or a constant position of the
// pattern being expanded. The scan runs over the dense bound-value
// stack maintained across bind/unbind (see RowSearcher.rowInImage for
// the measurement notes), so its cost tracks the number of bound
// slots, not the full slot count.
func (s *search) inImage(v rdf.TermID, pat rdf.IDTriple) bool {
	for _, a := range s.bound {
		if a == v {
			return true
		}
	}
	for _, p := range pat {
		if p == v {
			return true
		}
	}
	return false
}

// sortCands orders candidates by descending score, ties broken by
// ascending triple ID for determinism. Candidate lists on the chosen
// (most constrained) pattern are typically short, so insertion sort
// wins below a cutoff; larger lists fall back to sort.Slice.
func sortCands(cands []scoredCand) {
	if len(cands) <= 32 {
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && candLess(cands[j], cands[j-1]); j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		return
	}
	sort.Slice(cands, func(i, j int) bool { return candLess(cands[i], cands[j]) })
}

func candLess(a, b scoredCand) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.t.Less(b.t)
}

// Hom reports whether (from) → (to) holds for generalised t-graphs
// sharing the distinguished set X: a homomorphism from from.S to to.S
// that fixes every variable of from.X (Section 3 of the paper).
func Hom(from, to GTGraph) bool {
	return Exists(freezeSource(from), Freeze(to.S))
}

// FindHom returns a witnessing homomorphism for (from) → (to) as a
// partial function from the variables of from.S to terms of to.S.
// Distinguished variables are included, mapped to themselves.
func FindHom(from, to GTGraph) (map[rdf.Term]rdf.Term, bool) {
	h, ok := Find(freezeSource(from), Freeze(to.S))
	if !ok {
		return nil, false
	}
	out := map[rdf.Term]rdf.Term{}
	for _, v := range from.S.Vars() {
		if from.IsDistinguished(v) {
			out[v] = v
			continue
		}
		img, bound := h.Lookup(v)
		if !bound {
			// Variable absent from the frozen search (cannot happen
			// for vars(S), every variable occurs in a triple).
			out[v] = v
			continue
		}
		out[v] = ThawTerm(img)
	}
	return out, true
}

// HomTo reports (from) →µ G: a homomorphism from from.S to the RDF
// graph g mapping each x ∈ from.X to µ(x). µ must bind exactly the
// distinguished variables (extra bindings are ignored, missing ones
// make the test fail unless the variable does not occur).
func HomTo(from GTGraph, mu rdf.Mapping, g *rdf.Graph) bool {
	for _, x := range from.X {
		if !mu.Defined(x) {
			return false
		}
	}
	return ExistsExtending(from.S, mu, g)
}

// Equivalent reports homomorphic equivalence (from) ⇆ (to).
func Equivalent(a, b GTGraph) bool {
	return Hom(a, b) && Hom(b, a)
}
