package hom

import (
	"math/rand"
	"testing"

	"wdsparql/internal/rdf"
)

// Bind-time filter pushdown: a program with attached filters must
// yield exactly the filtered subsequence of the unfiltered stream —
// same rows, same order, never more — while pruning search nodes, and
// the contract must hold through SplitTop/RunOn.

// eqFilter builds ?slot = value.
func eqFilter(slot int32, id rdf.TermID) *FilterExpr {
	return &FilterExpr{Op: FOpEq, ASlot: slot, BSlot: -1, BConst: id}
}

func collectFiltered(p *RowProgram, width int) [][]rdf.TermID {
	var out [][]rdf.TermID
	row := make(rdf.Row, width)
	for i := range row {
		row[i] = rdf.Unbound
	}
	p.NewSearcher().Run(row, func() bool {
		out = append(out, append([]rdf.TermID(nil), row...))
		return true
	})
	return out
}

func TestFilterEvalThreeValued(t *testing.T) {
	row := rdf.Row{5, rdf.Unbound}
	tt := func(f *FilterExpr, want Tri) {
		t.Helper()
		if got := f.Eval(row); got != want {
			t.Fatalf("%v = %v, want %v", f, got, want)
		}
	}
	bound0 := &FilterExpr{Op: FOpBound, ASlot: 0, BSlot: -1}
	bound1 := &FilterExpr{Op: FOpBound, ASlot: 1, BSlot: -1}
	cmpUnbound := eqFilter(1, 5)
	tt(eqFilter(0, 5), TriTrue)
	tt(eqFilter(0, 6), TriFalse)
	tt(cmpUnbound, TriErr)
	tt(bound0, TriTrue)
	tt(bound1, TriFalse)
	tt(&FilterExpr{Op: FOpNot, ASlot: -1, BSlot: -1, X: cmpUnbound}, TriErr)
	// Kleene: false AND err = false; true OR err = true; err AND true = err.
	tt(&FilterExpr{Op: FOpAnd, ASlot: -1, BSlot: -1, X: eqFilter(0, 6), Y: cmpUnbound}, TriFalse)
	tt(&FilterExpr{Op: FOpOr, ASlot: -1, BSlot: -1, X: eqFilter(0, 5), Y: cmpUnbound}, TriTrue)
	tt(&FilterExpr{Op: FOpAnd, ASlot: -1, BSlot: -1, X: cmpUnbound, Y: eqFilter(0, 5)}, TriErr)
	// The absent-constant sentinel compares unequal to every bound value.
	tt(&FilterExpr{Op: FOpEq, ASlot: 0, BSlot: -1, BConst: rdf.Unbound}, TriFalse)
	tt(&FilterExpr{Op: FOpNe, ASlot: 0, BSlot: -1, BConst: rdf.Unbound}, TriTrue)
}

func TestPushdownIsFilteredSubsequence(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for c := 0; c < 150; c++ {
		g := randRowGraph(rng)
		pats := randRowPats(rng)
		layout := rdf.NewSlotLayout()
		plain := CompileRowProgram(pats, g, layout)
		if layout.Width() == 0 {
			continue
		}
		width := plain.Width()
		baseline := collectFiltered(plain, width)

		// Pin a random slot to a random dictionary value.
		slot := int32(rng.Intn(layout.Width()))
		id := rdf.TermID(rng.Intn(g.Dict().NumIRIs()))
		f := eqFilter(slot, id)

		filtered := CompileRowProgram(pats, g, layout)
		filtered.AttachFilter(f)
		stats := &SearchStats{}
		fs := filtered.NewSearcher()
		fs.Tune(ModeHeuristic, 0, stats)
		var got [][]rdf.TermID
		row := make(rdf.Row, filtered.Width())
		for i := range row {
			row[i] = rdf.Unbound
		}
		fs.Run(row, func() bool {
			got = append(got, append([]rdf.TermID(nil), row...))
			return true
		})

		var want [][]rdf.TermID
		for _, r := range baseline {
			if r[slot] == id {
				want = append(want, r)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("case %d: pats %v filter slot %d=%d: got %d rows, want %d",
				c, pats, slot, id, len(got), len(want))
		}
		for i := range got {
			for s := range got[i] {
				if got[i][s] != want[i][s] {
					t.Fatalf("case %d row %d: stream diverged", c, i)
				}
			}
		}
	}
}

func TestPushdownPrunesNodes(t *testing.T) {
	// A chain ?x p ?y, ?y q ?z over a fan-out graph: pinning ?y cuts
	// the subtree under every other ?y binding.
	g := rdf.NewGraph()
	for i := 0; i < 50; i++ {
		g.AddTriple("s", "p", nodeName(i))
		g.AddTriple(nodeName(i), "q", "t")
	}
	layout := rdf.NewSlotLayout()
	pats := []rdf.Triple{
		rdf.T(rdf.Var("x"), rdf.IRI("p"), rdf.Var("y")),
		rdf.T(rdf.Var("y"), rdf.IRI("q"), rdf.Var("z")),
	}
	plain := CompileRowProgram(pats, g, layout)
	base := &SearchStats{}
	s := plain.NewSearcher()
	s.Tune(ModeHeuristic, 0, base)
	row := make(rdf.Row, plain.Width())
	for i := range row {
		row[i] = rdf.Unbound
	}
	n := 0
	s.Run(row, func() bool { n++; return true })
	if n != 50 {
		t.Fatalf("unfiltered rows: %d", n)
	}

	ySlot, _ := layout.Slot("y")
	id, ok := g.Dict().LookupIRI(nodeName(7))
	if !ok {
		t.Fatal("dict lookup")
	}
	filtered := CompileRowProgram(pats, g, layout)
	filtered.AttachFilter(eqFilter(int32(ySlot), id))
	fstats := &SearchStats{}
	fs := filtered.NewSearcher()
	fs.Tune(ModeHeuristic, 0, fstats)
	for i := range row {
		row[i] = rdf.Unbound
	}
	n = 0
	fs.Run(row, func() bool { n++; return true })
	if n != 1 {
		t.Fatalf("filtered rows: %d", n)
	}
	if fstats.FilterPruned == 0 {
		t.Fatal("no candidate was pruned at bind time")
	}
	if fstats.Nodes >= base.Nodes {
		t.Fatalf("pushdown expanded %d nodes, unfiltered %d — no win", fstats.Nodes, base.Nodes)
	}
}

func TestSeedFiltersRejectEntryBound(t *testing.T) {
	g := rdf.NewGraph()
	g.AddTriple("a", "p", "b")
	layout := rdf.NewSlotLayout()
	pats := []rdf.Triple{rdf.T(rdf.Var("x"), rdf.IRI("p"), rdf.Var("y"))}
	prog := CompileRowProgram(pats, g, layout)
	xSlot, _ := layout.Slot("x")
	aID, _ := g.Dict().LookupIRI("a")
	bID, _ := g.Dict().LookupIRI("b")
	prog.AttachFilter(eqFilter(int32(xSlot), bID))

	// Entry row pre-binds ?x = a; the filter ?x = b is complete at
	// seed time and false — the stream must be empty without a single
	// search node.
	row := make(rdf.Row, prog.Width())
	for i := range row {
		row[i] = rdf.Unbound
	}
	row[xSlot] = aID
	stats := &SearchStats{}
	s := prog.NewSearcher()
	s.Tune(ModeHeuristic, 0, stats)
	n := 0
	if !s.Run(row, func() bool { n++; return true }) {
		t.Fatal("Run should report exhaustion")
	}
	if n != 0 || stats.Nodes != 0 {
		t.Fatalf("entry-failing filter: %d rows, %d nodes", n, stats.Nodes)
	}
	// And the row is restored untouched.
	if row[xSlot] != aID {
		t.Fatal("assign mutated")
	}
}

func TestSplitTopPreservesFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for c := 0; c < 100; c++ {
		g := randRowGraph(rng)
		pats := randRowPats(rng)
		layout := rdf.NewSlotLayout()
		prog := CompileRowProgram(pats, g, layout)
		if layout.Width() == 0 {
			continue
		}
		slot := int32(rng.Intn(layout.Width()))
		id := rdf.TermID(rng.Intn(g.Dict().NumIRIs()))
		prog.AttachFilter(eqFilter(slot, id))

		whole := collectFiltered(prog, prog.Width())

		// Split the top level and re-run each candidate stripe.
		row := make(rdf.Row, prog.Width())
		for i := range row {
			row[i] = rdf.Unbound
		}
		cands, ok := prog.NewSearcher().SplitTop(row)
		if !ok {
			// Empty or seed-rejected stream: the whole run must agree.
			if len(whole) != 0 {
				t.Fatalf("case %d: SplitTop empty but Run yielded %d", c, len(whole))
			}
			continue
		}
		var merged [][]rdf.TermID
		for _, cand := range cands {
			s := prog.NewSearcher()
			s.RunOn(row, cand, func() bool {
				merged = append(merged, append([]rdf.TermID(nil), row...))
				return true
			})
		}
		if len(merged) != len(whole) {
			t.Fatalf("case %d: split %d rows vs whole %d", c, len(merged), len(whole))
		}
		for i := range merged {
			for s := range merged[i] {
				if merged[i][s] != whole[i][s] {
					t.Fatalf("case %d: split stream diverged at row %d", c, i)
				}
			}
		}
	}
}

func nodeName(i int) string {
	return string(rune('A'+i/26)) + string(rune('a'+i%26))
}
