package hom

import (
	"testing"

	"wdsparql/internal/rdf"
)

func tp(s, p, o string) rdf.Triple {
	conv := func(x string) rdf.Term {
		if len(x) > 0 && x[0] == '?' {
			return rdf.Var(x)
		}
		return rdf.IRI(x)
	}
	return rdf.T(conv(s), conv(p), conv(o))
}

func TestExistsSimple(t *testing.T) {
	g := rdf.GraphOf(tp("a", "p", "b"), tp("b", "p", "c"))
	if !Exists([]rdf.Triple{tp("?x", "p", "?y"), tp("?y", "p", "?z")}, g) {
		t.Fatal("expected path homomorphism to exist")
	}
	if Exists([]rdf.Triple{tp("?x", "p", "?y"), tp("?y", "p", "?z"), tp("?z", "p", "?w")}, g) {
		t.Fatal("length-3 path should not embed into length-2 path")
	}
}

func TestExistsRepeatedVariable(t *testing.T) {
	g := rdf.GraphOf(tp("a", "p", "b"))
	if Exists([]rdf.Triple{tp("?x", "p", "?x")}, g) {
		t.Fatal("loop pattern should not match non-loop data")
	}
	g.Add(tp("c", "p", "c"))
	if !Exists([]rdf.Triple{tp("?x", "p", "?x")}, g) {
		t.Fatal("loop pattern should match loop")
	}
}

func TestExistsEmptyPattern(t *testing.T) {
	g := rdf.NewGraph()
	if !Exists(nil, g) {
		t.Fatal("empty pattern admits the empty homomorphism")
	}
}

func TestExistsConstants(t *testing.T) {
	g := rdf.GraphOf(tp("a", "p", "b"))
	if !Exists([]rdf.Triple{tp("a", "p", "?y")}, g) {
		t.Fatal("constant subject should match")
	}
	if Exists([]rdf.Triple{tp("b", "p", "?y")}, g) {
		t.Fatal("wrong constant must not match")
	}
}

func TestFindAllCount(t *testing.T) {
	g := rdf.GraphOf(tp("a", "p", "b"), tp("a", "p", "c"), tp("b", "p", "c"))
	all := FindAll([]rdf.Triple{tp("?x", "p", "?y")}, g, 0)
	if len(all) != 3 {
		t.Fatalf("want 3 matches, got %d", len(all))
	}
	limited := FindAll([]rdf.Triple{tp("?x", "p", "?y")}, g, 2)
	if len(limited) != 2 {
		t.Fatalf("want 2 limited matches, got %d", len(limited))
	}
}

func TestExistsExtending(t *testing.T) {
	g := rdf.GraphOf(tp("a", "p", "b"), tp("b", "q", "c"))
	mu := rdf.Mapping{"x": "a"}
	if !ExistsExtending([]rdf.Triple{tp("?x", "p", "?y"), tp("?y", "q", "?z")}, mu, g) {
		t.Fatal("extension should exist")
	}
	mu2 := rdf.Mapping{"x": "b"}
	if ExistsExtending([]rdf.Triple{tp("?x", "p", "?y")}, mu2, g) {
		t.Fatal("no p-edge out of b")
	}
}

func TestHomBetweenTGraphs(t *testing.T) {
	x := []rdf.Term{rdf.Var("x")}
	// (?x, p, ?y) maps into {(?x, p, ?y), (?y, p, ?z)} fixing ?x.
	from := NewGTGraph(NewTGraph(tp("?x", "p", "?y")), x)
	to := NewGTGraph(NewTGraph(tp("?x", "p", "?y"), tp("?y", "p", "?z")), x)
	if !Hom(from, to) {
		t.Fatal("expected hom from smaller to larger")
	}
	if Hom(to, from) {
		t.Fatal("2-path cannot map into a single edge while fixing ?x")
	}
}

func TestHomDistinguishedBlocks(t *testing.T) {
	// Without X, (?a, p, ?b) → (?x, p, ?y) holds; fixing ?a = distinct
	// variable not present in the target must fail.
	from := NewGTGraph(NewTGraph(tp("?a", "p", "?b")), []rdf.Term{rdf.Var("a")})
	to := NewGTGraph(NewTGraph(tp("?x", "p", "?y")), []rdf.Term{rdf.Var("a")})
	if Hom(from, to) {
		t.Fatal("?a is distinguished and absent from target; hom must fail")
	}
	free := NewGTGraph(NewTGraph(tp("?a", "p", "?b")), nil)
	freeTo := NewGTGraph(NewTGraph(tp("?x", "p", "?y")), nil)
	if !Hom(free, freeTo) {
		t.Fatal("unconstrained hom should exist")
	}
}

func TestCoreFoldsPath(t *testing.T) {
	// {(?x,p,?y),(?y,p,?z)} with X=∅ folds onto a single triple?
	// No: a 2-path's core is the 2-path unless there is a loop.
	g := NewGTGraph(NewTGraph(tp("?x", "p", "?y"), tp("?y", "p", "?z")), nil)
	c := Core(g)
	if len(c.S) != 2 {
		t.Fatalf("directed 2-path is a core; got %s", c.S)
	}
	// Adding a loop lets everything fold onto it.
	withLoop := NewGTGraph(NewTGraph(tp("?x", "p", "?y"), tp("?y", "p", "?z"), tp("?w", "p", "?w")), nil)
	c2 := Core(withLoop)
	if len(c2.S) != 1 {
		t.Fatalf("want fold onto loop, got %s", c2.S)
	}
}

func TestCoreRespectsDistinguished(t *testing.T) {
	// (?x,p,?y),(?x,p,?z): ?z can fold onto ?y when free...
	g := NewGTGraph(NewTGraph(tp("?x", "p", "?y"), tp("?x", "p", "?z")), nil)
	if len(Core(g).S) != 1 {
		t.Fatal("parallel optional branches fold")
	}
	// ...but not when ?y and ?z are distinguished.
	gx := NewGTGraph(NewTGraph(tp("?x", "p", "?y"), tp("?x", "p", "?z")),
		[]rdf.Term{rdf.Var("y"), rdf.Var("z")})
	if len(Core(gx).S) != 2 {
		t.Fatal("distinguished variables must not fold")
	}
}

func TestCoreIdempotentAndEquivalent(t *testing.T) {
	g := NewGTGraph(NewTGraph(
		tp("?x", "p", "?y"), tp("?y", "p", "?z"), tp("?w", "p", "?w"), tp("?v", "q", "?w"),
	), []rdf.Term{rdf.Var("v")})
	c := Core(g)
	if !IsCore(c) {
		t.Fatal("core must be a core")
	}
	if !Equivalent(g, c) {
		t.Fatal("core must be hom-equivalent to the original")
	}
	cc := Core(c)
	if !cc.S.Equal(c.S) {
		t.Fatal("Core must be idempotent")
	}
}

func TestFreezeThawRoundTrip(t *testing.T) {
	for _, term := range []rdf.Term{rdf.Var("x"), rdf.IRI("p"), rdf.IRI("frozen-looking:v")} {
		if got := ThawTerm(FreezeTerm(term)); got != term {
			t.Fatalf("roundtrip %v -> %v", term, got)
		}
	}
}

func TestTGraphOps(t *testing.T) {
	s := NewTGraph(tp("?x", "p", "?y"), tp("?x", "p", "?y"), tp("a", "p", "b"))
	if len(s) != 2 {
		t.Fatalf("dedup failed: %s", s)
	}
	if !s.Contains(tp("a", "p", "b")) {
		t.Fatal("Contains failed")
	}
	u := s.Union(NewTGraph(tp("?z", "q", "?x")))
	if len(u) != 3 {
		t.Fatalf("union size: %s", u)
	}
	if s.Ground() {
		t.Fatal("s has variables")
	}
	if !NewTGraph(tp("a", "p", "b")).Ground() {
		t.Fatal("ground t-graph misdetected")
	}
}
