package hom

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"wdsparql/internal/rdf"
)

// testing/quick checks of the TGraph data-structure invariants.

func genTGraph(rng *rand.Rand) TGraph {
	var ts []rdf.Triple
	term := func() rdf.Term {
		if rng.Intn(3) == 0 {
			return rdf.IRI([]string{"a", "b"}[rng.Intn(2)])
		}
		return rdf.Var(fmt.Sprintf("v%d", rng.Intn(4)))
	}
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		ts = append(ts, rdf.T(term(), rdf.IRI([]string{"p", "q"}[rng.Intn(2)]), term()))
	}
	return NewTGraph(ts...)
}

func tgraphConfig() *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, rng *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(genTGraph(rng))
			}
		},
	}
}

func TestQuickTGraphUnionLaws(t *testing.T) {
	// Union is commutative, associative, idempotent, and monotone.
	comm := func(a, b TGraph) bool { return a.Union(b).Equal(b.Union(a)) }
	if err := quick.Check(comm, tgraphConfig()); err != nil {
		t.Fatal(err)
	}
	assoc := func(a, b, c TGraph) bool {
		return a.Union(b).Union(c).Equal(a.Union(b.Union(c)))
	}
	if err := quick.Check(assoc, tgraphConfig()); err != nil {
		t.Fatal(err)
	}
	idem := func(a TGraph) bool { return a.Union(a).Equal(a) }
	if err := quick.Check(idem, tgraphConfig()); err != nil {
		t.Fatal(err)
	}
	mono := func(a, b TGraph) bool { return a.SubsetOf(a.Union(b)) && b.SubsetOf(a.Union(b)) }
	if err := quick.Check(mono, tgraphConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTGraphSortedDeduped(t *testing.T) {
	prop := func(a TGraph) bool {
		for i := 1; i < len(a); i++ {
			if !a[i-1].Less(a[i]) {
				return false // must be strictly increasing (sorted, deduped)
			}
		}
		return true
	}
	if err := quick.Check(prop, tgraphConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFreezeBijective(t *testing.T) {
	prop := func(a TGraph) bool {
		frozen := Freeze(a)
		if frozen.Len() != len(a) {
			return false
		}
		// Thawing every frozen triple recovers the original t-graph.
		var back []rdf.Triple
		for _, tr := range frozen.Triples() {
			back = append(back, rdf.T(ThawTerm(tr.S), ThawTerm(tr.P), ThawTerm(tr.O)))
		}
		return NewTGraph(back...).Equal(a)
	}
	if err := quick.Check(prop, tgraphConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGTGraphXSubsetVars(t *testing.T) {
	cfg := tgraphConfig()
	prop := func(a TGraph) bool {
		g := NewGTGraph(a, []rdf.Term{rdf.Var("v0"), rdf.Var("zzz")})
		inVars := map[rdf.Term]bool{}
		for _, v := range a.Vars() {
			inVars[v] = true
		}
		for _, x := range g.X {
			if !inVars[x] {
				return false // X ⊆ vars(S) must be enforced
			}
		}
		// Free vars and X partition vars(S).
		return len(g.FreeVars())+len(g.X) == len(a.Vars())
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
