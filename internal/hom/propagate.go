package hom

import (
	"wdsparql/internal/rdf"
)

// Arc-consistency preprocessing for the homomorphism solver: before
// backtracking, compute per-variable candidate domains and prune them
// to a fixpoint against every triple pattern (an AC-3-style loop over
// binary and ternary supports). An emptied domain refutes the instance
// outright; otherwise the pruned domains sharpen the fail-first
// heuristic. ExistsAC is the propagating entry point; its verdicts
// always equal Exists's (property-tested), and the ablation benchmarks
// quantify the difference.

// Domains maps variable names to their candidate IRI values.
type Domains map[string]map[string]bool

// ComputeDomains returns arc-consistent candidate domains for the
// variables of pats over g, and reports whether any domain became
// empty (empty = instance unsatisfiable).
func ComputeDomains(pats []rdf.Triple, g *rdf.Graph) (Domains, bool) {
	vars := rdf.VarsOf(pats)
	dom := Domains{}
	// Initial domains: for each variable, intersect the projections of
	// every pattern containing it.
	for _, v := range vars {
		var cur map[string]bool
		for _, p := range pats {
			if !patternMentions(p, v) {
				continue
			}
			proj := map[string]bool{}
			for _, t := range g.Match(p) {
				collectBinding(p, t, v, proj)
			}
			if cur == nil {
				cur = proj
			} else {
				for val := range cur {
					if !proj[val] {
						delete(cur, val)
					}
				}
			}
		}
		if cur == nil {
			cur = map[string]bool{}
			for _, val := range g.Dom() {
				cur[val] = true
			}
		}
		dom[v.Value] = cur
		if len(cur) == 0 {
			return dom, false
		}
	}
	// Propagate: re-check each pattern's support until stable. A value
	// a survives for v in pattern p iff some matching triple of p
	// assigns v := a with all other variables' bindings inside their
	// current domains.
	changed := true
	for changed {
		changed = false
		for _, p := range pats {
			pv := p.Vars()
			if len(pv) == 0 {
				if !g.Contains(p) {
					return dom, false
				}
				continue
			}
			support := map[string]map[string]bool{}
			for _, v := range pv {
				support[v.Value] = map[string]bool{}
			}
			for _, t := range g.Match(p) {
				bind := bindingOf(p, t)
				ok := true
				for v, val := range bind {
					if !dom[v.Value][val] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				for v, val := range bind {
					support[v.Value][val] = true
				}
			}
			for _, v := range pv {
				for val := range dom[v.Value] {
					if !support[v.Value][val] {
						delete(dom[v.Value], val)
						changed = true
					}
				}
				if len(dom[v.Value]) == 0 {
					return dom, false
				}
			}
		}
	}
	return dom, true
}

func patternMentions(p rdf.Triple, v rdf.Term) bool {
	return p.S == v || p.P == v || p.O == v
}

func collectBinding(p, t rdf.Triple, v rdf.Term, into map[string]bool) {
	pa, ta := p.Terms(), t.Terms()
	for i := 0; i < 3; i++ {
		if pa[i] == v {
			into[ta[i].Value] = true
			return
		}
	}
}

// bindingOf returns the variable binding induced by matching p to t
// (t is assumed to match p).
func bindingOf(p, t rdf.Triple) map[rdf.Term]string {
	out := map[rdf.Term]string{}
	pa, ta := p.Terms(), t.Terms()
	for i := 0; i < 3; i++ {
		if pa[i].IsVar() {
			out[pa[i]] = ta[i].Value
		}
	}
	return out
}

// ExistsAC decides homomorphism existence with arc-consistency
// preprocessing followed by the standard backtracking search over the
// pruned instance.
func ExistsAC(pats []rdf.Triple, g *rdf.Graph) bool {
	dom, ok := ComputeDomains(pats, g)
	if !ok {
		return false
	}
	// If every domain is a singleton, verify directly.
	mu := rdf.NewMapping()
	allSingleton := true
	for v, vals := range dom {
		if len(vals) == 1 {
			for val := range vals {
				mu[v] = val
			}
		} else {
			allSingleton = false
		}
	}
	if allSingleton {
		for _, p := range pats {
			img := mu.Apply(p)
			if !img.Ground() || !g.Contains(img) {
				return false
			}
		}
		return true
	}
	// Fix the singleton variables, then search the rest.
	return Exists(mu.ApplyAll(pats), g)
}
