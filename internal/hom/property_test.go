package hom

import (
	"fmt"
	"math/rand"
	"testing"

	"wdsparql/internal/rdf"
)

// Property tests validating the solver against a brute-force oracle
// and the core computation against Proposition 1's guarantees.

// bruteExists enumerates every total assignment vars → dom(G) and
// checks the triples directly; exponential, only for tiny instances.
func bruteExists(pats []rdf.Triple, g *rdf.Graph) bool {
	vars := rdf.VarsOf(pats)
	dom := g.Dom()
	if len(vars) == 0 {
		for _, p := range pats {
			if !g.Contains(p) {
				return false
			}
		}
		return true
	}
	assign := rdf.NewMapping()
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			for _, p := range pats {
				if !g.Contains(assign.Apply(p)) {
					return false
				}
			}
			return true
		}
		for _, d := range dom {
			assign[vars[i].Value] = d
			if rec(i + 1) {
				return true
			}
		}
		delete(assign, vars[i].Value)
		return false
	}
	return rec(0)
}

func randTinyInstance(rng *rand.Rand) ([]rdf.Triple, *rdf.Graph) {
	nvars := 1 + rng.Intn(3)
	var pats []rdf.Triple
	term := func() rdf.Term {
		if rng.Intn(4) == 0 {
			return rdf.IRI([]string{"a", "b"}[rng.Intn(2)])
		}
		return rdf.Var(fmt.Sprintf("v%d", rng.Intn(nvars)))
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		pats = append(pats, rdf.T(term(), rdf.IRI([]string{"p", "q"}[rng.Intn(2)]), term()))
	}
	g := rdf.NewGraph()
	nodes := []string{"a", "b", "c"}
	for i := 0; i < 1+rng.Intn(6); i++ {
		g.AddTriple(nodes[rng.Intn(3)], []string{"p", "q"}[rng.Intn(2)], nodes[rng.Intn(3)])
	}
	return pats, g
}

func TestQuickSolverAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		pats, g := randTinyInstance(rng)
		want := bruteExists(pats, g)
		if got := Exists(pats, g); got != want {
			t.Fatalf("trial %d: solver=%v brute=%v\npats=%v\nG=%s",
				trial, got, want, pats, rdf.FormatGraph(g))
		}
		if got := ExistsStaticOrder(pats, g); got != want {
			t.Fatalf("trial %d: static-order solver=%v brute=%v", trial, got, want)
		}
	}
}

func TestQuickFindAllMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		pats, g := randTinyInstance(rng)
		all := FindAll(pats, g, 0)
		// Every found mapping must be a homomorphism...
		for _, m := range all {
			for _, p := range pats {
				img := m.Apply(p)
				if !img.Ground() || !g.Contains(img) {
					t.Fatalf("trial %d: returned non-homomorphism %s", trial, m)
				}
			}
		}
		// ...and no duplicates.
		seen := map[string]bool{}
		for _, m := range all {
			k := m.Key()
			if seen[k] {
				t.Fatalf("trial %d: duplicate %s", trial, m)
			}
			seen[k] = true
		}
		// Existence agrees.
		if (len(all) > 0) != bruteExists(pats, g) {
			t.Fatalf("trial %d: FindAll emptiness disagrees with brute force", trial)
		}
	}
}

func randTinyGTGraph(rng *rand.Rand) GTGraph {
	nvars := 2 + rng.Intn(4)
	var ts []rdf.Triple
	vt := func() rdf.Term { return rdf.Var(fmt.Sprintf("v%d", rng.Intn(nvars))) }
	for i := 0; i < 2+rng.Intn(4); i++ {
		ts = append(ts, rdf.T(vt(), rdf.IRI([]string{"p", "q"}[rng.Intn(2)]), vt()))
	}
	var x []rdf.Term
	if rng.Intn(2) == 0 {
		x = append(x, rdf.Var("v0"))
	}
	return NewGTGraph(NewTGraph(ts...), x)
}

// Proposition 1 consequences: Core(g) is a core, hom-equivalent to g,
// idempotent, and a subgraph of g.
func TestQuickCoreProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 300; trial++ {
		g := randTinyGTGraph(rng)
		c := Core(g)
		if !c.S.SubsetOf(g.S) {
			t.Fatalf("trial %d: core not a subgraph", trial)
		}
		if !IsCore(c) {
			t.Fatalf("trial %d: Core produced a non-core: %s from %s", trial, c, g)
		}
		if !Equivalent(g, c) {
			t.Fatalf("trial %d: core not equivalent: %s vs %s", trial, g, c)
		}
		cc := Core(c)
		if !cc.S.Equal(c.S) {
			t.Fatalf("trial %d: Core not idempotent", trial)
		}
		// Distinguished variables must survive in the core whenever
		// they survive in some triple.
		for _, x := range g.X {
			found := false
			for _, v := range c.S.Vars() {
				if v == x {
					found = true
				}
			}
			if !found {
				// x ∈ vars(S) always (NewGTGraph drops others), and
				// homs fix x, so some triple mentioning x must remain.
				t.Fatalf("trial %d: distinguished %s vanished from core %s", trial, x, c)
			}
		}
	}
}

// Hom is reflexive and transitive (the paper uses transitivity of →
// throughout Section 3).
func TestQuickHomPreorder(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 120; trial++ {
		a := randTinyGTGraph(rng)
		if !Hom(a, a) {
			t.Fatalf("trial %d: → not reflexive on %s", trial, a)
		}
		b := randTinyGTGraph(rng)
		c := randTinyGTGraph(rng)
		// Align distinguished sets: transitivity is only stated for a
		// common X; use none for simplicity.
		a2 := NewGTGraph(a.S, nil)
		b2 := NewGTGraph(b.S, nil)
		c2 := NewGTGraph(c.S, nil)
		if Hom(a2, b2) && Hom(b2, c2) && !Hom(a2, c2) {
			t.Fatalf("trial %d: → not transitive", trial)
		}
	}
}

// CountSearchNodes agrees with Exists.
func TestCountSearchNodesAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 100; trial++ {
		pats, g := randTinyInstance(rng)
		found, nodes := CountSearchNodes(pats, g)
		if found != Exists(pats, g) {
			t.Fatalf("trial %d: CountSearchNodes disagrees", trial)
		}
		if nodes <= 0 {
			t.Fatalf("trial %d: nonpositive node count", trial)
		}
	}
}
