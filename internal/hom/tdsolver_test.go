package hom

import (
	"fmt"
	"math/rand"
	"testing"

	"wdsparql/internal/rdf"
)

// ExistsTD must agree with Exists everywhere (it is exact, just with a
// different evaluation order).

func TestQuickExistsTDAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 400; trial++ {
		pats, g := randTinyInstance(rng)
		want := Exists(pats, g)
		if got := ExistsTD(pats, g); got != want {
			t.Fatalf("trial %d: TD=%v plain=%v\npats=%v\nG=%s",
				trial, got, want, pats, rdf.FormatGraph(g))
		}
	}
}

func TestExistsTDLongPath(t *testing.T) {
	// A long path query (treewidth 1) over a long path: the TD solver
	// handles this in linear DP fashion.
	g := rdf.NewGraph()
	for i := 0; i < 60; i++ {
		g.AddTriple(fmt.Sprintf("n%d", i), "p", fmt.Sprintf("n%d", i+1))
	}
	var pats []rdf.Triple
	for i := 0; i < 40; i++ {
		pats = append(pats, rdf.T(rdf.Var(fmt.Sprintf("v%d", i)), rdf.IRI("p"), rdf.Var(fmt.Sprintf("v%d", i+1))))
	}
	if !ExistsTD(pats, g) {
		t.Fatal("40-path embeds into 60-path")
	}
	var tooLong []rdf.Triple
	for i := 0; i < 61; i++ {
		tooLong = append(tooLong, rdf.T(rdf.Var(fmt.Sprintf("w%d", i)), rdf.IRI("p"), rdf.Var(fmt.Sprintf("w%d", i+1))))
	}
	if ExistsTD(tooLong, g) {
		t.Fatal("61-path must not embed into 60-path")
	}
}

func TestExistsTDGroundAndEmpty(t *testing.T) {
	g := rdf.GraphOf(rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")))
	if !ExistsTD(nil, g) {
		t.Fatal("empty pattern")
	}
	if !ExistsTD([]rdf.Triple{rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b"))}, g) {
		t.Fatal("true ground")
	}
	if ExistsTD([]rdf.Triple{rdf.T(rdf.IRI("b"), rdf.IRI("p"), rdf.IRI("a"))}, g) {
		t.Fatal("false ground")
	}
}

func TestExistsTDDisconnectedPattern(t *testing.T) {
	g := rdf.GraphOf(
		rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")),
		rdf.T(rdf.IRI("c"), rdf.IRI("q"), rdf.IRI("d")),
	)
	pats := []rdf.Triple{
		rdf.T(rdf.Var("x"), rdf.IRI("p"), rdf.Var("y")),
		rdf.T(rdf.Var("u"), rdf.IRI("q"), rdf.Var("v")),
	}
	if !ExistsTD(pats, g) {
		t.Fatal("disconnected pattern should match")
	}
	pats = append(pats, rdf.T(rdf.Var("u"), rdf.IRI("p"), rdf.Var("v")))
	if ExistsTD(pats, g) {
		t.Fatal("u,v cannot satisfy both predicates")
	}
}

func BenchmarkExistsTDvsBacktracking(b *testing.B) {
	// Path query over a layered graph. Fail-first backtracking handles
	// this easily, while the TD DP pays its |dom|^(w+1)-style bag
	// enumeration up front — the benchmark records that trade-off
	// honestly; the TD solver's value is its worst-case guarantee for
	// bounded-treewidth patterns, not raw speed on easy instances.
	g := rdf.NewGraph()
	for i := 0; i < 30; i++ {
		for j := 0; j < 4; j++ {
			g.AddTriple(fmt.Sprintf("n%d_%d", i, j), "p", fmt.Sprintf("n%d_%d", i+1, (j+1)%4))
		}
	}
	var pats []rdf.Triple
	for i := 0; i < 12; i++ {
		pats = append(pats, rdf.T(rdf.Var(fmt.Sprintf("v%d", i)), rdf.IRI("p"), rdf.Var(fmt.Sprintf("v%d", i+1))))
	}
	b.Run("backtracking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Exists(pats, g)
		}
	})
	b.Run("tree-decomposition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ExistsTD(pats, g)
		}
	})
}
