package hom

import (
	"wdsparql/internal/rdf"
)

// This file computes cores of generalised t-graphs (Section 3 of the
// paper, Proposition 1). A generalised t-graph (S, X) is a core when
// there is no homomorphism from (S, X) to a proper subgraph (S', X),
// S' ⊊ S. Every (S, X) has a core, unique up to renaming of variables,
// obtained by iterated retraction.
//
// The algorithm rests on a standard fact about finite structures: if
// (S, X) maps homomorphically onto a proper subgraph then some
// idempotent power of that endomorphism eliminates at least one
// non-distinguished variable entirely. It therefore suffices to search,
// for each free variable v, for a homomorphism from (S, X) into the
// subgraph of S consisting of the triples not mentioning v; applying
// the found endomorphism shrinks S, and iterating to a fixpoint yields
// the core.

// Core returns the core of (S, X) as a sub-t-graph of S (no variable
// renaming is performed, so Core(g).S ⊆ g.S).
func Core(g GTGraph) GTGraph {
	s := g.S
	for {
		v, image, ok := findEliminableVar(GTGraph{S: s, X: g.X})
		if !ok {
			return NewGTGraph(s, g.X)
		}
		_ = v
		s = image
	}
}

// IsCore reports whether (S, X) is a core.
func IsCore(g GTGraph) bool {
	_, _, ok := findEliminableVar(g)
	return !ok
}

// findEliminableVar searches for a free variable v of S and an
// endomorphism of (S, X) whose image avoids every triple mentioning v.
// It returns the image t-graph h(S) when found.
func findEliminableVar(g GTGraph) (rdf.Term, TGraph, bool) {
	for _, v := range g.FreeVars() {
		var rest []rdf.Triple
		for _, t := range g.S {
			if !mentions(t, v) {
				rest = append(rest, t)
			}
		}
		if len(rest) == len(g.S) {
			continue // v does not occur; impossible for v ∈ vars(S)
		}
		target := NewTGraph(rest...)
		h, ok := FindHom(g, GTGraph{S: target, X: g.X})
		if !ok {
			continue
		}
		return v, applyVarMap(g, h), true
	}
	return rdf.Term{}, nil, false
}

func mentions(t rdf.Triple, v rdf.Term) bool {
	return t.S == v || t.P == v || t.O == v
}

// applyVarMap applies an endomorphism (as a variable map) to S,
// returning h(S).
func applyVarMap(g GTGraph, h map[rdf.Term]rdf.Term) TGraph {
	conv := func(t rdf.Term) rdf.Term {
		if t.IsVar() {
			if img, ok := h[t]; ok {
				return img
			}
		}
		return t
	}
	out := make([]rdf.Triple, len(g.S))
	for i, t := range g.S {
		out[i] = rdf.T(conv(t.S), conv(t.P), conv(t.O))
	}
	return NewTGraph(out...)
}

// CoreEquivalent reports whether two generalised t-graphs have
// isomorphic cores, i.e. are homomorphically equivalent. By
// Proposition 1 of the paper this is the right notion of "same core up
// to renaming of variables".
func CoreEquivalent(a, b GTGraph) bool {
	return Equivalent(a, b)
}
