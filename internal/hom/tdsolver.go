package hom

import (
	"sort"

	"wdsparql/internal/graphalg"
	"wdsparql/internal/rdf"
)

// Tree-decomposition-guided homomorphism solving: the classical
// Dalmau–Kolaitis–Vardi route behind the paper's Proposition 3. A tree
// decomposition of the pattern's Gaifman graph is computed (exact for
// the small patterns arising from queries), satisfying assignments are
// enumerated per bag, and a bottom-up semi-join keeps exactly the bag
// tuples extensible through every child. The running time is
// O(poly(|S|, |G|) · |dom(G)|^{w+1}) for width w — polynomial for every
// fixed width, matching the pebble game's guarantee but producing
// exact answers for *every* instance (at exponential cost when the
// pattern's treewidth is large).
//
// ExistsTD always agrees with Exists (property-tested). Its value is
// the worst-case guarantee: unlike backtracking it can never thrash on
// a bounded-treewidth pattern, at the cost of always paying the bag
// enumeration up front (see BenchmarkExistsTDvsBacktracking).

// ExistsTD reports homomorphism existence via tree-decomposition
// dynamic programming.
func ExistsTD(pats []rdf.Triple, g *rdf.Graph) bool {
	// Ground triples are checked directly; they occupy no bag.
	var varTriples []rdf.Triple
	for _, p := range pats {
		if p.Ground() {
			if !g.Contains(p) {
				return false
			}
			continue
		}
		varTriples = append(varTriples, p)
	}
	if len(varTriples) == 0 {
		return true
	}
	// Arc-consistent domains; empty domain refutes.
	domains, ok := ComputeDomains(varTriples, g)
	if !ok {
		return false
	}

	vars := rdf.VarsOf(varTriples)
	idx := map[rdf.Term]int{}
	for i, v := range vars {
		idx[v] = i
	}
	// Gaifman graph over all variables (no distinguished set here —
	// callers substitute µ beforehand).
	ug := graphalg.NewUGraph(len(vars))
	for i, v := range vars {
		ug.SetLabel(i, v.String())
	}
	for _, t := range varTriples {
		vs := t.Vars()
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				ug.AddEdge(idx[vs[i]], idx[vs[j]])
			}
		}
	}
	td, _, _ := graphalg.ExactDecomposition(ug)
	return runTDDP(td, vars, varTriples, domains, g)
}

// runTDDP executes the bottom-up join over the decomposition.
func runTDDP(td *graphalg.TreeDecomposition, vars []rdf.Term, pats []rdf.Triple, domains Domains, g *rdf.Graph) bool {
	nBags := len(td.Bags)
	if nBags == 0 {
		return true
	}
	adj := make([][]int, nBags)
	for _, e := range td.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	// Assign each triple to one bag containing all its variables.
	// Triple variables form a clique in the Gaifman graph, so such a
	// bag exists in any valid decomposition.
	bagVarSets := make([]map[int]bool, nBags)
	for b, bag := range td.Bags {
		bagVarSets[b] = map[int]bool{}
		for _, v := range bag {
			bagVarSets[b][v] = true
		}
	}
	varIdx := map[rdf.Term]int{}
	for i, v := range vars {
		varIdx[v] = i
	}
	bagTriples := make([][]rdf.Triple, nBags)
	for _, t := range pats {
		placed := false
		for b := range td.Bags {
			all := true
			for _, v := range t.Vars() {
				if !bagVarSets[b][varIdx[v]] {
					all = false
					break
				}
			}
			if all {
				bagTriples[b] = append(bagTriples[b], t)
				placed = true
				break
			}
		}
		if !placed {
			// Cannot happen with a valid decomposition; fall back to
			// the exact solver rather than mis-answer.
			return Exists(pats, g)
		}
	}

	// Post-order over the rooted tree at bag 0.
	order, parent := postOrder(adj, nBags)
	// tuples[b]: surviving assignments of bag b, each as a value slice
	// aligned with sorted bag var ids.
	type tupleSet struct {
		bagVars []int // sorted variable ids of the bag
		keys    map[string][]string
	}
	sets := make([]*tupleSet, nBags)
	for _, b := range order {
		bag := append([]int{}, td.Bags[b]...)
		sort.Ints(bag)
		ts := &tupleSet{bagVars: bag, keys: map[string][]string{}}
		// Child shared-projection indexes, built from already-processed
		// children.
		type childIndex struct {
			shared []int // positions in this bag's var list
			seen   map[string]bool
		}
		var children []childIndex
		for _, c := range adj[b] {
			if parent[b] == c {
				continue
			}
			cs := sets[c]
			sharedIDs := intersectSorted(bag, cs.bagVars)
			proj := map[string]bool{}
			for _, tup := range cs.keys {
				proj[projectTuple(cs.bagVars, tup, sharedIDs)] = true
			}
			children = append(children, childIndex{shared: positionsOf(bag, sharedIDs), seen: proj})
		}
		// Enumerate satisfying assignments of the bag.
		enumerateBag(bag, vars, domains, bagTriples[b], g, func(tup []string) {
			// Child compatibility.
			for _, ci := range children {
				key := projectPositions(tup, ci.shared)
				if !ci.seen[key] {
					return
				}
			}
			ts.keys[joinKey(tup)] = append([]string{}, tup...)
		})
		if len(ts.keys) == 0 {
			return false
		}
		sets[b] = ts
	}
	return true
}

// postOrder returns a post-order traversal of the tree rooted at 0 and
// the parent array.
func postOrder(adj [][]int, n int) ([]int, []int) {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var order []int
	visited := make([]bool, n)
	var dfs func(v int)
	dfs = func(v int) {
		visited[v] = true
		for _, u := range adj[v] {
			if !visited[u] {
				parent[u] = v
				dfs(u)
			}
		}
		order = append(order, v)
	}
	for v := 0; v < n; v++ {
		if !visited[v] {
			dfs(v)
		}
	}
	return order, parent
}

// enumerateBag backtracks over the bag's variables using the AC
// domains, checking the bag's triples once fully covered, and calls
// emit for every satisfying tuple (values aligned with the sorted bag
// variable ids).
func enumerateBag(bag []int, vars []rdf.Term, domains Domains, triples []rdf.Triple, g *rdf.Graph, emit func([]string)) {
	assign := rdf.NewMapping()
	tup := make([]string, len(bag))
	var rec func(i int)
	rec = func(i int) {
		if i == len(bag) {
			for _, t := range triples {
				img := assign.Apply(t)
				if !img.Ground() || !g.Contains(img) {
					return
				}
			}
			emit(tup)
			return
		}
		name := vars[bag[i]].Value
		for val := range domains[name] {
			assign[name] = val
			tup[i] = val
			// Early check: triples fully covered by the assigned prefix.
			ok := true
			for _, t := range triples {
				if !mentionsVar(t, vars[bag[i]]) {
					continue
				}
				img := assign.Apply(t)
				if img.Ground() && !g.Contains(img) {
					ok = false
					break
				}
			}
			if ok {
				rec(i + 1)
			}
		}
		delete(assign, name)
	}
	rec(0)
}

func mentionsVar(t rdf.Triple, v rdf.Term) bool {
	return t.S == v || t.P == v || t.O == v
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// positionsOf maps each id of sub to its index within the sorted bag.
func positionsOf(bag, sub []int) []int {
	out := make([]int, len(sub))
	for i, id := range sub {
		out[i] = sort.SearchInts(bag, id)
	}
	return out
}

// projectTuple projects a tuple over bagVars onto the given shared ids.
func projectTuple(bagVars []int, tup []string, shared []int) string {
	pos := positionsOf(bagVars, shared)
	return projectPositions(tup, pos)
}

func projectPositions(tup []string, pos []int) string {
	key := ""
	for _, p := range pos {
		key += tup[p] + "\x00"
	}
	return key
}

func joinKey(tup []string) string {
	key := ""
	for _, v := range tup {
		key += v + "\x00"
	}
	return key
}
