// Package plan implements the compile-time join-order planner.
//
// The planner runs once, at Prepare time, and orders the triple
// patterns of one BGP (one wdPT node's RowProgram) most-restrictive-
// first with bound-slot propagation: after a pattern is placed, every
// variable slot it mentions counts as bound for the remaining
// patterns, and a pattern whose subject slot just got bound is
// re-costed as subject-bound. The cost model is built entirely from
// statistics the storage backends answer in O(1) or one galloping
// probe — exact posting-list cardinalities from the CSR offsets
// (Graph.MatchCountID on a constants-only skeleton) divided by
// distinct-key domain sizes (Graph.DistinctCount /
// Graph.DistinctUnderPredicate) per bound variable position — so
// compiling a plan costs a handful of index probes per pattern pair
// and never scans data.
//
// Everything here is deterministic: candidate patterns are examined in
// index order, ties break toward the lowest original index, and no map
// iteration feeds into an ordering decision. The runtime (internal/hom)
// decides how literally to follow the plan; see the SearchMode values
// there for the determinism contract.
package plan

import "wdsparql/internal/rdf"

// Pattern is one triple pattern in compiled form, mirroring the hom
// package's cpat encoding: Code[i] ≥ 0 is a variable layout slot,
// Code[i] < 0 encodes the constant IRI TermID ^Code[i].
type Pattern struct{ Code [3]int32 }

// iri decodes position i as a constant, if it is one.
func (p Pattern) iri(i int) (rdf.TermID, bool) {
	if c := p.Code[i]; c < 0 {
		return rdf.TermID(^c), true
	}
	return 0, false
}

// Step is one entry of a compiled plan: which pattern to solve at this
// depth, its estimated cardinality given everything bound by earlier
// steps, the exact count of its constants-only skeleton, and the index
// shape the runtime will probe once the promised slots are bound
// ("SP", "PO", ..., or "scan" when nothing is bound).
type Step struct {
	Pat  int     `json:"pattern"`
	Est  float64 `json:"est"`
	Base int     `json:"base"`
	Side string  `json:"side"`
}

// Plan is the compiled join order of one pattern list.
type Plan struct {
	Steps    []Step
	order    []int     // depth → pattern index (Steps[d].Pat, flattened)
	est      []float64 // pattern index → estimate at its planned depth
	volatile bool      // cyclic pattern connections; see Volatile
}

// Order returns the static pattern order, indexed by search depth.
// Callers must not mutate the returned slice.
func (pl *Plan) Order() []int { return pl.order }

// Est returns the planned cardinality estimate of pattern i — the
// divergence baseline for the runtime's adaptive escape hatch.
func (pl *Plan) Est(i int) float64 { return pl.est[i] }

// Volatile reports that the patterns' variable-connection graph is
// cyclic (treating entry-bound slots as constants): some pattern
// closes a cycle over variables other patterns already connect, so a
// branch can die on a pattern the static order only reaches later. On
// such shapes literal plan-following forfeits the per-node dead
// detection the fail-first scan gets for free, and the runtime should
// keep full re-scoring. Acyclic shapes (chains, stars, trees) don't
// have this failure mode — the next plan step is the only pattern
// whose count can newly hit zero.
func (pl *Plan) Volatile() bool { return pl.volatile }

// Compile builds the join order for pats over g. entry lists the
// variable slots already bound before any search of this program
// starts (the ancestor variables of a wdPT node); they seed the bound
// set of the first step.
func Compile(pats []Pattern, g *rdf.Graph, entry []int32) *Plan {
	return CompileWithRestrictions(pats, g, entry, nil)
}

// CompileWithRestrictions is Compile with an extra set of restricted
// slots: variable slots an equality filter pins to a single constant.
// The runtime's filter pushdown prunes every other value the moment
// such a slot binds, so the estimator treats restricted slots exactly
// like entry-bound ones — the surviving cardinality through a
// restricted position is the base divided by the position's domain
// size. Restrictions bias only the ordering (and the Explain output);
// the emitted stream is mode-governed and unaffected.
func CompileWithRestrictions(pats []Pattern, g *rdf.Graph, entry []int32, restricted []int32) *Plan {
	n := len(pats)
	pl := &Plan{
		Steps: make([]Step, 0, n),
		order: make([]int, 0, n),
		est:   make([]float64, n),
	}
	bound := make(map[int32]bool, len(entry)+len(restricted)+3*n)
	for _, s := range entry {
		bound[s] = true
	}
	for _, s := range restricted {
		bound[s] = true
	}
	pl.volatile = cyclic(pats, bound)
	// Domain sizes are pure functions of (position, predicate|global);
	// cache them across steps so a k-pattern plan costs O(k²) O(1)-ish
	// probes, not O(k²) catalog scans on the map backend.
	dom := make(map[domKey]float64, 3*n)
	used := make([]bool, n)
	for len(pl.order) < n {
		best, bestBase := -1, 0
		var bestEst float64
		var bestSide string
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			est, base, side := estimate(g, pats[i], bound, dom)
			// Strict improvement keeps the lowest-index pattern on
			// ties — index order is the only tie-break, so the plan is
			// deterministic for a given graph and pattern list.
			if best == -1 || est < bestEst {
				best, bestEst, bestBase, bestSide = i, est, base, side
			}
		}
		used[best] = true
		pl.Steps = append(pl.Steps, Step{Pat: best, Est: bestEst, Base: bestBase, Side: bestSide})
		pl.order = append(pl.order, best)
		pl.est[best] = bestEst
		for _, c := range pats[best].Code {
			if c >= 0 {
				bound[c] = true
			}
		}
	}
	return pl
}

// cyclic reports whether the patterns' variable-connection multigraph
// has a cycle: union-find over variable slots, with each pattern
// pairwise connecting its free (non-entry-bound) variables. A pattern
// whose variables already share a component closes a cycle — including
// the two-pattern case of a repeated variable pair.
func cyclic(pats []Pattern, entry map[int32]bool) bool {
	parent := map[int32]int32{}
	var find func(x int32) int32
	find = func(x int32) int32 {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	for _, p := range pats {
		var vs [3]int32
		nv := 0
		for _, c := range p.Code {
			if c < 0 || entry[c] {
				continue
			}
			dup := false
			for j := 0; j < nv; j++ {
				if vs[j] == c {
					dup = true
					break
				}
			}
			if !dup {
				vs[nv] = c
				nv++
			}
		}
		for j := 1; j < nv; j++ {
			a, b := find(vs[0]), find(vs[j])
			if a == b {
				return true
			}
			parent[a] = b
		}
	}
	return false
}

// domKey caches one domain-size lookup: position plus the constant
// predicate scoping it (predOf = 0 for the global domain; stored
// predicate IDs are offset by one).
type domKey struct {
	pos  int
	pred int64
}

// estimate costs one pattern under the current bound set. The base is
// the exact cardinality of the constants-only skeleton — variable
// positions are rendered as three distinct fresh variables so
// MatchCountID never sees a repeated variable and stays O(1)/O(log)
// even when the source pattern repeats a slot. Each bound variable
// position then divides the base by its domain size: the distinct
// values at that position under the pattern's constant predicate when
// there is one, else globally. That is the classic uniform-
// independence estimator, computed from exact distinct counts.
func estimate(g *rdf.Graph, p Pattern, bound map[int32]bool, dom map[domKey]float64) (est float64, base int, side string) {
	var skel rdf.IDTriple
	var kind [3]byte // 'c' constant, 'b' bound slot, 0 free
	for i := 0; i < 3; i++ {
		if id, ok := p.iri(i); ok {
			skel[i] = id
			kind[i] = 'c'
		} else {
			skel[i] = rdf.VarID(i)
			if bound[p.Code[i]] {
				kind[i] = 'b'
			}
		}
	}
	base = g.MatchCountID(skel)
	est = float64(base)
	pID, pConst := p.iri(1)
	for i := 0; i < 3; i++ {
		if kind[i] != 'b' {
			continue
		}
		key := domKey{pos: i}
		if i != 1 && pConst {
			key.pred = int64(pID) + 1
		}
		d, ok := dom[key]
		if !ok {
			if key.pred != 0 {
				d = float64(g.DistinctUnderPredicate(pID, i))
			} else {
				d = float64(g.DistinctCount(i))
			}
			dom[key] = d
		}
		if d < 1 {
			d = 1
		}
		est /= d
	}
	var b []byte
	for i, k := range kind {
		if k != 0 {
			b = append(b, "SPO"[i])
		}
	}
	if len(b) == 0 {
		return est, base, "scan"
	}
	return est, base, string(b)
}
