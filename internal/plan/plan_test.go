package plan

import (
	"fmt"
	"testing"

	"wdsparql/internal/rdf"
)

// pat builds a Pattern from three codes: ≥ 0 is a variable slot, use
// c() for constants.
func pat(s, p, o int32) Pattern { return Pattern{Code: [3]int32{s, p, o}} }

// c encodes the IRI as a constant pattern code, interning it if new.
func c(g *rdf.Graph, iri string) int32 { return ^int32(g.Dict().InternIRI(iri)) }

// starGraph: 20 fan-in triples under p plus a single triple under q.
func starGraph() *rdf.Graph {
	g := rdf.NewGraph()
	for i := 0; i < 20; i++ {
		g.AddTriple(fmt.Sprintf("s%d", i), "p", "hub")
	}
	g.AddTriple("hub", "q", "t")
	return g
}

func TestCompileOrdersMostRestrictiveFirst(t *testing.T) {
	g := starGraph()
	pats := []Pattern{
		pat(0, c(g, "p"), 1), // 20 matches
		pat(2, c(g, "q"), 3), // 1 match
	}
	pl := Compile(pats, g, nil)
	if got := pl.Order(); len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("order = %v, want [1 0]", got)
	}
	if s := pl.Steps[0]; s.Pat != 1 || s.Base != 1 || s.Est != 1 || s.Side != "P" {
		t.Fatalf("first step = %+v, want pattern 1, base 1, est 1, side P", s)
	}
	if s := pl.Steps[1]; s.Base != 20 || s.Est != 20 {
		t.Fatalf("second step = %+v, want base 20, est 20 (no bound slots shared)", s)
	}
	for i, st := range pl.Steps {
		if pl.Order()[i] != st.Pat || pl.Est(st.Pat) != st.Est {
			t.Fatalf("Order/Est out of sync with Steps at %d", i)
		}
	}
	if pl.Volatile() {
		t.Fatal("disconnected patterns flagged volatile")
	}
}

// Bound-slot propagation: after the 4-match pattern binds ?1, the
// 8-match pattern estimates at 8/8 = 1 (8 distinct subjects under pb)
// and must be planned before the 6-match disconnected pattern. Without
// propagation it would lose, 8 > 6.
func TestCompilePropagatesBoundSlots(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 4; i++ {
		g.AddTriple(fmt.Sprintf("a%d", i), "pa", fmt.Sprintf("m%d", i))
	}
	for i := 0; i < 8; i++ {
		g.AddTriple(fmt.Sprintf("m%d", i), "pb", fmt.Sprintf("n%d", i))
	}
	for i := 0; i < 6; i++ {
		g.AddTriple(fmt.Sprintf("x%d", i), "pc", fmt.Sprintf("y%d", i))
	}
	pats := []Pattern{
		pat(0, c(g, "pa"), 1),
		pat(1, c(g, "pb"), 2),
		pat(3, c(g, "pc"), 4),
	}
	pl := Compile(pats, g, nil)
	if got := pl.Order(); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("order = %v, want [0 1 2] (bound ?1 makes pattern 1 estimate 1)", got)
	}
	if s := pl.Steps[1]; s.Est != 1 || s.Side != "SP" {
		t.Fatalf("bound step = %+v, want est 1, side SP", s)
	}
}

// Entry slots (the ancestor variables of a wdPT node) count as bound
// from the first step.
func TestCompileEntrySlots(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 20; i++ {
		g.AddTriple(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i))
	}
	pats := []Pattern{pat(0, c(g, "p"), 1)}
	free := Compile(pats, g, nil)
	bound := Compile(pats, g, []int32{0})
	if free.Steps[0].Est != 20 || free.Steps[0].Side != "P" {
		t.Fatalf("free step = %+v", free.Steps[0])
	}
	if bound.Steps[0].Est != 1 || bound.Steps[0].Side != "SP" {
		t.Fatalf("entry-bound step = %+v, want est 20/20 = 1, side SP", bound.Steps[0])
	}
}

func TestVolatile(t *testing.T) {
	g := starGraph()
	p := c(g, "p")
	q := c(g, "q")
	cases := []struct {
		name  string
		pats  []Pattern
		entry []int32
		want  bool
	}{
		{"chain", []Pattern{pat(0, p, 1), pat(1, p, 2), pat(2, p, 3)}, nil, false},
		{"star", []Pattern{pat(0, p, 1), pat(0, p, 2), pat(0, q, 3)}, nil, false},
		{"triangle", []Pattern{pat(0, p, 1), pat(1, p, 2), pat(2, p, 0)}, nil, true},
		{"parallel-pair", []Pattern{pat(0, p, 1), pat(0, q, 1)}, nil, true},
		{"triangle-entry-cut", []Pattern{pat(0, p, 1), pat(1, p, 2), pat(2, p, 0)}, []int32{0}, false},
		{"self-loop", []Pattern{pat(0, p, 0)}, nil, false},
		{"single", []Pattern{pat(0, p, 1)}, nil, false},
	}
	for _, tc := range cases {
		if got := Compile(tc.pats, g, tc.entry).Volatile(); got != tc.want {
			t.Errorf("%s: Volatile = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// The catalog agrees across backends, so the compiled order must too.
func TestCompileBackendInvariant(t *testing.T) {
	g := starGraph()
	pats := []Pattern{
		pat(0, c(g, "p"), 1),
		pat(1, c(g, "q"), 2),
	}
	want := Compile(pats, g, nil)
	for _, b := range []struct {
		name string
		g    *rdf.Graph
	}{{"frozen", g.Clone().Freeze()}, {"sharded", g.Clone().Shard(3)}} {
		got := Compile(pats, b.g, nil)
		if len(got.Order()) != len(want.Order()) {
			t.Fatalf("%s: order length differs", b.name)
		}
		for i := range want.Order() {
			if got.Order()[i] != want.Order()[i] {
				t.Fatalf("%s: order = %v, want %v", b.name, got.Order(), want.Order())
			}
		}
	}
}
