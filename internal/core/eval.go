package core

import (
	"context"
	"fmt"

	"wdsparql/internal/hom"
	"wdsparql/internal/pebble"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
)

// This file implements the evaluation algorithms for wdPFs:
//
//   - EvalNaive: the natural algorithm (Lemma 1 of the paper, following
//     Letelier et al. and Pichler–Skritek): find, per tree, the unique
//     subtree matched exactly by µ and verify that no child admits a
//     compatible homomorphic extension. The extension tests are genuine
//     homomorphism tests, so the algorithm is exponential in the query
//     in the worst case (wdEVAL is coNP-complete).
//
//   - EvalPebble: Theorem 1's algorithm — identical control flow, but
//     each extension test (pat(Tµ) ∪ pat(n), vars(Tµ)) →µ G is replaced
//     by the existential (k+1)-pebble game, which is decidable in
//     polynomial time. The algorithm is always sound (a rejection is
//     definitive) and complete whenever dw(F) ≤ k.
//
//   - Enumerate: materialises ⟦T⟧G / ⟦F⟧G via Lemma 1 by iterating over
//     all subtrees; used by examples and as a second reference
//     implementation in tests.

// FindMatchedSubtree returns the unique subtree Tµ of t such that µ is
// a homomorphism from pat(Tµ) to G with vars(Tµ) = dom(µ), when it
// exists. Uniqueness follows from NR normal form.
func FindMatchedSubtree(t *ptree.Tree, g *rdf.Graph, mu rdf.Mapping) (ptree.Subtree, bool) {
	s, ok := ptree.WitnessSubtree(t, mu.Dom())
	if !ok {
		return ptree.Subtree{}, false
	}
	for _, tr := range s.Pattern() {
		img := mu.Apply(tr)
		if !img.Ground() || !g.Contains(img) {
			return ptree.Subtree{}, false
		}
	}
	return s, true
}

// EvalNaive decides µ ∈ ⟦F⟧G with the natural algorithm.
func EvalNaive(f ptree.Forest, g *rdf.Graph, mu rdf.Mapping) bool {
	for _, t := range f {
		s, ok := FindMatchedSubtree(t, g, mu)
		if !ok {
			continue
		}
		extendable := false
		for _, n := range s.Children() {
			if hom.ExistsExtending(n.Pattern, mu, g) {
				extendable = true
				break
			}
		}
		if !extendable {
			return true
		}
	}
	return false
}

// EvalPebble decides µ ∈ ⟦F⟧G with the Theorem 1 algorithm using
// (k+1)-pebble tests. The answer is guaranteed correct when
// dw(F) ≤ k; it is always sound in the following sense: if
// µ ∉ ⟦F⟧G the algorithm rejects regardless of k.
func EvalPebble(k int, f ptree.Forest, g *rdf.Graph, mu rdf.Mapping) bool {
	if k < 1 {
		panic(fmt.Sprintf("core: EvalPebble requires k ≥ 1, got %d", k))
	}
	for _, t := range f {
		s, ok := FindMatchedSubtree(t, g, mu)
		if !ok {
			continue
		}
		x := s.Vars()
		extendable := false
		for _, n := range s.Children() {
			union := s.Pattern().Union(n.Pattern)
			gt := hom.NewGTGraph(union, x)
			if pebble.Decide(k+1, gt, mu.Restrict(x), g) {
				extendable = true
				break
			}
		}
		if !extendable {
			return true
		}
	}
	return false
}

// Enumerate computes ⟦T⟧G by Lemma 1, iterating over every subtree T'
// of T: a mapping µ with dom(µ) = vars(T') is a solution iff µ is a
// homomorphism from pat(T') to G and no child of T' admits a
// compatible extension. Exponential in the tree size; intended for
// small trees (examples, tests, ground truth).
func Enumerate(t *ptree.Tree, g *rdf.Graph) *rdf.MappingSet {
	out := rdf.NewMappingSet()
	for _, s := range ptree.EnumerateSubtrees(t) {
		pat := s.Pattern()
		children := s.Children()
		for _, mu := range hom.FindAll(pat, g, 0) {
			maximal := true
			for _, n := range children {
				if hom.ExistsExtending(n.Pattern, mu, g) {
					maximal = false
					break
				}
			}
			if maximal {
				out.Add(mu)
			}
		}
	}
	return out
}

// EnumerateForest computes ⟦F⟧G = ⟦T1⟧G ∪ ... ∪ ⟦Tm⟧G.
func EnumerateForest(f ptree.Forest, g *rdf.Graph) *rdf.MappingSet {
	out := rdf.NewMappingSet()
	for _, t := range f {
		out.AddAll(Enumerate(t, g))
	}
	return out
}

// Algorithm selects an evaluation strategy by name, for the CLI and
// the benchmark harness.
type Algorithm uint8

const (
	// AlgNaive is the Lemma 1 natural algorithm with homomorphism tests.
	AlgNaive Algorithm = iota
	// AlgPebble is the Theorem 1 algorithm with pebble-game tests.
	AlgPebble
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgNaive:
		return "naive"
	case AlgPebble:
		return "pebble"
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// Eval dispatches to the selected algorithm; k is the domination-width
// bound used by AlgPebble and ignored by AlgNaive.
func Eval(a Algorithm, k int, f ptree.Forest, g *rdf.Graph, mu rdf.Mapping) bool {
	switch a {
	case AlgNaive:
		return EvalNaive(f, g, mu)
	case AlgPebble:
		return EvalPebble(k, f, g, mu)
	}
	panic("core: unknown algorithm")
}

// EvalContext is Eval with cooperative cancellation, polled between
// trees of the forest (the natural unit of work: each tree's decision
// is one FindMatchedSubtree plus its extension tests). A cancelled
// context yields (false, ctx.Err()); an uncancelled run returns the
// exact Eval verdict with a nil error.
func EvalContext(ctx context.Context, a Algorithm, k int, f ptree.Forest, g *rdf.Graph, mu rdf.Mapping) (bool, error) {
	for _, t := range f {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if Eval(a, k, ptree.Forest{t}, g, mu) {
			return true, nil
		}
	}
	return false, ctx.Err()
}
