package core

import (
	"wdsparql/internal/hom"
	"wdsparql/internal/pebble"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
)

// EvalStats instruments one wdEVAL decision: how many trees were
// probed, how many witness subtrees matched, and how many (expensive)
// extension tests ran. The benchmark harness reports these to show
// where the two algorithms spend their work.
type EvalStats struct {
	// TreesProbed counts the trees of the forest examined.
	TreesProbed int
	// SubtreesMatched counts trees whose witness subtree matched µ.
	SubtreesMatched int
	// ExtensionTests counts child-extension tests performed
	// (homomorphism tests for the naive algorithm, pebble games for
	// the Theorem 1 algorithm).
	ExtensionTests int
	// PebbleAssignments accumulates the partial assignments
	// enumerated by pebble closures (zero for the naive algorithm).
	PebbleAssignments int
	// Accepted is the decision.
	Accepted bool
}

// EvalNaiveStats is EvalNaive with instrumentation.
func EvalNaiveStats(f ptree.Forest, g *rdf.Graph, mu rdf.Mapping) (bool, EvalStats) {
	var st EvalStats
	for _, t := range f {
		st.TreesProbed++
		s, ok := FindMatchedSubtree(t, g, mu)
		if !ok {
			continue
		}
		st.SubtreesMatched++
		extendable := false
		for _, n := range s.Children() {
			st.ExtensionTests++
			if hom.ExistsExtending(n.Pattern, mu, g) {
				extendable = true
				break
			}
		}
		if !extendable {
			st.Accepted = true
			return true, st
		}
	}
	return false, st
}

// EvalPebbleStats is EvalPebble with instrumentation.
func EvalPebbleStats(k int, f ptree.Forest, g *rdf.Graph, mu rdf.Mapping) (bool, EvalStats) {
	var st EvalStats
	for _, t := range f {
		st.TreesProbed++
		s, ok := FindMatchedSubtree(t, g, mu)
		if !ok {
			continue
		}
		st.SubtreesMatched++
		x := s.Vars()
		restricted := mu.Restrict(x)
		extendable := false
		for _, n := range s.Children() {
			st.ExtensionTests++
			union := s.Pattern().Union(n.Pattern)
			gt := hom.NewGTGraph(union, x)
			res := pebble.DecideStats(k+1, gt, restricted, g)
			st.PebbleAssignments += res.Assignments
			if res.Win {
				extendable = true
				break
			}
		}
		if !extendable {
			st.Accepted = true
			return true, st
		}
	}
	return false, st
}
