package core_test

import (
	"math/rand"
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/ptree"
	"wdsparql/internal/sparql"
)

func forestOf(t *testing.T, src string) ptree.Forest {
	t.Helper()
	f, err := ptree.WDPF(sparql.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRefuteContainmentBasic(t *testing.T) {
	p1 := forestOf(t, `(?x p ?y)`)
	p2 := forestOf(t, `((?x p ?y) OPT (?y q ?z))`)
	// ⟦P2⟧ ⊄ ⟦P1⟧: an extended solution {x,y,z} is never in ⟦P1⟧.
	ce, ok := core.RefuteContainment(p2, p1)
	if !ok {
		t.Fatal("expected counterexample for P2 ⊑ P1")
	}
	if !ce.Verify(p2, p1) {
		t.Fatal("counterexample must verify")
	}
	// ⟦P1⟧ ⊄ ⟦P2⟧ either: on data with a q-edge, the bare pair is a
	// P1-solution but not maximal for P2.
	ce, ok = core.RefuteContainment(p1, p2)
	if !ok {
		t.Fatal("expected counterexample for P1 ⊑ P2")
	}
	if !ce.Verify(p1, p2) {
		t.Fatal("counterexample must verify")
	}
}

func TestRefuteContainmentIdentity(t *testing.T) {
	p := forestOf(t, `((?x p ?y) OPT (?y q ?z))`)
	if _, ok := core.RefuteContainment(p, p); ok {
		t.Fatal("a query contains itself")
	}
	if _, _, ok := core.RefuteEquivalence(p, p); ok {
		t.Fatal("a query is equivalent to itself")
	}
}

func TestRefuteContainmentUnionSuperset(t *testing.T) {
	// F1 = single branch, F2 = F1 UNION something: ⟦F1⟧ ⊆ ⟦F2⟧ holds;
	// the refuter must stay silent in that direction and fire in the
	// other.
	f1 := forestOf(t, `((?x p ?y) OPT (?y q ?z))`)
	f2 := forestOf(t, `((?x p ?y) OPT (?y q ?z)) UNION (?a r ?b)`)
	if ce, ok := core.RefuteContainment(f1, f2); ok {
		t.Fatalf("false counterexample: %v over %s", ce.Mu, ce.G)
	}
	ce, ok := core.RefuteContainment(f2, f1)
	if !ok {
		t.Fatal("the r-branch escapes F1")
	}
	if !ce.Verify(f2, f1) {
		t.Fatal("verify")
	}
}

// All counterexamples found on random pattern pairs must verify
// (soundness), and identical forests never yield one.
func TestQuickRefuteContainmentSound(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	found := 0
	for trial := 0; trial < 60; trial++ {
		p1, ok1 := gen.RandomWDPattern(rng, gen.PatternOpts{Depth: 2})
		p2, ok2 := gen.RandomWDPattern(rng, gen.PatternOpts{Depth: 2})
		if !ok1 || !ok2 {
			t.Fatal("generator failed")
		}
		f1, err := ptree.WDPF(p1)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := ptree.WDPF(p2)
		if err != nil {
			t.Fatal(err)
		}
		if ce, ok := core.RefuteContainment(f1, f2); ok {
			found++
			if !ce.Verify(f1, f2) {
				t.Fatalf("unsound counterexample for %s ⊑ %s", p1, p2)
			}
		}
		if _, ok := core.RefuteContainment(f1, f1); ok {
			t.Fatalf("self-containment refuted for %s", p1)
		}
	}
	if found == 0 {
		t.Fatal("refuter never fired on random pairs; suspicious")
	}
}

// The Example 4 forest: T2's solutions over its own canonical
// instances are covered by F_k (trivially, T2 ∈ F_k), but T2 alone
// does not contain F_k.
func TestRefuteContainmentFk(t *testing.T) {
	f := gen.Fk(2)
	t2 := ptree.Forest{f[1]}
	if _, ok := core.RefuteContainment(t2, f); ok {
		t.Fatal("T2 ⊑ F_k must hold (T2 is a branch of F_k)")
	}
	ce, ok := core.RefuteContainment(f, t2)
	if !ok {
		t.Fatal("F_k ⊄ T2")
	}
	if !ce.Verify(f, t2) {
		t.Fatal("verify")
	}
}
