package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// Randomized verification of Proposition 5 — dw(P) = bw(P) for
// UNION-free well-designed patterns — on generated patterns, plus
// structural laws of the width measures.

func TestQuickProposition5Random(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	used := 0
	for tries := 0; used < 60 && tries < 6000; tries++ {
		p := randPattern(rng, 2+rng.Intn(2))
		if !sparql.IsWellDesigned(p) {
			continue
		}
		tree, err := ptree.FromPattern(p)
		if err != nil {
			t.Fatalf("translate %s: %v", p, err)
		}
		used++
		dw := core.DominationWidth(ptree.Forest{tree})
		bw := core.BranchTreewidth(tree)
		if dw != bw {
			t.Fatalf("Proposition 5 violated on %s:\ndw=%d bw=%d\ntree:\n%s", p, dw, bw, tree)
		}
	}
	if used < 30 {
		t.Fatalf("generator too weak: %d cases", used)
	}
}

// dw of a forest never exceeds the max bw of its trees (domination can
// only help), and all widths are ≥ 1.
func TestQuickForestWidthLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	used := 0
	for tries := 0; used < 40 && tries < 6000; tries++ {
		p1 := randPattern(rng, 2)
		p2 := randPattern(rng, 2)
		u := sparql.Union(p1, p2)
		if !sparql.IsWellDesigned(u) {
			continue
		}
		f, err := ptree.WDPF(u)
		if err != nil {
			t.Fatal(err)
		}
		used++
		dw := core.DominationWidth(f)
		maxBW := 1
		for _, tr := range f {
			if b := core.BranchTreewidth(tr); b > maxBW {
				maxBW = b
			}
		}
		if dw < 1 || dw > maxBW {
			t.Fatalf("dw=%d outside [1, maxBW=%d] for %s", dw, maxBW, u)
		}
		if lw := core.LocalWidth(f); lw < 1 {
			t.Fatalf("local width %d < 1", lw)
		}
	}
	if used < 20 {
		t.Fatalf("generator too weak: %d cases", used)
	}
}

// TW/CTW laws: ctw ≤ tw, both ≥ 1; CTW invariant under adding a
// dominated (foldable) part.
func TestQuickWidthLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 150; trial++ {
		nvars := 2 + rng.Intn(4)
		var ts []rdf.Triple
		vt := func() rdf.Term { return rdf.Var(fmt.Sprintf("v%d", rng.Intn(nvars))) }
		for i := 0; i < 2+rng.Intn(4); i++ {
			ts = append(ts, rdf.T(vt(), rdf.IRI("p"), vt()))
		}
		var x []rdf.Term
		if rng.Intn(2) == 0 {
			x = append(x, rdf.Var("v0"))
		}
		g := hom.NewGTGraph(hom.NewTGraph(ts...), x)
		tw := core.TW(g)
		ctw := core.CTW(g)
		if ctw > tw || ctw < 1 || tw < 1 {
			t.Fatalf("trial %d: tw=%d ctw=%d for %s", trial, tw, ctw, g)
		}
	}
}

// The instrumented evaluators agree with the plain ones.
func TestStatsEvaluatorsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	used := 0
	for tries := 0; used < 50 && tries < 4000; tries++ {
		p := randPattern(rng, 2)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatal(err)
		}
		g := randData(rng)
		for _, mu := range []rdf.Mapping{{"x": "a"}, {"x": "a", "y": "b"}, {}} {
			wantN := core.EvalNaive(f, g, mu)
			gotN, stN := core.EvalNaiveStats(f, g, mu)
			if gotN != wantN || stN.Accepted != wantN {
				t.Fatalf("naive stats disagree on %s / %s", p, mu)
			}
			wantP := core.EvalPebble(1, f, g, mu)
			gotP, stP := core.EvalPebbleStats(1, f, g, mu)
			if gotP != wantP || stP.Accepted != wantP {
				t.Fatalf("pebble stats disagree on %s / %s", p, mu)
			}
			if stN.TreesProbed == 0 {
				t.Fatal("stats should count probed trees")
			}
		}
	}
}

// EvalPebble soundness (one half of Theorem 1 that holds without any
// width assumption): whenever the true answer is "no", the pebble
// algorithm answers "no" for every k.
func TestPebbleSoundnessAnyK(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	used := 0
	for tries := 0; used < 60 && tries < 4000; tries++ {
		p := randPattern(rng, 2)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatal(err)
		}
		g := randData(rng)
		truth := core.EnumerateForest(f, g)
		for _, mu := range []rdf.Mapping{{"x": "a"}, {"x": "a", "y": "b"}, {"y": "c", "z": "d"}} {
			if truth.Contains(mu) {
				continue
			}
			for k := 1; k <= 3; k++ {
				if core.EvalPebble(k, f, g, mu) {
					t.Fatalf("unsound accept (k=%d) of %s on %s", k, mu, p)
				}
			}
		}
	}
}

// FindMatchedSubtree: the witness must be matched by µ and be the
// unique subtree with vars = dom(µ).
func TestFindMatchedSubtree(t *testing.T) {
	f := gen.Fk(3)
	g := gen.FkData(3, 8, true, false)
	mu := gen.FkMu()
	s, ok := core.FindMatchedSubtree(f[0], g, mu)
	if !ok {
		t.Fatal("witness must exist")
	}
	if s.Size() != 1 {
		t.Fatalf("witness is the root only: %v", s)
	}
	// A mapping with an unmatchable binding has no witness.
	if _, ok := core.FindMatchedSubtree(f[0], g, rdf.Mapping{"x": "a", "y": "zzz"}); ok {
		t.Fatal("unmatchable µ must have no witness")
	}
	// dom(µ) not equal to any subtree's vars: no witness.
	if _, ok := core.FindMatchedSubtree(f[0], g, rdf.Mapping{"x": "a"}); ok {
		t.Fatal("partial-domain µ must have no witness")
	}
}
