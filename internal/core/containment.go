package core

import (
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
)

// Containment refutation for well-designed pattern forests. Deciding
// ⟦F1⟧G ⊆ ⟦F2⟧G for all G is Π₂ᵖ-complete even for wdPTs
// (Pichler–Skritek, the paper's [24]), so this module provides the
// canonical-instance *refutation* procedure: it freezes the pattern of
// every subtree of F1 into a concrete RDF graph and tests whether the
// frozen identity mapping separates the two queries. A returned
// counterexample is always genuine (soundness is immediate — it is an
// actual graph and mapping); absence of a counterexample among the
// canonical instances does not prove containment in general.

// Counterexample witnesses non-containment: Mu ∈ ⟦F1⟧G \ ⟦F2⟧G.
type Counterexample struct {
	G  *rdf.Graph
	Mu rdf.Mapping
}

const frozenPrefix = "frozen:"

// freezeTGraph freezes the variables of a t-graph into IRIs, keeping
// genuine IRIs unchanged (the paper's Ψ from Section 4.2).
func freezeTGraph(ts []rdf.Triple) (*rdf.Graph, rdf.Mapping) {
	conv := func(t rdf.Term) rdf.Term {
		if t.IsVar() {
			return rdf.IRI(frozenPrefix + t.Value)
		}
		return t
	}
	g := rdf.NewGraph()
	mu := rdf.NewMapping()
	for _, tr := range ts {
		g.Add(rdf.T(conv(tr.S), conv(tr.P), conv(tr.O)))
		for _, v := range tr.Vars() {
			mu[v.Value] = frozenPrefix + v.Value
		}
	}
	return g, mu
}

// RefuteContainment searches canonical instances for a counterexample
// to ⟦F1⟧ ⊆ ⟦F2⟧. The candidate pool freezes pat(T1') for every
// subtree T1' of F1, optionally merged with pat(T2') of a subtree of
// F2 under the identity correspondence of variable names — the merged
// instances catch separations caused by F2's optional parts becoming
// satisfiable (e.g. ⟦(?x p ?y)⟧ ⊄ ⟦(?x p ?y) OPT (?y q ?z)⟧ needs a
// graph with a q-edge). The probe mapping is always the frozen
// identity on vars(T1'). It returns the first counterexample found, or
// ok=false when every canonical instance is consistent with
// containment (which does NOT prove containment in general).
func RefuteContainment(f1, f2 ptree.Forest) (Counterexample, bool) {
	sub2 := ptree.EnumerateForestSubtrees(f2)
	for _, fs := range ptree.EnumerateForestSubtrees(f1) {
		base := fs.Subtree.Pattern()
		candidates := [][]rdf.Triple{base}
		for _, fs2 := range sub2 {
			candidates = append(candidates, base.Union(fs2.Subtree.Pattern()))
		}
		_, muVars := freezeTGraph(base)
		for _, cand := range candidates {
			g, _ := freezeTGraph(cand)
			if EvalNaive(f1, g, muVars) && !EvalNaive(f2, g, muVars) {
				return Counterexample{G: g, Mu: muVars}, true
			}
		}
	}
	return Counterexample{}, false
}

// RefuteEquivalence searches canonical instances of both forests for a
// mapping on which they disagree. dir reports the direction: +1 means
// the witness is in ⟦F1⟧ \ ⟦F2⟧, -1 the converse.
func RefuteEquivalence(f1, f2 ptree.Forest) (Counterexample, int, bool) {
	if ce, ok := RefuteContainment(f1, f2); ok {
		return ce, +1, true
	}
	if ce, ok := RefuteContainment(f2, f1); ok {
		return ce, -1, true
	}
	return Counterexample{}, 0, false
}

// Verify checks that the counterexample is genuine for the claim
// ⟦F1⟧ ⊆ ⟦F2⟧; used by tests and by callers that want a certificate.
func (ce Counterexample) Verify(f1, f2 ptree.Forest) bool {
	return EvalNaive(f1, ce.G, ce.Mu) && !EvalNaive(f2, ce.G, ce.Mu)
}
