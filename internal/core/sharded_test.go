package core_test

// Cross-validation of the sharded storage backend at the enumeration
// layer, over the full Parallel(n) × Shard(m) cross product: the row
// stream of a compiled forest must be byte-identical — content and
// order — to the sequential stream over the unsharded map-backed
// graph, for every worker count and every shard count, on randomized
// well-designed forests. Run under -race in CI, this doubles as the
// race check for the shard-grouped worker scheduling of RowsParallel.

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// collectParallel materialises the RowsParallel stream of a compiled
// forest as cloned rows.
func collectParallel(f ptree.Forest, g *rdf.Graph, workers int) []rdf.Row {
	var out []rdf.Row
	core.CompileForest(f, g).RowsParallel(context.Background(), workers, func(r rdf.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

func TestParallelTimesShardCrossProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	grid := []int{1, 2, 4}
	tried, used := 0, 0
	for used < 60 && tried < 5000 {
		tried++
		p := randPattern(rng, 3)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatalf("case %d: wdpf: %v", used, err)
		}
		gm := randData(rng)
		want := collectRows(f, gm) // sequential, unsharded: the pinned stream
		for _, m := range grid {
			gs := gm.Clone().Shard(m)
			for _, n := range grid {
				got := collectParallel(f, gs, n)
				if len(got) != len(want) {
					t.Fatalf("case %d (%s): Parallel(%d)×Shard(%d): %d rows, want %d",
						used, sparql.Format(p), n, m, len(got), len(want))
				}
				for i := range want {
					if !slices.Equal(got[i], want[i]) {
						t.Fatalf("case %d (%s): Parallel(%d)×Shard(%d): row %d: %v, want %v",
							used, sparql.Format(p), n, m, i, got[i], want[i])
					}
				}
			}
		}
	}
	if used < 30 {
		t.Fatalf("generator starved: only %d well-designed patterns in %d tries", used, tried)
	}
}

// Early termination through the parallel merge must behave identically
// on sharded and unsharded graphs: a Limit-style prefix of the stream
// is a prefix of the sequential unsharded stream.
func TestParallelShardPrefixTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tried, used := 0, 0
	for used < 20 && tried < 3000 {
		tried++
		p := randPattern(rng, 3)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatal(err)
		}
		gm := randData(rng)
		want := collectRows(f, gm)
		if len(want) < 3 {
			continue
		}
		used++
		gs := gm.Clone().Shard(3)
		limit := 1 + rng.Intn(len(want)-1)
		var got []rdf.Row
		core.CompileForest(f, gs).RowsParallel(context.Background(), 4, func(r rdf.Row) bool {
			got = append(got, r.Clone())
			return len(got) < limit
		})
		if len(got) != limit {
			t.Fatalf("case %d: early stop yielded %d rows, want %d", used, len(got), limit)
		}
		for i := range got {
			if !slices.Equal(got[i], want[i]) {
				t.Fatalf("case %d: prefix row %d diverges", used, i)
			}
		}
	}
}

// Decision procedures agree on sharded graphs, mirroring the frozen
// agreement test: wdEVAL sees the same graph through every backend.
func TestShardedDecisionAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tried, used := 0, 0
	for used < 25 && tried < 3000 {
		tried++
		p := randPattern(rng, 2)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatal(err)
		}
		gm := randData(rng)
		gs := gm.Clone().Shard(2 + used%3)
		probes := append(sparql.Eval(p, gm).Slice(),
			rdf.Mapping{"x": "a"}, rdf.Mapping{"x": "a", "y": "b"}, rdf.Mapping{})
		for _, mu := range probes {
			if core.EvalNaive(f, gm, mu) != core.EvalNaive(f, gs, mu) {
				t.Fatalf("case %d: EvalNaive disagrees on %v", used, mu)
			}
			if core.EvalPebble(1, f, gm, mu) != core.EvalPebble(1, f, gs, mu) {
				t.Fatalf("case %d: EvalPebble disagrees on %v", used, mu)
			}
		}
	}
}
