package core_test

import (
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
)

// These tests machine-check the paper's worked examples: the width
// claims of Example 3 (Figure 1), the GtG structure of Example 4
// (Figures 2–3), the domination width claim of Example 5, and the
// branch-treewidth family of Section 3.2. They are the ground truth
// for the reproduction.

// Example 3: (S, X) is a core with ctw(S, X) = k − 1; (S', X) has
// tw(S', X) = k − 1 but ctw(S', X) = 1.
func TestExample3Widths(t *testing.T) {
	for k := 2; k <= 5; k++ {
		s := gen.ExampleS(k)
		if !hom.IsCore(s) {
			t.Fatalf("k=%d: (S,X) should be a core", k)
		}
		if got := core.CTW(s); got != k-1 {
			t.Fatalf("k=%d: ctw(S,X)=%d, want %d", k, got, k-1)
		}
		sp := gen.ExampleSPrime(k)
		if got := core.TW(sp); got != k-1 {
			t.Fatalf("k=%d: tw(S',X)=%d, want %d", k, got, k-1)
		}
		if got := core.CTW(sp); got != 1 {
			t.Fatalf("k=%d: ctw(S',X)=%d, want 1", k, got)
		}
	}
}

// Example 3's core of (S', X) is C' = {(?z,q,?x), (?x,p,?y),
// (?y,r,?o), (?o,r,?o)} — four triples.
func TestExample3CoreShape(t *testing.T) {
	c := hom.Core(gen.ExampleSPrime(4))
	if len(c.S) != 4 {
		t.Fatalf("core of (S',X) should have 4 triples, got %s", c.S)
	}
}

// Example 4: the subtrees of F_k with non-empty GtG and their GtG
// sizes: GtG(T1[r1]) has the two elements S_∆1, S_∆2; GtG(T1[r1,n11])
// and GtG(T1[r1,n12]) are singletons.
func TestExample4GtG(t *testing.T) {
	k := 3
	f := gen.Fk(k)
	nonEmpty := map[string]int{}
	for _, fs := range ptree.EnumerateForestSubtrees(f) {
		gtg := ptree.GtG(fs)
		if len(gtg) > 0 {
			key := subtreeKey(fs)
			nonEmpty[key] = len(gtg)
		}
	}
	// Expected: T1[r1] (2 elements), T1[r1,n11] (1), T1[r1,n12] (1),
	// T2[r2] (2, same as T1[r1]), T3[r3] (1, same as T1[r1,n11]).
	want := map[string]int{
		"t0:{0}":   2,
		"t0:{0,2}": 1, // r1 + n11 (child order: n12 sorts before n11)
		"t0:{0,1}": 1, // r1 + n12
		"t1:{0}":   2,
		"t2:{0}":   1,
	}
	if len(nonEmpty) != len(want) {
		t.Fatalf("non-empty GtG subtrees: got %v, want %v", nonEmpty, want)
	}
	for key, size := range want {
		if nonEmpty[key] != size {
			t.Fatalf("GtG size at %s: got %d, want %d (all: %v)", key, nonEmpty[key], size, nonEmpty)
		}
	}
}

func subtreeKey(fs ptree.ForestSubtree) string {
	return "t" + string(rune('0'+fs.TreeIndex)) + ":" + fs.Subtree.String()
}

// Example 5: dw(F_k) = 1 for every k ≥ 2, although F_k is not locally
// tractable (local width = k − 1 due to node n12).
func TestExample5DominationWidth(t *testing.T) {
	for k := 2; k <= 4; k++ {
		f := gen.Fk(k)
		if got := core.DominationWidth(f); got != 1 {
			t.Fatalf("k=%d: dw(F_k)=%d, want 1", k, got)
		}
		if got := core.LocalWidth(f); got != max(1, k-1) {
			t.Fatalf("k=%d: local width=%d, want %d", k, got, max(1, k-1))
		}
	}
}

// Section 3.2: bw(T'_k) = 1 for every k, while ctw(pat(n_k), {?y}) =
// k − 1, so the family has bounded branch treewidth without being
// locally tractable.
func TestSection32BranchTreewidth(t *testing.T) {
	for k := 2; k <= 5; k++ {
		tk := gen.TkPrime(k)
		if got := core.BranchTreewidth(tk); got != 1 {
			t.Fatalf("k=%d: bw(T'_k)=%d, want 1", k, got)
		}
		if got := core.LocalWidth(ptree.Forest{tk}); got != max(1, k-1) {
			t.Fatalf("k=%d: local width=%d, want %d", k, got, k-1)
		}
	}
}

// Proposition 5: dw(P) = bw(P) for UNION-free patterns; checked on the
// T'_k family and on the unbounded-width clique family.
func TestProposition5(t *testing.T) {
	for k := 2; k <= 4; k++ {
		tk := gen.TkPrime(k)
		dw := core.DominationWidth(ptree.Forest{tk})
		bw := core.BranchTreewidth(tk)
		if dw != bw {
			t.Fatalf("T'_%d: dw=%d bw=%d, Proposition 5 violated", k, dw, bw)
		}
		ck := gen.CliqueChild(k)
		dw = core.DominationWidth(ptree.Forest{ck})
		bw = core.BranchTreewidth(ck)
		if dw != bw {
			t.Fatalf("CliqueChild(%d): dw=%d bw=%d, Proposition 5 violated", k, dw, bw)
		}
		if want := max(1, k-1); dw != want {
			t.Fatalf("CliqueChild(%d): dw=%d, want %d", k, dw, want)
		}
	}
}

// The GridChild family has dw = bw = min(rows, cols) (grid treewidth),
// confirming unboundedness along both dimensions.
func TestGridChildWidth(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {2, 3}, {3, 3}} {
		g := gen.GridChild(dims[0], dims[1])
		want := dims[0]
		if dims[1] < want {
			want = dims[1]
		}
		if got := core.BranchTreewidth(g); got != want {
			t.Fatalf("GridChild(%d,%d): bw=%d, want %d", dims[0], dims[1], got, want)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
