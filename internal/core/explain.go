package core

// Explain renders a compiled forest's query plans for observability:
// one node per wdPT node, carrying the node's patterns in compiled
// (original) order plus the planner's chosen execution order with
// per-step cardinality estimates and probe sides. The structs are
// plain data with JSON tags so every surface (PreparedQuery.Explain,
// wdsparql -explain, wdserve ?explain=1) serialises them unchanged.

// ExplainStep is one step of a node's planned pattern order.
type ExplainStep struct {
	// Pattern is the triple pattern in SPARQL-ish text.
	Pattern string `json:"pattern"`
	// Index is the pattern's position in the node's original list.
	Index int `json:"index"`
	// Est is the planner's cardinality estimate for this step, given
	// the slots bound by earlier steps and ancestor nodes.
	Est float64 `json:"est"`
	// Base is the exact posting-list cardinality of the pattern's
	// constants-only skeleton.
	Base int `json:"base"`
	// Side names the index shape probed once the promised slots are
	// bound ("SP", "PO", ..., "scan").
	Side string `json:"side"`
}

// ExplainNode is one wdPT node of the explain tree.
type ExplainNode struct {
	Patterns []string `json:"patterns"`
	// Filters renders the node's FILTER conjuncts, each marked
	// [pushed] (evaluated inside the node's search, pruning at bind
	// time) or [deferred] (evaluated per emitted subtree solution).
	Filters  []string       `json:"filters,omitempty"`
	Order    []ExplainStep  `json:"order,omitempty"`
	Children []*ExplainNode `json:"children,omitempty"`
}

// Explain returns the plan trees of the compiled forest, one per tree
// root, in forest order.
func (fp *ForestProgram) Explain() []*ExplainNode {
	out := make([]*ExplainNode, 0, len(fp.roots))
	for _, r := range fp.roots {
		out = append(out, fp.explainNode(r))
	}
	return out
}

func (fp *ForestProgram) explainNode(cn *compiledNode) *ExplainNode {
	en := &ExplainNode{}
	for i := 0; i < cn.prog.NumPatterns(); i++ {
		en.Patterns = append(en.Patterns, cn.prog.RenderPattern(i, fp.layout))
	}
	en.Filters = append(en.Filters, cn.filterNotes...)
	if pl := cn.prog.Plan(); pl != nil {
		for _, st := range pl.Steps {
			en.Order = append(en.Order, ExplainStep{
				Pattern: cn.prog.RenderPattern(st.Pat, fp.layout),
				Index:   st.Pat,
				Est:     st.Est,
				Base:    st.Base,
				Side:    st.Side,
			})
		}
	}
	for _, c := range cn.children {
		en.Children = append(en.Children, fp.explainNode(c))
	}
	return en
}
