package core_test

// Cross-validation of the frozen storage backend at the enumeration
// layer: ForestProgram.Rows must yield the IDENTICAL stream — content
// and order, byte for byte — on a frozen graph and on its map-backed
// twin, for randomized well-designed forests. This is the determinism
// invariant the ROADMAP pins for the enumeration pipeline ("parallel
// == sequential, sharded backends merge in order"): the storage
// backend must be unobservable through the row iterator.

import (
	"math/rand"
	"slices"
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// collectRows materialises the stream of a compiled forest as cloned
// rows.
func collectRows(f ptree.Forest, g *rdf.Graph) []rdf.Row {
	var out []rdf.Row
	core.CompileForest(f, g).Rows(func(r rdf.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

func TestFrozenEnumerationStreamIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tried, used := 0, 0
	for used < 120 && tried < 5000 {
		tried++
		p := randPattern(rng, 3)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatalf("case %d: wdpf: %v", used, err)
		}
		gm := randData(rng)
		gf := gm.Clone().Freeze()
		rowsM := collectRows(f, gm)
		rowsF := collectRows(f, gf)
		if len(rowsM) != len(rowsF) {
			t.Fatalf("case %d (%s): %d rows map vs %d frozen", used, sparql.Format(p), len(rowsM), len(rowsF))
		}
		for i := range rowsM {
			if !slices.Equal(rowsM[i], rowsF[i]) {
				t.Fatalf("case %d (%s): row %d: %v map vs %v frozen",
					used, sparql.Format(p), i, rowsM[i], rowsF[i])
			}
		}
		// The one-shot enumeration agrees too (same sets, same order).
		sm := core.EnumerateTopDownForestID(f, gm)
		sf := core.EnumerateTopDownForestID(f, gf)
		if sm.Len() != sf.Len() {
			t.Fatalf("case %d: EnumerateTopDownForestID %d vs %d", used, sm.Len(), sf.Len())
		}
		for i := 0; i < sm.Len(); i++ {
			if !slices.Equal(sm.Row(i), sf.Row(i)) {
				t.Fatalf("case %d: enumeration row %d differs", used, i)
			}
		}
	}
	if used < 60 {
		t.Fatalf("generator starved: only %d well-designed patterns in %d tries", used, tried)
	}
}

// Decision procedures agree on frozen graphs: wdEVAL through the
// naive and pebble algorithms sees the same graph either way.
func TestFrozenDecisionAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tried, used := 0, 0
	for used < 40 && tried < 3000 {
		tried++
		p := randPattern(rng, 2)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatal(err)
		}
		gm := randData(rng)
		gf := gm.Clone().Freeze()
		probes := append(sparql.Eval(p, gm).Slice(),
			rdf.Mapping{"x": "a"}, rdf.Mapping{"x": "a", "y": "b"}, rdf.Mapping{})
		for _, mu := range probes {
			if core.EvalNaive(f, gm, mu) != core.EvalNaive(f, gf, mu) {
				t.Fatalf("case %d: EvalNaive disagrees on %v", used, mu)
			}
			if core.EvalPebble(1, f, gm, mu) != core.EvalPebble(1, f, gf, mu) {
				t.Fatalf("case %d: EvalPebble disagrees on %v", used, mu)
			}
		}
	}
}
