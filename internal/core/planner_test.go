package core_test

import (
	"math/rand"
	"slices"
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
)

// The planner's determinism contract at the forest level, across every
// storage backend: Tuned(ModePlanned) must reproduce the heuristic row
// stream byte for byte with nodes visited ≤, and Tuned(ModeStrict)
// must agree on the cardinality.

func collectForest(fp *core.ForestProgram) []rdf.Row {
	var out []rdf.Row
	fp.Rows(func(r rdf.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

// plannerOverlayTwin rebuilds g as a sealed base with the second half
// of the triples applied as live deltas (mirrors the wdfuzz twin).
func plannerOverlayTwin(g *rdf.Graph, shards int) *rdf.Graph {
	ids := g.TriplesID()
	og := rdf.NewGraph()
	cut := len(ids) / 2
	for _, id := range ids[:cut] {
		t := g.Dict().DecodeTriple(id)
		og.AddTriple(t.S.Value, t.P.Value, t.O.Value)
	}
	if shards > 1 {
		og.Shard(shards)
	} else {
		og.Freeze()
	}
	for _, id := range ids[cut:] {
		t := g.Dict().DecodeTriple(id)
		og.AddDeltaTriple(t.S.Value, t.P.Value, t.O.Value)
	}
	return og
}

func TestTunedModesAcrossBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 60; trial++ {
		p, ok := gen.RandomWDPattern(rng, gen.PatternOpts{Depth: 3})
		if !ok {
			t.Fatal("pattern generator exhausted")
		}
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatalf("wdpf: %v", err)
		}
		g := gen.Random(8, 14, 2, rng.Int63())
		backends := []struct {
			name string
			g    *rdf.Graph
		}{
			{"map", g},
			{"frozen", g.Clone().Freeze()},
			{"sharded(3)", g.Clone().Shard(3)},
			{"frozen+ovl", plannerOverlayTwin(g, 0)},
			{"sharded(3)+ovl", plannerOverlayTwin(g, 3)},
		}
		for _, b := range backends {
			fp := core.CompileForest(f, b.g)
			var stH, stP hom.SearchStats
			heur := collectForest(fp.Tuned(hom.ModeHeuristic, 0, &stH))
			planned := collectForest(fp.Tuned(hom.ModePlanned, 0, &stP))
			if len(heur) != len(planned) {
				t.Fatalf("trial %d %s: %s: heuristic %d rows, planned %d",
					trial, b.name, p, len(heur), len(planned))
			}
			for i := range heur {
				if !slices.Equal(heur[i], planned[i]) {
					t.Fatalf("trial %d %s: %s: planned stream diverges at row %d",
						trial, b.name, p, i)
				}
			}
			if stP.Nodes > stH.Nodes {
				t.Fatalf("trial %d %s: planned visited %d nodes, heuristic %d",
					trial, b.name, stP.Nodes, stH.Nodes)
			}
			n := 0
			fp.Tuned(hom.ModeStrict, 0, nil).Rows(func(rdf.Row) bool { n++; return true })
			if n != len(heur) {
				t.Fatalf("trial %d %s: strict count %d, heuristic stream %d",
					trial, b.name, n, len(heur))
			}
		}
	}
}

// Tuned must not mutate the receiver: the original program keeps the
// heuristic mode.
func TestTunedIsCopyOnWrite(t *testing.T) {
	g := gen.Random(8, 20, 2, 3)
	v, i := rdf.Var, rdf.IRI
	f := ptree.Forest{ptree.FromSpec(ptree.Spec{Pattern: []rdf.Triple{
		rdf.T(v("x"), i("p0"), v("y")),
		rdf.T(v("y"), i("p1"), v("z")),
	}})}
	fp := core.CompileForest(f, g)
	before := collectForest(fp)
	tuned := fp.Tuned(hom.ModeStrict, 2, &hom.SearchStats{})
	if tuned == fp {
		t.Fatal("Tuned returned the receiver")
	}
	after := collectForest(fp)
	if len(before) != len(after) {
		t.Fatalf("Tuned mutated the receiver: %d rows before, %d after", len(before), len(after))
	}
	for i := range before {
		if !slices.Equal(before[i], after[i]) {
			t.Fatalf("Tuned mutated the receiver's stream at row %d", i)
		}
	}
}

// Explain exposes one plan per wdPT node with the node's own patterns,
// and child plans account for ancestor-bound entry slots in their
// first step's index side.
func TestExplainShape(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 8; i++ {
		g.AddTriple("s", "p0", "m")
		g.AddTriple("m", "p1", "t")
	}
	v, i := rdf.Var, rdf.IRI
	tree := ptree.FromSpec(ptree.Spec{
		Pattern: []rdf.Triple{rdf.T(v("x"), i("p0"), v("y"))},
		Children: []ptree.Spec{{
			Pattern: []rdf.Triple{rdf.T(v("y"), i("p1"), v("z"))},
		}},
	})
	fp := core.CompileForest(ptree.Forest{tree}, g)
	nodes := fp.Explain()
	if len(nodes) != 1 {
		t.Fatalf("Explain returned %d roots, want 1", len(nodes))
	}
	root := nodes[0]
	if len(root.Patterns) != 1 || len(root.Order) != 1 {
		t.Fatalf("root explain = %+v, want one pattern and one step", root)
	}
	if root.Order[0].Side != "P" {
		t.Fatalf("root step side = %q, want P (nothing bound at the root)", root.Order[0].Side)
	}
	if len(root.Children) != 1 {
		t.Fatalf("root has %d explain children, want 1", len(root.Children))
	}
	child := root.Children[0]
	if len(child.Order) != 1 {
		t.Fatalf("child explain = %+v, want one step", child)
	}
	if child.Order[0].Side != "SP" {
		t.Fatalf("child step side = %q, want SP (?y is entry-bound)", child.Order[0].Side)
	}
	if child.Patterns[0] == "" {
		t.Fatal("child pattern rendered empty")
	}
}
