package core_test

import (
	"math/rand"
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
)

// candidateMus returns a batch of mappings with mixed domains: all
// matches of the root pattern of each tree, plus some junk mappings
// (wrong values, wrong domains) that must evaluate to false or hit
// the no-witness path.
func candidateMus(f ptree.Forest, g *rdf.Graph) []rdf.Mapping {
	var mus []rdf.Mapping
	for _, t := range f {
		root := ptree.NewSubtree(t, t.Root.ID)
		mus = append(mus, hom.FindAll(root.Pattern(), g, 8)...)
	}
	mus = append(mus,
		rdf.Mapping{"x": "no-such-iri", "y": "b"},
		rdf.Mapping{"completely": "unrelated"},
		rdf.NewMapping(),
	)
	return mus
}

// EvalAll and EvalAllParallel agree with per-mapping Eval for both
// algorithms on the paper's families and on random data.
func TestEvalAllAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	type instance struct {
		f ptree.Forest
		g *rdf.Graph
	}
	var instances []instance
	for k := 2; k <= 3; k++ {
		instances = append(instances,
			instance{gen.Fk(k), gen.FkData(k, 12, false, false)},
			instance{gen.Fk(k), gen.FkData(k, 12, true, true)},
			instance{ptree.Forest{gen.TkPrime(k)}, gen.TkPrimeData(10, k)},
		)
	}
	instances = append(instances, instance{gen.Fk(2), gen.Random(10, 40, 3, rng.Int63())})
	for i, in := range instances {
		mus := candidateMus(in.f, in.g)
		for _, alg := range []core.Algorithm{core.AlgNaive, core.AlgPebble} {
			want := make([]bool, len(mus))
			for j, mu := range mus {
				want[j] = core.Eval(alg, 1, in.f, in.g, mu)
			}
			got := core.EvalAll(alg, 1, in.f, in.g, mus)
			for j := range mus {
				if got[j] != want[j] {
					t.Fatalf("instance %d, %s: EvalAll[%d] = %v, Eval = %v (µ=%v)",
						i, alg, j, got[j], want[j], mus[j])
				}
			}
			gotPar := core.EvalAllParallel(alg, 1, in.f, in.g, mus, 4)
			for j := range mus {
				if gotPar[j] != want[j] {
					t.Fatalf("instance %d, %s: EvalAllParallel[%d] = %v, Eval = %v (µ=%v)",
						i, alg, j, gotPar[j], want[j], mus[j])
				}
			}
		}
	}
}

// A single Evaluator reused across calls (cache warm) stays correct.
func TestEvaluatorReuse(t *testing.T) {
	f := gen.Fk(2)
	g := gen.FkData(2, 12, false, false)
	mu := gen.FkMu()
	for _, alg := range []core.Algorithm{core.AlgNaive, core.AlgPebble} {
		e := core.NewEvaluator(alg, 1, f, g)
		want := core.Eval(alg, 1, f, g, mu)
		for i := 0; i < 3; i++ {
			if got := e.Eval(mu); got != want {
				t.Fatalf("%s: reuse iteration %d: got %v, want %v", alg, i, got, want)
			}
		}
	}
}

// The batched path must preserve the headline E3 acceptance.
func TestEvalAllE3Acceptance(t *testing.T) {
	for k := 2; k <= 3; k++ {
		f := gen.Fk(k)
		g := gen.FkData(k, 12, false, false)
		mus := []rdf.Mapping{gen.FkMu()}
		if got := core.EvalAll(core.AlgNaive, 1, f, g, mus); !got[0] {
			t.Fatalf("k=%d: naive EvalAll rejected µ", k)
		}
		if got := core.EvalAll(core.AlgPebble, 1, f, g, mus); !got[0] {
			t.Fatalf("k=%d: pebble EvalAll rejected µ", k)
		}
	}
}
