package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// The top-down enumerator must agree exactly with the subtree-based
// Lemma 1 enumeration and the compositional semantics.

func TestTopDownAgainstEnumerate(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	used := 0
	for tries := 0; used < 120 && tries < 6000; tries++ {
		p := randPattern(rng, 3)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatal(err)
		}
		g := randData(rng)
		want := core.EnumerateForest(f, g)
		got := core.EnumerateTopDownForest(f, g)
		if want.Len() != got.Len() {
			t.Fatalf("pattern %s:\nsubtree enumeration %d, top-down %d\nwant=%v\ngot=%v",
				p, want.Len(), got.Len(), want.Slice(), got.Slice())
		}
		for _, mu := range want.Slice() {
			if !got.Contains(mu) {
				t.Fatalf("pattern %s: top-down missing %s", p, mu)
			}
		}
		if core.Count(f, g) != want.Len() {
			t.Fatal("Count disagrees")
		}
	}
	if used < 60 {
		t.Fatalf("generator too weak: %d", used)
	}
}

func TestTopDownOnStarQuery(t *testing.T) {
	// OptStar over a catalog: solutions must bind exactly the present
	// attributes (maximality).
	star := gen.OptStar(3)
	g := gen.ItemCatalog(12, 3, 5)
	f := ptree.Forest{star}
	got := core.EnumerateTopDownForest(f, g)
	want := core.EnumerateForest(f, g)
	if got.Len() != want.Len() || got.Len() != 12 {
		t.Fatalf("star solutions: topdown=%d enumerate=%d (want 12, one per item)",
			got.Len(), want.Len())
	}
	// Each solution's bound attributes must match the data exactly.
	for _, mu := range got.Slice() {
		item, ok := mu.Lookup(sparqlVar("s"))
		if !ok {
			t.Fatalf("solution without ?s: %s", mu)
		}
		for a := 0; a < 3; a++ {
			attr := attrName(a)
			bound := mu.Defined(sparqlVar(attrVal(a)))
			present := len(g.Match(tripleSPO(item.Value, attr))) > 0
			if bound != present {
				t.Fatalf("item %s attr %s: bound=%v present=%v (µ=%s)",
					item.Value, attr, bound, present, mu)
			}
		}
	}
}

func sparqlVar(name string) rdf.Term { return rdf.Var(name) }

func attrName(a int) string { return fmt.Sprintf("attr%d", a) }

func attrVal(a int) string { return fmt.Sprintf("a%d", a) }

func tripleSPO(subj, pred string) rdf.Triple {
	return rdf.T(rdf.IRI(subj), rdf.IRI(pred), rdf.Var("any"))
}

func TestTopDownOnChainQuery(t *testing.T) {
	chain := gen.OptChain(5)
	g := gen.PathData(8, 6, 9)
	f := ptree.Forest{chain}
	got := core.EnumerateTopDownForest(f, g)
	want := core.EnumerateForest(f, g)
	if got.Len() != want.Len() {
		t.Fatalf("chain: topdown=%d enumerate=%d", got.Len(), want.Len())
	}
}
