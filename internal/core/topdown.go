package core

import (
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
)

// This file implements the practical top-down enumeration of ⟦T⟧G.
// Where Enumerate iterates over all (exponentially many) subtrees,
// the top-down procedure walks the tree once per partial solution:
// starting from the homomorphisms of the root pattern, each child that
// admits a compatible extension must be extended (maximality), and —
// by the connectivity condition (3) of wdPTs — extensions through
// different children bind disjoint fresh variables, so per-child
// solution sets combine by cross product.
//
// The procedure still takes exponential time in the worst case (wdEVAL
// is coNP-complete and an answer can be exponentially large), but its
// cost is driven by the number of partial solutions rather than the
// number of subtrees. It is cross-validated against Enumerate and the
// compositional semantics in the test suite.

// EnumerateTopDown computes ⟦T⟧G by the top-down procedure, on string
// mappings. It is kept as the cross-validation reference and the perf
// baseline for the compiled row pipeline of topdownid.go (experiment
// E9); production callers go through EnumerateTopDownForest / Count /
// the *ID entry points, which run on rows.
func EnumerateTopDown(t *ptree.Tree, g *rdf.Graph) *rdf.MappingSet {
	out := rdf.NewMappingSet()
	for _, mu := range hom.FindAll(t.Root.Pattern, g, 0) {
		for _, sol := range extendThrough(t.Root.Children, mu, g) {
			out.Add(sol)
		}
	}
	return out
}

// EnumerateTopDownForest computes ⟦F⟧G = ⋃ ⟦Ti⟧G. It runs on the
// compiled row pipeline and decodes at the boundary; the signature is
// unchanged for existing callers.
func EnumerateTopDownForest(f ptree.Forest, g *rdf.Graph) *rdf.MappingSet {
	return EnumerateTopDownForestID(f, g).Decode(g.Dict())
}

// Count returns |⟦F⟧G|, counted on rows without decoding any term.
func Count(f ptree.Forest, g *rdf.Graph) int {
	return EnumerateTopDownForestID(f, g).Len()
}

// extendThrough returns the maximal extensions of µ through the given
// children. Children without a compatible extension are skipped (they
// never block maximality of µ itself); children with extensions MUST
// be extended, each independently, and the per-child solution sets are
// combined by cross product (their fresh variables are disjoint).
func extendThrough(children []*ptree.Node, mu rdf.Mapping, g *rdf.Graph) []rdf.Mapping {
	acc := []rdf.Mapping{mu}
	for _, c := range children {
		exts := childSolutions(c, mu, g)
		if len(exts) == 0 {
			continue
		}
		var next []rdf.Mapping
		for _, base := range acc {
			for _, e := range exts {
				// Disjoint fresh variables: union always succeeds.
				u, ok := base.Union(e)
				if !ok {
					// Cannot happen for wdPTs in NR normal form; keep
					// the defensive skip rather than panicking on
					// adversarial inputs.
					continue
				}
				next = append(next, u)
			}
		}
		acc = next
	}
	return acc
}

// childSolutions returns the maximal solutions contributed by child c
// under µ: for each compatible extension ν of pat(c), the recursive
// extensions of µ∪ν through c's children.
func childSolutions(c *ptree.Node, mu rdf.Mapping, g *rdf.Graph) []rdf.Mapping {
	var out []rdf.Mapping
	for _, nu := range hom.FindAll(mu.ApplyAll(c.Pattern), g, 0) {
		// Re-attach bindings of pat(c)'s variables that µ already
		// fixes, then recurse below c.
		full := nu.Clone()
		for _, v := range c.Vars() {
			if img, ok := mu.Lookup(v); ok {
				full[v.Value] = img.Value
			}
		}
		merged, ok := mu.Union(full)
		if !ok {
			continue
		}
		out = append(out, extendThrough(c.Children, merged, g)...)
	}
	return out
}
