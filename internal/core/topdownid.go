package core

import (
	"context"
	"slices"
	"sort"
	"sync"

	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// This file is the ID-native, compiled, streaming counterpart of
// topdown.go: the same top-down procedure behind Lemma 1, but with the
// whole forest compiled once against the graph (per-node RowPrograms
// over one shared SlotLayout) and partial solutions carried as flat
// rdf.Rows instead of string mappings. Extensions through a child bind
// slots in place and are undone on backtrack; per-child solution sets
// are combined slot-wise (the cross product of the string pipeline,
// without any map unions); and results stream through a pull-based
// yield so callers can stop after a limit without materialising ⟦T⟧G.
// EnumerateTopDownForest and Count are decode-at-the-boundary shims
// over this pipeline; EnumerateTopDown keeps the original string
// implementation as the cross-validation reference and perf baseline.

// compiledNode is one wdPT node compiled for row enumeration.
type compiledNode struct {
	idx      int // dense index across the whole forest compilation
	prog     *hom.RowProgram
	children []*compiledNode
	// subSlots are the layout slots of vars(subtree rooted here),
	// sorted ascending: exactly the slots a maximal extension through
	// this child may bind beyond the current partial solution.
	subSlots []int32
	// deferred holds the node's filter conjuncts that could not be
	// pushed into prog (they reach into optional descendants, or
	// pushdown is disabled), evaluated against each emitted solution
	// of this node's subtree. Local conjuncts live inside prog instead
	// and never appear here.
	deferred []*hom.FilterExpr
	// filterNotes renders every filter conjunct of the node for
	// explain output, marked [pushed] or [deferred].
	filterNotes []string
}

// ForestProgram is a wdPF compiled for repeated row enumeration
// against one graph. The program is immutable after CompileForest and
// safe for concurrent use: every enumeration (and every parallel
// worker) runs on its own enumState.
type ForestProgram struct {
	g      *rdf.Graph
	layout *rdf.SlotLayout
	roots  []*compiledNode
	nodes  int
	noPush bool // compile-time switch: keep every filter deferred

	// Per-execution search tuning, attached to every searcher a state
	// creates; set through Tuned, zero values mean the heuristic
	// pre-planner behaviour. One execution uses one mode for all its
	// searchers — the SplitTop/RunOn consistency the parallel
	// enumeration needs.
	mode  hom.SearchMode
	slack int
	stats *hom.SearchStats

	// Output shaping, set through Project: the projected layout, the
	// full-layout slot behind each output slot (-1: never bound), and
	// whether the output deduplicates. nil outLayout = raw full rows.
	outLayout *rdf.SlotLayout
	projSlots []int32
	distinct  bool
}

// Tuned returns a view of the program with the given search tuning:
// pattern-selection mode, strict-mode slack factor (≤ 0 selects the
// default) and optional effort counters (sequential executions only —
// the counters are unsynchronised). The view shares all compiled
// state with fp; compiling once and tuning per execution is the
// intended pattern.
func (fp *ForestProgram) Tuned(mode hom.SearchMode, slack int, stats *hom.SearchStats) *ForestProgram {
	out := *fp
	out.mode, out.slack, out.stats = mode, slack, stats
	return &out
}

// CompileOpts carries compile-time switches for CompileForestOpts.
type CompileOpts struct {
	// NoFilterPushdown keeps every FILTER conjunct at its node's
	// subtree emit point instead of pushing local conjuncts into the
	// node's search. Streams are identical either way (pushdown only
	// prunes earlier); the switch exists for ablation and
	// cross-validation.
	NoFilterPushdown bool
}

// CompileForest compiles every tree of the forest against the graph,
// assigning all forest variables dense slots in one shared layout (so
// rows of different trees dedup in a single key space).
func CompileForest(f ptree.Forest, g *rdf.Graph) *ForestProgram {
	return CompileForestOpts(f, g, CompileOpts{})
}

// CompileForestOpts is CompileForest with compile-time switches.
func CompileForestOpts(f ptree.Forest, g *rdf.Graph, opts CompileOpts) *ForestProgram {
	fp := &ForestProgram{g: g, layout: rdf.NewSlotLayout(), noPush: opts.NoFilterPushdown}
	for _, t := range f {
		fp.roots = append(fp.roots, fp.compileNode(t.Root, nil))
	}
	return fp
}

// CompileTree compiles a single tree (a one-tree forest program).
func CompileTree(t *ptree.Tree, g *rdf.Graph) *ForestProgram {
	return CompileForest(ptree.Forest{t}, g)
}

// compileNode compiles one wdPT node. entry lists the layout slots
// bound before any search of this node starts — the accumulated
// ancestor variables — which seed the node's compile-time join plan.
//
// Filter conjuncts split by scope: a conjunct whose variables all lie
// in entry ∪ vars(pat(n)) is fully bound the moment the node's own
// search completes, so it is pushed into the RowProgram (evaluated at
// bind time, pruning before recursion) — before planning, so equality
// restrictions sharpen the join-order estimates. Conjuncts reaching
// into optional descendants defer to the subtree's emit point, and
// lower only after the children are compiled, when their variables
// are interned.
func (fp *ForestProgram) compileNode(n *ptree.Node, entry []int32) *compiledNode {
	cn := &compiledNode{
		idx:  fp.nodes,
		prog: hom.CompileRowProgram(n.Pattern, fp.g, fp.layout),
	}
	fp.nodes++
	slots := map[int32]bool{}
	for _, v := range n.Vars() {
		slots[int32(fp.layout.Intern(v.Value))] = true
	}
	var deferredExprs []sparql.Expr
	if len(n.Filters) > 0 {
		scope := map[string]bool{}
		for _, s := range entry {
			scope[fp.layout.Name(int(s))] = true
		}
		for _, v := range n.Vars() {
			scope[v.Value] = true
		}
		for _, f := range n.Filters {
			local := true
			for _, v := range sparql.ExprVars(f) {
				if !scope[v.Value] {
					local = false
					break
				}
			}
			if local && !fp.noPush {
				cn.prog.AttachFilter(compileFilterExpr(f, fp.layout, fp.g.Dict()))
				cn.filterNotes = append(cn.filterNotes, f.String()+" [pushed]")
			} else {
				deferredExprs = append(deferredExprs, f)
				cn.filterNotes = append(cn.filterNotes, f.String()+" [deferred]")
			}
		}
	}
	cn.prog.BuildPlan(entry)
	// Entry-bound slots of the children: everything bound on arrival
	// here plus this node's own variables. Well-designedness makes
	// this exact — a variable shared between a child's subtree and
	// anything outside it (an ancestor or an earlier sibling's
	// subtree) must occur at this node or above, so accumulating down
	// the tree captures every slot a child's search can see bound.
	childEntry := entry
	if len(slots) > 0 {
		own := make([]int32, 0, len(slots))
		for s := range slots {
			if !slices.Contains(entry, s) {
				own = append(own, s)
			}
		}
		slices.Sort(own)
		childEntry = append(append(make([]int32, 0, len(entry)+len(own)), entry...), own...)
	}
	for _, c := range n.Children {
		cc := fp.compileNode(c, childEntry)
		cn.children = append(cn.children, cc)
		for _, s := range cc.subSlots {
			slots[s] = true
		}
	}
	for _, f := range deferredExprs {
		cn.deferred = append(cn.deferred, compileFilterExpr(f, fp.layout, fp.g.Dict()))
	}
	cn.subSlots = make([]int32, 0, len(slots))
	for s := range slots {
		cn.subSlots = append(cn.subSlots, s)
	}
	sort.Slice(cn.subSlots, func(i, j int) bool { return cn.subSlots[i] < cn.subSlots[j] })
	return cn
}

// Layout returns the layout of the rows the program streams: the
// projected layout after Project, the full forest layout otherwise.
func (fp *ForestProgram) Layout() *rdf.SlotLayout {
	if fp.outLayout != nil {
		return fp.outLayout
	}
	return fp.layout
}

// FullLayout returns the forest's full slot layout regardless of
// projection (complete after compilation).
func (fp *ForestProgram) FullLayout() *rdf.SlotLayout { return fp.layout }

// enumState is the per-enumeration scratch: one RowSearcher per node
// and the single row the partial solution lives in. stop, when non-nil,
// is polled at every yield boundary; once it reports true the whole
// enumeration unwinds as if yield had returned false — this is how
// context cancellation reaches the innermost recursion without the hot
// path paying for a channel read per row when no context is attached.
type enumState struct {
	fp        *ForestProgram
	searchers []*hom.RowSearcher
	row       rdf.Row
	stop      func() bool
}

func (st *enumState) stopped() bool { return st.stop != nil && st.stop() }

// ctxStop returns the stop predicate for ctx, or nil when ctx can never
// be cancelled (context.Background and friends), keeping the
// uncancellable path free of per-yield checks.
func ctxStop(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

func (fp *ForestProgram) newState() *enumState {
	st := &enumState{
		fp:        fp,
		searchers: make([]*hom.RowSearcher, fp.nodes),
		row:       fp.layout.NewRow(),
	}
	var walk func(n *compiledNode)
	walk = func(n *compiledNode) {
		st.searchers[n.idx] = n.prog.NewSearcher()
		st.searchers[n.idx].Tune(fp.mode, fp.slack, fp.stats)
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, r := range fp.roots {
		walk(r)
	}
	return st
}

// enumerateTree streams ⟦T⟧G for one tree: every maximal extension of
// every root homomorphism. It reports whether enumeration ran to
// exhaustion (false: yield stopped it). The row passed to yield is the
// state's working row — valid only during the call.
//
// For trees satisfying the wdPT connectivity condition (in particular
// everything ptree.WDPF produces) the streamed rows are pairwise
// distinct: root homomorphisms differ on root slots, extensions of one
// base through a child differ on the child's fresh slots, and distinct
// children bind disjoint fresh slots.
func (st *enumState) enumerateTree(root *compiledNode, yield func(rdf.Row) bool) bool {
	st.fp.layout.Reset(st.row)
	return st.searchers[root.idx].Run(st.row, func() bool {
		return st.extendThrough(root.children, 0, st.deferredFiltered(root, yield))
	})
}

// deferredFiltered wraps yield with the node's deferred filter check;
// nodes without deferred filters pay nothing.
func (st *enumState) deferredFiltered(n *compiledNode, yield func(rdf.Row) bool) func(rdf.Row) bool {
	if len(n.deferred) == 0 {
		return yield
	}
	return func(r rdf.Row) bool {
		if !st.passesDeferred(n) {
			return true // row fails a filter: skip, keep streaming
		}
		return yield(r)
	}
}

// extendThrough extends the current row maximally through the children
// cs[i:]: a child with no compatible extension is skipped (it never
// blocks maximality), a child with extensions MUST be extended, and
// per-child solution sets combine by cross product — realised here by
// binding each solution's slots in place and recursing to the next
// child.
func (st *enumState) extendThrough(cs []*compiledNode, i int, yield func(rdf.Row) bool) bool {
	if i == len(cs) {
		if st.stopped() {
			return false
		}
		return yield(st.row)
	}
	c := cs[i]
	sols := st.childSolutions(c)
	if len(sols) == 0 {
		return st.extendThrough(cs, i+1, yield)
	}
	row := st.row
	for _, vals := range sols {
		// Bind the slots this solution adds over the current row. By
		// connectivity the solutions of later children touch disjoint
		// fresh slots, so binding is the slot-wise cross product.
		for j, s := range c.subSlots {
			if vals[j] != rdf.Unbound && row[s] == rdf.Unbound {
				row[s] = vals[j]
			} else {
				vals[j] = rdf.Unbound // mark: not bound by this application
			}
		}
		more := st.extendThrough(cs, i+1, yield)
		for j, s := range c.subSlots {
			if vals[j] != rdf.Unbound {
				row[s] = rdf.Unbound
			}
		}
		if !more {
			return false
		}
	}
	return true
}

// childSolutions materialises the maximal solutions contributed by
// child c under the current row: for each homomorphic extension ν of
// pat(c) (bound slots act as constants), the recursive maximal
// extensions through c's children. Each solution is the snapshot of
// the row's values over c.subSlots.
func (st *enumState) childSolutions(c *compiledNode) [][]rdf.TermID {
	var out [][]rdf.TermID
	st.searchers[c.idx].Run(st.row, func() bool {
		// The inner yield always continues, so extendThrough returns
		// false only when the state has been stopped — propagate that
		// so the searcher unwinds instead of materialising the rest.
		return st.extendThrough(c.children, 0, st.deferredFiltered(c, func(rdf.Row) bool {
			snap := make([]rdf.TermID, len(c.subSlots))
			for j, s := range c.subSlots {
				snap[j] = st.row[s]
			}
			out = append(out, snap)
			return true
		}))
	})
	return out
}

// Rows streams ⟦F⟧G: every solution row exactly once, until yield
// returns false. Rows passed to yield are only valid during the call
// (copy to retain). Single-tree forests stream with no dedup state;
// multi-tree forests filter duplicates across trees through an
// IDMappingSet of the rows already emitted.
func (fp *ForestProgram) Rows(yield func(rdf.Row) bool) {
	fp.RowsContext(context.Background(), yield)
}

// RowsContext is Rows with cooperative cancellation: the context is
// polled at every yield boundary, so cancelling it stops the
// enumeration as promptly as yield returning false would — the same
// contract, extended to ctx.Done(). It returns ctx.Err(), i.e. nil on
// a run to exhaustion or an early stop through yield, and the
// cancellation cause when the context ended the stream. Contexts that
// can never be cancelled add no per-row overhead.
func (fp *ForestProgram) RowsContext(ctx context.Context, yield func(rdf.Row) bool) error {
	st := fp.newState()
	st.stop = ctxStop(ctx)
	out := fp.wrapOutput(yield)
	if len(fp.roots) == 1 {
		st.enumerateTree(fp.roots[0], out)
		return ctx.Err()
	}
	// Cross-tree dedup on full rows; redundant (and skipped) under
	// DISTINCT, whose projected dedup subsumes it.
	var seen *rdf.IDMappingSet
	if !fp.distinct {
		seen = rdf.NewIDMappingSet(fp.layout, fp.g.Dict().NumIRIs())
	}
	for _, root := range fp.roots {
		if !st.enumerateTree(root, func(r rdf.Row) bool {
			if seen != nil && !seen.Add(r) {
				return true // duplicate across trees
			}
			return out(r)
		}) {
			break
		}
	}
	return ctx.Err()
}

// EnumerateSet materialises ⟦F⟧G as a deduplicated row set (over the
// projected layout when the program carries a projection).
func (fp *ForestProgram) EnumerateSet() *rdf.IDMappingSet {
	out := rdf.NewIDMappingSet(fp.Layout(), fp.g.Dict().NumIRIs())
	st := fp.newState()
	emit := fp.wrapOutput(func(r rdf.Row) bool {
		out.Add(r)
		return true
	})
	for _, root := range fp.roots {
		st.enumerateTree(root, emit)
	}
	return out
}

// RowsParallel streams ⟦F⟧G with the enumeration work partitioned on a
// worker pool of the given size. Work items are the top-level
// candidate triples of each root search (hom.RowSearcher.SplitTop):
// one item covers everything one candidate leads to — the rest of the
// root homomorphism search plus all maximal extensions through the
// children — so, unlike the earlier root-row partitioning, the root
// search itself runs on the pool instead of being materialised
// sequentially upfront. On a sharded graph items are handed to the
// pool grouped by the shard of their candidate triple (the shard is a
// pure function of the candidate's subject), so workers sweep one
// shard's data at a time: real data partitioning, and the exact seam a
// multi-node deployment would cut.
//
// The stream is identical to RowsContext — same rows, same order —
// because completed work items are merged in their sequential
// (candidate) order, whatever order the pool processed them in;
// workers ≤ 1 degrades to the sequential path. yield runs on the
// calling goroutine only. Cancelling ctx (or yield returning false)
// stops every worker at its next yield boundary, and RowsParallel does
// not return before all workers have exited, so an early stop leaks no
// goroutines. The returned error is the caller's ctx.Err(): nil for
// exhaustion or a yield-initiated stop, the cancellation cause
// otherwise.
func (fp *ForestProgram) RowsParallel(ctx context.Context, workers int, yield func(rdf.Row) bool) error {
	if workers <= 1 {
		return fp.RowsContext(ctx, yield)
	}
	// inner is cancelled either by the caller's ctx or by yield ending
	// the stream; every worker polls it at yield boundaries.
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := func() bool { return inner.Err() != nil }

	// Split every root search at its top-level candidates. Trees whose
	// root program has no branch point (an empty root pattern yields
	// exactly the empty extension) become one whole-tree item.
	type item struct {
		root  *compiledNode
		cand  rdf.IDTriple
		whole bool // run the entire tree sequentially
		shard int
	}
	var items []item
	st := fp.newState()
	base := fp.layout.NewRow()
	for _, root := range fp.roots {
		cands, ok := st.searchers[root.idx].SplitTop(base)
		if !ok {
			items = append(items, item{root: root, whole: true})
			continue
		}
		for _, c := range cands {
			items = append(items, item{root: root, cand: c, shard: fp.g.ShardOf(c)})
		}
	}
	// Processing order: shard-grouped on a sharded graph (stable, so
	// within a shard items keep candidate order), plain candidate order
	// otherwise. The merge below is indexed by item, not by processing
	// order, so scheduling never leaks into the stream.
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	if fp.g.ShardCount() > 1 {
		sort.SliceStable(order, func(a, b int) bool { return items[order[a]].shard < items[order[b]].shard })
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([][]rdf.Row, len(items))
	ready := make([]chan struct{}, len(items))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := fp.newState()
			ws.stop = stop
			for i := range next {
				it := items[i]
				var local []rdf.Row
				emit := func(r rdf.Row) bool {
					local = append(local, r.Clone())
					return true
				}
				if it.whole {
					ws.enumerateTree(it.root, emit)
				} else {
					fp.layout.Reset(ws.row)
					ws.searchers[it.root.idx].RunOn(ws.row, it.cand, func() bool {
						return ws.extendThrough(it.root.children, 0, ws.deferredFiltered(it.root, emit))
					})
				}
				results[i] = local
				close(ready[i])
			}
		}()
	}
	// The feeder gives up (closing next, which drains the pool) as soon
	// as the run is cancelled; until then it hands out items in
	// processing order.
	go func() {
		defer close(next)
		for _, i := range order {
			select {
			case next <- i:
			case <-inner.Done():
				return
			}
		}
	}()
	out := fp.wrapOutput(yield)
	var seen *rdf.IDMappingSet
	if len(fp.roots) > 1 && !fp.distinct {
		seen = rdf.NewIDMappingSet(fp.layout, fp.g.Dict().NumIRIs())
	}
merge:
	for i := range items {
		select {
		case <-ready[i]:
		case <-inner.Done():
			break merge
		}
		for _, r := range results[i] {
			if seen != nil && !seen.Add(r) {
				continue // duplicate across trees
			}
			if !out(r) {
				break merge
			}
		}
		results[i] = nil // release the merged batch
	}
	cancel()
	wg.Wait()
	return ctx.Err()
}

// EnumerateParallel materialises ⟦F⟧G with the per-tree enumeration
// work partitioned across root-homomorphism rows on a worker pool.
// workers ≤ 1 degrades to EnumerateSet. The result is identical to
// EnumerateSet, including insertion order (work items are merged in
// their sequential order).
func (fp *ForestProgram) EnumerateParallel(workers int) *rdf.IDMappingSet {
	out := rdf.NewIDMappingSet(fp.Layout(), fp.g.Dict().NumIRIs())
	fp.RowsParallel(context.Background(), workers, func(r rdf.Row) bool {
		out.Add(r)
		return true
	})
	return out
}

// EnumerateTopDownID computes ⟦T⟧G as rows by the compiled top-down
// procedure; the returned set carries the tree's slot layout.
func EnumerateTopDownID(t *ptree.Tree, g *rdf.Graph) *rdf.IDMappingSet {
	return CompileTree(t, g).EnumerateSet()
}

// EnumerateTopDownForestID computes ⟦F⟧G as rows.
func EnumerateTopDownForestID(f ptree.Forest, g *rdf.Graph) *rdf.IDMappingSet {
	return CompileForest(f, g).EnumerateSet()
}

// EnumerateTopDownParallel computes ⟦F⟧G as rows on a worker pool,
// partitioned across root-homomorphism rows.
func EnumerateTopDownParallel(f ptree.Forest, g *rdf.Graph, workers int) *rdf.IDMappingSet {
	return CompileForest(f, g).EnumerateParallel(workers)
}
