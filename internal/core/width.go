package core

import (
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// This file implements the width measures over pattern trees and
// forests: branch treewidth (Definition 3), domination width
// (Definitions 1 and 2) and the local-tractability width of Letelier
// et al. that bounded domination width strictly generalises.

// BranchTreewidth returns bw(T) (Definition 3): the maximum over all
// non-root nodes n of ctw(S^br_n, X^br_n), where S^br_n is pat(n)
// together with the patterns of all nodes on the path from the root to
// n's parent, and X^br_n are the variables of that path. Trees with a
// single node have bw = 1 by convention (there is nothing to bound).
func BranchTreewidth(t *ptree.Tree) int {
	best := 1
	for _, n := range t.Nodes() {
		if n.Parent == nil {
			continue
		}
		s, x := branchGraph(n)
		if w := CTW(hom.NewGTGraph(s, x)); w > best {
			best = w
		}
	}
	return best
}

// branchGraph returns (S^br_n, X^br_n) for a non-root node n.
func branchGraph(n *ptree.Node) (hom.TGraph, []rdf.Term) {
	var branch []rdf.Triple
	for a := n.Parent; a != nil; a = a.Parent {
		branch = append(branch, a.Pattern...)
	}
	x := rdf.VarsOf(branch)
	s := hom.NewTGraph(append(append([]rdf.Triple{}, branch...), n.Pattern...)...)
	return s, x
}

// LocalWidth returns the local-tractability width of a forest: the
// maximum over all trees and non-root nodes n (with parent n') of
// ctw(pat(n), vars(n) ∩ vars(n')). A class is locally tractable in
// the sense of Letelier et al. iff this quantity is bounded.
func LocalWidth(f ptree.Forest) int {
	best := 1
	for _, t := range f {
		for _, n := range t.Nodes() {
			if n.Parent == nil {
				continue
			}
			shared := intersectVars(n.Vars(), n.Parent.Vars())
			if w := CTW(hom.NewGTGraph(n.Pattern, shared)); w > best {
				best = w
			}
		}
	}
	return best
}

func intersectVars(a, b []rdf.Term) []rdf.Term {
	inB := map[rdf.Term]bool{}
	for _, v := range b {
		inB[v] = true
	}
	var out []rdf.Term
	for _, v := range a {
		if inB[v] {
			out = append(out, v)
		}
	}
	return out
}

// DominationWidth returns dw(F) (Definition 2): the minimum k ≥ 1 such
// that for every subtree T of F the set GtG(T) is k-dominated
// (Definition 1). Computed as
//
//	dw(F) = max over subtrees T, max over g ∈ GtG(T) of
//	        min { ctw(g') | g' ∈ GtG(T), g' → g },
//
// which is exactly the least k making every GtG(T) k-dominated: a
// generalised t-graph g needs a dominator of ctw ≤ k, and g dominates
// itself. The computation enumerates all subtrees and all valid
// children assignments and is exponential in |F| — domination width is
// a static property of the query, not of the data.
func DominationWidth(f ptree.Forest) int {
	best := 1
	for _, fs := range ptree.EnumerateForestSubtrees(f) {
		if w := subtreeDominationWidth(fs); w > best {
			best = w
		}
	}
	return best
}

// subtreeDominationWidth returns min k such that GtG(T) is k-dominated.
func subtreeDominationWidth(fs ptree.ForestSubtree) int {
	gtg := ptree.GtG(fs)
	if len(gtg) == 0 {
		return 1
	}
	ctws := make([]int, len(gtg))
	for i, g := range gtg {
		ctws[i] = CTW(g)
	}
	need := 1
	for i, g := range gtg {
		ni := ctws[i]
		for j, h := range gtg {
			if j == i || ctws[j] >= ni {
				continue
			}
			if hom.Hom(h, g) {
				ni = ctws[j]
			}
		}
		if ni > need {
			need = ni
		}
	}
	return need
}

// DominationWidthOfPattern returns dw(P) = dw(wdpf(P)) for a
// well-designed graph pattern.
func DominationWidthOfPattern(p sparql.Pattern) (int, error) {
	f, err := ptree.WDPF(p)
	if err != nil {
		return 0, err
	}
	return DominationWidth(f), nil
}

// BranchTreewidthOfPattern returns bw(P) for a UNION-free
// well-designed graph pattern.
func BranchTreewidthOfPattern(p sparql.Pattern) (int, error) {
	t, err := ptree.FromPattern(p)
	if err != nil {
		return 0, err
	}
	return BranchTreewidth(t), nil
}
