package core

import (
	"fmt"
	"sync"

	"wdsparql/internal/hom"
	"wdsparql/internal/pebble"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
)

// This file implements batched wdPF evaluation: deciding µ ∈ ⟦F⟧G for
// many candidate mappings against one graph. Per-mapping work in
// EvalNaive/EvalPebble redoes structural compilation that depends only
// on dom(µ), not on µ itself: the witness subtree per tree, its
// pattern, its variable set, and (for the pebble algorithm) the
// generalised t-graphs pat(Tµ) ∪ pat(n) of its children. Candidate
// mappings in a workload overwhelmingly share a domain (they come from
// matching the same subquery), so an Evaluator compiles those once per
// distinct domain and reuses them for every mapping, optionally across
// a worker pool.

// Evaluator is a forest compiled for repeated evaluation against one
// graph. It is safe for concurrent use: the graph is only read, and
// the per-domain plan cache is lock-protected.
type Evaluator struct {
	alg Algorithm
	k   int
	f   ptree.Forest
	g   *rdf.Graph

	mu    sync.Mutex
	plans map[string][]treePlan
	// Plan-key scratch, guarded by mu: domains are canonicalised by
	// sorting interned variable IDs into a reused buffer and packing
	// them into reused key bytes — no per-Eval string sorting, and an
	// allocation only when a genuinely new domain is cached.
	keyDict  *rdf.Dict
	keyIDs   []rdf.TermID
	keyBytes []byte
}

// treePlan is the domain-dependent (µ-independent) part of evaluating
// one tree of the forest.
type treePlan struct {
	ok       bool       // a subtree with vars = dom(µ) exists
	pattern  hom.TGraph // pat(Tµ)
	vars     []rdf.Term // vars(Tµ) = dom(µ)
	children []childPlan
}

type childPlan struct {
	pattern hom.TGraph  // pat(n), for the naive extension test
	gt      hom.GTGraph // (pat(Tµ) ∪ pat(n), vars(Tµ)), for the pebble test
}

// NewEvaluator compiles the forest for repeated evaluation with the
// given algorithm; k is the domination-width bound used by AlgPebble
// and ignored by AlgNaive. Like EvalPebble, AlgPebble requires k ≥ 1.
func NewEvaluator(alg Algorithm, k int, f ptree.Forest, g *rdf.Graph) *Evaluator {
	if alg == AlgPebble && k < 1 {
		panic(fmt.Sprintf("core: NewEvaluator with AlgPebble requires k ≥ 1, got %d", k))
	}
	return &Evaluator{alg: alg, k: k, f: f, g: g, plans: map[string][]treePlan{}, keyDict: rdf.NewDict()}
}

// plansFor returns (building if needed) the per-tree plans for the
// given mapping domain.
func (e *Evaluator) plansFor(dom []rdf.Term) []treePlan {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Canonicalise dom(µ): intern each variable in the evaluator's
	// private dictionary, insertion-sort the IDs (domains are small)
	// and pack them little-endian into the key buffer. The map lookup
	// below does not allocate; the key string is materialised only on
	// the build path.
	ids := e.keyIDs[:0]
	for _, v := range dom {
		ids = append(ids, e.keyDict.InternVar(v.Value))
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	kb := e.keyBytes[:0]
	for _, id := range ids {
		kb = rdf.AppendIDLE(kb, id)
	}
	e.keyIDs, e.keyBytes = ids, kb
	if ps, ok := e.plans[string(kb)]; ok {
		return ps
	}
	key := string(kb)
	ps := make([]treePlan, len(e.f))
	for i, t := range e.f {
		s, ok := ptree.WitnessSubtree(t, dom)
		if !ok {
			continue
		}
		plan := treePlan{ok: true, pattern: s.Pattern(), vars: s.Vars()}
		for _, n := range s.Children() {
			cp := childPlan{pattern: n.Pattern}
			if e.alg == AlgPebble {
				cp.gt = hom.NewGTGraph(plan.pattern.Union(n.Pattern), plan.vars)
			}
			plan.children = append(plan.children, cp)
		}
		ps[i] = plan
	}
	e.plans[key] = ps
	return ps
}

// Eval decides µ ∈ ⟦F⟧G, reusing the compiled plan for dom(µ).
func (e *Evaluator) Eval(mu rdf.Mapping) bool {
	plans := e.plansFor(mu.Dom())
	for _, plan := range plans {
		if !plan.ok {
			continue
		}
		// µ must be a homomorphism from pat(Tµ) to G.
		matched := true
		for _, tr := range plan.pattern {
			img := mu.Apply(tr)
			if !img.Ground() || !e.g.Contains(img) {
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		extendable := false
		for _, child := range plan.children {
			if e.extends(child, plan, mu) {
				extendable = true
				break
			}
		}
		if !extendable {
			return true
		}
	}
	return false
}

func (e *Evaluator) extends(child childPlan, plan treePlan, mu rdf.Mapping) bool {
	switch e.alg {
	case AlgNaive:
		return hom.ExistsExtending(child.pattern, mu, e.g)
	case AlgPebble:
		return pebble.Decide(e.k+1, child.gt, mu.Restrict(plan.vars), e.g)
	}
	panic("core: unknown algorithm")
}

// EvalAll evaluates every mapping sequentially.
func (e *Evaluator) EvalAll(mus []rdf.Mapping) []bool {
	out := make([]bool, len(mus))
	for i, mu := range mus {
		out[i] = e.Eval(mu)
	}
	return out
}

// EvalAllParallel evaluates the mappings on a pool of workers
// (workers ≤ 1 degrades to EvalAll). Results are positionally aligned
// with mus.
func (e *Evaluator) EvalAllParallel(mus []rdf.Mapping, workers int) []bool {
	if workers <= 1 || len(mus) <= 1 {
		return e.EvalAll(mus)
	}
	if workers > len(mus) {
		workers = len(mus)
	}
	// Warm the plan cache for every distinct domain up front so
	// workers contend only on cache hits (plansFor dedups internally
	// and repeated hits are allocation-free).
	for _, mu := range mus {
		e.plansFor(mu.Dom())
	}
	out := make([]bool, len(mus))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = e.Eval(mus[i])
			}
		}()
	}
	for i := range mus {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// EvalAll compiles the forest and the graph once and decides
// µ ∈ ⟦F⟧G for every µ in mus; it is the batched counterpart of Eval.
func EvalAll(alg Algorithm, k int, f ptree.Forest, g *rdf.Graph, mus []rdf.Mapping) []bool {
	return NewEvaluator(alg, k, f, g).EvalAll(mus)
}

// EvalAllParallel is EvalAll with a worker pool.
func EvalAllParallel(alg Algorithm, k int, f ptree.Forest, g *rdf.Graph, mus []rdf.Mapping, workers int) []bool {
	return NewEvaluator(alg, k, f, g).EvalAllParallel(mus, workers)
}
