package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// Cross-validation: four independent implementations of well-designed
// SPARQL evaluation must agree on randomized inputs —
//
//  1. the compositional Pérez-et-al. semantics (sparql.Eval),
//  2. Lemma 1 enumeration over all subtrees (core.EnumerateForest),
//  3. the natural decision algorithm (core.EvalNaive), and
//  4. the Theorem 1 pebble algorithm with k = dw(F) (core.EvalPebble).
//
// Agreement of (1) and (2) validates the wdpf translation (including
// NR normalisation); agreement of (3) and (4) on members and
// non-members validates the decision procedures and, for (4), the
// heart of Theorem 1.

// randPattern generates a random UNION-free pattern over a small
// vocabulary; callers filter for well-designedness.
func randPattern(rng *rand.Rand, depth int) sparql.Pattern {
	if depth == 0 || rng.Intn(3) == 0 {
		return sparql.Triple{T: randTriple(rng)}
	}
	l := randPattern(rng, depth-1)
	r := randPattern(rng, depth-1)
	if rng.Intn(2) == 0 {
		return sparql.And(l, r)
	}
	return sparql.Opt(l, r)
}

func randTriple(rng *rand.Rand) rdf.Triple {
	vars := []rdf.Term{rdf.Var("x"), rdf.Var("y"), rdf.Var("z"), rdf.Var("w")}
	iris := []rdf.Term{rdf.IRI("a"), rdf.IRI("b")}
	preds := []rdf.Term{rdf.IRI("p"), rdf.IRI("q")}
	pick := func(pool []rdf.Term) rdf.Term { return pool[rng.Intn(len(pool))] }
	pickSO := func() rdf.Term {
		if rng.Intn(4) == 0 {
			return pick(iris)
		}
		return pick(vars)
	}
	return rdf.T(pickSO(), pick(preds), pickSO())
}

func randData(rng *rand.Rand) *rdf.Graph {
	g := rdf.NewGraph()
	nodes := []string{"a", "b", "c", "d"}
	preds := []string{"p", "q"}
	n := 4 + rng.Intn(8)
	for i := 0; i < n; i++ {
		g.AddTriple(nodes[rng.Intn(len(nodes))], preds[rng.Intn(len(preds))], nodes[rng.Intn(len(nodes))])
	}
	return g
}

func TestCrossValidateUnionFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tried, used := 0, 0
	for used < 120 && tried < 5000 {
		tried++
		p := randPattern(rng, 3)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		g := randData(rng)
		checkAgreement(t, p, g, fmt.Sprintf("seed7/case%d", used))
	}
	if used < 60 {
		t.Fatalf("generator too weak: only %d well-designed patterns in %d tries", used, tried)
	}
}

func TestCrossValidateWithUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	used := 0
	for tries := 0; used < 60 && tries < 5000; tries++ {
		l := randPattern(rng, 2)
		r := randPattern(rng, 2)
		p := sparql.Union(l, r)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		g := randData(rng)
		checkAgreement(t, p, g, fmt.Sprintf("seed11/case%d", used))
	}
	if used < 30 {
		t.Fatalf("generator too weak: %d cases", used)
	}
}

func checkAgreement(t *testing.T, p sparql.Pattern, g *rdf.Graph, label string) {
	t.Helper()
	ref := sparql.Eval(p, g)
	f, err := ptree.WDPF(p)
	if err != nil {
		t.Fatalf("%s: wdpf(%s): %v", label, p, err)
	}
	enum := core.EnumerateForest(f, g)
	if ref.Len() != enum.Len() {
		t.Fatalf("%s: pattern %s\ncompositional %d solutions, Lemma-1 enumeration %d\nref=%v\nenum=%v",
			label, p, ref.Len(), enum.Len(), ref.Slice(), enum.Slice())
	}
	for _, mu := range ref.Slice() {
		if !enum.Contains(mu) {
			t.Fatalf("%s: %s: enumeration missing %s", label, p, mu)
		}
	}
	k := core.DominationWidth(f)
	// Members must be accepted by both decision procedures.
	for _, mu := range ref.Slice() {
		if !core.EvalNaive(f, g, mu) {
			t.Fatalf("%s: %s: EvalNaive rejects member %s", label, p, mu)
		}
		if !core.EvalPebble(k, f, g, mu) {
			t.Fatalf("%s: %s: EvalPebble(k=%d) rejects member %s", label, p, k, mu)
		}
	}
	// Probe non-members: mutate members and try small synthetic
	// mappings.
	probes := []rdf.Mapping{
		{"x": "a"}, {"x": "a", "y": "b"}, {"x": "zzz"}, {},
		{"x": "a", "y": "b", "z": "c"},
	}
	for _, mu := range ref.Slice() {
		m := mu.Clone()
		for v := range m {
			m[v] = "nonexistent"
			break
		}
		probes = append(probes, m)
	}
	for _, mu := range probes {
		want := ref.Contains(mu)
		if got := core.EvalNaive(f, g, mu); got != want {
			t.Fatalf("%s: %s: EvalNaive(%s)=%v, want %v", label, p, mu, got, want)
		}
		if got := core.EvalPebble(k, f, g, mu); got != want {
			t.Fatalf("%s: %s: EvalPebble(k=%d)(%s)=%v, want %v", label, p, k, mu, got, want)
		}
	}
}

// The F_k workload of experiment E3: both algorithms must agree on the
// adversarial data in all four configurations.
func TestFkWorkloadAgreement(t *testing.T) {
	for k := 2; k <= 4; k++ {
		f := gen.Fk(k)
		mu := gen.FkMu()
		for _, withQ := range []bool{false, true} {
			for _, withClique := range []bool{false, true} {
				g := gen.FkData(k, 4*(k-1), withQ, withClique)
				want := core.EnumerateForest(f, g).Contains(mu)
				if got := core.EvalNaive(f, g, mu); got != want {
					t.Fatalf("k=%d q=%v clique=%v: naive=%v want %v", k, withQ, withClique, got, want)
				}
				if got := core.EvalPebble(1, f, g, mu); got != want {
					t.Fatalf("k=%d q=%v clique=%v: pebble=%v want %v", k, withQ, withClique, got, want)
				}
			}
		}
	}
}

// Sanity of the E3 story. Without q-edges µ is always a solution: if
// the Turán graph has no k-clique, T1 accepts (after the expensive
// refutation of its n12 child); with a planted clique T1 rejects but
// T2 accepts — the domination mechanism in action. With the q-chain
// present, every tree has an extension and µ is not a solution.
func TestFkWorkloadShape(t *testing.T) {
	k := 3
	f := gen.Fk(k)
	mu := gen.FkMu()
	if !core.EvalNaive(f, gen.FkData(k, 8, false, false), mu) {
		t.Fatal("no q, no clique: µ should be a solution (via T1)")
	}
	if !core.EvalNaive(f, gen.FkData(k, 8, false, true), mu) {
		t.Fatal("no q, planted clique: µ should be a solution (via T2)")
	}
	if core.EvalNaive(f, gen.FkData(k, 8, true, false), mu) {
		t.Fatal("q-chain, no clique: µ should not be a solution")
	}
	if core.EvalNaive(f, gen.FkData(k, 8, true, true), mu) {
		t.Fatal("q-chain and clique: µ should not be a solution")
	}
}
