package core_test

import (
	"math/rand"
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/ptree"
	"wdsparql/internal/sparql"
)

// Semantic laws of well-designed evaluation, verified on random
// instances:
//
//  1. For UNION-free well-designed patterns, solutions are pairwise
//     ⊑-incomparable (each is a maximal partial match) — Pérez et al.
//  2. Every solution binds all certain variables and only possible
//     variables.
//  3. Solutions restricted to the root variables are homomorphisms of
//     the root pattern.

func TestQuickSolutionsPairwiseIncomparable(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	used := 0
	for tries := 0; used < 80 && tries < 6000; tries++ {
		p := randPattern(rng, 3)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		tree, err := ptree.FromPattern(p)
		if err != nil {
			t.Fatal(err)
		}
		g := randData(rng)
		sols := core.Enumerate(tree, g)
		if !ptree.PairwiseIncomparable(sols) {
			t.Fatalf("comparable solutions for %s:\n%v", p, sols.Slice())
		}
	}
	if used < 40 {
		t.Fatalf("generator too weak: %d", used)
	}
}

func TestQuickSolutionsBindCertainVars(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	used := 0
	for tries := 0; used < 80 && tries < 6000; tries++ {
		p := randPattern(rng, 3)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		tree, err := ptree.FromPattern(p)
		if err != nil {
			t.Fatal(err)
		}
		g := randData(rng)
		certain := ptree.CertainVars(tree)
		possible := map[string]bool{}
		for _, v := range ptree.PossibleVars(tree) {
			possible[v.Value] = true
		}
		for _, mu := range core.Enumerate(tree, g).Slice() {
			for _, v := range certain {
				if !mu.Defined(v) {
					t.Fatalf("%s: solution %s misses certain var %s", p, mu, v)
				}
			}
			for v := range mu {
				if !possible[v] {
					t.Fatalf("%s: solution %s binds impossible var ?%s", p, mu, v)
				}
			}
			// The restriction to the root pattern is a homomorphism.
			for _, tr := range tree.Root.Pattern {
				img := mu.Apply(tr)
				if !img.Ground() || !g.Contains(img) {
					t.Fatalf("%s: solution %s does not match the root", p, mu)
				}
			}
		}
	}
	if used < 40 {
		t.Fatalf("generator too weak: %d", used)
	}
}

// Deeper random patterns (depth 4) still cross-validate across all
// four evaluators; this stresses NR normalisation with longer OPT
// chains than the depth-3 generator.
func TestCrossValidateDeepPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	used := 0
	for tries := 0; used < 25 && tries < 20000; tries++ {
		p := randPattern(rng, 4)
		if !sparql.IsWellDesigned(p) || sparql.Size(p) < 4 {
			continue
		}
		used++
		g := randData(rng)
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatal(err)
		}
		ref := sparql.Eval(p, g)
		hashRef := sparql.EvalHashJoin(p, g)
		enum := core.EnumerateForest(f, g)
		topdown := core.EnumerateTopDownForest(f, g)
		if ref.Len() != enum.Len() || ref.Len() != topdown.Len() || ref.Len() != hashRef.Len() {
			t.Fatalf("%s: sizes ref=%d hash=%d enum=%d topdown=%d",
				p, ref.Len(), hashRef.Len(), enum.Len(), topdown.Len())
		}
		for _, mu := range ref.Slice() {
			if !enum.Contains(mu) || !topdown.Contains(mu) || !hashRef.Contains(mu) {
				t.Fatalf("%s: missing %s somewhere", p, mu)
			}
		}
	}
	if used < 12 {
		t.Fatalf("generator too weak: %d", used)
	}
}
