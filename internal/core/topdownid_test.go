package core_test

import (
	"math/rand"
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// Cross-validation of the compiled row pipeline: EnumerateTopDownID
// rows, decoded at the boundary, must agree exactly with the string
// top-down enumerator and with the compositional semantics on random
// well-designed patterns — including OPT-heavy trees whose solutions
// leave slots unbound — and the pull-based iterator must honour early
// termination.

// optHeavyPattern draws patterns biased towards OPT so that solution
// mappings routinely have partial domains (unbound slots in rows).
func optHeavyPattern(rng *rand.Rand, depth int) sparql.Pattern {
	if depth == 0 || rng.Intn(4) == 0 {
		return sparql.Triple{T: randTriple(rng)}
	}
	l := optHeavyPattern(rng, depth-1)
	r := optHeavyPattern(rng, depth-1)
	if rng.Intn(4) == 0 {
		return sparql.And(l, r)
	}
	return sparql.Opt(l, r)
}

func checkRowAgreement(t *testing.T, p sparql.Pattern, g *rdf.Graph, label string) {
	t.Helper()
	f, err := ptree.WDPF(p)
	if err != nil {
		t.Fatalf("%s: wdpf(%s): %v", label, p, err)
	}
	idSet := core.EnumerateTopDownForestID(f, g)
	decoded := idSet.Decode(g.Dict())

	// Pin to the string top-down enumerator.
	want := rdf.NewMappingSet()
	for _, tr := range f {
		want.AddAll(core.EnumerateTopDown(tr, g))
	}
	if decoded.Len() != want.Len() {
		t.Fatalf("%s: %s: rows %d, string top-down %d\nrows=%v\nstring=%v",
			label, p, decoded.Len(), want.Len(), decoded.Slice(), want.Slice())
	}
	for _, mu := range want.Slice() {
		if !decoded.Contains(mu) {
			t.Fatalf("%s: %s: row pipeline missing %s", label, p, mu)
		}
	}

	// Pin to the compositional semantics.
	ref := sparql.Eval(p, g)
	if decoded.Len() != ref.Len() {
		t.Fatalf("%s: %s: rows %d, compositional %d", label, p, decoded.Len(), ref.Len())
	}
	for _, mu := range ref.Slice() {
		if !decoded.Contains(mu) {
			t.Fatalf("%s: %s: row pipeline missing compositional solution %s", label, p, mu)
		}
	}

	// Parallel enumeration must reproduce the sequential set exactly,
	// including insertion order (work items merge in sequential order).
	par := core.EnumerateTopDownParallel(f, g, 4)
	if par.Len() != idSet.Len() {
		t.Fatalf("%s: parallel %d rows, sequential %d", label, par.Len(), idSet.Len())
	}
	for i := 0; i < par.Len(); i++ {
		a, b := par.Row(i), idSet.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s: parallel row %d differs: %v vs %v", label, i, a, b)
			}
		}
	}
}

func TestRowPipelineAgainstStringAndCompositional(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	used := 0
	for tries := 0; used < 120 && tries < 6000; tries++ {
		p := randPattern(rng, 3)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		checkRowAgreement(t, p, randData(rng), "mixed")
	}
	if used < 60 {
		t.Fatalf("generator too weak: %d", used)
	}
}

func TestRowPipelineOptHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	used := 0
	for tries := 0; used < 120 && tries < 8000; tries++ {
		p := optHeavyPattern(rng, 3)
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		checkRowAgreement(t, p, randData(rng), "opt-heavy")
	}
	if used < 60 {
		t.Fatalf("generator too weak: %d", used)
	}
}

func TestRowPipelineWithUnionForests(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	used := 0
	for tries := 0; used < 60 && tries < 6000; tries++ {
		p := sparql.Union(randPattern(rng, 2), randPattern(rng, 2))
		if !sparql.IsWellDesigned(p) {
			continue
		}
		used++
		checkRowAgreement(t, p, randData(rng), "union")
	}
	if used < 30 {
		t.Fatalf("generator too weak: %d", used)
	}
}

// The pull-based iterator must stop as soon as yield returns false and
// must hand out rows that belong to the full solution set.
func TestRowIteratorEarlyTermination(t *testing.T) {
	star := gen.OptStar(3)
	g := gen.ItemCatalog(20, 3, 5)
	f := ptree.Forest{star}
	fp := core.CompileForest(f, g)
	full := fp.EnumerateSet()
	if full.Len() != 20 {
		t.Fatalf("star catalog: %d solutions, want 20", full.Len())
	}
	for _, limit := range []int{0, 1, 5, 19, 20, 100} {
		var got []rdf.Row
		calls := 0
		fp.Rows(func(r rdf.Row) bool {
			calls++
			got = append(got, r.Clone())
			return limit == 0 || len(got) < limit
		})
		want := limit
		if limit == 0 || limit > full.Len() {
			want = full.Len()
		}
		// yield returning false stops the stream immediately: exactly
		// min(limit, total) calls, no overshoot.
		if calls != want {
			t.Fatalf("limit %d: %d yields, want %d", limit, calls, want)
		}
		for _, r := range got {
			if !full.ContainsRow(r) {
				t.Fatalf("limit %d: streamed row %v outside ⟦T⟧G", limit, r)
			}
		}
	}
}

// Streamed rows are only valid during yield; the iterator must reuse
// its working row (documented contract), which this test pins down so
// accidental per-row allocation does not creep back in.
func TestRowIteratorRowAliasing(t *testing.T) {
	chain := gen.OptChain(4)
	g := gen.PathData(8, 4, 3)
	fp := core.CompileForest(ptree.Forest{chain}, g)
	var first rdf.Row
	n := 0
	fp.Rows(func(r rdf.Row) bool {
		if n == 0 {
			first = r // deliberately retained without Clone
		}
		n++
		return true
	})
	if n < 2 {
		t.Skip("workload produced fewer than 2 rows")
	}
	// After enumeration the retained row was reused and then unwound:
	// it must NOT still hold the first solution (that would mean the
	// iterator copies rows per yield).
	set := fp.EnumerateSet()
	if set.Len() != n {
		t.Fatalf("stream %d vs set %d", n, set.Len())
	}
	allUnbound := true
	for _, v := range first {
		if v != rdf.Unbound {
			allUnbound = false
		}
	}
	if !allUnbound {
		t.Fatalf("working row not unwound after enumeration: %v", first)
	}
}

func TestTopDownIDOnForestFamilies(t *testing.T) {
	// F_k forests (multi-tree, shared variables across trees) on the
	// four E3 data configurations.
	for k := 2; k <= 3; k++ {
		f := gen.Fk(k)
		for _, withQ := range []bool{false, true} {
			for _, withClique := range []bool{false, true} {
				g := gen.FkData(k, 4*(k-1), withQ, withClique)
				want := core.EnumerateForest(f, g)
				got := core.EnumerateTopDownForestID(f, g).Decode(g.Dict())
				if got.Len() != want.Len() {
					t.Fatalf("Fk k=%d q=%v clique=%v: rows %d, want %d",
						k, withQ, withClique, got.Len(), want.Len())
				}
				for _, mu := range want.Slice() {
					if !got.Contains(mu) {
						t.Fatalf("Fk k=%d: missing %s", k, mu)
					}
				}
			}
		}
	}
}

func TestEnumerateParallelDegenerate(t *testing.T) {
	// Empty pattern-match: no root homomorphisms, any worker count.
	tr := ptree.FromSpec(ptree.Spec{Pattern: []rdf.Triple{
		rdf.T(rdf.Var("x"), rdf.IRI("absent"), rdf.Var("y")),
	}})
	g := gen.PathData(4, 0, 1)
	for _, w := range []int{1, 2, 8} {
		if got := core.EnumerateTopDownParallel(ptree.Forest{tr}, g, w).Len(); got != 0 {
			t.Fatalf("workers=%d: %d rows from unmatchable pattern", w, got)
		}
	}
}
