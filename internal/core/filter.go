package core

import (
	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// This file is the bridge from the sparql filter/projection surface to
// the compiled row pipeline: FILTER conjuncts lower to the hom
// slot-level IR (pushed into the node's RowProgram when local,
// evaluated at the subtree's emit point when they reach into optional
// descendants), and SELECT projection/DISTINCT become an output layout
// plus a dedup keyed on the projected row.

// compileFilterExpr lowers a filter expression onto the forest layout:
// variables become slots, IRI constants become TermIDs (rdf.Unbound
// when outside the dictionary — unequal to every bound value), and
// constant-vs-constant comparisons fold to FOpTrue/FOpFalse on the
// original strings (two distinct out-of-dictionary IRIs must not
// collide on the sentinel). Every variable of the expression is
// already interned by the time this runs — node filters lower after
// the node's pattern (local conjuncts) or after its children
// (deferred conjuncts), and the safety condition keeps filter
// variables inside the subtree.
func compileFilterExpr(e sparql.Expr, layout *rdf.SlotLayout, dict *rdf.Dict) *hom.FilterExpr {
	switch q := e.(type) {
	case sparql.Cmp:
		op := hom.FOpEq
		if q.Neq {
			op = hom.FOpNe
		}
		if !q.Left.IsVar() && !q.Right.IsVar() {
			lid, lok := dict.LookupIRI(q.Left.Value)
			rid, rok := dict.LookupIRI(q.Right.Value)
			equal := (lok && rok && lid == rid) || (!lok && !rok && q.Left.Value == q.Right.Value)
			if equal != q.Neq {
				return &hom.FilterExpr{Op: hom.FOpTrue}
			}
			return &hom.FilterExpr{Op: hom.FOpFalse}
		}
		out := &hom.FilterExpr{Op: op, ASlot: -1, BSlot: -1}
		if q.Left.IsVar() {
			out.ASlot = int32(layout.Intern(q.Left.Value))
		} else if id, ok := dict.LookupIRI(q.Left.Value); ok {
			out.AConst = id
		} else {
			out.AConst = rdf.Unbound
		}
		if q.Right.IsVar() {
			out.BSlot = int32(layout.Intern(q.Right.Value))
		} else if id, ok := dict.LookupIRI(q.Right.Value); ok {
			out.BConst = id
		} else {
			out.BConst = rdf.Unbound
		}
		return out
	case sparql.Bound:
		return &hom.FilterExpr{Op: hom.FOpBound, ASlot: int32(layout.Intern(q.Var.Value)), BSlot: -1}
	case sparql.ExprBinary:
		op := hom.FOpAnd
		if q.Op == sparql.ExprOr {
			op = hom.FOpOr
		}
		return &hom.FilterExpr{
			Op: op, ASlot: -1, BSlot: -1,
			X: compileFilterExpr(q.Left, layout, dict),
			Y: compileFilterExpr(q.Right, layout, dict),
		}
	case sparql.ExprNot:
		return &hom.FilterExpr{Op: hom.FOpNot, ASlot: -1, BSlot: -1, X: compileFilterExpr(q.X, layout, dict)}
	}
	panic("core: unknown filter expression type")
}

// Project returns a view of the program whose streams emit only the
// given variables, in declared order (nil or empty = every forest
// variable, i.e. SELECT *), deduplicated on the projected row when
// distinct is set. Layout() on the view returns the projected layout.
// Like Tuned, the view shares all compiled state with fp; projection
// composes with any tuning applied before or after.
//
// The stream contract under projection: without distinct, every full
// solution emits one projected row (duplicates reflect multiplicity of
// full solutions agreeing on the projection, cross-tree duplicates
// still collapse); with distinct, each projected row appears exactly
// once, in order of first appearance — which also subsumes the
// cross-tree dedup, since identical full rows project identically.
func (fp *ForestProgram) Project(vars []string, distinct bool) *ForestProgram {
	out := *fp
	proj := rdf.NewSlotLayout()
	if len(vars) == 0 {
		out.projSlots = make([]int32, fp.layout.Width())
		for s := 0; s < fp.layout.Width(); s++ {
			proj.Intern(fp.layout.Name(s))
			out.projSlots[s] = int32(s)
		}
	} else {
		out.projSlots = make([]int32, 0, len(vars))
		for _, v := range vars {
			proj.Intern(v)
			if s, ok := fp.layout.Slot(v); ok {
				out.projSlots = append(out.projSlots, int32(s))
			} else {
				out.projSlots = append(out.projSlots, -1)
			}
		}
	}
	out.outLayout = proj
	out.distinct = distinct
	return &out
}

// Projected reports whether the program carries a projection (or
// DISTINCT) wrapper, and Distinct whether its output deduplicates.
func (fp *ForestProgram) Projected() bool { return fp.outLayout != nil }

// Distinct reports whether the program's output is deduplicated on the
// projected row.
func (fp *ForestProgram) Distinct() bool { return fp.distinct }

// OutputVars returns the projected variable names in declared order,
// nil when the program is unprojected.
func (fp *ForestProgram) OutputVars() []string {
	if fp.outLayout == nil {
		return nil
	}
	out := make([]string, fp.outLayout.Width())
	for i := range out {
		out[i] = fp.outLayout.Name(i)
	}
	return out
}

// wrapOutput adapts a caller's yield to the program's output contract:
// identity when unprojected, otherwise projection onto the output
// layout plus the DISTINCT dedup. The projected row passed on is a
// reused buffer — valid only during the call, like every streamed row.
func (fp *ForestProgram) wrapOutput(yield func(rdf.Row) bool) func(rdf.Row) bool {
	if fp.outLayout == nil {
		return yield
	}
	buf := fp.outLayout.NewRow()
	var seen *rdf.IDMappingSet
	if fp.distinct {
		seen = rdf.NewIDMappingSet(fp.outLayout, fp.g.Dict().NumIRIs())
	}
	return func(r rdf.Row) bool {
		for i, s := range fp.projSlots {
			if s >= 0 {
				buf[i] = r[s]
			} else {
				buf[i] = rdf.Unbound
			}
		}
		if seen != nil && !seen.Add(buf) {
			return true
		}
		return yield(buf)
	}
}

// passesDeferred reports whether the state's current row satisfies
// every deferred filter of the node — evaluated at the node's subtree
// emit point, where the row holds the maximal extension the filter's
// scope ranges over. Only three-valued true keeps the row.
func (st *enumState) passesDeferred(n *compiledNode) bool {
	for _, f := range n.deferred {
		if f.Eval(st.row) != hom.TriTrue {
			return false
		}
	}
	return true
}
