// Package core implements the paper's primary contributions: the
// width measures of Section 3 — treewidth of generalised t-graphs,
// core treewidth ctw, branch treewidth bw (Definition 3), domination
// width dw (Definitions 1 and 2), and the local-tractability condition
// of Letelier et al. — together with the evaluation algorithms: the
// natural (coNP-flavoured) wdPF algorithm of Lemma 1 and the
// polynomial-time existential-pebble-game algorithm of Theorem 1.
package core

import (
	"wdsparql/internal/graphalg"
	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
)

// GaifmanGraph returns G(S, X): the undirected graph whose vertices
// are vars(S) \ X and whose edges join distinct variables co-occurring
// in a triple pattern of S (Section 3 of the paper). Vertex labels are
// the variable names; the returned slice maps vertex ids back to
// variable terms.
func GaifmanGraph(g hom.GTGraph) (*graphalg.UGraph, []rdf.Term) {
	free := g.FreeVars()
	idx := make(map[rdf.Term]int, len(free))
	for i, v := range free {
		idx[v] = i
	}
	u := graphalg.NewUGraph(len(free))
	for i, v := range free {
		u.SetLabel(i, v.String())
	}
	for _, t := range g.S {
		vs := t.Vars()
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				a, okA := idx[vs[i]]
				b, okB := idx[vs[j]]
				if okA && okB {
					u.AddEdge(a, b)
				}
			}
		}
	}
	return u, free
}

// TW returns the paper's tw(S, X): the treewidth of the Gaifman graph
// G(S, X), with the convention that a Gaifman graph with no vertices
// or no edges has tw(S, X) = 1.
func TW(g hom.GTGraph) int {
	u, _ := GaifmanGraph(g)
	if u.N() == 0 || u.EdgeCount() == 0 {
		return 1
	}
	w, _ := graphalg.Treewidth(u)
	if w < 1 {
		w = 1
	}
	return w
}

// CTW returns ctw(S, X) = tw of the core of (S, X).
func CTW(g hom.GTGraph) int {
	return TW(hom.Core(g))
}
