package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// FILTER + projection on the compiled row pipeline, cross-validated
// against the compositional reference: every backend (map, frozen,
// sharded, overlay), both pushdown placements, both planner modes and
// parallel execution must emit byte-identical streams whose solution
// set matches sparql.EvalID.

// rebuildAs re-materialises g's triples on a fresh graph sealed into
// the requested backend; "overlay" splits them into a sealed base plus
// live deltas.
func rebuildAs(g *rdf.Graph, backend string) *rdf.Graph {
	ids := g.TriplesID()
	out := rdf.NewGraph()
	cut := len(ids)
	if backend == "overlay" {
		cut = len(ids) / 2
	}
	for _, id := range ids[:cut] {
		tr := g.Dict().DecodeTriple(id)
		out.AddTriple(tr.S.Value, tr.P.Value, tr.O.Value)
	}
	switch backend {
	case "map":
		return out
	case "frozen":
		out.Freeze()
	case "sharded":
		out.Shard(3)
	case "overlay":
		out.Freeze()
		for _, id := range ids[cut:] {
			tr := g.Dict().DecodeTriple(id)
			out.AddDeltaTriple(tr.S.Value, tr.P.Value, tr.O.Value)
		}
	}
	return out
}

// compileQuery mirrors the engine's prepare path on a bare forest
// program: unwrap SELECT, compile with the given pushdown setting,
// apply the projection view.
func compileQuery(q sparql.Pattern, g *rdf.Graph, noPush bool) (*core.ForestProgram, error) {
	inner := q
	var proj []string
	distinct := false
	sel, isSel := q.(sparql.Select)
	if isSel {
		inner = sel.Where
		distinct = sel.Distinct
		for _, v := range sel.Vars {
			proj = append(proj, v.Value)
		}
	}
	f, err := ptree.WDPF(inner)
	if err != nil {
		return nil, err
	}
	fp := core.CompileForestOpts(f, g, core.CompileOpts{NoFilterPushdown: noPush})
	if isSel {
		fp = fp.Project(proj, distinct)
	}
	return fp, nil
}

func streamStrings(fp *core.ForestProgram, workers int) []string {
	var out []string
	emit := func(r rdf.Row) bool {
		out = append(out, fmt.Sprint([]rdf.TermID(r)))
		return true
	}
	if workers > 1 {
		fp.RowsParallel(context.Background(), workers, emit)
	} else {
		fp.Rows(emit)
	}
	return out
}

func TestFilterProjectionCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	backends := []string{"map", "frozen", "sharded", "overlay"}
	for trial := 0; trial < 60; trial++ {
		q, ok := gen.RandomWDQuery(rng, gen.PatternOpts{
			Depth: 3, Filters: 2, Select: trial%2 == 0, Union: trial%5 == 0,
		})
		if !ok {
			t.Fatal("query generator exhausted")
		}
		g := randData(rng)
		ref := sparql.EvalID(q, g)

		var baseline []string
		var baselineLayout *rdf.SlotLayout
		for _, backend := range backends {
			gb := rebuildAs(g, backend)
			for _, noPush := range []bool{false, true} {
				fp, err := compileQuery(q, gb, noPush)
				if err != nil {
					t.Fatalf("trial %d [%s]: compile %s: %v", trial, backend, sparql.Format(q), err)
				}
				variants := map[string][]string{
					"heuristic": streamStrings(fp, 1),
					"planned":   streamStrings(fp.Tuned(hom.ModePlanned, 0, nil), 1),
					"parallel":  streamStrings(fp.Tuned(hom.ModePlanned, 0, nil), 3),
				}
				for name, got := range variants {
					if baseline == nil {
						baseline = got
						baselineLayout = fp.Layout()
						continue
					}
					if len(got) != len(baseline) {
						t.Fatalf("trial %d: %s\n[%s/noPush=%v/%s] %d rows, baseline %d",
							trial, sparql.Format(q), backend, noPush, name, len(got), len(baseline))
					}
					for i := range got {
						if got[i] != baseline[i] {
							t.Fatalf("trial %d: %s\n[%s/noPush=%v/%s] stream diverged at row %d:\n%s\nvs\n%s",
								trial, sparql.Format(q), backend, noPush, name, i, got[i], baseline[i])
						}
					}
				}
			}
		}

		// Semantic agreement with the compositional reference: the
		// stream, deduplicated (projection without DISTINCT may repeat
		// projected rows), equals the reference set.
		gb := rebuildAs(g, "frozen")
		fp, err := compileQuery(q, gb, false)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := rdf.NewIDMappingSet(fp.Layout(), gb.Dict().NumIRIs())
		fp.Rows(func(r rdf.Row) bool { got.Add(r); return true })
		if got.Len() != ref.Len() {
			t.Fatalf("trial %d: %s\npipeline set %d vs reference %d",
				trial, sparql.Format(q), got.Len(), ref.Len())
		}
		gotDec := got.Decode(gb.Dict())
		for _, mu := range ref.Decode(g.Dict()).Slice() {
			if !gotDec.Contains(mu) {
				t.Fatalf("trial %d: %s\npipeline missing %v", trial, sparql.Format(q), mu)
			}
		}

		// DISTINCT streams carry no duplicates by contract.
		if sel, isSel := q.(sparql.Select); isSel && sel.Distinct {
			rows := streamStrings(fp, 1)
			seen := make(map[string]bool, len(rows))
			for _, r := range rows {
				if seen[r] {
					t.Fatalf("trial %d: DISTINCT stream repeated %s", trial, r)
				}
				seen[r] = true
			}
		}
		_ = baselineLayout
	}
}

// TestDeferredFilterPlacement pins the local/deferred split: a filter
// over the node's own scope is pushed into its RowProgram, a filter
// reaching into optional descendants is deferred to the subtree emit,
// and NoFilterPushdown defers everything.
func TestDeferredFilterPlacement(t *testing.T) {
	g := rdf.MustParseGraph("a p b .\nc p d .\nb q e .\n")
	q := sparql.MustParse(`((((?x p ?y) OPT (?y q ?z)) FILTER BOUND(?z)) FILTER ?x != c)`)
	f, err := ptree.WDPF(q)
	if err != nil {
		t.Fatal(err)
	}
	fp := core.CompileForest(f, g)
	en := fp.Explain()
	if len(en) != 1 {
		t.Fatalf("explain trees: %d", len(en))
	}
	var pushed, deferred int
	for _, note := range en[0].Filters {
		switch {
		case strings.HasSuffix(note, "[pushed]"):
			pushed++
		case strings.HasSuffix(note, "[deferred]"):
			deferred++
		default:
			t.Fatalf("unmarked filter note %q", note)
		}
	}
	if pushed != 1 || deferred != 1 {
		t.Fatalf("placement: %v", en[0].Filters)
	}

	// Only the (a,b,e) row survives BOUND(?z); ?x != c is redundant on
	// it but must not disturb the result.
	n := 0
	fp.Rows(func(r rdf.Row) bool { n++; return true })
	if n != 1 {
		t.Fatalf("rows: %d", n)
	}

	// All conjuncts deferred under NoFilterPushdown, same stream.
	fp2 := core.CompileForestOpts(f, g, core.CompileOpts{NoFilterPushdown: true})
	for _, note := range fp2.Explain()[0].Filters {
		if !strings.HasSuffix(note, "[deferred]") {
			t.Fatalf("NoFilterPushdown left %q", note)
		}
	}
	n2 := 0
	fp2.Rows(func(r rdf.Row) bool { n2++; return true })
	if n2 != n {
		t.Fatalf("pushdown changed the result: %d vs %d", n2, n)
	}
}

// TestProjectView pins the projection view: declared order, missing
// variables as Unbound, DISTINCT dedup, and the full layout still
// reachable for internal consumers.
func TestProjectView(t *testing.T) {
	g := rdf.MustParseGraph("a p b .\na p c .\nd p d .\n")
	f, err := ptree.WDPF(sparql.MustParse(`(?x p ?y)`))
	if err != nil {
		t.Fatal(err)
	}
	fp := core.CompileForest(f, g)

	proj := fp.Project([]string{"y", "x", "ghost"}, false)
	if !proj.Projected() || proj.Distinct() {
		t.Fatal("projection flags")
	}
	if got := proj.OutputVars(); len(got) != 3 || got[0] != "y" || got[1] != "x" || got[2] != "ghost" {
		t.Fatalf("output vars: %v", got)
	}
	if proj.Layout().Width() != 3 || proj.FullLayout().Width() != 2 {
		t.Fatalf("layout widths: %d out, %d full", proj.Layout().Width(), proj.FullLayout().Width())
	}
	var rows []rdf.Row
	proj.Rows(func(r rdf.Row) bool { rows = append(rows, r.Clone()); return true })
	if len(rows) != 3 {
		t.Fatalf("projected rows: %d", len(rows))
	}
	for _, r := range rows {
		if len(r) != 3 || r[2] != rdf.Unbound {
			t.Fatalf("ghost slot bound: %v", r)
		}
	}

	// DISTINCT on ?x collapses (a,b) and (a,c).
	dist := fp.Project([]string{"x"}, true)
	n := 0
	dist.Rows(func(r rdf.Row) bool { n++; return true })
	if n != 2 {
		t.Fatalf("distinct ?x: %d rows", n)
	}
	// The base program is untouched by the views.
	if fp.Projected() || fp.Layout().Width() != 2 {
		t.Fatal("Project must not mutate the receiver")
	}
	// EnumerateSet respects the projected layout.
	if set := dist.EnumerateSet(); set.Len() != 2 || set.Layout().Width() != 1 {
		t.Fatalf("EnumerateSet under projection: len %d width %d", set.Len(), set.Layout().Width())
	}
}
