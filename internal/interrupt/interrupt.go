// Package interrupt provides the two-stage signal handling shared by
// the commands. The first SIGINT/SIGTERM cancels the returned context,
// giving the program its graceful path: streams stop at the next yield
// boundary, servers drain. A second signal means the operator is done
// waiting — the process exits immediately with the conventional
// 128+SIGINT status.
package interrupt

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// Context returns a child of parent that is cancelled on the first
// SIGINT or SIGTERM. A second signal force-exits the process with
// status 130. The returned stop function releases the signal handler
// (after which signals get their default disposition again) and
// cancels the context.
func Context(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	stop := func() {
		signal.Stop(ch)
		cancel()
	}
	go func() {
		select {
		case <-ch:
			cancel()
		case <-ctx.Done():
			// The program finished (or stop ran) before any signal;
			// nothing to watch anymore.
			return
		}
		<-ch
		fmt.Fprintln(os.Stderr, "second interrupt: exiting immediately")
		os.Exit(130)
	}()
	return ctx, stop
}
