package sparql

import (
	"math/rand"
	"testing"

	"wdsparql/internal/rdf"
)

func TestHoistUnionsBasic(t *testing.T) {
	// ((A UNION B) AND C) → 2 branches.
	p := MustParse(`(((?x p ?y) UNION (?x q ?y)) AND (?y r ?z))`)
	branches, err := HoistUnions(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 2 {
		t.Fatalf("branches: %d", len(branches))
	}
	for _, b := range branches {
		if !IsUnionFree(b) {
			t.Fatalf("branch not union-free: %s", b)
		}
	}
	// Nested on both sides of AND: 2×2 = 4 branches.
	p = MustParse(`(((?x p ?y) UNION (?x q ?y)) AND ((?y r ?z) UNION (?y s ?z)))`)
	branches, err = HoistUnions(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 4 {
		t.Fatalf("branches: %d", len(branches))
	}
	// UNION under the left of OPT distributes.
	p = MustParse(`(((?x p ?y) UNION (?x q ?y)) OPT (?y r ?z))`)
	branches, err = HoistUnions(p)
	if err != nil || len(branches) != 2 {
		t.Fatalf("OPT-left hoist: %v %d", err, len(branches))
	}
	// UNION under the right of OPT is rejected.
	p = MustParse(`((?x p ?y) OPT ((?y r ?z) UNION (?y s ?z)))`)
	if _, err := HoistUnions(p); err == nil {
		t.Fatal("OPT-right UNION must be rejected")
	}
}

// Hoisting preserves the compositional semantics on random data.
func TestHoistUnionsPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	patterns := []string{
		`(((?x p ?y) UNION (?x q ?y)) AND (?y p ?z))`,
		`(((?x p ?y) UNION (?x q ?y)) OPT (?y q ?z))`,
		`((((?x p ?y) UNION (?x q ?y)) AND ((?y p ?z) UNION (?y q ?z))) UNION (?x p ?x))`,
	}
	for _, src := range patterns {
		p := MustParse(src)
		q, err := ToUnionNormalForm(p)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for trial := 0; trial < 20; trial++ {
			g := rdf.NewGraph()
			nodes := []string{"a", "b", "c"}
			for i := 0; i < 3+rng.Intn(8); i++ {
				g.AddTriple(nodes[rng.Intn(3)], []string{"p", "q"}[rng.Intn(2)], nodes[rng.Intn(3)])
			}
			ref := Eval(p, g)
			got := Eval(q, g)
			if ref.Len() != got.Len() {
				t.Fatalf("%s: hoisting changed semantics (%d vs %d)\nG=%s",
					src, ref.Len(), got.Len(), rdf.FormatGraph(g))
			}
			for _, mu := range ref.Slice() {
				if !got.Contains(mu) {
					t.Fatalf("%s: missing %s", src, mu)
				}
			}
		}
	}
}

func TestRenameVars(t *testing.T) {
	p := MustParse(`((?x p ?y) OPT (?y q ?z))`)
	q := RenameVars(p, map[string]string{"x": "a", "z": "c"})
	vs := Vars(q)
	want := map[string]bool{"a": true, "y": true, "c": true}
	if len(vs) != 3 {
		t.Fatalf("vars: %v", vs)
	}
	for _, v := range vs {
		if !want[v.Value] {
			t.Fatalf("unexpected var %s", v)
		}
	}
	// Original untouched.
	if len(Vars(p)) != 3 || Vars(p)[0].Value != "x" {
		t.Fatal("original mutated")
	}
}
