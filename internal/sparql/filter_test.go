package sparql

import (
	"math/rand"
	"strings"
	"testing"

	"wdsparql/internal/rdf"
)

// Tests for the FILTER / SELECT surface: the lexer's angle-bracket
// quoting (a regression — `<...>` used to be split on whitespace and
// parentheses), the expression grammar, the three-valued evaluation
// semantics, the filter safety condition, and projection.

// TestLexerAngleQuoting is the regression test for the `<...>` lexing
// fix: an angle-quoted IRI may contain spaces, parentheses, commas and
// keywords without being split into tokens. Pre-fix, every one of
// these inputs failed to parse (or mis-parsed the IRI).
func TestLexerAngleQuoting(t *testing.T) {
	for _, tc := range []struct {
		src string
		iri string
	}{
		{`(?x <http://ex.org/p#frag(1)> ?y)`, "http://ex.org/p#frag(1)"},
		{`(?x <a b> ?y)`, "a b"},
		{`(?x <AND> ?y)`, "AND"},
		{`(?x <p,q> ?y)`, "p,q"},
		{`(?x <has	tab> ?y)`, "has\ttab"},
	} {
		p, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		tr, ok := p.(Triple)
		if !ok || tr.T.P.Value != tc.iri {
			t.Fatalf("parse %q: predicate = %#v, want IRI %q", tc.src, p, tc.iri)
		}
		back, err := Parse(Format(p))
		if err != nil {
			t.Fatalf("reparse of %q (formatted %q): %v", tc.src, Format(p), err)
		}
		if !Equal(p, back) {
			t.Fatalf("roundtrip %q: %s vs %s", tc.src, Format(p), Format(back))
		}
	}
	// An unterminated IRI is a parse error, not a silent truncation.
	if _, err := Parse(`(?x <oops ?y)`); err == nil {
		t.Fatal("unterminated <...> should fail to parse")
	}
}

func TestParseFilterProductions(t *testing.T) {
	x, y, z := rdf.Var("x"), rdf.Var("y"), rdf.Var("z")
	for _, tc := range []struct {
		src  string
		want Pattern
	}{
		{
			`((?x p ?y) FILTER ?y = b)`,
			Filter{Where: TP(x, rdf.IRI("p"), y), Cond: Eq(y, rdf.IRI("b"))},
		},
		{
			`((?x p ?y) FILTER ?x != ?y)`,
			Filter{Where: TP(x, rdf.IRI("p"), y), Cond: Neq(x, y)},
		},
		{
			`(((?x p ?y) OPT (?y q ?z)) FILTER BOUND(?z))`,
			Filter{Where: Opt(TP(x, rdf.IRI("p"), y), TP(y, rdf.IRI("q"), z)), Cond: Bound{Var: z}},
		},
		{
			`((?x p ?y) FILTER NOT BOUND(?y))`,
			Filter{Where: TP(x, rdf.IRI("p"), y), Cond: ExprNot{X: Bound{Var: y}}},
		},
		{
			`((?x p ?y) FILTER (?x = a OR ?y = b) AND ?x != ?y)`,
			Filter{Where: TP(x, rdf.IRI("p"), y), Cond: ExprBinary{
				Op:   ExprAnd,
				Left: ExprBinary{Op: ExprOr, Left: Eq(x, rdf.IRI("a")), Right: Eq(y, rdf.IRI("b"))},
				Right: Neq(x, y),
			}},
		},
		{
			// Two FILTER clauses nest inner-to-outer in source order.
			`((?x p ?y) FILTER ?x = a FILTER ?y != b)`,
			Filter{
				Where: Filter{Where: TP(x, rdf.IRI("p"), y), Cond: Eq(x, rdf.IRI("a"))},
				Cond:  Neq(y, rdf.IRI("b")),
			},
		},
	} {
		p, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		if !Equal(p, tc.want) {
			t.Fatalf("parse %q:\ngot  %s\nwant %s", tc.src, Format(p), Format(tc.want))
		}
		back, err := Parse(Format(p))
		if err != nil {
			t.Fatalf("reparse %q: %v", Format(p), err)
		}
		if !Equal(p, back) {
			t.Fatalf("roundtrip %q: %s", tc.src, Format(back))
		}
	}
	for _, bad := range []string{
		`((?x p ?y) FILTER)`,
		`((?x p ?y) FILTER ?x)`,
		`((?x p ?y) FILTER BOUND ?x)`,         // BOUND requires parens
		`((?x p ?y) FILTER ?x = a AND (?y q ?z))`, // pattern after filter
		`((?x p ?y) FILTER ?x = a (?y q ?z))`,     // FILTER clauses must come last
		`(FILTER ?x = a)`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("expected parse error for %q", bad)
		}
	}
}

func TestParseSelect(t *testing.T) {
	p := MustParse(`SELECT ?y ?x WHERE ((?x p ?y) FILTER ?x != ?y)`)
	sel, ok := p.(Select)
	if !ok || sel.Distinct || len(sel.Vars) != 2 ||
		sel.Vars[0] != rdf.Var("y") || sel.Vars[1] != rdf.Var("x") {
		t.Fatalf("SELECT parse: %#v", p)
	}
	p = MustParse(`SELECT DISTINCT * WHERE ((?x p ?y) OPT (?y q ?z))`)
	sel = p.(Select)
	if !sel.Distinct || sel.Vars != nil {
		t.Fatalf("SELECT DISTINCT *: %#v", sel)
	}
	for _, src := range []string{
		`SELECT ?x WHERE (?x p ?y)`,
		`SELECT DISTINCT ?x ?z WHERE (((?x p ?y) OPT (?y q ?z)) FILTER BOUND(?z))`,
		`SELECT * WHERE (?x p ?y) UNION (?x q ?y)`,
	} {
		p := MustParse(src)
		back, err := Parse(Format(p))
		if err != nil {
			t.Fatalf("reparse %q: %v", Format(p), err)
		}
		if !Equal(p, back) {
			t.Fatalf("roundtrip %q: %s", src, Format(back))
		}
	}
	for _, bad := range []string{
		`SELECT WHERE (?x p ?y)`,
		`SELECT a WHERE (?x p ?y)`,
		`SELECT ?x (?x p ?y)`,
		`((?x p ?y) AND SELECT ?x WHERE (?y q ?z))`, // SELECT is top-level only
		`SELECT ?x WHERE (?x p ?y) extra`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("expected parse error for %q", bad)
		}
	}
}

func TestFilterSafety(t *testing.T) {
	// Safe: the filter variable ?z is in scope (inside the OPT arm it
	// wraps) — BOUND on it is the whole point.
	if err := CheckWellDesigned(MustParse(`(((?x p ?y) OPT (?y q ?z)) FILTER BOUND(?z))`)); err != nil {
		t.Fatalf("safe filter rejected: %v", err)
	}
	// Unsafe: ?w never occurs in the wrapped pattern.
	err := CheckWellDesigned(MustParse(`((?x p ?y) FILTER ?w = a)`))
	wd, ok := err.(*WellDesignedError)
	if !ok || !wd.Unsafe {
		t.Fatalf("unsafe filter: got %v, want Unsafe WellDesignedError", err)
	}
	// Projection of a variable absent from the WHERE pattern.
	if err := CheckWellDesigned(MustParse(`SELECT ?q WHERE (?x p ?y)`)); err == nil {
		t.Fatal("projection of foreign variable should be rejected")
	}
	// A filter inside an OPT arm may only use that arm's variables
	// plus nothing foreign — and well-designedness of the OPT
	// structure itself is checked through the Filter wrapper.
	err = CheckWellDesigned(MustParse(
		`((((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?z) AND (?z, r, ?o2))) FILTER ?x = a)`))
	if err == nil {
		t.Fatal("filter must not mask a well-designedness violation underneath")
	}
}

// TestEvalFilterThreeValued pins the three-valued semantics: a
// comparison on an unbound variable is an error (row dropped), BOUND
// observes bindings, and the Kleene tables let false absorb errors in
// AND and true absorb them in OR.
func TestEvalFilterThreeValued(t *testing.T) {
	// (a,b) extends with z=e; (c,d) stays bare (z unbound).
	g := rdf.MustParseGraph("a p b .\nc p d .\nb q e .\n")
	base := `((?x p ?y) OPT (?y q ?z))`
	sols := func(src string) []rdf.Mapping {
		return Eval(MustParse(src), g).Slice()
	}

	// Comparison on the unbound ?z errors: only the extended row can
	// pass, and only it can fail — the bare row is dropped either way.
	if got := sols(`(` + base + ` FILTER ?z = e)`); len(got) != 1 || got[0]["x"] != "a" {
		t.Fatalf("?z = e: %v", got)
	}
	if got := sols(`(` + base + ` FILTER ?z != e)`); len(got) != 0 {
		t.Fatalf("?z != e should drop both rows: %v", got)
	}
	// BOUND is the unbound-aware observer.
	if got := sols(`(` + base + ` FILTER NOT BOUND(?z))`); len(got) != 1 || got[0]["x"] != "c" {
		t.Fatalf("NOT BOUND(?z): %v", got)
	}
	// false AND error = false, so NOT of it is true: both rows stay.
	if got := sols(`(` + base + ` FILTER NOT (?x = nosuch AND ?z = e))`); len(got) != 2 {
		t.Fatalf("NOT(false AND err) should keep both rows: %v", got)
	}
	// true OR error = true: both rows stay.
	if got := sols(`(` + base + ` FILTER ?x != nosuch OR ?z = e)`); len(got) != 2 {
		t.Fatalf("true OR err should keep both rows: %v", got)
	}
	// NOT error = error: drops the bare row.
	if got := sols(`(` + base + ` FILTER NOT ?z = e)`); len(got) != 0 {
		t.Fatalf("NOT err drops rows where ?z unbound, and NOT true the other: %v", got)
	}
	// Constants outside the dictionary are unequal to everything bound
	// — and two distinct absent constants are unequal to each other.
	if got := sols(`(` + base + ` FILTER nosuch1 != nosuch2)`); len(got) != 2 {
		t.Fatalf("distinct absent constants must compare unequal: %v", got)
	}
	if got := sols(`(` + base + ` FILTER nosuch1 = nosuch1)`); len(got) != 2 {
		t.Fatalf("identical absent constants must compare equal: %v", got)
	}
}

func TestEvalSelectProjection(t *testing.T) {
	g := rdf.MustParseGraph("a p b .\na p c .\nd p d .\n")
	// Projection onto ?x collapses (a,b) and (a,c) in the set
	// semantics of Eval.
	set := Eval(MustParse(`SELECT ?x WHERE (?x p ?y)`), g)
	if set.Len() != 2 {
		t.Fatalf("projected set: %v", set.Slice())
	}
	for _, mu := range set.Slice() {
		if len(mu) != 1 || mu["x"] == "" {
			t.Fatalf("projection leaked a variable: %v", mu)
		}
	}
	// Contains decides membership on the projected set.
	if !Contains(MustParse(`SELECT ?x WHERE (?x p ?y)`), g, rdf.Mapping{"x": "a"}) {
		t.Fatal("projected membership")
	}
	if Contains(MustParse(`SELECT ?x WHERE (?x p ?y)`), g, rdf.Mapping{"x": "b"}) {
		t.Fatal("b is no subject")
	}
}

// TestHashJoinAgreesOnFilters cross-validates the hash-join pipeline
// against the nested-loop reference on randomized filtered queries.
func TestHashJoinAgreesOnFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	nodes := []string{"a", "b", "c", "d"}
	conds := []string{
		`?x = a`, `?x != ?y`, `BOUND(?y)`, `NOT BOUND(?w)`,
		`?x = a OR ?y != b`, `(?x != c AND ?y = ?y) OR NOT BOUND(?z)`,
	}
	for trial := 0; trial < 200; trial++ {
		inner := randEvalPattern(rng, 2)
		vars := Vars(inner)
		if len(vars) == 0 {
			continue
		}
		src := "(" + Format(inner) + " FILTER " + conds[rng.Intn(len(conds))] + ")"
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("generated query %q: %v", src, err)
		}
		g := rdf.NewGraph()
		for i := 0; i < 3+rng.Intn(10); i++ {
			g.AddTriple(nodes[rng.Intn(4)], []string{"p", "q"}[rng.Intn(2)], nodes[rng.Intn(4)])
		}
		want := Eval(p, g)
		got := EvalHashJoin(p, g)
		if want.Len() != got.Len() {
			t.Fatalf("trial %d: %s\nnested-loop %d vs hash %d", trial, src, want.Len(), got.Len())
		}
		for _, mu := range want.Slice() {
			if !got.Contains(mu) {
				t.Fatalf("trial %d: %s: hash join missing %v", trial, src, mu)
			}
		}
	}
}

func TestHoistUnionsDistributesFilter(t *testing.T) {
	p := MustParse(`(((?x p ?y) UNION (?x q ?y)) FILTER ?x = a)`)
	br, err := HoistUnions(p)
	if err != nil {
		t.Fatalf("hoist: %v", err)
	}
	if len(br) != 2 {
		t.Fatalf("branches: %d", len(br))
	}
	for _, b := range br {
		f, ok := b.(Filter)
		if !ok || !ExprEqual(f.Cond, Eq(rdf.Var("x"), rdf.IRI("a"))) {
			t.Fatalf("branch lost its filter: %s", Format(b))
		}
	}
	// σ distributes: evaluation agrees before and after hoisting.
	g := rdf.MustParseGraph("a p b .\nb q c .\na q d .\n")
	want, got := Eval(p, g), Eval(UnionAll(br...), g)
	if want.Len() != got.Len() {
		t.Fatalf("hoist changed semantics: %v vs %v", want.Slice(), got.Slice())
	}
	if _, err := HoistUnions(MustParse(`SELECT ?x WHERE (?x p ?y)`)); err == nil {
		t.Fatal("HoistUnions must reject a SELECT operand")
	}
}

func TestOptNormalFormRejectsFilters(t *testing.T) {
	p := MustParse(`((?x p ?y) FILTER ?x = a)`)
	if IsOptNormalForm(p) {
		t.Fatal("FILTER is outside the OPT-normal-form fragment")
	}
	if _, err := ToOptNormalForm(p); err == nil || !strings.Contains(err.Error(), "FILTER-free") {
		t.Fatalf("ToOptNormalForm on a filtered pattern: %v", err)
	}
}

func TestRenameVarsFilters(t *testing.T) {
	p := MustParse(`SELECT ?x WHERE ((?x p ?y) FILTER ?x != ?y AND BOUND(?y))`)
	r := RenameVars(p, map[string]string{"x": "u", "y": "v"})
	want := MustParse(`SELECT ?u WHERE ((?u p ?v) FILTER ?u != ?v AND BOUND(?v))`)
	if !Equal(r, want) {
		t.Fatalf("rename: %s, want %s", Format(r), Format(want))
	}
}
