package sparql

import (
	"fmt"

	"wdsparql/internal/rdf"
)

// This file implements the UNION-normal-form transformation used
// implicitly throughout the paper (footnote 2): UNION distributes over
// AND on both sides and over the mandatory (left) side of OPT, so
// patterns with such nested UNIONs can be hoisted into the top-level
// form P1 UNION ... UNION Pm. A UNION in the optional (right) side of
// an OPT does not distribute in general; HoistUnions reports an error
// for it rather than silently changing semantics.

// HoistUnions rewrites p into UNION normal form using the rewrite rules
//
//	(P1 UNION P2) AND P3  ≡  (P1 AND P3) UNION (P2 AND P3)
//	P1 AND (P2 UNION P3)  ≡  (P1 AND P2) UNION (P1 AND P3)
//	(P1 UNION P2) OPT P3  ≡  (P1 OPT P3) UNION (P2 OPT P3)
//
// and returns the list of UNION-free branches. A UNION nested in the
// right argument of an OPT is rejected.
func HoistUnions(p Pattern) ([]Pattern, error) {
	switch q := p.(type) {
	case Triple:
		return []Pattern{q}, nil
	case Binary:
		switch q.Op {
		case OpUnion:
			l, err := HoistUnions(q.Left)
			if err != nil {
				return nil, err
			}
			r, err := HoistUnions(q.Right)
			if err != nil {
				return nil, err
			}
			return append(l, r...), nil
		case OpAnd:
			l, err := HoistUnions(q.Left)
			if err != nil {
				return nil, err
			}
			r, err := HoistUnions(q.Right)
			if err != nil {
				return nil, err
			}
			var out []Pattern
			for _, a := range l {
				for _, b := range r {
					out = append(out, And(Clone(a), Clone(b)))
				}
			}
			return out, nil
		case OpOpt:
			l, err := HoistUnions(q.Left)
			if err != nil {
				return nil, err
			}
			if !IsUnionFree(q.Right) {
				return nil, fmt.Errorf("sparql: UNION in the optional side of %s does not distribute", q)
			}
			var out []Pattern
			for _, a := range l {
				out = append(out, Opt(Clone(a), Clone(q.Right)))
			}
			return out, nil
		}
	case Filter:
		// σ_R(P1 UNION P2) ≡ σ_R(P1) UNION σ_R(P2): the condition
		// distributes over every hoisted branch.
		branches, err := HoistUnions(q.Where)
		if err != nil {
			return nil, err
		}
		var out []Pattern
		for _, b := range branches {
			out = append(out, Filter{Where: b, Cond: q.Cond})
		}
		return out, nil
	case Select:
		return nil, fmt.Errorf("sparql: SELECT is a query wrapper, not a graph pattern operand")
	}
	return nil, fmt.Errorf("sparql: unknown pattern %T", p)
}

// ToUnionNormalForm applies HoistUnions and reassembles the top-level
// UNION pattern.
func ToUnionNormalForm(p Pattern) (Pattern, error) {
	branches, err := HoistUnions(p)
	if err != nil {
		return nil, err
	}
	return UnionAll(branches...), nil
}

// RenameVars applies a variable renaming to the pattern. Renaming to
// an existing variable is allowed (it merges the variables); callers
// wanting capture-free renaming must supply fresh names.
func RenameVars(p Pattern, rename map[string]string) Pattern {
	switch q := p.(type) {
	case Triple:
		t := q.T
		terms := t.Terms()
		for i, term := range terms {
			if term.IsVar() {
				if to, ok := rename[term.Value]; ok {
					terms[i].Value = to
				}
			}
		}
		t.S, t.P, t.O = terms[0], terms[1], terms[2]
		return Triple{T: t}
	case Binary:
		return Binary{Op: q.Op, Left: RenameVars(q.Left, rename), Right: RenameVars(q.Right, rename)}
	case Filter:
		return Filter{Where: RenameVars(q.Where, rename), Cond: RenameExprVars(q.Cond, rename)}
	case Select:
		vars := make([]rdf.Term, len(q.Vars))
		for i, v := range q.Vars {
			vars[i] = v
			if to, ok := rename[v.Value]; ok {
				vars[i].Value = to
			}
		}
		return Select{Vars: vars, Distinct: q.Distinct, Where: RenameVars(q.Where, rename)}
	}
	panic("sparql: unknown pattern type")
}
