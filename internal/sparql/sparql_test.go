package sparql

import (
	"strings"
	"testing"

	"wdsparql/internal/rdf"
)

// Example 1 of the paper: P1 is well-designed, P2 is not (?z escapes
// the OPT subpattern).
const example1P1 = `(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))`
const example1P2 = `(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?z) AND (?z, r, ?o2)))`

func TestExample1WellDesigned(t *testing.T) {
	p1 := MustParse(example1P1)
	if err := CheckWellDesigned(p1); err != nil {
		t.Fatalf("P1 should be well-designed: %v", err)
	}
	p2 := MustParse(example1P2)
	err := CheckWellDesigned(p2)
	if err == nil {
		t.Fatal("P2 is not well-designed")
	}
	wd, ok := err.(*WellDesignedError)
	if !ok || wd.Var != rdf.Var("z") {
		t.Fatalf("violation should name ?z: %v", err)
	}
}

func TestParserBasics(t *testing.T) {
	p := MustParse(`(?x p ?y)`)
	tr, ok := p.(Triple)
	if !ok || tr.T != rdf.T(rdf.Var("x"), rdf.IRI("p"), rdf.Var("y")) {
		t.Fatalf("parse triple: %v", p)
	}
	p = MustParse(`((?x p ?y) AND (?y q ?z))`)
	b, ok := p.(Binary)
	if !ok || b.Op != OpAnd {
		t.Fatalf("parse AND: %v", p)
	}
	// Commas are accepted.
	p2 := MustParse(`((?x, p, ?y) AND (?y, q, ?z))`)
	if !Equal(p, p2) {
		t.Fatal("comma-insensitive parse")
	}
	// OPTIONAL synonym.
	p3 := MustParse(`((?x p ?y) OPTIONAL (?y q ?z))`)
	if b3 := p3.(Binary); b3.Op != OpOpt {
		t.Fatal("OPTIONAL parses as OPT")
	}
}

func TestParserChainsAndErrors(t *testing.T) {
	p := MustParse(`((?a p ?b) AND (?b p ?c) AND (?c p ?d))`)
	if Size(p) != 3 {
		t.Fatalf("chain size: %d", Size(p))
	}
	// Top-level UNION without parens.
	p = MustParse(`(?x p ?y) UNION (?x q ?y)`)
	if len(UnionBranches(p)) != 2 {
		t.Fatal("top-level UNION")
	}
	for _, bad := range []string{
		``, `(`, `(?x p)`, `(?x p ?y`, `((?x p ?y) AND (?y q ?z) OPT (?z r ?w))`,
		`(?x p ?y) extra`, `((?x p ?y) BADOP (?y q ?z))`, `(? p ?y)`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("expected parse error for %q", bad)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, src := range []string{
		example1P1,
		`((?x p ?y) UNION ((?x p ?y) OPT ((?z q ?x) AND (?w q ?z))))`,
		`(a p ?y)`,
	} {
		p := MustParse(src)
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", p.String(), err)
		}
		if !Equal(p, back) {
			t.Fatalf("roundtrip: %s vs %s", p, back)
		}
	}
}

func TestVarsAndTriples(t *testing.T) {
	p := MustParse(example1P1)
	vs := Vars(p)
	if len(vs) != 5 {
		t.Fatalf("vars of P1: %v", vs)
	}
	if len(Triples(p)) != 4 {
		t.Fatalf("triples of P1: %v", Triples(p))
	}
}

func TestUnionNormalFormCheck(t *testing.T) {
	// UNION nested below AND is not well-designed (structural).
	p := And(Union(TP(rdf.Var("x"), rdf.IRI("p"), rdf.Var("y")), TP(rdf.Var("x"), rdf.IRI("q"), rdf.Var("y"))),
		TP(rdf.Var("x"), rdf.IRI("r"), rdf.Var("z")))
	err := CheckWellDesigned(p)
	if err == nil {
		t.Fatal("expected structural violation")
	}
	if wd := err.(*WellDesignedError); !wd.Structural {
		t.Fatalf("want structural error, got %v", err)
	}
	if !strings.Contains(err.Error(), "UNION") {
		t.Fatalf("error text: %v", err)
	}
}

func TestEvalTripleAndJoin(t *testing.T) {
	g := rdf.MustParseGraph("a p b .\nb q c .\n")
	p := MustParse(`((?x p ?y) AND (?y q ?z))`)
	res := Eval(p, g)
	if res.Len() != 1 {
		t.Fatalf("join: %v", res.Slice())
	}
	mu := res.Slice()[0]
	if mu["x"] != "a" || mu["y"] != "b" || mu["z"] != "c" {
		t.Fatalf("solution: %v", mu)
	}
}

func TestEvalOptSemantics(t *testing.T) {
	g := rdf.MustParseGraph("a p b .\nc p d .\nb q e .\n")
	p := MustParse(`((?x p ?y) OPT (?y q ?z))`)
	res := Eval(p, g)
	// (a,b) extends to z=e; (c,d) does not extend and survives bare.
	if res.Len() != 2 {
		t.Fatalf("opt: %v", res.Slice())
	}
	if !res.Contains(rdf.Mapping{"x": "a", "y": "b", "z": "e"}) {
		t.Fatal("missing extended solution")
	}
	if !res.Contains(rdf.Mapping{"x": "c", "y": "d"}) {
		t.Fatal("missing bare solution")
	}
	// µ1 = {x:a,y:b} alone is NOT a solution (it extends).
	if res.Contains(rdf.Mapping{"x": "a", "y": "b"}) {
		t.Fatal("extended mapping must absorb its base")
	}
}

func TestEvalUnion(t *testing.T) {
	g := rdf.MustParseGraph("a p b .\na q b .\n")
	p := MustParse(`(?x p ?y) UNION (?x q ?y)`)
	if res := Eval(p, g); res.Len() != 1 {
		// Both branches produce {x:a,y:b}; dedup to one.
		t.Fatalf("union dedup: %v", res.Slice())
	}
}

func TestIsUnionFreeAndClone(t *testing.T) {
	p := MustParse(example1P1)
	if !IsUnionFree(p) {
		t.Fatal("P1 is UNION-free")
	}
	u := Union(p, p)
	if IsUnionFree(u) {
		t.Fatal("union detected")
	}
	c := Clone(p)
	if !Equal(p, c) {
		t.Fatal("clone equal")
	}
}

func TestFormat(t *testing.T) {
	p := MustParse(`((?x p ?y) OPT (?y q ?z))`)
	out := Format(p)
	if !strings.Contains(out, "OPT") || !strings.Contains(out, "(?x, p, ?y)") {
		t.Fatalf("format output: %s", out)
	}
}

func TestAndAllUnionAllPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AndAll()
}
