package sparql

import (
	"fmt"
	"math/rand"
	"testing"

	"wdsparql/internal/rdf"
)

// EvalHashJoin must agree with the nested-loop Eval on everything.

func randEvalPattern(rng *rand.Rand, depth int) Pattern {
	if depth == 0 || rng.Intn(3) == 0 {
		vars := []rdf.Term{rdf.Var("x"), rdf.Var("y"), rdf.Var("z"), rdf.Var("w")}
		preds := []rdf.Term{rdf.IRI("p"), rdf.IRI("q")}
		pick := func() rdf.Term {
			if rng.Intn(5) == 0 {
				return rdf.IRI([]string{"a", "b"}[rng.Intn(2)])
			}
			return vars[rng.Intn(len(vars))]
		}
		return Triple{T: rdf.T(pick(), preds[rng.Intn(2)], pick())}
	}
	l := randEvalPattern(rng, depth-1)
	r := randEvalPattern(rng, depth-1)
	switch rng.Intn(3) {
	case 0:
		return And(l, r)
	case 1:
		return Opt(l, r)
	default:
		return Union(l, r)
	}
}

func TestHashJoinAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	nodes := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 250; trial++ {
		p := randEvalPattern(rng, 3)
		g := rdf.NewGraph()
		for i := 0; i < 3+rng.Intn(10); i++ {
			g.AddTriple(nodes[rng.Intn(4)], []string{"p", "q"}[rng.Intn(2)], nodes[rng.Intn(4)])
		}
		want := Eval(p, g)
		got := EvalHashJoin(p, g)
		if want.Len() != got.Len() {
			t.Fatalf("trial %d: %s\nnested-loop %d vs hash %d\nG=%s\nwant=%v\ngot=%v",
				trial, p, want.Len(), got.Len(), rdf.FormatGraph(g), want.Slice(), got.Slice())
		}
		for _, mu := range want.Slice() {
			if !got.Contains(mu) {
				t.Fatalf("trial %d: missing %s", trial, mu)
			}
		}
	}
}

func TestHashJoinMixedSchemas(t *testing.T) {
	// OPTIONAL produces mixed-schema operands; the schema-pair logic
	// must pair {x,y} with {y,z} and {y} correctly.
	g := rdf.MustParseGraph(`
a p b .
c p d .
b q e .
e p f .
`)
	p := MustParse(`(((?x p ?y) OPT (?y q ?z)) AND (?z p ?w))`)
	want := Eval(p, g)
	got := EvalHashJoin(p, g)
	if want.Len() != got.Len() {
		t.Fatalf("mixed schemas: %v vs %v", want.Slice(), got.Slice())
	}
}

func TestHashJoinLargerJoin(t *testing.T) {
	// A join with fan-out where nested loops would do 10k pairings.
	g := rdf.NewGraph()
	for i := 0; i < 100; i++ {
		g.AddTriple("hub", "p", fmt.Sprintf("m%d", i))
		g.AddTriple(fmt.Sprintf("m%d", i), "q", fmt.Sprintf("t%d", i))
	}
	p := MustParse(`((?x p ?y) AND (?y q ?z))`)
	got := EvalHashJoin(p, g)
	if got.Len() != 100 {
		t.Fatalf("join size: %d", got.Len())
	}
}

func BenchmarkEvalNestedLoopVsHash(b *testing.B) {
	g := rdf.NewGraph()
	for i := 0; i < 200; i++ {
		g.AddTriple(fmt.Sprintf("s%d", i%20), "p", fmt.Sprintf("m%d", i))
		g.AddTriple(fmt.Sprintf("m%d", i), "q", fmt.Sprintf("t%d", i%10))
	}
	p := MustParse(`((?x p ?y) AND (?y q ?z))`)
	b.Run("nested-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Eval(p, g)
		}
	})
	b.Run("hash-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EvalHashJoin(p, g)
		}
	})
}
