package sparql

import (
	"testing"
)

// FuzzParsePattern pins that the whole front half of the pipeline is
// total on arbitrary input: Parse returns a pattern or an error, never
// panics, and everything a parsed pattern immediately flows into —
// formatting, the well-designedness check, normal-form transforms —
// is panic-free too. Format must also round-trip: the printer's output
// for any accepted pattern is itself parseable.
func FuzzParsePattern(f *testing.F) {
	f.Add(`(?x p ?y)`)
	f.Add(`((?x p ?y) OPT (?y q ?z))`)
	f.Add(`((?x p ?y) AND (?z p ?w))`)
	f.Add(`((?x p ?y) UNION (?x q ?y))`)
	f.Add(`(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?z) AND (?z, r, ?o2)))`)
	f.Add(`((?x p`)
	f.Add(`()`)
	f.Add(`(?x ?y ?z ?w)`)
	f.Add("((?x \x00 ?y) OPT (?y q ?z))")
	// Regression: "??" used to double-strip into an empty-named
	// variable that Format printed as unparseable "?".
	f.Add(`(?? 0 0)`)
	// Angle-quoted IRIs: the lexer must honour <...> through spaces,
	// parens, commas and keywords (regression for the token-split bug).
	f.Add(`(?x <http://ex.org/p#frag(1)> ?y)`)
	f.Add(`(?x <a b,c> <AND>)`)
	f.Add(`(?x <unterminated ?y)`)
	// FILTER / SELECT productions.
	f.Add(`((?x p ?y) FILTER ?x = a)`)
	f.Add(`((?x p ?y) FILTER ?x != ?y FILTER BOUND(?y))`)
	f.Add(`(((?x p ?y) OPT (?y q ?z)) FILTER NOT BOUND(?z) OR ?x = a AND ?y != b)`)
	f.Add(`SELECT DISTINCT ?x ?y WHERE ((?x p ?y) FILTER (?x = a OR NOT ?y = b))`)
	f.Add(`SELECT * WHERE (?x p ?y) UNION (?x q ?y)`)
	f.Add(`SELECT ?x WHERE FILTER`)
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		_ = CheckWellDesigned(p)
		_ = IsOptNormalForm(p)
		_, _ = ToOptNormalForm(p)
		_, _ = HoistUnions(p)

		text := Format(p)
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("Format output %q of accepted input %q does not re-parse: %v", text, src, err)
		}
		if !Equal(p, q) {
			t.Fatalf("Format round-trip changed the pattern: %q -> %q", src, text)
		}
	})
}
