package sparql

import (
	"fmt"
	"sort"
	"strings"

	"wdsparql/internal/rdf"
)

// This file implements the FILTER expression fragment: equality and
// inequality between variables and IRI constants, BOUND(?x), and the
// boolean connectives AND, OR, NOT, evaluated under the SPARQL
// three-valued (true / false / error) semantics. The fragment is the
// filter language of Mengel & Skritek's projection/filter study
// restricted to the IRI-only data model of this module: no arithmetic,
// no regular expressions, no datatypes.
//
// The safety condition lives in welldesigned.go: a pattern
// (P FILTER R) is accepted only when vars(R) ⊆ vars(P), so a filter
// can never mention a variable outside the scope of the pattern it
// restricts. BOUND is still meaningful under that condition — vars of
// an OPT right-hand side are in scope but not necessarily bound.

// Expr is a filter expression over the terms of a pattern.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Cmp is the comparison Left = Right (or Left != Right when Neq is
// set) between two operands, each a variable or an IRI constant.
type Cmp struct {
	Left, Right rdf.Term
	Neq         bool
}

// Bound is BOUND(?x): true when the solution binds the variable.
type Bound struct {
	Var rdf.Term
}

// ExprOp identifies a binary boolean connective.
type ExprOp uint8

const (
	// ExprAnd is conjunction.
	ExprAnd ExprOp = iota
	// ExprOr is disjunction.
	ExprOr
)

// String returns the concrete spelling of the connective.
func (o ExprOp) String() string {
	if o == ExprOr {
		return "OR"
	}
	return "AND"
}

// ExprBinary is Left op Right for op ∈ {AND, OR}.
type ExprBinary struct {
	Op          ExprOp
	Left, Right Expr
}

// ExprNot is NOT X.
type ExprNot struct {
	X Expr
}

func (Cmp) isExpr()        {}
func (Bound) isExpr()      {}
func (ExprBinary) isExpr() {}
func (ExprNot) isExpr()    {}

func (c Cmp) String() string {
	op := "="
	if c.Neq {
		op = "!="
	}
	return fmt.Sprintf("%s %s %s", quoteTerm(c.Left), op, quoteTerm(c.Right))
}

func (b Bound) String() string { return fmt.Sprintf("BOUND(%s)", b.Var) }

func (e ExprBinary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}

func (e ExprNot) String() string { return fmt.Sprintf("NOT %s", e.X) }

// Eq builds the comparison l = r.
func Eq(l, r rdf.Term) Expr { return Cmp{Left: l, Right: r} }

// Neq builds the comparison l != r.
func Neq(l, r rdf.Term) Expr { return Cmp{Left: l, Right: r, Neq: true} }

// ExprVars returns the sorted set of variables occurring in the
// expression.
func ExprVars(e Expr) []rdf.Term {
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	var walk func(e Expr)
	walk = func(e Expr) {
		switch q := e.(type) {
		case Cmp:
			for _, t := range [2]rdf.Term{q.Left, q.Right} {
				if t.IsVar() && !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		case Bound:
			if !seen[q.Var] {
				seen[q.Var] = true
				out = append(out, q.Var)
			}
		case ExprBinary:
			walk(q.Left)
			walk(q.Right)
		case ExprNot:
			walk(q.X)
		default:
			panic(fmt.Sprintf("sparql: unknown expression %T", e))
		}
	}
	walk(e)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ExprEqual reports structural equality of two expressions.
func ExprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case Cmp:
		y, ok := b.(Cmp)
		return ok && x == y
	case Bound:
		y, ok := b.(Bound)
		return ok && x == y
	case ExprBinary:
		y, ok := b.(ExprBinary)
		return ok && x.Op == y.Op && ExprEqual(x.Left, y.Left) && ExprEqual(x.Right, y.Right)
	case ExprNot:
		y, ok := b.(ExprNot)
		return ok && ExprEqual(x.X, y.X)
	}
	return false
}

// RenameExprVars applies a variable renaming to the expression,
// mirroring RenameVars on patterns. Constants are never renamed.
func RenameExprVars(e Expr, rename map[string]string) Expr {
	renameTerm := func(t rdf.Term) rdf.Term {
		if t.IsVar() {
			if to, ok := rename[t.Value]; ok {
				t.Value = to
			}
		}
		return t
	}
	switch q := e.(type) {
	case Cmp:
		return Cmp{Left: renameTerm(q.Left), Right: renameTerm(q.Right), Neq: q.Neq}
	case Bound:
		return Bound{Var: renameTerm(q.Var)}
	case ExprBinary:
		return ExprBinary{Op: q.Op, Left: RenameExprVars(q.Left, rename), Right: RenameExprVars(q.Right, rename)}
	case ExprNot:
		return ExprNot{X: RenameExprVars(q.X, rename)}
	}
	panic(fmt.Sprintf("sparql: unknown expression %T", e))
}

// Conjuncts splits the expression at its top-level ANDs. A solution
// satisfies the expression (evaluates to true) iff it satisfies every
// conjunct: false or error in any conjunct makes the conjunction not
// true, so top-level splitting is sound for the accept/drop decision
// even under the three-valued semantics.
func Conjuncts(e Expr) []Expr {
	if b, ok := e.(ExprBinary); ok && b.Op == ExprAnd {
		return append(Conjuncts(b.Left), Conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// Tri is a three-valued truth value (SPARQL's true / false / error).
type Tri int8

const (
	// TriFalse is boolean false.
	TriFalse Tri = iota
	// TriTrue is boolean true.
	TriTrue
	// TriErr is the error value produced by a comparison on an
	// unbound variable. A solution passes a filter only on TriTrue.
	TriErr
)

// EvalExpr evaluates the expression against a solution row under the
// SPARQL three-valued semantics: a comparison whose operand variable
// is unbound in the row evaluates to error; BOUND never errors;
// AND(false, error) = false, OR(true, error) = true, NOT error =
// error. slotOf resolves a variable name to its row slot; lookup
// resolves an IRI constant to its TermID (false when the IRI is not in
// the dictionary, in which case the constant compares unequal to every
// bound value).
func EvalExpr(e Expr, row rdf.Row, slotOf func(string) (int, bool), lookup func(string) (rdf.TermID, bool)) Tri {
	switch q := e.(type) {
	case Cmp:
		// operand returns the row value of a variable (ok=false when
		// unbound → error) or the resolved constant.
		operand := func(t rdf.Term) (rdf.TermID, bool, bool) { // value, isAbsentConst, ok
			if t.IsVar() {
				s, have := slotOf(t.Value)
				if !have || row[s] == rdf.Unbound {
					return 0, false, false
				}
				return row[s], false, true
			}
			id, have := lookup(t.Value)
			if !have {
				return 0, true, true
			}
			return id, false, true
		}
		av, aAbsent, aok := operand(q.Left)
		bv, bAbsent, bok := operand(q.Right)
		if !aok || !bok {
			return TriErr
		}
		var equal bool
		switch {
		case aAbsent && bAbsent:
			// Two constants outside the dictionary still compare by
			// identity.
			equal = q.Left.Value == q.Right.Value
		case aAbsent || bAbsent:
			equal = false
		default:
			equal = av == bv
		}
		if equal != q.Neq {
			return TriTrue
		}
		return TriFalse
	case Bound:
		if s, have := slotOf(q.Var.Value); have && row[s] != rdf.Unbound {
			return TriTrue
		}
		return TriFalse
	case ExprBinary:
		l := EvalExpr(q.Left, row, slotOf, lookup)
		r := EvalExpr(q.Right, row, slotOf, lookup)
		if q.Op == ExprAnd {
			if l == TriFalse || r == TriFalse {
				return TriFalse
			}
			if l == TriErr || r == TriErr {
				return TriErr
			}
			return TriTrue
		}
		if l == TriTrue || r == TriTrue {
			return TriTrue
		}
		if l == TriErr || r == TriErr {
			return TriErr
		}
		return TriFalse
	case ExprNot:
		switch EvalExpr(q.X, row, slotOf, lookup) {
		case TriTrue:
			return TriFalse
		case TriFalse:
			return TriTrue
		}
		return TriErr
	}
	panic(fmt.Sprintf("sparql: unknown expression %T", e))
}

// quoteTerm renders a term for the concrete syntax: variables with
// their "?" sigil, IRIs bare unless they collide with the lexer (a
// delimiter character or a keyword), in which case they are
// angle-quoted. This is the inverse of the parser's term lexing, so
// Format/String output always re-parses to the same pattern.
func quoteTerm(t rdf.Term) string {
	if t.IsVar() {
		return t.String()
	}
	if iriNeedsQuoting(t.Value) {
		return "<" + t.Value + ">"
	}
	return t.Value
}

// iriNeedsQuoting reports whether a bare rendering of the IRI would
// not lex back as a single plain term.
func iriNeedsQuoting(v string) bool {
	if v == "" || strings.ContainsAny(v, " \t\n\r,()#<>=!?") {
		return true
	}
	switch v {
	case "AND", "OPT", "OPTIONAL", "UNION", "FILTER", "SELECT", "DISTINCT", "WHERE", "BOUND", "NOT", "OR", "*":
		return true
	}
	return false
}
