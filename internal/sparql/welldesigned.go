package sparql

import (
	"fmt"

	"wdsparql/internal/rdf"
)

// This file implements the well-designedness test of Section 2 of the
// paper: a UNION-free pattern P is well-designed if for every
// subpattern P' = (P1 OPT P2) of P, every variable occurring in P2 but
// not in P1 does not occur outside P' in P. A general pattern is
// well-designed if it is of the form P1 UNION ... UNION Pm with each
// Pi UNION-free and well-designed (UNION normal form).

// WellDesignedError describes a violation of the well-designedness
// condition, pinpointing the offending OPT subpattern and variable.
type WellDesignedError struct {
	// Sub is the violating subpattern P' = (P1 OPT P2) — or, for an
	// unsafe filter, the (P FILTER R) subpattern — or nil when the
	// violation is structural (UNION below AND/OPT).
	Sub Pattern
	// Var is the variable from P2 \ P1 that also occurs outside P';
	// for an unsafe filter, the filter variable outside vars(P).
	Var rdf.Term
	// Structural is set when the pattern is not in UNION normal form
	// (a UNION occurs under an AND or OPT).
	Structural bool
	// Unsafe is set when a filter condition mentions a variable
	// outside the scope of the pattern it restricts, or a projection
	// variable does not occur in the pattern.
	Unsafe bool
}

func (e *WellDesignedError) Error() string {
	if e.Structural {
		return "sparql: pattern is not in UNION normal form (UNION occurs below AND/OPT)"
	}
	if e.Unsafe {
		return fmt.Sprintf("sparql: unsafe: variable %s of %s is outside the pattern's scope", e.Var, e.Sub)
	}
	return fmt.Sprintf("sparql: not well-designed: variable %s of the optional side of %s occurs outside it", e.Var, e.Sub)
}

// CheckWellDesigned verifies that P is a well-designed graph pattern
// in the paper's sense, extended over the FILTER/SELECT fragment by
// the safety condition: every (P' FILTER R) subpattern must have
// vars(R) ⊆ vars(P'), and every projected variable of a SELECT must
// occur in its WHERE pattern. It returns nil on success and a
// *WellDesignedError describing the first violation otherwise.
func CheckWellDesigned(p Pattern) error {
	if sel, ok := p.(Select); ok {
		whereVars := varSet(sel.Where)
		for _, v := range sel.Vars {
			if !whereVars[v] {
				return &WellDesignedError{Sub: sel.Where, Var: v, Unsafe: true}
			}
		}
		p = sel.Where
	}
	for _, branch := range UnionBranches(p) {
		if !IsUnionFree(branch) {
			return &WellDesignedError{Structural: true}
		}
		if err := checkBranch(branch); err != nil {
			return err
		}
		if err := checkFilterSafety(branch); err != nil {
			return err
		}
	}
	return nil
}

// checkFilterSafety verifies vars(R) ⊆ vars(P') for every subpattern
// (P' FILTER R). A nested SELECT is not part of the fragment and is
// reported as structural.
func checkFilterSafety(p Pattern) error {
	switch q := p.(type) {
	case Triple:
		return nil
	case Binary:
		if err := checkFilterSafety(q.Left); err != nil {
			return err
		}
		return checkFilterSafety(q.Right)
	case Filter:
		scope := varSet(q.Where)
		for _, v := range ExprVars(q.Cond) {
			if !scope[v] {
				return &WellDesignedError{Sub: q, Var: v, Unsafe: true}
			}
		}
		return checkFilterSafety(q.Where)
	case Select:
		return &WellDesignedError{Structural: true}
	}
	return fmt.Errorf("sparql: unknown pattern %T", p)
}

// IsWellDesigned reports whether P is well-designed.
func IsWellDesigned(p Pattern) bool { return CheckWellDesigned(p) == nil }

// checkBranch checks the OPT condition within a single UNION-free
// branch. For every OPT node P' = (P1 OPT P2) we must have
// (vars(P2) \ vars(P1)) ∩ vars(P outside P') = ∅.
func checkBranch(branch Pattern) error {
	// occurrences counts, for every variable, the number of triple
	// patterns of the branch it occurs in. For each OPT node we count
	// occurrences inside the node and compare: a variable occurs
	// outside P' iff its total occurrence count exceeds its count
	// within P'.
	total := occurrenceCounts(branch)

	var walk func(p Pattern) error
	walk = func(p Pattern) error {
		if f, ok := p.(Filter); ok {
			// Filters bind nothing; the OPT condition looks through them.
			return walk(f.Where)
		}
		b, ok := p.(Binary)
		if !ok {
			return nil
		}
		if b.Op == OpOpt {
			inside := occurrenceCounts(p)
			leftVars := varSet(b.Left)
			for v := range varSet(b.Right) {
				if leftVars[v] {
					continue
				}
				// v occurs in P2 but not in P1; it must not occur
				// outside P'.
				if total[v] > inside[v] {
					return &WellDesignedError{Sub: p, Var: v}
				}
			}
		}
		if err := walk(b.Left); err != nil {
			return err
		}
		return walk(b.Right)
	}
	return walk(branch)
}

// occurrenceCounts maps each variable to the number of triple-pattern
// occurrences of it below p (counting one per triple pattern that
// mentions the variable, not per position).
func occurrenceCounts(p Pattern) map[rdf.Term]int {
	out := map[rdf.Term]int{}
	walkTriples(p, func(t rdf.Triple) {
		for _, v := range t.Vars() {
			out[v]++
		}
	})
	return out
}
