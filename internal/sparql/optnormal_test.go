package sparql

import (
	"math/rand"
	"testing"

	"wdsparql/internal/rdf"
)

func TestIsOptNormalForm(t *testing.T) {
	cases := map[string]bool{
		`(?x p ?y)`:                                 true,
		`((?x p ?y) AND (?y q ?z))`:                 true,
		`((?x p ?y) OPT (?y q ?z))`:                 true,
		`(((?x p ?y) OPT (?y q ?z)) AND (?x r ?w))`: false, // OPT under AND
		`(((?x p ?y) AND (?x r ?w)) OPT (?y q ?z))`: true,
		`(((?x p ?y) OPT (?y q ?z)) OPT (?x r ?w))`: true,
		`((?x p ?y) OPT ((?y q ?z) AND (?z q ?w)))`: true,
		`((?x p ?y) OPT ((?y q ?z) OPT (?z q ?w)))`: true,
		`((?x p ?y) AND ((?y q ?z) OPT (?z q ?w)))`: false,
	}
	for src, want := range cases {
		if got := IsOptNormalForm(MustParse(src)); got != want {
			t.Fatalf("IsOptNormalForm(%s)=%v, want %v", src, got, want)
		}
	}
}

func TestToOptNormalFormRejects(t *testing.T) {
	if _, err := ToOptNormalForm(MustParse(`(?x p ?y) UNION (?x q ?y)`)); err == nil {
		t.Fatal("UNION must be rejected")
	}
	bad := MustParse(`(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?z) AND (?z, r, ?o2)))`)
	if _, err := ToOptNormalForm(bad); err == nil {
		t.Fatal("non-well-designed must be rejected")
	}
}

// The transformation yields OPT normal form and preserves the
// compositional semantics on random well-designed patterns.
func TestQuickOptNormalFormSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(179))
	nodes := []string{"a", "b", "c"}
	used := 0
	for tries := 0; used < 120 && tries < 8000; tries++ {
		p := randNFPattern(rng, 3)
		if !IsWellDesigned(p) {
			continue
		}
		used++
		q, err := ToOptNormalForm(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !IsOptNormalForm(q) {
			t.Fatalf("not in OPT normal form: %s (from %s)", q, p)
		}
		g := rdf.NewGraph()
		for i := 0; i < 3+rng.Intn(8); i++ {
			g.AddTriple(nodes[rng.Intn(3)], []string{"p", "q"}[rng.Intn(2)], nodes[rng.Intn(3)])
		}
		want := Eval(p, g)
		got := Eval(q, g)
		if want.Len() != got.Len() {
			t.Fatalf("%s → %s changed semantics: %d vs %d\nG=%s",
				p, q, want.Len(), got.Len(), rdf.FormatGraph(g))
		}
		for _, mu := range want.Slice() {
			if !got.Contains(mu) {
				t.Fatalf("%s → %s: missing %s", p, q, mu)
			}
		}
	}
	if used < 60 {
		t.Fatalf("generator too weak: %d", used)
	}
}

func randNFPattern(rng *rand.Rand, depth int) Pattern {
	if depth == 0 || rng.Intn(3) == 0 {
		vars := []rdf.Term{rdf.Var("x"), rdf.Var("y"), rdf.Var("z"), rdf.Var("w")}
		pick := func() rdf.Term { return vars[rng.Intn(len(vars))] }
		return Triple{T: rdf.T(pick(), rdf.IRI([]string{"p", "q"}[rng.Intn(2)]), pick())}
	}
	l := randNFPattern(rng, depth-1)
	r := randNFPattern(rng, depth-1)
	if rng.Intn(2) == 0 {
		return And(l, r)
	}
	return Opt(l, r)
}
