package sparql

import (
	"wdsparql/internal/rdf"
)

// This file implements a second, production-grade compositional
// evaluator: the same Pérez-et-al. semantics as Eval, but with
// hash-based join and left-outer-join operators instead of nested
// loops, running on the same flat-row representation. Rows are
// partitioned by their bound-slot mask over the operator's shared
// slots (vars(P1) ∩ vars(P2), computed once per operator); because
// SPARQL mappings are *partial*, two rows can be compatible without
// agreeing on a common domain, and the hash key must be the projection
// onto the slots both schemas actually bind — computed once per pair
// of masks, not per pair of rows. This turns the O(|L|·|R|) pairing
// into O(|L| + |R| + |output|) per mask pair for AND.

// EvalHashJoin computes ⟦P⟧G with hash-based operators. It always
// agrees with Eval (asserted by the test suite) and is the faster
// choice on large intermediate results.
func EvalHashJoin(p Pattern, g *rdf.Graph) *rdf.MappingSet {
	return EvalHashJoinID(p, g).Decode(g.Dict())
}

// EvalHashJoinID is EvalHashJoin without the boundary decode.
func EvalHashJoinID(p Pattern, g *rdf.Graph) *rdf.IDMappingSet {
	sel, isSel := p.(Select)
	if isSel {
		p = sel.Where
	}
	set := newRowEvaluator(p, g).evalHash(p)
	if isSel {
		set = projectIDSet(set, sel.Vars, g.Dict().NumIRIs())
	}
	return set
}

func (e *rowEvaluator) evalHash(p Pattern) *rdf.IDMappingSet {
	switch q := p.(type) {
	case Triple:
		return e.evalTriple(q.T)
	case Binary:
		left := e.evalHash(q.Left)
		right := e.evalHash(q.Right)
		switch q.Op {
		case OpAnd:
			out := e.newSet()
			buf := e.layout.NewRow()
			e.hashJoin(left, right, e.sharedSlots(q.Left, q.Right), func(a, b rdf.Row) {
				out.Add(unionRows(a, b, buf))
			}, nil)
			return out
		case OpOpt:
			out := e.newSet()
			buf := e.layout.NewRow()
			matched := make([]bool, left.Len())
			e.hashJoin(left, right, e.sharedSlots(q.Left, q.Right), func(a, b rdf.Row) {
				out.Add(unionRows(a, b, buf))
			}, matched)
			i := 0
			left.Each(func(ra rdf.Row) bool {
				if !matched[i] {
					out.Add(ra)
				}
				i++
				return true
			})
			return out
		case OpUnion:
			out := e.newSet()
			out.AddAll(left)
			out.AddAll(right)
			return out
		}
	case Filter:
		return e.applyFilter(e.evalHash(q.Where), q.Cond)
	}
	panic("sparql: unknown pattern type in EvalHashJoin")
}

// maskGroup is the set of rows of one operand that bind exactly the
// same subset of the operator's shared slots.
type maskGroup struct {
	mask uint64
	idx  []int // row indices within the operand set
}

// groupByMask partitions the set's rows by which shared slots they
// bind. Shared-slot counts beyond 64 would overflow the mask; the
// caller falls back to the nested-loop operators in that (practically
// unreachable) regime.
func groupByMask(set *rdf.IDMappingSet, shared []int) []maskGroup {
	byMask := map[uint64]int{}
	var groups []maskGroup
	i := 0
	set.Each(func(r rdf.Row) bool {
		var m uint64
		for bit, s := range shared {
			if r[s] != rdf.Unbound {
				m |= 1 << uint(bit)
			}
		}
		gi, ok := byMask[m]
		if !ok {
			gi = len(groups)
			byMask[m] = gi
			groups = append(groups, maskGroup{mask: m})
		}
		groups[gi].idx = append(groups[gi].idx, i)
		i++
		return true
	})
	return groups
}

// hashJoin pairs compatible rows of the two sets, calling emit on
// every (left, right) pair. When matched is non-nil, matched[i] is set
// for every left row i that found at least one partner (used by the
// left-outer join). Pairing is per mask pair: the probe key is the
// packed projection onto the slots both masks bind.
func (e *rowEvaluator) hashJoin(left, right *rdf.IDMappingSet, shared []int, emit func(a, b rdf.Row), matched []bool) {
	if len(shared) > 64 {
		// Mask overflow: degrade to the nested-loop pairing.
		i := 0
		left.Each(func(ra rdf.Row) bool {
			right.Each(func(rb rdf.Row) bool {
				if compatibleRows(ra, rb, shared) {
					emit(ra, rb)
					if matched != nil {
						matched[i] = true
					}
				}
				return true
			})
			i++
			return true
		})
		return
	}
	lGroups := groupByMask(left, shared)
	rGroups := groupByMask(right, shared)
	keySlots := make([]int, 0, len(shared))
	var keyBuf []byte
	// packKey renders the projection onto keySlots into a reused
	// buffer; probe-side lookups convert it with the allocation-free
	// map-index idiom, so only build-side inserts allocate.
	packKey := func(r rdf.Row) []byte {
		b := keyBuf[:0]
		for _, s := range keySlots {
			b = rdf.AppendIDLE(b, r[s])
		}
		keyBuf = b
		return b
	}
	for _, lg := range lGroups {
		for _, rg := range rGroups {
			// Slots both schemas bind: the only slots compatibility can
			// fail on, computed once per mask pair.
			both := lg.mask & rg.mask
			keySlots = keySlots[:0]
			for bit, s := range shared {
				if both&(1<<uint(bit)) != 0 {
					keySlots = append(keySlots, s)
				}
			}
			// Build on the smaller side, probe with the larger.
			build, probe, buildIsLeft := rg, lg, false
			buildSet, probeSet := right, left
			if len(lg.idx) < len(rg.idx) {
				build, probe, buildIsLeft = lg, rg, true
				buildSet, probeSet = left, right
			}
			index := make(map[string][]int, len(build.idx))
			for _, bi := range build.idx {
				k := string(packKey(buildSet.Row(bi)))
				index[k] = append(index[k], bi)
			}
			for _, pi := range probe.idx {
				pr := probeSet.Row(pi)
				for _, bi := range index[string(packKey(pr))] {
					br := buildSet.Row(bi)
					// Key equality on the both-bound slots is exactly
					// compatibility for this mask pair.
					if buildIsLeft {
						emit(br, pr)
						if matched != nil {
							matched[bi] = true
						}
					} else {
						emit(pr, br)
						if matched != nil {
							matched[pi] = true
						}
					}
				}
			}
		}
	}
}
