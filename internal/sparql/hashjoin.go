package sparql

import (
	"sort"
	"strings"

	"wdsparql/internal/rdf"
)

// This file implements a second, production-grade compositional
// evaluator: the same Pérez-et-al. semantics as Eval, but with
// hash-based join and left-outer-join operators instead of nested
// loops. Mappings are partitioned by their projection onto the shared
// variables of the two operands, turning the O(|L|·|R|) pairing into
// O(|L| + |R| + |output|) for AND. Because SPARQL mappings are
// *partial*, two mappings can be compatible without agreeing on a
// common domain; the paper's semantics only needs compatibility on
// dom(µ1) ∩ dom(µ2), and the hash key must therefore be computed per
// pair of operand *schemas*. The evaluator groups each operand by its
// exact domain (OPTIONAL produces mixed-schema sets) and hash-joins
// schema pairs.

// EvalHashJoin computes ⟦P⟧G with hash-based operators. It always
// agrees with Eval (asserted by the test suite) and is the faster
// choice on large intermediate results.
func EvalHashJoin(p Pattern, g *rdf.Graph) *rdf.MappingSet {
	switch q := p.(type) {
	case Triple:
		out := rdf.NewMappingSet()
		for _, m := range g.MatchMappings(q.T) {
			out.Add(m)
		}
		return out
	case Binary:
		left := EvalHashJoin(q.Left, g)
		right := EvalHashJoin(q.Right, g)
		switch q.Op {
		case OpAnd:
			out := rdf.NewMappingSet()
			hashJoin(left, right, func(u rdf.Mapping) { out.Add(u) }, nil)
			return out
		case OpOpt:
			out := rdf.NewMappingSet()
			extended := map[string]bool{}
			hashJoin(left, right, func(u rdf.Mapping) { out.Add(u) }, func(m1 rdf.Mapping) {
				extended[m1.Key()] = true
			})
			for _, m1 := range left.Slice() {
				if !extended[m1.Key()] {
					out.Add(m1)
				}
			}
			return out
		case OpUnion:
			out := rdf.NewMappingSet()
			out.AddAll(left)
			out.AddAll(right)
			return out
		}
	}
	panic("sparql: unknown pattern type in EvalHashJoin")
}

// schemaGroup partitions mappings by their exact domain.
type schemaGroup struct {
	vars []string // sorted domain
	maps []rdf.Mapping
}

func groupBySchema(set *rdf.MappingSet) []schemaGroup {
	byKey := map[string]*schemaGroup{}
	for _, m := range set.Slice() {
		vars := make([]string, 0, len(m))
		for v := range m {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		key := strings.Join(vars, "\x00")
		gr, ok := byKey[key]
		if !ok {
			gr = &schemaGroup{vars: vars}
			byKey[key] = gr
		}
		gr.maps = append(gr.maps, m)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]schemaGroup, 0, len(keys))
	for _, k := range keys {
		out = append(out, *byKey[k])
	}
	return out
}

// hashJoin pairs compatible mappings of the two sets, calling emit on
// every union. When onMatch is non-nil it is additionally called once
// per left mapping that found at least one compatible partner (used by
// the left-outer join). Pairing is done per schema pair: the hash key
// is the projection onto the shared variables of the two schemas.
func hashJoin(left, right *rdf.MappingSet, emit func(rdf.Mapping), onMatch func(rdf.Mapping)) {
	lGroups := groupBySchema(left)
	rGroups := groupBySchema(right)
	for _, lg := range lGroups {
		for _, rg := range rGroups {
			shared := sharedVars(lg.vars, rg.vars)
			// Build on the smaller side.
			build, probe := rg, lg
			probeIsLeft := true
			if len(lg.maps) < len(rg.maps) {
				build, probe = lg, rg
				probeIsLeft = false
			}
			index := map[string][]rdf.Mapping{}
			for _, m := range build.maps {
				index[projectKey(m, shared)] = append(index[projectKey(m, shared)], m)
			}
			for _, m := range probe.maps {
				for _, partner := range index[projectKey(m, shared)] {
					// Shared-variable agreement is guaranteed by the
					// key; domains only overlap on shared, so the
					// union always succeeds.
					u, ok := m.Union(partner)
					if !ok {
						continue
					}
					emit(u)
					if onMatch != nil {
						if probeIsLeft {
							onMatch(m)
						} else {
							onMatch(partner)
						}
					}
				}
			}
		}
	}
}

func sharedVars(a, b []string) []string {
	inB := map[string]bool{}
	for _, v := range b {
		inB[v] = true
	}
	var out []string
	for _, v := range a {
		if inB[v] {
			out = append(out, v)
		}
	}
	return out
}

func projectKey(m rdf.Mapping, vars []string) string {
	var b strings.Builder
	for _, v := range vars {
		b.WriteString(m[v])
		b.WriteByte('\x00')
	}
	return b.String()
}
