package sparql

import (
	"wdsparql/internal/rdf"
)

// This file implements the compositional bottom-up semantics ⟦P⟧G of
// Pérez, Arenas and Gutierrez, exactly as restated in Section 2 of the
// paper:
//
//	⟦t⟧G            = {µ | dom(µ) = vars(t), µ(t) ∈ G}
//	⟦P1 AND P2⟧G    = {µ1 ∪ µ2 | µi ∈ ⟦Pi⟧G compatible}
//	⟦P1 OPT P2⟧G    = ⟦P1 AND P2⟧G ∪ {µ1 ∈ ⟦P1⟧G | no compatible µ2 ∈ ⟦P2⟧G}
//	⟦P1 UNION P2⟧G  = ⟦P1⟧G ∪ ⟦P2⟧G
//
// Evaluation is ID-native: the pattern's variables are compiled to a
// SlotLayout once, intermediate results are rdf.IDMappingSets of flat
// rows, compatibility and union are slot-wise array operations with
// the candidate shared slots (vars(P1) ∩ vars(P2)) computed once per
// operator, and strings are only touched when the final result is
// decoded at the Eval boundary. It still materialises full
// intermediate results and is therefore exponential in the worst
// case; it serves as the ground-truth reference implementation against
// which the wdPT evaluators of internal/core are cross-validated, and
// as the PSPACE-flavoured baseline of the benchmark harness.

// rowEvaluator carries the per-query compilation: the slot layout of
// vars(P) and the graph the pattern is evaluated against.
type rowEvaluator struct {
	g      *rdf.Graph
	layout *rdf.SlotLayout
	maxID  int
}

func newRowEvaluator(p Pattern, g *rdf.Graph) *rowEvaluator {
	layout := rdf.NewSlotLayout()
	for _, v := range Vars(p) {
		layout.Intern(v.Value)
	}
	return &rowEvaluator{g: g, layout: layout, maxID: g.Dict().NumIRIs()}
}

func (e *rowEvaluator) newSet() *rdf.IDMappingSet {
	return rdf.NewIDMappingSet(e.layout, e.maxID)
}

// sharedSlots returns the slots of vars(l) ∩ vars(r) — the only slots
// two sub-results can both bind, hence the only slots compatibility
// must inspect. Computed once per binary operator, not per row pair.
func (e *rowEvaluator) sharedSlots(l, r Pattern) []int {
	inL := map[int]bool{}
	for _, v := range Vars(l) {
		if s, ok := e.layout.Slot(v.Value); ok {
			inL[s] = true
		}
	}
	var out []int
	for _, v := range Vars(r) {
		if s, ok := e.layout.Slot(v.Value); ok && inL[s] {
			out = append(out, s)
		}
	}
	return out
}

// compatibleRows reports µ1 ~ µ2 given the operator's shared slots.
func compatibleRows(a, b rdf.Row, shared []int) bool {
	for _, s := range shared {
		if va, vb := a[s], b[s]; va != rdf.Unbound && vb != rdf.Unbound && va != vb {
			return false
		}
	}
	return true
}

// unionRows writes µ1 ∪ µ2 into buf (full width; µ1 wins where both
// are bound, which is sound because compatibility was checked).
func unionRows(a, b rdf.Row, buf rdf.Row) rdf.Row {
	for i := range buf {
		if a[i] != rdf.Unbound {
			buf[i] = a[i]
		} else {
			buf[i] = b[i]
		}
	}
	return buf
}

// evalTriple computes the base case ⟦t⟧G as rows.
func (e *rowEvaluator) evalTriple(t rdf.Triple) *rdf.IDMappingSet {
	out := e.newSet()
	var ip rdf.IDTriple
	var slotAt [3]int
	for i, term := range t.Terms() {
		if term.IsVar() {
			s, ok := e.layout.Slot(term.Value)
			if !ok {
				// Cannot happen: the layout interned vars(P) ⊇ vars(t).
				panic("sparql: triple variable missing from layout")
			}
			slotAt[i] = s
			ip[i] = rdf.VarID(s)
			continue
		}
		slotAt[i] = -1
		id, ok := e.g.Dict().LookupIRI(term.Value)
		if !ok {
			return out // constant not in G: no matches
		}
		ip[i] = id
	}
	row := e.layout.NewRow()
	cands, exact := e.g.LookupRangeID(ip)
	for _, tr := range cands {
		if !exact && !rdf.MatchesPatternID(ip, tr) {
			continue
		}
		for i := 0; i < 3; i++ {
			if slotAt[i] >= 0 {
				row[slotAt[i]] = tr[i]
			}
		}
		out.Add(row)
		for i := 0; i < 3; i++ {
			if slotAt[i] >= 0 {
				row[slotAt[i]] = rdf.Unbound
			}
		}
	}
	return out
}

// eval computes ⟦P⟧G as rows with nested-loop join operators (the
// reference semantics, executable line by line against the paper).
func (e *rowEvaluator) eval(p Pattern) *rdf.IDMappingSet {
	switch q := p.(type) {
	case Triple:
		return e.evalTriple(q.T)
	case Binary:
		left := e.eval(q.Left)
		right := e.eval(q.Right)
		switch q.Op {
		case OpAnd:
			return e.join(left, right, e.sharedSlots(q.Left, q.Right))
		case OpOpt:
			return e.leftOuter(left, right, e.sharedSlots(q.Left, q.Right))
		case OpUnion:
			out := e.newSet()
			out.AddAll(left)
			out.AddAll(right)
			return out
		}
	case Filter:
		return e.applyFilter(e.eval(q.Where), q.Cond)
	}
	panic("sparql: unknown pattern type in Eval")
}

// applyFilter computes σ_R(set): the rows on which the condition
// evaluates to true under the three-valued semantics.
func (e *rowEvaluator) applyFilter(set *rdf.IDMappingSet, cond Expr) *rdf.IDMappingSet {
	out := e.newSet()
	slotOf := e.layout.Slot
	lookup := e.g.Dict().LookupIRI
	set.Each(func(r rdf.Row) bool {
		if EvalExpr(cond, r, slotOf, lookup) == TriTrue {
			out.Add(r)
		}
		return true
	})
	return out
}

// projectIDSet maps a full-width result set onto the projection of a
// SELECT: a fresh layout holding the projected variables in declared
// order (or every variable for SELECT *). Sets are deduplicated by
// construction, so the result is the DISTINCT projection either way —
// the streaming pipeline's non-DISTINCT duplicate multiplicity has no
// set-level counterpart.
func projectIDSet(set *rdf.IDMappingSet, vars []rdf.Term, maxID int) *rdf.IDMappingSet {
	full := set.Layout()
	proj := rdf.NewSlotLayout()
	var slots []int
	if len(vars) == 0 {
		for s := 0; s < full.Width(); s++ {
			proj.Intern(full.Name(s))
			slots = append(slots, s)
		}
	} else {
		for _, v := range vars {
			proj.Intern(v.Value)
			s, ok := full.Slot(v.Value)
			if !ok {
				s = -1 // projected var absent from the pattern: stays unbound
			}
			slots = append(slots, s)
		}
	}
	out := rdf.NewIDMappingSet(proj, maxID)
	buf := proj.NewRow()
	set.Each(func(r rdf.Row) bool {
		for i, s := range slots {
			if s >= 0 {
				buf[i] = r[s]
			} else {
				buf[i] = rdf.Unbound
			}
		}
		out.Add(buf)
		return true
	})
	return out
}

// join computes {µ1 ∪ µ2 | compatible}.
func (e *rowEvaluator) join(a, b *rdf.IDMappingSet, shared []int) *rdf.IDMappingSet {
	out := e.newSet()
	buf := e.layout.NewRow()
	a.Each(func(ra rdf.Row) bool {
		b.Each(func(rb rdf.Row) bool {
			if compatibleRows(ra, rb, shared) {
				out.Add(unionRows(ra, rb, buf))
			}
			return true
		})
		return true
	})
	return out
}

// leftOuter computes ⟦P1 OPT P2⟧ from the two operand results.
func (e *rowEvaluator) leftOuter(a, b *rdf.IDMappingSet, shared []int) *rdf.IDMappingSet {
	out := e.newSet()
	buf := e.layout.NewRow()
	a.Each(func(ra rdf.Row) bool {
		extended := false
		b.Each(func(rb rdf.Row) bool {
			if compatibleRows(ra, rb, shared) {
				out.Add(unionRows(ra, rb, buf))
				extended = true
			}
			return true
		})
		if !extended {
			out.Add(ra)
		}
		return true
	})
	return out
}

// EvalID computes ⟦P⟧G by the compositional semantics as a row set
// (the set carries the pattern's slot layout — the projected layout
// for SELECT queries).
func EvalID(p Pattern, g *rdf.Graph) *rdf.IDMappingSet {
	sel, isSel := p.(Select)
	if isSel {
		p = sel.Where
	}
	set := newRowEvaluator(p, g).eval(p)
	if isSel {
		set = projectIDSet(set, sel.Vars, g.Dict().NumIRIs())
	}
	return set
}

// Eval computes ⟦P⟧G by the compositional semantics, decoding the row
// result at the boundary.
func Eval(p Pattern, g *rdf.Graph) *rdf.MappingSet {
	return EvalID(p, g).Decode(g.Dict())
}

// Contains reports whether µ ∈ ⟦P⟧G by the compositional semantics.
// This is the reference decision procedure for wdEVAL. The probe is
// encoded once; a mapping that mentions a variable outside vars(P) or
// a value outside dom(G) cannot be a solution.
func Contains(p Pattern, g *rdf.Graph, mu rdf.Mapping) bool {
	if _, isSel := p.(Select); isSel {
		// Projection loses the full-row structure; decide membership on
		// the projected result set.
		set := EvalID(p, g)
		row, ok := set.Layout().EncodeMapping(g.Dict(), mu)
		if !ok {
			return false
		}
		return set.ContainsRow(row)
	}
	e := newRowEvaluator(p, g)
	row, ok := e.layout.EncodeMapping(g.Dict(), mu)
	if !ok {
		return false
	}
	return e.eval(p).ContainsRow(row)
}
