package sparql

import (
	"wdsparql/internal/rdf"
)

// This file implements the compositional bottom-up semantics ⟦P⟧G of
// Pérez, Arenas and Gutierrez, exactly as restated in Section 2 of the
// paper:
//
//	⟦t⟧G            = {µ | dom(µ) = vars(t), µ(t) ∈ G}
//	⟦P1 AND P2⟧G    = {µ1 ∪ µ2 | µi ∈ ⟦Pi⟧G compatible}
//	⟦P1 OPT P2⟧G    = ⟦P1 AND P2⟧G ∪ {µ1 ∈ ⟦P1⟧G | no compatible µ2 ∈ ⟦P2⟧G}
//	⟦P1 UNION P2⟧G  = ⟦P1⟧G ∪ ⟦P2⟧G
//
// It materialises full intermediate results and is therefore
// exponential in the worst case; it serves as the ground-truth
// reference implementation against which the wdPT evaluators of
// internal/core are cross-validated, and as the PSPACE-flavoured
// baseline of the benchmark harness.

// Eval computes ⟦P⟧G by the compositional semantics.
func Eval(p Pattern, g *rdf.Graph) *rdf.MappingSet {
	switch q := p.(type) {
	case Triple:
		out := rdf.NewMappingSet()
		for _, m := range g.MatchMappings(q.T) {
			out.Add(m)
		}
		return out
	case Binary:
		left := Eval(q.Left, g)
		right := Eval(q.Right, g)
		switch q.Op {
		case OpAnd:
			return join(left, right)
		case OpOpt:
			return leftOuter(left, right)
		case OpUnion:
			out := rdf.NewMappingSet()
			out.AddAll(left)
			out.AddAll(right)
			return out
		}
	}
	panic("sparql: unknown pattern type in Eval")
}

// join computes {µ1 ∪ µ2 | compatible}.
func join(a, b *rdf.MappingSet) *rdf.MappingSet {
	out := rdf.NewMappingSet()
	bs := b.Slice()
	for _, m1 := range a.Slice() {
		for _, m2 := range bs {
			if u, ok := m1.Union(m2); ok {
				out.Add(u)
			}
		}
	}
	return out
}

// leftOuter computes ⟦P1 OPT P2⟧ from the two operand results.
func leftOuter(a, b *rdf.MappingSet) *rdf.MappingSet {
	out := rdf.NewMappingSet()
	bs := b.Slice()
	for _, m1 := range a.Slice() {
		extended := false
		for _, m2 := range bs {
			if u, ok := m1.Union(m2); ok {
				out.Add(u)
				extended = true
			}
		}
		if !extended {
			out.Add(m1)
		}
	}
	return out
}

// Contains reports whether µ ∈ ⟦P⟧G by the compositional semantics.
// This is the reference decision procedure for wdEVAL.
func Contains(p Pattern, g *rdf.Graph, mu rdf.Mapping) bool {
	return Eval(p, g).Contains(mu)
}
