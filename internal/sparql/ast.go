// Package sparql implements the query-language side of the paper's
// Section 2: SPARQL graph patterns over the operators AND, OPT
// (OPTIONAL) and UNION, a concrete syntax with a parser, the
// well-designedness test, UNION normal form, and the direct
// Pérez-et-al. bottom-up semantics used as a reference evaluator.
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"wdsparql/internal/rdf"
)

// Op identifies a binary SPARQL operator.
type Op uint8

const (
	// OpAnd is the conjunction operator AND.
	OpAnd Op = iota
	// OpOpt is the left-outer OPTIONAL operator OPT.
	OpOpt
	// OpUnion is the disjunction operator UNION.
	OpUnion
)

// String returns the paper's spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpAnd:
		return "AND"
	case OpOpt:
		return "OPT"
	case OpUnion:
		return "UNION"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Pattern is a SPARQL graph pattern: either a triple pattern or a
// binary combination of two patterns (Section 2 of the paper).
type Pattern interface {
	fmt.Stringer
	isPattern()
}

// Triple is a triple-pattern leaf.
type Triple struct {
	T rdf.Triple
}

// Binary is P1 op P2 for op ∈ {AND, OPT, UNION}.
type Binary struct {
	Op          Op
	Left, Right Pattern
}

// Filter is (Where FILTER Cond): the solutions of Where restricted to
// those on which Cond evaluates to true (three-valued semantics; see
// expr.go). The safety condition vars(Cond) ⊆ vars(Where) is part of
// well-designedness, not of construction.
type Filter struct {
	Where Pattern
	Cond  Expr
}

// Select is the query wrapper SELECT ?x ?y [DISTINCT] WHERE P: the
// solutions of Where projected onto Vars, deduplicated when Distinct
// is set. A nil Vars projects every variable (SELECT *). Select is
// only meaningful as the outermost node of a query; the parser never
// produces a nested one.
type Select struct {
	Vars     []rdf.Term // projected variables, in declared order; nil = *
	Distinct bool
	Where    Pattern
}

func (Triple) isPattern() {}
func (Binary) isPattern() {}
func (Filter) isPattern() {}
func (Select) isPattern() {}

func (t Triple) String() string {
	return fmt.Sprintf("(%s, %s, %s)", quoteTerm(t.T.S), quoteTerm(t.T.P), quoteTerm(t.T.O))
}

func (b Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Left, b.Op, b.Right)
}

func (f Filter) String() string {
	return fmt.Sprintf("(%s FILTER %s)", f.Where, f.Cond)
}

func (s Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(s.Vars) == 0 {
		b.WriteString("*")
	} else {
		for i, v := range s.Vars {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(v.String())
		}
	}
	b.WriteString(" WHERE ")
	b.WriteString(s.Where.String())
	return b.String()
}

// TP builds a triple-pattern leaf.
func TP(s, p, o rdf.Term) Pattern { return Triple{T: rdf.T(s, p, o)} }

// And builds (l AND r).
func And(l, r Pattern) Pattern { return Binary{Op: OpAnd, Left: l, Right: r} }

// Opt builds (l OPT r).
func Opt(l, r Pattern) Pattern { return Binary{Op: OpOpt, Left: l, Right: r} }

// Union builds (l UNION r).
func Union(l, r Pattern) Pattern { return Binary{Op: OpUnion, Left: l, Right: r} }

// AndAll folds a non-empty list of patterns with AND, left-associated.
func AndAll(ps ...Pattern) Pattern {
	if len(ps) == 0 {
		panic("sparql: AndAll of no patterns")
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = And(out, p)
	}
	return out
}

// UnionAll folds a non-empty list of patterns with UNION,
// left-associated (the UNION normal form shape).
func UnionAll(ps ...Pattern) Pattern {
	if len(ps) == 0 {
		panic("sparql: UnionAll of no patterns")
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = Union(out, p)
	}
	return out
}

// Vars returns vars(P), the sorted set of variables occurring in P.
func Vars(p Pattern) []rdf.Term {
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	walkTriples(p, func(t rdf.Triple) {
		for _, v := range t.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Triples returns the multiset of triple patterns occurring in P, in
// left-to-right order.
func Triples(p Pattern) []rdf.Triple {
	var out []rdf.Triple
	walkTriples(p, func(t rdf.Triple) { out = append(out, t) })
	return out
}

func walkTriples(p Pattern, f func(rdf.Triple)) {
	switch q := p.(type) {
	case Triple:
		f(q.T)
	case Binary:
		walkTriples(q.Left, f)
		walkTriples(q.Right, f)
	case Filter:
		// Filter conditions bind nothing: vars(P FILTER R) = vars(P).
		walkTriples(q.Where, f)
	case Select:
		walkTriples(q.Where, f)
	default:
		panic(fmt.Sprintf("sparql: unknown pattern %T", p))
	}
}

// IsUnionFree reports whether P uses only AND, OPT and FILTER.
func IsUnionFree(p Pattern) bool {
	switch q := p.(type) {
	case Triple:
		return true
	case Binary:
		if q.Op == OpUnion {
			return false
		}
		return IsUnionFree(q.Left) && IsUnionFree(q.Right)
	case Filter:
		return IsUnionFree(q.Where)
	case Select:
		return IsUnionFree(q.Where)
	}
	return false
}

// UnionBranches flattens the top-level UNIONs of P, returning the
// branches P1, ..., Pm such that P ≡ P1 UNION ... UNION Pm.
// If P contains no top-level UNION the result is [P].
func UnionBranches(p Pattern) []Pattern {
	if b, ok := p.(Binary); ok && b.Op == OpUnion {
		return append(UnionBranches(b.Left), UnionBranches(b.Right)...)
	}
	return []Pattern{p}
}

// Size returns the number of triple patterns in P, the paper's |P|
// measure up to a constant factor.
func Size(p Pattern) int {
	n := 0
	walkTriples(p, func(rdf.Triple) { n++ })
	return n
}

// Clone returns a structural copy of the pattern. Filter conditions
// and projection lists are immutable by convention and shared.
func Clone(p Pattern) Pattern {
	switch q := p.(type) {
	case Triple:
		return q
	case Binary:
		return Binary{Op: q.Op, Left: Clone(q.Left), Right: Clone(q.Right)}
	case Filter:
		return Filter{Where: Clone(q.Where), Cond: q.Cond}
	case Select:
		return Select{Vars: q.Vars, Distinct: q.Distinct, Where: Clone(q.Where)}
	}
	panic("sparql: unknown pattern type")
}

// Equal reports structural equality of two patterns.
func Equal(p, q Pattern) bool {
	switch a := p.(type) {
	case Triple:
		b, ok := q.(Triple)
		return ok && a.T == b.T
	case Binary:
		b, ok := q.(Binary)
		return ok && a.Op == b.Op && Equal(a.Left, b.Left) && Equal(a.Right, b.Right)
	case Filter:
		b, ok := q.(Filter)
		return ok && ExprEqual(a.Cond, b.Cond) && Equal(a.Where, b.Where)
	case Select:
		b, ok := q.(Select)
		if !ok || a.Distinct != b.Distinct || len(a.Vars) != len(b.Vars) {
			return false
		}
		for i := range a.Vars {
			if a.Vars[i] != b.Vars[i] {
				return false
			}
		}
		return Equal(a.Where, b.Where)
	}
	return false
}

// varSet is a small helper for variable-set computations.
func varSet(p Pattern) map[rdf.Term]bool {
	s := map[rdf.Term]bool{}
	walkTriples(p, func(t rdf.Triple) {
		for _, v := range t.Vars() {
			s[v] = true
		}
	})
	return s
}

// Format renders the pattern with indentation, for debugging and CLI
// output.
func Format(p Pattern) string {
	var b strings.Builder
	format(&b, p, 0)
	return b.String()
}

func format(b *strings.Builder, p Pattern, depth int) {
	indent := strings.Repeat("  ", depth)
	switch q := p.(type) {
	case Triple:
		b.WriteString(indent)
		b.WriteString(q.String())
		b.WriteByte('\n')
	case Binary:
		b.WriteString(indent)
		b.WriteByte('(')
		b.WriteByte('\n')
		format(b, q.Left, depth+1)
		b.WriteString(indent)
		b.WriteString(q.Op.String())
		b.WriteByte('\n')
		format(b, q.Right, depth+1)
		b.WriteString(indent)
		b.WriteByte(')')
		b.WriteByte('\n')
	case Filter:
		b.WriteString(indent)
		b.WriteByte('(')
		b.WriteByte('\n')
		format(b, q.Where, depth+1)
		b.WriteString(indent)
		b.WriteString("FILTER ")
		b.WriteString(q.Cond.String())
		b.WriteByte('\n')
		b.WriteString(indent)
		b.WriteByte(')')
		b.WriteByte('\n')
	case Select:
		b.WriteString(indent)
		b.WriteString("SELECT ")
		if q.Distinct {
			b.WriteString("DISTINCT ")
		}
		if len(q.Vars) == 0 {
			b.WriteString("*")
		} else {
			for i, v := range q.Vars {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(v.String())
			}
		}
		b.WriteString(" WHERE\n")
		format(b, q.Where, depth)
	}
}
