package sparql

import (
	"fmt"
)

// OPT normal form (the paper's Section 2.1, following Pérez et al. and
// Letelier et al.): a UNION-free pattern is in OPT normal form when no
// OPT occurs below an AND. Every well-designed UNION-free pattern can
// be rewritten into OPT normal form with the two equivalences
//
//	(P1 OPT P2) AND P3  ≡  (P1 AND P3) OPT P2
//	P1 AND (P2 OPT P3)  ≡  (P1 AND P2) OPT P3
//
// which hold for well-designed patterns (they can change results on
// non-well-designed ones). The pattern-tree translation of
// internal/ptree performs this flattening implicitly; the explicit
// transformation here reproduces the paper's normal form as a
// pattern-to-pattern rewrite and is cross-validated against the
// compositional semantics.

// IsOptNormalForm reports whether the UNION-free pattern has no OPT
// under an AND. The normal form is defined on the paper's AND/OPT
// fragment: FILTER and SELECT nodes are outside it, so any pattern
// containing them reports false.
func IsOptNormalForm(p Pattern) bool {
	switch q := p.(type) {
	case Triple:
		return true
	case Binary:
		switch q.Op {
		case OpOpt:
			return IsOptNormalForm(q.Left) && IsOptNormalForm(q.Right)
		case OpAnd:
			return andFreeOfOpt(q.Left) && andFreeOfOpt(q.Right)
		default:
			return false // UNION: not UNION-free
		}
	}
	return false
}

func andFreeOfOpt(p Pattern) bool {
	switch q := p.(type) {
	case Triple:
		return true
	case Binary:
		return q.Op == OpAnd && andFreeOfOpt(q.Left) && andFreeOfOpt(q.Right)
	}
	return false
}

// hasFilterOrSelect reports whether the pattern contains a FILTER or
// SELECT node anywhere.
func hasFilterOrSelect(p Pattern) bool {
	switch q := p.(type) {
	case Triple:
		return false
	case Binary:
		return hasFilterOrSelect(q.Left) || hasFilterOrSelect(q.Right)
	}
	return true // Filter, Select, or unknown
}

// ToOptNormalForm rewrites a UNION-free well-designed pattern into an
// equivalent pattern in OPT normal form. It returns an error on
// patterns containing UNION or failing the well-designedness test
// (the rewrite rules are only sound for well-designed patterns), and
// on patterns containing FILTER or SELECT, which are outside the
// normal form's AND/OPT fragment (the pattern-tree translation of
// internal/ptree handles those directly).
func ToOptNormalForm(p Pattern) (Pattern, error) {
	if !IsUnionFree(p) {
		return nil, fmt.Errorf("sparql: OPT normal form requires a UNION-free pattern")
	}
	if hasFilterOrSelect(p) {
		return nil, fmt.Errorf("sparql: OPT normal form is defined on the FILTER-free AND/OPT fragment")
	}
	if err := CheckWellDesigned(p); err != nil {
		return nil, err
	}
	return optNF(p), nil
}

// optNF returns an equivalent pattern of the shape B OPT Q1 OPT ... OPT Qm
// where B is AND-only and each Qi is recursively in the same shape.
func optNF(p Pattern) Pattern {
	base, opts := splitMandatory(p)
	out := base
	for _, o := range opts {
		out = Opt(out, optNF(o))
	}
	return out
}

// splitMandatory separates the mandatory AND-part of p from the
// hoisted OPT right-hand sides, applying the two rewrite rules
// left-to-right.
func splitMandatory(p Pattern) (Pattern, []Pattern) {
	switch q := p.(type) {
	case Triple:
		return q, nil
	case Binary:
		switch q.Op {
		case OpAnd:
			lBase, lOpts := splitMandatory(q.Left)
			rBase, rOpts := splitMandatory(q.Right)
			return And(lBase, rBase), append(lOpts, rOpts...)
		case OpOpt:
			base, opts := splitMandatory(q.Left)
			return base, append(opts, q.Right)
		}
	}
	panic("sparql: splitMandatory on UNION or unknown pattern")
}
