package sparql

import (
	"fmt"
	"strings"

	"wdsparql/internal/rdf"
)

// This file implements a recursive-descent parser for the paper's
// concrete pattern syntax, extended with FILTER and a SELECT wrapper:
//
//	query    := pattern
//	          | SELECT [DISTINCT] ('*' | '?'name...) WHERE pattern
//	pattern  := unit { OP unit } { FILTER expr }
//	unit     := '(' pattern ')'                 (grouping / binary combination)
//	          | '(' term term term ')'          (triple pattern)
//	expr     := andExpr { OR andExpr }
//	andExpr  := notExpr { AND notExpr }
//	notExpr  := (NOT | '!') notExpr | primary
//	primary  := '(' expr ')'
//	          | BOUND '(' '?'name ')'
//	          | term ('=' | '!=') term
//	term     := '?'name                         (variable)
//	          | name                            (IRI)
//	          | '<' any '>'                     (angle-quoted IRI)
//
// Commas between the terms of a triple pattern are accepted and
// ignored, so the paper's "(?x, p, ?y)" parses as written. Operators
// at one nesting level must be identical; mixing AND/OPT/UNION without
// parentheses is rejected as ambiguous. FILTER clauses terminate their
// group: they apply to the whole sequence to their left, and only
// further FILTERs (or the closing parenthesis) may follow. Inside
// angle quotes every character except '>' is part of the IRI — in
// particular '#', which starts a comment everywhere else — so
// real-world fragment IRIs like <http://example.org/ns#name> parse as
// one term. An unterminated '<' is a syntax error, as is a stray '>'.

type tokenKind uint8

const (
	tokLParen tokenKind = iota
	tokRParen
	tokOp
	tokTerm
	tokCmp // "=" or "!="
	tokNot // "!"
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	in  string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',':
			l.pos++
		case c == '#':
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
		case c == '(':
			l.pos++
			return token{kind: tokLParen, text: "(", pos: l.pos - 1}, nil
		case c == ')':
			l.pos++
			return token{kind: tokRParen, text: ")", pos: l.pos - 1}, nil
		case c == '<':
			// Angle-quoted IRI: one term through the closing '>',
			// shielding '#', ',', parentheses and every other delimiter.
			start := l.pos
			end := strings.IndexByte(l.in[start+1:], '>')
			if end < 0 {
				return token{}, fmt.Errorf("sparql: pos %d: unterminated '<' (no closing '>')", start)
			}
			l.pos = start + 1 + end + 1
			return token{kind: tokTerm, text: l.in[start:l.pos], pos: start}, nil
		case c == '>':
			return token{}, fmt.Errorf("sparql: pos %d: unexpected '>' (angle-quoted IRIs open with '<')", l.pos)
		case c == '=':
			l.pos++
			return token{kind: tokCmp, text: "=", pos: l.pos - 1}, nil
		case c == '!':
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
				l.pos += 2
				return token{kind: tokCmp, text: "!=", pos: l.pos - 2}, nil
			}
			l.pos++
			return token{kind: tokNot, text: "!", pos: l.pos - 1}, nil
		default:
			start := l.pos
			for l.pos < len(l.in) && !strings.ContainsRune(" \t\n\r,()#<>=!", rune(l.in[l.pos])) {
				l.pos++
			}
			text := l.in[start:l.pos]
			switch text {
			case "AND", "OPT", "OPTIONAL", "UNION":
				return token{kind: tokOp, text: text, pos: start}, nil
			}
			return token{kind: tokTerm, text: text, pos: start}, nil
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil
}

type parser struct {
	lex    *lexer
	peeked *token
}

func (p *parser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) advance() (token, error) {
	t, err := p.peek()
	p.peeked = nil
	return t, err
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t, err := p.advance()
	if err != nil {
		return token{}, err
	}
	if t.kind != kind {
		return token{}, fmt.Errorf("sparql: pos %d: expected %s, got %q", t.pos, what, t.text)
	}
	return t, nil
}

// keyword reports whether the token is the given bare keyword. Angle
// quoting always wins: "<FILTER>" lexes as a term whose text keeps the
// brackets, so it never matches here.
func (t token) keyword(kw string) bool { return t.kind == tokTerm && t.text == kw }

func opOf(text string) Op {
	switch text {
	case "AND":
		return OpAnd
	case "OPT", "OPTIONAL":
		return OpOpt
	default:
		return OpUnion
	}
}

func parseTerm(text string, pos int) (rdf.Term, error) {
	if strings.HasPrefix(text, "<") {
		// The lexer only emits a '<'-leading term with its closing '>'.
		v := strings.TrimSuffix(strings.TrimPrefix(text, "<"), ">")
		if v == "" {
			return rdf.Term{}, fmt.Errorf("sparql: pos %d: empty IRI", pos)
		}
		return rdf.IRI(v), nil
	}
	if strings.HasPrefix(text, "?") {
		name := strings.TrimPrefix(text, "?")
		if name == "" {
			return rdf.Term{}, fmt.Errorf("sparql: pos %d: empty variable name", pos)
		}
		// rdf.Var strips one more leading "?" for convenience; a name
		// that still starts with "?" here (input "??…") would silently
		// collapse to a different — possibly empty — variable.
		if strings.HasPrefix(name, "?") {
			return rdf.Term{}, fmt.Errorf("sparql: pos %d: bad variable name %q", pos, text)
		}
		return rdf.Var(name), nil
	}
	if text == "" {
		return rdf.Term{}, fmt.Errorf("sparql: pos %d: empty IRI", pos)
	}
	return rdf.IRI(text), nil
}

// parseUnit parses a parenthesised triple pattern or binary expression.
func (p *parser) parseUnit() (Pattern, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokTerm {
		// Triple pattern: three terms then ')'.
		var terms [3]rdf.Term
		for i := 0; i < 3; i++ {
			tk, err := p.expect(tokTerm, "term")
			if err != nil {
				return nil, err
			}
			terms[i], err = parseTerm(tk.text, tk.pos)
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return Triple{T: rdf.WithTerms(terms)}, nil
	}
	// Binary expression: pattern op pattern { op pattern } ')'.
	inner, err := p.parseSeq(tokRParen)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return inner, nil
}

// parseSeq parses unit { OP unit } { FILTER expr } until the stop
// token kind is peeked. All operators in one sequence must be
// identical, and FILTER clauses terminate the sequence: each applies
// to everything parsed so far, and only further FILTERs may follow.
func (p *parser) parseSeq(stop tokenKind) (Pattern, error) {
	left, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	var seqOp *Op
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == stop || t.kind == tokEOF {
			return left, nil
		}
		if t.keyword("FILTER") {
			return p.parseFilters(left, stop)
		}
		opTok, err := p.expect(tokOp, "operator")
		if err != nil {
			return nil, err
		}
		op := opOf(opTok.text)
		if seqOp == nil {
			seqOp = &op
		} else if *seqOp != op {
			return nil, fmt.Errorf("sparql: pos %d: mixing %s with %s without parentheses is ambiguous", opTok.pos, seqOp, op)
		}
		right, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, Left: left, Right: right}
	}
}

// parseFilters parses the trailing FILTER clauses of a sequence,
// wrapping left once per clause (inner to outer in source order).
func (p *parser) parseFilters(left Pattern, stop tokenKind) (Pattern, error) {
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == stop || t.kind == tokEOF {
			return left, nil
		}
		if !t.keyword("FILTER") {
			return nil, fmt.Errorf("sparql: pos %d: expected FILTER or end of group, got %q (FILTER clauses must come last)", t.pos, t.text)
		}
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = Filter{Where: left, Cond: cond}
	}
}

// parseExpr parses a filter expression with the precedence
// OR < AND < NOT < comparison.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if !t.keyword("OR") {
			return left, nil
		}
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: ExprOr, Left: left, Right: right}
	}
}

func (p *parser) parseAndExpr() (Expr, error) {
	left, err := p.parseNotExpr()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if !(t.kind == tokOp && t.text == "AND") {
			return left, nil
		}
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNotExpr()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: ExprAnd, Left: left, Right: right}
	}
}

func (p *parser) parseNotExpr() (Expr, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokNot || t.keyword("NOT") {
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseNotExpr()
		if err != nil {
			return nil, err
		}
		return ExprNot{X: x}, nil
	}
	return p.parseExprPrimary()
}

func (p *parser) parseExprPrimary() (Expr, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokLParen {
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	if t.keyword("BOUND") {
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen, "'(' after BOUND"); err != nil {
			return nil, err
		}
		tk, err := p.expect(tokTerm, "variable")
		if err != nil {
			return nil, err
		}
		v, err := parseTerm(tk.text, tk.pos)
		if err != nil {
			return nil, err
		}
		if !v.IsVar() {
			return nil, fmt.Errorf("sparql: pos %d: BOUND takes a variable, got %q", tk.pos, tk.text)
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return Bound{Var: v}, nil
	}
	// Comparison: term (= | !=) term.
	lt, err := p.expect(tokTerm, "term or '(' in filter expression")
	if err != nil {
		return nil, err
	}
	lv, err := parseTerm(lt.text, lt.pos)
	if err != nil {
		return nil, err
	}
	opTok, err := p.expect(tokCmp, "'=' or '!='")
	if err != nil {
		return nil, err
	}
	rt, err := p.expect(tokTerm, "term")
	if err != nil {
		return nil, err
	}
	rv, err := parseTerm(rt.text, rt.pos)
	if err != nil {
		return nil, err
	}
	return Cmp{Left: lv, Right: rv, Neq: opTok.text == "!="}, nil
}

// parseSelect parses the SELECT wrapper; the SELECT keyword itself is
// already consumed.
func (p *parser) parseSelect() (Pattern, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	distinct := false
	if t.keyword("DISTINCT") {
		distinct = true
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		t, err = p.peek()
		if err != nil {
			return nil, err
		}
	}
	var vars []rdf.Term
	if t.keyword("*") {
		if _, err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		seen := map[rdf.Term]bool{}
		for {
			t, err = p.peek()
			if err != nil {
				return nil, err
			}
			if t.keyword("WHERE") {
				break
			}
			tk, err := p.expect(tokTerm, "projection variable or WHERE")
			if err != nil {
				return nil, err
			}
			v, err := parseTerm(tk.text, tk.pos)
			if err != nil {
				return nil, err
			}
			if !v.IsVar() {
				return nil, fmt.Errorf("sparql: pos %d: SELECT projects variables, got %q", tk.pos, tk.text)
			}
			if seen[v] {
				return nil, fmt.Errorf("sparql: pos %d: duplicate projection variable %s", tk.pos, v)
			}
			seen[v] = true
			vars = append(vars, v)
		}
		if len(vars) == 0 {
			return nil, fmt.Errorf("sparql: pos %d: SELECT needs at least one variable or '*'", t.pos)
		}
	}
	if tk, err := p.advance(); err != nil {
		return nil, err
	} else if !tk.keyword("WHERE") {
		return nil, fmt.Errorf("sparql: pos %d: expected WHERE, got %q", tk.pos, tk.text)
	}
	where, err := p.parseSeq(tokEOF)
	if err != nil {
		return nil, err
	}
	return Select{Vars: vars, Distinct: distinct, Where: where}, nil
}

// Parse parses a graph pattern — or a SELECT query over one — from the
// concrete syntax described at the top of this file.
func Parse(input string) (Pattern, error) {
	p := &parser{lex: &lexer{in: input}}
	first, err := p.peek()
	if err != nil {
		return nil, err
	}
	var pat Pattern
	if first.keyword("SELECT") {
		if _, err := p.advance(); err != nil {
			return nil, err
		}
		pat, err = p.parseSelect()
	} else {
		pat, err = p.parseSeq(tokEOF)
	}
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEOF, "end of input"); err != nil {
		return nil, err
	}
	return pat, nil
}

// MustParse is Parse that panics on error; intended for tests and
// examples with literal queries.
func MustParse(input string) Pattern {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}
