package sparql

import (
	"fmt"
	"strings"

	"wdsparql/internal/rdf"
)

// This file implements a recursive-descent parser for the paper's
// concrete pattern syntax:
//
//	pattern  := unit { OP unit }            (all OPs at one level equal)
//	unit     := '(' pattern OP pattern ')'  (binary combination)
//	          | '(' term term term ')'      (triple pattern)
//	term     := '?'name                     (variable)
//	          | name                        (IRI)
//
// Commas between the terms of a triple pattern are accepted and
// ignored, so the paper's "(?x, p, ?y)" parses as written. Operators
// at one nesting level must be identical; mixing AND/OPT/UNION without
// parentheses is rejected as ambiguous.

type tokenKind uint8

const (
	tokLParen tokenKind = iota
	tokRParen
	tokOp
	tokTerm
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	in  string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',':
			l.pos++
		case c == '#':
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
		case c == '(':
			l.pos++
			return token{kind: tokLParen, text: "(", pos: l.pos - 1}, nil
		case c == ')':
			l.pos++
			return token{kind: tokRParen, text: ")", pos: l.pos - 1}, nil
		default:
			start := l.pos
			for l.pos < len(l.in) && !strings.ContainsRune(" \t\n\r,()#", rune(l.in[l.pos])) {
				l.pos++
			}
			text := l.in[start:l.pos]
			switch text {
			case "AND", "OPT", "OPTIONAL", "UNION":
				return token{kind: tokOp, text: text, pos: start}, nil
			}
			return token{kind: tokTerm, text: text, pos: start}, nil
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil
}

type parser struct {
	lex    *lexer
	peeked *token
}

func (p *parser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) advance() (token, error) {
	t, err := p.peek()
	p.peeked = nil
	return t, err
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t, err := p.advance()
	if err != nil {
		return token{}, err
	}
	if t.kind != kind {
		return token{}, fmt.Errorf("sparql: pos %d: expected %s, got %q", t.pos, what, t.text)
	}
	return t, nil
}

func opOf(text string) Op {
	switch text {
	case "AND":
		return OpAnd
	case "OPT", "OPTIONAL":
		return OpOpt
	default:
		return OpUnion
	}
}

func parseTerm(text string, pos int) (rdf.Term, error) {
	if strings.HasPrefix(text, "?") {
		name := strings.TrimPrefix(text, "?")
		if name == "" {
			return rdf.Term{}, fmt.Errorf("sparql: pos %d: empty variable name", pos)
		}
		// rdf.Var strips one more leading "?" for convenience; a name
		// that still starts with "?" here (input "??…") would silently
		// collapse to a different — possibly empty — variable.
		if strings.HasPrefix(name, "?") {
			return rdf.Term{}, fmt.Errorf("sparql: pos %d: bad variable name %q", pos, text)
		}
		return rdf.Var(name), nil
	}
	v := text
	if strings.HasPrefix(v, "<") && strings.HasSuffix(v, ">") {
		v = strings.TrimSuffix(strings.TrimPrefix(v, "<"), ">")
	}
	if v == "" {
		return rdf.Term{}, fmt.Errorf("sparql: pos %d: empty IRI", pos)
	}
	return rdf.IRI(v), nil
}

// parseUnit parses a parenthesised triple pattern or binary expression.
func (p *parser) parseUnit() (Pattern, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokTerm {
		// Triple pattern: three terms then ')'.
		var terms [3]rdf.Term
		for i := 0; i < 3; i++ {
			tk, err := p.expect(tokTerm, "term")
			if err != nil {
				return nil, err
			}
			terms[i], err = parseTerm(tk.text, tk.pos)
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return Triple{T: rdf.WithTerms(terms)}, nil
	}
	// Binary expression: pattern op pattern { op pattern } ')'.
	inner, err := p.parseSeq(tokRParen)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return inner, nil
}

// parseSeq parses unit { OP unit } until the stop token kind is peeked.
// All operators in one sequence must be identical.
func (p *parser) parseSeq(stop tokenKind) (Pattern, error) {
	left, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	var seqOp *Op
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == stop || t.kind == tokEOF {
			return left, nil
		}
		opTok, err := p.expect(tokOp, "operator")
		if err != nil {
			return nil, err
		}
		op := opOf(opTok.text)
		if seqOp == nil {
			seqOp = &op
		} else if *seqOp != op {
			return nil, fmt.Errorf("sparql: pos %d: mixing %s with %s without parentheses is ambiguous", opTok.pos, seqOp, op)
		}
		right, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, Left: left, Right: right}
	}
}

// Parse parses a graph pattern from the concrete syntax described at
// the top of this file.
func Parse(input string) (Pattern, error) {
	p := &parser{lex: &lexer{in: input}}
	pat, err := p.parseSeq(tokEOF)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEOF, "end of input"); err != nil {
		return nil, err
	}
	return pat, nil
}

// MustParse is Parse that panics on error; intended for tests and
// examples with literal queries.
func MustParse(input string) Pattern {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}
