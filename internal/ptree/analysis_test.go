package ptree

import (
	"testing"

	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

func TestCertainAndPossibleVars(t *testing.T) {
	tree, err := FromPattern(sparql.MustParse(
		`(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))`))
	if err != nil {
		t.Fatal(err)
	}
	cv := CertainVars(tree)
	if len(cv) != 2 {
		t.Fatalf("certain: %v", cv)
	}
	pv := PossibleVars(tree)
	if len(pv) != 5 {
		t.Fatalf("possible: %v", pv)
	}
}

func TestCertainVarsForest(t *testing.T) {
	p := sparql.MustParse(`((?x p ?y) OPT (?y q ?z)) UNION ((?x p ?w) OPT (?w q ?v))`)
	f := MustWDPF(p)
	cv := CertainVarsForest(f)
	// Branch 1 certain: {x,y}; branch 2 certain: {x,w}; intersection {x}.
	if len(cv) != 1 || cv[0] != rdf.Var("x") {
		t.Fatalf("forest certain vars: %v", cv)
	}
	if CertainVarsForest(nil) != nil {
		t.Fatal("empty forest")
	}
}

func TestSubsumes(t *testing.T) {
	big := rdf.Mapping{"x": "a", "y": "b"}
	small := rdf.Mapping{"x": "a"}
	if !Subsumes(big, small) || Subsumes(small, big) {
		t.Fatal("subsumption order")
	}
	if !Subsumes(big, big) {
		t.Fatal("reflexive")
	}
	if Subsumes(big, rdf.Mapping{"x": "WRONG"}) {
		t.Fatal("disagreement")
	}
}

func TestPairwiseIncomparable(t *testing.T) {
	s := rdf.NewMappingSet()
	s.Add(rdf.Mapping{"x": "a"})
	s.Add(rdf.Mapping{"x": "b"})
	if !PairwiseIncomparable(s) {
		t.Fatal("incomparable set")
	}
	s.Add(rdf.Mapping{"x": "a", "y": "b"})
	if PairwiseIncomparable(s) {
		t.Fatal("comparable pair present")
	}
}

func TestDepthAndBranching(t *testing.T) {
	tree := FromSpec(Spec{
		Pattern: []rdf.Triple{tp("?x", "p", "?y")},
		Children: []Spec{
			{Pattern: []rdf.Triple{tp("?y", "q", "?a")},
				Children: []Spec{{Pattern: []rdf.Triple{tp("?a", "r", "?b")}}}},
			{Pattern: []rdf.Triple{tp("?y", "s", "?c")}},
		},
	})
	if DepthOf(tree) != 3 {
		t.Fatalf("depth %d", DepthOf(tree))
	}
	if BranchingFactor(tree) != 2 {
		t.Fatalf("branching %d", BranchingFactor(tree))
	}
}
