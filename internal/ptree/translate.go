package ptree

import (
	"fmt"

	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// This file implements the paper's polynomial-time computable function
// wdpf(·): every well-designed graph pattern P = P1 UNION ... UNION Pm
// is translated into an equivalent well-designed pattern forest
// {T1, ..., Tm}, and every UNION-free branch into an equivalent wdPT
// in NR normal form (Section 2.1, following Letelier et al.).
//
// The branch translation exploits OPT normal form implicitly: a
// well-designed AND/OPT pattern is flattened into the t-graph of its
// mandatory part plus one child subtree per OPT right-hand side.

// FromPattern translates a UNION-free well-designed graph pattern into
// an equivalent wdPT in NR normal form.
func FromPattern(p sparql.Pattern) (*Tree, error) {
	if !sparql.IsUnionFree(p) {
		return nil, fmt.Errorf("ptree: pattern contains UNION; use WDPF")
	}
	if err := sparql.CheckWellDesigned(p); err != nil {
		return nil, err
	}
	root := buildNode(p, nil)
	t := newTree(root)
	if err := t.normalizeNR(); err != nil {
		return nil, err
	}
	t.SortChildren()
	if err := t.Validate(true); err != nil {
		return nil, fmt.Errorf("ptree: internal error: translation produced invalid tree: %w", err)
	}
	return t, nil
}

// WDPF is the paper's wdpf(·): it translates a well-designed graph
// pattern into an equivalent wdPF, one tree per UNION branch.
func WDPF(p sparql.Pattern) (Forest, error) {
	if err := sparql.CheckWellDesigned(p); err != nil {
		return nil, err
	}
	var f Forest
	for _, branch := range sparql.UnionBranches(p) {
		t, err := FromPattern(branch)
		if err != nil {
			return nil, err
		}
		f = append(f, t)
	}
	return f, nil
}

// MustWDPF is WDPF that panics on error, for tests and examples.
func MustWDPF(p sparql.Pattern) Forest {
	f, err := WDPF(p)
	if err != nil {
		panic(err)
	}
	return f
}

// buildNode flattens the AND-structure of p into one node and turns
// each OPT right-hand side into a child subtree: the standard
// OPT-normal-form construction, valid for well-designed patterns.
// FILTER conditions are split into their top-level conjuncts and
// attached to the node whose subtree is the condition's scope: the
// selection σ_R commutes with the AND-joins flattened into the node
// (vars(R) are untouched by joining more triples) and is evaluated per
// emitted subtree solution, which is exactly σ_R over the subpattern
// the FILTER wrapped.
func buildNode(p sparql.Pattern, parent *Node) *Node {
	n := &Node{Parent: parent}
	var triples []rdf.Triple
	var optChildren []sparql.Pattern
	var collect func(q sparql.Pattern)
	collect = func(q sparql.Pattern) {
		switch b := q.(type) {
		case sparql.Triple:
			triples = append(triples, b.T)
		case sparql.Binary:
			switch b.Op {
			case sparql.OpAnd:
				collect(b.Left)
				collect(b.Right)
			case sparql.OpOpt:
				collect(b.Left)
				optChildren = append(optChildren, b.Right)
			default:
				panic("ptree: UNION below AND/OPT")
			}
		case sparql.Filter:
			collect(b.Where)
			n.Filters = append(n.Filters, sparql.Conjuncts(b.Cond)...)
		case sparql.Select:
			panic("ptree: SELECT below a graph pattern")
		}
	}
	collect(p)
	n.Pattern = hom.NewTGraph(triples...)
	for _, c := range optChildren {
		n.Children = append(n.Children, buildNode(c, n))
	}
	return n
}

// normalizeNR rewrites the tree into NR normal form. A non-root node n
// with vars(n) ⊆ vars(parent(n)) adds no new variables; by the
// well-designedness semantics such a node can be eliminated:
//
//   - if n is a leaf, ⟦P' OPT pat(n)⟧ = ⟦P'⟧ whenever vars(pat(n)) ⊆
//     vars(P'), so n is deleted; its filters go with it — whether the
//     optional extension survives them or not, it adds no bindings;
//   - otherwise each child c of n is replaced by a node labelled
//     pat(n) ∪ pat(c) attached to n's parent, preserving the optional
//     semantics of the grandchildren.
//
// Filters of an eliminated non-leaf n move as follows: a conjunct over
// vars(pat(n)) only is a fixed truth value across every child
// extension (node-level vars are all bound once pat(n) matches), so
// copying it to every merged child preserves exactly the "all children
// drop out together" behaviour. When n has a single child, any
// conjunct — even one over grandchild-subtree variables — moves to the
// merged child, whose emit point sees the same rows n's did. A
// conjunct over several children's subtree variables cannot be placed
// on any one sibling without changing which siblings drop out; that
// pattern shape has no NR-normal-form tree in this fragment and is
// reported as a translation error.
//
// The rewriting preserves ⟦T⟧G (cross-validated against the
// compositional semantics in the integration tests) and terminates
// because every step removes one node.
func (t *Tree) normalizeNR() error {
	for {
		n := t.findNonNR()
		if n == nil {
			return nil
		}
		parent := n.Parent
		if len(n.Children) > 1 {
			nodeVars := map[rdf.Term]bool{}
			for _, v := range n.Pattern.Vars() {
				nodeVars[v] = true
			}
			for _, f := range n.Filters {
				for _, v := range sparql.ExprVars(f) {
					if !nodeVars[v] {
						return fmt.Errorf("ptree: cannot normalize: filter %s on a redundant node spans its optional subtrees", f)
					}
				}
			}
		}
		// Remove n from parent's child list.
		kept := parent.Children[:0]
		for _, c := range parent.Children {
			if c != n {
				kept = append(kept, c)
			}
		}
		parent.Children = kept
		// Re-attach n's children, merged with n's pattern and filters.
		for _, c := range n.Children {
			c.Pattern = c.Pattern.Union(n.Pattern)
			c.Filters = append(append([]sparql.Expr(nil), n.Filters...), c.Filters...)
			c.Parent = parent
			parent.Children = append(parent.Children, c)
		}
		*t = *newTree(t.Root)
	}
}

func (t *Tree) findNonNR() *Node {
	for _, n := range t.nodes {
		if n.Parent != nil && len(newVars(n)) == 0 {
			return n
		}
	}
	return nil
}

// ToPattern converts a wdPT back into a well-designed UNION-free graph
// pattern: the node's triples joined by AND, with one OPT per child,
// and the node's filters wrapped outside the OPTs (their scope is the
// whole subtree). Empty node patterns are not representable as graph
// patterns; the translation panics on them (they cannot arise from
// FromPattern).
func ToPattern(t *Tree) sparql.Pattern {
	var rec func(n *Node) sparql.Pattern
	rec = func(n *Node) sparql.Pattern {
		if len(n.Pattern) == 0 {
			panic("ptree: node with empty pattern cannot be converted")
		}
		parts := make([]sparql.Pattern, 0, len(n.Pattern))
		for _, tr := range n.Pattern {
			parts = append(parts, sparql.Triple{T: tr})
		}
		out := sparql.AndAll(parts...)
		for _, c := range n.Children {
			out = sparql.Opt(out, rec(c))
		}
		for _, f := range n.Filters {
			out = sparql.Filter{Where: out, Cond: f}
		}
		return out
	}
	return rec(t.Root)
}

// ForestToPattern converts a wdPF back into a well-designed pattern in
// UNION normal form.
func ForestToPattern(f Forest) sparql.Pattern {
	parts := make([]sparql.Pattern, len(f))
	for i, t := range f {
		parts[i] = ToPattern(t)
	}
	return sparql.UnionAll(parts...)
}
