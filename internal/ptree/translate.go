package ptree

import (
	"fmt"

	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// This file implements the paper's polynomial-time computable function
// wdpf(·): every well-designed graph pattern P = P1 UNION ... UNION Pm
// is translated into an equivalent well-designed pattern forest
// {T1, ..., Tm}, and every UNION-free branch into an equivalent wdPT
// in NR normal form (Section 2.1, following Letelier et al.).
//
// The branch translation exploits OPT normal form implicitly: a
// well-designed AND/OPT pattern is flattened into the t-graph of its
// mandatory part plus one child subtree per OPT right-hand side.

// FromPattern translates a UNION-free well-designed graph pattern into
// an equivalent wdPT in NR normal form.
func FromPattern(p sparql.Pattern) (*Tree, error) {
	if !sparql.IsUnionFree(p) {
		return nil, fmt.Errorf("ptree: pattern contains UNION; use WDPF")
	}
	if err := sparql.CheckWellDesigned(p); err != nil {
		return nil, err
	}
	root := buildNode(p, nil)
	t := newTree(root)
	t.normalizeNR()
	t.SortChildren()
	if err := t.Validate(true); err != nil {
		return nil, fmt.Errorf("ptree: internal error: translation produced invalid tree: %w", err)
	}
	return t, nil
}

// WDPF is the paper's wdpf(·): it translates a well-designed graph
// pattern into an equivalent wdPF, one tree per UNION branch.
func WDPF(p sparql.Pattern) (Forest, error) {
	if err := sparql.CheckWellDesigned(p); err != nil {
		return nil, err
	}
	var f Forest
	for _, branch := range sparql.UnionBranches(p) {
		t, err := FromPattern(branch)
		if err != nil {
			return nil, err
		}
		f = append(f, t)
	}
	return f, nil
}

// MustWDPF is WDPF that panics on error, for tests and examples.
func MustWDPF(p sparql.Pattern) Forest {
	f, err := WDPF(p)
	if err != nil {
		panic(err)
	}
	return f
}

// buildNode flattens the AND-structure of p into one node and turns
// each OPT right-hand side into a child subtree: the standard
// OPT-normal-form construction, valid for well-designed patterns.
func buildNode(p sparql.Pattern, parent *Node) *Node {
	n := &Node{Parent: parent}
	var triples []rdf.Triple
	var optChildren []sparql.Pattern
	var collect func(q sparql.Pattern)
	collect = func(q sparql.Pattern) {
		switch b := q.(type) {
		case sparql.Triple:
			triples = append(triples, b.T)
		case sparql.Binary:
			switch b.Op {
			case sparql.OpAnd:
				collect(b.Left)
				collect(b.Right)
			case sparql.OpOpt:
				collect(b.Left)
				optChildren = append(optChildren, b.Right)
			default:
				panic("ptree: UNION below AND/OPT")
			}
		}
	}
	collect(p)
	n.Pattern = hom.NewTGraph(triples...)
	for _, c := range optChildren {
		n.Children = append(n.Children, buildNode(c, n))
	}
	return n
}

// normalizeNR rewrites the tree into NR normal form. A non-root node n
// with vars(n) ⊆ vars(parent(n)) adds no new variables; by the
// well-designedness semantics such a node can be eliminated:
//
//   - if n is a leaf, ⟦P' OPT pat(n)⟧ = ⟦P'⟧ whenever vars(pat(n)) ⊆
//     vars(P'), so n is deleted;
//   - otherwise each child c of n is replaced by a node labelled
//     pat(n) ∪ pat(c) attached to n's parent, preserving the optional
//     semantics of the grandchildren.
//
// The rewriting preserves ⟦T⟧G (cross-validated against the
// compositional semantics in the integration tests) and terminates
// because every step removes one node.
func (t *Tree) normalizeNR() {
	for {
		n := t.findNonNR()
		if n == nil {
			break
		}
		parent := n.Parent
		// Remove n from parent's child list.
		kept := parent.Children[:0]
		for _, c := range parent.Children {
			if c != n {
				kept = append(kept, c)
			}
		}
		parent.Children = kept
		// Re-attach n's children, merged with n's pattern.
		for _, c := range n.Children {
			c.Pattern = c.Pattern.Union(n.Pattern)
			c.Parent = parent
			parent.Children = append(parent.Children, c)
		}
		*t = *newTree(t.Root)
	}
}

func (t *Tree) findNonNR() *Node {
	for _, n := range t.nodes {
		if n.Parent != nil && len(newVars(n)) == 0 {
			return n
		}
	}
	return nil
}

// ToPattern converts a wdPT back into a well-designed UNION-free graph
// pattern: the node's triples joined by AND, with one OPT per child.
// Empty node patterns are not representable as graph patterns; the
// translation panics on them (they cannot arise from FromPattern).
func ToPattern(t *Tree) sparql.Pattern {
	var rec func(n *Node) sparql.Pattern
	rec = func(n *Node) sparql.Pattern {
		if len(n.Pattern) == 0 {
			panic("ptree: node with empty pattern cannot be converted")
		}
		parts := make([]sparql.Pattern, 0, len(n.Pattern))
		for _, tr := range n.Pattern {
			parts = append(parts, sparql.Triple{T: tr})
		}
		out := sparql.AndAll(parts...)
		for _, c := range n.Children {
			out = sparql.Opt(out, rec(c))
		}
		return out
	}
	return rec(t.Root)
}

// ForestToPattern converts a wdPF back into a well-designed pattern in
// UNION normal form.
func ForestToPattern(f Forest) sparql.Pattern {
	parts := make([]sparql.Pattern, len(f))
	for i, t := range f {
		parts[i] = ToPattern(t)
	}
	return sparql.UnionAll(parts...)
}
