package ptree

import (
	"strings"
	"testing"

	"wdsparql/internal/sparql"
)

// FILTER handling in the wdpf translation: conjuncts attach to the
// node built from the FILTER's scope, survive NR normalisation when
// they soundly can, and error out when no NR tree exists.

func TestFromPatternAttachesFilters(t *testing.T) {
	p := sparql.MustParse(`(((?x p ?y) FILTER ?x != ?y) OPT ((?y q ?z) FILTER ?z = a))`)
	tree, err := FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Root.Filters) != 1 || len(tree.Root.Children[0].Filters) != 1 {
		t.Fatalf("filters misplaced:\n%s", tree)
	}
	if !tree.HasFilters() {
		t.Fatal("HasFilters")
	}
	if !strings.Contains(tree.String(), "FILTER") {
		t.Fatalf("String lost the filters:\n%s", tree)
	}
	// A top-level AND of two conjuncts splits into two node filters.
	p = sparql.MustParse(`((?x p ?y) FILTER ?x = a AND ?y != b)`)
	tree, err = FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Root.Filters) != 2 {
		t.Fatalf("conjunct split: %d filters", len(tree.Root.Filters))
	}
}

func TestToPatternRoundTripsFilters(t *testing.T) {
	for _, src := range []string{
		`((?x p ?y) FILTER ?x != ?y)`,
		`(((?x p ?y) OPT ((?y q ?z) FILTER BOUND(?z))) FILTER ?x = a)`,
	} {
		p := sparql.MustParse(src)
		tree, err := FromPattern(p)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		back, err := FromPattern(ToPattern(tree))
		if err != nil {
			t.Fatalf("re-translate %s: %v", sparql.Format(ToPattern(tree)), err)
		}
		if tree.String() != back.String() {
			t.Fatalf("round trip:\n%s\nvs\n%s", tree, back)
		}
	}
}

// NR normalisation with filters: a deleted redundant leaf drops its
// filters; a merged redundant node copies node-scoped filters to every
// child; a subtree-spanning filter on a multi-child redundant node has
// no NR form and must error.
func TestNRNormalizationWithFilters(t *testing.T) {
	// Redundant leaf: ((?x p ?y) OPT ((?x p2 ?y) FILTER ?x = a)) — the
	// OPT arm adds no variables; deleting it (filter and all) is sound
	// because extension changes no bindings either way.
	tree, err := FromPattern(sparql.MustParse(`((?x p ?y) OPT ((?x p2 ?y) FILTER ?x = a))`))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 1 || tree.HasFilters() {
		t.Fatalf("redundant filtered leaf should vanish:\n%s", tree)
	}

	// Redundant middle node with a filter over its own pattern vars:
	// the filter is constant across the child's extensions and copies
	// to the merged child.
	tree, err = FromPattern(sparql.MustParse(
		`((?x p ?y) OPT (((?x p2 ?y) FILTER ?y != a) OPT (?y q ?z)))`))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 2 {
		t.Fatalf("middle node should merge:\n%s", tree)
	}
	if len(tree.Root.Children[0].Filters) != 1 {
		t.Fatalf("merged child lost the filter:\n%s", tree)
	}

	// Same shape but the filter reaches into the optional subtree
	// (BOUND(?z) scopes over the child's variable): with a single
	// child the emit scope is unchanged, so the merge may move it.
	tree, err = FromPattern(sparql.MustParse(
		`((?x p ?y) OPT (((?x p2 ?y) OPT (?y q ?z)) FILTER BOUND(?z)))`))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 2 || len(tree.Root.Children[0].Filters) != 1 {
		t.Fatalf("single-child merge should carry the filter:\n%s", tree)
	}

	// Two children and a filter spanning them: no NR tree exists.
	_, err = FromPattern(sparql.MustParse(
		`((?x p ?y) OPT ((((?x p2 ?y) OPT (?y q ?z)) OPT (?y r ?w)) FILTER ?z = ?w))`))
	if err == nil || !strings.Contains(err.Error(), "cannot normalize") {
		t.Fatalf("subtree-spanning filter on a redundant multi-child node: %v", err)
	}
}

func TestWDPFRejectsSelectBelowPattern(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("buildNode must panic on a SELECT below a graph pattern")
		}
	}()
	_, _ = FromPattern(sparql.Select{Where: sparql.MustParse(`(?x p ?y)`)})
}
