package ptree

import (
	"testing"

	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

func tp(s, p, o string) rdf.Triple {
	conv := func(x string) rdf.Term {
		if len(x) > 0 && x[0] == '?' {
			return rdf.Var(x)
		}
		return rdf.IRI(x)
	}
	return rdf.T(conv(s), conv(p), conv(o))
}

// Example 1's P1 translates into a wdPT with root {(?x,p,?y)} and two
// children.
func TestFromPatternExample1(t *testing.T) {
	p := sparql.MustParse(`(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))`)
	tree, err := FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 3 {
		t.Fatalf("want 3 nodes, got:\n%s", tree)
	}
	root := tree.Root
	if !root.Pattern.Equal(hom.NewTGraph(tp("?x", "p", "?y"))) {
		t.Fatalf("root pattern: %s", root.Pattern)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children: %d", len(root.Children))
	}
}

// Example 2 of the paper: wdpf(P) = {T1, T2} with T2 root (?x,p,?y)
// and a single child {(?z,q,?x), (?w,q,?z)}.
func TestWDPFExample2(t *testing.T) {
	p := sparql.MustParse(`
		(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))
		UNION
		((?x, p, ?y) OPT ((?z, q, ?x) AND (?w, q, ?z)))`)
	f, err := WDPF(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 {
		t.Fatalf("want 2 trees, got %d", len(f))
	}
	t2 := f[1]
	if t2.Size() != 2 {
		t.Fatalf("T2 size: %d", t2.Size())
	}
	want := hom.NewTGraph(tp("?z", "q", "?x"), tp("?w", "q", "?z"))
	if !t2.Root.Children[0].Pattern.Equal(want) {
		t.Fatalf("T2 child: %s", t2.Root.Children[0].Pattern)
	}
}

// NR normalisation: a leaf adding no new variables is deleted; an
// inner node adding no new variables is merged into its children.
func TestNRNormalization(t *testing.T) {
	// ((?x p ?y) OPT (?x p2 ?y)): child adds no vars → deleted.
	p := sparql.MustParse(`((?x p ?y) OPT (?x p2 ?y))`)
	tree, err := FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 1 {
		t.Fatalf("leaf should be deleted:\n%s", tree)
	}
	// ((?x p ?y) OPT ((?x p2 ?y) OPT (?y q ?z))): middle node adds no
	// vars → merged into its child.
	p = sparql.MustParse(`((?x p ?y) OPT ((?x p2 ?y) OPT (?y q ?z)))`)
	tree, err = FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 2 {
		t.Fatalf("middle node should merge:\n%s", tree)
	}
	child := tree.Root.Children[0]
	want := hom.NewTGraph(tp("?x", "p2", "?y"), tp("?y", "q", "?z"))
	if !child.Pattern.Equal(want) {
		t.Fatalf("merged child: %s", child.Pattern)
	}
	if err := tree.Validate(true); err != nil {
		t.Fatal(err)
	}
}

// NR preservation of semantics, checked against the compositional
// evaluator on a case that triggers both rewrite rules.
func TestNRPreservesSemantics(t *testing.T) {
	src := `((?x p ?y) OPT ((?x p2 ?y) OPT ((?y q ?z) AND (?z q ?w))))`
	p := sparql.MustParse(src)
	g := rdf.MustParseGraph(`
a p b .
a p2 b .
b q c .
c q d .
e p f .
`)
	tree, err := FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	ref := sparql.Eval(p, g)
	// Evaluate the tree via its converted pattern (round-trip through
	// ToPattern exercises both directions).
	back := ToPattern(tree)
	got := sparql.Eval(back, g)
	if ref.Len() != got.Len() {
		t.Fatalf("NR changed semantics: %v vs %v", ref.Slice(), got.Slice())
	}
	for _, mu := range ref.Slice() {
		if !got.Contains(mu) {
			t.Fatalf("missing %s", mu)
		}
	}
}

func TestFromPatternRejectsUnionAndIllFormed(t *testing.T) {
	if _, err := FromPattern(sparql.MustParse(`(?x p ?y) UNION (?x q ?y)`)); err == nil {
		t.Fatal("UNION must be rejected by FromPattern")
	}
	bad := sparql.MustParse(`(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?z) AND (?z, r, ?o2)))`)
	if _, err := FromPattern(bad); err == nil {
		t.Fatal("non-well-designed pattern must be rejected")
	}
	if _, err := WDPF(bad); err == nil {
		t.Fatal("WDPF must reject as well")
	}
}

func TestValidateConnectivity(t *testing.T) {
	// ?z occurs in root and grandchild but not in the middle node:
	// violates condition (3).
	tr := FromSpec(Spec{
		Pattern: []rdf.Triple{tp("?x", "p", "?z")},
		Children: []Spec{{
			Pattern: []rdf.Triple{tp("?x", "q", "?y")},
			Children: []Spec{{
				Pattern: []rdf.Triple{tp("?y", "r", "?z")},
			}},
		}},
	})
	if err := tr.Validate(false); err == nil {
		t.Fatal("connectivity violation not detected")
	}
}

func TestSubtreeEnumeration(t *testing.T) {
	// Root with two children, one grandchild: subtrees are
	// {r}, {r,a}, {r,b}, {r,a,b}, {r,a,c}, {r,a,b,c} where c under a.
	tr := FromSpec(Spec{
		Pattern: []rdf.Triple{tp("?x", "p", "?y")},
		Children: []Spec{
			{Pattern: []rdf.Triple{tp("?y", "q", "?a")},
				Children: []Spec{{Pattern: []rdf.Triple{tp("?a", "r", "?c")}}}},
			{Pattern: []rdf.Triple{tp("?y", "s", "?b")}},
		},
	})
	subs := EnumerateSubtrees(tr)
	if len(subs) != 6 {
		t.Fatalf("want 6 subtrees, got %d", len(subs))
	}
	for _, s := range subs {
		if !s.In[tr.Root.ID] {
			t.Fatal("subtree missing root")
		}
	}
}

func TestSubtreeChildrenAndPattern(t *testing.T) {
	tr := FromSpec(Spec{
		Pattern: []rdf.Triple{tp("?x", "p", "?y")},
		Children: []Spec{
			{Pattern: []rdf.Triple{tp("?y", "q", "?a")}},
			{Pattern: []rdf.Triple{tp("?y", "s", "?b")}},
		},
	})
	root := NewSubtree(tr, tr.Root.ID)
	if len(root.Children()) != 2 {
		t.Fatal("root subtree has 2 children")
	}
	ext := root.Extend(tr.Root.Children[0])
	if ext.Size() != 2 || len(ext.Children()) != 1 {
		t.Fatal("extend")
	}
	if len(ext.Pattern()) != 2 {
		t.Fatalf("pattern: %s", ext.Pattern())
	}
}

func TestNewSubtreePanics(t *testing.T) {
	tr := FromSpec(Spec{
		Pattern:  []rdf.Triple{tp("?x", "p", "?y")},
		Children: []Spec{{Pattern: []rdf.Triple{tp("?y", "q", "?a")}}},
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("missing root must panic")
			}
		}()
		NewSubtree(tr, tr.Root.Children[0].ID)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("non-downward-closed must panic")
			}
		}()
		grand := &Node{}
		_ = grand
		// Build a deeper tree for the closure check.
		tr2 := FromSpec(Spec{
			Pattern: []rdf.Triple{tp("?x", "p", "?y")},
			Children: []Spec{{Pattern: []rdf.Triple{tp("?y", "q", "?a")},
				Children: []Spec{{Pattern: []rdf.Triple{tp("?a", "r", "?b")}}}}},
		})
		NewSubtree(tr2, tr2.Root.ID, 2) // grandchild without its parent
	}()
}

func TestWitnessSubtree(t *testing.T) {
	tr := FromSpec(Spec{
		Pattern: []rdf.Triple{tp("?x", "p", "?y")},
		Children: []Spec{
			{Pattern: []rdf.Triple{tp("?y", "q", "?a")}},
		},
	})
	s, ok := WitnessSubtree(tr, []rdf.Term{rdf.Var("x"), rdf.Var("y")})
	if !ok || s.Size() != 1 {
		t.Fatalf("witness for {x,y}: %v %v", s, ok)
	}
	s, ok = WitnessSubtree(tr, []rdf.Term{rdf.Var("x"), rdf.Var("y"), rdf.Var("a")})
	if !ok || s.Size() != 2 {
		t.Fatalf("witness for {x,y,a}: %v %v", s, ok)
	}
	if _, ok = WitnessSubtree(tr, []rdf.Term{rdf.Var("x")}); ok {
		t.Fatal("no subtree has vars exactly {x}")
	}
	if _, ok = WitnessSubtree(tr, []rdf.Term{rdf.Var("zzz")}); ok {
		t.Fatal("foreign variable")
	}
}

func TestToPatternRoundTrip(t *testing.T) {
	src := `(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))`
	tree, err := FromPattern(sparql.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	back := ToPattern(tree)
	tree2, err := FromPattern(back)
	if err != nil {
		t.Fatal(err)
	}
	if tree.String() != tree2.String() {
		t.Fatalf("round trip:\n%s\nvs\n%s", tree, tree2)
	}
}

func TestForestHelpers(t *testing.T) {
	p := sparql.MustParse(`(?x p ?y) UNION (?x q ?y)`)
	f := MustWDPF(p)
	if len(f) != 2 || len(f.Vars()) != 2 || len(f.Pattern()) != 2 {
		t.Fatalf("forest: %s", f)
	}
	back := ForestToPattern(f)
	if len(sparql.UnionBranches(back)) != 2 {
		t.Fatal("forest to pattern")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := FromSpec(Spec{
		Pattern:  []rdf.Triple{tp("?x", "p", "?y")},
		Children: []Spec{{Pattern: []rdf.Triple{tp("?y", "q", "?a")}}},
	})
	cp := tr.Clone()
	cp.Root.Pattern = hom.NewTGraph(tp("?x", "zzz", "?y"))
	if tr.Root.Pattern.Equal(cp.Root.Pattern) {
		t.Fatal("clone shares pattern")
	}
	if cp.Size() != tr.Size() {
		t.Fatal("clone size")
	}
}
