// Package ptree implements well-designed pattern trees (wdPT) and
// forests (wdPF) — the tree representation of well-designed SPARQL
// graph patterns from Section 2.1 of the paper — together with the
// Section 3.1 combinatorics built on them: subtrees, supports,
// children assignments ∆, the renamed t-graphs S_∆, validity, and the
// sets of generalised t-graphs GtG(T) that the notion of domination
// width quantifies over.
package ptree

import (
	"fmt"
	"sort"
	"strings"

	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// Node is a node of a well-designed pattern tree; λ(n) is the Pattern
// field, a t-graph.
type Node struct {
	// ID is the node's index within its tree (root has ID 0; IDs are
	// dense and stable after construction).
	ID int
	// Pattern is λ(n).
	Pattern hom.TGraph
	// Filters holds the FILTER conjuncts scoped to this node's subtree:
	// each solution of the subtree rooted here (the node's pattern plus
	// its maximal optional extensions) is kept only when every conjunct
	// evaluates to true. By the safety condition, every filter variable
	// occurs in the subtree's pattern. Expressions are immutable and
	// may be shared across clones.
	Filters []sparql.Expr
	// Parent is nil for the root.
	Parent *Node
	// Children in deterministic order.
	Children []*Node
}

// Vars returns vars(n) = vars(λ(n)).
func (n *Node) Vars() []rdf.Term { return n.Pattern.Vars() }

// Tree is a well-designed pattern tree T = (T, r, λ).
type Tree struct {
	Root  *Node
	nodes []*Node // by ID
}

// Forest is a well-designed pattern forest F = {T1, ..., Tm}.
type Forest []*Tree

// Nodes returns all nodes of the tree in ID order.
func (t *Tree) Nodes() []*Node { return t.nodes }

// HasFilters reports whether any node of the tree carries FILTER
// conjuncts.
func (t *Tree) HasFilters() bool {
	for _, n := range t.nodes {
		if len(n.Filters) > 0 {
			return true
		}
	}
	return false
}

// HasFilters reports whether any tree of the forest carries FILTER
// conjuncts.
func (f Forest) HasFilters() bool {
	for _, t := range f {
		if t.HasFilters() {
			return true
		}
	}
	return false
}

// Node returns the node with the given ID.
func (t *Tree) Node(id int) *Node { return t.nodes[id] }

// Size returns the number of nodes.
func (t *Tree) Size() int { return len(t.nodes) }

// Pattern returns pat(T), the union of all node patterns.
func (t *Tree) Pattern() hom.TGraph {
	var all []rdf.Triple
	for _, n := range t.nodes {
		all = append(all, n.Pattern...)
	}
	return hom.NewTGraph(all...)
}

// Vars returns vars(T).
func (t *Tree) Vars() []rdf.Term { return t.Pattern().Vars() }

// newTree assembles a tree from a root node, assigning dense IDs in
// BFS order.
func newTree(root *Node) *Tree {
	t := &Tree{Root: root}
	queue := []*Node{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.ID = len(t.nodes)
		t.nodes = append(t.nodes, n)
		queue = append(queue, n.Children...)
	}
	return t
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	var cp func(n *Node, parent *Node) *Node
	cp = func(n *Node, parent *Node) *Node {
		m := &Node{Pattern: hom.NewTGraph(n.Pattern...), Parent: parent}
		m.Filters = append([]sparql.Expr(nil), n.Filters...)
		for _, c := range n.Children {
			m.Children = append(m.Children, cp(c, m))
		}
		return m
	}
	return newTree(cp(t.Root, nil))
}

// Validate checks the wdPT well-formedness conditions: condition (3)
// of the definition (every variable's occurrence set induces a
// connected subtree) and, when requireNR is set, the NR normal form
// (every non-root node has vars(n) \ vars(parent) ≠ ∅).
func (t *Tree) Validate(requireNR bool) error {
	// Connectivity: for each variable, the nodes mentioning it form a
	// connected subgraph of the tree. Equivalently: for every node n
	// other than the topmost occurrence, if v occurs in n and in any
	// proper ancestor of n, it occurs in n's parent.
	occ := map[string][]*Node{}
	for _, n := range t.nodes {
		for _, v := range n.Vars() {
			occ[v.Value] = append(occ[v.Value], n)
		}
	}
	for v, nodes := range occ {
		if !connectedInTree(nodes) {
			return fmt.Errorf("ptree: variable ?%s does not induce a connected subtree", v)
		}
	}
	if requireNR {
		for _, n := range t.nodes {
			if n.Parent == nil {
				continue
			}
			if len(newVars(n)) == 0 {
				return fmt.Errorf("ptree: node %d violates NR normal form (no new variables)", n.ID)
			}
		}
	}
	return nil
}

// newVars returns vars(n) \ vars(parent(n)).
func newVars(n *Node) []rdf.Term {
	if n.Parent == nil {
		return n.Vars()
	}
	parentVars := map[rdf.Term]bool{}
	for _, v := range n.Parent.Vars() {
		parentVars[v] = true
	}
	var out []rdf.Term
	for _, v := range n.Vars() {
		if !parentVars[v] {
			out = append(out, v)
		}
	}
	return out
}

// connectedInTree checks that the given nodes form a connected
// subgraph of their tree.
func connectedInTree(nodes []*Node) bool {
	if len(nodes) <= 1 {
		return true
	}
	in := map[*Node]bool{}
	for _, n := range nodes {
		in[n] = true
	}
	// The nodes are connected iff exactly one of them has no parent in
	// the set (the topmost) and every other node's parent is in the set.
	tops := 0
	for _, n := range nodes {
		if n.Parent == nil || !in[n.Parent] {
			tops++
		}
	}
	return tops == 1
}

// String renders the tree with indentation.
func (t *Tree) String() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s[%d] %s", strings.Repeat("  ", depth), n.ID, n.Pattern)
		for _, f := range n.Filters {
			fmt.Fprintf(&b, " FILTER %s", f)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return b.String()
}

// Pattern returns pat(F), the union of the trees' patterns.
func (f Forest) Pattern() hom.TGraph {
	var all []rdf.Triple
	for _, t := range f {
		all = append(all, t.Pattern()...)
	}
	return hom.NewTGraph(all...)
}

// Vars returns vars(F).
func (f Forest) Vars() []rdf.Term { return f.Pattern().Vars() }

// String renders the forest.
func (f Forest) String() string {
	var b strings.Builder
	for i, t := range f {
		fmt.Fprintf(&b, "T%d:\n%s", i+1, t)
	}
	return b.String()
}

// Build constructs a tree from nested literal data, for tests and
// generators: each spec is a node pattern plus child specs.
type Spec struct {
	Pattern  []rdf.Triple
	Filters  []sparql.Expr
	Children []Spec
}

// FromSpec builds a tree from a Spec.
func FromSpec(s Spec) *Tree {
	var rec func(s Spec, parent *Node) *Node
	rec = func(s Spec, parent *Node) *Node {
		n := &Node{Pattern: hom.NewTGraph(s.Pattern...), Filters: s.Filters, Parent: parent}
		for _, c := range s.Children {
			n.Children = append(n.Children, rec(c, n))
		}
		return n
	}
	return newTree(rec(s, nil))
}

// sortKey renders the node's pattern plus its filters, so trees that
// differ only in filters still sort their children deterministically.
func (n *Node) sortKey() string {
	if len(n.Filters) == 0 {
		return n.Pattern.String()
	}
	var b strings.Builder
	b.WriteString(n.Pattern.String())
	for _, f := range n.Filters {
		b.WriteString(" FILTER ")
		b.WriteString(f.String())
	}
	return b.String()
}

// SortChildren orders every node's children deterministically by their
// pattern rendering; construction order is preserved where patterns
// are distinct anyway, and tests rely on stable output.
func (t *Tree) SortChildren() {
	for _, n := range t.nodes {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].sortKey() < n.Children[j].sortKey()
		})
	}
	*t = *newTree(t.Root)
}
