package ptree

import (
	"sort"

	"wdsparql/internal/rdf"
)

// Static analysis of wdPTs in the spirit of Letelier et al. (the
// paper's [17]): classification of variables into certain (bound in
// every solution) and possible (bound in at least one solution over
// some graph), and the subsumption order on mappings under which the
// solutions of a wdPT are the maximal partial matches.

// CertainVars returns the variables bound in every solution of ⟦T⟧G
// for every G: exactly vars(r) of the root, since every solution
// extends a homomorphism of pat(r) and nothing else is mandatory.
func CertainVars(t *Tree) []rdf.Term {
	return t.Root.Vars()
}

// PossibleVars returns the variables that can be bound in some
// solution: all of vars(T).
func PossibleVars(t *Tree) []rdf.Term {
	return t.Vars()
}

// CertainVarsForest returns the variables bound in every solution of
// ⟦F⟧G for every G with solutions: the intersection of the trees'
// certain variables (a solution comes from some tree).
func CertainVarsForest(f Forest) []rdf.Term {
	if len(f) == 0 {
		return nil
	}
	count := map[rdf.Term]int{}
	for _, t := range f {
		for _, v := range CertainVars(t) {
			count[v]++
		}
	}
	var out []rdf.Term
	for v, c := range count {
		if c == len(f) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Subsumes reports µ2 ⊑ µ1: dom(µ2) ⊆ dom(µ1) and the mappings agree
// on dom(µ2). The solutions of a UNION-free well-designed pattern are
// pairwise ⊑-incomparable (Pérez et al.), a law the property tests
// verify against the evaluators.
func Subsumes(big, small rdf.Mapping) bool {
	if len(small) > len(big) {
		return false
	}
	for k, v := range small {
		if w, ok := big[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// PairwiseIncomparable reports whether no mapping of the set strictly
// subsumes another.
func PairwiseIncomparable(set *rdf.MappingSet) bool {
	ms := set.Slice()
	for i := range ms {
		for j := range ms {
			if i != j && Subsumes(ms[i], ms[j]) && !ms[j].Equal(ms[i]) {
				return false
			}
		}
	}
	return true
}

// DepthOf returns the depth of the tree (root alone = 1).
func DepthOf(t *Tree) int {
	var rec func(n *Node) int
	rec = func(n *Node) int {
		best := 0
		for _, c := range n.Children {
			if d := rec(c); d > best {
				best = d
			}
		}
		return best + 1
	}
	return rec(t.Root)
}

// BranchingFactor returns the maximum number of children of any node.
func BranchingFactor(t *Tree) int {
	best := 0
	for _, n := range t.Nodes() {
		if len(n.Children) > best {
			best = len(n.Children)
		}
	}
	return best
}
