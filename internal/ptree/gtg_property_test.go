package ptree_test

import (
	"math/rand"
	"testing"

	"wdsparql/internal/gen"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
)

// Structural invariants of the Section 3.1 combinatorics, verified on
// random well-designed patterns:
//
//   - the support of a subtree of Ti always contains i itself, with the
//     subtree as its own witness;
//   - every S_∆ contains pat(T);
//   - validity: the empty-domain assignment is never produced, and
//     every valid ∆ leaves no un-dominated support index (re-checked
//     with a direct subset test, which coincides with the → test here
//     because pat(T^sp(i)) has no free variables relative to vars(T)).

func TestQuickSupportContainsSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	for trial := 0; trial < 60; trial++ {
		p, ok := gen.RandomWDPattern(rng, gen.PatternOpts{Depth: 3, Union: trial%2 == 0})
		if !ok {
			t.Fatal("generator failed")
		}
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, fs := range ptree.EnumerateForestSubtrees(f) {
			indices, witnesses := ptree.Support(fs)
			found := false
			for _, i := range indices {
				if i == fs.TreeIndex {
					found = true
					w := witnesses[i]
					if w.Key() != fs.Subtree.Key() {
						t.Fatalf("self-witness differs: %v vs %v", w, fs.Subtree)
					}
				}
			}
			if !found {
				t.Fatalf("supp(T) missing the subtree's own tree %d", fs.TreeIndex)
			}
		}
	}
}

func TestQuickSDeltaContainsPatT(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	for trial := 0; trial < 40; trial++ {
		p, ok := gen.RandomWDPattern(rng, gen.PatternOpts{Depth: 3, Union: true})
		if !ok {
			t.Fatal("generator failed")
		}
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, fs := range ptree.EnumerateForestSubtrees(f) {
			base := fs.Subtree.Pattern()
			for _, ca := range ptree.EnumerateCA(fs) {
				sd := ptree.SDelta(fs, ca)
				if !base.SubsetOf(sd) {
					t.Fatalf("S_∆ misses pat(T): %s vs %s", base, sd)
				}
				if len(ca.Assign) == 0 {
					t.Fatal("children assignment with empty domain")
				}
				// Renamed variables must be fresh: no renamed variable
				// occurs in the forest.
				forestVars := map[rdf.Term]bool{}
				for _, v := range fs.Forest.Vars() {
					forestVars[v] = true
				}
				keep := map[rdf.Term]bool{}
				for _, v := range fs.Vars() {
					keep[v] = true
				}
				for _, v := range sd.Vars() {
					if forestVars[v] && !keep[v] && !inOriginalChildren(fs, ca, v) {
						t.Fatalf("leaked variable %s in S_∆", v)
					}
				}
			}
		}
	}
}

// inOriginalChildren reports whether v survives legitimately: it is a
// variable of some assigned child that also lies in vars(T) — only
// those may persist unrenamed.
func inOriginalChildren(fs ptree.ForestSubtree, ca ptree.ChildrenAssignment, v rdf.Term) bool {
	keep := map[rdf.Term]bool{}
	for _, x := range fs.Vars() {
		keep[x] = true
	}
	return keep[v]
}

// Validity coincides with the direct subset test: pat(T^sp(i)) has
// vars ⊆ vars(T) = X, so a homomorphism fixing X exists iff
// pat(T^sp(i)) ⊆ S_∆ triple-for-triple.
func TestQuickValidityViaSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(167))
	for trial := 0; trial < 40; trial++ {
		p, ok := gen.RandomWDPattern(rng, gen.PatternOpts{Depth: 2, Union: true})
		if !ok {
			t.Fatal("generator failed")
		}
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, fs := range ptree.EnumerateForestSubtrees(f) {
			indices, witnesses := ptree.Support(fs)
			for _, ca := range ptree.EnumerateCA(fs) {
				got := ptree.IsValidCA(fs, ca)
				sd := ptree.SDelta(fs, ca)
				want := true
				for _, i := range indices {
					if _, in := ca.Assign[i]; in {
						continue
					}
					if witnesses[i].Pattern().SubsetOf(sd) {
						want = false
						break
					}
				}
				if got != want {
					t.Fatalf("validity mismatch: hom-based %v, subset-based %v", got, want)
				}
			}
		}
	}
}

// ptree.GtG elements always carry X = vars(T) and are pairwise distinct.
func TestQuickGtGWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	for trial := 0; trial < 30; trial++ {
		p, ok := gen.RandomWDPattern(rng, gen.PatternOpts{Depth: 2, Union: true})
		if !ok {
			t.Fatal("generator failed")
		}
		f, err := ptree.WDPF(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, fs := range ptree.EnumerateForestSubtrees(f) {
			seen := map[string]bool{}
			for _, g := range ptree.GtG(fs) {
				if seen[g.S.String()] {
					t.Fatal("duplicate ptree.GtG element")
				}
				seen[g.S.String()] = true
				_ = hom.NewGTGraph(g.S, g.X) // must not panic
			}
		}
	}
}
