package ptree

import (
	"fmt"
	"sort"
	"strings"

	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
)

// This file implements the Section 3.1 combinatorics: subtrees of a
// wdPF, supports, children assignments, the renamed t-graphs S_∆,
// validity of children assignments, and the sets GtG(T).

// Subtree is a subtree T' of a wdPT: a downward-closed set of nodes
// containing the root (the paper's definition — same root, induced
// labels).
type Subtree struct {
	Tree *Tree
	// In[id] reports membership of the node with that ID.
	In []bool
}

// NewSubtree builds a subtree of t from a node-ID set. It panics if
// the set is not downward-closed or misses the root; subtree
// construction is internal to the module.
func NewSubtree(t *Tree, ids ...int) Subtree {
	in := make([]bool, t.Size())
	for _, id := range ids {
		in[id] = true
	}
	if !in[t.Root.ID] {
		panic("ptree: subtree must contain the root")
	}
	for _, n := range t.Nodes() {
		if in[n.ID] && n.Parent != nil && !in[n.Parent.ID] {
			panic(fmt.Sprintf("ptree: subtree not downward-closed at node %d", n.ID))
		}
	}
	return Subtree{Tree: t, In: in}
}

// Nodes returns the member nodes in ID order.
func (s Subtree) Nodes() []*Node {
	var out []*Node
	for _, n := range s.Tree.Nodes() {
		if s.In[n.ID] {
			out = append(out, n)
		}
	}
	return out
}

// Size returns the number of member nodes.
func (s Subtree) Size() int {
	c := 0
	for _, b := range s.In {
		if b {
			c++
		}
	}
	return c
}

// Pattern returns pat(T').
func (s Subtree) Pattern() hom.TGraph {
	var all []rdf.Triple
	for _, n := range s.Nodes() {
		all = append(all, n.Pattern...)
	}
	return hom.NewTGraph(all...)
}

// Vars returns vars(T').
func (s Subtree) Vars() []rdf.Term { return s.Pattern().Vars() }

// Children returns the children of the subtree: nodes outside it whose
// parent is inside.
func (s Subtree) Children() []*Node {
	var out []*Node
	for _, n := range s.Tree.Nodes() {
		if !s.In[n.ID] && n.Parent != nil && s.In[n.Parent.ID] {
			out = append(out, n)
		}
	}
	return out
}

// Extend returns the subtree with one more node (which must be a child
// of s).
func (s Subtree) Extend(n *Node) Subtree {
	in := append([]bool{}, s.In...)
	in[n.ID] = true
	return Subtree{Tree: s.Tree, In: in}
}

// Key returns a canonical key for the subtree within its tree.
func (s Subtree) Key() string {
	b := make([]byte, len(s.In))
	for i, v := range s.In {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// String renders the member IDs.
func (s Subtree) String() string {
	var ids []string
	for _, n := range s.Nodes() {
		ids = append(ids, fmt.Sprint(n.ID))
	}
	return "{" + strings.Join(ids, ",") + "}"
}

// EnumerateSubtrees returns every subtree of t (all downward-closed
// node sets containing the root). The count is exponential in the
// tree size; the trees arising from queries are small.
func EnumerateSubtrees(t *Tree) []Subtree {
	base := NewSubtree(t, t.Root.ID)
	seen := map[string]bool{base.Key(): true}
	out := []Subtree{base}
	frontier := []Subtree{base}
	for len(frontier) > 0 {
		var next []Subtree
		for _, s := range frontier {
			for _, c := range s.Children() {
				e := s.Extend(c)
				if !seen[e.Key()] {
					seen[e.Key()] = true
					out = append(out, e)
					next = append(next, e)
				}
			}
		}
		frontier = next
	}
	return out
}

// ForestSubtree is a subtree of a wdPF: a subtree of one of its trees,
// remembered with the tree's index.
type ForestSubtree struct {
	Forest    Forest
	TreeIndex int // 0-based index into Forest
	Subtree   Subtree
}

// Vars returns vars(T) of the forest subtree.
func (fs ForestSubtree) Vars() []rdf.Term { return fs.Subtree.Vars() }

// EnumerateForestSubtrees returns every subtree of every tree of F.
func EnumerateForestSubtrees(f Forest) []ForestSubtree {
	var out []ForestSubtree
	for i, t := range f {
		for _, s := range EnumerateSubtrees(t) {
			out = append(out, ForestSubtree{Forest: f, TreeIndex: i, Subtree: s})
		}
	}
	return out
}

// WitnessSubtree returns the unique subtree T' of t with
// vars(T') = vars exactly, when one exists. Uniqueness follows from NR
// normal form (see the paper's definition of supp); the witness is the
// maximal downward-closed set of nodes whose variables are contained
// in vars, provided its variable set is all of vars.
func WitnessSubtree(t *Tree, vars []rdf.Term) (Subtree, bool) {
	allowed := map[rdf.Term]bool{}
	for _, v := range vars {
		allowed[v] = true
	}
	within := func(n *Node) bool {
		for _, v := range n.Vars() {
			if !allowed[v] {
				return false
			}
		}
		return true
	}
	if !within(t.Root) {
		return Subtree{}, false
	}
	in := make([]bool, t.Size())
	in[t.Root.ID] = true
	queue := []*Node{t.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Children {
			if within(c) {
				in[c.ID] = true
				queue = append(queue, c)
			}
		}
	}
	s := Subtree{Tree: t, In: in}
	// vars(s) ⊆ allowed by construction, and both sets are
	// deduplicated, so equal sizes imply set equality.
	if len(s.Vars()) != len(allowed) {
		return Subtree{}, false
	}
	return s, true
}

// Support computes supp(T) for a forest subtree: the indices i (0-based)
// such that tree Ti has a subtree with the same variable set, together
// with the witness subtrees T^sp(i).
func Support(fs ForestSubtree) (indices []int, witnesses map[int]Subtree) {
	vars := fs.Vars()
	witnesses = map[int]Subtree{}
	for i, t := range fs.Forest {
		if w, ok := WitnessSubtree(t, vars); ok {
			indices = append(indices, i)
			witnesses[i] = w
		}
	}
	return indices, witnesses
}

// ChildrenAssignment is a ∆ ∈ CA(T): a function with non-empty domain
// dom(∆) ⊆ supp(T) mapping each i to a child of T^sp(i).
type ChildrenAssignment struct {
	// Assign maps a support index i (0-based tree index) to the chosen
	// child node of T^sp(i).
	Assign map[int]*Node
}

// Dom returns dom(∆) sorted.
func (ca ChildrenAssignment) Dom() []int {
	out := make([]int, 0, len(ca.Assign))
	for i := range ca.Assign {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// EnumerateCA returns CA(T), the set of all children assignments of
// the forest subtree. The support and witnesses are recomputed here;
// callers doing repeated work should use the Analysis type below.
func EnumerateCA(fs ForestSubtree) []ChildrenAssignment {
	indices, witnesses := Support(fs)
	type choice struct {
		idx      int
		children []*Node
	}
	var choices []choice
	for _, i := range indices {
		cs := witnesses[i].Children()
		if len(cs) > 0 {
			choices = append(choices, choice{idx: i, children: cs})
		}
	}
	var out []ChildrenAssignment
	assign := map[int]*Node{}
	var rec func(pos int)
	rec = func(pos int) {
		if pos == len(choices) {
			if len(assign) > 0 {
				cp := make(map[int]*Node, len(assign))
				for k, v := range assign {
					cp[k] = v
				}
				out = append(out, ChildrenAssignment{Assign: cp})
			}
			return
		}
		// Option: i ∉ dom(∆).
		rec(pos + 1)
		for _, c := range choices[pos].children {
			assign[choices[pos].idx] = c
			rec(pos + 1)
			delete(assign, choices[pos].idx)
		}
	}
	rec(0)
	return out
}

// SDelta builds the t-graph S_∆ = pat(T) ∪ ⋃_{i ∈ dom(∆)} ρ_∆(i),
// where ρ_∆(i) renames the variables of pat(∆(i)) outside vars(T) to
// fresh variables (distinct across different i).
func SDelta(fs ForestSubtree, ca ChildrenAssignment) hom.TGraph {
	base := fs.Subtree.Pattern()
	keep := map[rdf.Term]bool{}
	for _, v := range fs.Vars() {
		keep[v] = true
	}
	used := map[string]bool{}
	for _, v := range fs.Forest.Vars() {
		used[v.Value] = true
	}
	all := append([]rdf.Triple{}, base...)
	for _, i := range ca.Dom() {
		n := ca.Assign[i]
		ren := map[rdf.Term]rdf.Term{}
		for _, v := range n.Vars() {
			if keep[v] {
				continue
			}
			fresh := freshVar(v.Value, i, used)
			ren[v] = fresh
		}
		for _, t := range n.Pattern {
			all = append(all, renameTriple(t, ren))
		}
	}
	return hom.NewTGraph(all...)
}

func freshVar(base string, i int, used map[string]bool) rdf.Term {
	name := fmt.Sprintf("%s~%d", base, i)
	for used[name] {
		name += "'"
	}
	used[name] = true
	return rdf.Var(name)
}

func renameTriple(t rdf.Triple, ren map[rdf.Term]rdf.Term) rdf.Triple {
	conv := func(x rdf.Term) rdf.Term {
		if r, ok := ren[x]; ok {
			return r
		}
		return x
	}
	return rdf.T(conv(t.S), conv(t.P), conv(t.O))
}

// IsValidCA reports whether ∆ ∈ VCA(T): for every i ∈ supp(T) \ dom(∆),
// (pat(T^sp(i)), vars(T)) does not map homomorphically into
// (S_∆, vars(T)).
func IsValidCA(fs ForestSubtree, ca ChildrenAssignment) bool {
	indices, witnesses := Support(fs)
	sd := SDelta(fs, ca)
	x := fs.Vars()
	target := hom.NewGTGraph(sd, x)
	for _, i := range indices {
		if _, inDom := ca.Assign[i]; inDom {
			continue
		}
		src := hom.NewGTGraph(witnesses[i].Pattern(), x)
		if hom.Hom(src, target) {
			return false
		}
	}
	return true
}

// GtG returns the paper's GtG(T): the generalised t-graphs
// (S_∆, vars(T)) over all valid children assignments ∆ ∈ VCA(T).
func GtG(fs ForestSubtree) []hom.GTGraph {
	x := fs.Vars()
	var out []hom.GTGraph
	seen := map[string]bool{}
	for _, ca := range EnumerateCA(fs) {
		if !IsValidCA(fs, ca) {
			continue
		}
		g := hom.NewGTGraph(SDelta(fs, ca), x)
		k := g.S.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, g)
		}
	}
	return out
}
