package gen

import (
	"fmt"
	"math/rand"

	"wdsparql/internal/rdf"
)

// This file generates synthetic RDF data. All generators are
// deterministic given their seed, so tests and benchmark tables are
// reproducible.

// vertex names a data vertex.
func vertex(i int) string { return fmt.Sprintf("n%d", i) }

// Turan returns the Turán graph T(n, r) — the complete r-partite graph
// on n near-equal parts — as symmetric RDF triples over the predicate
// pred. T(n, k−1) is the canonical k-clique-free dense graph, which
// makes refuting a K_k homomorphism maximally expensive for
// backtracking solvers; it drives the hard instances of experiments
// E3 and E6. Part of vertex i is i mod r.
func Turan(n, r int, pred string) *rdf.Graph {
	g := rdf.NewGraph()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if i%r != j%r {
				g.AddTriple(vertex(i), pred, vertex(j))
				g.AddTriple(vertex(j), pred, vertex(i))
			}
		}
	}
	return g
}

// TuranWithClique returns T(n, r) plus one extra intra-part edge,
// which creates an (r+1)-clique; positive counterpart of Turan for the
// same workloads. It requires n ≥ 2r (two vertices in part 0).
func TuranWithClique(n, r int, pred string) *rdf.Graph {
	g := Turan(n, r, pred)
	if n < 2*r {
		panic(fmt.Sprintf("gen: TuranWithClique needs n ≥ 2r, got n=%d r=%d", n, r))
	}
	// Vertices 0 and r are both in part 0.
	g.AddTriple(vertex(0), pred, vertex(r))
	g.AddTriple(vertex(r), pred, vertex(0))
	return g
}

// FkData builds the adversarial data set for the F_k family
// (experiment E3): one p-edge (a, b), a q-structure controlled by
// withQ, an r-fan from b into part 0 of a Turán graph T(n, k−1) over
// predicate r, and the Turán edges themselves. With withClique the
// Turán graph gets a planted k-clique.
//
// The interesting mapping is µ = {?x ↦ a, ?y ↦ b}. With withQ=false
// and withClique=false, µ ∈ ⟦F_k⟧G, and certifying it forces the
// natural algorithm to refute a k-clique in a Turán graph; the
// Theorem 1 algorithm avoids the refutation via its pebble tests.
func FkData(k, n int, withQ, withClique bool) *rdf.Graph {
	var g *rdf.Graph
	if withClique {
		g = TuranWithClique(n, k-1, "r")
	} else {
		g = Turan(n, k-1, "r")
	}
	g.AddTriple("a", "p", "b")
	// r-fan from b into part 0 only (never both directions, and no
	// self-loop at b), so the K_k refutation cannot shortcut through b.
	for i := 0; i < n; i += k - 1 {
		g.AddTriple("b", "r", vertex(i))
	}
	if withQ {
		g.AddTriple("c", "q", "a")
		g.AddTriple("d", "q", "c")
	}
	return g
}

// FkMu returns the mapping µ = {?x ↦ a, ?y ↦ b} probed in E3.
func FkMu() rdf.Mapping {
	return rdf.Mapping{"x": "a", "y": "b"}
}

// TkPrimeData builds data for the T'_k family: a self-loop (b, r, b)
// matching the root, an r-fan from b into a Turán graph T(n, k−1), and
// the Turán edges. µ = {?y ↦ b}.
func TkPrimeData(n, k int) *rdf.Graph {
	g := Turan(n, k-1, "r")
	g.AddTriple("b", "r", "b")
	for i := 0; i < n; i++ {
		g.AddTriple("b", "r", vertex(i))
	}
	return g
}

// Random returns an Erdős–Rényi-style RDF graph: m distinct triples
// drawn uniformly over n subjects/objects and p predicates.
func Random(n, m, preds int, seed int64) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	for g.Len() < m {
		s := vertex(rng.Intn(n))
		o := vertex(rng.Intn(n))
		p := fmt.Sprintf("p%d", rng.Intn(preds))
		g.AddTriple(s, p, o)
	}
	return g
}

// SocialNetwork generates a small social-network-style data set:
// persons with knows edges, optional employers and optional emails.
// Roughly a third of the persons lack an employer and a third lack an
// email, exercising the OPTIONAL semantics.
func SocialNetwork(persons int, seed int64) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	name := func(i int) string { return fmt.Sprintf("person%d", i) }
	for i := 0; i < persons; i++ {
		g.AddTriple(name(i), "type", "Person")
		// Every person knows about three others.
		for d := 0; d < 3; d++ {
			j := rng.Intn(persons)
			if j != i {
				g.AddTriple(name(i), "knows", name(j))
			}
		}
		if i%3 != 0 {
			g.AddTriple(name(i), "worksAt", fmt.Sprintf("org%d", rng.Intn(5)))
		}
		if i%3 != 1 {
			g.AddTriple(name(i), "email", fmt.Sprintf("mail%d", i))
		}
	}
	return g
}

// ItemCatalog generates data for the OptStar family: items with a
// random subset of `arms` optional attributes.
func ItemCatalog(items, arms int, seed int64) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	for i := 0; i < items; i++ {
		s := fmt.Sprintf("item%d", i)
		g.AddTriple(s, "type", "item")
		for a := 0; a < arms; a++ {
			if rng.Intn(2) == 0 {
				g.AddTriple(s, fmt.Sprintf("attr%d", a), fmt.Sprintf("val%d_%d", i, a))
			}
		}
	}
	return g
}

// PathData generates a directed p-path v0 → v1 → ... → v_len plus
// noise edges, for the OptChain family.
func PathData(length, noise int, seed int64) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	for i := 0; i < length; i++ {
		g.AddTriple(vertex(i), "p", vertex(i+1))
	}
	for i := 0; i < noise; i++ {
		g.AddTriple(vertex(rng.Intn(length+1)), "p", vertex(rng.Intn(length+1)))
	}
	return g
}
