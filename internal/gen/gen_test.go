package gen

import (
	"testing"

	"wdsparql/internal/graphalg"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
)

func TestKkTriples(t *testing.T) {
	for k := 2; k <= 6; k++ {
		ts := KkTriples(k)
		if len(ts) != k*(k-1)/2 {
			t.Fatalf("k=%d: %d triples", k, len(ts))
		}
		// The Gaifman structure is a clique: the t-graph with no
		// distinguished vars is a core of treewidth k−1 (tested at the
		// width level in internal/core; here check it is a core).
		if !hom.IsCore(hom.NewGTGraph(hom.NewTGraph(ts...), nil)) {
			t.Fatalf("k=%d: K_k should be a core", k)
		}
	}
}

func TestFkStructure(t *testing.T) {
	f := Fk(3)
	if len(f) != 3 {
		t.Fatalf("F_k has 3 trees, got %d", len(f))
	}
	sizes := []int{3, 2, 2}
	for i, tr := range f {
		if tr.Size() != sizes[i] {
			t.Fatalf("T%d size %d, want %d", i+1, tr.Size(), sizes[i])
		}
		if err := tr.Validate(true); err != nil {
			t.Fatalf("T%d: %v", i+1, err)
		}
	}
}

func TestTkPrimeStructure(t *testing.T) {
	for k := 2; k <= 4; k++ {
		tr := TkPrime(k)
		if tr.Size() != 2 {
			t.Fatalf("T'_k has 2 nodes, got %d", tr.Size())
		}
		if err := tr.Validate(true); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCliqueAndGridChildren(t *testing.T) {
	for k := 2; k <= 4; k++ {
		if err := CliqueChild(k).Validate(true); err != nil {
			t.Fatal(err)
		}
	}
	g := GridChild(3, 4)
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	// The child contains the anchor + right/down edges.
	child := g.Root.Children[0]
	wantTriples := 1 + 3*3 + 2*4 // anchor + right edges + down edges
	if len(child.Pattern) != wantTriples {
		t.Fatalf("grid child: %d triples, want %d", len(child.Pattern), wantTriples)
	}
	// Anchored labelled grid is a core.
	s := hom.NewGTGraph(g.Root.Pattern.Union(child.Pattern), []rdf.Term{rdf.Var("u")})
	if !hom.IsCore(s) {
		t.Fatal("anchored grid must be a core")
	}
}

func TestOptChainAndStar(t *testing.T) {
	c := OptChain(4)
	if c.Size() != 4 {
		t.Fatalf("chain size %d", c.Size())
	}
	if err := c.Validate(true); err != nil {
		t.Fatal(err)
	}
	depth := 0
	for n := c.Root; len(n.Children) > 0; n = n.Children[0] {
		depth++
	}
	if depth != 3 {
		t.Fatalf("chain depth %d", depth)
	}
	s := OptStar(5)
	if s.Size() != 6 || len(s.Root.Children) != 5 {
		t.Fatalf("star shape: %d nodes, %d children", s.Size(), len(s.Root.Children))
	}
	if err := s.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestTuranCliqueFreeness(t *testing.T) {
	for k := 3; k <= 5; k++ {
		n := 4 * (k - 1)
		g := Turan(n, k-1, "r")
		if hasSymmetricClique(g, "r", k) {
			t.Fatalf("T(%d,%d) must be K_%d-free", n, k-1, k)
		}
		if !hasSymmetricClique(g, "r", k-1) {
			t.Fatalf("T(%d,%d) must contain K_%d", n, k-1, k-1)
		}
		gc := TuranWithClique(n, k-1, "r")
		if !hasSymmetricClique(gc, "r", k) {
			t.Fatalf("planted clique missing in T(%d,%d)+e", n, k-1)
		}
	}
}

// hasSymmetricClique checks for a k-clique in the symmetric predicate
// graph via the pattern K_k and the hom solver.
func hasSymmetricClique(g *rdf.Graph, pred string, k int) bool {
	// Build an undirected view and use the graphalg oracle, which is
	// independent of the hom machinery.
	idx := map[string]int{}
	var names []string
	for _, v := range g.Dom() {
		idx[v] = len(names)
		names = append(names, v)
	}
	u := graphalg.NewUGraph(len(names))
	for _, tr := range g.Triples() {
		if tr.P.Value == pred {
			u.AddEdge(idx[tr.S.Value], idx[tr.O.Value])
		}
	}
	return graphalg.HasClique(u, k)
}

func TestFkDataShape(t *testing.T) {
	g := FkData(3, 8, true, false)
	if !g.Contains(rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b"))) {
		t.Fatal("missing p-edge")
	}
	if !g.Contains(rdf.T(rdf.IRI("c"), rdf.IRI("q"), rdf.IRI("a"))) {
		t.Fatal("missing q-edge")
	}
	noQ := FkData(3, 8, false, false)
	if len(noQ.Match(rdf.T(rdf.Var("z"), rdf.IRI("q"), rdf.Var("x")))) != 0 {
		t.Fatal("q-edges must be absent")
	}
	// b must have outgoing r-edges but no incoming ones and no loop.
	if len(noQ.Match(rdf.T(rdf.IRI("b"), rdf.IRI("r"), rdf.Var("v")))) == 0 {
		t.Fatal("missing r-fan")
	}
	if len(noQ.Match(rdf.T(rdf.Var("v"), rdf.IRI("r"), rdf.IRI("b")))) != 0 {
		t.Fatal("b must have no incoming r-edges")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	if !SocialNetwork(30, 7).Equal(SocialNetwork(30, 7)) {
		t.Fatal("SocialNetwork must be deterministic per seed")
	}
	if !Random(20, 50, 2, 3).Equal(Random(20, 50, 2, 3)) {
		t.Fatal("Random must be deterministic per seed")
	}
	if Random(20, 50, 2, 3).Equal(Random(20, 50, 2, 4)) {
		t.Fatal("different seeds should differ")
	}
	if Random(20, 50, 2, 3).Len() != 50 {
		t.Fatal("Random must hit requested size")
	}
}

func TestItemCatalogAndPathData(t *testing.T) {
	g := ItemCatalog(10, 3, 1)
	if len(g.Match(rdf.T(rdf.Var("s"), rdf.IRI("type"), rdf.IRI("item")))) != 10 {
		t.Fatal("items missing")
	}
	p := PathData(5, 3, 1)
	for i := 0; i < 5; i++ {
		if len(p.Match(rdf.T(rdf.Var("s"), rdf.IRI("p"), rdf.Var("o")))) < 5 {
			t.Fatal("path edges missing")
		}
	}
}

func TestTuranWithCliquePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 2r")
		}
	}()
	TuranWithClique(3, 2, "r")
}

func TestExampleGraphsWellFormed(t *testing.T) {
	for k := 2; k <= 4; k++ {
		s := ExampleS(k)
		if len(s.X) != 3 {
			t.Fatalf("X of (S,X): %v", s.X)
		}
		sp := ExampleSPrime(k)
		if len(sp.S) != 5+k*(k-1)/2 {
			t.Fatalf("S' size: %d", len(sp.S))
		}
	}
	_ = ptree.Forest{} // keep import for potential extensions
}
