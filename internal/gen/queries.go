// Package gen generates the query families and synthetic RDF data used
// by the examples, the test suite and the benchmark harness: the
// paper's own constructions (the wdPF F_k of Examples 4–5, the
// UNION-free family T'_k of Section 3.2, the clique t-graphs
// K_k(?o1, ..., ?ok) of Example 3) plus the unbounded-width families
// and adversarial data sets that exhibit the tractability frontier.
package gen

import (
	"fmt"

	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
)

// KkTriples returns the paper's K_k(?o1, ..., ?ok) from Example 3:
// the t-graph {(?oi, r, ?oj) | 1 ≤ i < j ≤ k} whose Gaifman graph is
// the k-clique.
func KkTriples(k int) []rdf.Triple {
	var out []rdf.Triple
	for i := 1; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			out = append(out, rdf.T(oVar(i), rdf.IRI("r"), oVar(j)))
		}
	}
	return out
}

func oVar(i int) rdf.Term { return rdf.Var(fmt.Sprintf("o%d", i)) }

// ExampleS returns the generalised t-graph (S, {?x, ?y, ?z}) of
// Figure 1 / Example 3: a core with ctw = k − 1.
func ExampleS(k int) hom.GTGraph {
	ts := []rdf.Triple{
		rdf.T(rdf.Var("z"), rdf.IRI("q"), rdf.Var("x")),
		rdf.T(rdf.Var("x"), rdf.IRI("p"), rdf.Var("y")),
		rdf.T(rdf.Var("y"), rdf.IRI("r"), oVar(1)),
	}
	ts = append(ts, KkTriples(k)...)
	return hom.NewGTGraph(hom.NewTGraph(ts...), []rdf.Term{rdf.Var("x"), rdf.Var("y"), rdf.Var("z")})
}

// ExampleSPrime returns (S', {?x, ?y, ?z}) of Figure 1 / Example 3:
// tw(S', X) = k − 1 but ctw(S', X) = 1 — the K_k part folds onto the
// self-loop triple (?o, r, ?o).
func ExampleSPrime(k int) hom.GTGraph {
	ts := []rdf.Triple{
		rdf.T(rdf.Var("z"), rdf.IRI("q"), rdf.Var("x")),
		rdf.T(rdf.Var("x"), rdf.IRI("p"), rdf.Var("y")),
		rdf.T(rdf.Var("y"), rdf.IRI("r"), oVar(1)),
		rdf.T(rdf.Var("y"), rdf.IRI("r"), rdf.Var("o")),
		rdf.T(rdf.Var("o"), rdf.IRI("r"), rdf.Var("o")),
	}
	ts = append(ts, KkTriples(k)...)
	return hom.NewGTGraph(hom.NewTGraph(ts...), []rdf.Term{rdf.Var("x"), rdf.Var("y"), rdf.Var("z")})
}

// Fk returns the wdPF F_k = {T1, T2, T3} of Figure 2 / Examples 4–5:
// dw(F_k) = 1 for every k ≥ 2, yet the family is not locally tractable
// (node n12 carries the clique K_k). It is the paper's witness that
// bounded domination width strictly extends local tractability.
func Fk(k int) ptree.Forest {
	x, y, z, w, o := rdf.Var("x"), rdf.Var("y"), rdf.Var("z"), rdf.Var("w"), rdf.Var("o")
	p, q, r := rdf.IRI("p"), rdf.IRI("q"), rdf.IRI("r")

	t1 := ptree.FromSpec(ptree.Spec{
		Pattern: []rdf.Triple{rdf.T(x, p, y)},
		Children: []ptree.Spec{
			{Pattern: []rdf.Triple{rdf.T(z, q, x)}},                                // n11
			{Pattern: append([]rdf.Triple{rdf.T(y, r, oVar(1))}, KkTriples(k)...)}, // n12
		},
	})
	t2 := ptree.FromSpec(ptree.Spec{
		Pattern: []rdf.Triple{rdf.T(x, p, y)},
		Children: []ptree.Spec{
			{Pattern: []rdf.Triple{rdf.T(z, q, x), rdf.T(w, q, z)}}, // n2
		},
	})
	t3 := ptree.FromSpec(ptree.Spec{
		Pattern: []rdf.Triple{rdf.T(x, p, y), rdf.T(z, q, x)},
		Children: []ptree.Spec{
			{Pattern: []rdf.Triple{rdf.T(y, r, o), rdf.T(o, r, o)}}, // n3
		},
	})
	for _, t := range []*ptree.Tree{t1, t2, t3} {
		t.SortChildren()
	}
	return ptree.Forest{t1, t2, t3}
}

// TkPrime returns the UNION-free wdPT T'_k of Section 3.2: a two-node
// tree with root {(?y, r, ?y)} and child {(?y, r, ?o1)} ∪ K_k. Its
// branch treewidth is 1 for every k (the branch core folds onto the
// root self-loop) although ctw(pat(n_k), {?y}) = k − 1, so the family
// has bounded branch treewidth without being locally tractable.
func TkPrime(k int) *ptree.Tree {
	y, r := rdf.Var("y"), rdf.IRI("r")
	return ptree.FromSpec(ptree.Spec{
		Pattern: []rdf.Triple{rdf.T(y, r, y)},
		Children: []ptree.Spec{
			{Pattern: append([]rdf.Triple{rdf.T(y, r, oVar(1))}, KkTriples(k)...)},
		},
	})
}

// CliqueChild returns a two-node wdPT of unbounded domination width:
// root {(?u, p0, ?u)} with a child {(?u, e0, ?x1)} ∪ clique triples
// over ?x1..?xk with pairwise predicate e. The anchor (?u, e0, ?x1)
// prevents the clique from folding, so dw = bw = ctw = k − 1.
func CliqueChild(k int) *ptree.Tree {
	u := rdf.Var("u")
	child := []rdf.Triple{rdf.T(u, rdf.IRI("e0"), xVar(1))}
	for i := 1; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			child = append(child, rdf.T(xVar(i), rdf.IRI("e"), xVar(j)))
		}
	}
	return ptree.FromSpec(ptree.Spec{
		Pattern:  []rdf.Triple{rdf.T(u, rdf.IRI("p0"), u)},
		Children: []ptree.Spec{{Pattern: child}},
	})
}

func xVar(i int) rdf.Term { return rdf.Var(fmt.Sprintf("x%d", i)) }

// GridVar returns the variable ?g_i_j used by GridChild, 1-based.
func GridVar(i, j int) rdf.Term { return rdf.Var(fmt.Sprintf("g_%d_%d", i, j)) }

// GridChildTriples returns the child t-graph of GridChild: an anchored
// directed (rows × cols)-grid with distinct "right" and "down"
// predicates, which is a core (the anchor pins ?g_1_1 and the labelled
// edges then force the identity), so its ctw equals the grid treewidth
// min(rows, cols).
func GridChildTriples(rows, cols int) []rdf.Triple {
	u := rdf.Var("u")
	out := []rdf.Triple{rdf.T(u, rdf.IRI("has"), GridVar(1, 1))}
	for i := 1; i <= rows; i++ {
		for j := 1; j <= cols; j++ {
			if j+1 <= cols {
				out = append(out, rdf.T(GridVar(i, j), rdf.IRI("right"), GridVar(i, j+1)))
			}
			if i+1 <= rows {
				out = append(out, rdf.T(GridVar(i, j), rdf.IRI("down"), GridVar(i+1, j)))
			}
		}
	}
	return out
}

// GridChild returns a two-node wdPT whose child is an anchored
// (rows × cols)-grid; this is the query family fed to the Section 4
// hardness reduction (its GtG member S_∆ = pat(T) ∪ pat(child) has a
// grid Gaifman graph, hence a trivially computable grid minor map).
func GridChild(rows, cols int) *ptree.Tree {
	u := rdf.Var("u")
	return ptree.FromSpec(ptree.Spec{
		Pattern:  []rdf.Triple{rdf.T(u, rdf.IRI("root"), u)},
		Children: []ptree.Spec{{Pattern: GridChildTriples(rows, cols)}},
	})
}

// OptChain returns a UNION-free wdPT shaped as a path of depth OPT
// nests: root {(?v0, p, ?v1)} with a chain of children
// {(?v_i, p, ?v_{i+1})}. Branch treewidth 1; used to measure scaling
// in tree depth.
func OptChain(depth int) *ptree.Tree {
	p := rdf.IRI("p")
	vv := func(i int) rdf.Term { return rdf.Var(fmt.Sprintf("v%d", i)) }
	spec := ptree.Spec{Pattern: []rdf.Triple{rdf.T(vv(depth-1), p, vv(depth))}}
	for i := depth - 2; i >= 0; i-- {
		spec = ptree.Spec{
			Pattern:  []rdf.Triple{rdf.T(vv(i), p, vv(i+1))},
			Children: []ptree.Spec{spec},
		}
	}
	return ptree.FromSpec(spec)
}

// OptStar returns a UNION-free wdPT with one root and `arms` children,
// each asking for a distinct optional attribute of ?s:
// root {(?s, type, item)}, children {(?s, attr_i, ?a_i)}.
func OptStar(arms int) *ptree.Tree {
	s := rdf.Var("s")
	spec := ptree.Spec{Pattern: []rdf.Triple{rdf.T(s, rdf.IRI("type"), rdf.IRI("item"))}}
	for i := 0; i < arms; i++ {
		spec.Children = append(spec.Children, ptree.Spec{
			Pattern: []rdf.Triple{rdf.T(s, rdf.IRI(fmt.Sprintf("attr%d", i)), rdf.Var(fmt.Sprintf("a%d", i)))},
		})
	}
	return ptree.FromSpec(spec)
}
