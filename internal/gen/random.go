package gen

import (
	"math/rand"

	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// Random well-designed pattern generation, shared by the property
// tests and the fuzzing harness. Generation is rejection-based: a
// random AND/OPT tree over a small vocabulary is drawn and retried
// until it passes the well-designedness test, which for this
// vocabulary succeeds within a handful of attempts.

// PatternOpts controls RandomWDPattern.
type PatternOpts struct {
	// Depth of the binary operator tree (0 = single triple).
	Depth int
	// Vars is the variable pool; defaults to ?x ?y ?z ?w.
	Vars []rdf.Term
	// Preds is the predicate pool; defaults to p, q.
	Preds []rdf.Term
	// IRIs is the constant pool for subject/object positions;
	// defaults to a, b.
	IRIs []rdf.Term
	// ConstProb controls how often a subject/object is a constant
	// (numerator of x/4); defaults to 1.
	ConstProb int
	// MaxTries bounds the rejection sampling; defaults to 10000.
	MaxTries int
	// Union adds a top-level UNION of two generated branches.
	Union bool
}

func (o *PatternOpts) fill() {
	if o.Vars == nil {
		o.Vars = []rdf.Term{rdf.Var("x"), rdf.Var("y"), rdf.Var("z"), rdf.Var("w")}
	}
	if o.Preds == nil {
		o.Preds = []rdf.Term{rdf.IRI("p"), rdf.IRI("q")}
	}
	if o.IRIs == nil {
		o.IRIs = []rdf.Term{rdf.IRI("a"), rdf.IRI("b")}
	}
	if o.ConstProb == 0 {
		o.ConstProb = 1
	}
	if o.MaxTries == 0 {
		o.MaxTries = 10000
	}
	if o.Depth == 0 {
		o.Depth = 3
	}
}

// RandomWDPattern draws a random well-designed pattern. ok is false
// when rejection sampling exhausts MaxTries (practically impossible
// with the defaults).
func RandomWDPattern(rng *rand.Rand, opts PatternOpts) (sparql.Pattern, bool) {
	opts.fill()
	for try := 0; try < opts.MaxTries; try++ {
		var p sparql.Pattern
		if opts.Union {
			p = sparql.Union(randTree(rng, &opts, opts.Depth-1), randTree(rng, &opts, opts.Depth-1))
		} else {
			p = randTree(rng, &opts, opts.Depth)
		}
		if sparql.IsWellDesigned(p) {
			return p, true
		}
	}
	return nil, false
}

func randTree(rng *rand.Rand, opts *PatternOpts, depth int) sparql.Pattern {
	if depth <= 0 || rng.Intn(3) == 0 {
		return sparql.Triple{T: randWDTriple(rng, opts)}
	}
	l := randTree(rng, opts, depth-1)
	r := randTree(rng, opts, depth-1)
	if rng.Intn(2) == 0 {
		return sparql.And(l, r)
	}
	return sparql.Opt(l, r)
}

func randWDTriple(rng *rand.Rand, opts *PatternOpts) rdf.Triple {
	so := func() rdf.Term {
		if rng.Intn(4) < opts.ConstProb {
			return opts.IRIs[rng.Intn(len(opts.IRIs))]
		}
		return opts.Vars[rng.Intn(len(opts.Vars))]
	}
	return rdf.T(so(), opts.Preds[rng.Intn(len(opts.Preds))], so())
}
