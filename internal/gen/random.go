package gen

import (
	"math/rand"

	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// Random well-designed pattern generation, shared by the property
// tests and the fuzzing harness. Generation is rejection-based: a
// random AND/OPT tree over a small vocabulary is drawn and retried
// until it passes the well-designedness test, which for this
// vocabulary succeeds within a handful of attempts.

// PatternOpts controls RandomWDPattern.
type PatternOpts struct {
	// Depth of the binary operator tree (0 = single triple).
	Depth int
	// Vars is the variable pool; defaults to ?x ?y ?z ?w.
	Vars []rdf.Term
	// Preds is the predicate pool; defaults to p, q.
	Preds []rdf.Term
	// IRIs is the constant pool for subject/object positions;
	// defaults to a, b.
	IRIs []rdf.Term
	// ConstProb controls how often a subject/object is a constant
	// (numerator of x/4); defaults to 1.
	ConstProb int
	// MaxTries bounds the rejection sampling; defaults to 10000.
	MaxTries int
	// Union adds a top-level UNION of two generated branches.
	Union bool
	// Filters sprinkles up to n FILTER wraps over random subpatterns
	// (RandomWDQuery only). Filter variables are drawn from the wrapped
	// subpattern, so the safety condition holds by construction.
	Filters int
	// Select wraps the query in a SELECT projecting a random subset of
	// its variables (or *), DISTINCT half the time (RandomWDQuery only).
	Select bool
}

func (o *PatternOpts) fill() {
	if o.Vars == nil {
		o.Vars = []rdf.Term{rdf.Var("x"), rdf.Var("y"), rdf.Var("z"), rdf.Var("w")}
	}
	if o.Preds == nil {
		o.Preds = []rdf.Term{rdf.IRI("p"), rdf.IRI("q")}
	}
	if o.IRIs == nil {
		o.IRIs = []rdf.Term{rdf.IRI("a"), rdf.IRI("b")}
	}
	if o.ConstProb == 0 {
		o.ConstProb = 1
	}
	if o.MaxTries == 0 {
		o.MaxTries = 10000
	}
	if o.Depth == 0 {
		o.Depth = 3
	}
}

// RandomWDPattern draws a random well-designed pattern. ok is false
// when rejection sampling exhausts MaxTries (practically impossible
// with the defaults).
func RandomWDPattern(rng *rand.Rand, opts PatternOpts) (sparql.Pattern, bool) {
	opts.fill()
	for try := 0; try < opts.MaxTries; try++ {
		var p sparql.Pattern
		if opts.Union {
			p = sparql.Union(randTree(rng, &opts, opts.Depth-1), randTree(rng, &opts, opts.Depth-1))
		} else {
			p = randTree(rng, &opts, opts.Depth)
		}
		if sparql.IsWellDesigned(p) {
			return p, true
		}
	}
	return nil, false
}

func randTree(rng *rand.Rand, opts *PatternOpts, depth int) sparql.Pattern {
	if depth <= 0 || rng.Intn(3) == 0 {
		return sparql.Triple{T: randWDTriple(rng, opts)}
	}
	l := randTree(rng, opts, depth-1)
	r := randTree(rng, opts, depth-1)
	if rng.Intn(2) == 0 {
		return sparql.And(l, r)
	}
	return sparql.Opt(l, r)
}

// RandomWDQuery draws a random well-designed query over the extended
// fragment: a RandomWDPattern decorated with random FILTER wraps
// (opts.Filters) and an optional SELECT projection (opts.Select).
// Candidates are rejected until both the full well-designedness check
// and the wdpf translation succeed — a filter spanning the optional
// subtrees of a redundant node has no NR normal form, and such draws
// are resampled rather than returned.
func RandomWDQuery(rng *rand.Rand, opts PatternOpts) (sparql.Pattern, bool) {
	opts.fill()
	for try := 0; try < opts.MaxTries; try++ {
		p, ok := RandomWDPattern(rng, opts)
		if !ok {
			return nil, false
		}
		if opts.Filters > 0 {
			budget := opts.Filters
			p = addFilters(rng, p, &opts, &budget)
		}
		inner := p
		if opts.Select {
			p = wrapSelect(rng, p)
		}
		if sparql.CheckWellDesigned(p) != nil {
			continue
		}
		if _, err := ptree.WDPF(inner); err != nil {
			continue
		}
		return p, true
	}
	return nil, false
}

// addFilters rebuilds the pattern bottom-up, wrapping subpatterns in
// random FILTERs until the budget runs out. UNION nodes are never
// wrapped (a FILTER above a UNION breaks union normal form); their
// branches are.
func addFilters(rng *rand.Rand, p sparql.Pattern, opts *PatternOpts, budget *int) sparql.Pattern {
	if q, ok := p.(sparql.Binary); ok {
		q.Left = addFilters(rng, q.Left, opts, budget)
		q.Right = addFilters(rng, q.Right, opts, budget)
		p = q
		if q.Op == sparql.OpUnion {
			return p
		}
	}
	if *budget > 0 && rng.Intn(3) == 0 {
		if e, ok := randExpr(rng, sparql.Vars(p), opts, 2); ok {
			*budget--
			p = sparql.Filter{Where: p, Cond: e}
		}
	}
	return p
}

// randExpr draws a filter expression over the given variable pool.
func randExpr(rng *rand.Rand, vars []rdf.Term, opts *PatternOpts, depth int) (sparql.Expr, bool) {
	if len(vars) == 0 {
		return nil, false
	}
	v := func() rdf.Term { return vars[rng.Intn(len(vars))] }
	if depth > 0 && rng.Intn(3) == 0 {
		l, ok1 := randExpr(rng, vars, opts, depth-1)
		r, ok2 := randExpr(rng, vars, opts, depth-1)
		if ok1 && ok2 {
			op := sparql.ExprAnd
			if rng.Intn(2) == 0 {
				op = sparql.ExprOr
			}
			var e sparql.Expr = sparql.ExprBinary{Op: op, Left: l, Right: r}
			if rng.Intn(4) == 0 {
				e = sparql.ExprNot{X: e}
			}
			return e, true
		}
	}
	switch rng.Intn(4) {
	case 0:
		return sparql.Bound{Var: v()}, true
	case 1:
		return sparql.Cmp{Left: v(), Right: opts.IRIs[rng.Intn(len(opts.IRIs))], Neq: rng.Intn(2) == 1}, true
	case 2:
		return sparql.Cmp{Left: v(), Right: v(), Neq: rng.Intn(2) == 1}, true
	default:
		return sparql.ExprNot{X: sparql.Bound{Var: v()}}, true
	}
}

// wrapSelect wraps p in a SELECT: * a quarter of the time, otherwise a
// random non-empty subset of vars(p) in random order; DISTINCT half the
// time.
func wrapSelect(rng *rand.Rand, p sparql.Pattern) sparql.Pattern {
	sel := sparql.Select{Where: p, Distinct: rng.Intn(2) == 0}
	if vs := sparql.Vars(p); len(vs) > 0 && rng.Intn(4) != 0 {
		rng.Shuffle(len(vs), func(i, j int) { vs[i], vs[j] = vs[j], vs[i] })
		sel.Vars = vs[:1+rng.Intn(len(vs))]
	}
	return sel
}

func randWDTriple(rng *rand.Rand, opts *PatternOpts) rdf.Triple {
	so := func() rdf.Term {
		if rng.Intn(4) < opts.ConstProb {
			return opts.IRIs[rng.Intn(len(opts.IRIs))]
		}
		return opts.Vars[rng.Intn(len(opts.Vars))]
	}
	return rdf.T(so(), opts.Preds[rng.Intn(len(opts.Preds))], so())
}
