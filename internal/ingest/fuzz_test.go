package ingest

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"wdsparql/internal/rdf"
	"wdsparql/internal/rdf/backendtest"
)

// FuzzIngestChunker fuzzes the line-boundary splitter and, through it,
// the whole pipeline's equivalence with the sequential reader: for
// arbitrary bytes and adversarial chunk/line bounds, the chunker must
// reassemble the input exactly, split only at line boundaries, and
// Load must agree with ReadGraphMaxLine — same accept/reject decision,
// and identical graphs on accept. "Errors, never panics" is implicit:
// any panic or hang fails the fuzz run.
func FuzzIngestChunker(f *testing.F) {
	f.Add([]byte("a p b .\nb p c .\n"), uint16(8), uint16(64))
	f.Add([]byte("a p b .\n# c\n\nno dot here\n"), uint16(1), uint16(16))
	f.Add([]byte("x\xffy p z .\r\n<a> <b> <c> ."), uint16(3), uint16(8))
	f.Add([]byte(strings.Repeat("n1 p n2 .\n", 40)), uint16(16), uint16(1024))
	f.Add([]byte("\n\n\n"), uint16(2), uint16(4))
	f.Fuzz(func(t *testing.T, data []byte, chunkRaw, maxRaw uint16) {
		chunkBytes := int(chunkRaw)%512 + 1
		maxLine := int(maxRaw)%256 + 1

		// Chunker invariants on raw bytes.
		ck := NewChunker(bytes.NewReader(data), chunkBytes, maxLine)
		var rebuilt []byte
		chunkOK := true
		wantLine := 1
		for {
			ch, err := ck.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				chunkOK = false
				break
			}
			if ch.StartLine != wantLine {
				t.Fatalf("chunk start line %d, want %d", ch.StartLine, wantLine)
			}
			if len(ch.Data) == 0 {
				t.Fatal("empty chunk")
			}
			rebuilt = append(rebuilt, ch.Data...)
			wantLine += bytes.Count(ch.Data, []byte{'\n'})
		}
		if chunkOK {
			if !bytes.Equal(rebuilt, data) {
				t.Fatalf("chunker reassembled %d bytes from %d", len(rebuilt), len(data))
			}
		}

		// Pipeline vs sequential reader: same verdict, same graph.
		seq, seqErr := rdf.ReadGraphMaxLine(bytes.NewReader(data), maxLine)
		par, parErr := Load(bytes.NewReader(data), Options{Workers: 3, ChunkBytes: chunkBytes, MaxLine: maxLine})
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("verdicts diverge: sequential err=%v, parallel err=%v", seqErr, parErr)
		}
		if seqErr == nil {
			if !backendtest.EqualStreams(seq, par) {
				t.Fatalf("graphs diverge: sequential %d triples, parallel %d", seq.Len(), par.Len())
			}
		}
	})
}
