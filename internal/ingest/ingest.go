package ingest

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"wdsparql/internal/rdf"
)

// lineError wraps a parse error with its absolute line number, in the
// exact shape of the sequential reader's errors.
func lineError(line int, err error) error {
	return fmt.Errorf("rdf: line %d: %w", line, err)
}

// Options configures a Load.
type Options struct {
	// Workers is the decode pool size; ≤ 0 means GOMAXPROCS.
	Workers int
	// ChunkBytes is the target chunk size; ≤ 0 means DefaultChunkBytes.
	ChunkBytes int
	// MaxLine bounds a single input line, like rdf.ReadGraphMaxLine;
	// ≤ 0 means rdf.MaxLineLen.
	MaxLine int
	// Shards selects the backend of the result: ≤ 1 compacts into the
	// single-arena frozen view, > 1 into a sharded CSR.
	Shards int
	// Progress, when non-nil, receives (raw input bytes consumed,
	// triples merged) with the same contract as rdf.ReadGraphWithProgress.
	Progress rdf.ProgressFunc
}

// progressStride matches the sequential reader's callback cadence.
const progressStride = 1 << 14

// ltriple is a triple encoded in a worker's private ID space.
type ltriple [3]uint32

// localDict is a worker-private interner. It deliberately does not
// reuse rdf.Dict: worker IDs are throwaway coordinates that exist only
// until the merge pass rewrites them, and keeping the type local keeps
// the remap contract (dense uint32 from 0, insertion-ordered strs) in
// one file.
type localDict struct {
	id   map[string]uint32
	strs []string
}

func (d *localDict) intern(s string) uint32 {
	if id, ok := d.id[s]; ok {
		return id
	}
	id := uint32(len(d.strs))
	d.id[s] = id
	d.strs = append(d.strs, s)
	return id
}

// decoded is one chunk after the parallel decode stage: triples in the
// worker's ID space, plus a snapshot of the worker dictionary's string
// table at decode time. The snapshot is a slice header: the worker
// appends to its table while the collector reads earlier entries, and
// that is safe precisely because entries below the snapshot length are
// never rewritten and Go strings are immutable.
type decoded struct {
	index   int
	worker  int
	triples []ltriple
	strs    []string
	err     error // first parse error of the chunk, with absolute line number
}

// countReader counts raw bytes consumed; atomically, because the
// chunker goroutine advances it while the collector reports progress.
type countReader struct {
	r io.Reader
	n atomic.Int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// Load reads the rdf.ReadGraph format through the parallel pipeline
// and returns a sealed graph. The result — dictionary IDs, insertion
// order, every enumeration stream — is identical to what
// rdf.ReadGraph (plus Shard, for Options.Shards > 1) would have built
// from the same input, and the first syntax error in input order is
// reported with the same line numbering. Gzipped input is detected by
// its magic bytes and decompressed before chunking (decompression is
// inherently sequential; parsing is not).
func Load(r io.Reader, opt Options) (*rdf.Graph, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	cr := &countReader{r: r}
	in, closer, err := openReader(cr)
	if err != nil {
		return nil, err
	}
	if closer != nil {
		defer closer.Close()
	}
	ck := NewChunker(in, opt.ChunkBytes, opt.MaxLine)

	chunks := make(chan Chunk, workers)
	results := make(chan decoded, workers)
	done := make(chan struct{})
	var chunkErr error

	// Stage 1: chunking. The error (read failure, overlong line, gzip
	// corruption) is captured and surfaces after every produced chunk
	// has been merged — parse errors in earlier input win.
	go func() {
		defer close(chunks)
		for {
			ch, err := ck.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				chunkErr = err
				return
			}
			select {
			case chunks <- ch:
			case <-done:
				return
			}
		}
	}()

	// Stage 2: the decode pool. Each worker owns a persistent localDict
	// reused across all its chunks, so repeated terms intern once per
	// worker, not once per chunk.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ld := &localDict{id: map[string]uint32{}}
			for ch := range chunks {
				dec := parseChunk(ch, w, ld)
				select {
				case results <- dec:
				case <-done:
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Stage 3: in-order merge/remap. abort tears the pipeline down on
	// the first in-order error without leaking goroutines: closing done
	// unblocks producers, draining results unblocks senders in flight.
	abort := func() {
		close(done)
		for range results {
		}
	}

	global := rdf.NewDict()
	remaps := make([][]rdf.TermID, workers)
	set := map[rdf.IDTriple]struct{}{}
	var all []rdf.IDTriple
	pending := map[int]decoded{}
	next := 0
	lastReport := 0

	for dec := range results {
		pending[dec.index] = dec
		for {
			d, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if d.err != nil {
				abort()
				return nil, d.err
			}
			rm := remaps[d.worker]
			for _, lt := range d.triples {
				var t rdf.IDTriple
				for i, lid := range lt {
					for int(lid) >= len(rm) {
						rm = append(rm, ^rdf.TermID(0))
					}
					g := rm[lid]
					if g == ^rdf.TermID(0) {
						// First input-order use of this term: intern now,
						// so global IDs come out in sequential order.
						g = global.InternIRI(d.strs[lid])
						rm[lid] = g
					}
					t[i] = g
				}
				if _, dup := set[t]; dup {
					continue
				}
				set[t] = struct{}{}
				all = append(all, t)
			}
			remaps[d.worker] = rm
			if opt.Progress != nil && len(all)-lastReport >= progressStride {
				lastReport = len(all)
				opt.Progress(cr.n.Load(), len(all))
			}
		}
	}
	if chunkErr != nil {
		return nil, chunkErr
	}
	if opt.Progress != nil {
		opt.Progress(cr.n.Load(), len(all))
	}
	return rdf.GraphFromEncoded(global, all, opt.Shards), nil
}

// parseChunk decodes one chunk into the worker's ID space. On a parse
// error it stops at the offending line and reports it with its
// absolute line number; triples already decoded are discarded by the
// collector together with the whole load.
func parseChunk(ch Chunk, worker int, ld *localDict) decoded {
	dec := decoded{index: ch.Index, worker: worker}
	data := ch.Data
	line := ch.StartLine
	for len(data) > 0 {
		var raw []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			raw, data = data[:i], data[i+1:]
		} else {
			raw, data = data, nil
		}
		s, p, o, ok, err := rdf.ParseDataLine(string(raw))
		if err != nil {
			dec.err = lineError(line, err)
			break
		}
		if ok {
			dec.triples = append(dec.triples, ltriple{ld.intern(s), ld.intern(p), ld.intern(o)})
		}
		line++
	}
	dec.strs = ld.strs // snapshot: entries below len are immutable
	return dec
}
