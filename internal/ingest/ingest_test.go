package ingest

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"wdsparql/internal/rdf"
	"wdsparql/internal/rdf/backendtest"
)

// randDump renders a random N-Triples dump with duplicates, comments,
// blank lines and both IRI spellings, deterministic in seed.
func randDump(seed int64, lines int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < lines; i++ {
		switch rng.Intn(10) {
		case 0:
			b.WriteString("# comment line\n")
		case 1:
			b.WriteString("\n")
		default:
			s := fmt.Sprintf("n%d", rng.Intn(200))
			p := fmt.Sprintf("p%d", rng.Intn(8))
			o := fmt.Sprintf("n%d", rng.Intn(200))
			if rng.Intn(4) == 0 {
				fmt.Fprintf(&b, "<%s> <%s> <%s> .\n", s, p, o)
			} else {
				fmt.Fprintf(&b, "%s %s %s .\n", s, p, o)
			}
		}
	}
	return b.String()
}

func gzipBytes(t *testing.T, src string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(src)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sameGraph requires full equivalence: identical enumeration streams
// (via each graph's own dictionary) AND identical dictionary ID
// assignment, the stronger contract Load promises.
func sameGraph(t *testing.T, want, got *rdf.Graph, label string) {
	t.Helper()
	if !backendtest.EqualStreams(want, got) {
		t.Fatalf("%s: enumeration streams diverge (want %d triples, got %d)", label, want.Len(), got.Len())
	}
	if want.Dict().NumIRIs() != got.Dict().NumIRIs() {
		t.Fatalf("%s: dictionary sizes diverge: %d vs %d", label, want.Dict().NumIRIs(), got.Dict().NumIRIs())
	}
	for i := 0; i < want.Dict().NumIRIs(); i++ {
		id := rdf.TermID(i)
		if want.Dict().StringOf(id) != got.Dict().StringOf(id) {
			t.Fatalf("%s: ID %d interned as %q sequentially, %q in parallel",
				label, i, want.Dict().StringOf(id), got.Dict().StringOf(id))
		}
	}
}

// TestLoadEquivalence is the pipeline's core contract: across worker
// counts, chunk sizes, shard counts and gzip, Load is byte-identical
// to the sequential ReadGraph path.
func TestLoadEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		src := randDump(seed, 3000)
		want, err := rdf.ReadGraph(strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 7} {
			for _, chunk := range []int{64, 1024, 1 << 20} {
				for _, shards := range []int{0, 3} {
					label := fmt.Sprintf("seed=%d w=%d c=%d s=%d", seed, workers, chunk, shards)
					ref := want
					if shards > 1 {
						ref = want.Clone().Shard(shards)
					}
					g, err := Load(strings.NewReader(src), Options{Workers: workers, ChunkBytes: chunk, Shards: shards})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if shards > 1 && (!g.Sharded() || g.ShardCount() != shards) {
						t.Fatalf("%s: wrong backend shape", label)
					}
					if shards <= 1 && !g.Frozen() {
						t.Fatalf("%s: result not frozen", label)
					}
					sameGraph(t, ref, g, label)
				}
			}
		}
		gz, err := Load(bytes.NewReader(gzipBytes(t, src)), Options{Workers: 4, ChunkBytes: 512})
		if err != nil {
			t.Fatalf("gzip seed=%d: %v", seed, err)
		}
		sameGraph(t, want, gz, fmt.Sprintf("gzip seed=%d", seed))
	}
}

// TestLoadFirstErrorWins pins deterministic error reporting: whatever
// the worker interleaving, the error is the first one in input order,
// with the same line number the sequential reader reports.
func TestLoadFirstErrorWins(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, "s%d p o%d .\n", i, i)
	}
	b.WriteString("first bad line is wrong\n") // line 501
	for i := 0; i < 500; i++ {
		b.WriteString("also bad\n")
	}
	src := b.String()
	_, wantErr := rdf.ReadGraph(strings.NewReader(src))
	if wantErr == nil || !strings.Contains(wantErr.Error(), "line 501") {
		t.Fatalf("sequential reference error %v does not name line 501", wantErr)
	}
	for trial := 0; trial < 20; trial++ {
		_, err := Load(strings.NewReader(src), Options{Workers: 8, ChunkBytes: 128})
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("trial %d: error %q, want %q", trial, err, wantErr)
		}
	}
}

// TestLoadGzipTruncated pins the corruption contract: a gzip stream
// cut mid-payload must error (the trailer CRC is never seen), and the
// error must not panic or hang the pool.
func TestLoadGzipTruncated(t *testing.T) {
	full := gzipBytes(t, randDump(9, 2000))
	for _, cut := range []int{len(full) - 1, len(full) - 8, len(full) / 2, 3} {
		if _, err := Load(bytes.NewReader(full[:cut]), Options{Workers: 4, ChunkBytes: 256}); err == nil {
			t.Fatalf("truncation to %d of %d bytes loaded without error", cut, len(full))
		}
	}
}

// TestLoadMaxLine pins that the chunker enforces the line bound with
// the sequential reader's exact error, including the line number.
func TestLoadMaxLine(t *testing.T) {
	src := "a p b .\nc p d .\n" + strings.Repeat("x", 4096) + " p e .\n"
	_, wantErr := rdf.ReadGraphMaxLine(strings.NewReader(src), 1024)
	_, err := Load(strings.NewReader(src), Options{Workers: 3, ChunkBytes: 64, MaxLine: 1024})
	if err == nil || wantErr == nil || err.Error() != wantErr.Error() {
		t.Fatalf("error %q, want sequential %q", err, wantErr)
	}
}

// TestLoadEmptyAndCommentOnly pins the degenerate inputs.
func TestLoadEmptyAndCommentOnly(t *testing.T) {
	for _, src := range []string{"", "\n\n\n", "# only comments\n# here\n"} {
		g, err := Load(strings.NewReader(src), Options{Workers: 2})
		if err != nil || g.Len() != 0 {
			t.Fatalf("Load(%q): len=%d err=%v", src, g.Len(), err)
		}
	}
}

// TestLoadProgress pins the progress callback: monotone, final report
// covers the whole input and the merged triple count.
func TestLoadProgress(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 40000; i++ {
		fmt.Fprintf(&b, "s%d p o%d .\n", i, i%31)
	}
	src := b.String()
	var lastBytes int64
	var lastTriples, calls int
	g, err := Load(strings.NewReader(src), Options{Workers: 4, ChunkBytes: 4096, Progress: func(bn int64, n int) {
		calls++
		if bn < lastBytes || n < lastTriples {
			t.Fatalf("progress went backwards: (%d,%d) after (%d,%d)", bn, n, lastBytes, lastTriples)
		}
		lastBytes, lastTriples = bn, n
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls < 2 || lastTriples != g.Len() || lastBytes != int64(len(src)) {
		t.Fatalf("calls=%d lastTriples=%d (graph %d) lastBytes=%d (input %d)",
			calls, lastTriples, g.Len(), lastBytes, len(src))
	}
}

// TestChunkerReassembly pins the chunker invariants directly: chunk
// concatenation is the input, every non-final chunk ends at a line
// boundary, indexes are dense, and StartLine matches the running
// newline count.
func TestChunkerReassembly(t *testing.T) {
	src := randDump(31, 4000)
	for _, chunkBytes := range []int{1, 7, 64, 1024, 1 << 20} {
		ck := NewChunker(strings.NewReader(src), chunkBytes, 0)
		var rebuilt []byte
		wantIndex, wantLine := 0, 1
		for {
			ch, err := ck.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("chunkBytes=%d: %v", chunkBytes, err)
			}
			if ch.Index != wantIndex || ch.StartLine != wantLine {
				t.Fatalf("chunkBytes=%d: chunk stamped (%d,%d), want (%d,%d)",
					chunkBytes, ch.Index, ch.StartLine, wantIndex, wantLine)
			}
			if len(ch.Data) == 0 {
				t.Fatalf("chunkBytes=%d: empty chunk", chunkBytes)
			}
			rebuilt = append(rebuilt, ch.Data...)
			if len(rebuilt) < len(src) && ch.Data[len(ch.Data)-1] != '\n' {
				t.Fatalf("chunkBytes=%d: non-final chunk %d does not end on a line boundary", chunkBytes, ch.Index)
			}
			wantIndex++
			wantLine += bytes.Count(ch.Data, []byte{'\n'})
		}
		if string(rebuilt) != src {
			t.Fatalf("chunkBytes=%d: reassembled %d bytes, input %d", chunkBytes, len(rebuilt), len(src))
		}
	}
}
