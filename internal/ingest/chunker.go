// Package ingest is the parallel streaming ingest pipeline: it loads
// the N-Triples format of rdf.ReadGraph through a chunked reader and a
// decode worker pool, and compacts the result directly into the frozen
// or sharded CSR backend via rdf.GraphFromEncoded.
//
// The pipeline has three stages:
//
//  1. Chunking (sequential): the input — gzip-decompressed first if
//     the magic bytes match, since DEFLATE decompression is inherently
//     serial — is split into chunks that end on line boundaries, each
//     stamped with its index and the 1-based line number of its first
//     line.
//  2. Decode (parallel): a worker pool parses chunks independently.
//     Each worker interns IRIs into its own private dictionary, so the
//     hot interning path never takes a lock; a triple leaves the
//     worker encoded in worker-local IDs.
//  3. Merge/remap (sequential): the collector consumes decoded chunks
//     strictly in input order and rewrites worker-local IDs to global
//     ones through per-worker remap tables. A global ID is interned
//     lazily, on the first input-order use of the term — which makes
//     the global dictionary byte-identical (same strings, same IDs,
//     same order) to the one the sequential ReadGraph path would have
//     built. Dedup runs on the remapped encoded triples, exactly like
//     GraphBuilder.
//
// Because stage 3 reproduces the sequential dictionary and triple
// order exactly, the pipeline's output graph is indistinguishable from
// rdf.ReadGraph's: same insertion order, same IDs, same enumeration
// streams. That equivalence is pinned by tests and gated in E15's
// agree column.
package ingest

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"

	"wdsparql/internal/rdf"
)

// DefaultChunkBytes is the target chunk size: big enough that chunk
// hand-off overhead vanishes against parse cost, small enough that a
// worker pool sees work even on modest inputs.
const DefaultChunkBytes = 1 << 20

// Chunk is a run of whole input lines: Data always ends at a line
// boundary ('\n'-terminated, except possibly the final chunk of the
// input). StartLine is the 1-based line number of the first line, so
// workers can report absolute line numbers for parse errors.
type Chunk struct {
	Index     int
	StartLine int
	Data      []byte
}

// Chunker splits a byte stream into line-boundary chunks. It enforces
// the same per-line length bound as rdf.ReadGraphMaxLine, with the
// same error shape, so an overlong line fails identically on the
// sequential and parallel paths.
type Chunker struct {
	br         *bufio.Reader
	chunkBytes int
	maxLine    int
	index      int
	line       int // 1-based line number of the next chunk's first line
	curLine    int // bytes accumulated of the current (unterminated) line
	done       bool
}

// NewChunker wraps r (NOT gzip-sniffed: callers decompress first, see
// openReader). chunkBytes ≤ 0 means DefaultChunkBytes, maxLine ≤ 0
// means rdf.MaxLineLen.
func NewChunker(r io.Reader, chunkBytes, maxLine int) *Chunker {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if maxLine <= 0 {
		maxLine = rdf.MaxLineLen
	}
	return &Chunker{
		br:         bufio.NewReaderSize(r, 64*1024),
		chunkBytes: chunkBytes,
		maxLine:    maxLine,
		line:       1,
	}
}

// Next returns the next chunk. After the final chunk it returns a
// zero Chunk and io.EOF. Any other error aborts the chunking (read
// errors, or a line beyond the bound — reported with its absolute
// line number, like ReadGraph).
func (c *Chunker) Next() (Chunk, error) {
	if c.done {
		return Chunk{}, io.EOF
	}
	data := make([]byte, 0, c.chunkBytes+4096)
	for {
		frag, err := c.br.ReadSlice('\n')
		data = append(data, frag...)
		terminated := len(frag) > 0 && frag[len(frag)-1] == '\n'
		c.curLine += len(frag)
		if terminated {
			// The terminator itself is not counted against the bound,
			// matching readLine in the sequential reader.
			if c.curLine-1 > c.maxLine {
				c.done = true
				return Chunk{}, fmt.Errorf("rdf: line %d: line exceeds %d bytes",
					c.lineOf(data, len(data)-1), c.maxLine)
			}
			c.curLine = 0
		} else if c.curLine > c.maxLine {
			c.done = true
			return Chunk{}, fmt.Errorf("rdf: line %d: line exceeds %d bytes",
				c.lineOf(data, len(data)), c.maxLine)
		}
		switch err {
		case nil, bufio.ErrBufferFull:
			if terminated && len(data) >= c.chunkBytes {
				return c.emit(data), nil
			}
		case io.EOF:
			c.done = true
			if len(data) == 0 {
				return Chunk{}, io.EOF
			}
			return c.emit(data), nil
		default:
			c.done = true
			return Chunk{}, fmt.Errorf("rdf: read: %w", err)
		}
	}
}

// emit stamps the accumulated data as a chunk and advances the line
// cursor past it.
func (c *Chunker) emit(data []byte) Chunk {
	ch := Chunk{Index: c.index, StartLine: c.line, Data: data}
	c.index++
	c.line += bytes.Count(data, []byte{'\n'})
	return ch
}

// lineOf maps a byte offset in the pending chunk data to an absolute
// 1-based line number, for error reporting.
func (c *Chunker) lineOf(data []byte, off int) int {
	return c.line + bytes.Count(data[:off], []byte{'\n'})
}

// openReader prepares the input like rdf.ReadGraph: the two gzip magic
// bytes select transparent decompression (a short Peek means the input
// is shorter than a gzip header and cannot be gzip). close is non-nil
// when a decompressor was layered in.
func openReader(r io.Reader) (io.Reader, io.Closer, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, nil, fmt.Errorf("rdf: gzip input: %w", err)
		}
		return zr, zr, nil
	}
	return br, nil, nil
}
