// Package pebble implements the existential k-pebble game of Kolaitis
// and Vardi in the form used by the paper (Section 3): given a
// generalised t-graph (S, X), an RDF graph G and a mapping µ with
// dom(µ) = X, decide whether the Duplicator wins the game, written
// (S, X) →ᵏ_µ G.
//
// The decision procedure is the standard k-consistency closure: it
// maintains, for every set D of at most k free variables, the set of
// partial assignments D → dom(G) that are partial homomorphisms, and
// deletes an assignment when it cannot be extended to some further
// variable ("forth" condition) or when a superset assignment must be
// deleted (restriction closure). The Duplicator wins iff the empty
// assignment survives. The closure runs in time polynomial in
// (|vars(S)|·|dom(G)|)ᵏ for every fixed k (Proposition 2 of the
// paper); the pay-off, Proposition 3, is that →ᵏ coincides with →
// whenever the core of (S, X) has treewidth at most k−1.
package pebble

import (
	"fmt"
	"sort"

	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
)

// Decide reports whether (S, X) →ᵏ_µ G, i.e. whether the Duplicator
// wins the existential k-pebble game on (g.S, g.X), target and µ.
// k must be at least 2. µ must bind every distinguished variable of g
// that occurs in g.S.
func Decide(k int, g hom.GTGraph, mu rdf.Mapping, target *rdf.Graph) bool {
	if k < 2 {
		panic(fmt.Sprintf("pebble: k must be ≥ 2, got %d", k))
	}
	for _, x := range g.X {
		if !mu.Defined(x) {
			return false
		}
	}
	inst, ok := newInstance(k, g, mu, target)
	if !ok {
		// Some fully-instantiated triple of S is absent from G: even
		// the empty configuration is not a partial homomorphism.
		return false
	}
	if inst.n == 0 {
		// vars(S) \ X = ∅: by equation (1) of the paper the game
		// coincides with plain homomorphism, which the ground check
		// above has already verified.
		return true
	}
	return inst.run()
}

// Counters reports the size of the last closure computation; useful
// for the benchmark harness. It is returned by DecideStats.
type Counters struct {
	Assignments int // partial assignments enumerated
	Deleted     int // assignments deleted by the closure
	Win         bool
}

// DecideStats is Decide instrumented with counters.
func DecideStats(k int, g hom.GTGraph, mu rdf.Mapping, target *rdf.Graph) Counters {
	if k < 2 {
		panic(fmt.Sprintf("pebble: k must be ≥ 2, got %d", k))
	}
	for _, x := range g.X {
		if !mu.Defined(x) {
			return Counters{}
		}
	}
	inst, ok := newInstance(k, g, mu, target)
	if !ok {
		return Counters{}
	}
	if inst.n == 0 {
		return Counters{Win: true}
	}
	win := inst.run()
	return Counters{Assignments: inst.enumerated, Deleted: inst.deleted, Win: win}
}

// instance is one closure computation. Free variables are indexed
// 0..n-1 and domain values 0..d-1.
type instance struct {
	k       int
	n       int
	d       int
	varName []string             // free variable names by index
	values  []string             // domain IRIs by index
	target  *rdf.Graph           // G
	cand    [][]int32            // unary-pruned candidate values per variable
	triples []compiledTriple     // triples of S with ≥1 free variable
	byVars  map[uint64][]int     // triple indices whose free-var mask equals key... keyed by mask
	h       map[uint64]assignSet // D (bitmask) → surviving assignments

	enumerated int
	deleted    int

	queue []deletion
}

type deletion struct {
	mask uint64
	key  string
}

type assignSet map[string][]int32 // packed key → value vector (aligned with sorted var indices of mask)

type compiledTriple struct {
	// terms[i] ≥ 0: index of a free variable; otherwise ^valueIndex
	// for a constant (after µ-substitution), where valueIndex indexes
	// instance.values, or constMissing when the constant does not
	// occur in G at all.
	terms [3]int32
	mask  uint64 // bitmask of free variables occurring
}

const constMissing = int32(-1 << 30)

// newInstance compiles (S, X), µ and G. ok is false when a ground
// triple (under µ) is missing from G.
func newInstance(k int, g hom.GTGraph, mu rdf.Mapping, target *rdf.Graph) (*instance, bool) {
	sub := mu.ApplyAll(g.S)
	// Index the free variables.
	varIdx := map[string]int{}
	var varName []string
	for _, t := range sub {
		for _, v := range t.Vars() {
			if _, ok := varIdx[v.Value]; !ok {
				varIdx[v.Value] = len(varName)
				varName = append(varName, v.Value)
			}
		}
	}
	n := len(varName)
	if n > 64 {
		panic("pebble: more than 64 free variables is unsupported")
	}
	// Index the domain.
	dom := target.Dom()
	valIdx := make(map[string]int, len(dom))
	for i, v := range dom {
		valIdx[v] = i
	}
	inst := &instance{
		k:       k,
		n:       n,
		d:       len(dom),
		varName: varName,
		values:  dom,
		target:  target,
		h:       map[uint64]assignSet{},
		byVars:  map[uint64][]int{},
	}
	for _, t := range sub {
		if t.Ground() {
			if !target.Contains(t) {
				return nil, false
			}
			continue
		}
		ct := compiledTriple{}
		for i, term := range t.Terms() {
			if term.IsVar() {
				ct.terms[i] = int32(varIdx[term.Value])
				ct.mask |= 1 << uint(varIdx[term.Value])
			} else if vi, ok := valIdx[term.Value]; ok {
				ct.terms[i] = ^int32(vi)
			} else {
				ct.terms[i] = constMissing // constant absent from G
			}
		}
		inst.triples = append(inst.triples, ct)
		idx := len(inst.triples) - 1
		inst.byVars[ct.mask] = append(inst.byVars[ct.mask], idx)
	}
	inst.computeCandidates(sub)
	return inst, true
}

// computeCandidates derives per-variable candidate lists from the
// triples whose only free variable is that variable — exactly the
// constraints the game enforces on singleton configurations. All other
// variables get the full domain.
func (in *instance) computeCandidates(sub []rdf.Triple) {
	in.cand = make([][]int32, in.n)
	full := make([]int32, in.d)
	for i := range full {
		full[i] = int32(i)
	}
	for v := 0; v < in.n; v++ {
		mask := uint64(1) << uint(v)
		allowed := map[int32]bool{}
		first := true
		for _, ti := range in.byVars[mask] {
			ct := in.triples[ti]
			cur := map[int32]bool{}
			for a := 0; a < in.d; a++ {
				if in.tripleHolds(ct, map[int32]int32{int32(v): int32(a)}) {
					cur[int32(a)] = true
				}
			}
			if first {
				allowed, first = cur, false
			} else {
				for a := range allowed {
					if !cur[a] {
						delete(allowed, a)
					}
				}
			}
		}
		if first {
			in.cand[v] = full
			continue
		}
		lst := make([]int32, 0, len(allowed))
		for a := range allowed {
			lst = append(lst, a)
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		in.cand[v] = lst
	}
}

// tripleHolds checks whether the triple, with its free variables
// assigned per the given map (which must cover them all), is in G.
func (in *instance) tripleHolds(ct compiledTriple, assign map[int32]int32) bool {
	var terms [3]rdf.Term
	for i, code := range ct.terms {
		switch {
		case code == constMissing:
			return false
		case code >= 0:
			a, ok := assign[code]
			if !ok {
				return true // not fully covered: unconstrained
			}
			terms[i] = rdf.IRI(in.values[a])
		default:
			terms[i] = rdf.IRI(in.values[^code])
		}
	}
	return in.target.Contains(rdf.WithTerms(terms))
}

// run computes the closure and reports the winner.
func (in *instance) run() bool {
	in.buildSets()
	in.initialSweep()
	in.processQueue()
	empty, ok := in.h[0]
	return ok && len(empty) > 0
}

// varsOfMask returns the sorted variable indices of a mask.
func varsOfMask(mask uint64) []int32 {
	var out []int32
	for v := int32(0); mask != 0; v++ {
		if mask&1 != 0 {
			out = append(out, v)
		}
		mask >>= 1
	}
	return out
}

func packKey(values []int32) string {
	b := make([]byte, 0, len(values)*4)
	for _, v := range values {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// buildSets enumerates, for each variable subset D with |D| ≤ k, the
// assignments D → dom(G) that satisfy every triple fully inside D.
func (in *instance) buildSets() {
	var subsets []uint64
	var gen func(start int, mask uint64, size int)
	gen = func(start int, mask uint64, size int) {
		subsets = append(subsets, mask)
		if size == in.k {
			return
		}
		for v := start; v < in.n; v++ {
			gen(v+1, mask|1<<uint(v), size+1)
		}
	}
	gen(0, 0, 0)
	for _, mask := range subsets {
		in.h[mask] = in.enumerate(mask)
	}
}

// enumerate lists the consistent assignments for the variable set D.
func (in *instance) enumerate(mask uint64) assignSet {
	vars := varsOfMask(mask)
	out := assignSet{}
	assign := map[int32]int32{}
	vals := make([]int32, len(vars))
	// relevant triples: those whose free vars ⊆ mask.
	var constraints []compiledTriple
	for m, idxs := range in.byVars {
		if m&^mask == 0 {
			for _, i := range idxs {
				constraints = append(constraints, in.triples[i])
			}
		}
	}
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			in.enumerated++
			out[packKey(vals)] = append([]int32{}, vals...)
			return
		}
		v := vars[i]
		for _, a := range in.cand[v] {
			assign[v] = a
			ok := true
			for _, ct := range constraints {
				// Check only constraints now fully assigned that
				// involve v (avoid rechecking).
				if ct.mask&(1<<uint(v)) == 0 {
					continue
				}
				covered := true
				for _, vv := range varsOfMask(ct.mask) {
					if _, has := assign[vv]; !has {
						covered = false
						break
					}
				}
				if covered && !in.tripleHolds(ct, assign) {
					ok = false
					break
				}
			}
			if ok {
				vals[i] = a
				rec(i + 1)
			}
			delete(assign, v)
		}
	}
	rec(0)
	return out
}

// initialSweep applies the forth condition once to every assignment.
func (in *instance) initialSweep() {
	for mask, set := range in.h {
		if popcount(mask) >= in.k {
			continue
		}
		for key, vals := range set {
			if !in.extensible(mask, vals) {
				in.remove(mask, key)
			}
		}
	}
}

// extensible reports whether the assignment can be extended to every
// further variable.
func (in *instance) extensible(mask uint64, vals []int32) bool {
	vars := varsOfMask(mask)
	for x := int32(0); x < int32(in.n); x++ {
		if mask&(1<<uint(x)) != 0 {
			continue
		}
		if !in.hasExtension(mask, vars, vals, x) {
			return false
		}
	}
	return true
}

// hasExtension reports whether some value of x extends the assignment
// within the surviving family.
func (in *instance) hasExtension(mask uint64, vars []int32, vals []int32, x int32) bool {
	super := mask | 1<<uint(x)
	set, ok := in.h[super]
	if !ok {
		return false
	}
	// Position of x within the sorted vars of super.
	pos := 0
	for _, v := range vars {
		if v < x {
			pos++
		}
	}
	ext := make([]int32, len(vars)+1)
	copy(ext, vals[:pos])
	copy(ext[pos+1:], vals[pos:])
	for _, a := range in.cand[x] {
		ext[pos] = a
		if _, alive := set[packKey(ext)]; alive {
			return true
		}
	}
	return false
}

// remove deletes an assignment and enqueues the deletion for
// propagation.
func (in *instance) remove(mask uint64, key string) {
	set := in.h[mask]
	if _, ok := set[key]; !ok {
		return
	}
	delete(set, key)
	in.deleted++
	in.queue = append(in.queue, deletion{mask: mask, key: key})
}

// processQueue propagates deletions: upward (supersets of a deleted
// assignment violate restriction closure) and downward (restrictions
// may have lost their last extension witness).
func (in *instance) processQueue() {
	for len(in.queue) > 0 {
		d := in.queue[len(in.queue)-1]
		in.queue = in.queue[:len(in.queue)-1]
		vars := varsOfMask(d.mask)
		vals := unpackKey(d.key)

		// Upward: delete every superset assignment extending this one.
		if popcount(d.mask) < in.k {
			for y := int32(0); y < int32(in.n); y++ {
				if d.mask&(1<<uint(y)) != 0 {
					continue
				}
				super := d.mask | 1<<uint(y)
				pos := 0
				for _, v := range vars {
					if v < y {
						pos++
					}
				}
				ext := make([]int32, len(vars)+1)
				copy(ext, vals[:pos])
				copy(ext[pos+1:], vals[pos:])
				for _, a := range in.cand[y] {
					ext[pos] = a
					in.remove(super, packKey(ext))
				}
			}
		}

		// Downward: every restriction dropping one variable must be
		// rechecked for that variable.
		for i, y := range vars {
			subMask := d.mask &^ (1 << uint(y))
			subVals := make([]int32, 0, len(vals)-1)
			subVals = append(subVals, vals[:i]...)
			subVals = append(subVals, vals[i+1:]...)
			subKey := packKey(subVals)
			if _, alive := in.h[subMask][subKey]; !alive {
				continue
			}
			subVars := varsOfMask(subMask)
			if !in.hasExtension(subMask, subVars, subVals, y) {
				in.remove(subMask, subKey)
			}
		}
	}
}

func unpackKey(key string) []int32 {
	out := make([]int32, len(key)/4)
	for i := range out {
		out[i] = int32(key[i*4]) | int32(key[i*4+1])<<8 | int32(key[i*4+2])<<16 | int32(key[i*4+3])<<24
	}
	return out
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
