// Package pebble implements the existential k-pebble game of Kolaitis
// and Vardi in the form used by the paper (Section 3): given a
// generalised t-graph (S, X), an RDF graph G and a mapping µ with
// dom(µ) = X, decide whether the Duplicator wins the game, written
// (S, X) →ᵏ_µ G.
//
// The decision procedure is the standard k-consistency closure: it
// maintains, for every set D of at most k free variables, the set of
// partial assignments D → dom(G) that are partial homomorphisms, and
// deletes an assignment when it cannot be extended to some further
// variable ("forth" condition) or when a superset assignment must be
// deleted (restriction closure). The Duplicator wins iff the empty
// assignment survives. The closure runs in time polynomial in
// (|vars(S)|·|dom(G)|)ᵏ for every fixed k (Proposition 2 of the
// paper); the pay-off, Proposition 3, is that →ᵏ coincides with →
// whenever the core of (S, X) has treewidth at most k−1.
//
// The implementation is integer-native: the domain is the graph's
// dictionary-encoded dom(G), partial assignments are flat value
// vectors aligned with the sorted variable indices of their set D, and
// assignment-set keys are the vectors packed into a single uint64
// (bit-packed, k·⌈log₂ d⌉ ≤ 64) with a byte-string fallback for
// instances too large to pack. Triple membership checks run on encoded
// IDTriples against the graph's integer set.
package pebble

import (
	"fmt"
	"math/bits"

	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
)

// Decide reports whether (S, X) →ᵏ_µ G, i.e. whether the Duplicator
// wins the existential k-pebble game on (g.S, g.X), target and µ.
// k must be at least 2. µ must bind every distinguished variable of g
// that occurs in g.S.
func Decide(k int, g hom.GTGraph, mu rdf.Mapping, target *rdf.Graph) bool {
	if k < 2 {
		panic(fmt.Sprintf("pebble: k must be ≥ 2, got %d", k))
	}
	for _, x := range g.X {
		if !mu.Defined(x) {
			return false
		}
	}
	c, ok := newCompiled(k, g, mu, target)
	if !ok {
		// Some fully-instantiated triple of S is absent from G: even
		// the empty configuration is not a partial homomorphism.
		return false
	}
	if c.n == 0 {
		// vars(S) \ X = ∅: by equation (1) of the paper the game
		// coincides with plain homomorphism, which the ground check
		// above has already verified.
		return true
	}
	win, _, _ := c.run()
	return win
}

// Counters reports the size of the last closure computation; useful
// for the benchmark harness. It is returned by DecideStats.
type Counters struct {
	Assignments int // partial assignments enumerated
	Deleted     int // assignments deleted by the closure
	Win         bool
}

// DecideStats is Decide instrumented with counters.
func DecideStats(k int, g hom.GTGraph, mu rdf.Mapping, target *rdf.Graph) Counters {
	if k < 2 {
		panic(fmt.Sprintf("pebble: k must be ≥ 2, got %d", k))
	}
	for _, x := range g.X {
		if !mu.Defined(x) {
			return Counters{}
		}
	}
	c, ok := newCompiled(k, g, mu, target)
	if !ok {
		return Counters{}
	}
	if c.n == 0 {
		return Counters{Win: true}
	}
	win, enumerated, deleted := c.run()
	return Counters{Assignments: enumerated, Deleted: deleted, Win: win}
}

// compiled is one game instance compiled to integers. Free variables
// are indexed 0..n-1 and domain values 0..d-1.
type compiled struct {
	k       int
	n       int
	d       int
	varName []string         // free variable names by index
	valID   []rdf.TermID     // domain index → dictionary ID in target
	target  *rdf.Graph       // G
	cand    [][]int32        // unary-pruned candidate values per variable
	triples []compiledTriple // triples of S with ≥1 free variable
	byVars  map[uint64][]int // triple indices keyed by free-var mask
}

type compiledTriple struct {
	// terms[i] ≥ 0: index of a free variable; otherwise ^domainIndex
	// for a constant (after µ-substitution), where domainIndex indexes
	// compiled.valID, or constMissing when the constant does not occur
	// in G at all.
	terms [3]int32
	mask  uint64 // bitmask of free variables occurring
}

const constMissing = int32(-1 << 30)

// newCompiled compiles (S, X), µ and G. ok is false when a ground
// triple (under µ) is missing from G.
func newCompiled(k int, g hom.GTGraph, mu rdf.Mapping, target *rdf.Graph) (*compiled, bool) {
	sub := mu.ApplyAll(g.S)
	// Index the free variables.
	varIdx := map[string]int{}
	var varName []string
	for _, t := range sub {
		for _, v := range t.Vars() {
			if _, ok := varIdx[v.Value]; !ok {
				varIdx[v.Value] = len(varName)
				varName = append(varName, v.Value)
			}
		}
	}
	n := len(varName)
	if n > 64 {
		panic("pebble: more than 64 free variables is unsupported")
	}
	// Index the domain by dictionary ID.
	valID := target.DomIDs()
	idToIdx := make(map[rdf.TermID]int32, len(valID))
	for i, id := range valID {
		idToIdx[id] = int32(i)
	}
	c := &compiled{
		k:       k,
		n:       n,
		d:       len(valID),
		varName: varName,
		valID:   valID,
		target:  target,
		byVars:  map[uint64][]int{},
	}
	dict := target.Dict()
	for _, t := range sub {
		if t.Ground() {
			if !target.Contains(t) {
				return nil, false
			}
			continue
		}
		ct := compiledTriple{}
		for i, term := range t.Terms() {
			if term.IsVar() {
				ct.terms[i] = int32(varIdx[term.Value])
				ct.mask |= 1 << uint(varIdx[term.Value])
				continue
			}
			ct.terms[i] = constMissing // constant absent from G
			if id, ok := dict.LookupIRI(term.Value); ok {
				if vi, ok := idToIdx[id]; ok {
					ct.terms[i] = ^vi
				}
			}
		}
		c.triples = append(c.triples, ct)
		c.byVars[ct.mask] = append(c.byVars[ct.mask], len(c.triples)-1)
	}
	c.computeCandidates()
	return c, true
}

// tripleHolds checks whether the triple, with its free variables
// assigned per the slot array (−1 = unbound), is in G. Triples not
// fully covered by the assignment are unconstrained.
func (c *compiled) tripleHolds(ct compiledTriple, assign []int32) bool {
	var tr rdf.IDTriple
	for i, code := range ct.terms {
		switch {
		case code == constMissing:
			return false
		case code >= 0:
			a := assign[code]
			if a < 0 {
				return true // not fully covered: unconstrained
			}
			tr[i] = c.valID[a]
		default:
			tr[i] = c.valID[^code]
		}
	}
	return c.target.ContainsID(tr)
}

// computeCandidates derives per-variable candidate lists from the
// triples whose only free variable is that variable — exactly the
// constraints the game enforces on singleton configurations. All other
// variables get the full domain.
func (c *compiled) computeCandidates() {
	c.cand = make([][]int32, c.n)
	full := make([]int32, c.d)
	for i := range full {
		full[i] = int32(i)
	}
	assign := make([]int32, c.n)
	for i := range assign {
		assign[i] = -1
	}
	for v := 0; v < c.n; v++ {
		tris := c.byVars[uint64(1)<<uint(v)]
		if len(tris) == 0 {
			c.cand[v] = full
			continue
		}
		lst := make([]int32, 0, c.d)
		for a := int32(0); a < int32(c.d); a++ {
			assign[v] = a
			ok := true
			for _, ti := range tris {
				if !c.tripleHolds(c.triples[ti], assign) {
					ok = false
					break
				}
			}
			if ok {
				lst = append(lst, a)
			}
		}
		assign[v] = -1
		c.cand[v] = lst // ascending by construction
	}
}

// run computes the closure and reports the winner, choosing the
// densest key representation the instance fits in.
func (c *compiled) run() (win bool, enumerated, deleted int) {
	if b := bitsFor(c.d); c.k*b <= 64 {
		cl := &closure[uint64]{compiled: c, pack: packU64(b)}
		return cl.run(), cl.enumerated, cl.deleted
	}
	cl := &closure[string]{compiled: c, pack: packString}
	return cl.run(), cl.enumerated, cl.deleted
}

// bitsFor returns the number of bits needed to store a domain index in
// [0, d); at least 1 so that zero-length and singleton domains pack.
func bitsFor(d int) int {
	if d <= 1 {
		return 1
	}
	return bits.Len(uint(d - 1))
}

// packU64 packs a value vector into a uint64 key, shift-encoded with a
// fixed field width. Vectors of the same set D have the same length,
// and keys are only compared within one D, so the packing is injective
// where it needs to be.
func packU64(width int) func([]int32) uint64 {
	return func(vals []int32) uint64 {
		var key uint64
		for i, v := range vals {
			key |= uint64(uint32(v)) << (i * width)
		}
		return key
	}
}

// packString is the fallback key for instances whose vectors exceed 64
// packed bits.
func packString(vals []int32) string {
	b := make([]byte, 0, len(vals)*4)
	for _, v := range vals {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// assignSet maps packed keys to value vectors (aligned with the sorted
// variable indices of the set's mask).
type assignSet[K comparable] map[K][]int32

type deletion[K comparable] struct {
	mask uint64
	vals []int32
}

// closure runs the k-consistency computation over a compiled instance,
// generic in the packed key type.
type closure[K comparable] struct {
	*compiled
	pack     func([]int32) K
	h        map[uint64]assignSet[K] // D (bitmask) → surviving assignments
	maskVars map[uint64][]int32      // D → sorted variable indices
	queue    []deletion[K]
	ext      []int32 // scratch for extension probes
	sub      []int32 // scratch for restriction probes

	enumerated int
	deleted    int
}

func (c *closure[K]) run() bool {
	c.h = map[uint64]assignSet[K]{}
	c.maskVars = map[uint64][]int32{}
	c.ext = make([]int32, c.k+1)
	c.sub = make([]int32, c.k+1)
	c.buildSets()
	c.initialSweep()
	c.processQueue()
	return len(c.h[0]) > 0
}

// buildSets enumerates, for each variable subset D with |D| ≤ k, the
// assignments D → dom(G) that satisfy every triple fully inside D.
func (c *closure[K]) buildSets() {
	var vars []int32
	var gen func(start int, mask uint64)
	gen = func(start int, mask uint64) {
		c.maskVars[mask] = append([]int32(nil), vars...)
		c.h[mask] = c.enumerate(mask, c.maskVars[mask])
		if len(vars) == c.k {
			return
		}
		for v := start; v < c.n; v++ {
			vars = append(vars, int32(v))
			gen(v+1, mask|1<<uint(v))
			vars = vars[:len(vars)-1]
		}
	}
	gen(0, 0)
}

// enumerate lists the consistent assignments for the variable set D.
func (c *closure[K]) enumerate(mask uint64, vars []int32) assignSet[K] {
	out := assignSet[K]{}
	assign := make([]int32, c.n)
	for i := range assign {
		assign[i] = -1
	}
	vals := make([]int32, len(vars))
	// Relevant triples: those whose free vars ⊆ D.
	var constraints []compiledTriple
	for m, idxs := range c.byVars {
		if m&^mask == 0 {
			for _, i := range idxs {
				constraints = append(constraints, c.triples[i])
			}
		}
	}
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			c.enumerated++
			stored := append([]int32(nil), vals...)
			out[c.pack(stored)] = stored
			return
		}
		v := vars[i]
		vbit := uint64(1) << uint(v)
		for _, a := range c.cand[v] {
			assign[v] = a
			ok := true
			for _, ct := range constraints {
				// Check only constraints involving v that are now
				// fully assigned (avoid rechecking).
				if ct.mask&vbit == 0 {
					continue
				}
				covered := true
				for rem := ct.mask; rem != 0; rem &= rem - 1 {
					if assign[bits.TrailingZeros64(rem)] < 0 {
						covered = false
						break
					}
				}
				if covered && !c.tripleHolds(ct, assign) {
					ok = false
					break
				}
			}
			if ok {
				vals[i] = a
				rec(i + 1)
			}
			assign[v] = -1
		}
	}
	rec(0)
	return out
}

// initialSweep applies the forth condition once to every assignment.
func (c *closure[K]) initialSweep() {
	for mask, set := range c.h {
		if bits.OnesCount64(mask) >= c.k {
			continue
		}
		vars := c.maskVars[mask]
		for key, vals := range set {
			if !c.extensible(mask, vars, vals) {
				c.removeKey(mask, key)
			}
		}
	}
}

// extensible reports whether the assignment can be extended to every
// further variable.
func (c *closure[K]) extensible(mask uint64, vars, vals []int32) bool {
	for x := int32(0); x < int32(c.n); x++ {
		if mask&(1<<uint(x)) != 0 {
			continue
		}
		if !c.hasExtension(mask, vars, vals, x) {
			return false
		}
	}
	return true
}

// hasExtension reports whether some value of x extends the assignment
// within the surviving family.
func (c *closure[K]) hasExtension(mask uint64, vars, vals []int32, x int32) bool {
	set, ok := c.h[mask|1<<uint(x)]
	if !ok {
		return false
	}
	// Position of x within the sorted vars of the superset.
	pos := 0
	for _, v := range vars {
		if v < x {
			pos++
		}
	}
	ext := c.ext[:len(vars)+1]
	copy(ext, vals[:pos])
	copy(ext[pos+1:], vals[pos:])
	for _, a := range c.cand[x] {
		ext[pos] = a
		if _, alive := set[c.pack(ext)]; alive {
			return true
		}
	}
	return false
}

// removeKey deletes an assignment and enqueues the deletion for
// propagation. The stored value vector is reused for the queue entry,
// so no copy is made.
func (c *closure[K]) removeKey(mask uint64, key K) {
	set := c.h[mask]
	stored, ok := set[key]
	if !ok {
		return
	}
	delete(set, key)
	c.deleted++
	c.queue = append(c.queue, deletion[K]{mask: mask, vals: stored})
}

// processQueue propagates deletions: upward (supersets of a deleted
// assignment violate restriction closure) and downward (restrictions
// may have lost their last extension witness).
func (c *closure[K]) processQueue() {
	for len(c.queue) > 0 {
		d := c.queue[len(c.queue)-1]
		c.queue = c.queue[:len(c.queue)-1]
		vars := c.maskVars[d.mask]
		vals := d.vals

		// Upward: delete every superset assignment extending this one.
		if bits.OnesCount64(d.mask) < c.k {
			for y := int32(0); y < int32(c.n); y++ {
				if d.mask&(1<<uint(y)) != 0 {
					continue
				}
				super := d.mask | 1<<uint(y)
				pos := 0
				for _, v := range vars {
					if v < y {
						pos++
					}
				}
				ext := c.ext[:len(vars)+1]
				copy(ext, vals[:pos])
				copy(ext[pos+1:], vals[pos:])
				for _, a := range c.cand[y] {
					ext[pos] = a
					c.removeKey(super, c.pack(ext))
				}
			}
		}

		// Downward: every restriction dropping one variable must be
		// rechecked for that variable.
		for i, y := range vars {
			subMask := d.mask &^ (1 << uint(y))
			subVals := c.sub[:0]
			subVals = append(subVals, vals[:i]...)
			subVals = append(subVals, vals[i+1:]...)
			subKey := c.pack(subVals)
			if _, alive := c.h[subMask][subKey]; !alive {
				continue
			}
			if !c.hasExtension(subMask, c.maskVars[subMask], subVals, y) {
				c.removeKey(subMask, subKey)
			}
		}
	}
}
