package pebble

import (
	"fmt"
	"math/rand"
	"testing"

	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
)

// Property tests of the game-theoretic laws: monotonicity in the
// number of pebbles, the relaxation property with respect to →µ, and
// agreement of the ablation variant.

func randPattern(rng *rand.Rand, nvars, ntriples int) hom.TGraph {
	var ts []rdf.Triple
	vt := func() rdf.Term { return rdf.Var(fmt.Sprintf("v%d", rng.Intn(nvars))) }
	for i := 0; i < ntriples; i++ {
		ts = append(ts, rdf.T(vt(), rdf.IRI([]string{"p", "q"}[rng.Intn(2)]), vt()))
	}
	return hom.NewTGraph(ts...)
}

func randGraphData(rng *rand.Rand, nodes, triples int) *rdf.Graph {
	g := rdf.NewGraph()
	for i := 0; i < triples; i++ {
		g.AddTriple(
			fmt.Sprintf("d%d", rng.Intn(nodes)),
			[]string{"p", "q"}[rng.Intn(2)],
			fmt.Sprintf("d%d", rng.Intn(nodes)))
	}
	return g
}

// More pebbles make the Spoiler stronger: a win with k+1 pebbles
// implies a win with k pebbles.
func TestQuickMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 150; trial++ {
		pat := randPattern(rng, 2+rng.Intn(4), 2+rng.Intn(4))
		g := randGraphData(rng, 4, 8)
		gt := hom.NewGTGraph(pat, nil)
		win2 := Decide(2, gt, rdf.NewMapping(), g)
		win3 := Decide(3, gt, rdf.NewMapping(), g)
		win4 := Decide(4, gt, rdf.NewMapping(), g)
		if win3 && !win2 {
			t.Fatalf("trial %d: k=3 win but k=2 loss", trial)
		}
		if win4 && !win3 {
			t.Fatalf("trial %d: k=4 win but k=3 loss", trial)
		}
	}
}

// Relaxation: hom existence implies a Duplicator win for every k; and
// with k ≥ number of free variables the game is exact.
func TestQuickRelaxationAndExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 150; trial++ {
		pat := randPattern(rng, 2+rng.Intn(3), 2+rng.Intn(3))
		g := randGraphData(rng, 3, 7)
		gt := hom.NewGTGraph(pat, nil)
		homAns := hom.Exists(pat, g)
		nvars := len(pat.Vars())
		for k := 2; k <= 4; k++ {
			win := Decide(k, gt, rdf.NewMapping(), g)
			if homAns && !win {
				t.Fatalf("trial %d k=%d: hom exists but game lost", trial, k)
			}
			if k >= nvars && win != homAns {
				t.Fatalf("trial %d k=%d ≥ nvars=%d: game %v, hom %v", trial, k, nvars, win, homAns)
			}
		}
	}
}

// The ablation variant computes the same verdict.
func TestQuickNoUnaryPruningAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 120; trial++ {
		pat := randPattern(rng, 2+rng.Intn(3), 2+rng.Intn(4))
		g := randGraphData(rng, 4, 9)
		// Add a unary constraint: a triple with one variable and
		// constants, to exercise the pruning path.
		pat = pat.Union(hom.NewTGraph(rdf.T(rdf.Var("v0"), rdf.IRI("p"), rdf.IRI("d0"))))
		gt := hom.NewGTGraph(pat, nil)
		a := Decide(2, gt, rdf.NewMapping(), g)
		b := DecideNoUnaryPruning(2, gt, rdf.NewMapping(), g)
		if a != b {
			t.Fatalf("trial %d: pruned=%v unpruned=%v\npat=%s\nG=%s",
				trial, a, b, pat, rdf.FormatGraph(g))
		}
	}
}

// Distinguished variables + µ: the game with all variables
// distinguished degenerates to a ground check (equation (1)).
func TestQuickAllDistinguished(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 100; trial++ {
		pat := randPattern(rng, 2, 2)
		g := randGraphData(rng, 3, 6)
		x := pat.Vars()
		gt := hom.NewGTGraph(pat, x)
		mu := rdf.NewMapping()
		dom := g.Dom()
		if len(dom) == 0 {
			continue
		}
		for _, v := range x {
			mu[v.Value] = dom[rng.Intn(len(dom))]
		}
		want := true
		for _, tr := range pat {
			img := mu.Apply(tr)
			if !img.Ground() || !g.Contains(img) {
				want = false
				break
			}
		}
		if got := Decide(2, gt, mu, g); got != want {
			t.Fatalf("trial %d: ground game %v, want %v", trial, got, want)
		}
	}
}

// Missing µ bindings for distinguished variables fail closed.
func TestDecideMissingMu(t *testing.T) {
	pat := hom.NewTGraph(rdf.T(rdf.Var("x"), rdf.IRI("p"), rdf.Var("y")))
	gt := hom.NewGTGraph(pat, []rdf.Term{rdf.Var("x")})
	g := rdf.GraphOf(rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")))
	if Decide(2, gt, rdf.NewMapping(), g) {
		t.Fatal("missing distinguished binding must fail")
	}
}
