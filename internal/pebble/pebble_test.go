package pebble

import (
	"fmt"
	"math/rand"
	"testing"

	"wdsparql/internal/gen"
	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
)

func tp(s, p, o string) rdf.Triple {
	conv := func(x string) rdf.Term {
		if len(x) > 0 && x[0] == '?' {
			return rdf.Var(x)
		}
		return rdf.IRI(x)
	}
	return rdf.T(conv(s), conv(p), conv(o))
}

func TestDecideGroundOnly(t *testing.T) {
	g := rdf.GraphOf(tp("a", "p", "b"))
	mu := rdf.Mapping{"x": "a", "y": "b"}
	gt := hom.NewGTGraph(hom.NewTGraph(tp("?x", "p", "?y")),
		[]rdf.Term{rdf.Var("x"), rdf.Var("y")})
	if !Decide(2, gt, mu, g) {
		t.Fatal("fully instantiated triple in G: Duplicator wins trivially")
	}
	bad := rdf.Mapping{"x": "b", "y": "a"}
	if Decide(2, gt, bad, g) {
		t.Fatal("instantiated triple absent from G: even ∅ fails")
	}
}

func TestDecidePathQueries(t *testing.T) {
	// Path query into a path graph: exact match.
	g := rdf.GraphOf(tp("a", "p", "b"), tp("b", "p", "c"), tp("c", "p", "d"))
	pat := hom.NewTGraph(tp("?x", "p", "?y"), tp("?y", "p", "?z"))
	gt := hom.NewGTGraph(pat, nil)
	for k := 2; k <= 3; k++ {
		if !Decide(k, gt, rdf.NewMapping(), g) {
			t.Fatalf("k=%d: 2-path embeds into 3-path", k)
		}
	}
	long := hom.NewGTGraph(hom.NewTGraph(
		tp("?a", "p", "?b"), tp("?b", "p", "?c"), tp("?c", "p", "?d"), tp("?d", "p", "?e"),
	), nil)
	// Paths have ctw 1, so the 2-pebble game is exact (Prop. 3):
	// a 4-path does not embed into a 3-path.
	if Decide(2, long, rdf.NewMapping(), g) {
		t.Fatal("4-path must not 2-pebble-embed into 3-path (ctw=1 ⇒ exact)")
	}
}

// Property (2) of the paper: →µ implies →µk for every k ≥ 2 (the game
// is a relaxation). Randomized.
func TestRelaxationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		pat, g := randomInstance(rng)
		gt := hom.NewGTGraph(pat, nil)
		if hom.Exists(pat, g) {
			for k := 2; k <= 3; k++ {
				if !Decide(k, gt, rdf.NewMapping(), g) {
					t.Fatalf("trial %d: hom exists but %d-pebble game lost\npat=%s\nG=%s",
						trial, k, pat, rdf.FormatGraph(g))
				}
			}
		}
	}
}

// Proposition 3: when ctw(S, X) ≤ k − 1, →µk coincides with →µ.
// Randomized over tree-shaped (ctw ≤ 1) and cycle-shaped (ctw ≤ 2)
// patterns.
func TestProposition3Agreement(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		pat := randomTreePattern(rng)
		g := randomData(rng, 5, 12)
		gt := hom.NewGTGraph(pat, nil)
		want := hom.Exists(pat, g)
		// Tree-shaped patterns have tw ≤ 1, so ctw ≤ 1 ≤ k−1 for k=2.
		if got := Decide(2, gt, rdf.NewMapping(), g); got != want {
			t.Fatalf("trial %d: pebble(2)=%v hom=%v\npat=%s\nG=%s",
				trial, got, want, pat, rdf.FormatGraph(g))
		}
	}
	// Cycles have tw 2: the 3-pebble game is exact on them.
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(3)
		var ts []rdf.Triple
		for i := 0; i < n; i++ {
			ts = append(ts, tp(fmt.Sprintf("?c%d", i), "p", fmt.Sprintf("?c%d", (i+1)%n)))
		}
		pat := hom.NewTGraph(ts...)
		g := randomData(rng, 4, 10)
		gt := hom.NewGTGraph(pat, nil)
		want := hom.Exists(pat, g)
		if got := Decide(3, gt, rdf.NewMapping(), g); got != want {
			t.Fatalf("cycle trial %d (n=%d): pebble(3)=%v hom=%v\nG=%s",
				trial, n, got, want, rdf.FormatGraph(g))
		}
	}
}

// The classic separation: the k-clique query on a (k−1)-partite Turán
// graph loses the homomorphism but can win the 2-pebble game — the
// relaxation is strict on high-treewidth patterns.
func TestStrictRelaxationOnCliques(t *testing.T) {
	k := 4
	pat := hom.NewTGraph(gen.KkTriples(k)...)
	g := gen.Turan(12, k-1, "r")
	gt := hom.NewGTGraph(pat, nil)
	if hom.Exists(pat, g) {
		t.Fatal("Turán graph T(12,3) must not contain K4")
	}
	if !Decide(2, gt, rdf.NewMapping(), g) {
		t.Fatal("2-pebble game should be fooled by T(12,3) on the K4 query")
	}
}

// Distinguished variables: the game must honour µ.
func TestDecideHonoursMu(t *testing.T) {
	g := rdf.GraphOf(tp("a", "p", "b"), tp("b", "q", "c"), tp("x", "q", "y"))
	pat := hom.NewTGraph(tp("?s", "p", "?t"), tp("?t", "q", "?u"))
	gt := hom.NewGTGraph(pat, []rdf.Term{rdf.Var("s")})
	if !Decide(2, gt, rdf.Mapping{"s": "a"}, g) {
		t.Fatal("µ(s)=a admits the extension t=b, u=c")
	}
	if Decide(2, gt, rdf.Mapping{"s": "b"}, g) {
		t.Fatal("µ(s)=b has no p-successor")
	}
}

// Statistics plumbing.
func TestDecideStats(t *testing.T) {
	g := rdf.GraphOf(tp("a", "p", "b"), tp("b", "p", "c"))
	pat := hom.NewTGraph(tp("?x", "p", "?y"), tp("?y", "p", "?z"))
	st := DecideStats(2, hom.NewGTGraph(pat, nil), rdf.NewMapping(), g)
	if !st.Win {
		t.Fatal("expected win")
	}
	if st.Assignments == 0 {
		t.Fatal("expected some enumerated assignments")
	}
}

func TestDecidePanicsOnSmallK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k < 2")
		}
	}()
	Decide(1, hom.NewGTGraph(nil, nil), rdf.NewMapping(), rdf.NewGraph())
}

func randomInstance(rng *rand.Rand) (hom.TGraph, *rdf.Graph) {
	nvars := 3 + rng.Intn(3)
	nt := 2 + rng.Intn(4)
	var ts []rdf.Triple
	for i := 0; i < nt; i++ {
		ts = append(ts, tp(
			fmt.Sprintf("?v%d", rng.Intn(nvars)),
			[]string{"p", "q"}[rng.Intn(2)],
			fmt.Sprintf("?v%d", rng.Intn(nvars)),
		))
	}
	return hom.NewTGraph(ts...), randomData(rng, 4, 10)
}

func randomTreePattern(rng *rand.Rand) hom.TGraph {
	n := 2 + rng.Intn(4)
	var ts []rdf.Triple
	for i := 1; i <= n; i++ {
		parent := rng.Intn(i)
		ts = append(ts, tp(
			fmt.Sprintf("?t%d", parent),
			[]string{"p", "q"}[rng.Intn(2)],
			fmt.Sprintf("?t%d", i),
		))
	}
	return hom.NewTGraph(ts...)
}

func randomData(rng *rand.Rand, nodes, triples int) *rdf.Graph {
	g := rdf.NewGraph()
	for i := 0; i < triples; i++ {
		g.AddTriple(
			fmt.Sprintf("d%d", rng.Intn(nodes)),
			[]string{"p", "q"}[rng.Intn(2)],
			fmt.Sprintf("d%d", rng.Intn(nodes)),
		)
	}
	return g
}
