package pebble

import (
	"fmt"

	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
)

// DecideNoUnaryPruning is Decide with the unary candidate pruning
// disabled: every variable's candidate list is the full domain of G.
// The closure reaches the same fixpoint (singleton constraints are
// still enforced during enumeration), so verdicts are identical; the
// variant exists to quantify the pruning's effect in the ablation
// benchmarks and must not be used in production paths.
func DecideNoUnaryPruning(k int, g hom.GTGraph, mu rdf.Mapping, target *rdf.Graph) bool {
	if k < 2 {
		panic(fmt.Sprintf("pebble: k must be ≥ 2, got %d", k))
	}
	for _, x := range g.X {
		if !mu.Defined(x) {
			return false
		}
	}
	c, ok := newCompiled(k, g, mu, target)
	if !ok {
		return false
	}
	if c.n == 0 {
		return true
	}
	full := make([]int32, c.d)
	for i := range full {
		full[i] = int32(i)
	}
	for v := range c.cand {
		c.cand[v] = full
	}
	win, _, _ := c.run()
	return win
}
