package pebble

import (
	"fmt"
	"math/rand"
	"testing"

	"wdsparql/internal/hom"
	"wdsparql/internal/rdf"
)

// Direct tests of Proposition 4, the two composition laws of the
// existential pebble game the Theorem 1 proof rests on.

// Item (1): if (S1, X) → (S2, X) and (S2, X) →µk G then (S1, X) →µk G.
func TestQuickProp4Item1(t *testing.T) {
	rng := rand.New(rand.NewSource(197))
	for trial := 0; trial < 120; trial++ {
		s2 := randPattern(rng, 3, 3)
		// Build S1 as a homomorphic preimage: rename variables of S2
		// (possibly merging) and drop some triples — then S1 → S2 by
		// construction.
		ren := map[string]string{}
		for _, v := range s2.Vars() {
			ren[v.Value] = fmt.Sprintf("v%d", rng.Intn(3))
		}
		var s1Triples []rdf.Triple
		for _, tr := range s2 {
			if rng.Intn(4) == 0 {
				continue
			}
			conv := func(x rdf.Term) rdf.Term {
				if x.IsVar() {
					return rdf.Var(ren[x.Value])
				}
				return x
			}
			s1Triples = append(s1Triples, rdf.T(conv(tr.S), conv(tr.P), conv(tr.O)))
		}
		if len(s1Triples) == 0 {
			continue
		}
		// Here the renaming maps S1-variables into S2-variables, i.e.
		// the hom goes S1 → S2 when we read s1 over the renamed names.
		s1 := hom.NewTGraph(s1Triples...)
		g1 := hom.NewGTGraph(s1, nil)
		g2 := hom.NewGTGraph(s2, nil)
		if !hom.Hom(g1, g2) {
			// Renaming direction: ren maps old names to new; the hom
			// S1 → S2 requires the inverse. Skip trials where the
			// construction does not yield a hom (merging can break it
			// only in the inverse direction; verify explicitly).
			continue
		}
		g := randGraphData(rng, 4, 8)
		for k := 2; k <= 3; k++ {
			if Decide(k, g2, rdf.NewMapping(), g) && !Decide(k, g1, rdf.NewMapping(), g) {
				t.Fatalf("trial %d k=%d: Prop 4(1) violated\nS1=%s\nS2=%s\nG=%s",
					trial, k, s1, s2, rdf.FormatGraph(g))
			}
		}
	}
}

// Item (2): if (Si, X) →µk G for all i and the Si share no free
// variables, then (S1 ∪ ... ∪ Sℓ, X) →µk G.
func TestQuickProp4Item2(t *testing.T) {
	rng := rand.New(rand.NewSource(199))
	for trial := 0; trial < 100; trial++ {
		g := randGraphData(rng, 4, 9)
		var parts []hom.TGraph
		var all []rdf.Triple
		for i := 0; i < 2+rng.Intn(2); i++ {
			// Distinct variable namespaces per part.
			var ts []rdf.Triple
			vt := func() rdf.Term { return rdf.Var(fmt.Sprintf("p%d_%d", i, rng.Intn(3))) }
			for j := 0; j < 1+rng.Intn(3); j++ {
				ts = append(ts, rdf.T(vt(), rdf.IRI([]string{"p", "q"}[rng.Intn(2)]), vt()))
			}
			part := hom.NewTGraph(ts...)
			parts = append(parts, part)
			all = append(all, part...)
		}
		for k := 2; k <= 3; k++ {
			allWin := true
			for _, part := range parts {
				if !Decide(k, hom.NewGTGraph(part, nil), rdf.NewMapping(), g) {
					allWin = false
					break
				}
			}
			if allWin {
				union := hom.NewGTGraph(hom.NewTGraph(all...), nil)
				if !Decide(k, union, rdf.NewMapping(), g) {
					t.Fatalf("trial %d k=%d: Prop 4(2) violated\nparts=%v\nG=%s",
						trial, k, parts, rdf.FormatGraph(g))
				}
			}
		}
	}
}
