package graphalg

import (
	"math/rand"
	"testing"
)

func randGraph(rng *rand.Rand, n int, p float64) *UGraph {
	g := NewUGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Treewidth is monotone under subgraphs (removing edges cannot raise
// it) and bounded by n−1.
func TestQuickTreewidthMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(6)
		g := randGraph(rng, n, 0.5)
		w, exact := Treewidth(g)
		if !exact {
			t.Fatalf("trial %d: inexact on n=%d", trial, n)
		}
		if w > n-1 {
			t.Fatalf("trial %d: tw=%d > n-1", trial, w)
		}
		// Remove a random edge.
		edges := g.Edges()
		if len(edges) == 0 {
			continue
		}
		e := edges[rng.Intn(len(edges))]
		h := NewUGraph(n)
		for _, f := range edges {
			if f != e {
				h.AddEdge(f[0], f[1])
			}
		}
		w2, _ := Treewidth(h)
		if w2 > w {
			t.Fatalf("trial %d: removing edge raised tw %d -> %d", trial, w, w2)
		}
	}
}

// Every heuristic decomposition verifies and its width bounds the
// exact treewidth from above; the MMD lower bound from below.
func TestQuickDecompositionSound(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(8)
		g := randGraph(rng, n, 0.4)
		td, ub := HeuristicDecomposition(g)
		if err := td.Verify(g); err != nil {
			t.Fatalf("trial %d: decomposition invalid: %v", trial, err)
		}
		if td.Width() != ub {
			t.Fatalf("trial %d: reported width mismatch", trial)
		}
		w, exact := Treewidth(g)
		if !exact {
			continue
		}
		lb := TreewidthLowerBound(g)
		if !(lb <= w && w <= ub) {
			t.Fatalf("trial %d: lb=%d tw=%d ub=%d", trial, lb, w, ub)
		}
	}
}

// A decomposition from a random elimination order is always valid
// (the fill-in construction is correct for any order), and its width
// is an upper bound.
func TestQuickDecompositionFromRandomOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(8)
		g := randGraph(rng, n, 0.5)
		order := rng.Perm(n)
		td := DecompositionFromOrder(g, order)
		if err := td.Verify(g); err != nil {
			t.Fatalf("trial %d: %v\norder=%v edges=%v", trial, err, order, g.Edges())
		}
		w, exact := Treewidth(g)
		if exact && td.Width() < w {
			t.Fatalf("trial %d: decomposition width %d below tw %d", trial, td.Width(), w)
		}
	}
}

func TestDecompositionKnownShapes(t *testing.T) {
	// Path: heuristic is optimal (width 1).
	td, w := HeuristicDecomposition(Path(8))
	if w != 1 {
		t.Fatalf("path width: %d", w)
	}
	if err := td.Verify(Path(8)); err != nil {
		t.Fatal(err)
	}
	// Clique: width n−1.
	_, w = HeuristicDecomposition(Clique(5))
	if w != 4 {
		t.Fatalf("K5 width: %d", w)
	}
	// Empty graph.
	td = DecompositionFromOrder(NewUGraph(0), nil)
	if err := td.Verify(NewUGraph(0)); err != nil {
		t.Fatal(err)
	}
	// Disconnected graph.
	g := NewUGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	td, _ = HeuristicDecomposition(g)
	if err := td.Verify(g); err != nil {
		t.Fatal(err)
	}
}

// HasClique agrees with a spec that checks all C(n,k) subsets.
func TestQuickHasCliqueAgainstSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(5)
		g := randGraph(rng, n, 0.5)
		for k := 2; k <= 4; k++ {
			want := specHasClique(g, k)
			if got := HasClique(g, k); got != want {
				t.Fatalf("trial %d k=%d: got %v want %v (edges %v)", trial, k, got, want, g.Edges())
			}
		}
	}
}

func specHasClique(g *UGraph, k int) bool {
	n := g.N()
	var cur []int
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(cur) == k {
			return g.IsCliqueOn(cur)
		}
		for v := start; v < n; v++ {
			cur = append(cur, v)
			if g.IsCliqueOn(cur) && rec(v+1) {
				return true
			}
			cur = cur[:len(cur)-1]
		}
		return false
	}
	return rec(0)
}
