package graphalg

import (
	"fmt"
)

// This file provides minor maps from (k × K)-grids onto host graphs,
// the γ of the paper's Lemma 2 / Appendix 7.1. A minor map γ assigns
// to each grid vertex (i, p) a non-empty connected set γ(i, p) of host
// vertices such that distinct grid vertices get disjoint sets and
// every grid edge is witnessed by a host edge between the two sets;
// "onto" additionally requires the sets to cover every host vertex.
//
// Finding grid minors in arbitrary graphs is the business of the
// Excluded Grid Theorem, whose bounds are galactic; the reduction of
// internal/reduction only ever consumes a minor map, so we provide
// exact constructions for the two host families the benchmark uses —
// grids and cliques — plus a verifier used in tests.

// MinorMap maps each vertex (i, p) of a (k × K)-grid — 1-based, i is
// the row in [1, k], p the column in [1, K] — to a set of host
// vertices. It is the γ of Lemma 2.
type MinorMap struct {
	K, Cols int // grid dimensions: K rows? see below
	// Parts[i-1][p-1] is γ(i, p).
	Parts [][][]int
}

// NewMinorMap allocates an empty (rows × cols)-grid minor map.
func NewMinorMap(rows, cols int) *MinorMap {
	parts := make([][][]int, rows)
	for i := range parts {
		parts[i] = make([][]int, cols)
	}
	return &MinorMap{K: rows, Cols: cols, Parts: parts}
}

// Rows returns the number of grid rows (the k of the (k × K)-grid).
func (m *MinorMap) Rows() int { return m.K }

// Part returns γ(i, p) for 1-based grid coordinates.
func (m *MinorMap) Part(i, p int) []int { return m.Parts[i-1][p-1] }

// PositionOf returns the grid coordinates (i, p) whose part contains
// the host vertex v, exploiting disjointness. ok is false if v is in
// no part.
func (m *MinorMap) PositionOf(v int) (i, p int, ok bool) {
	for ri := range m.Parts {
		for ci := range m.Parts[ri] {
			for _, u := range m.Parts[ri][ci] {
				if u == v {
					return ri + 1, ci + 1, true
				}
			}
		}
	}
	return 0, 0, false
}

// Verify checks that m is a minor map from the (rows × cols)-grid onto
// the host graph: parts non-empty, connected, pairwise disjoint,
// covering, and grid-edge adjacency witnessed.
func (m *MinorMap) Verify(host *UGraph) error {
	seen := map[int]bool{}
	for i := 1; i <= m.K; i++ {
		for p := 1; p <= m.Cols; p++ {
			part := m.Part(i, p)
			if len(part) == 0 {
				return fmt.Errorf("graphalg: empty part γ(%d,%d)", i, p)
			}
			for _, v := range part {
				if v < 0 || v >= host.N() {
					return fmt.Errorf("graphalg: part γ(%d,%d) contains invalid vertex %d", i, p, v)
				}
				if seen[v] {
					return fmt.Errorf("graphalg: vertex %d appears in two parts", v)
				}
				seen[v] = true
			}
			sub, _ := host.InducedSubgraph(part)
			if !sub.IsConnected() {
				return fmt.Errorf("graphalg: part γ(%d,%d) is not connected", i, p)
			}
		}
	}
	if len(seen) != host.N() {
		return fmt.Errorf("graphalg: minor map is not onto (%d of %d vertices covered)", len(seen), host.N())
	}
	// Grid edges: (i,p)–(i,p+1) and (i,p)–(i+1,p).
	check := func(a, b []int, i1, p1, i2, p2 int) error {
		for _, u := range a {
			for _, v := range b {
				if host.HasEdge(u, v) {
					return nil
				}
			}
		}
		return fmt.Errorf("graphalg: no host edge between γ(%d,%d) and γ(%d,%d)", i1, p1, i2, p2)
	}
	for i := 1; i <= m.K; i++ {
		for p := 1; p <= m.Cols; p++ {
			if p+1 <= m.Cols {
				if err := check(m.Part(i, p), m.Part(i, p+1), i, p, i, p+1); err != nil {
					return err
				}
			}
			if i+1 <= m.K {
				if err := check(m.Part(i, p), m.Part(i+1, p), i, p, i+1, p); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// GridMinorOntoGrid builds a minor map from the (k × K)-grid onto the
// (hostRows × hostCols)-grid by partitioning the host rows into k
// consecutive bands and the host columns into K consecutive bands;
// γ(i, p) is the sub-grid band(i) × band(p), which is connected. The
// construction requires hostRows ≥ k and hostCols ≥ K.
func GridMinorOntoGrid(hostRows, hostCols, k, K int) (*MinorMap, error) {
	if hostRows < k || hostCols < K {
		return nil, fmt.Errorf("graphalg: host grid %dx%d too small for %dx%d minor", hostRows, hostCols, k, K)
	}
	rowBands := bands(hostRows, k)
	colBands := bands(hostCols, K)
	m := NewMinorMap(k, K)
	for i := 1; i <= k; i++ {
		for p := 1; p <= K; p++ {
			var part []int
			for _, r := range rowBands[i-1] {
				for _, c := range colBands[p-1] {
					part = append(part, GridID(r, c, hostCols))
				}
			}
			m.Parts[i-1][p-1] = part
		}
	}
	return m, nil
}

// GridMinorOntoClique builds a minor map from the (k × K)-grid onto
// the clique K_n (n ≥ k·K): the n vertices are partitioned into k·K
// consecutive chunks; any partition works because every pair of clique
// vertices is adjacent and every non-empty subset is connected.
func GridMinorOntoClique(n, k, K int) (*MinorMap, error) {
	if n < k*K {
		return nil, fmt.Errorf("graphalg: clique K_%d too small for %dx%d minor", n, k, K)
	}
	chunks := bands(n, k*K)
	m := NewMinorMap(k, K)
	idx := 0
	for i := 1; i <= k; i++ {
		for p := 1; p <= K; p++ {
			m.Parts[i-1][p-1] = chunks[idx]
			idx++
		}
	}
	return m, nil
}

// bands partitions 0..n-1 into parts non-empty consecutive runs of
// near-equal size.
func bands(n, parts int) [][]int {
	out := make([][]int, parts)
	base, extra := n/parts, n%parts
	v := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < extra {
			size++
		}
		for j := 0; j < size; j++ {
			out[i] = append(out[i], v)
			v++
		}
	}
	return out
}

// PairBijection fixes the bijection ρ between {1, ..., C(k,2)} and the
// unordered pairs of {1, ..., k} used throughout Section 4.2 of the
// paper: pairs are enumerated lexicographically, ρ(1) = {1,2},
// ρ(2) = {1,3}, and so on.
type PairBijection struct {
	k     int
	pairs [][2]int
}

// NewPairBijection builds ρ for the given k ≥ 2.
func NewPairBijection(k int) *PairBijection {
	var pairs [][2]int
	for i := 1; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return &PairBijection{k: k, pairs: pairs}
}

// K returns C(k, 2), the number of pairs.
func (b *PairBijection) K() int { return len(b.pairs) }

// Pair returns ρ(p) for 1-based p.
func (b *PairBijection) Pair(p int) (int, int) {
	pr := b.pairs[p-1]
	return pr[0], pr[1]
}

// Contains reports i ∈ ρ(p), the paper's "i ∈ p".
func (b *PairBijection) Contains(p, i int) bool {
	a, c := b.Pair(p)
	return i == a || i == c
}
