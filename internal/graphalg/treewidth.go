package graphalg

import (
	"math/bits"
)

// This file computes treewidth. The graphs whose treewidth the paper
// needs are Gaifman graphs of (cores of) query patterns, which are
// small; we therefore provide an exact algorithm — the classic dynamic
// program over vertex subsets of Bodlaender et al. ("On exact
// algorithms for treewidth"), based on elimination orderings — for
// graphs of up to MaxExactVertices vertices, together with the
// min-fill and min-degree elimination heuristics (upper bounds) and
// the maximum-minimum-degree lower bound used to confirm heuristic
// optimality on larger inputs.

// MaxExactVertices bounds the component size for which the exact
// subset dynamic program is attempted (2^n states).
const MaxExactVertices = 22

// Treewidth returns the exact treewidth of g, provided every connected
// component has at most MaxExactVertices vertices; otherwise it falls
// back to the best heuristic upper bound and reports exact=false.
// The treewidth of an empty or edgeless graph is 0 under the standard
// definition used here (the paper's tw(S,X) convention of reporting 1
// in that case is applied by the width package).
func Treewidth(g *UGraph) (width int, exact bool) {
	if g.n == 0 {
		return 0, true
	}
	width, exact = 0, true
	for _, comp := range g.Components() {
		sub, _ := g.InducedSubgraph(comp)
		w, ex := componentTreewidth(sub)
		if w > width {
			width = w
		}
		exact = exact && ex
	}
	return width, exact
}

// TreewidthUpperBound returns the min over the min-fill and min-degree
// heuristic elimination orders.
func TreewidthUpperBound(g *UGraph) int {
	a := eliminationWidth(g, pickMinFill)
	b := eliminationWidth(g, pickMinDegree)
	if b < a {
		a = b
	}
	return a
}

// TreewidthLowerBound returns the maximum-minimum-degree (degeneracy)
// lower bound: the largest d such that some subgraph has minimum
// degree ≥ d.
func TreewidthLowerBound(g *UGraph) int {
	// Repeatedly remove a minimum-degree vertex; the answer is the
	// maximum of the minimum degrees seen.
	adj := make([]map[int]bool, g.n)
	for v := 0; v < g.n; v++ {
		adj[v] = map[int]bool{}
		for u := range g.adj[v] {
			adj[v][u] = true
		}
	}
	alive := map[int]bool{}
	for v := 0; v < g.n; v++ {
		alive[v] = true
	}
	best := 0
	for len(alive) > 0 {
		minV, minD := -1, -1
		for v := range alive {
			if minV == -1 || len(adj[v]) < minD {
				minV, minD = v, len(adj[v])
			}
		}
		if minD > best {
			best = minD
		}
		for u := range adj[minV] {
			delete(adj[u], minV)
		}
		delete(alive, minV)
	}
	return best
}

func componentTreewidth(g *UGraph) (int, bool) {
	if g.n <= 1 {
		return 0, true
	}
	ub := TreewidthUpperBound(g)
	lb := TreewidthLowerBound(g)
	if lb == ub {
		return ub, true
	}
	if g.n > MaxExactVertices {
		return ub, false
	}
	return exactTreewidthDP(g, lb, ub), true
}

// exactTreewidthDP runs the O(2^n · n²) dynamic program over subsets:
// tw(G) = min over elimination orders of the max elimination degree,
// where f(S) is the best width eliminating exactly the vertices of S
// first and the elimination degree of v after S is the number of
// vertices outside S∪{v} reachable from v through S.
func exactTreewidthDP(g *UGraph, lb, ub int) int {
	n := g.n
	full := uint32(1)<<n - 1
	const inf = int32(1 << 30)
	f := make([]int32, full+1)
	for i := range f {
		f[i] = inf
	}
	f[0] = 0
	// Iterate subsets in increasing popcount order implicitly: any
	// order where S\{v} < S numerically works because S\{v} < S for
	// v ∈ S.
	for s := uint32(1); s <= full; s++ {
		bestVal := inf
		rem := s
		for rem != 0 {
			v := bits.TrailingZeros32(rem)
			rem &= rem - 1
			prev := f[s&^(1<<v)]
			if prev >= inf {
				continue
			}
			q := int32(eliminationDegree(g, s&^(1<<uint(v)), v))
			val := prev
			if q > val {
				val = q
			}
			if val < bestVal {
				bestVal = val
			}
		}
		f[s] = bestVal
		if s == full {
			break
		}
	}
	w := int(f[full])
	if w < lb {
		w = lb
	}
	if w > ub {
		w = ub
	}
	return w
}

// eliminationDegree counts the vertices outside eliminated∪{v} that v
// reaches via paths whose interior lies in the eliminated set.
func eliminationDegree(g *UGraph, eliminated uint32, v int) int {
	seen := uint32(1) << uint(v)
	stack := []int{v}
	count := 0
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for u := range g.adj[x] {
			bit := uint32(1) << uint(u)
			if seen&bit != 0 {
				continue
			}
			seen |= bit
			if eliminated&bit != 0 {
				stack = append(stack, u)
			} else {
				count++
			}
		}
	}
	return count
}

// eliminationWidth simulates eliminating vertices chosen by pick,
// connecting the neighbourhood of each eliminated vertex into a
// clique, and returns the maximum elimination degree encountered.
func eliminationWidth(g *UGraph, pick func(adj []map[int]bool, alive map[int]bool) int) int {
	adj := make([]map[int]bool, g.n)
	for v := 0; v < g.n; v++ {
		adj[v] = map[int]bool{}
		for u := range g.adj[v] {
			adj[v][u] = true
		}
	}
	alive := map[int]bool{}
	for v := 0; v < g.n; v++ {
		alive[v] = true
	}
	width := 0
	for len(alive) > 0 {
		v := pick(adj, alive)
		if len(adj[v]) > width {
			width = len(adj[v])
		}
		nbrs := make([]int, 0, len(adj[v]))
		for u := range adj[v] {
			nbrs = append(nbrs, u)
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				adj[nbrs[i]][nbrs[j]] = true
				adj[nbrs[j]][nbrs[i]] = true
			}
		}
		for _, u := range nbrs {
			delete(adj[u], v)
		}
		delete(alive, v)
	}
	return width
}

func pickMinDegree(adj []map[int]bool, alive map[int]bool) int {
	best, bestD := -1, -1
	for v := range alive {
		if best == -1 || len(adj[v]) < bestD || (len(adj[v]) == bestD && v < best) {
			best, bestD = v, len(adj[v])
		}
	}
	return best
}

func pickMinFill(adj []map[int]bool, alive map[int]bool) int {
	best, bestFill := -1, -1
	for v := range alive {
		nbrs := make([]int, 0, len(adj[v]))
		for u := range adj[v] {
			nbrs = append(nbrs, u)
		}
		fill := 0
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if !adj[nbrs[i]][nbrs[j]] {
					fill++
				}
			}
		}
		if best == -1 || fill < bestFill || (fill == bestFill && v < best) {
			best, bestFill = v, fill
		}
	}
	return best
}
