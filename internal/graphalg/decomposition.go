package graphalg

import (
	"fmt"
	"sort"
)

// This file materialises tree decompositions (not only their width):
// the paper's Section 3 defines treewidth via decompositions, and the
// test suite verifies the decomposition axioms directly — vertex
// coverage, edge coverage, and connectedness of every vertex's bag set.

// TreeDecomposition is a tree decomposition (F, β): Bags[i] is β of
// tree node i, and Edges are the tree edges between bag indices.
type TreeDecomposition struct {
	Bags  [][]int
	Edges [][2]int
}

// Width returns max |β(s)| − 1 (the paper's width of a decomposition).
func (td *TreeDecomposition) Width() int {
	w := 0
	for _, b := range td.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// Verify checks the two tree-decomposition conditions from the paper
// (plus well-formedness of the tree): every vertex's bags induce a
// connected subtree, and every edge of g is contained in some bag.
func (td *TreeDecomposition) Verify(g *UGraph) error {
	n := len(td.Bags)
	if n == 0 {
		if g.N() == 0 {
			return nil
		}
		return fmt.Errorf("graphalg: empty decomposition for non-empty graph")
	}
	// The tree must be connected and acyclic on n nodes.
	if len(td.Edges) != n-1 {
		return fmt.Errorf("graphalg: decomposition tree has %d edges for %d nodes", len(td.Edges), n)
	}
	adj := make([][]int, n)
	for _, e := range td.Edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return fmt.Errorf("graphalg: tree edge %v out of range", e)
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	if count != n {
		return fmt.Errorf("graphalg: decomposition tree is disconnected")
	}
	// Condition 1: connected occurrence sets.
	occ := map[int][]int{}
	for i, bag := range td.Bags {
		for _, v := range bag {
			occ[v] = append(occ[v], i)
		}
	}
	for v := 0; v < g.N(); v++ {
		nodes := occ[v]
		if len(nodes) == 0 {
			return fmt.Errorf("graphalg: vertex %d in no bag", v)
		}
		if !connectedInDecompTree(nodes, adj) {
			return fmt.Errorf("graphalg: bags of vertex %d are disconnected", v)
		}
	}
	// Condition 2: edge coverage.
	for _, e := range g.Edges() {
		covered := false
		for _, bag := range td.Bags {
			if containsInt(bag, e[0]) && containsInt(bag, e[1]) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("graphalg: edge %v in no bag", e)
		}
	}
	return nil
}

func connectedInDecompTree(nodes []int, adj [][]int) bool {
	in := map[int]bool{}
	for _, v := range nodes {
		in[v] = true
	}
	seen := map[int]bool{nodes[0]: true}
	stack := []int{nodes[0]}
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, u := range adj[v] {
			if in[u] && !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return count == len(in)
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// DecompositionFromOrder builds a tree decomposition from an
// elimination order by the standard fill-in construction: the bag of
// the i-th eliminated vertex is the vertex plus its later-eliminated
// neighbours in the fill graph; each bag hangs off the bag of its
// earliest-eliminated later neighbour.
func DecompositionFromOrder(g *UGraph, order []int) *TreeDecomposition {
	n := g.N()
	if n == 0 {
		return &TreeDecomposition{}
	}
	posOf := make([]int, n)
	for i, v := range order {
		posOf[v] = i
	}
	// Simulate elimination with fill-in.
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int]bool{}
		for u := range g.adj[v] {
			adj[v][u] = true
		}
	}
	bags := make([][]int, n)
	for i, v := range order {
		var later []int
		for u := range adj[v] {
			if posOf[u] > i {
				later = append(later, u)
			}
		}
		sort.Ints(later)
		bags[i] = append([]int{v}, later...)
		for a := 0; a < len(later); a++ {
			for b := a + 1; b < len(later); b++ {
				adj[later[a]][later[b]] = true
				adj[later[b]][later[a]] = true
			}
		}
		for _, u := range later {
			delete(adj[u], v)
		}
	}
	td := &TreeDecomposition{Bags: bags}
	for i := range order {
		// Parent: bag of the earliest-eliminated vertex in bags[i]
		// after the first element; the last bag is the root.
		if len(bags[i]) == 1 {
			if i+1 < n {
				td.Edges = append(td.Edges, [2]int{i, i + 1})
			}
			continue
		}
		best := -1
		for _, u := range bags[i][1:] {
			if best == -1 || posOf[u] < best {
				best = posOf[u]
			}
		}
		td.Edges = append(td.Edges, [2]int{i, best})
	}
	return td
}

// HeuristicDecomposition returns a verified tree decomposition built
// from the better of the min-fill and min-degree orders, together with
// its width (an upper bound on tw(g)).
func HeuristicDecomposition(g *UGraph) (*TreeDecomposition, int) {
	ordFill := eliminationOrder(g, pickMinFill)
	ordDeg := eliminationOrder(g, pickMinDegree)
	tdFill := DecompositionFromOrder(g, ordFill)
	tdDeg := DecompositionFromOrder(g, ordDeg)
	if tdDeg.Width() < tdFill.Width() {
		return tdDeg, tdDeg.Width()
	}
	return tdFill, tdFill.Width()
}

// eliminationOrder runs the elimination simulation recording the order.
func eliminationOrder(g *UGraph, pick func(adj []map[int]bool, alive map[int]bool) int) []int {
	adj := make([]map[int]bool, g.n)
	for v := 0; v < g.n; v++ {
		adj[v] = map[int]bool{}
		for u := range g.adj[v] {
			adj[v][u] = true
		}
	}
	alive := map[int]bool{}
	for v := 0; v < g.n; v++ {
		alive[v] = true
	}
	var order []int
	for len(alive) > 0 {
		v := pick(adj, alive)
		order = append(order, v)
		nbrs := make([]int, 0, len(adj[v]))
		for u := range adj[v] {
			nbrs = append(nbrs, u)
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				adj[nbrs[i]][nbrs[j]] = true
				adj[nbrs[j]][nbrs[i]] = true
			}
		}
		for _, u := range nbrs {
			delete(adj[u], v)
		}
		delete(alive, v)
	}
	return order
}
