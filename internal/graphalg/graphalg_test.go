package graphalg

import (
	"math/rand"
	"testing"
)

func TestTreewidthKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *UGraph
		want int
	}{
		{"empty", NewUGraph(0), 0},
		{"isolated", NewUGraph(5), 0},
		{"single-edge", Path(2), 1},
		{"path10", Path(10), 1},
		{"cycle5", Cycle(5), 2},
		{"K4", Clique(4), 3},
		{"K7", Clique(7), 6},
		{"grid2x2", Grid(2, 2), 2},
		{"grid3x3", Grid(3, 3), 3},
		{"grid4x4", Grid(4, 4), 4},
		{"grid3x5", Grid(3, 5), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, exact := Treewidth(tc.g)
			if !exact {
				t.Fatalf("expected exact result for %s", tc.name)
			}
			if w != tc.want {
				t.Fatalf("tw(%s)=%d, want %d", tc.name, w, tc.want)
			}
		})
	}
}

func TestTreewidthBoundsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8)
		g := NewUGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(i, j)
				}
			}
		}
		w, exact := Treewidth(g)
		lb, ub := TreewidthLowerBound(g), TreewidthUpperBound(g)
		if !exact {
			t.Fatalf("n=%d should be exact", n)
		}
		if w < lb || w > ub {
			t.Fatalf("trial %d: tw=%d outside [%d,%d]", trial, w, lb, ub)
		}
	}
}

func TestTreewidthDisconnected(t *testing.T) {
	// K4 plus an isolated path: tw = max(3, 1) = 3.
	g := Clique(4)
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	g.AddEdge(a, b)
	w, exact := Treewidth(g)
	if !exact || w != 3 {
		t.Fatalf("tw=%d exact=%v", w, exact)
	}
}

func TestComponentsAndInduced(t *testing.T) {
	g := NewUGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components: %v", comps)
	}
	sub, orig := g.InducedSubgraph([]int{0, 1, 2})
	if sub.N() != 3 || sub.EdgeCount() != 2 || len(orig) != 3 {
		t.Fatalf("induced: %v", sub)
	}
	if !sub.IsConnected() || g.IsConnected() {
		t.Fatal("connectivity")
	}
}

func TestHasClique(t *testing.T) {
	if !HasClique(Clique(5), 5) || HasClique(Clique(5), 6) {
		t.Fatal("clique detection on K5")
	}
	if HasClique(Grid(3, 3), 3) {
		t.Fatal("grids are triangle-free")
	}
	if !HasClique(Grid(3, 3), 2) {
		t.Fatal("grid has an edge")
	}
	if !HasClique(NewUGraph(1), 1) || HasClique(NewUGraph(0), 1) {
		t.Fatal("k=1 cases")
	}
	if !HasClique(NewUGraph(0), 0) {
		t.Fatal("k=0 is trivially true")
	}
	// Turán-style: complete 3-partite on 9 vertices has K3 but not K4.
	g := NewUGraph(9)
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			if i%3 != j%3 {
				g.AddEdge(i, j)
			}
		}
	}
	if !HasClique(g, 3) || HasClique(g, 4) {
		t.Fatal("Turán T(9,3)")
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("N=%d", g.N())
	}
	// Interior degree 4, corner degree 2.
	if g.Degree(GridID(1, 1, 4)) != 4 || g.Degree(GridID(0, 0, 4)) != 2 {
		t.Fatal("grid degrees")
	}
	if g.EdgeCount() != 3*3+2*4 {
		t.Fatalf("edges=%d", g.EdgeCount())
	}
}

func TestMinorMapGridOntoGrid(t *testing.T) {
	for _, tc := range [][4]int{{3, 3, 3, 3}, {4, 6, 2, 3}, {5, 7, 3, 3}, {6, 6, 4, 6}} {
		hostR, hostC, k, K := tc[0], tc[1], tc[2], tc[3]
		m, err := GridMinorOntoGrid(hostR, hostC, k, K)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Verify(Grid(hostR, hostC)); err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
	}
	if _, err := GridMinorOntoGrid(2, 2, 3, 3); err == nil {
		t.Fatal("too-small host must fail")
	}
}

func TestMinorMapGridOntoClique(t *testing.T) {
	m, err := GridMinorOntoClique(10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(Clique(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := GridMinorOntoClique(5, 2, 3); err == nil {
		t.Fatal("clique too small")
	}
}

func TestMinorMapPositionOf(t *testing.T) {
	m, _ := GridMinorOntoGrid(4, 4, 2, 2)
	host := Grid(4, 4)
	seen := 0
	for v := 0; v < host.N(); v++ {
		if _, _, ok := m.PositionOf(v); ok {
			seen++
		}
	}
	if seen != host.N() {
		t.Fatalf("onto map covers %d of %d", seen, host.N())
	}
}

func TestPairBijection(t *testing.T) {
	b := NewPairBijection(4)
	if b.K() != 6 {
		t.Fatalf("C(4,2)=%d", b.K())
	}
	seen := map[[2]int]bool{}
	for p := 1; p <= b.K(); p++ {
		i, j := b.Pair(p)
		if i >= j || i < 1 || j > 4 {
			t.Fatalf("pair %d: (%d,%d)", p, i, j)
		}
		seen[[2]int{i, j}] = true
		if !b.Contains(p, i) || !b.Contains(p, j) {
			t.Fatal("Contains")
		}
		for l := 1; l <= 4; l++ {
			if l != i && l != j && b.Contains(p, l) {
				t.Fatal("spurious Contains")
			}
		}
	}
	if len(seen) != 6 {
		t.Fatal("bijection not injective")
	}
}

func TestUGraphBasics(t *testing.T) {
	g := NewUGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 0) // self-loop ignored
	if g.EdgeCount() != 1 || !g.HasEdge(1, 0) || g.HasEdge(0, 0) {
		t.Fatal("edges")
	}
	g.SetLabel(0, "root")
	if g.Label(0) != "root" {
		t.Fatal("labels")
	}
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.EdgeCount() != 1 || c.EdgeCount() != 2 {
		t.Fatal("clone")
	}
	if ns := g.Neighbors(0); len(ns) != 1 || ns[0] != 1 {
		t.Fatalf("neighbors: %v", ns)
	}
	if !g.IsCliqueOn([]int{0, 1}) || g.IsCliqueOn([]int{0, 2}) {
		t.Fatal("IsCliqueOn")
	}
}
