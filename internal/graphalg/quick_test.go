package graphalg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// testing/quick checks of the UGraph invariants.

func ugraphConfig() *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, rng *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(randGraph(rng, 2+rng.Intn(8), 0.4))
			}
		},
	}
}

func TestQuickEdgeSymmetry(t *testing.T) {
	prop := func(g *UGraph) bool {
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
				if u == v {
					return false // no self-loops
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, ugraphConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDegreeSum(t *testing.T) {
	prop := func(g *UGraph) bool {
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.EdgeCount()
	}
	if err := quick.Check(prop, ugraphConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComponentsPartition(t *testing.T) {
	prop := func(g *UGraph) bool {
		seen := map[int]int{}
		for _, comp := range g.Components() {
			for _, v := range comp {
				seen[v]++
			}
		}
		if len(seen) != g.N() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, ugraphConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEqualStructure(t *testing.T) {
	prop := func(g *UGraph) bool {
		c := g.Clone()
		if c.N() != g.N() || c.EdgeCount() != g.EdgeCount() {
			return false
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if g.HasEdge(u, v) != c.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, ugraphConfig()); err != nil {
		t.Fatal(err)
	}
}
