package graphalg

import (
	"math/bits"
)

// Reconstruction of an optimal elimination order from the exact
// treewidth dynamic program, yielding a certified minimum-width tree
// decomposition (verified against Treewidth in the tests).

// ExactDecomposition returns a tree decomposition of minimum width for
// graphs whose components fit the exact algorithm, together with the
// width. exact is false when a component exceeds MaxExactVertices; the
// returned decomposition then comes from the heuristics.
func ExactDecomposition(g *UGraph) (td *TreeDecomposition, width int, exact bool) {
	if g.N() == 0 {
		return &TreeDecomposition{}, 0, true
	}
	// Per-component orders are concatenated; the fill-in construction
	// handles disconnected graphs.
	var order []int
	exact = true
	for _, comp := range g.Components() {
		sub, orig := g.InducedSubgraph(comp)
		var subOrder []int
		if sub.N() > MaxExactVertices {
			exact = false
			subOrder = bestHeuristicOrder(sub)
		} else {
			subOrder = exactEliminationOrder(sub)
		}
		for _, v := range subOrder {
			order = append(order, orig[v])
		}
	}
	td = DecompositionFromOrder(g, order)
	return td, td.Width(), exact
}

func bestHeuristicOrder(g *UGraph) []int {
	fill := eliminationOrder(g, pickMinFill)
	deg := eliminationOrder(g, pickMinDegree)
	if DecompositionFromOrder(g, deg).Width() < DecompositionFromOrder(g, fill).Width() {
		return deg
	}
	return fill
}

// exactEliminationOrder reconstructs an optimal order from the subset
// dynamic program: f(S) is the minimum over orders eliminating exactly
// S first of the maximum elimination degree, with the last vertex of
// the prefix as the branching choice. Walking back from the full set
// yields the order in reverse.
func exactEliminationOrder(g *UGraph) []int {
	n := g.n
	if n == 0 {
		return nil
	}
	full := uint32(1)<<n - 1
	const inf = int32(1 << 30)
	f := make([]int32, full+1)
	for i := range f {
		f[i] = inf
	}
	f[0] = 0
	for s := uint32(1); s <= full; s++ {
		best := inf
		rem := s
		for rem != 0 {
			v := bits.TrailingZeros32(rem)
			rem &= rem - 1
			prev := f[s&^(1<<v)]
			if prev >= inf {
				continue
			}
			q := int32(eliminationDegree(g, s&^(1<<uint(v)), v))
			val := prev
			if q > val {
				val = q
			}
			if val < best {
				best = val
			}
		}
		f[s] = best
		if s == full {
			break
		}
	}
	// Walk back: at each set, pick a vertex achieving the optimum.
	order := make([]int, n)
	s := full
	for i := n - 1; i >= 0; i-- {
		rem := s
		chosen := -1
		for rem != 0 {
			v := bits.TrailingZeros32(rem)
			rem &= rem - 1
			prev := f[s&^(1<<v)]
			if prev >= inf {
				continue
			}
			q := int32(eliminationDegree(g, s&^(1<<uint(v)), v))
			val := prev
			if q > val {
				val = q
			}
			if val == f[s] {
				chosen = v
				break
			}
		}
		order[i] = chosen
		s &^= 1 << uint(chosen)
	}
	return order
}
