// Package graphalg implements the undirected-graph machinery the paper
// relies on: graphs, treewidth (exact computation for the small graphs
// arising from queries, plus classic heuristics and lower bounds),
// standard constructions (grids, cliques, paths, cycles), and
// grid-minor maps used by the Section 4 hardness reduction.
package graphalg

import (
	"fmt"
	"sort"
	"strings"
)

// UGraph is a simple undirected graph over vertices 0..n-1 with
// optional string labels. Self-loops and parallel edges are ignored.
type UGraph struct {
	n      int
	adj    []map[int]bool
	labels []string
}

// NewUGraph returns an empty graph with n vertices.
func NewUGraph(n int) *UGraph {
	g := &UGraph{n: n, adj: make([]map[int]bool, n), labels: make([]string, n)}
	for i := range g.adj {
		g.adj[i] = map[int]bool{}
		g.labels[i] = fmt.Sprintf("v%d", i)
	}
	return g
}

// N returns the number of vertices.
func (g *UGraph) N() int { return g.n }

// AddVertex appends a new vertex with the given label and returns its id.
func (g *UGraph) AddVertex(label string) int {
	g.adj = append(g.adj, map[int]bool{})
	g.labels = append(g.labels, label)
	g.n++
	return g.n - 1
}

// SetLabel assigns a label to vertex v.
func (g *UGraph) SetLabel(v int, label string) { g.labels[v] = label }

// Label returns the label of vertex v.
func (g *UGraph) Label(v int) string { return g.labels[v] }

// AddEdge inserts the undirected edge {u, v}; self-loops are ignored.
func (g *UGraph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports whether {u, v} is an edge.
func (g *UGraph) HasEdge(u, v int) bool { return u != v && g.adj[u][v] }

// Degree returns the degree of v.
func (g *UGraph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbourhood of v.
func (g *UGraph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Edges returns all edges {u, v} with u < v, sorted.
func (g *UGraph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// EdgeCount returns the number of edges.
func (g *UGraph) EdgeCount() int {
	total := 0
	for u := 0; u < g.n; u++ {
		total += len(g.adj[u])
	}
	return total / 2
}

// Clone returns a deep copy of the graph.
func (g *UGraph) Clone() *UGraph {
	out := NewUGraph(g.n)
	copy(out.labels, g.labels)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			out.adj[u][v] = true
		}
	}
	return out
}

// Components returns the connected components as sorted vertex slices,
// ordered by smallest vertex.
func (g *UGraph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// together with the mapping from new ids to original ids.
func (g *UGraph) InducedSubgraph(vs []int) (*UGraph, []int) {
	idx := map[int]int{}
	orig := append([]int{}, vs...)
	sort.Ints(orig)
	for i, v := range orig {
		idx[v] = i
	}
	out := NewUGraph(len(orig))
	for i, v := range orig {
		out.labels[i] = g.labels[v]
		for u := range g.adj[v] {
			if j, ok := idx[u]; ok {
				out.AddEdge(i, j)
			}
		}
	}
	return out, orig
}

// IsConnected reports whether the graph is connected (the empty graph
// counts as connected).
func (g *UGraph) IsConnected() bool {
	return g.n == 0 || len(g.Components()) == 1
}

// IsCliqueOn reports whether the given vertex set induces a clique.
func (g *UGraph) IsCliqueOn(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// String renders the graph compactly.
func (g *UGraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "UGraph(n=%d, m=%d)", g.n, g.EdgeCount())
	return b.String()
}

// Clique returns the complete graph K_n.
func Clique(n int) *UGraph {
	g := NewUGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Path returns the path graph P_n on n vertices.
func Path(n int) *UGraph {
	g := NewUGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle C_n (n ≥ 3).
func Cycle(n int) *UGraph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Grid returns the (rows × cols)-grid of the paper's Section 4.2:
// vertices (i, j) for 1 ≤ i ≤ rows, 1 ≤ j ≤ cols with an edge between
// (i,j) and (i',j') iff |i−i'| + |j−j'| = 1. Vertex (i, j) has id
// (i−1)*cols + (j−1).
func Grid(rows, cols int) *UGraph {
	g := NewUGraph(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			g.SetLabel(id(i, j), fmt.Sprintf("(%d,%d)", i+1, j+1))
			if i+1 < rows {
				g.AddEdge(id(i, j), id(i+1, j))
			}
			if j+1 < cols {
				g.AddEdge(id(i, j), id(i, j+1))
			}
		}
	}
	return g
}

// GridID returns the vertex id of grid position (i, j) (0-based) in a
// grid with the given number of columns.
func GridID(i, j, cols int) int { return i*cols + j }

// HasClique reports whether g contains a clique of size k, by
// backtracking over greedily ordered vertices. This is the p-CLIQUE
// oracle used to validate the Section 4 reduction.
func HasClique(g *UGraph, k int) bool {
	if k <= 0 {
		return true
	}
	if k == 1 {
		return g.n > 0
	}
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.Degree(order[a]) > g.Degree(order[b]) })
	var cur []int
	var rec func(cands []int) bool
	rec = func(cands []int) bool {
		if len(cur) == k {
			return true
		}
		if len(cur)+len(cands) < k {
			return false
		}
		for i, v := range cands {
			if g.Degree(v) < k-1 {
				continue
			}
			var next []int
			for _, u := range cands[i+1:] {
				if g.HasEdge(u, v) {
					next = append(next, u)
				}
			}
			cur = append(cur, v)
			if rec(next) {
				return true
			}
			cur = cur[:len(cur)-1]
		}
		return false
	}
	return rec(order)
}
