package graphalg

import (
	"math/rand"
	"testing"
)

// ExactDecomposition must produce a valid decomposition whose width
// equals the exact treewidth.

func TestExactDecompositionKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *UGraph
		want int
	}{
		{"path6", Path(6), 1},
		{"cycle6", Cycle(6), 2},
		{"K5", Clique(5), 4},
		{"grid3x3", Grid(3, 3), 3},
		{"grid3x4", Grid(3, 4), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			td, w, exact := ExactDecomposition(tc.g)
			if !exact {
				t.Fatal("expected exact")
			}
			if w != tc.want {
				t.Fatalf("width=%d want %d", w, tc.want)
			}
			if err := td.Verify(tc.g); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQuickExactDecompositionOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(8)
		g := randGraph(rng, n, 0.45)
		td, w, exact := ExactDecomposition(g)
		if !exact {
			t.Fatalf("trial %d: expected exact at n=%d", trial, n)
		}
		if err := td.Verify(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tw, ok := Treewidth(g)
		if !ok {
			t.Fatal("treewidth should be exact")
		}
		if w != tw {
			t.Fatalf("trial %d: decomposition width %d ≠ tw %d", trial, w, tw)
		}
	}
}

func TestExactDecompositionDisconnected(t *testing.T) {
	g := Clique(4)
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	g.AddEdge(a, b)
	g.AddVertex("isolated")
	td, w, exact := ExactDecomposition(g)
	if !exact || w != 3 {
		t.Fatalf("w=%d exact=%v", w, exact)
	}
	if err := td.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestExactDecompositionEmpty(t *testing.T) {
	td, w, exact := ExactDecomposition(NewUGraph(0))
	if !exact || w != -1 && w != 0 {
		// Width of the empty decomposition is -1 by the max-bag-minus-1
		// convention; accept 0 as well for the one-empty-bag case.
		t.Fatalf("w=%d exact=%v", w, exact)
	}
	if err := td.Verify(NewUGraph(0)); err != nil {
		t.Fatal(err)
	}
}
