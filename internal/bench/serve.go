package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"slices"
	"sync"
	"time"

	"wdsparql"
	"wdsparql/internal/rdf"
	"wdsparql/internal/server"
)

// E13 measures the serving layer end to end: real HTTP requests against
// a wdserve endpoint (internal/server) streaming the E10 workload, with
// qps and latency percentiles per concurrency level, across the three
// storage/execution modes of the engine — sequential over the frozen
// backend, Parallel(w) enumeration, and the sharded backend — plus an
// overload cell where the client herd far exceeds the admission gate,
// showing that shedding keeps the p99 of served requests bounded
// instead of queuing everyone into timeout territory.

// E13QueryText is the served query: the E9/E10 enumeration workload.
const E13QueryText = E10PatternText

// E13OverloadQueryText is the overload cell's query: a triple cross
// product paged from a deep offset, so each admitted request enumerates
// >100k rows before its page. Service time must comfortably exceed the
// Go scheduler's ~10ms preemption quantum: on a single-CPU host a
// shorter handler runs to completion unpreempted, requests serialize
// (in-flight never exceeds 1) and no herd can make the queue fill.
const E13OverloadQueryText = `((?x p0 ?y) AND ((?z p0 ?w) AND (?u p0 ?v)))`

// E13OverloadOffset is the page offset of the overload cell.
const E13OverloadOffset = 131072

// E13RowLimit bounds rows per request, so a cell's cost is requests ×
// limit rather than requests × |⟦P⟧G|.
const E13RowLimit = 512

// E13Cell is the outcome of one load cell: counts, wall time and the
// latency distribution of the successful requests.
type E13Cell struct {
	Requests int
	OK       int
	Shed     int // 503s: the admission controller refused
	Errors   int // anything else — transport errors, wrong status
	Wall     time.Duration
	Lats     []time.Duration
	Rows     int  // bindings per successful response
	Agree    bool // every 200 decoded to exactly wantRows bindings
}

// QPS is served throughput: successful requests per second of wall time.
func (c E13Cell) QPS() float64 {
	if c.Wall <= 0 {
		return 0
	}
	return float64(c.OK) / c.Wall.Seconds()
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of successful-request
// latency.
func (c E13Cell) Percentile(p float64) time.Duration {
	if len(c.Lats) == 0 {
		return 0
	}
	s := slices.Clone(c.Lats)
	slices.Sort(s)
	i := int(p*float64(len(s)-1) + 0.5)
	return s[i]
}

// E13StartServer runs a server over eng on an ephemeral local port and
// returns its base URL and a drain function. gate/queue/queueTimeout
// are the admission parameters under test.
func E13StartServer(eng *wdsparql.Engine, gate, queue int, queueTimeout time.Duration) (string, func(), error) {
	srv := server.New(server.Config{
		Engine:        eng,
		MaxConcurrent: gate,
		MaxQueue:      queue,
		QueueTimeout:  queueTimeout,
		MaxWorkers:    8,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// E13Load drives clients × perClient sequential GET requests at the
// endpoint and tallies the outcome. Every 200 is decoded and checked
// against wantRows; 503 is counted as shed (that is the admission
// controller doing its job, not an error).
func E13Load(base string, clients, perClient int, params url.Values, wantRows int) E13Cell {
	httpc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	defer httpc.CloseIdleConnections()

	v := url.Values{
		"query": {E13QueryText},
		"limit": {fmt.Sprint(E13RowLimit)},
	}
	for k, vals := range params {
		v[k] = vals
	}
	target := base + "/sparql?" + v.Encode()

	cell := E13Cell{Requests: clients * perClient, Rows: wantRows, Agree: true}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	begin := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for r := 0; r < perClient; r++ {
				t0 := time.Now()
				resp, err := httpc.Get(target)
				if err != nil {
					mu.Lock()
					cell.Errors++
					mu.Unlock()
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var doc struct {
						Results struct {
							Bindings []json.RawMessage `json:"bindings"`
						} `json:"results"`
						Truncated bool `json:"truncated"`
					}
					err := json.NewDecoder(resp.Body).Decode(&doc)
					lat := time.Since(t0)
					mu.Lock()
					if err != nil || doc.Truncated || len(doc.Results.Bindings) != wantRows {
						cell.Agree = false
						cell.Errors++
					} else {
						cell.OK++
						cell.Lats = append(cell.Lats, lat)
					}
					mu.Unlock()
				case http.StatusServiceUnavailable:
					mu.Lock()
					cell.Shed++
					mu.Unlock()
				default:
					mu.Lock()
					cell.Errors++
					mu.Unlock()
				}
				resp.Body.Close()
			}
		}()
	}
	close(start)
	wg.Wait()
	cell.Wall = time.Since(begin)
	return cell
}

// E13Serving builds the experiment table. n parameterises the served
// graph (the E9 Erdős–Rényi shape), workers the Parallel(w) mode, gate
// the admission width; each mode is swept over clientCounts with
// perClient requests each, and the final overload row throws
// overloadClients at the same gate with a short queue timeout.
func E13Serving(n, perClient, workers int, clientCounts []int, gate, overloadClients int) *Table {
	t := &Table{
		ID:    "E13",
		Title: fmt.Sprintf("wdserve load: streaming /sparql over |G|≈%d, gate %d, limit %d", 4*n, gate, E13RowLimit),
		Claim: "streams stay correct under concurrency; overload is shed with bounded p99, not queued into collapse",
		Header: []string{"mode", "clients", "gate", "req", "ok", "shed", "qps",
			"p50", "p99", "rows", "agree"},
	}
	ts := E9Data(n).Triples()

	// Expected bindings per request, from the engine directly.
	ref := wdsparql.NewEngine(rdf.GraphFromTriples(ts))
	q, err := ref.PrepareText(E13QueryText)
	if err != nil {
		panic(err)
	}
	wantRows, err := q.Count(context.Background(), wdsparql.Limit(E13RowLimit))
	if err != nil || wantRows == 0 {
		panic(fmt.Sprintf("empty E13 workload: %d, %v", wantRows, err))
	}
	q2, err := ref.PrepareText(E13OverloadQueryText)
	if err != nil {
		panic(err)
	}

	modes := []struct {
		name   string
		graph  *rdf.Graph
		params url.Values
	}{
		{"sequential", rdf.GraphFromTriples(ts), nil},
		{fmt.Sprintf("parallel(%d)", workers), rdf.GraphFromTriples(ts),
			url.Values{"workers": {fmt.Sprint(workers)}}},
		{"sharded(4)", rdf.GraphFromTriplesSharded(ts, 4), nil},
	}
	addCell := func(mode string, clients int, cell E13Cell) {
		t.AddRow(mode, fmt.Sprint(clients), fmt.Sprint(gate),
			fmt.Sprint(cell.Requests), fmt.Sprint(cell.OK), fmt.Sprint(cell.Shed),
			fmt.Sprintf("%.0f", cell.QPS()),
			ms(cell.Percentile(0.50)), ms(cell.Percentile(0.99)),
			fmt.Sprint(cell.Rows), fmt.Sprint(cell.Agree && cell.Errors == 0))
	}
	for _, m := range modes {
		eng := wdsparql.NewEngine(m.graph, wdsparql.WithQueryCache(16))
		for _, clients := range clientCounts {
			// A patient queue: below-overload cells measure streaming
			// throughput, not shedding.
			base, stop, err := E13StartServer(eng, gate, 2*clients+gate, 30*time.Second)
			if err != nil {
				panic(err)
			}
			addCell(m.name, clients, E13Load(base, clients, perClient, m.params, wantRows))
			stop()
		}
	}

	// Overload: a herd far beyond the gate, each request expensive
	// (deep-offset cross-product page), against a short bounded queue.
	// The shed column is the point — the tail gets an immediate 503
	// while the p99 of what is served stays bounded by
	// gate-depth × service time + queue timeout instead of growing
	// with the herd.
	wantOverload, err := q2.Count(context.Background(),
		wdsparql.Limit(E13RowLimit), wdsparql.Offset(E13OverloadOffset))
	if err != nil || wantOverload == 0 {
		panic(fmt.Sprintf("empty E13 overload workload: %d, %v", wantOverload, err))
	}
	eng := wdsparql.NewEngine(rdf.GraphFromTriples(ts), wdsparql.WithQueryCache(16))
	base, stop, err := E13StartServer(eng, gate, gate, 25*time.Millisecond)
	if err != nil {
		panic(err)
	}
	cell := E13Load(base, overloadClients, perClient, url.Values{
		"query":  {E13OverloadQueryText},
		"offset": {fmt.Sprint(E13OverloadOffset)},
	}, wantOverload)
	stop()
	addCell("overload", overloadClients, cell)
	return t
}
