package bench

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"strconv"
	"strings"
	"time"

	"wdsparql"
	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/graphalg"
	"wdsparql/internal/hom"
	"wdsparql/internal/pebble"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/reduction"
)

// E1 reproduces Example 3 / Figure 1: (S, X) is a core with
// ctw = k − 1, while (S', X) has tw = k − 1 but ctw = 1.
func E1CoreTreewidth(kMax int) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Core treewidth of the Figure 1 generalised t-graphs",
		Claim:  "ctw(S,X)=k-1; tw(S',X)=k-1 but ctw(S',X)=1 (Example 3)",
		Header: []string{"k", "ctw(S,X)", "tw(S',X)", "ctw(S',X)", "S core?", "time"},
	}
	for k := 2; k <= kMax; k++ {
		s := gen.ExampleS(k)
		sp := gen.ExampleSPrime(k)
		var ctwS, twSp, ctwSp int
		var isCore bool
		d := timed(func() {
			ctwS = core.CTW(s)
			twSp = core.TW(sp)
			ctwSp = core.CTW(sp)
			isCore = hom.IsCore(s)
		})
		t.AddRow(fmt.Sprint(k), fmt.Sprint(ctwS), fmt.Sprint(twSp), fmt.Sprint(ctwSp),
			fmt.Sprint(isCore), ms(d))
	}
	return t
}

// E2 reproduces Examples 4–5 / Figures 2–3: dw(F_k) = 1 for every k,
// local width = k − 1 (so F_k is not locally tractable), and the GtG
// set of the root subtree has exactly two elements.
func E2DominationWidth(kMax int) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Domination width of the wdPF F_k (Figure 2)",
		Claim:  "dw(F_k)=1 although local width = k-1 (Examples 4-5)",
		Header: []string{"k", "dw(F_k)", "local width", "|GtG(T1[r1])|", "time"},
	}
	for k := 2; k <= kMax; k++ {
		f := gen.Fk(k)
		var dw, lw, gtgSize int
		d := timed(func() {
			dw = core.DominationWidth(f)
			lw = core.LocalWidth(f)
			fs := ptree.ForestSubtree{Forest: f, TreeIndex: 0,
				Subtree: ptree.NewSubtree(f[0], f[0].Root.ID)}
			gtgSize = len(ptree.GtG(fs))
		})
		t.AddRow(fmt.Sprint(k), fmt.Sprint(dw), fmt.Sprint(lw), fmt.Sprint(gtgSize), ms(d))
	}
	return t
}

// E3 is the headline frontier experiment: evaluating µ over F_k on
// adversarial data (Turán graph, no k-clique, no q-edges) makes the
// natural algorithm refute a k-clique — exponential in k — while the
// Theorem 1 pebble algorithm stays polynomial. Both must return true.
func E3BoundedDW(kMax, n int) *Table {
	t := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("F_k evaluation on adversarial Turán data (n=%d)", n),
		Claim:  "naive grows exponentially in k; pebble stays polynomial (Theorem 1)",
		Header: []string{"k", "|G|", "naive", "pebble(k=1)", "agree", "answer"},
	}
	for k := 2; k <= kMax; k++ {
		f := gen.Fk(k)
		mu := gen.FkMu()
		g := gen.FkData(k, n, false, false)
		var ansN, ansP bool
		dN := timed(func() { ansN = core.EvalNaive(f, g, mu) })
		dP := timed(func() { ansP = core.EvalPebble(1, f, g, mu) })
		t.AddRow(fmt.Sprint(k), fmt.Sprint(g.Len()), ms(dN), ms(dP),
			fmt.Sprint(ansN == ansP), fmt.Sprint(ansN))
	}
	return t
}

// E4 covers the Section 3.2 UNION-free family T'_k: bounded branch
// treewidth (bw = 1 = dw, Proposition 5) without local tractability,
// and fast evaluation by both algorithms.
func E4BranchTreewidth(kMax, n int) *Table {
	t := &Table{
		ID:     "E4",
		Title:  fmt.Sprintf("T'_k: widths and evaluation (Turán data, n=%d)", n),
		Claim:  "bw(T'_k)=1=dw (Prop. 5) while local width = k-1 (§3.2)",
		Header: []string{"k", "bw", "dw", "local", "naive", "pebble(k=1)", "agree"},
	}
	for k := 2; k <= kMax; k++ {
		tk := gen.TkPrime(k)
		f := ptree.Forest{tk}
		bw := core.BranchTreewidth(tk)
		dw := core.DominationWidth(f)
		lw := core.LocalWidth(f)
		g := gen.TkPrimeData(n, k)
		mu := rdf.Mapping{"y": "b"}
		var ansN, ansP bool
		dN := timed(func() { ansN = core.EvalNaive(f, g, mu) })
		dP := timed(func() { ansP = core.EvalPebble(1, f, g, mu) })
		t.AddRow(fmt.Sprint(k), fmt.Sprint(bw), fmt.Sprint(dw), fmt.Sprint(lw),
			ms(dN), ms(dP), fmt.Sprint(ansN == ansP))
	}
	return t
}

// E5 runs the Theorem 2 reduction end-to-end: p-CLIQUE instances are
// compiled to co-wdEVAL and solved by the natural algorithm; the
// verdicts must match a direct clique search, polynomial in |H| for
// fixed k and exploding with k.
func E5CliqueReduction(ks []int, ns []int, seed int64) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "p-CLIQUE via the Section 4 reduction to co-wdEVAL",
		Claim:  "H has k-clique ⟺ µ ∉ ⟦P⟧G; poly in |H| for fixed k (Thm 2)",
		Header: []string{"k", "|V(H)|", "|E(H)|", "|G|", "build", "co-wdEVAL", "verdict", "oracle agrees"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, k := range ks {
		for _, n := range ns {
			h := graphalg.NewUGraph(n)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if rng.Float64() < 0.5 {
						h.AddEdge(i, j)
					}
				}
			}
			var in *reduction.Instance
			var err error
			dBuild := timed(func() { in, err = reduction.New(k, h) })
			if err != nil {
				t.AddRow(fmt.Sprint(k), fmt.Sprint(n), "-", "-", "-", "-", "error", err.Error())
				continue
			}
			var verdict bool
			dEval := timed(func() { verdict = in.SolveCliqueViaEval() })
			oracle := graphalg.HasClique(h, k)
			t.AddRow(fmt.Sprint(k), fmt.Sprint(n), fmt.Sprint(h.EdgeCount()),
				fmt.Sprint(in.G.Len()), ms(dBuild), ms(dEval),
				fmt.Sprint(verdict), fmt.Sprint(verdict == oracle))
		}
	}
	return t
}

// E6 compares the existential k-pebble test against full homomorphism
// search on the K_k query over Turán graphs: verdicts differ exactly
// where Proposition 3's ctw ≤ k−1 premise fails, and the pebble test's
// cost stays polynomial while refutation explodes.
func E6PebbleVsHom(cliqueKs []int, n int) *Table {
	t := &Table{
		ID:     "E6",
		Title:  fmt.Sprintf("pebble vs homomorphism on K_k queries over Turán T(n=%d, k-1)", n),
		Claim:  "pebble is PTIME and relaxes hom (Props 2-4); exact iff ctw ≤ pebbles-1",
		Header: []string{"clique k", "pebbles", "hom", "hom time", "pebble", "pebble time", "exact?"},
	}
	for _, k := range cliqueKs {
		pat := hom.NewTGraph(gen.KkTriples(k)...)
		gt := hom.NewGTGraph(pat, nil)
		g := gen.Turan(n, k-1, "r")
		var homAns bool
		dHom := timed(func() { homAns = hom.Exists(pat, g) })
		for _, pebbles := range []int{2, 3} {
			var pebAns bool
			dPeb := timed(func() { pebAns = pebble.Decide(pebbles, gt, rdf.NewMapping(), g) })
			t.AddRow(fmt.Sprint(k), fmt.Sprint(pebbles), fmt.Sprint(homAns), ms(dHom),
				fmt.Sprint(pebAns), ms(dPeb), fmt.Sprint(homAns == pebAns))
		}
	}
	return t
}

// E7 sweeps data size on the bounded-width F_3 workload: both
// algorithms are polynomial in |G| for a fixed query, with the pebble
// algorithm paying a (polynomial) game overhead and the naive
// algorithm paying the refutation overhead.
func E7DataScaling(k int, ns []int) *Table {
	t := &Table{
		ID:     "E7",
		Title:  fmt.Sprintf("data scaling for F_%d (adversarial data)", k),
		Claim:  "both algorithms scale polynomially in |G| for fixed query",
		Header: []string{"n", "|G|", "naive", "pebble(k=1)", "agree"},
	}
	f := gen.Fk(k)
	mu := gen.FkMu()
	for _, n := range ns {
		g := gen.FkData(k, n, false, false)
		var ansN, ansP bool
		dN := timed(func() { ansN = core.EvalNaive(f, g, mu) })
		dP := timed(func() { ansP = core.EvalPebble(1, f, g, mu) })
		t.AddRow(fmt.Sprint(n), fmt.Sprint(g.Len()), ms(dN), ms(dP), fmt.Sprint(ansN == ansP))
	}
	return t
}

// E8Data builds the batched-evaluation workload: a Turán graph
// T(n, k−1) over predicate r (adversarial for the K_k refutation, as
// in E3) plus a p-cycle over its vertices. Every p-edge yields one
// candidate mapping {?x ↦ nᵢ, ?y ↦ nᵢ₊₁} for the F_k root pattern, so
// the batch size scales with n, and each candidate's ?y vertex has
// Turán r-edges to drive the clique test of node n12.
func E8Data(k, n int) *rdf.Graph {
	g := gen.Turan(n, k-1, "r")
	for i := 0; i < n; i++ {
		g.AddTriple(fmt.Sprintf("n%d", i), "p", fmt.Sprintf("n%d", (i+1)%n))
	}
	return g
}

// E8 measures the batched entry point core.EvalAll against the
// per-mapping loop: all candidate mappings of the F_k root pattern are
// evaluated against one encoded graph, with the forest compiled once
// per mapping domain, sequentially and on a worker pool.
func E8BatchEval(k, n, workers int) *Table {
	t := &Table{
		ID:    "E8",
		Title: fmt.Sprintf("batched evaluation of all F_%d root candidates (n=%d)", k, n),
		Claim: "EvalAll compiles the forest once per domain; worker pool scales it",
		Header: []string{"alg", "|G|", "mappings", "loop", "EvalAll",
			fmt.Sprintf("EvalAll(workers=%d)", workers), "accepted", "agree"},
	}
	f := gen.Fk(k)
	g := E8Data(k, n)
	root := ptree.NewSubtree(f[0], f[0].Root.ID)
	mus := hom.FindAll(root.Pattern(), g, 0)
	for _, alg := range []core.Algorithm{core.AlgNaive, core.AlgPebble} {
		var loop, batch, batchPar []bool
		dLoop := timed(func() {
			loop = make([]bool, len(mus))
			for i, mu := range mus {
				loop[i] = core.Eval(alg, 1, f, g, mu)
			}
		})
		dBatch := timed(func() { batch = core.EvalAll(alg, 1, f, g, mus) })
		dPar := timed(func() { batchPar = core.EvalAllParallel(alg, 1, f, g, mus, workers) })
		accepted, agree := 0, true
		for i := range mus {
			if batch[i] {
				accepted++
			}
			if batch[i] != loop[i] || batchPar[i] != loop[i] {
				agree = false
			}
		}
		t.AddRow(alg.String(), fmt.Sprint(g.Len()), fmt.Sprint(len(mus)),
			ms(dLoop), ms(dBatch), ms(dPar),
			fmt.Sprint(accepted), fmt.Sprint(agree))
	}
	return t
}

// E9Tree builds the enumeration-throughput workload: a wdPT in the
// AND/OPT-dominated shape of real SPARQL logs (Han et al.) — a root
// edge with one optional two-step chain and one optional attribute
// arm, so per-root solutions combine by cross product and solutions
// have mixed domains (unbound slots).
//
//	      {?x p0 ?y}
//	      /        \
//	{?y p1 ?z}   {?y p3 ?w}
//	     |
//	{?z p2 ?u}
func E9Tree() *ptree.Tree {
	v := rdf.Var
	i := rdf.IRI
	return ptree.FromSpec(ptree.Spec{
		Pattern: []rdf.Triple{rdf.T(v("x"), i("p0"), v("y"))},
		Children: []ptree.Spec{
			{
				Pattern: []rdf.Triple{rdf.T(v("y"), i("p1"), v("z"))},
				Children: []ptree.Spec{
					{Pattern: []rdf.Triple{rdf.T(v("z"), i("p2"), v("u"))}},
				},
			},
			{Pattern: []rdf.Triple{rdf.T(v("y"), i("p3"), v("w"))}},
		},
	})
}

// E9Data builds the E9 graph: an Erdős–Rényi graph over 4 predicates.
func E9Data(n int) *rdf.Graph {
	return gen.Random(n, 4*n, 4, 7)
}

// E9 measures top-down enumeration throughput: the string pipeline
// (EnumerateTopDown on map mappings) against the compiled row pipeline
// (EnumerateTopDownForestID), sequential and on a worker pool, with
// rows/sec for the row pipeline. The verdict column checks that the
// decoded rows coincide with the string result.
func E9Enumeration(ns []int, workers int) *Table {
	t := &Table{
		ID:    "E9",
		Title: "top-down enumeration throughput: string vs compiled rows",
		Claim: "row pipeline beats string mappings; -workers partitions across root rows (gains need >1 CPU)",
		Header: []string{"n", "|G|", "rows", "string", "rows(ID)", "rows/s",
			fmt.Sprintf("parallel(workers=%d)", workers), "agree"},
	}
	tree := E9Tree()
	f := ptree.Forest{tree}
	for _, n := range ns {
		g := E9Data(n)
		var want *rdf.MappingSet
		dStr := timed(func() { want = core.EnumerateTopDown(tree, g) })
		var idSet *rdf.IDMappingSet
		dID := timed(func() { idSet = core.EnumerateTopDownForestID(f, g) })
		var parSet *rdf.IDMappingSet
		dPar := timed(func() { parSet = core.EnumerateTopDownParallel(f, g, workers) })
		agree := idSet.Len() == want.Len() && parSet.Len() == want.Len()
		if agree {
			// Parallel must reproduce the sequential rows exactly
			// (same content and insertion order), and the decoded rows
			// must coincide with the string pipeline's mappings.
			for i := 0; i < idSet.Len() && agree; i++ {
				a, b := idSet.Row(i), parSet.Row(i)
				for j := range a {
					if a[j] != b[j] {
						agree = false
						break
					}
				}
			}
			decoded := idSet.Decode(g.Dict())
			for _, mu := range want.Slice() {
				if !decoded.Contains(mu) {
					agree = false
					break
				}
			}
		}
		rps := "-"
		if s := dID.Seconds(); s > 0 {
			rps = fmt.Sprintf("%.0f", float64(idSet.Len())/s)
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(g.Len()), fmt.Sprint(idSet.Len()),
			ms(dStr), ms(dID), rps, ms(dPar), fmt.Sprint(agree))
	}
	return t
}

// E10PatternText is the E9 enumeration workload written as a graph
// pattern, so it can enter the public engine API through Prepare: the
// root edge with one optional two-step chain and one optional
// attribute arm (the wdpf of this pattern is exactly E9Tree).
const E10PatternText = `(((?x p0 ?y) OPT ((?y p1 ?z) OPT (?z p2 ?u))) OPT (?y p3 ?w))`

// E10PreparedVsOneShot measures the prepare/execute split of the
// engine API on repeated-query workloads: reps× the deprecated
// one-shot Solutions (engine thrown away each call, forest re-compiled
// against the graph) against one Engine.Prepare followed by reps×
// PreparedQuery executions — materialising All and zero-decode Count.
// The verdict column cross-checks all cardinalities.
func E10PreparedVsOneShot(ns []int, reps int) *Table {
	t := &Table{
		ID:    "E10",
		Title: "prepared-query amortization: Prepare once + N×execute vs N×Solutions",
		Claim: "prepared execution beats one-shot Solutions on repeated-query workloads",
		Header: []string{"n", "|G|", "rows", fmt.Sprintf("N=%d", reps),
			"one-shot", "prepare", "N×All", "N×Count", "agree"},
	}
	ctx := context.Background()
	p := wdsparql.MustParsePattern(E10PatternText)
	for _, n := range ns {
		g := E9Data(n)
		agree := true
		var want int
		dOne := timed(func() {
			for r := 0; r < reps; r++ {
				set, err := wdsparql.Solutions(p, g)
				if err != nil {
					panic(err)
				}
				if r == 0 {
					want = set.Len()
				} else if set.Len() != want {
					agree = false
				}
			}
		})
		eng := wdsparql.NewEngine(g)
		var q *wdsparql.PreparedQuery
		var err error
		dPrep := timed(func() { q, err = eng.Prepare(p) })
		if err != nil {
			panic(err)
		}
		dAll := timed(func() {
			for r := 0; r < reps; r++ {
				set, err := q.All(ctx)
				if err != nil || set.Len() != want {
					agree = false
				}
			}
		})
		dCount := timed(func() {
			for r := 0; r < reps; r++ {
				c, err := q.Count(ctx)
				if err != nil || c != want {
					agree = false
				}
			}
		})
		t.AddRow(fmt.Sprint(n), fmt.Sprint(g.Len()), fmt.Sprint(want), "",
			ms(dOne), ms(dPrep), ms(dAll), ms(dCount), fmt.Sprint(agree))
	}
	return t
}

// E11Triples returns the E11 workload as a plain triple list (the E9
// Erdős–Rényi shape), so the same list can be loaded into both
// storage backends: loading the list in order assigns identical
// dictionary IDs, which is what lets E11 compare ID-level results
// across backends directly.
func E11Triples(n int) []rdf.Triple {
	return E9Data(n).Triples()
}

// E11Probes derives a probe-pattern mix from the graph's own triples,
// covering every index shape: one bound position (S, P, O), two bound
// positions (SP, PO, SO) and ground membership — the probes the
// solvers' fail-first selectivity loop issues at every search node.
// samples bounds the number of sampled triples (≤ 0: every triple;
// probe diversity matters, because a small hot probe set lets the map
// backend answer from cache, which no real search workload does).
// Repeated-variable patterns are deliberately not in the throughput
// mix: their residual filter scan is backend-independent by design
// (same candidates, same MatchesPatternID), so they only measure the
// workload, not the storage backend; E11 checks them for agreement
// instead. Probes are encoded IDTriples, valid for any graph loaded
// from the same triple list (identical dictionary IDs).
func E11Probes(g *rdf.Graph, samples int) []rdf.IDTriple {
	ts := g.TriplesID()
	step := 1
	if samples > 0 && len(ts) > samples {
		step = len(ts) / samples
	}
	out := make([]rdf.IDTriple, 0, 7*(len(ts)/step+1))
	x, y := rdf.VarID(0), rdf.VarID(1)
	for i := 0; i < len(ts); i += step {
		t := ts[i]
		out = append(out,
			rdf.IDTriple{t[0], x, y},    // bound S
			rdf.IDTriple{x, t[1], y},    // bound P
			rdf.IDTriple{x, y, t[2]},    // bound O
			rdf.IDTriple{t[0], t[1], y}, // bound SP
			rdf.IDTriple{x, t[1], t[2]}, // bound PO
			rdf.IDTriple{t[0], x, t[2]}, // bound SO
			t,                           // ground membership
		)
	}
	return out
}

// e11AgreeProbes extends the throughput probes with the shapes that
// exercise the residual-filter path: repeated variables across every
// position pair and the fully unbound pattern.
func e11AgreeProbes(g *rdf.Graph) []rdf.IDTriple {
	out := E11Probes(g, 64)
	ts := g.TriplesID()
	x := rdf.VarID(0)
	step := len(ts)/64 + 1
	for i := 0; i < len(ts); i += step {
		t := ts[i]
		out = append(out,
			rdf.IDTriple{x, t[1], x}, // repeated S=O
			rdf.IDTriple{x, x, t[2]}, // repeated S=P
			rdf.IDTriple{t[0], x, x}, // repeated P=O
			rdf.IDTriple{x, x, x},    // triple loop
		)
	}
	return append(out, rdf.IDTriple{x, rdf.VarID(1), rdf.VarID(2)})
}

// E11 measures the frozen CSR backend against the map backend on the
// same triple set: cold load (incremental map construction vs the
// counting-pass bulk load), MatchCountID and MatchID probe throughput
// over the full index-shape mix, and top-down enumeration of the E9
// tree. The count loop probes with every triple of the graph (full
// key diversity, the cache behaviour of a real search); the match
// loop uses a sparser sample because the map backend materialises
// every result list. The agree column checks that counts, match
// results (content and order) and enumeration streams (content and
// order) coincide.
func E11FrozenBackend(ns []int, reps int) *Table {
	t := &Table{
		ID:    "E11",
		Title: fmt.Sprintf("frozen CSR backend vs map backend (%d probe reps)", reps),
		Claim: "freeze: array/galloping probes beat map lookups; bulk load beats incremental; identical streams",
		Header: []string{"n", "|G|", "load(map)", "load(bulk)", "count(map)", "count(frz)",
			"match(map)", "match(frz)", "enum(map)", "enum(frz)", "agree"},
	}
	f := ptree.Forest{E9Tree()}
	for _, n := range ns {
		ts := E11Triples(n)
		var gm, gf *rdf.Graph
		dLoadMap := timed(func() { gm = rdf.GraphOf(ts...) })
		dLoadBulk := timed(func() { gf = rdf.GraphFromTriples(ts) })
		// The sharded backend rides the agreement checks of this table
		// (its own timings are E12's subject): every probe below is
		// also cross-checked against a 3-shard twin.
		gs := rdf.GraphFromTriplesSharded(ts, 3)
		countProbes := E11Probes(gm, 0)
		matchProbes := E11Probes(gm, 128)
		agree := gm.Len() == gf.Len() && gm.Len() == gs.Len()
		var cm, cf int
		dCountM := timed(func() {
			for r := 0; r < reps; r++ {
				cm = 0
				for _, p := range countProbes {
					cm += gm.MatchCountID(p)
				}
			}
		})
		dCountF := timed(func() {
			for r := 0; r < reps; r++ {
				cf = 0
				for _, p := range countProbes {
					cf += gf.MatchCountID(p)
				}
			}
		})
		var mm, mf int
		dMatchM := timed(func() {
			for r := 0; r < reps; r++ {
				mm = 0
				for _, p := range matchProbes {
					mm += len(gm.MatchID(p))
				}
			}
		})
		dMatchF := timed(func() {
			for r := 0; r < reps; r++ {
				mf = 0
				for _, p := range matchProbes {
					mf += len(gf.MatchID(p))
				}
			}
		})
		if cm != cf || mm != mf {
			agree = false
		}
		for _, p := range e11AgreeProbes(gm) {
			if gm.MatchCountID(p) != gf.MatchCountID(p) ||
				gm.MatchCountID(p) != gs.MatchCountID(p) ||
				!slices.Equal(gm.MatchID(p), gf.MatchID(p)) ||
				!slices.Equal(gm.MatchID(p), gs.MatchID(p)) ||
				!slices.Equal(gm.CandidatesID(p), gf.CandidatesID(p)) ||
				!slices.Equal(gm.CandidatesID(p), gs.CandidatesID(p)) {
				agree = false
				break
			}
		}
		var em, ef *rdf.IDMappingSet
		dEnumM := timed(func() { em = core.EnumerateTopDownForestID(f, gm) })
		dEnumF := timed(func() { ef = core.EnumerateTopDownForestID(f, gf) })
		es := core.EnumerateTopDownForestID(f, gs)
		if em.Len() != ef.Len() || em.Len() != es.Len() {
			agree = false
		} else {
			for i := 0; i < em.Len() && agree; i++ {
				agree = slices.Equal(em.Row(i), ef.Row(i)) && slices.Equal(em.Row(i), es.Row(i))
			}
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(gm.Len()), ms(dLoadMap), ms(dLoadBulk),
			ms(dCountM), ms(dCountF), ms(dMatchM), ms(dMatchF),
			ms(dEnumM), ms(dEnumF), fmt.Sprint(agree))
	}
	return t
}

// E12MatchProbes derives the solver-realistic materialisation mix
// from the graph's own triples: subject-bound shapes (S, SP, SO),
// (P,O) range probes and ground membership — the patterns the
// fail-first loop actually materialises through LookupRangeID after
// MatchCountID has ranked all patterns by selectivity. Single-bound P
// and O probes are deliberately separate (E12MergeProbes): the solver
// materialises them only when nothing more selective exists, and on
// the sharded backend they are the full cross-shard k-way merge,
// measured in its own column rather than averaged away here.
func E12MatchProbes(g *rdf.Graph, samples int) []rdf.IDTriple {
	ts := g.TriplesID()
	step := 1
	if samples > 0 && len(ts) > samples {
		step = len(ts) / samples
	}
	out := make([]rdf.IDTriple, 0, 5*(len(ts)/step+1))
	x, y := rdf.VarID(0), rdf.VarID(1)
	for i := 0; i < len(ts); i += step {
		t := ts[i]
		out = append(out,
			rdf.IDTriple{t[0], x, y},    // bound S: one shard, zero-copy
			rdf.IDTriple{t[0], t[1], y}, // bound SP: one shard, gallop
			rdf.IDTriple{t[0], x, t[2]}, // bound SO: one shard, gallop
			rdf.IDTriple{x, t[1], t[2]}, // bound PO: per-shard gallop + merge
			t,                           // ground membership: one shard
		)
	}
	return out
}

// E12MergeProbes is the cross-shard single-key mix: bound-P and
// bound-O patterns, whose materialisation on the sharded backend is
// the k-way sequence-number merge over every shard's posting list
// (the frozen backend returns the same lists as zero-copy arena
// ranges — this column is the price of the partition).
func E12MergeProbes(g *rdf.Graph, samples int) []rdf.IDTriple {
	ts := g.TriplesID()
	step := 1
	if samples > 0 && len(ts) > samples {
		step = len(ts) / samples
	}
	out := make([]rdf.IDTriple, 0, 2*(len(ts)/step+1))
	x, y := rdf.VarID(0), rdf.VarID(1)
	for i := 0; i < len(ts); i += step {
		t := ts[i]
		out = append(out,
			rdf.IDTriple{x, t[1], y}, // bound P
			rdf.IDTriple{x, y, t[2]}, // bound O
		)
	}
	return out
}

// E12 measures the sharded backend against the frozen backend on the
// same triple set, per shard count m: cold load (bulk into one arena
// vs bulk into m shards), MatchCountID over the full index-shape mix
// (sharded counts are sums of per-shard range lengths — no merge),
// MatchID over the solver-realistic materialisation mix
// (E12MatchProbes), the cross-shard single-key merge in its own
// column (E12MergeProbes), and top-down enumeration of the E9 tree.
// The agree column cross-checks, per (n, m): counts, match results
// and candidate lists over the full shape mix including repeated
// variables (e11AgreeProbes), the AllID merge against the insertion
// order, and byte-identical enumeration streams.
func E12ShardedBackend(ns []int, shardCounts []int, reps int) *Table {
	t := &Table{
		ID:    "E12",
		Title: fmt.Sprintf("sharded backend vs frozen backend (%d probe reps, shard counts %v)", reps, shardCounts),
		Claim: "subject-bound probes stay one-shard zero-copy, counts sum, only cross-shard lists pay the seq merge; identical streams",
		Header: []string{"n", "|G|", "m", "load(frz)", "load(shd)", "count(frz)", "count(shd)",
			"match(frz)", "match(shd)", "merge(frz)", "merge(shd)", "enum(frz)", "enum(shd)", "agree"},
	}
	f := ptree.Forest{E9Tree()}
	timeProbes := func(g *rdf.Graph, count, match, merge []rdf.IDTriple) (dc, dma, dme time.Duration, sums [3]int) {
		dc = timed(func() {
			for r := 0; r < reps; r++ {
				sums[0] = 0
				for _, p := range count {
					sums[0] += g.MatchCountID(p)
				}
			}
		})
		dma = timed(func() {
			for r := 0; r < reps; r++ {
				sums[1] = 0
				for _, p := range match {
					sums[1] += len(g.MatchID(p))
				}
			}
		})
		dme = timed(func() {
			for r := 0; r < reps; r++ {
				sums[2] = 0
				for _, p := range merge {
					sums[2] += len(g.MatchID(p))
				}
			}
		})
		return
	}
	for _, n := range ns {
		ts := E11Triples(n)
		var gf *rdf.Graph
		dLoadF := timed(func() { gf = rdf.GraphFromTriples(ts) })
		countProbes := E11Probes(gf, 0)
		matchProbes := E12MatchProbes(gf, 128)
		mergeProbes := E12MergeProbes(gf, 64)
		agreeProbes := e11AgreeProbes(gf)
		dCountF, dMatchF, dMergeF, sumsF := timeProbes(gf, countProbes, matchProbes, mergeProbes)
		var ef *rdf.IDMappingSet
		dEnumF := timed(func() { ef = core.EnumerateTopDownForestID(f, gf) })
		for _, m := range shardCounts {
			var gs *rdf.Graph
			dLoadS := timed(func() { gs = rdf.GraphFromTriplesSharded(ts, m) })
			dCountS, dMatchS, dMergeS, sumsS := timeProbes(gs, countProbes, matchProbes, mergeProbes)
			var es *rdf.IDMappingSet
			dEnumS := timed(func() { es = core.EnumerateTopDownForestID(f, gs) })
			agree := gf.Len() == gs.Len() && sumsF == sumsS &&
				slices.Equal(gs.Shards().AllID(), gf.TriplesID())
			for _, p := range agreeProbes {
				if gf.MatchCountID(p) != gs.MatchCountID(p) ||
					!slices.Equal(gf.MatchID(p), gs.MatchID(p)) ||
					!slices.Equal(gf.CandidatesID(p), gs.CandidatesID(p)) {
					agree = false
					break
				}
			}
			if ef.Len() != es.Len() {
				agree = false
			} else {
				for i := 0; i < ef.Len() && agree; i++ {
					agree = slices.Equal(ef.Row(i), es.Row(i))
				}
			}
			t.AddRow(fmt.Sprint(n), fmt.Sprint(gf.Len()), fmt.Sprint(m),
				ms(dLoadF), ms(dLoadS), ms(dCountF), ms(dCountS),
				ms(dMatchF), ms(dMatchS), ms(dMergeF), ms(dMergeS),
				ms(dEnumF), ms(dEnumS), fmt.Sprint(agree))
		}
	}
	return t
}

// Experiment is a named, lazily-run experiment: Run executes the
// sweeps and builds the table. Callers that only want some experiments
// (wdbench -only, profiling runs) filter by ID before paying for
// execution.
type Experiment struct {
	ID  string
	Run func() *Table
}

// ParseShardCounts parses a comma-separated list of positive shard
// counts — the value syntax of the -shards flag shared by wdbench
// (the E12 sweep) and wdfuzz (the backend stream diff).
func ParseShardCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shard counts")
	}
	return out, nil
}

// Experiments returns the E1..E17 suite as lazily-run experiments.
// shardCounts parameterises the E12 shard-scaling sweep (wdbench
// -shards); when omitted it defaults to 1, 2 and 4.
func Experiments(full bool, workers int, shardCounts ...int) []Experiment {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	e3Max := 6
	e13PerClient := 4
	e14Ns := []int{4096, 16384}
	e16N := 2048
	if full {
		e3Max = 7
		e13PerClient = 16
		e14Ns = append(e14Ns, 65536)
		e16N = 8192
	}
	return []Experiment{
		{"E1", func() *Table { return E1CoreTreewidth(7) }},
		{"E2", func() *Table { return E2DominationWidth(5) }},
		{"E3", func() *Table { return E3BoundedDW(e3Max, 24) }},
		{"E4", func() *Table { return E4BranchTreewidth(7, 24) }},
		{"E5", func() *Table { return E5CliqueReduction([]int{2, 3}, []int{6, 10, 14}, 42) }},
		{"E6", func() *Table { return E6PebbleVsHom([]int{3, 4, 5}, 15) }},
		{"E7", func() *Table { return E7DataScaling(3, []int{12, 24, 48, 96, 192}) }},
		{"E8", func() *Table { return E8BatchEval(3, 24, workers) }},
		{"E9", func() *Table { return E9Enumeration([]int{64, 128, 256}, workers) }},
		{"E10", func() *Table { return E10PreparedVsOneShot([]int{64, 128, 256}, 32) }},
		{"E11", func() *Table { return E11FrozenBackend([]int{1024, 4096, 16384}, 3) }},
		{"E12", func() *Table { return E12ShardedBackend([]int{4096, 16384}, shardCounts, 3) }},
		{"E13", func() *Table { return E13Serving(128, e13PerClient, workers, []int{1, 4, 16}, 8, 64) }},
		{"E14", func() *Table { return E14SnapshotColdStart(e14Ns) }},
		{"E15", func() *Table { return E15Ingest(e14Ns, workers) }},
		{"E16", func() *Table { return E16Planner(e16N, 4) }},
		{"E17", func() *Table { return E17FilterPushdown(e16N) }},
	}
}

// Suite runs the experiment suite. With full=false the sweeps stop
// where every row completes in at most a few seconds; full=true
// extends E3 into the regime where the natural algorithm needs tens of
// seconds per instance (the point of the experiment).
func Suite(full bool) []*Table {
	return SuiteWorkers(full, 4)
}

// SuiteWorkers is Suite with an explicit worker count for the batched
// (E8) and enumeration (E9) experiments.
func SuiteWorkers(full bool, workers int) []*Table {
	specs := Experiments(full, workers)
	out := make([]*Table, len(specs))
	for i, s := range specs {
		out[i] = s.Run()
	}
	return out
}
