package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"time"

	"wdsparql/internal/core"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
)

// E16: the query-planner ablation. For each workload shape and each
// storage backend the experiment runs the two execution tiers the
// engine tunes differently — the ordered row stream (planner off =
// ModeHeuristic, on = ModePlanned) and the order-free count (off =
// ModeHeuristic, on = ModeStrict plan-following) — and reports wall
// time, search nodes visited and selection count probes side by side.
// The agree column is the determinism gate: planner-on streams must be
// byte-identical to planner-off (and to the map-backend reference),
// and strict-mode counts must equal the stream cardinality. wdbench
// exits non-zero when any agree cell is false.

// e16ChainTree is a single-node 3-pattern chain: the shape where join
// order matters most inside one BGP.
func e16ChainTree() *ptree.Tree {
	v, i := rdf.Var, rdf.IRI
	return ptree.FromSpec(ptree.Spec{Pattern: []rdf.Triple{
		rdf.T(v("a"), i("p0"), v("b")),
		rdf.T(v("b"), i("p1"), v("c")),
		rdf.T(v("c"), i("p2"), v("d")),
	}})
}

// e16CycleTree is a directed triangle over one predicate: sparse data
// makes most branches die late, exposing the heuristic's count-1 early
// break (it can miss a remaining pattern that is already at zero).
func e16CycleTree() *ptree.Tree {
	v, i := rdf.Var, rdf.IRI
	return ptree.FromSpec(ptree.Spec{Pattern: []rdf.Triple{
		rdf.T(v("a"), i("p0"), v("b")),
		rdf.T(v("b"), i("p0"), v("c")),
		rdf.T(v("c"), i("p0"), v("a")),
	}})
}

// e16CycleData draws n edges over one predicate with sources uniform
// over n nodes but targets concentrated in the first quarter: three in
// four nodes have no incoming edge, so most triangle walks are doomed
// the moment ?a is fixed — the workload that separates complete dead
// detection from the heuristic's count-1 early break.
func e16CycleData(n int) *rdf.Graph {
	g := rdf.NewGraph()
	rng := rand.New(rand.NewSource(7))
	hub := max(1, n/4)
	for i := 0; i < n; i++ {
		g.AddTriple(fmt.Sprintf("v%d", rng.Intn(n)), "p0", fmt.Sprintf("v%d", rng.Intn(hub)))
	}
	return g
}

// e16Timed reports the per-run duration as the best of four timed
// batches of six runs each: the measured executions are around a
// millisecond, where single shots are scheduler- and GC-noise
// dominated, so batching amortises the jitter and best-of picks the
// interference-free estimate. The GC flush levels collector debt left
// by the preceding measurement.
func e16Timed(f func()) time.Duration {
	const reps = 6
	runtime.GC()
	var best time.Duration
	for i := 0; i < 4; i++ {
		d := timed(func() {
			for j := 0; j < reps; j++ {
				f()
			}
		}) / reps
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

// e16Collect materialises the stream of fp under one mode.
func e16Collect(fp *core.ForestProgram, mode hom.SearchMode) []rdf.Row {
	var out []rdf.Row
	fp.Tuned(mode, 0, nil).Rows(func(r rdf.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

func e16StreamsEqual(a, b []rdf.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !slices.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// E16Planner measures the compile-time planner against the per-node
// heuristic on three workload shapes (the E9 wdPT, a single-node
// chain, a sparse directed triangle) across the map, frozen and
// sharded backends.
func E16Planner(n, shards int) *Table {
	t := &Table{
		ID:    "E16",
		Title: fmt.Sprintf("query planner ablation: planner off vs on (n=%d)", n),
		Claim: "plan-following count cuts probes/node to O(1); planned streams stay byte-identical with nodes ≤ heuristic",
		Header: []string{"shape", "backend", "exec", "rows", "t(off)", "nodes(off)",
			"t(on)", "nodes(on)", "probes(off/on)", "agree"},
	}
	shapes := []struct {
		name string
		f    ptree.Forest
		g    *rdf.Graph
	}{
		{"tree(E9)", ptree.Forest{E9Tree()}, E9Data(n)},
		{"chain", ptree.Forest{e16ChainTree()}, E9Data(n)},
		{"cycle", ptree.Forest{e16CycleTree()}, e16CycleData(n)},
	}
	for _, sh := range shapes {
		backends := []struct {
			name string
			g    *rdf.Graph
		}{
			{"map", sh.g},
			{"frozen", sh.g.Clone().Freeze()},
			{fmt.Sprintf("sharded(%d)", shards), sh.g.Clone().Shard(shards)},
		}
		var mapRef []rdf.Row
		for _, b := range backends {
			fp := core.CompileForest(sh.f, b.g)
			ref := e16Collect(fp, hom.ModeHeuristic)
			if mapRef == nil {
				mapRef = ref
			}
			planned := e16Collect(fp, hom.ModePlanned)
			streamsOK := e16StreamsEqual(ref, planned) && e16StreamsEqual(ref, mapRef)

			// One counter pass plus a best-of-five timing pass (stats
			// attachment off while timing, so counters stay per-run).
			run := func(mode hom.SearchMode) (rows int, st hom.SearchStats, d time.Duration) {
				fp.Tuned(mode, 0, &st).Rows(func(rdf.Row) bool { rows++; return true })
				d = e16Timed(func() {
					fp.Tuned(mode, 0, nil).Rows(func(rdf.Row) bool { return true })
				})
				return rows, st, d
			}

			// Ordered stream: heuristic vs planned.
			nOff, stOff, dOff := run(hom.ModeHeuristic)
			nOn, stOn, dOn := run(hom.ModePlanned)
			t.AddRow(sh.name, b.name, "enum", fmt.Sprint(len(ref)),
				ms(dOff), fmt.Sprint(stOff.Nodes), ms(dOn), fmt.Sprint(stOn.Nodes),
				fmt.Sprintf("%d/%d", stOff.CountProbes, stOn.CountProbes),
				fmt.Sprint(streamsOK && nOff == len(ref) && nOn == len(ref)))

			// Order-free count: heuristic vs strict plan-following.
			cOff, stOffC, dOffC := run(hom.ModeHeuristic)
			cOn, stOnC, dOnC := run(hom.ModeStrict)
			t.AddRow(sh.name, b.name, "count", fmt.Sprint(cOn),
				ms(dOffC), fmt.Sprint(stOffC.Nodes), ms(dOnC), fmt.Sprint(stOnC.Nodes),
				fmt.Sprintf("%d/%d", stOffC.CountProbes, stOnC.CountProbes),
				fmt.Sprint(cOff == len(ref) && cOn == len(ref)))
		}
	}
	return t
}
