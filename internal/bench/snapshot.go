package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"wdsparql"
	"wdsparql/internal/rdf"
)

// E14 measures the cold-start payoff of persistent snapshots: the wall
// time from "a process with nothing in memory" to "the first query row
// is out", for the three ways a server can come up on the same graph —
// re-parsing the N-Triples text (interning every IRI and rebuilding
// every index), loading the checksummed snapshot image into the heap
// (one read + validation, zero parse), and mmapping the image (pages
// fault in on demand, so load cost is independent of graph size). Row
// counts are cross-checked across all three paths: a snapshot that is
// fast but serves different rows would be worse than useless.

// E14QueryText is the first query of the cold process: the E9/E10
// enumeration workload.
const E14QueryText = E10PatternText

// e14ColdStart measures one cold start: open the graph (by whatever
// path), build an engine, prepare the query, and run it to completion.
// first is the time from cold to the first row on the iterator; rows
// is the full result cardinality (the agreement check).
func e14ColdStart(open func() (*rdf.Graph, io.Closer, error)) (first time.Duration, rows int) {
	t0 := time.Now()
	g, closer, err := open()
	if err != nil {
		panic(err)
	}
	if closer != nil {
		defer closer.Close()
	}
	eng := wdsparql.NewEngine(g, wdsparql.WithQueryCache(4))
	q, err := eng.PrepareText(E14QueryText)
	if err != nil {
		panic(err)
	}
	for range q.Rows(context.Background()) {
		if rows == 0 {
			first = time.Since(t0)
		}
		rows++
	}
	return first, rows
}

// E14SnapshotColdStart builds the experiment table: per graph size, the
// N-Triples file and the snapshot image are written to disk, then each
// startup path is timed cold-to-first-row. The final column checks that
// all three paths enumerate the same number of rows.
func E14SnapshotColdStart(ns []int) *Table {
	t := &Table{
		ID:    "E14",
		Title: "snapshot cold start: time to first query row, parse vs heap load vs mmap",
		Claim: "a checksummed image loads in ~constant time; re-parsing pays per triple; same rows either way",
		Header: []string{"n", "|G|", "nt(KB)", "snap(KB)", "parse", "snap(heap)",
			"snap(mmap)", "speedup", "rows", "agree"},
	}
	dir, err := os.MkdirTemp("", "wdsparql-e14-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	for _, n := range ns {
		g := rdf.GraphFromTriples(E11Triples(n))
		ntPath := filepath.Join(dir, fmt.Sprintf("g%d.nt", n))
		snapPath := filepath.Join(dir, fmt.Sprintf("g%d.wdsnap", n))
		f, err := os.Create(ntPath)
		if err != nil {
			panic(err)
		}
		if err := rdf.WriteGraph(f, g); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		if err := g.WriteSnapshot(snapPath); err != nil {
			panic(err)
		}
		ntSize := fileSize(ntPath)
		snapSize := fileSize(snapPath)

		dParse, rowsParse := e14ColdStart(func() (*rdf.Graph, io.Closer, error) {
			f, err := os.Open(ntPath)
			if err != nil {
				return nil, nil, err
			}
			defer f.Close()
			g, err := rdf.ReadGraph(f)
			return g, nil, err
		})
		dHeap, rowsHeap := e14ColdStart(func() (*rdf.Graph, io.Closer, error) {
			snap, err := rdf.LoadSnapshot(snapPath, rdf.SnapshotHeap)
			if err != nil {
				return nil, nil, err
			}
			return snap.Graph(), snap, nil
		})
		dMmap, rowsMmap := e14ColdStart(func() (*rdf.Graph, io.Closer, error) {
			snap, err := rdf.LoadSnapshot(snapPath, rdf.SnapshotMmap)
			if err != nil {
				return nil, nil, err
			}
			return snap.Graph(), snap, nil
		})

		agree := rowsParse > 0 && rowsParse == rowsHeap && rowsParse == rowsMmap
		speedup := "-"
		if dMmap > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(dParse)/float64(dMmap))
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(g.Len()),
			fmt.Sprint(ntSize/1024), fmt.Sprint(snapSize/1024),
			ms(dParse), ms(dHeap), ms(dMmap), speedup,
			fmt.Sprint(rowsParse), fmt.Sprint(agree))
	}
	return t
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		panic(err)
	}
	return fi.Size()
}
