package bench

import (
	"fmt"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// Micro-benchmarks of the implementation (not paper claims): the three
// enumeration strategies on application-shaped workloads.

// M1Enumeration compares subtree enumeration, top-down enumeration and
// the hash-join compositional evaluator on OPTIONAL-heavy workloads.
// All three must produce the same solution count.
func M1Enumeration() *Table {
	t := &Table{
		ID:     "M1",
		Title:  "enumeration strategies on application workloads",
		Claim:  "all strategies agree; top-down avoids the subtree blow-up",
		Header: []string{"workload", "|G|", "solutions", "subtree-enum", "top-down", "hash-join"},
	}
	runs := []struct {
		name string
		f    ptree.Forest
		g    *rdf.Graph
	}{
		{
			name: "social/60",
			f: ptree.MustWDPF(sparql.MustParse(
				`(((?p knows ?q) OPT (?p worksAt ?org)) OPT (?q email ?m))`)),
			g: gen.SocialNetwork(60, 1),
		},
		{
			name: "star/6arms/50items",
			f:    ptree.Forest{gen.OptStar(6)},
			g:    gen.ItemCatalog(50, 6, 2),
		},
		{
			name: "chain/depth6",
			f:    ptree.Forest{gen.OptChain(6)},
			g:    gen.PathData(40, 30, 3),
		},
	}
	for _, r := range runs {
		var nSub, nTop, nHash int
		dSub := timed(func() { nSub = core.EnumerateForest(r.f, r.g).Len() })
		dTop := timed(func() { nTop = core.EnumerateTopDownForest(r.f, r.g).Len() })
		pat := ptree.ForestToPattern(r.f)
		dHash := timed(func() { nHash = sparql.EvalHashJoin(pat, r.g).Len() })
		sols := fmt.Sprint(nTop)
		if nSub != nTop || nHash != nTop {
			sols = fmt.Sprintf("DISAGREE(%d/%d/%d)", nSub, nTop, nHash)
		}
		t.AddRow(r.name, fmt.Sprint(r.g.Len()), sols, ms(dSub), ms(dTop), ms(dHash))
	}
	return t
}

// MicroExperiments returns the micro-benchmark suite lazily.
func MicroExperiments() []Experiment {
	return []Experiment{
		{"M1", func() *Table { return M1Enumeration() }},
	}
}

// Micro runs the micro-benchmark suite.
func Micro() []*Table {
	specs := MicroExperiments()
	out := make([]*Table, len(specs))
	for i, s := range specs {
		out[i] = s.Run()
	}
	return out
}
