package bench

import (
	"strings"
	"testing"
	"time"
)

// The experiment harness itself is tested: every table must render,
// have consistent row widths, and — crucially — every correctness
// column ("agree", "oracle agrees", "exact?") must carry the value the
// corresponding theorem predicts.

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "T", Title: "test", Claim: "c", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	out := tbl.String()
	if !strings.Contains(out, "T — test") || !strings.Contains(out, "claim: c") {
		t.Fatalf("render: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestMsFormatting(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:  "500ns",
		2500 * time.Nanosecond: "2.5µs",
		3 * time.Millisecond:   "3.00ms",
		2 * time.Second:        "2.00s",
	}
	for d, want := range cases {
		if got := ms(d); got != want {
			t.Fatalf("ms(%v)=%q, want %q", d, got, want)
		}
	}
}

func TestE1Values(t *testing.T) {
	tbl := E1CoreTreewidth(4)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// k=4 row: ctw(S)=3, tw(S')=3, ctw(S')=1, core=true.
	row := tbl.Rows[2]
	if row[1] != "3" || row[2] != "3" || row[3] != "1" || row[4] != "true" {
		t.Fatalf("E1 k=4 row: %v", row)
	}
}

func TestE2Values(t *testing.T) {
	tbl := E2DominationWidth(3)
	for _, row := range tbl.Rows {
		if row[1] != "1" {
			t.Fatalf("dw must be 1: %v", row)
		}
		if row[3] != "2" {
			t.Fatalf("|GtG(T1[r1])| must be 2: %v", row)
		}
	}
}

func TestE3Agreement(t *testing.T) {
	tbl := E3BoundedDW(3, 12)
	for _, row := range tbl.Rows {
		if row[4] != "true" {
			t.Fatalf("algorithms must agree: %v", row)
		}
		if row[5] != "true" {
			t.Fatalf("E3 instances are members: %v", row)
		}
	}
}

func TestE4Agreement(t *testing.T) {
	tbl := E4BranchTreewidth(3, 12)
	for _, row := range tbl.Rows {
		if row[1] != "1" || row[2] != "1" {
			t.Fatalf("bw=dw=1 expected: %v", row)
		}
		if row[6] != "true" {
			t.Fatalf("agreement expected: %v", row)
		}
	}
}

func TestE5OracleAgreement(t *testing.T) {
	tbl := E5CliqueReduction([]int{2, 3}, []int{5, 7}, 1)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("reduction must agree with oracle: %v", row)
		}
	}
}

func TestE6RelaxationColumns(t *testing.T) {
	tbl := E6PebbleVsHom([]int{3}, 9)
	for _, row := range tbl.Rows {
		// hom=false on Turán; pebble may be true (row 2 pebbles) but
		// with 3 pebbles on K3 (ctw=2) Prop. 3 forces exactness.
		if row[2] != "false" {
			t.Fatalf("hom must fail on Turán: %v", row)
		}
		if row[1] == "3" && row[6] != "true" {
			t.Fatalf("3 pebbles exact on K3: %v", row)
		}
	}
}

func TestE7Agreement(t *testing.T) {
	tbl := E7DataScaling(3, []int{8, 16})
	for _, row := range tbl.Rows {
		if row[4] != "true" {
			t.Fatalf("agreement expected: %v", row)
		}
	}
}

func TestAblationTables(t *testing.T) {
	a1 := A1FailFirst([]int{3}, 9)
	for _, row := range a1.Rows {
		if row[1] == "DISAGREE" {
			t.Fatalf("solvers disagree: %v", row)
		}
	}
	a2 := A2UnaryPruning([]int{3}, 12)
	for _, row := range a2.Rows {
		if row[3] != "true" {
			t.Fatalf("pruning must not change verdicts: %v", row)
		}
	}
	a3 := A3ExactTreewidth(4)
	for _, row := range a3.Rows {
		if row[1] != row[2] {
			t.Fatalf("heuristic should be optimal on these hosts: %v", row)
		}
	}
}

func TestE8Agreement(t *testing.T) {
	tbl := E8BatchEval(2, 12, 2)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] == "0" {
			t.Fatalf("E8 must evaluate a non-empty batch: %v", row)
		}
		if row[len(row)-1] != "true" {
			t.Fatalf("batched and per-mapping evaluation must agree: %v", row)
		}
	}
}

func TestE9Agreement(t *testing.T) {
	tbl := E9Enumeration([]int{32, 64}, 2)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] == "0" {
			t.Fatalf("E9 must enumerate a non-empty result: %v", row)
		}
		if row[len(row)-1] != "true" {
			t.Fatalf("string and row pipelines must agree: %v", row)
		}
	}
}

func TestE10Agreement(t *testing.T) {
	tbl := E10PreparedVsOneShot([]int{32, 64}, 4)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] == "0" {
			t.Fatalf("E10 must enumerate a non-empty result: %v", row)
		}
		if row[len(row)-1] != "true" {
			t.Fatalf("one-shot and prepared execution must agree: %v", row)
		}
	}
}

func TestE11Agreement(t *testing.T) {
	tbl := E11FrozenBackend([]int{32, 64}, 4)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] == "0" {
			t.Fatalf("E11 must load a non-empty graph: %v", row)
		}
		if row[len(row)-1] != "true" {
			t.Fatalf("frozen and map backends must agree: %v", row)
		}
	}
}

func TestE12Agreement(t *testing.T) {
	tbl := E12ShardedBackend([]int{64}, []int{1, 2, 5}, 2)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] == "0" {
			t.Fatalf("E12 must load a non-empty graph: %v", row)
		}
		if row[len(row)-1] != "true" {
			t.Fatalf("sharded and frozen backends must agree: %v", row)
		}
	}
}

func TestE14Agreement(t *testing.T) {
	tbl := E14SnapshotColdStart([]int{64, 256})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-2] == "0" {
			t.Fatalf("E14 must enumerate a non-empty result: %v", row)
		}
		if row[len(row)-1] != "true" {
			t.Fatalf("parse, heap and mmap startup paths must agree: %v", row)
		}
	}
}

func TestParseShardCounts(t *testing.T) {
	if got, err := ParseShardCounts(" 1, 2,7 "); err != nil || len(got) != 3 || got[2] != 7 {
		t.Fatalf("ParseShardCounts: %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-2", "x", "1,,0"} {
		if _, err := ParseShardCounts(bad); err == nil {
			t.Fatalf("ParseShardCounts(%q) must fail", bad)
		}
	}
}

func TestTableAgreement(t *testing.T) {
	tbl := &Table{Header: []string{"n", "agree"}, Rows: [][]string{{"1", "true"}, {"2", "true"}}}
	if !tbl.Agreement() {
		t.Fatal("all-true agree column must pass")
	}
	tbl.AddRow("3", "false")
	if tbl.Agreement() {
		t.Fatal("false agree cell must fail")
	}
	// Non-agreement boolean columns (E6's "exact?", E5's "verdict") are
	// data, not cross-validation verdicts.
	data := &Table{Header: []string{"k", "exact?"}, Rows: [][]string{{"3", "false"}}}
	if !data.Agreement() {
		t.Fatal("non-agreement columns must not affect the verdict")
	}
}

func TestSuiteComposition(t *testing.T) {
	tables := Suite(false)
	if len(tables) != 17 {
		t.Fatalf("suite size: %d", len(tables))
	}
	ids := map[string]bool{}
	for _, tbl := range tables {
		ids[tbl.ID] = true
		if len(tbl.Rows) == 0 {
			t.Fatalf("empty table %s", tbl.ID)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Fatalf("%s: ragged row %v", tbl.ID, row)
			}
		}
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"} {
		if !ids[id] {
			t.Fatalf("missing %s", id)
		}
	}
}
