package bench

import (
	"fmt"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/graphalg"
	"wdsparql/internal/hom"
	"wdsparql/internal/pebble"
	"wdsparql/internal/rdf"
)

// Ablation experiments: quantify the design choices called out in
// DESIGN.md — the fail-first join ordering of the homomorphism solver,
// the unary candidate pruning of the pebble closure, and the exact
// subset dynamic program for treewidth versus the heuristics alone.

// A1FailFirst compares the production homomorphism solver against the
// static-order ablation and the arc-consistency variant on the Turán
// refutation workload.
func A1FailFirst(cliqueKs []int, n int) *Table {
	t := &Table{
		ID:     "A1",
		Title:  fmt.Sprintf("hom solver: fail-first vs static order vs AC (Turán refutation, n=%d)", n),
		Claim:  "fail-first ordering dominates on structured instances",
		Header: []string{"clique k", "fail-first", "static order", "AC-prep", "search nodes"},
	}
	for _, k := range cliqueKs {
		pat := []rdf.Triple(hom.NewTGraph(gen.KkTriples(k)...))
		g := gen.Turan(n, k-1, "r")
		var ff, so, ac bool
		dFF := timed(func() { ff = hom.Exists(pat, g) })
		dSO := timed(func() { so = hom.ExistsStaticOrder(pat, g) })
		dAC := timed(func() { ac = hom.ExistsAC(pat, g) })
		_, nodes := hom.CountSearchNodes(pat, g)
		if ff != so || ff != ac {
			t.AddRow(fmt.Sprint(k), "DISAGREE", "DISAGREE", "DISAGREE", "-")
			continue
		}
		t.AddRow(fmt.Sprint(k), ms(dFF), ms(dSO), ms(dAC), fmt.Sprint(nodes))
	}
	return t
}

// A2UnaryPruning compares the pebble closure with and without unary
// candidate pruning on the E3 extension test.
func A2UnaryPruning(ks []int, n int) *Table {
	t := &Table{
		ID:     "A2",
		Title:  fmt.Sprintf("pebble closure: unary pruning on/off (F_k child test, n=%d)", n),
		Claim:  "identical verdicts; pruning shrinks the enumerated family",
		Header: []string{"k", "pruned", "unpruned", "agree"},
	}
	for _, k := range ks {
		f := gen.Fk(k)
		g := gen.FkData(k, n, false, false)
		mu := gen.FkMu()
		// Reconstruct the E3 extension test on T1's clique child.
		s, ok := core.FindMatchedSubtree(f[0], g, mu)
		if !ok {
			t.AddRow(fmt.Sprint(k), "-", "-", "no witness")
			continue
		}
		child := s.Children()[0]
		gt := hom.NewGTGraph(s.Pattern().Union(child.Pattern), s.Vars())
		var a, b bool
		dA := timed(func() { a = pebble.Decide(2, gt, mu, g) })
		dB := timed(func() { b = pebble.DecideNoUnaryPruning(2, gt, mu, g) })
		t.AddRow(fmt.Sprint(k), ms(dA), ms(dB), fmt.Sprint(a == b))
	}
	return t
}

// A3ExactTreewidth compares the exact subset DP against the heuristic
// upper bound on the Gaifman graphs of the Example 3 family, reporting
// where the heuristic is already optimal.
func A3ExactTreewidth(kMax int) *Table {
	t := &Table{
		ID:     "A3",
		Title:  "treewidth: exact subset DP vs elimination heuristics",
		Claim:  "heuristics are optimal on cliques/grids; DP certifies it",
		Header: []string{"graph", "exact", "heuristic ub", "lower bound", "exact time", "heuristic time"},
	}
	hosts := []struct {
		name string
		g    *graphalg.UGraph
	}{}
	for k := 3; k <= kMax; k++ {
		hosts = append(hosts, struct {
			name string
			g    *graphalg.UGraph
		}{fmt.Sprintf("K%d", k), graphalg.Clique(k)})
	}
	hosts = append(hosts,
		struct {
			name string
			g    *graphalg.UGraph
		}{"grid4x4", graphalg.Grid(4, 4)},
		struct {
			name string
			g    *graphalg.UGraph
		}{"grid3x6", graphalg.Grid(3, 6)},
	)
	for _, h := range hosts {
		var exact, ub, lb int
		dExact := timed(func() { exact, _ = graphalg.Treewidth(h.g) })
		dHeu := timed(func() {
			ub = graphalg.TreewidthUpperBound(h.g)
			lb = graphalg.TreewidthLowerBound(h.g)
		})
		t.AddRow(h.name, fmt.Sprint(exact), fmt.Sprint(ub), fmt.Sprint(lb), ms(dExact), ms(dHeu))
	}
	return t
}

// AblationExperiments returns the ablation suite lazily.
func AblationExperiments() []Experiment {
	return []Experiment{
		{"A1", func() *Table { return A1FailFirst([]int{3, 4, 5}, 15) }},
		{"A2", func() *Table { return A2UnaryPruning([]int{3, 4, 5}, 24) }},
		{"A3", func() *Table { return A3ExactTreewidth(7) }},
	}
}

// Ablations runs the ablation suite.
func Ablations() []*Table {
	specs := AblationExperiments()
	out := make([]*Table, len(specs))
	for i, s := range specs {
		out[i] = s.Run()
	}
	return out
}
