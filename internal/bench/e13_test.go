package bench

import (
	"context"
	"fmt"
	"net/url"
	"testing"
	"time"

	"wdsparql"
	"wdsparql/internal/rdf"
)

func e13Engine(t *testing.T, n int) *wdsparql.Engine {
	t.Helper()
	return wdsparql.NewEngine(rdf.GraphFromTriples(E9Data(n).Triples()),
		wdsparql.WithQueryCache(16))
}

func e13OverloadRows(t *testing.T, eng *wdsparql.Engine) int {
	t.Helper()
	q, err := eng.PrepareText(E13OverloadQueryText)
	if err != nil {
		t.Fatal(err)
	}
	n, err := q.Count(context.Background(),
		wdsparql.Limit(E13RowLimit), wdsparql.Offset(E13OverloadOffset))
	if err != nil || n == 0 {
		t.Fatalf("empty overload workload: %d, %v", n, err)
	}
	return n
}

// TestE13OverloadSheds pins the premise of E13's overload column: the
// overload workload's service time is long enough (well past the Go
// scheduler's preemption quantum — see E13OverloadQueryText) that a
// 64-client herd against a gate of 8 genuinely saturates the gate and
// fills the bounded queue, so a measurable tail is shed with 503
// while every served response still decodes to the full page. If a
// data or solver change makes the workload cheap again, requests
// serialize, nothing sheds, and the experiment silently stops
// demonstrating admission control — this test fails instead.
func TestE13OverloadSheds(t *testing.T) {
	eng := e13Engine(t, 128)
	base, stop, err := E13StartServer(eng, 8, 8, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cell := E13Load(base, 64, 1, url.Values{
		"query":  {E13OverloadQueryText},
		"offset": {fmt.Sprint(E13OverloadOffset)},
	}, e13OverloadRows(t, eng))
	if cell.Errors > 0 || !cell.Agree {
		t.Fatalf("overload cell has errors or wrong streams: %+v", cell)
	}
	if cell.Shed == 0 {
		t.Fatalf("overload cell shed nothing (ok=%d): admission never engaged", cell.OK)
	}
	if cell.OK == 0 {
		t.Fatal("overload cell served nothing: gate never admitted")
	}
	t.Logf("ok=%d shed=%d p50=%v p99=%v", cell.OK, cell.Shed,
		cell.Percentile(0.5), cell.Percentile(0.99))
}
