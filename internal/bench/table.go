// Package bench is the experiment harness: it parameterises, times and
// tabulates the experiments E1–E7 of DESIGN.md, which reproduce the
// paper's constructions and demonstrate the tractability frontier
// empirically. cmd/wdbench renders the tables; bench_test.go exposes
// the same workloads as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim the table checks
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Agreement reports whether every agreement-bearing column ("agree",
// "oracle agrees") reads "true" in every row. Experiment tables use
// these columns for cross-validation verdicts, so a false cell means
// two evaluation paths diverged; wdbench turns that into a non-zero
// exit so CI smoke runs fail fast.
func (t *Table) Agreement() bool {
	for i, h := range t.Header {
		if h != "agree" && h != "oracle agrees" {
			continue
		}
		for _, row := range t.Rows {
			if i < len(row) && row[i] != "true" {
				return false
			}
		}
	}
	return true
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// timed runs f and returns its wall-clock duration.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// ms formats a duration with three significant-ish digits.
func ms(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
