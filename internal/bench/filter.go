package bench

import (
	"fmt"
	"time"

	"wdsparql/internal/core"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// E17: the filter-pushdown ablation. Each workload is a FILTER- or
// SELECT-decorated query over the E9 Erdős–Rényi data, compiled twice —
// bind-time pushdown on (the default) and off (every conjunct deferred
// to the subtree emit) — and the experiment reports wall time, search
// nodes expanded and candidates cut at bind time side by side. The
// agree column is the correctness gate: both placements must emit
// byte-identical row streams whose deduplicated solution set matches
// the compositional sparql.Eval reference; wdbench exits non-zero when
// any agree cell is false. The point of the table is the nodes column:
// on selective equality filters the pushdown prunes doomed branches
// before recursion, so nodes(on) < nodes(off) while the stream is
// unchanged.

// e17Queries is the workload mix: a selective equality filter on an
// optional chain (the pushdown's best case), a var-var disequality
// inside one BGP, a BOUND guard that can only run at subtree emit
// (deferred either way — the no-win control), and a projected DISTINCT
// over the same chain. hub is a node known to occur as a p0 object, so
// the equality filter selects a real, non-empty slice of the stream.
func e17Queries(hub string) []struct{ name, text string } {
	return []struct{ name, text string }{
		{"eq-push", fmt.Sprintf(`((((?x p0 ?y) OPT ((?y p1 ?z) OPT (?z p2 ?u))) OPT (?y p3 ?w)) FILTER ?y = %s)`, hub)},
		{"ne-varvar", `(((?x p0 ?y) AND (?y p1 ?z)) FILTER ?x != ?z)`},
		{"bound-defer", `((((?x p0 ?y) OPT (?y p1 ?z)) FILTER BOUND(?z)) FILTER ?x != n0)`},
		{"sel-distinct", fmt.Sprintf(`SELECT DISTINCT ?y WHERE ((((?x p0 ?y) OPT ((?y p1 ?z) OPT (?z p2 ?u))) OPT (?y p3 ?w)) FILTER NOT ?y = %s)`, hub)},
	}
}

// E17Hub returns the object of the first p0 triple of g — a constant
// guaranteed to select a non-empty slice of the E9 stream.
func E17Hub(g *rdf.Graph) string {
	for _, tr := range g.Triples() {
		if tr.P.Value == "p0" {
			return tr.O.Value
		}
	}
	return "n0"
}

// e17Compile mirrors the engine's prepare path on the internal API:
// unwrap the optional SELECT, translate to a wdPF, compile with the
// requested placement, apply the projection view.
func e17Compile(q sparql.Pattern, g *rdf.Graph, noPush bool) *core.ForestProgram {
	inner := q
	var proj []string
	distinct := false
	sel, isSel := q.(sparql.Select)
	if isSel {
		inner = sel.Where
		distinct = sel.Distinct
		for _, v := range sel.Vars {
			proj = append(proj, v.Value)
		}
	}
	f, err := ptree.WDPF(inner)
	if err != nil {
		panic(err)
	}
	fp := core.CompileForestOpts(f, g, core.CompileOpts{NoFilterPushdown: noPush})
	if isSel {
		fp = fp.Project(proj, distinct)
	}
	return fp
}

// E17FilterPushdown measures bind-time filter pushdown against
// all-deferred evaluation on the E9 data, per query shape.
func E17FilterPushdown(n int) *Table {
	t := &Table{
		ID:    "E17",
		Title: fmt.Sprintf("filter pushdown ablation: deferred vs bind-time (n=%d)", n),
		Claim: "pushdown prunes doomed branches before recursion: nodes(on) ≤ nodes(off), streams byte-identical",
		Header: []string{"query", "|G|", "rows", "t(off)", "nodes(off)",
			"t(on)", "nodes(on)", "pruned(on)", "agree"},
	}
	g := E9Data(n)
	for _, w := range e17Queries(E17Hub(g)) {
		q := sparql.MustParse(w.text)
		run := func(noPush bool) (rows []rdf.Row, st hom.SearchStats, d time.Duration) {
			fp := e17Compile(q, g, noPush)
			fp.Tuned(hom.ModeHeuristic, 0, &st).Rows(func(r rdf.Row) bool {
				rows = append(rows, r.Clone())
				return true
			})
			d = e16Timed(func() {
				fp.Tuned(hom.ModeHeuristic, 0, nil).Rows(func(rdf.Row) bool { return true })
			})
			return
		}
		off, stOff, dOff := run(true)
		on, stOn, dOn := run(false)
		agree := e16StreamsEqual(off, on) && stOn.Nodes <= stOff.Nodes
		if agree {
			// The deduplicated stream must match the compositional
			// reference set (projection without DISTINCT may repeat
			// projected rows in the stream).
			fp := e17Compile(q, g, false)
			set := rdf.NewIDMappingSet(fp.Layout(), g.Dict().NumIRIs())
			fp.Rows(func(r rdf.Row) bool { set.Add(r); return true })
			agree = set.Len() == sparql.EvalID(q, g).Len()
		}
		t.AddRow(w.name, fmt.Sprint(g.Len()), fmt.Sprint(len(on)),
			ms(dOff), fmt.Sprint(stOff.Nodes), ms(dOn), fmt.Sprint(stOn.Nodes),
			fmt.Sprint(stOn.FilterPruned), fmt.Sprint(agree))
	}
	return t
}
