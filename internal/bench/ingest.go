package bench

import (
	"bytes"
	"context"
	"fmt"
	"runtime"

	"wdsparql"
	"wdsparql/internal/ingest"
	"wdsparql/internal/rdf"
	"wdsparql/internal/rdf/backendtest"
)

// E15 measures the two halves of the live-data path. Ingest: the
// parallel streaming pipeline (chunk → decode pool → in-order merge)
// against the sequential reader on the same N-Triples bytes — the
// pipeline must be faster AND byte-identical (same dictionary IDs,
// same enumeration stream), both straight to the frozen arena and
// pre-sharded. Overlay: the enumeration cost of serving with the last
// tenth of the graph in the mutable delta overlay versus fully frozen,
// and again after Refreeze — the price of accepting live writes, and
// the proof that compaction restores pure-CSR speed. The agree column
// spans all of it: parallel==sequential streams, and identical row
// counts frozen vs overlay vs refrozen.

// E15QueryText is the enumeration workload for the overlay columns:
// the E9/E10 shape, so results compare across experiment tables.
const E15QueryText = E10PatternText

// E15Ingest builds the experiment table over graph sizes ns with the
// given decode-pool width (≤ 0: GOMAXPROCS).
func E15Ingest(ns []int, workers int) *Table {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t := &Table{
		ID:    "E15",
		Title: fmt.Sprintf("parallel ingest (%d workers) + live delta overlay vs frozen", workers),
		Claim: "the pipeline is sequential-equivalent but parallel; the overlay trades bounded read overhead for live writes, reclaimed by re-freeze",
		Header: []string{"n", "|G|", "nt(KB)", "parse", "ingest", "speedup",
			"ingest(sh3)", "enum", "enum(ovl)", "enum(refroze)", "rows", "agree"},
	}
	ctx := context.Background()
	for _, n := range ns {
		ts := E11Triples(n)
		var buf bytes.Buffer
		if err := rdf.WriteGraph(&buf, rdf.GraphFromTriples(ts)); err != nil {
			panic(err)
		}
		data := buf.Bytes()

		var seq, par, shd *rdf.Graph
		var err error
		dParse := timed(func() { seq, err = rdf.ReadGraph(bytes.NewReader(data)) })
		if err != nil {
			panic(err)
		}
		dIngest := timed(func() {
			par, err = ingest.Load(bytes.NewReader(data), ingest.Options{Workers: workers})
		})
		if err != nil {
			panic(err)
		}
		dShard := timed(func() {
			shd, err = ingest.Load(bytes.NewReader(data), ingest.Options{Workers: workers, Shards: 3})
		})
		if err != nil {
			panic(err)
		}
		streamsOK := backendtest.EqualStreams(seq, par) && backendtest.EqualStreams(seq, shd)

		// Overlay: the same graph with its last tenth applied as live
		// deltas, enumerated by the same prepared query.
		cut := len(ts) - len(ts)/10
		frozen := wdsparql.NewEngine(par)
		overlay := wdsparql.NewEngine(rdf.GraphFromTriples(ts[:cut])).ApplyDelta(ts[cut:])
		count := func(e *wdsparql.Engine) (rows int, err error) {
			q, err := e.PrepareText(E15QueryText)
			if err != nil {
				return 0, err
			}
			return q.Count(ctx)
		}
		var rowsF, rowsO, rowsR int
		dEnumF := timed(func() { rowsF, err = count(frozen) })
		if err != nil {
			panic(err)
		}
		dEnumO := timed(func() { rowsO, err = count(overlay) })
		if err != nil {
			panic(err)
		}
		refrozen := overlay.Refreeze()
		dEnumR := timed(func() { rowsR, err = count(refrozen) })
		if err != nil {
			panic(err)
		}

		agree := streamsOK && refrozen.OverlayLen() == 0 &&
			rowsF > 0 && rowsF == rowsO && rowsF == rowsR
		speedup := "-"
		if dIngest > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(dParse)/float64(dIngest))
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(seq.Len()), fmt.Sprint(len(data)/1024),
			ms(dParse), ms(dIngest), speedup, ms(dShard),
			ms(dEnumF), ms(dEnumO), ms(dEnumR),
			fmt.Sprint(rowsF), fmt.Sprint(agree))
	}
	return t
}
