package server

// Hot reload. The serving engine lives behind a reference-counted,
// atomically swappable holder so POST /reload can replace it — fresh
// snapshot, fresh prepared-query cache — without dropping a single
// in-flight request:
//
//   - Every /sparql request retains the current state once, after
//     admission, and releases it when its stream finishes. A reload
//     installs the new state first and only then drops the holder's
//     own reference, so requests already running keep their engine —
//     and the mmap behind it — alive until the last one completes.
//   - The backing Closer (an mmapped snapshot, typically) fires exactly
//     once, when the reference count reaches zero: immediately if the
//     old engine was idle, otherwise at the final release. No request
//     ever observes an unmapped arena.
//   - Reloads are serialised by a mutex; a failed reload leaves the old
//     state serving and bumps reload_failures, so a corrupt snapshot on
//     disk degrades to a 500 on /reload, never to a broken server.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"wdsparql"
	"wdsparql/internal/rdf"
)

// SnapshotStats is the /stats "snapshot" section: identity and load
// cost of the image behind the serving engine. Nil when the server was
// loaded from a parsed graph rather than a snapshot.
type SnapshotStats struct {
	Path     string  `json:"path"`
	Version  int     `json:"version"`
	Checksum string  `json:"checksum"` // hex image CRC: the snapshot's identity
	Mode     string  `json:"mode"`     // "heap" or "mmap"
	LoadMs   float64 `json:"load_ms"`
}

// SnapshotStatsOf converts a loaded snapshot's info into the /stats
// form; callers pass the result as Config.Snapshot (and from their
// Config.Reload closure).
func SnapshotStatsOf(info wdsparql.SnapshotInfo) *SnapshotStats {
	return &SnapshotStats{
		Path:     info.Path,
		Version:  info.Version,
		Checksum: fmt.Sprintf("%08x", info.Checksum),
		Mode:     info.Mode.String(),
		LoadMs:   float64(info.LoadTime) / float64(time.Millisecond),
	}
}

// refCloser shares one backing Closer among several engine
// generations. The live-write path (POST /ingest) derives new
// generations from the current one; when the base engine was loaded
// from an mmapped snapshot, every derived generation still reads the
// snapshot's arenas through the shared sealed base, so the mmap must
// outlive them all. Each generation holds one reference; the
// underlying Closer fires when the last reference closes.
type refCloser struct {
	c io.Closer
	n atomic.Int64
}

func newRefCloser(c io.Closer) *refCloser {
	rc := &refCloser{c: c}
	rc.n.Store(1)
	return rc
}

// retain adds a reference and returns the receiver, for handing to a
// derived generation.
func (rc *refCloser) retain() *refCloser {
	rc.n.Add(1)
	return rc
}

func (rc *refCloser) Close() error {
	if rc.n.Add(-1) == 0 {
		return rc.c.Close()
	}
	return nil
}

// engineState is one generation of the serving engine. refs counts the
// holder's own reference plus one per request currently using it; the
// closer fires when the count reaches zero.
type engineState struct {
	eng    *wdsparql.Engine
	snap   *SnapshotStats // nil when serving a parsed graph
	closer io.Closer      // backing resources (e.g. the mmap); may be nil
	refs   atomic.Int64
}

func newEngineState(eng *wdsparql.Engine, snap *SnapshotStats, closer io.Closer) *engineState {
	st := &engineState{eng: eng, snap: snap, closer: closer}
	st.refs.Store(1) // the holder's reference, dropped on swap or shutdown
	return st
}

// retain takes a reference, failing only if the count already hit zero
// (the state was swapped out and every user finished — by then the
// holder points elsewhere, so the caller just reloads it).
func (st *engineState) retain() bool {
	for {
		r := st.refs.Load()
		if r <= 0 {
			return false
		}
		if st.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// release drops a reference; the last one out closes the backing.
func (st *engineState) release() {
	if st.refs.Add(-1) == 0 && st.closer != nil {
		_ = st.closer.Close()
	}
}

// derive wraps a new engine generation built from this one (by
// ApplyDelta or Refreeze) in its own engineState, sharing the snapshot
// identity and a retained reference to the shared backing closer.
func (st *engineState) derive(eng *wdsparql.Engine) *engineState {
	var c io.Closer
	if rc, ok := st.closer.(*refCloser); ok {
		c = rc.retain()
	}
	return newEngineState(eng, st.snap, c)
}

// dict gives the response encoders this generation's decode dictionary.
func (st *engineState) dict() *rdf.Dict { return st.eng.Graph().Dict() }

// engine retains and returns the current engine state, or nil once the
// server has shut down for good.
func (s *Server) engine() *engineState {
	for {
		st := s.cur.Load()
		if st == nil || st.retain() {
			return st
		}
		// The CAS lost to the final release. If a reload won, the holder
		// already points at the replacement — loop and take that. If the
		// pointer is unchanged, the server shut down: nothing to serve.
		if s.cur.Load() == st {
			return nil
		}
	}
}

// handleReload is POST /reload: build a fresh engine via the operator's
// Config.Reload closure and swap it in atomically. In-flight requests
// finish on the generation they started with; new requests see the new
// one immediately. Only configured when serving from a snapshot.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.replyError(w, &httpError{code: http.StatusMethodNotAllowed, msg: "use POST"})
		return
	}
	if s.cfg.Reload == nil {
		s.replyError(w, &httpError{code: http.StatusNotImplemented,
			msg: "reload not configured (serve from a snapshot to enable it)"})
		return
	}
	if s.draining.Load() {
		s.unavailable(w, "draining")
		return
	}
	// One writer at a time: a reload racing a live ingest would tear
	// half-applied batches out from under the stream. The loser backs
	// off instead of queueing (TryLock) — an ingest can run for minutes.
	if !s.mutMu.TryLock() {
		s.unavailable(w, "writer busy (ingest or reload in progress)")
		return
	}
	defer s.mutMu.Unlock()

	eng, snap, closer, err := s.cfg.Reload()
	if err != nil {
		s.reloadFails.Add(1)
		s.replyError(w, &httpError{code: http.StatusInternalServerError,
			msg: fmt.Sprintf("reload failed; still serving the previous snapshot: %v", err)})
		return
	}
	if closer != nil {
		closer = newRefCloser(closer)
	}
	next := newEngineState(eng, snap, closer)
	old := s.cur.Swap(next)
	s.reloads.Add(1)
	if old != nil {
		old.release() // the old backing closes when its last request finishes
	}

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Reloaded bool           `json:"reloaded"`
		Triples  int            `json:"triples"`
		Snapshot *SnapshotStats `json:"snapshot,omitempty"`
	}{true, eng.Graph().Len(), snap})
}
