package server

import (
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"testing"

	"wdsparql"
)

// End-to-end coverage for the SELECT/FILTER surface and the TSV value
// escaping (regression: raw tabs and newlines inside IRIs used to
// split fields and rows of the TSV stream).

func TestTSVEscapesHostileIRIs(t *testing.T) {
	// The line-oriented graph parser cannot carry these values;
	// AddTriple takes them verbatim.
	g := wdsparql.NewGraph()
	g.AddTriple("s\tub", "p", "o\nbj\\x")
	g.AddTriple("cr\rriage", "p", "plain")
	_, base := startServer(t, Config{Engine: wdsparql.NewEngine(g)})

	resp, err := http.Get(sparqlURL(base, `(?x p ?y)`, url.Values{"format": {"tsv"}}))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("a raw newline split the stream: %d lines\n%q", len(lines), body)
	}
	if lines[0] != "?x\t?y" {
		t.Fatalf("header = %q", lines[0])
	}
	rows := lines[1:]
	sort.Strings(rows)
	want := []string{
		"<cr\\rriage>\t<plain>",
		"<s\\tub>\t<o\\nbj\\\\x>",
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("row %d = %q, want %q", i, rows[i], want[i])
		}
		if n := strings.Count(rows[i], "\t"); n != 1 {
			t.Fatalf("row %d has %d field separators: %q", i, n, rows[i])
		}
	}
}

func TestSelectFilterOverHTTP(t *testing.T) {
	_, base := startServer(t, Config{Engine: testEngine(t, 4)})
	const q = `SELECT ?x WHERE ((?x p ?y) FILTER ?y != o1)`

	// JSON: only the projected variable appears, in head and bindings.
	resp, err := http.Get(sparqlURL(base, q, nil))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	doc := decodeResults(t, resp.Body)
	resp.Body.Close()
	if len(doc.Head.Vars) != 1 || doc.Head.Vars[0] != "x" {
		t.Fatalf("head vars = %v", doc.Head.Vars)
	}
	var got []string
	for _, b := range doc.Results.Bindings {
		if len(b) != 1 {
			t.Fatalf("binding leaks unprojected variables: %v", b)
		}
		got = append(got, b["x"].Value)
	}
	sort.Strings(got)
	if strings.Join(got, " ") != "s0 s2 s3" {
		t.Fatalf("filtered bindings = %v", got)
	}

	// TSV: header lists only the projected variable.
	resp, err = http.Get(sparqlURL(base, q, url.Values{"format": {"tsv"}}))
	if err != nil {
		t.Fatalf("GET tsv: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if lines[0] != "?x" {
		t.Fatalf("tsv header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("tsv rows = %d, want 3", len(lines)-1)
	}
}

func TestSelectDistinctOverHTTP(t *testing.T) {
	// The cross product has 4⁴ full rows; projected to ?y and
	// deduplicated it collapses to the 4 objects.
	_, base := startServer(t, Config{Engine: testEngine(t, 4)})
	resp, err := http.Get(sparqlURL(base,
		`SELECT DISTINCT ?y WHERE ((?x p ?y) AND (?z p ?w))`, nil))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	doc := decodeResults(t, resp.Body)
	if len(doc.Head.Vars) != 1 || doc.Head.Vars[0] != "y" {
		t.Fatalf("head vars = %v", doc.Head.Vars)
	}
	var got []string
	for _, b := range doc.Results.Bindings {
		got = append(got, b["y"].Value)
	}
	sort.Strings(got)
	if strings.Join(got, " ") != "o0 o1 o2 o3" {
		t.Fatalf("distinct stream = %v", got)
	}
}
