package server

// POST /ingest: live writes without stopping the world. The body is
// the same N-Triples subset wdserve loads at startup (optionally
// gzipped, detected by magic bytes), streamed and applied in batches:
//
//   - Each batch becomes one ApplyDelta generation swap — atomic in
//     the only sense that matters to readers: no query, on any
//     generation, ever observes part of a batch. Queries running when
//     a batch lands keep streaming their own generation; queries
//     admitted after it see all of it.
//   - A parse error (or a corrupt/truncated gzip stream) aborts the
//     ingest at the first bad byte: the batch being accumulated is
//     discarded, batches already applied stay applied, and the error
//     names the input line the way the bulk loader would.
//   - When the mutable overlay grows past Config.RefreezeAt triples,
//     the ingest re-freezes: the overlay is compacted into a fresh
//     sealed base (same backend shape) on a forked generation and
//     swapped in, again without disturbing a single in-flight reader.
//   - One writer at a time: concurrent POST /ingest gets 409, and
//     /reload and /ingest exclude each other through the same writer
//     lock. Readers are never locked out by any of this.
//
// The response is NDJSON: one progress object per applied batch (so a
// client driving a long ingest sees liveness, batch by batch) and a
// final summary object carrying either "done":true or "error".

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"wdsparql"
	"wdsparql/internal/rdf"
)

// ingestProgress is one NDJSON progress line: cumulative counts after
// a batch swap.
type ingestProgress struct {
	Batch   int `json:"batch"`           // 1-based index of the batch just applied
	Read    int `json:"triples_read"`    // data lines parsed so far
	Applied int `json:"triples_applied"` // triples actually added (duplicates excluded)
	Overlay int `json:"overlay"`         // overlay size after this batch
	Total   int `json:"triples"`         // graph size after this batch
}

// ingestSummary is the final NDJSON line.
type ingestSummary struct {
	Done      bool   `json:"done"`
	Error     string `json:"error,omitempty"`
	Batches   int    `json:"batches"`
	Read      int    `json:"triples_read"`
	Applied   int    `json:"triples_applied"`
	Refreezes int    `json:"refreezes"`
	Overlay   int    `json:"overlay"`
	Total     int    `json:"triples"`
}

// handleIngest is the live-write endpoint.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.replyError(w, &httpError{code: http.StatusMethodNotAllowed, msg: "use POST"})
		return
	}
	if s.draining.Load() {
		s.unavailable(w, "draining")
		return
	}
	// One writer at a time. A second ingest is a client-side conflict
	// (409, no Retry-After: the client should coordinate, not poll).
	if !s.mutMu.TryLock() {
		s.replyError(w, &httpError{code: http.StatusConflict,
			msg: "another ingest or reload is in progress"})
		return
	}
	defer s.mutMu.Unlock()

	// Shutdown waits for running writers just like it waits for
	// running queries: no batch is ever torn by a drain.
	s.inflight.Add(1)
	defer s.inflight.Done()

	if st := s.cur.Load(); st == nil {
		s.unavailable(w, "draining")
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxIngestBytes)
	rc := http.NewResponseController(w)
	// Progress lines interleave with request-body reads; on HTTP/1.x
	// the first response write closes the body unless the handler opts
	// into full-duplex explicitly.
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Content-Type-Options", "nosniff")

	enc := json.NewEncoder(w)
	wroteProgress := false
	emit := func(v any) {
		// Same stalled-writer discipline as query streaming: each
		// progress flush arms a write deadline so a vanished client
		// cannot pin the writer lock past WriteTimeout.
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		_ = enc.Encode(v)
		_ = rc.Flush()
	}

	var (
		batch     = make([]wdsparql.Triple, 0, s.cfg.IngestBatch)
		batches   int
		read      int
		applied   int
		refreezes int
	)

	apply := func() {
		// The holder cannot move under us — we are the only writer —
		// and its own reference keeps the state alive, so a plain Load
		// (no retain) is enough for the duration of the swap.
		cur := s.cur.Load()
		before := cur.eng.OverlayLen()
		ne := cur.eng.ApplyDelta(batch)
		applied += ne.OverlayLen() - before

		if s.cfg.RefreezeAt > 0 && ne.OverlayLen() >= s.cfg.RefreezeAt {
			func() {
				defer func() {
					if p := recover(); p != nil {
						// Keep serving with the overlay: a failed
						// compaction costs read performance, not data.
						s.refreezeFails.Add(1)
					}
				}()
				ne = ne.Refreeze()
				refreezes++
				s.refreezes.Add(1)
			}()
		}

		next := cur.derive(ne)
		old := s.cur.Swap(next)
		old.release() // old generation retires when its last query finishes

		batches++
		s.ingestBatches.Add(1)
		batch = batch[:0]

		g := ne.Graph()
		emit(ingestProgress{Batch: batches, Read: read, Applied: applied,
			Overlay: g.OverlayLen(), Total: g.Len()})
		wroteProgress = true
	}

	err := rdf.DecodeTriples(r.Body, 0, func(sv, pv, ov string) error {
		read++
		batch = append(batch, wdsparql.Triple{S: wdsparql.IRI(sv), P: wdsparql.IRI(pv), O: wdsparql.IRI(ov)})
		if len(batch) == s.cfg.IngestBatch {
			apply()
		}
		return nil
	})
	if err != nil {
		// The partial batch in `batch` is discarded — no generation
		// ever contained any of it. Before the first progress line the
		// status code can still say 400; after it, the NDJSON summary
		// carries the error.
		s.ingestTriples.Add(uint64(applied))
		if !wroteProgress {
			s.rejected.Add(1)
			s.replyError(w, badRequestf("ingest aborted: %v", err))
			return
		}
		emit(ingestSummary{Error: fmt.Sprintf("ingest aborted: %v", err),
			Batches: batches, Read: read, Applied: applied, Refreezes: refreezes,
			Overlay: s.overlayNow(), Total: s.triplesNow()})
		return
	}
	if len(batch) > 0 {
		apply() // the final, short batch — the stream ended cleanly
	}
	s.ingestTriples.Add(uint64(applied))
	emit(ingestSummary{Done: true, Batches: batches, Read: read, Applied: applied,
		Refreezes: refreezes, Overlay: s.overlayNow(), Total: s.triplesNow()})
}

func (s *Server) overlayNow() int {
	if st := s.cur.Load(); st != nil {
		return st.eng.OverlayLen()
	}
	return 0
}

func (s *Server) triplesNow() int {
	if st := s.cur.Load(); st != nil {
		return st.eng.Graph().Len()
	}
	return 0
}
