package server

import (
	"errors"
	"sync/atomic"
	"time"

	"context"
)

// errShed is returned by admission.acquire when the request cannot be
// admitted within the configured bounds: the gate is full, the wait
// queue is at capacity, or the queue wait timed out. The handler
// converts it into 503 + Retry-After — the endpoint sheds load
// instead of queuing unboundedly.
var errShed = errors.New("server: overloaded, request shed")

// admission is the controller that keeps the endpoint standing under
// overload. A semaphore of width gate bounds the queries executing
// concurrently; a bounded counter-guarded wait queue absorbs short
// bursts. Anything beyond gate+queue, and anything that has waited
// longer than the queue timeout, is shed immediately: under sustained
// overload the endpoint's concurrency — and therefore the p99 of the
// requests it does accept — stays bounded, and the shed tail gets a
// fast, honest 503 instead of a slow timeout.
type admission struct {
	gate       chan struct{} // buffered; len = executing queries
	queued     atomic.Int64
	peakQueued atomic.Int64
	maxQueue   int64
	timeout    time.Duration
}

func newAdmission(gate, queue int, timeout time.Duration) *admission {
	return &admission{
		gate:     make(chan struct{}, gate),
		maxQueue: int64(queue),
		timeout:  timeout,
	}
}

// acquire admits the request or fails fast: errShed when the request
// must be shed, the context error when the client went away while
// queued. On nil return the caller owns one gate slot and must call
// release exactly once.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.gate <- struct{}{}:
		return nil
	default:
	}
	n := a.queued.Add(1)
	if n > a.maxQueue {
		a.queued.Add(-1)
		return errShed
	}
	for {
		peak := a.peakQueued.Load()
		if n <= peak || a.peakQueued.CompareAndSwap(peak, n) {
			break
		}
	}
	defer a.queued.Add(-1)
	timer := time.NewTimer(a.timeout)
	defer timer.Stop()
	select {
	case a.gate <- struct{}{}:
		return nil
	case <-timer.C:
		return errShed
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { <-a.gate }

// executing returns the number of currently admitted queries.
func (a *admission) executing() int { return len(a.gate) }

// waiting returns the number of requests in the wait queue.
func (a *admission) waiting() int64 { return a.queued.Load() }

// peakWaiting returns the high-water mark of the wait queue.
func (a *admission) peakWaiting() int64 { return a.peakQueued.Load() }
