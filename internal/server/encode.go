package server

import (
	"bufio"
	"encoding/json"
	"strconv"

	"wdsparql"
	"wdsparql/internal/rdf"
)

// Result encoders: each serialises one solution stream incrementally —
// a prologue carrying the variable names, one fragment per row straight
// off the zero-decode Rows iterator, and an epilogue that closes the
// document so that even a truncated stream (deadline, client gone,
// drain) is syntactically valid output. Encoders write into the
// handler's bufio.Writer; the handler owns flushing (and the write
// deadlines armed around it).

// resultEncoder is one streamed serialisation of a solution stream.
type resultEncoder interface {
	contentType() string
	// begin writes the prologue (the head/vars of the result set). The
	// handler flushes right after it, putting the first response bytes
	// on the wire before the enumeration has produced a single row.
	begin() error
	// row appends one solution. The row aliases the enumeration's
	// working row and is only valid during the call.
	row(r wdsparql.Row) error
	// end closes the document. truncated marks a stream stopped by a
	// deadline or cancellation rather than exhaustion; encoders that
	// can carry the flag in-band do so.
	end(truncated bool) error
}

const (
	formatJSON = "json"
	formatTSV  = "tsv"

	contentTypeJSON = "application/sparql-results+json"
	contentTypeTSV  = "text/tab-separated-values; charset=utf-8"
)

func newEncoder(format string, w *bufio.Writer, layout *wdsparql.SlotLayout, dict *rdf.Dict) resultEncoder {
	if format == formatTSV {
		return &tsvEncoder{w: w, layout: layout, dict: dict}
	}
	return &jsonEncoder{w: w, layout: layout, dict: dict}
}

// jsonEncoder streams the SPARQL 1.1 Query Results JSON format:
//
//	{"head":{"vars":[…]},"results":{"bindings":[…]},"truncated":true?}
//
// The non-standard top-level "truncated" member appears only on
// streams cut short; the document is always complete, valid JSON.
type jsonEncoder struct {
	w      *bufio.Writer
	layout *wdsparql.SlotLayout
	dict   *rdf.Dict
	n      int
}

func (e *jsonEncoder) contentType() string { return contentTypeJSON }

func (e *jsonEncoder) begin() error {
	e.w.WriteString(`{"head":{"vars":[`)
	for s := 0; s < e.layout.Width(); s++ {
		if s > 0 {
			e.w.WriteByte(',')
		}
		writeJSONString(e.w, e.layout.Name(s))
	}
	_, err := e.w.WriteString(`]},"results":{"bindings":[`)
	return err
}

func (e *jsonEncoder) row(r wdsparql.Row) error {
	if e.n > 0 {
		e.w.WriteByte(',')
	}
	e.n++
	e.w.WriteByte('{')
	first := true
	for s, v := range r {
		if v == wdsparql.Unbound {
			continue
		}
		if !first {
			e.w.WriteByte(',')
		}
		first = false
		writeJSONString(e.w, e.layout.Name(s))
		e.w.WriteString(`:{"type":"uri","value":`)
		writeJSONString(e.w, e.dict.StringOf(v))
		e.w.WriteByte('}')
	}
	_, err := e.w.WriteString("}")
	return err
}

func (e *jsonEncoder) end(truncated bool) error {
	e.w.WriteString(`]}`)
	if truncated {
		e.w.WriteString(`,"truncated":true`)
	}
	_, err := e.w.WriteString("}\n")
	return err
}

// tsvEncoder streams the SPARQL 1.1 TSV results format: a header line
// of ?-prefixed variable names, then one line per solution with IRIs
// in angle brackets and unbound positions empty.
type tsvEncoder struct {
	w      *bufio.Writer
	layout *wdsparql.SlotLayout
	dict   *rdf.Dict
}

func (e *tsvEncoder) contentType() string { return contentTypeTSV }

func (e *tsvEncoder) begin() error {
	for s := 0; s < e.layout.Width(); s++ {
		if s > 0 {
			e.w.WriteByte('\t')
		}
		e.w.WriteByte('?')
		e.w.WriteString(e.layout.Name(s))
	}
	return e.w.WriteByte('\n')
}

func (e *tsvEncoder) row(r wdsparql.Row) error {
	for s, v := range r {
		if s > 0 {
			e.w.WriteByte('\t')
		}
		if v != wdsparql.Unbound {
			e.w.WriteByte('<')
			writeTSVValue(e.w, e.dict.StringOf(v))
			e.w.WriteByte('>')
		}
	}
	return e.w.WriteByte('\n')
}

// writeTSVValue writes an IRI into a TSV field with the SPARQL 1.1 TSV
// escapes: a raw tab or newline inside a value would split the field or
// the row, so \t, \n, \r and \ itself are backslash-escaped. The
// escape-free common case is a single write.
func writeTSVValue(w *bufio.Writer, s string) {
	start := 0
	for i := 0; i < len(s); i++ {
		var esc byte
		switch s[i] {
		case '\t':
			esc = 't'
		case '\n':
			esc = 'n'
		case '\r':
			esc = 'r'
		case '\\':
			esc = '\\'
		default:
			continue
		}
		w.WriteString(s[start:i])
		w.WriteByte('\\')
		w.WriteByte(esc)
		start = i + 1
	}
	w.WriteString(s[start:])
}

func (e *tsvEncoder) end(bool) error {
	// TSV carries no in-band structure to close: a truncated stream is
	// simply a shorter, still-valid document.
	return nil
}

// writeJSONString writes s as a JSON string literal. Plain ASCII — the
// shape of virtually every IRI and variable name — is written directly;
// anything needing escapes falls back to encoding/json.
func writeJSONString(w *bufio.Writer, s string) {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			b, _ := json.Marshal(s)
			w.Write(b)
			return
		}
	}
	w.WriteByte('"')
	w.WriteString(s)
	w.WriteByte('"')
}

// jsonErrorBody renders a one-field JSON error document.
func jsonErrorBody(msg string) []byte {
	b, err := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	if err != nil {
		return []byte(`{"error":` + strconv.Quote("encoding failure") + `}`)
	}
	return append(b, '\n')
}
