package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"wdsparql"
	"wdsparql/internal/sparql"
)

// The /sparql resource: SPARQL-protocol request parsing and the
// streaming query handler. The request lifecycle is
//
//	drain check → parse → admission → prepare (cached) → stream
//
// with every stage converting its failures into an HTTP status the
// client can act on: 503 (shed or draining, with Retry-After),
// 400 (malformed protocol or query), 422 (parses but is not
// well-designed), 500 (isolated evaluation panic).

// httpError is an error with a decided status code; parseRequest and
// prepare return it so handleSparql replies uniformly.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequestf(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// request is one parsed /sparql request.
type request struct {
	query   string
	format  string // formatJSON or formatTSV
	limit   int    // -1: none requested
	offset  int
	workers int           // ≤ 1: sequential
	timeout time.Duration // 0: server default
	explain bool          // reply with the compiled query plan, no rows
}

// parseRequest implements the SPARQL-protocol request shapes: GET with
// ?query=, POST with an application/x-www-form-urlencoded body, and
// POST with a raw application/sparql-query body. Execution bounds ride
// the URL: limit, offset, timeout (a Go duration), workers, format,
// plus explain=1 to get the compiled query plan instead of rows.
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (request, error) {
	req := request{format: formatJSON, limit: -1}
	switch r.Method {
	case http.MethodGet:
		req.query = r.URL.Query().Get("query")
	case http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxQueryBytes)
		ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
		switch ct {
		case "application/x-www-form-urlencoded", "":
			if err := r.ParseForm(); err != nil {
				return req, badRequestf("bad form body: %v", err)
			}
			req.query = r.PostForm.Get("query")
		case "application/sparql-query":
			body, err := io.ReadAll(r.Body)
			if err != nil {
				return req, badRequestf("reading query body: %v", err)
			}
			req.query = string(body)
		default:
			return req, &httpError{code: http.StatusUnsupportedMediaType,
				msg: fmt.Sprintf("unsupported Content-Type %q (want application/x-www-form-urlencoded or application/sparql-query)", ct)}
		}
	default:
		return req, &httpError{code: http.StatusMethodNotAllowed, msg: "use GET or POST"}
	}
	if strings.TrimSpace(req.query) == "" {
		return req, badRequestf("missing query parameter")
	}

	q := r.URL.Query()
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return req, badRequestf("bad limit %q (want a non-negative integer)", v)
		}
		req.limit = n
	}
	// MaxLimit caps the requested window — and applies when none was
	// requested, so one unbounded query cannot hold a gate slot for an
	// arbitrary result set unless the operator opted out (MaxLimit 0).
	if max := s.cfg.MaxLimit; max > 0 && (req.limit < 0 || req.limit > max) {
		req.limit = max
	}
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return req, badRequestf("bad offset %q (want a non-negative integer)", v)
		}
		req.offset = n
	}
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return req, badRequestf("bad workers %q (want a positive integer)", v)
		}
		req.workers = min(n, s.cfg.MaxWorkers)
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return req, badRequestf("bad timeout %q (want a positive Go duration, e.g. 500ms)", v)
		}
		req.timeout = min(d, s.cfg.MaxTimeout)
	}
	switch v := q.Get("explain"); v {
	case "":
	case "1", "true":
		req.explain = true
	default:
		return req, badRequestf("bad explain %q (want 1 or true)", v)
	}
	switch v := q.Get("format"); v {
	case "":
		if accepts(r.Header.Get("Accept"), "text/tab-separated-values") {
			req.format = formatTSV
		}
	case formatJSON, formatTSV:
		req.format = v
	default:
		return req, badRequestf("bad format %q (want json or tsv)", v)
	}
	return req, nil
}

// accepts reports whether the Accept header names the media type
// (coarse: parameter-free prefix match per comma-separated clause).
func accepts(header, mediaType string) bool {
	for _, clause := range strings.Split(header, ",") {
		clause = strings.TrimSpace(clause)
		if semi := strings.IndexByte(clause, ';'); semi >= 0 {
			clause = strings.TrimSpace(clause[:semi])
		}
		if clause == mediaType {
			return true
		}
	}
	return false
}

// prepare resolves the query text through the engine's cache, mapping
// failures onto protocol statuses: a text that does not parse is the
// client's syntax error (400); one that parses but is not well-designed
// is a semantically unprocessable query for this engine (422).
func (s *Server) prepare(eng *wdsparql.Engine, text string) (*wdsparql.PreparedQuery, error) {
	q, err := eng.PrepareText(text)
	if err == nil {
		return q, nil
	}
	var wdErr *sparql.WellDesignedError
	if errors.As(err, &wdErr) {
		return nil, &httpError{code: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	return nil, badRequestf("%v", err)
}

// handleSparql is the query endpoint.
func (s *Server) handleSparql(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.shed.Add(1)
		s.unavailable(w, "draining")
		return
	}
	req, err := s.parseRequest(w, r)
	if err != nil {
		s.rejected.Add(1)
		s.replyError(w, err)
		return
	}

	// Admission: bounded concurrency, bounded queue, fast shedding.
	if err := s.adm.acquire(r.Context()); err != nil {
		if errors.Is(err, errShed) {
			s.shed.Add(1)
			s.unavailable(w, "overloaded")
		}
		// Context errors mean the client went away while queued; there
		// is nobody to answer.
		return
	}
	defer s.adm.release()
	s.inflight.Add(1)
	defer s.inflight.Done()
	defer s.noteInFlight()()

	// Pin this request to the current engine generation: a concurrent
	// POST /reload swaps the holder but cannot close this generation's
	// backing (the snapshot mmap) until the release below.
	st := s.engine()
	if st == nil {
		s.shed.Add(1)
		s.unavailable(w, "draining")
		return
	}
	defer st.release()

	// Panic isolation: one failing evaluation must cost exactly one
	// request. Before the response has started this is a clean 500;
	// mid-stream the connection is aborted (http.ErrAbortHandler is
	// net/http's quiet abort) so the client sees truncation rather
	// than a well-formed end of results.
	streaming := false
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			if streaming {
				panic(http.ErrAbortHandler)
			}
			s.replyError(w, &httpError{code: http.StatusInternalServerError,
				msg: fmt.Sprintf("internal error evaluating query: %v", p)})
		}
	}()

	q, err := s.prepare(st.eng, req.query)
	if err != nil {
		s.rejected.Add(1)
		s.replyError(w, err)
		return
	}
	s.queries.Add(1)

	// explain=1 replies with the compiled query plan instead of rows:
	// pure prepared-state serialisation, no evaluation runs.
	if req.explain {
		body, err := json.Marshal(q.Explain())
		if err != nil {
			s.replyError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		w.Header().Set("X-Content-Type-Options", "nosniff")
		_, _ = w.Write(body)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.timeout > 0 {
		timeout = req.timeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	if s.hookBeforeStream != nil {
		s.hookBeforeStream(req.query)
	}
	s.stream(ctx, w, st, q, req, &streaming)
}

// stream drives one query execution onto the wire. It flushes the
// encoder prologue before asking the engine for a single row, then
// streams with periodic flushes, each armed with a write deadline.
// Deadline expiry and cancellation close the document as valid,
// truncated output; write failures (stalled or vanished client) stop
// the enumeration at the next row.
func (s *Server) stream(ctx context.Context, w http.ResponseWriter, st *engineState, q *wdsparql.PreparedQuery, req request, streaming *bool) {
	rc := http.NewResponseController(w)
	bw := bufio.NewWriterSize(w, 8<<10)
	enc := newEncoder(req.format, bw, q.Layout(), st.dict())

	flush := func() error {
		// The deadline covers this flush and every buffered write until
		// the next one: a client that stops reading turns into an error
		// here within WriteTimeout, which ends the enumeration instead
		// of pinning the gate slot.
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := bw.Flush(); err != nil {
			return err
		}
		return rc.Flush()
	}

	w.Header().Set("Content-Type", enc.contentType())
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	*streaming = true

	_ = enc.begin()
	if err := flush(); err != nil {
		s.writeStalls.Add(1)
		return
	}

	var opts []wdsparql.ExecOption
	if req.limit >= 0 {
		opts = append(opts, wdsparql.Limit(req.limit))
	}
	if req.offset > 0 {
		opts = append(opts, wdsparql.Offset(req.offset))
	}
	if req.workers > 1 {
		opts = append(opts, wdsparql.Parallel(req.workers))
	}

	sinceFlush := 0
	var writeErr error
	for row := range q.Rows(ctx, opts...) {
		if writeErr = enc.row(row); writeErr != nil {
			break
		}
		s.rowsStreamed.Add(1)
		if sinceFlush++; sinceFlush >= s.cfg.FlushEvery {
			sinceFlush = 0
			if writeErr = flush(); writeErr != nil {
				break
			}
		}
	}
	if writeErr != nil {
		// The connection is unusable; the enumeration already stopped
		// (breaking the Rows loop terminates it immediately).
		s.writeStalls.Add(1)
		return
	}
	truncated := ctx.Err() != nil
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.timeouts.Add(1)
	}
	_ = enc.end(truncated)
	if err := flush(); err != nil {
		s.writeStalls.Add(1)
	}
}

// replyError writes an error reply; any error that is not an httpError
// is a 500.
func (s *Server) replyError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	msg := err.Error()
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(code)
	_, _ = w.Write(jsonErrorBody(msg))
}

// unavailable writes the load-shedding reply: 503 with a Retry-After
// hint so well-behaved clients back off instead of hammering.
func (s *Server) unavailable(w http.ResponseWriter, why string) {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = w.Write(jsonErrorBody(why + "; retry later"))
}
