package server

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wdsparql"
)

// POST /ingest contract tests, all run under -race in CI: batch-atomic
// visibility, NDJSON progress, corruption abort (truncated gzip, bad
// syntax) with no partial batch applied, writer mutual exclusion
// (ingest×ingest → 409, ingest×reload → 503), re-freeze behind live
// readers, and the HTTP-level ingest-while-querying soak.

func ingestBody(from, to int) string {
	var sb strings.Builder
	for i := from; i < to; i++ {
		fmt.Fprintf(&sb, "s%d p o%d .\n", i, i)
	}
	return sb.String()
}

func postIngest(t *testing.T, url, body string) (*http.Response, []map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/n-triples", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	defer resp.Body.Close()
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	return resp, lines
}

// countRows counts the p-edges visible through /sparql (serverStats
// and countBindings live in reload_test.go).
func countRows(t *testing.T, url string) int {
	t.Helper()
	return countBindings(t, url, `(?x p ?y)`)
}

// TestIngestAppliesBatches pins the happy path: batches stream in,
// progress lines report them, queries see the new triples, and /stats
// carries the ingest section.
func TestIngestAppliesBatches(t *testing.T) {
	_, url := startServer(t, Config{Engine: testEngine(t, 100), IngestBatch: 64, RefreezeAt: -1})

	if n := countRows(t, url); n != 100 {
		t.Fatalf("pre-ingest rows = %d, want 100", n)
	}
	resp, lines := postIngest(t, url, ingestBody(100, 500))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	last := lines[len(lines)-1]
	if last["done"] != true {
		t.Fatalf("final line not done: %v", last)
	}
	if got := last["triples_applied"]; got != float64(400) {
		t.Fatalf("triples_applied = %v, want 400", got)
	}
	// 400 triples at batch 64: 6 full batches + the final short one,
	// each with a progress line, plus the summary.
	if len(lines) != 8 {
		t.Fatalf("%d NDJSON lines, want 8", len(lines))
	}
	if n := countRows(t, url); n != 500 {
		t.Fatalf("post-ingest rows = %d, want 500", n)
	}

	st := serverStats(t, url)
	if st.Ingest.Batches != 7 || st.Ingest.TriplesApplied != 400 {
		t.Fatalf("stats ingest = %+v, want 7 batches / 400 applied", st.Ingest)
	}
	if st.Ingest.OverlaySize != 400 || st.Triples != 500 {
		t.Fatalf("overlay=%d triples=%d, want 400/500 (refreeze disabled)",
			st.Ingest.OverlaySize, st.Triples)
	}
	// Duplicates are dropped, not re-applied.
	_, lines = postIngest(t, url, ingestBody(100, 200))
	last = lines[len(lines)-1]
	if got := last["triples_applied"]; got != float64(0) {
		t.Fatalf("duplicate ingest applied %v triples, want 0", got)
	}
	if n := countRows(t, url); n != 500 {
		t.Fatalf("rows after duplicate ingest = %d, want 500", n)
	}
}

// TestIngestRefreeze pins the compaction trigger: once the overlay
// passes RefreezeAt the generation is re-frozen — overlay back to
// zero, same data, refreeze counter bumped.
func TestIngestRefreeze(t *testing.T) {
	_, url := startServer(t, Config{Engine: testEngine(t, 50), IngestBatch: 100, RefreezeAt: 150})

	resp, lines := postIngest(t, url, ingestBody(50, 450))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	last := lines[len(lines)-1]
	if last["done"] != true {
		t.Fatalf("final line not done: %v", last)
	}
	st := serverStats(t, url)
	if st.Ingest.Refreezes == 0 || st.Ingest.RefreezeFailures != 0 {
		t.Fatalf("refreezes=%d failures=%d, want >0 and 0",
			st.Ingest.Refreezes, st.Ingest.RefreezeFailures)
	}
	if st.Ingest.OverlaySize >= 150 {
		t.Fatalf("overlay %d never compacted (RefreezeAt 150)", st.Ingest.OverlaySize)
	}
	if st.Triples != 450 || countRows(t, url) != 450 {
		t.Fatalf("triples=%d rows=%d, want 450 after refreezes", st.Triples, countRows(t, url))
	}
}

// TestIngestTruncatedGzipAborts pins the corruption contract: a gzip
// body cut mid-stream errors cleanly and the partial batch is not
// applied — with a batch larger than the payload, nothing at all is.
func TestIngestTruncatedGzipAborts(t *testing.T) {
	_, url := startServer(t, Config{Engine: testEngine(t, 100), IngestBatch: 1 << 20})

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(ingestBody(100, 2000))); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for _, cut := range []int{len(full) / 2, len(full) - 8, 3} {
		resp, err := http.Post(url+"/ingest", "application/gzip", bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		// No batch boundary was reached, so the error is a clean 400.
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("cut=%d: status %d (%s), want 400", cut, resp.StatusCode, body)
		}
		if n := countRows(t, url); n != 100 {
			t.Fatalf("cut=%d: %d rows visible, want 100 (partial batch applied?)", cut, n)
		}
	}
	st := serverStats(t, url)
	if st.Ingest.TriplesApplied != 0 || st.Ingest.Batches != 0 {
		t.Fatalf("aborted ingests recorded %+v, want zero applied", st.Ingest)
	}
}

// TestIngestMidStreamCorruption pins error reporting after the status
// is committed: earlier batches stay applied, the NDJSON summary
// carries the error with the bulk loader's line numbering, and the
// partial batch is discarded.
func TestIngestMidStreamCorruption(t *testing.T) {
	_, url := startServer(t, Config{Engine: testEngine(t, 100), IngestBatch: 40, RefreezeAt: -1})

	bad := ingestBody(100, 180) + "this line is not a triple\n" + ingestBody(180, 260)
	resp, lines := postIngest(t, url, bad)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (error in trailer)", resp.StatusCode)
	}
	last := lines[len(lines)-1]
	if last["done"] == true || last["error"] == nil {
		t.Fatalf("summary after corruption: %v", last)
	}
	if !strings.Contains(last["error"].(string), "line 81") {
		t.Fatalf("error %q does not name input line 81", last["error"])
	}
	// Two full batches (80 triples) landed before the bad line; none
	// of the following triples did.
	if n := countRows(t, url); n != 180 {
		t.Fatalf("rows = %d, want 180 (two whole batches applied)", n)
	}
	st := serverStats(t, url)
	if st.Ingest.Batches != 2 || st.Ingest.TriplesApplied != 80 {
		t.Fatalf("stats ingest = %+v, want 2 batches / 80 applied", st.Ingest)
	}
}

// TestIngestWriterExclusion pins the writer lock: while one writer
// holds it, a second ingest gets 409 and a reload gets 503; readers
// keep being served throughout.
func TestIngestWriterExclusion(t *testing.T) {
	s, url := startServer(t, Config{
		Engine: testEngine(t, 50),
		Reload: func() (*wdsparql.Engine, *SnapshotStats, io.Closer, error) {
			return testEngine(t, 50), nil, nil, nil
		},
	})

	s.mutMu.Lock() // stand in for a long-running ingest
	defer s.mutMu.Unlock()

	resp, err := http.Post(url+"/ingest", "application/n-triples", strings.NewReader("a p b .\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent ingest status %d, want 409", resp.StatusCode)
	}

	resp, err = http.Post(url+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("reload during ingest status %d, want 503", resp.StatusCode)
	}

	if n := countRows(t, url); n != 50 {
		t.Fatalf("reads blocked by writer lock: %d rows, want 50", n)
	}
}

// closerFunc adapts a func to io.Closer.
type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// TestIngestKeepsSnapshotBackingAlive pins the refcounted closer:
// generations derived by ingest share the base engine's backing, so it
// must close exactly once, and only after the last generation retires.
func TestIngestKeepsSnapshotBackingAlive(t *testing.T) {
	var closed atomic.Int32
	closer := closerFunc(func() error { closed.Add(1); return nil })
	s, url := startServer(t, Config{Engine: testEngine(t, 100), Closer: closer, IngestBatch: 16})

	resp, lines := postIngest(t, url, ingestBody(100, 200))
	if resp.StatusCode != http.StatusOK || lines[len(lines)-1]["done"] != true {
		t.Fatalf("ingest failed: status %d, %v", resp.StatusCode, lines)
	}
	// Several generations were swapped and retired; the backing stays.
	if n := closed.Load(); n != 0 {
		t.Fatalf("backing closed %d times during ingest, want 0", n)
	}
	if countRows(t, url) != 200 {
		t.Fatal("ingested rows not visible")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if n := closed.Load(); n != 1 {
		t.Fatalf("backing closed %d times after shutdown, want exactly 1", n)
	}
}

// TestIngestWhileQueryingHTTP is the HTTP-level soak (sibling of the
// in-process one in the root package): readers hammer /sparql while an
// ingest streams batches through generation swaps and re-freezes. Every
// read must succeed with a whole number of batches, and nothing leaks.
func TestIngestWhileQueryingHTTP(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const (
		baseN   = 200
		batch   = 50
		total   = 1200
		readers = 4
	)
	func() {
		s, url := startServer(t, Config{
			Engine:        testEngine(t, baseN),
			IngestBatch:   batch,
			RefreezeAt:    175,
			MaxConcurrent: 16,
		})

		stop := make(chan struct{})
		var wg sync.WaitGroup
		errs := make(chan error, readers)
		for i := 0; i < readers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := http.Get(sparqlURL(url, `(?x p ?y)`, nil))
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						errs <- fmt.Errorf("read status %d", resp.StatusCode)
						return
					}
					n := len(decodeResults(t, resp.Body).Results.Bindings)
					resp.Body.Close()
					if n < baseN || (n-baseN)%batch != 0 {
						errs <- fmt.Errorf("read %d rows: not base plus whole batches", n)
						return
					}
				}
			}()
		}

		resp, lines := postIngest(t, url, ingestBody(baseN, total))
		close(stop)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || lines[len(lines)-1]["done"] != true {
			t.Fatalf("ingest: status %d, final %v", resp.StatusCode, lines[len(lines)-1])
		}
		if n := countRows(t, url); n != total {
			t.Fatalf("final rows = %d, want %d", n, total)
		}
		st := serverStats(t, url)
		if st.Ingest.Refreezes == 0 {
			t.Fatal("soak never exercised a re-freeze")
		}
		if st.Shed != 0 {
			t.Fatalf("%d requests shed during ingest, want 0 dropped", st.Shed)
		}

		// Drain before the leak check: pooled client connections and
		// the accept loop are infrastructure, not leaks.
		http.DefaultClient.CloseIdleConnections()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	}()
	assertNoGoroutineLeaks(t, baseline)
}
