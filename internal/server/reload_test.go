package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wdsparql"
)

// Reload tests pin the hot-swap contract: POST /reload installs a
// freshly loaded snapshot atomically, in-flight requests finish on the
// generation they started with (served off the old mmap, which closes
// only after the last of them releases it), a failed reload keeps the
// old engine serving, and nothing leaks.

// recordCloser wraps a generation's backing closer so tests can observe
// exactly when it fires.
type recordCloser struct {
	inner  io.Closer
	closed atomic.Bool
}

func (c *recordCloser) Close() error {
	c.closed.Store(true)
	return c.inner.Close()
}

// closerLog records every generation's closer in creation order.
type closerLog struct {
	mu sync.Mutex
	cs []*recordCloser
}

func (l *closerLog) wrap(c io.Closer) *recordCloser {
	l.mu.Lock()
	defer l.mu.Unlock()
	rc := &recordCloser{inner: c}
	l.cs = append(l.cs, rc)
	return rc
}

func (l *closerLog) at(i int) *recordCloser {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cs[i]
}

// writeSnapshotFile snapshots an nEdges-edge test graph to path
// (crash-atomically, so a serving mmap of the old file is unaffected).
func writeSnapshotFile(t testing.TB, path string, nEdges int) {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < nEdges; i++ {
		fmt.Fprintf(&sb, "s%d p o%d .\n", i, i)
	}
	if err := wdsparql.MustParseGraph(sb.String()).WriteSnapshot(path); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
}

// snapshotConfig builds a Config serving from the snapshot at path the
// way cmd/wdserve does, with every generation's closer recorded in log.
// Mmap mode on purpose: serving a retired generation off an unmapped
// buffer would fault, so the zero-dropped-requests tests are load-
// bearing, not just counter checks.
func snapshotConfig(t *testing.T, path string, log *closerLog) Config {
	t.Helper()
	load := func() (*wdsparql.Engine, *SnapshotStats, io.Closer, error) {
		eng, snap, err := wdsparql.NewEngineFromSnapshot(path, wdsparql.SnapshotMmap,
			wdsparql.WithQueryCache(16))
		if err != nil {
			return nil, nil, nil, err
		}
		return eng, SnapshotStatsOf(snap.Info()), log.wrap(snap), nil
	}
	eng, stats, closer, err := load()
	if err != nil {
		t.Fatalf("initial snapshot load: %v", err)
	}
	return Config{Engine: eng, Snapshot: stats, Closer: closer, Reload: load}
}

type reloadReply struct {
	Reloaded bool           `json:"reloaded"`
	Triples  int            `json:"triples"`
	Snapshot *SnapshotStats `json:"snapshot"`
}

func postReload(t *testing.T, base string) (*http.Response, reloadReply) {
	t.Helper()
	resp, err := http.Post(base+"/reload", "", nil)
	if err != nil {
		t.Fatalf("POST /reload: %v", err)
	}
	var rep reloadReply
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatalf("reload reply: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	resp.Body.Close()
	return resp, rep
}

func countBindings(t *testing.T, base, query string) int {
	t.Helper()
	resp, err := http.Get(sparqlURL(base, query, nil))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	return len(decodeResults(t, resp.Body).Results.Bindings)
}

func serverStats(t *testing.T, base string) Stats {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	return st
}

// TestReloadSwapsSnapshot pins the basic swap: after the file on disk
// is replaced, POST /reload serves the new data, /stats reflects the
// new generation, and the idle old generation's backing closes. A
// subsequent corrupt file degrades to a 500 that keeps the old engine.
func TestReloadSwapsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.wdsnap")
	writeSnapshotFile(t, path, 3)
	var log closerLog
	_, base := startServer(t, snapshotConfig(t, path, &log))

	if n := countBindings(t, base, `(?x p ?y)`); n != 3 {
		t.Fatalf("pre-reload bindings = %d, want 3", n)
	}
	st := serverStats(t, base)
	if st.Snapshot == nil || st.Snapshot.Mode != "mmap" || st.Snapshot.Path != path {
		t.Fatalf("stats snapshot section = %+v", st.Snapshot)
	}
	oldCRC := st.Snapshot.Checksum

	// Replace the image and swap it in.
	writeSnapshotFile(t, path, 5)
	resp, rep := postReload(t, base)
	if resp.StatusCode != http.StatusOK || !rep.Reloaded || rep.Triples != 5 {
		t.Fatalf("reload: status %d, reply %+v", resp.StatusCode, rep)
	}
	if n := countBindings(t, base, `(?x p ?y)`); n != 5 {
		t.Fatalf("post-reload bindings = %d, want 5", n)
	}
	st = serverStats(t, base)
	if st.Reloads != 1 || st.ReloadFailures != 0 {
		t.Fatalf("reloads = %d/%d, want 1/0", st.Reloads, st.ReloadFailures)
	}
	if st.Snapshot == nil || st.Snapshot.Checksum == oldCRC {
		t.Fatalf("stats still shows the old snapshot: %+v", st.Snapshot)
	}
	// Nothing was in flight, so the old generation closes promptly.
	waitFor(t, 5e9, func() bool { return log.at(0).closed.Load() })

	// A corrupt image on disk must not take the server down. Replace by
	// rename, as any real snapshot writer does — an in-place truncation
	// would mutate the inode the serving generation has mmapped.
	tmp := path + ".corrupt"
	if err := os.WriteFile(tmp, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	resp, _ = postReload(t, base)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload of corrupt image: status %d, want 500", resp.StatusCode)
	}
	if n := countBindings(t, base, `(?x p ?y)`); n != 5 {
		t.Fatalf("bindings after failed reload = %d, want 5 (old engine)", n)
	}
	st = serverStats(t, base)
	if st.Reloads != 1 || st.ReloadFailures != 1 {
		t.Fatalf("reloads = %d/%d after failure, want 1/1", st.Reloads, st.ReloadFailures)
	}
	if log.at(1).closed.Load() {
		t.Fatal("serving generation closed by a failed reload")
	}
}

// TestReloadZeroDroppedInFlight is the acceptance criterion: a request
// blocked mid-handler across a reload completes its full result set
// from the generation it started on, whose mmap closes only after that
// request finishes — while new requests already see the new data.
func TestReloadZeroDroppedInFlight(t *testing.T) {
	baseline := runtime.NumGoroutine()

	path := filepath.Join(t.TempDir(), "g.wdsnap")
	const oldEdges, newEdges = 4, 6
	writeSnapshotFile(t, path, oldEdges)
	var log closerLog
	s := New(snapshotConfig(t, path, &log))
	block := make(chan struct{})
	s.hookBeforeStream = func(q string) {
		if strings.Contains(q, "AND") { // only the cross query blocks
			<-block
		}
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// A request that will straddle the reload.
	type outcome struct {
		rows      int
		truncated bool
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := http.Get(sparqlURL(srv.URL, crossQuery, nil))
		if err != nil {
			done <- outcome{rows: -1}
			return
		}
		defer resp.Body.Close()
		var doc sparqlJSON
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			done <- outcome{rows: -1}
			return
		}
		done <- outcome{rows: len(doc.Results.Bindings), truncated: doc.Truncated}
	}()
	waitFor(t, 10e9, func() bool { return s.adm.executing() == 1 })

	// Swap generations under the in-flight request.
	writeSnapshotFile(t, path, newEdges)
	resp, _ := postReload(t, srv.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d", resp.StatusCode)
	}
	if log.at(0).closed.Load() {
		t.Fatal("old snapshot closed with a request still in flight")
	}
	// New requests are on the new generation immediately.
	if n := countBindings(t, srv.URL, `(?x p ?y)`); n != newEdges {
		t.Fatalf("post-reload bindings = %d, want %d", n, newEdges)
	}
	if log.at(0).closed.Load() {
		t.Fatal("old snapshot closed while its request is still blocked")
	}

	// Release the straddling request: it must deliver the complete old
	// result set, and only then may the old backing close.
	close(block)
	out := <-done
	if out.rows != oldEdges*oldEdges || out.truncated {
		t.Fatalf("straddling request: rows = %d (want %d), truncated = %v",
			out.rows, oldEdges*oldEdges, out.truncated)
	}
	waitFor(t, 10e9, func() bool { return log.at(0).closed.Load() })
	if log.at(1).closed.Load() {
		t.Fatal("new generation closed while serving")
	}

	// Shutdown retires the final generation and leaves no goroutines.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	waitFor(t, 10e9, func() bool { return log.at(1).closed.Load() })
	http.DefaultClient.CloseIdleConnections()
	assertNoGoroutineLeaks(t, baseline)
}

// TestReloadUnconfigured pins the non-snapshot server: /reload is 501
// for POST and 405 for other methods, and /stats has no snapshot
// section.
func TestReloadUnconfigured(t *testing.T) {
	_, base := startServer(t, Config{Engine: testEngine(t, 3)})

	resp, _ := postReload(t, base)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("POST /reload without Config.Reload: %d, want 501", resp.StatusCode)
	}
	resp, err := http.Get(base + "/reload")
	if err != nil {
		t.Fatalf("GET /reload: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload: %d, want 405", resp.StatusCode)
	}
	if st := serverStats(t, base); st.Snapshot != nil {
		t.Fatalf("parsed-graph server reports a snapshot: %+v", st.Snapshot)
	}
}
