package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wdsparql"
)

// These tests pin the robustness contract of the endpoint, all run
// under -race in CI:
//
//   - streaming: the first response chunk is on the wire before the
//     enumeration completes;
//   - failure paths: malformed → 400, non-well-designed → 422,
//     timeout mid-stream → truncated-but-valid response, overload →
//     503 + Retry-After, panic → 500 and a living process;
//   - concurrency: 64 clients against a gate of 8 produce correct
//     streams, bounded in-flight, a shed tail, and no goroutine leaks
//     after Shutdown;
//   - lifecycle: stalled clients free their gate slot, drain flips
//     /readyz and hard-cancels past the deadline.

// crossQuery yields n² rows over the n p-edges of testEngine — large
// result sets from a small graph, for backpressure and truncation.
const crossQuery = `((?x p ?y) AND (?z p ?w))`

// notWDQuery parses but is not well-designed (from the engine tests).
const notWDQuery = `(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?z) AND (?z, r, ?o2)))`

func testEngine(t testing.TB, nEdges int) *wdsparql.Engine {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < nEdges; i++ {
		fmt.Fprintf(&sb, "s%d p o%d .\n", i, i)
	}
	return wdsparql.NewEngine(wdsparql.MustParseGraph(sb.String()),
		wdsparql.WithQueryCache(64))
}

// startServer runs cfg on a real TCP listener (needed for genuine
// write backpressure) and arranges an end-of-test drain.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, "http://" + ln.Addr().String()
}

func sparqlURL(base, query string, params url.Values) string {
	v := url.Values{"query": {query}}
	for k, vals := range params {
		v[k] = vals
	}
	return base + "/sparql?" + v.Encode()
}

// sparqlJSON mirrors the SPARQL results JSON document, including the
// non-standard truncation marker.
type sparqlJSON struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results struct {
		Bindings []map[string]struct {
			Type  string `json:"type"`
			Value string `json:"value"`
		} `json:"bindings"`
	} `json:"results"`
	Truncated bool `json:"truncated"`
}

func decodeResults(t *testing.T, r io.Reader) sparqlJSON {
	t.Helper()
	var doc sparqlJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		t.Fatalf("response is not valid SPARQL JSON: %v", err)
	}
	return doc
}

// TestFirstChunkBeforeEnumerationCompletes pins the core streaming
// property: the response prologue is flushed before the enumeration
// finishes. The query produces ~11 MB — far beyond any socket buffer —
// so once the client has its first byte, the handler is provably still
// mid-enumeration, blocked on backpressure.
func TestFirstChunkBeforeEnumerationCompletes(t *testing.T) {
	const n = 400 // n² = 160000 rows
	s, base := startServer(t, Config{Engine: testEngine(t, n)})

	resp, err := http.Get(sparqlURL(base, crossQuery, nil))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != contentTypeJSON {
		t.Fatalf("Content-Type = %q, want %q", ct, contentTypeJSON)
	}

	// One byte of body proves the first chunk arrived; the counter
	// proves the enumeration had not finished producing rows.
	one := make([]byte, 1)
	if _, err := io.ReadFull(resp.Body, one); err != nil {
		t.Fatalf("reading first byte: %v", err)
	}
	streamed := s.rowsStreamed.Load()
	if streamed >= n*n {
		t.Fatalf("first chunk arrived only after all %d rows were produced", n*n)
	}
	t.Logf("first byte on the wire with %d/%d rows produced", streamed, n*n)

	doc := decodeResults(t, io.MultiReader(strings.NewReader(string(one)), resp.Body))
	if got := len(doc.Results.Bindings); got != n*n {
		t.Fatalf("bindings = %d, want %d", got, n*n)
	}
	if doc.Truncated {
		t.Fatal("complete stream marked truncated")
	}
}

// TestMalformedQuery400 pins the parse-failure path: a syntactically
// broken query gets a 400 whose body carries a useful message.
func TestMalformedQuery400(t *testing.T) {
	s, base := startServer(t, Config{Engine: testEngine(t, 4)})
	resp, err := http.Get(sparqlURL(base, `((?x p`, nil))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %q)", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("400 body %q is not a JSON error document", body)
	}
	if s.rejected.Load() == 0 {
		t.Fatal("rejected counter not bumped")
	}
}

// TestMissingQuery400 pins that an empty query parameter is a 400, not
// a confusing parse error.
func TestMissingQuery400(t *testing.T) {
	_, base := startServer(t, Config{Engine: testEngine(t, 4)})
	resp, err := http.Get(base + "/sparql")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestNotWellDesigned422 pins the semantic-failure path: a query that
// parses but is outside the engine's well-designed fragment gets 422,
// distinguishing "fix your syntax" from "this engine cannot run that".
func TestNotWellDesigned422(t *testing.T) {
	_, base := startServer(t, Config{Engine: testEngine(t, 4)})
	resp, err := http.Get(sparqlURL(base, notWDQuery, nil))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body %q)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "well-designed") {
		t.Fatalf("422 body %q does not explain well-designedness", body)
	}
}

// TestPostForms pins both POST request shapes of the SPARQL protocol.
func TestPostForms(t *testing.T) {
	_, base := startServer(t, Config{Engine: testEngine(t, 3)})

	resp, err := http.PostForm(base+"/sparql", url.Values{"query": {`(?x p ?y)`}})
	if err != nil {
		t.Fatalf("POST form: %v", err)
	}
	doc := decodeResults(t, resp.Body)
	resp.Body.Close()
	if len(doc.Results.Bindings) != 3 {
		t.Fatalf("form POST bindings = %d, want 3", len(doc.Results.Bindings))
	}

	resp, err = http.Post(base+"/sparql", "application/sparql-query",
		strings.NewReader(`(?x p ?y)`))
	if err != nil {
		t.Fatalf("POST raw: %v", err)
	}
	doc = decodeResults(t, resp.Body)
	resp.Body.Close()
	if len(doc.Results.Bindings) != 3 {
		t.Fatalf("raw POST bindings = %d, want 3", len(doc.Results.Bindings))
	}
}

// TestLimitOffsetAndTSV pins the pagination parameters and the TSV
// serialisation.
func TestLimitOffsetAndTSV(t *testing.T) {
	_, base := startServer(t, Config{Engine: testEngine(t, 10)})

	resp, err := http.Get(sparqlURL(base, `(?x p ?y)`,
		url.Values{"limit": {"4"}, "offset": {"2"}}))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	doc := decodeResults(t, resp.Body)
	resp.Body.Close()
	if len(doc.Results.Bindings) != 4 {
		t.Fatalf("limit=4 returned %d bindings", len(doc.Results.Bindings))
	}

	resp, err = http.Get(sparqlURL(base, `(?x p ?y)`,
		url.Values{"format": {"tsv"}, "limit": {"2"}}))
	if err != nil {
		t.Fatalf("GET tsv: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != contentTypeTSV {
		t.Fatalf("Content-Type = %q, want %q", ct, contentTypeTSV)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "?") {
		t.Fatalf("tsv = %q, want header + 2 rows", body)
	}
	if !strings.Contains(lines[1], "<") || !strings.Contains(lines[1], "\t") {
		t.Fatalf("tsv row %q lacks <iri> cells", lines[1])
	}
}

// TestTimeoutMidStreamTruncatedValid pins the deadline path: a request
// whose ?timeout= expires mid-stream still ends as a valid JSON
// document, flagged truncated, with fewer than the full rows — and the
// timeouts counter records it.
func TestTimeoutMidStreamTruncatedValid(t *testing.T) {
	const n = 400
	s, base := startServer(t, Config{Engine: testEngine(t, n)})

	resp, err := http.Get(sparqlURL(base, crossQuery, url.Values{"timeout": {"30ms"}}))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (stream had started)", resp.StatusCode)
	}
	// Take the first byte, then hold the stream under backpressure past
	// the deadline so the cut is guaranteed to land mid-stream.
	one := make([]byte, 1)
	if _, err := io.ReadFull(resp.Body, one); err != nil {
		t.Fatalf("first byte: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	doc := decodeResults(t, io.MultiReader(strings.NewReader(string(one)), resp.Body))
	if !doc.Truncated {
		t.Fatal("timed-out stream not marked truncated")
	}
	if got := len(doc.Results.Bindings); got >= n*n {
		t.Fatalf("bindings = %d, want < %d after timeout", got, n*n)
	}
	if s.timeouts.Load() == 0 {
		t.Fatal("timeouts counter not bumped")
	}
}

// TestOverload503RetryAfter pins shedding: with the gate and queue
// full, further requests get an immediate 503 carrying Retry-After.
func TestOverload503RetryAfter(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{
		Engine:        testEngine(t, 4),
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueTimeout:  50 * time.Millisecond,
		RetryAfter:    7 * time.Second,
	})
	s.hookBeforeStream = func(string) { <-release }
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer close(release)

	// Occupy the gate.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(sparqlURL(srv.URL, `(?x p ?y)`, nil))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, 10*time.Second, func() bool { return s.adm.executing() == 1 })

	// Both of these exceed gate+queue within the hook's hold: one may
	// queue (and time out), the rest shed instantly.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(sparqlURL(srv.URL, `(?x p ?y)`, nil))
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "7" {
			t.Fatalf("Retry-After = %q, want \"7\"", ra)
		}
	}
	if s.shed.Load() < 2 {
		t.Fatalf("shed = %d, want >= 2", s.shed.Load())
	}
	release <- struct{}{}
	wg.Wait()
}

// TestPanicIsolation pins that a panicking evaluation becomes one 500
// and a counter bump — the process survives and keeps serving.
func TestPanicIsolation(t *testing.T) {
	s := New(Config{Engine: testEngine(t, 3)})
	s.hookBeforeStream = func(q string) {
		if strings.Contains(q, "?boom") {
			panic("injected evaluation failure")
		}
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(sparqlURL(srv.URL, `(?boom p ?y)`, nil))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "internal error") {
		t.Fatalf("500 body %q lacks an error message", body)
	}
	if s.panics.Load() != 1 {
		t.Fatalf("panics = %d, want 1", s.panics.Load())
	}

	// The process is still serving.
	resp, err = http.Get(sparqlURL(srv.URL, `(?x p ?y)`, nil))
	if err != nil {
		t.Fatalf("GET after panic: %v", err)
	}
	doc := decodeResults(t, resp.Body)
	resp.Body.Close()
	if len(doc.Results.Bindings) != 3 {
		t.Fatalf("post-panic bindings = %d, want 3", len(doc.Results.Bindings))
	}
}

// TestStalledClientFreesGateSlot pins the write-deadline path: a
// client that stops reading turns into a write error within
// WriteTimeout, the enumeration stops, and the gate slot is released.
func TestStalledClientFreesGateSlot(t *testing.T) {
	const n = 300 // ≈ 5.5 MB result, far beyond socket buffering
	s, base := startServer(t, Config{
		Engine:       testEngine(t, n),
		WriteTimeout: 150 * time.Millisecond,
		FlushEvery:   64,
	})

	addr := strings.TrimPrefix(base, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /sparql?query=%s HTTP/1.1\r\nHost: wdserve\r\n\r\n",
		url.QueryEscape(crossQuery))
	// Never read: the socket fills, the next armed write deadline
	// expires, and the handler must exit.
	waitFor(t, 20*time.Second, func() bool { return s.writeStalls.Load() >= 1 })
	waitFor(t, 20*time.Second, func() bool { return s.adm.executing() == 0 })
	waitFor(t, 20*time.Second, func() bool { return s.inFlight.Load() == 0 })
}

// TestConcurrentLoadBoundedAndLeakFree is the acceptance-criteria
// load test: 64 concurrent requests against a gate of 8 must yield
// only correct 200 streams and 503s, keep in-flight bounded by the
// gate, and leave no goroutines behind after Shutdown.
func TestConcurrentLoadBoundedAndLeakFree(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const (
		nEdges  = 10 // crossQuery → 100 rows per request
		clients = 64
		gate    = 8
	)
	s, base := startServer(t, Config{
		Engine:        testEngine(t, nEdges),
		MaxConcurrent: gate,
		MaxQueue:      gate,
		QueueTimeout:  20 * time.Millisecond,
	})
	// Hold every admitted request briefly so the herd genuinely
	// saturates the gate and the tail is shed.
	s.hookBeforeStream = func(string) { time.Sleep(10 * time.Millisecond) }

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	start := make(chan struct{})
	var ok, shed, wrong atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := client.Get(sparqlURL(base, crossQuery, nil))
			if err != nil {
				wrong.Add(1)
				t.Errorf("GET: %v", err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var doc sparqlJSON
				if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil ||
					len(doc.Results.Bindings) != nEdges*nEdges || doc.Truncated {
					wrong.Add(1)
					t.Errorf("bad 200 stream: err=%v rows=%d truncated=%v",
						err, len(doc.Results.Bindings), doc.Truncated)
					return
				}
				ok.Add(1)
			case http.StatusServiceUnavailable:
				if resp.Header.Get("Retry-After") == "" {
					wrong.Add(1)
					t.Error("503 without Retry-After")
					return
				}
				io.Copy(io.Discard, resp.Body)
				shed.Add(1)
			default:
				wrong.Add(1)
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := ok.Load() + shed.Load() + wrong.Load(); got != clients {
		t.Fatalf("accounted for %d of %d requests", got, clients)
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d malformed outcomes", wrong.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded under load")
	}
	if shed.Load() == 0 {
		t.Fatal("no request was shed: the gate did not bound the herd")
	}
	if peak := s.peakInFlight.Load(); peak > gate {
		t.Fatalf("peak in-flight %d exceeded the gate %d", peak, gate)
	}
	t.Logf("ok=%d shed=%d peak_in_flight=%d", ok.Load(), shed.Load(), s.peakInFlight.Load())

	// Close the client's pooled connections BEFORE draining: under the
	// herd the transport dials connections that lose the race for a
	// request and stay pooled without ever sending one. Server-side
	// those sit in StateNew, which http.Server.Shutdown will not reap
	// until ReadHeaderTimeout — past this test's drain deadline.
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	assertNoGoroutineLeaks(t, baseline)
}

// TestGracefulDrain pins the shutdown ladder: /readyz flips during the
// drain, a clean server shuts down with nil, and a stream outliving
// the drain deadline is hard-cancelled rather than waited on forever.
func TestGracefulDrain(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		s, base := startServer(t, Config{Engine: testEngine(t, 3)})
		resp, err := http.Get(base + "/readyz")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz before drain: %v %v", resp.StatusCode, err)
		}
		resp.Body.Close()

		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("clean Shutdown: %v", err)
		}

		// The listener is gone; probe the handler directly.
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("readyz after drain = %d, want 503", rec.Code)
		}
		rec = httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
			"/sparql?query="+url.QueryEscape(`(?x p ?y)`), nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("sparql during drain = %d, want 503", rec.Code)
		}
	})

	t.Run("hard-cancel", func(t *testing.T) {
		const n = 300
		s, base := startServer(t, Config{
			Engine:       testEngine(t, n),
			WriteTimeout: 200 * time.Millisecond,
		})

		// A stream the drain deadline will catch mid-flight: the client
		// reads one byte and then sits on the connection.
		resp, err := http.Get(sparqlURL(base, crossQuery, nil))
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		defer resp.Body.Close()
		one := make([]byte, 1)
		if _, err := io.ReadFull(resp.Body, one); err != nil {
			t.Fatalf("first byte: %v", err)
		}

		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		done := make(chan error, 1)
		go func() { done <- s.Shutdown(ctx) }()

		select {
		case err := <-done:
			if err != context.DeadlineExceeded {
				t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("Shutdown hung past the drain deadline: hard-cancel failed")
		}
		if s.inFlight.Load() != 0 {
			t.Fatalf("in-flight = %d after Shutdown returned", s.inFlight.Load())
		}
	})
}

// TestStatsEndpoint pins the /stats document shape and a few counters.
func TestStatsEndpoint(t *testing.T) {
	_, base := startServer(t, Config{Engine: testEngine(t, 5), MaxConcurrent: 3})
	resp, err := http.Get(sparqlURL(base, `(?x p ?y)`, nil))
	if err != nil {
		t.Fatalf("GET sparql: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	resp.Body.Close()
	if st.Gate != 3 || st.Triples != 5 || st.Queries != 1 || st.RowsStreamed != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Backend == "" {
		t.Fatal("stats lacks backend")
	}
	if st.QueryCache.Misses != 1 {
		t.Fatalf("query cache misses = %d, want 1", st.QueryCache.Misses)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, max time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(max)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertNoGoroutineLeaks polls the goroutine count back down to the
// pre-test baseline (plus slack for the runtime's own helpers).
func assertNoGoroutineLeaks(t *testing.T, baseline int) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(20 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
