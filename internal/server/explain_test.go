package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"testing"

	"wdsparql"
)

// explain=1 returns the compiled query plan as JSON instead of
// evaluating — same admission path, no result stream.
func TestExplainEndpoint(t *testing.T) {
	s, base := startServer(t, Config{Engine: testEngine(t, 6)})
	resp, err := http.Get(sparqlURL(base, crossQuery, url.Values{"explain": {"1"}}))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %q)", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var plan wdsparql.QueryPlan
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatalf("explain body %q is not a QueryPlan: %v", body, err)
	}
	if !plan.Planner {
		t.Fatal("default engine must explain Planner: true")
	}
	if len(plan.Trees) == 0 || len(plan.Trees[0].Order) == 0 {
		t.Fatalf("explain plan is empty: %+v", plan)
	}
	if plan.Trees[0].Order[0].Pattern == "" {
		t.Fatal("explain step did not render the pattern")
	}
	if s.queries.Load() == 0 {
		t.Fatal("explain request not counted as a query")
	}
}

// A malformed explain value is a 400, and explain still runs the
// normal failure paths (bad query → 400 before any plan is built).
func TestExplainRejectsBadInput(t *testing.T) {
	_, base := startServer(t, Config{Engine: testEngine(t, 4)})
	for _, u := range []string{
		sparqlURL(base, crossQuery, url.Values{"explain": {"yes"}}),
		sparqlURL(base, `((?x p`, url.Values{"explain": {"1"}}),
	} {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatalf("GET %s: %v", u, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status = %d, want 400", u, resp.StatusCode)
		}
	}
}
