// Package server implements the hardened streaming SPARQL-over-HTTP
// endpoint behind cmd/wdserve. The /sparql resource speaks the SPARQL
// protocol (GET and POST) and streams SPARQL-JSON or TSV results
// straight off the zero-decode PreparedQuery.Rows iterator — the first
// response bytes are on the wire before the enumeration has produced a
// row. Robustness is structural, not bolted on:
//
//   - Admission control: a semaphore gate bounds concurrently executing
//     queries and a bounded wait queue absorbs bursts; everything beyond
//     is shed with 503 + Retry-After, so overload keeps the served p99
//     bounded instead of queuing unboundedly.
//   - Per-request deadline, row limit and offset are parsed from the
//     request and enforced through http.Request.Context() — the stream
//     stops at the next yield boundary and the response is closed as a
//     valid (truncated) document.
//   - Write-deadline handling: every flush arms a write deadline, so a
//     stalled client surfaces as a write error that cancels its
//     enumeration instead of pinning a gate slot forever.
//   - Per-request panic isolation: a panicking evaluation becomes a 500
//     (or an aborted stream) plus a counter, never a crashed process.
//   - Graceful drain: Shutdown flips /readyz, stops accepting, drains
//     in-flight requests up to the caller's deadline, then hard-cancels
//     the rest through the server's base context. No goroutine leaks.
//   - Hot reload: when serving from a snapshot, POST /reload swaps in a
//     freshly loaded engine atomically; in-flight requests finish on the
//     generation they started with and the old backing closes only when
//     its last request completes (see engine.go).
//
// /healthz, /readyz and /stats expose liveness, drain state and the
// serving counters (cache hit rate, in-flight, shed count, rows
// streamed, backend shape, snapshot identity). See DESIGN.md §5 for
// the full lifecycle.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wdsparql"
)

// Config parameterises a Server. Engine is required; every other field
// has a serving-safe default (see the constants below).
type Config struct {
	Engine *wdsparql.Engine

	// Snapshot serving and hot reload (all optional; see engine.go).
	// Snapshot describes the image behind Engine for /stats; Closer is
	// the image's backing resources, closed when the engine generation
	// retires; Reload, when set, enables POST /reload and must return a
	// fresh engine (with a fresh query cache) over a re-read snapshot.
	Snapshot *SnapshotStats
	Closer   io.Closer
	Reload   func() (*wdsparql.Engine, *SnapshotStats, io.Closer, error)

	// Admission control.
	MaxConcurrent int           // gate width: queries executing at once (default 8)
	MaxQueue      int           // bounded wait queue beyond the gate (default = MaxConcurrent)
	QueueTimeout  time.Duration // max wait in the queue before shedding (default 1s)
	RetryAfter    time.Duration // Retry-After hint on 503 responses (default 1s)

	// Per-request execution bounds.
	DefaultTimeout time.Duration // deadline when the request names none (default 30s)
	MaxTimeout     time.Duration // cap on the ?timeout= parameter (default 5m)
	MaxLimit       int           // cap on rows per request; 0 means unlimited
	MaxWorkers     int           // cap on the ?workers= parameter (default GOMAXPROCS)

	// Streaming.
	WriteTimeout time.Duration // write deadline armed at every flush (default 15s)
	FlushEvery   int           // rows between flushes after the prologue (default 256)

	// Request reading.
	MaxQueryBytes int64 // bound on a POSTed query body (default 1 MiB)

	// Live ingest (POST /ingest; see ingest.go).
	IngestBatch    int   // triples per atomically applied batch (default 5000)
	RefreezeAt     int   // overlay size that triggers a re-freeze (default 50000; < 0 disables)
	MaxIngestBytes int64 // bound on a POSTed ingest body (default 1 GiB)
}

const (
	defaultMaxConcurrent  = 8
	defaultQueueTimeout   = time.Second
	defaultRetryAfter     = time.Second
	defaultRequestTimeout = 30 * time.Second
	defaultMaxTimeout     = 5 * time.Minute
	defaultWriteTimeout   = 15 * time.Second
	defaultFlushEvery     = 256
	defaultMaxQueryBytes  = 1 << 20
	defaultIngestBatch    = 5000
	defaultRefreezeAt     = 50000
	defaultMaxIngestBytes = 1 << 30
)

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = defaultMaxConcurrent
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = cfg.MaxConcurrent
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = defaultQueueTimeout
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = defaultRequestTimeout
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = defaultMaxTimeout
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = defaultWriteTimeout
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = defaultFlushEvery
	}
	if cfg.MaxQueryBytes <= 0 {
		cfg.MaxQueryBytes = defaultMaxQueryBytes
	}
	if cfg.IngestBatch <= 0 {
		cfg.IngestBatch = defaultIngestBatch
	}
	if cfg.RefreezeAt == 0 {
		cfg.RefreezeAt = defaultRefreezeAt
	}
	if cfg.MaxIngestBytes <= 0 {
		cfg.MaxIngestBytes = defaultMaxIngestBytes
	}
	return cfg
}

// Server is the endpoint: an http.Handler plus the serve/drain
// lifecycle around it. Construct with New; a Server must not be copied.
type Server struct {
	cfg Config
	cur atomic.Pointer[engineState] // current engine generation (see engine.go)
	adm *admission
	mux *http.ServeMux

	http       *http.Server
	baseCtx    context.Context
	baseCancel context.CancelFunc

	draining atomic.Bool
	inflight sync.WaitGroup // running /sparql and /ingest handlers
	started  time.Time
	stopOnce sync.Once  // drops the holder's engine reference at Shutdown
	mutMu    sync.Mutex // the single writer lock: serialises /reload and /ingest

	// Serving counters, exposed by /stats.
	queries      atomic.Uint64 // admitted query executions
	rowsStreamed atomic.Uint64
	shed         atomic.Uint64 // 503s: overload or drain
	rejected     atomic.Uint64 // 4xx: malformed or not well-designed
	panics       atomic.Uint64 // recovered evaluation panics
	timeouts     atomic.Uint64 // request deadlines expired mid-stream
	writeStalls  atomic.Uint64 // streams cut by write deadline/client loss
	reloads      atomic.Uint64 // successful POST /reload swaps
	reloadFails  atomic.Uint64 // POST /reload attempts that kept the old engine
	inFlight     atomic.Int64
	peakInFlight atomic.Int64

	// Live-ingest counters (POST /ingest, see ingest.go).
	ingestBatches atomic.Uint64 // delta batches applied (each one atomic)
	ingestTriples atomic.Uint64 // triples actually added (duplicates excluded)
	refreezes     atomic.Uint64 // overlay compactions swapped in
	refreezeFails atomic.Uint64 // re-freeze attempts that kept the overlay

	// hookBeforeStream, when set, runs inside the per-request panic
	// guard just before streaming starts — the test seam for panic
	// isolation and latency injection. Never set in production.
	hookBeforeStream func(query string)
}

// New builds a Server over the engine in cfg. The engine's graph is
// already sealed (NewEngine freezes or shards it); the server only
// reads it, so any number of concurrent requests are safe.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("server: Config.Engine is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		adm:     newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueTimeout),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	// The snapshot backing (if any) is shared by every generation the
	// live-write path derives from this one, so it closes only when the
	// last generation referencing it retires — hence the refcount.
	var closer io.Closer
	if cfg.Closer != nil {
		closer = newRefCloser(cfg.Closer)
	}
	s.cur.Store(newEngineState(cfg.Engine, cfg.Snapshot, closer))
	s.mux.HandleFunc("/sparql", s.handleSparql)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/reload", s.handleReload)
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.http = &http.Server{
		Handler: s.mux,
		// Request contexts derive from the base context, which is the
		// hard-cancel lever of Shutdown: cancelling it stops every
		// in-flight enumeration at its next yield boundary.
		BaseContext:       func(net.Listener) context.Context { return s.baseCtx },
		ReadHeaderTimeout: 10 * time.Second,
		// No server-wide WriteTimeout: long streams are legitimate.
		// Stalled clients are handled by the per-flush write deadline.
	}
	return s
}

// Handler returns the endpoint as a plain http.Handler, for embedding
// and for httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown (or Close). Like
// http.Server.Serve it returns http.ErrServerClosed on clean shutdown.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: /readyz flips to 503 immediately (so
// load balancers stop routing here), listeners close, and in-flight
// requests run to completion — until ctx's deadline. If the deadline
// expires first, every remaining request is hard-cancelled through the
// base context; their streams stop at the next yield boundary and
// their responses are closed as valid truncated documents. Shutdown
// returns only once no request handler is running: nil after a clean
// drain, the ctx error after a hard-cancel.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.http.Shutdown(ctx)
	// Hard-cancel whatever is still running (a no-op after a clean
	// drain) and wait for the handlers themselves: http.Server.Shutdown
	// tracks connections, not handler returns.
	s.baseCancel()
	s.inflight.Wait()
	// Every handler has returned: drop the holder's engine reference so
	// the backing snapshot (if any) closes. Requests were the only other
	// holders, and they are done.
	s.stopOnce.Do(func() {
		if st := s.cur.Load(); st != nil {
			st.release()
		}
	})
	if err != nil {
		// The drain deadline expired: force-close the connections the
		// cancelled handlers were writing to.
		if closeErr := s.http.Close(); closeErr != nil && err == context.DeadlineExceeded {
			return closeErr
		}
	}
	return err
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 while accepting work, 503 during
// drain so orchestrators stop routing new requests here while
// in-flight streams finish.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// Stats is the /stats document: serving counters, admission state and
// the shape of the data being served.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	Backend string `json:"backend"`
	Shards  int    `json:"shards"`
	Triples int    `json:"triples"`

	Gate         int   `json:"gate"`
	QueueCap     int   `json:"queue_cap"`
	InFlight     int64 `json:"in_flight"`
	PeakInFlight int64 `json:"peak_in_flight"`
	Queued       int64 `json:"queued"`
	PeakQueued   int64 `json:"peak_queued"`

	Queries      uint64 `json:"queries"`
	RowsStreamed uint64 `json:"rows_streamed"`
	Shed         uint64 `json:"shed"`
	Rejected     uint64 `json:"rejected"`
	Panics       uint64 `json:"panics"`
	Timeouts     uint64 `json:"timeouts"`
	WriteStalls  uint64 `json:"write_stalls"`

	QueryCache wdsparql.CacheStats `json:"query_cache"`

	// Snapshot serving: the image behind the engine (nil when serving
	// a parsed graph) and the hot-reload counters.
	Snapshot       *SnapshotStats `json:"snapshot,omitempty"`
	Reloads        uint64         `json:"reloads"`
	ReloadFailures uint64         `json:"reload_failures"`

	// Live ingest: the POST /ingest counters and the size of the
	// current generation's mutable overlay.
	Ingest IngestStats `json:"ingest"`
}

// IngestStats is the /stats "ingest" section.
type IngestStats struct {
	Batches          uint64 `json:"batches"`
	TriplesApplied   uint64 `json:"triples_applied"`
	OverlaySize      int    `json:"overlay_size"`
	Refreezes        uint64 `json:"refreezes"`
	RefreezeFailures uint64 `json:"refreeze_failures"`
}

// snapshot assembles the current Stats.
func (s *Server) snapshot() Stats {
	st := Stats{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Draining:       s.draining.Load(),
		Gate:           s.cfg.MaxConcurrent,
		QueueCap:       s.cfg.MaxQueue,
		InFlight:       s.inFlight.Load(),
		PeakInFlight:   s.peakInFlight.Load(),
		Queued:         s.adm.waiting(),
		PeakQueued:     s.adm.peakWaiting(),
		Queries:        s.queries.Load(),
		RowsStreamed:   s.rowsStreamed.Load(),
		Shed:           s.shed.Load(),
		Rejected:       s.rejected.Load(),
		Panics:         s.panics.Load(),
		Timeouts:       s.timeouts.Load(),
		WriteStalls:    s.writeStalls.Load(),
		Reloads:        s.reloads.Load(),
		ReloadFailures: s.reloadFails.Load(),
		Ingest: IngestStats{
			Batches:          s.ingestBatches.Load(),
			TriplesApplied:   s.ingestTriples.Load(),
			Refreezes:        s.refreezes.Load(),
			RefreezeFailures: s.refreezeFails.Load(),
		},
	}
	// The data-shape section reads the current engine generation, held
	// for the duration of the read so a concurrent reload cannot close
	// its backing mid-inspection.
	eng := s.engine()
	if eng == nil {
		return st // shut down: counters only
	}
	defer eng.release()
	g := eng.eng.Graph()
	st.Backend = "map"
	switch {
	case g.Sharded():
		st.Backend = "sharded"
		st.Shards = g.ShardCount()
	case g.Frozen():
		st.Backend = "frozen"
	}
	st.Triples = g.Len()
	st.Ingest.OverlaySize = g.OverlayLen()
	st.QueryCache = eng.eng.QueryCacheStats()
	st.Snapshot = eng.snap
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.snapshot())
}

// noteInFlight bumps the in-flight gauge and its high-water mark,
// returning the decrement.
func (s *Server) noteInFlight() func() {
	n := s.inFlight.Add(1)
	for {
		peak := s.peakInFlight.Load()
		if n <= peak || s.peakInFlight.CompareAndSwap(peak, n) {
			break
		}
	}
	return func() { s.inFlight.Add(-1) }
}
